//===- tests/MiniccTest.cpp - mini compiler + simulator tests -------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "ast/Parser.h"
#include "corpus/Corpus.h"
#include "minicc/Benchmarks.h"
#include "minicc/Compiler.h"
#include "minicc/Hooks.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

using namespace vega;

namespace {

const TargetDatabase &sharedDB() {
  static TargetDatabase DB = TargetDatabase::standard();
  return DB;
}

const BackendCorpus &sharedCorpus() {
  static BackendCorpus Corpus = BackendCorpus::build(sharedDB());
  return Corpus;
}

} // namespace

TEST(Benchmarks, SuitesHaveThePaperSizes) {
  EXPECT_EQ(specSuite().size(), 28u);    // §4.1.3 SPEC C/C++ subset
  EXPECT_EQ(pulpSuite().size(), 69u);    // PULP regression tests
  EXPECT_EQ(embenchSuite().size(), 22u); // Embench cases
}

TEST(Benchmarks, ModulesAreDeterministic) {
  IRModule A = buildBenchmark("502.gcc_r");
  IRModule B = buildBenchmark("502.gcc_r");
  ASSERT_EQ(A.Functions.size(), B.Functions.size());
  EXPECT_EQ(printModule(A), printModule(B));
  IRModule C = buildBenchmark("505.mcf_r");
  EXPECT_NE(printModule(A), printModule(C));
}

TEST(Benchmarks, ModulesAreNonTrivial) {
  for (const std::string &Name : embenchSuite()) {
    IRModule M = buildBenchmark(Name);
    EXPECT_GE(M.Functions.size(), 2u) << Name;
    size_t Instrs = 0;
    for (const IRFunction &F : M.Functions)
      Instrs += F.size();
    EXPECT_GT(Instrs, 20u) << Name;
  }
}

TEST(Compiler, O3NeverSlowerThanO0) {
  const TargetTraits *T = sharedDB().find("RISCV");
  BackendHooks Hooks = hooksFromTraits(*T);
  for (const std::string &Name : specSuite()) {
    IRModule M = buildBenchmark(Name);
    SimResult O0 = compileAndRun(M, *T, Hooks, OptLevel::O0);
    SimResult O3 = compileAndRun(M, *T, Hooks, OptLevel::O3);
    EXPECT_LE(O3.Cycles, O0.Cycles) << Name;
    EXPECT_GT(O3.Cycles, 0) << Name;
  }
}

TEST(Compiler, SpeedupsAreInAPlausibleBand) {
  const TargetTraits *T = sharedDB().find("RISCV");
  BackendHooks Hooks = hooksFromTraits(*T);
  for (const std::string &Name : specSuite()) {
    double S = speedupO3(buildBenchmark(Name), *T, Hooks);
    EXPECT_GE(S, 1.0) << Name;
    EXPECT_LE(S, 30.0) << Name;
  }
}

TEST(Compiler, HardwareLoopsImproveConstantTripLoops) {
  const TargetTraits *Ri5cy = sharedDB().find("RI5CY");
  BackendHooks WithHw = hooksFromTraits(*Ri5cy);
  BackendHooks WithoutHw = WithHw;
  WithoutHw.HardwareLoops = false;
  int64_t Better = 0, Total = 0;
  for (const std::string &Name : pulpSuite()) {
    IRModule M = buildBenchmark(Name);
    SimResult A = compileAndRun(M, *Ri5cy, WithHw, OptLevel::O3);
    SimResult B = compileAndRun(M, *Ri5cy, WithoutHw, OptLevel::O3);
    EXPECT_LE(A.Cycles, B.Cycles) << Name;
    ++Total;
    if (A.Cycles < B.Cycles)
      ++Better;
  }
  EXPECT_GT(Better * 2, Total) << "hardware loops should usually help";
}

TEST(Compiler, VectorizationImprovesReductions) {
  const TargetTraits *T = sharedDB().find("RI5CY");
  BackendHooks Vec = hooksFromTraits(*T);
  Vec.VectorWidth = 128;
  BackendHooks NoVec = Vec;
  NoVec.VectorWidth = 0;
  int64_t VecWins = 0;
  for (const std::string &Name : pulpSuite()) {
    IRModule M = buildBenchmark(Name);
    SimResult A = compileAndRun(M, *T, Vec, OptLevel::O3);
    SimResult B = compileAndRun(M, *T, NoVec, OptLevel::O3);
    EXPECT_LE(A.Cycles, B.Cycles) << Name;
    if (A.Cycles < B.Cycles)
      ++VecWins;
  }
  EXPECT_GT(VecWins, 0);
}

TEST(Hooks, TraitsHooksMatchTraitValues) {
  const TargetTraits *T = sharedDB().find("Hexagon");
  BackendHooks Hooks = hooksFromTraits(*T);
  EXPECT_TRUE(Hooks.HardwareLoops);
  EXPECT_EQ(Hooks.VectorWidth, 512);
  EXPECT_EQ(Hooks.Latency(InstrClass::Div),
            T->findInstr(InstrClass::Div)->Cycles);
  EXPECT_EQ(Hooks.Latency(InstrClass::Load), T->LoadLatency);
}

TEST(Hooks, InterpretedGoldenHooksMatchTraitsHooks) {
  // Interpreting the golden backend functions must reproduce the traits
  // hooks — that is the robustness claim of §4.3 in miniature.
  for (const char *Name : {"RISCV", "RI5CY", "XCORE"}) {
    const TargetTraits *T = sharedDB().find(Name);
    const Backend *B = sharedCorpus().backend(Name);
    ASSERT_NE(B, nullptr);
    std::map<std::string, const FunctionAST *> Fns;
    for (const char *Iface :
         {"getInstrLatency", "enablePostRAScheduler",
          "isHardwareLoopProfitable", "getVectorRegisterWidth"})
      if (const BackendFunction *F = B->find(Iface))
        Fns[Iface] = &F->AST;
    BackendHooks FromFns = hooksFromFunctions(*T, Fns);
    BackendHooks FromTraits = hooksFromTraits(*T);
    EXPECT_EQ(FromFns.PostRAScheduler, FromTraits.PostRAScheduler) << Name;
    EXPECT_EQ(FromFns.HardwareLoops, FromTraits.HardwareLoops) << Name;
    EXPECT_EQ(FromFns.VectorWidth, FromTraits.VectorWidth) << Name;
    for (InstrClass C : {InstrClass::Load, InstrClass::Branch,
                         InstrClass::Mul, InstrClass::Div})
      EXPECT_EQ(FromFns.Latency(C), FromTraits.Latency(C))
          << Name << " class " << static_cast<int>(C);
  }
}

TEST(Hooks, BrokenLatencyFunctionFallsBackGracefully) {
  const TargetTraits *T = sharedDB().find("RISCV");
  auto Broken = parseFunction("int f(MachineInstr &MI) {\n return XX(1);\n}");
  ASSERT_TRUE(static_cast<bool>(Broken));
  std::map<std::string, const FunctionAST *> Fns = {
      {"getInstrLatency", &*Broken}};
  BackendHooks Hooks = hooksFromFunctions(*T, Fns);
  // Falls back to the trait latency instead of crashing.
  EXPECT_EQ(Hooks.Latency(InstrClass::Load), T->LoadLatency);
}

TEST(Simulator, CycleAccountingIsExact) {
  MachineProgram P;
  MachineFunction F;
  MachineBlock B;
  MachineInstr I1;
  I1.Class = InstrClass::Alu;
  I1.Cycles = 1;
  MachineInstr I2;
  I2.Class = InstrClass::Load;
  I2.Cycles = 2;
  MachineInstr I3;
  I3.Class = InstrClass::Alu;
  I3.Cycles = 1;
  I3.DependsOnPrevLoad = true;
  B.Instrs = {I1, I2, I3};
  B.ExecCount = 10;
  F.Blocks.push_back(B);
  P.Functions.push_back(F);

  TargetTraits T;
  T.LoadLatency = 3;
  T.BranchLatency = 2;
  SimResult R = simulate(P, T);
  // Per iteration: 1 + 2 + 1 cycles + (3-1) stall = 6; ×10 = 60.
  EXPECT_EQ(R.Cycles, 60);
  EXPECT_EQ(R.Stalls, 20);
  EXPECT_EQ(R.Instructions, 30);
}

TEST(Simulator, HardwareLoopBlocksSkipBranchStall) {
  MachineProgram P;
  MachineFunction F;
  MachineBlock B;
  MachineInstr Br;
  Br.Class = InstrClass::Branch;
  Br.Cycles = 1;
  B.Instrs = {Br};
  B.ExecCount = 100;
  MachineBlock Hw = B;
  Hw.HardwareLoopBody = true;
  F.Blocks = {B, Hw};
  P.Functions.push_back(F);
  TargetTraits T;
  T.BranchLatency = 3;
  SimResult R = simulate(P, T);
  // Normal block: (1+2)*100; hw block: 1*100.
  EXPECT_EQ(R.Cycles, 300 + 100);
}
