file(REMOVE_RECURSE
  "CMakeFiles/vega_feature.dir/FeatureSelector.cpp.o"
  "CMakeFiles/vega_feature.dir/FeatureSelector.cpp.o.d"
  "libvega_feature.a"
  "libvega_feature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vega_feature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
