//===- eval/EvalSpecs.h - Regression-test environments -----------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-interface-function regression suites (the stand-in for the paper's
/// LLVM regression tests, §4.1.3). Each spec derives, from a target's
/// traits, a set of interpreter environments that exercise the function's
/// behaviour: every fixup kind × PC-relativity for getRelocType, every
/// opcode for getInstrLatency, offset/alignment grids for frame lowering,
/// and so on. pass@1 runs the generated and golden implementations under
/// identical environments and demands behavioural equivalence.
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_EVAL_EVALSPECS_H
#define VEGA_EVAL_EVALSPECS_H

#include "corpus/TargetTraits.h"
#include "interp/Interpreter.h"

#include <vector>

namespace vega {

/// Builds the regression environments for \p InterfaceName on \p Traits.
/// Unknown interface names get a single empty environment (the function is
/// then judged on its unconditioned behaviour).
std::vector<Environment> buildTestEnvironments(const std::string &InterfaceName,
                                               const TargetTraits &Traits);

/// Total number of regression cases for a whole backend of \p Traits.
size_t regressionCaseCount(const TargetTraits &Traits);

} // namespace vega

#endif // VEGA_EVAL_EVALSPECS_H
