//===- serve/Server.h - The vega-serve batching daemon -----------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A long-running generation daemon over one loaded VegaSession. Requests
/// arrive as newline-delimited JSON-RPC 2.0 (over stdio or a local Unix
/// socket), queue behind a single batching worker, and fan out across the
/// session's ThreadPool: the worker drains up to MaxBatch pending requests,
/// dedups their targets, runs one batched generateMany() (every
/// (target, function) pair is one pool task), and answers each request from
/// the per-target merge. Merges are deterministic, so a response is
/// byte-identical whether its request ran alone or inside a batch.
///
/// Methods: ping, info, generate {target}, evaluate {target}, shutdown.
/// Observability: every request opens a `serve.request` span and the worker
/// a `serve.batch` span; counters/histograms go to the process
/// MetricsRegistry (serve.requests, serve.errors, serve.batches,
/// serve.batch_size) — export via --trace-out / --metrics-out as usual.
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_SERVE_SERVER_H
#define VEGA_SERVE_SERVER_H

#include "core/VegaSession.h"
#include "serve/Protocol.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <future>
#include <iosfwd>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace vega {
namespace serve {

struct ServerOptions {
  /// Most pending requests merged into one generation fan-out.
  int MaxBatch = 8;
  bool Verbose = false;
};

/// The daemon. One instance serves one session; serveStream()/serveSocket()
/// block until shutdown (the `shutdown` method or transport EOF).
class VegaServer {
public:
  VegaServer(VegaSession &Session, ServerOptions Options);
  ~VegaServer();

  VegaServer(const VegaServer &) = delete;
  VegaServer &operator=(const VegaServer &) = delete;

  /// Enqueues one raw request line; the future resolves to the response
  /// line once the batching worker reaches it. Thread-safe.
  std::future<std::string> submitLine(std::string Line);

  /// submitLine + wait. Thread-safe; concurrent callers may be answered
  /// from one merged batch.
  std::string handleLine(const std::string &Line);

  /// Processes \p Lines as explicit batches of up to MaxBatch (bypassing
  /// the queue) and returns the responses in order. Used by tests to force
  /// a known batch composition.
  std::vector<std::string> handleLines(const std::vector<std::string> &Lines);

  /// NDJSON loop over a stream pair (the stdio transport). Returns after
  /// EOF or a `shutdown` request; every submitted request is answered, in
  /// submission order, before returning.
  Status serveStream(std::istream &In, std::ostream &Out);

  /// NDJSON loop over an AF_UNIX socket at \p Path (created fresh; an
  /// existing file is replaced). One thread per connection; batching still
  /// happens in the single worker, so concurrent connections batch
  /// together. Returns after a `shutdown` request.
  Status serveSocket(const std::string &Path);

  /// True once a `shutdown` request was processed (or shutdown() called).
  bool shutdownRequested() const {
    return Shutdown.load(std::memory_order_relaxed);
  }

  /// Requests shutdown from outside a transport (tests, signal handlers).
  void shutdown();

private:
  struct PendingRequest {
    std::string Line;
    std::promise<std::string> Promise;
  };

  void workerLoop();
  /// Answers one batch of raw lines (the core of the daemon). Serialized
  /// by BatchMu — the session's pool fan-out is not reentrant.
  std::vector<std::string> processBatch(const std::vector<std::string> &Lines);
  Json handleInfo() const;

  VegaSession &Session;
  ServerOptions Options;

  std::mutex QueueMu;
  std::condition_variable QueueCv;
  std::deque<PendingRequest> Queue;
  bool Stopping = false; ///< guarded by QueueMu; set by the destructor
  std::atomic<bool> Shutdown{false};
  std::mutex BatchMu;
  std::thread Worker;
};

} // namespace serve
} // namespace vega

#endif // VEGA_SERVE_SERVER_H
