file(REMOVE_RECURSE
  "CMakeFiles/generate_backend.dir/generate_backend.cpp.o"
  "CMakeFiles/generate_backend.dir/generate_backend.cpp.o.d"
  "generate_backend"
  "generate_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generate_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
