//===- eval/Harness.h - pass@1 and statement accuracy ------------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The evaluation harness (§4.1.4): pass@1 function accuracy (a generated
/// function substitutes the golden one and must behave identically on the
/// regression environments), statement-level accuracy (Fig. 9 / Table 3),
/// the Err-V / Err-CS / Err-Def taxonomy (Table 2), and module aggregates.
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_EVAL_HARNESS_H
#define VEGA_EVAL_HARNESS_H

#include "core/Pipeline.h"
#include "corpus/Corpus.h"

namespace vega {

/// Evaluation of one generated function against its golden counterpart.
struct FunctionEval {
  std::string InterfaceName;
  BackendModule Module = BackendModule::SEL;
  bool GoldenExists = false;
  bool Generated = false;   ///< VEGA emitted it
  bool Accurate = false;    ///< pass@1 verdict
  double Confidence = 0.0;
  bool MultiTargetDerived = false;
  size_t GoldenStatements = 0;
  size_t AccurateStatements = 0; ///< generated statements matching golden
  size_t ManualStatements = 0;   ///< statements to fix/add/delete by hand
  bool ErrV = false;   ///< wrong target-specific value in a matched stmt
  bool ErrCS = false;  ///< confidence contradicts correctness
  bool ErrDef = false; ///< missing necessary statements / function
};

/// Whole-backend evaluation.
struct BackendEval {
  std::string TargetName;
  std::vector<FunctionEval> Functions;

  struct ModuleStats {
    size_t Functions = 0;
    size_t AccurateFunctions = 0;
    size_t AccurateHighConfidence = 0; ///< accurate with CS ≈ 1.00
    size_t MultiTarget = 0;            ///< accurate & multi-target derived
    size_t AccurateStatements = 0;
    size_t ManualStatements = 0;
  };
  std::map<BackendModule, ModuleStats> PerModule;

  /// Function-level accuracy over all generated functions (paper headline).
  double functionAccuracy() const;
  /// Function-level accuracy within one module.
  double functionAccuracy(BackendModule Module) const;
  /// Statement-level accuracy over all modules.
  double statementAccuracy() const;
  /// Error-type rates over all generated functions (Table 2).
  double errVRate() const;
  double errCSRate() const;
  double errDefRate() const;
};

/// Evaluates \p Generated against \p Golden for \p Traits.
BackendEval evaluateBackend(const GeneratedBackend &Generated,
                            const Backend &Golden,
                            const TargetTraits &Traits);

/// pass@1 for a single function AST (used by ForkFlow too): behavioural
/// equivalence with the golden implementation on the regression suite.
bool functionPassesRegression(const FunctionAST &Candidate,
                              const FunctionAST &Golden,
                              const std::string &InterfaceName,
                              const TargetTraits &Traits);

/// Statement-level accounting between a candidate and the golden function:
/// (AccurateStatements, ManualStatements).
std::pair<size_t, size_t> statementAccounting(const FunctionAST &Candidate,
                                              const FunctionAST &Golden);

} // namespace vega

#endif // VEGA_EVAL_HARNESS_H
