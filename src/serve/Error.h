//===- serve/Error.h - Typed JSON-RPC serve error codes ----------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one table of JSON-RPC error codes the serving fleet speaks. Router
/// and shard both answer through serve::ErrorCode + toJsonRpc(), so the two
/// layers cannot disagree on wire codes: a backpressure rejection is -32005
/// whether the router's admission window or the shard's scheduler queue
/// tripped it.
///
/// The spec-reserved codes (-32700..-32600 range) are used verbatim;
/// vega::Status codes map into the implementation-defined -320xx range via
/// errorCodeFor().
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_SERVE_ERROR_H
#define VEGA_SERVE_ERROR_H

#include "support/Status.h"

namespace vega {
namespace serve {

/// Every error code the daemon can put on the wire.
enum class ErrorCode {
  ParseError,         ///< -32700: request line is not valid JSON
  InvalidRequest,     ///< -32600: valid JSON, not a valid request object
  MethodNotFound,     ///< -32601: unknown method
  InvalidParams,      ///< -32602: missing/ill-typed params
  InternalError,      ///< -32603: invariant violation
  NotFound,           ///< -32001: unknown target / artifact
  FailedPrecondition, ///< -32002: wrong session state / fingerprint
  DataLoss,           ///< -32003: corrupted artifact
  Unavailable,        ///< -32004: I/O failure, deadline exceeded, shutdown
  Overloaded,         ///< -32005: admission window / queue full — retry later
  Unimplemented,      ///< -32006: known but unsupported operation
};

/// The wire number for a code — the only place numbers appear.
constexpr int toJsonRpc(ErrorCode Code) {
  switch (Code) {
  case ErrorCode::ParseError:
    return -32700;
  case ErrorCode::InvalidRequest:
    return -32600;
  case ErrorCode::MethodNotFound:
    return -32601;
  case ErrorCode::InvalidParams:
    return -32602;
  case ErrorCode::InternalError:
    return -32603;
  case ErrorCode::NotFound:
    return -32001;
  case ErrorCode::FailedPrecondition:
    return -32002;
  case ErrorCode::DataLoss:
    return -32003;
  case ErrorCode::Unavailable:
    return -32004;
  case ErrorCode::Overloaded:
    return -32005;
  case ErrorCode::Unimplemented:
    return -32006;
  }
  return -32603;
}

/// The serve code for a failed vega::Status.
constexpr ErrorCode errorCodeFor(StatusCode Code) {
  switch (Code) {
  case StatusCode::Ok:
  case StatusCode::Internal:
    return ErrorCode::InternalError;
  case StatusCode::InvalidArgument:
    return ErrorCode::InvalidParams;
  case StatusCode::NotFound:
    return ErrorCode::NotFound;
  case StatusCode::FailedPrecondition:
    return ErrorCode::FailedPrecondition;
  case StatusCode::DataLoss:
    return ErrorCode::DataLoss;
  case StatusCode::Unavailable:
    return ErrorCode::Unavailable;
  case StatusCode::Unimplemented:
    return ErrorCode::Unimplemented;
  case StatusCode::ResourceExhausted:
    return ErrorCode::Overloaded;
  }
  return ErrorCode::InternalError;
}

} // namespace serve
} // namespace vega

#endif // VEGA_SERVE_ERROR_H
