//===- serve/Protocol.cpp - JSON schemas and JSON-RPC framing ----------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"

#include "ast/Statement.h"

using namespace vega;
using namespace vega::serve;

Json vega::serve::backendToJson(const GeneratedBackend &Backend) {
  Json Doc = Json::object();
  Doc.set("schema", "vega-backend-1");
  Doc.set("target", Backend.TargetName);

  Json Functions = Json::array();
  for (const GeneratedFunction &Fn : Backend.Functions) {
    Json F = Json::object();
    F.set("interface", Fn.InterfaceName);
    F.set("module", moduleName(Fn.Module));
    F.set("confidence", Fn.Confidence);
    F.set("emitted", Fn.Emitted);
    F.set("multiTargetDerived", Fn.MultiTargetDerived);
    if (Fn.Emitted)
      F.set("source", Fn.AST.render());
    else
      F.set("source", Json());
    Json Statements = Json::array();
    for (const GeneratedStatement &St : Fn.Statements) {
      Json S = Json::object();
      S.set("row", St.RowIndex);
      S.set("confidence", St.Confidence);
      S.set("emitted", St.Emitted);
      S.set("text", renderTokens(St.Tokens));
      if (!St.CandidateValue.empty())
        S.set("candidate", St.CandidateValue);
      Statements.push(std::move(S));
    }
    F.set("statements", std::move(Statements));
    Functions.push(std::move(F));
  }
  Doc.set("functions", std::move(Functions));
  return Doc;
}

Json vega::serve::evalToJson(const BackendEval &Eval) {
  Json Doc = Json::object();
  Doc.set("schema", "vega-eval-2");
  Doc.set("target", Eval.TargetName);
  Doc.set("oracle", Eval.OracleName);

  Json Functions = Json::array();
  for (const FunctionEval &Fn : Eval.Functions) {
    Json F = Json::object();
    F.set("interface", Fn.InterfaceName);
    F.set("module", moduleName(Fn.Module));
    F.set("goldenExists", Fn.GoldenExists);
    F.set("generated", Fn.Generated);
    F.set("accurate", Fn.Accurate);
    F.set("confidence", Fn.Confidence);
    F.set("multiTargetDerived", Fn.MultiTargetDerived);
    F.set("goldenStatements", static_cast<uint64_t>(Fn.GoldenStatements));
    F.set("accurateStatements", static_cast<uint64_t>(Fn.AccurateStatements));
    F.set("manualStatements", static_cast<uint64_t>(Fn.ManualStatements));
    Json Errors = Json::array();
    if (Fn.ErrV)
      Errors.push("Err-V");
    if (Fn.ErrCS)
      Errors.push("Err-CS");
    if (Fn.ErrDef)
      Errors.push("Err-Def");
    if (Fn.DivVal)
      Errors.push("Div-Val");
    if (Fn.DivTrap)
      Errors.push("Div-Trap");
    if (Fn.DivEff)
      Errors.push("Div-Eff");
    F.set("errors", std::move(Errors));
    F.set("txtOnly", Fn.TxtOnly);
    if (Fn.DiffRan) {
      Json Diff = Json::object();
      Diff.set("accurate", Fn.DiffAccurate);
      Diff.set("cases", static_cast<uint64_t>(Fn.DiffCases));
      Diff.set("passed", static_cast<uint64_t>(Fn.DiffPassed));
      F.set("differential", std::move(Diff));
    }
    Functions.push(std::move(F));
  }
  Doc.set("functions", std::move(Functions));

  Json Summary = Json::object();
  Summary.set("functionAccuracy", Eval.functionAccuracy());
  Summary.set("statementAccuracy", Eval.statementAccuracy());
  Summary.set("errVRate", Eval.errVRate());
  Summary.set("errCSRate", Eval.errCSRate());
  Summary.set("errDefRate", Eval.errDefRate());
  if (Eval.hasDifferential()) {
    Summary.set("divValRate", Eval.divValRate());
    Summary.set("divTrapRate", Eval.divTrapRate());
    Summary.set("divEffRate", Eval.divEffRate());
    Summary.set("txtOnlyRate", Eval.txtOnlyRate());
    Summary.set("differentialAccuracy", Eval.differentialAccuracy());
    Summary.set("adjustedStatementAccuracy", Eval.adjustedStatementAccuracy());
    BackendEval::OracleAgreement A = Eval.agreement();
    Json Agreement = Json::object();
    Agreement.set("bothPass", static_cast<uint64_t>(A.BothPass));
    Agreement.set("bothFail", static_cast<uint64_t>(A.BothFail));
    Agreement.set("primaryOnlyPass", static_cast<uint64_t>(A.PrimaryOnlyPass));
    Agreement.set("differentialOnlyPass",
                  static_cast<uint64_t>(A.DifferentialOnlyPass));
    Summary.set("oracleAgreement", std::move(Agreement));
  }
  Doc.set("summary", std::move(Summary));
  return Doc;
}

Json vega::serve::repairToJson(const repair::RepairReport &Report) {
  Json Doc = Json::object();
  Doc.set("schema", "vega-repair-1");
  Doc.set("target", Report.TargetName);

  Json Options = Json::object();
  Options.set("beamWidth", Report.Options.BeamWidth);
  Options.set("maxRounds", Report.Options.MaxRounds);
  Options.set("csThreshold", Report.Options.CSThreshold);
  Options.set("maxSitesPerFunction", Report.Options.MaxSitesPerFunction);
  Options.set("oracle", Report.Options.OracleImpl
                            ? Report.Options.OracleImpl->name()
                            : eval::textOracle().name());
  Doc.set("options", std::move(Options));

  Json Summary = Json::object();
  Summary.set("baselineFunctionAccuracy",
              Report.BaselineEval.functionAccuracy());
  Summary.set("repairedFunctionAccuracy",
              Report.RepairedEval.functionAccuracy());
  Summary.set("baselineStatementAccuracy",
              Report.BaselineEval.statementAccuracy());
  Summary.set("repairedStatementAccuracy",
              Report.RepairedEval.statementAccuracy());
  Summary.set("functionsFlagged",
              static_cast<uint64_t>(Report.FunctionsFlagged));
  Summary.set("functionsRepaired",
              static_cast<uint64_t>(Report.FunctionsRepaired));
  Summary.set("statementsAutoRepaired",
              static_cast<uint64_t>(Report.StatementsAutoRepaired));
  Summary.set("candidatesTried",
              static_cast<uint64_t>(Report.CandidatesTried));
  Json Hours = Json::object();
  Json DevA = Json::object();
  DevA.set("baseline", Report.BaselineHoursA);
  DevA.set("repaired", Report.RepairedHoursA);
  Hours.set("developerA", std::move(DevA));
  Json DevB = Json::object();
  DevB.set("baseline", Report.BaselineHoursB);
  DevB.set("repaired", Report.RepairedHoursB);
  Hours.set("developerB", std::move(DevB));
  Summary.set("repairHours", std::move(Hours));
  Doc.set("summary", std::move(Summary));

  Json Rounds = Json::array();
  for (const repair::RoundStats &R : Report.Rounds) {
    Json Round = Json::object();
    Round.set("round", R.Round);
    Round.set("functionsRepaired", static_cast<uint64_t>(R.FunctionsRepaired));
    Round.set("functionAccuracy", R.FunctionAccuracy);
    Rounds.push(std::move(Round));
  }
  Doc.set("rounds", std::move(Rounds));

  Json Functions = Json::array();
  for (const repair::FunctionRepair &F : Report.Functions) {
    Json Fn = Json::object();
    Fn.set("interface", F.InterfaceName);
    Fn.set("module", moduleName(F.Module));
    Fn.set("baselineEmitted", F.BaselineEmitted);
    Fn.set("repairedPassed", F.RepairedPassed);
    Fn.set("repairedAtRound", F.RepairedAtRound);
    Fn.set("sitesExamined", static_cast<uint64_t>(F.SitesExamined));
    Fn.set("candidatesTried", static_cast<uint64_t>(F.CandidatesTried));
    Fn.set("statementsReplaced", static_cast<uint64_t>(F.StatementsReplaced));
    Functions.push(std::move(Fn));
  }
  Doc.set("functions", std::move(Functions));

  Json Repairs = Json::array();
  for (const repair::StatementRepair &R : Report.Repairs) {
    Json Rep = Json::object();
    Rep.set("interface", R.InterfaceName);
    Rep.set("module", moduleName(R.Module));
    Rep.set("row", R.RowIndex);
    if (!R.CandidateValue.empty())
      Rep.set("candidate", R.CandidateValue);
    Rep.set("oldText", R.OldText);
    Rep.set("newText", R.NewText);
    Rep.set("oldEmitted", R.OldEmitted);
    Rep.set("newEmitted", R.NewEmitted);
    Rep.set("oldConfidence", R.OldConfidence);
    Rep.set("newConfidence", R.NewConfidence);
    Rep.set("round", R.Round);
    Repairs.push(std::move(Rep));
  }
  Doc.set("repairs", std::move(Repairs));

  Doc.set("backend", backendToJson(Report.RepairedBackend));
  return Doc;
}

StatusOr<RpcRequest> vega::serve::parseRpcRequest(const std::string &Line) {
  StatusOr<Json> Doc = Json::parse(Line);
  if (!Doc.isOk())
    return Status::invalidArgument("parse error: " + Doc.status().message());
  if (!Doc->isObject())
    return Status::invalidArgument("request must be a JSON object");
  RpcRequest Request;
  if (const Json *Id = Doc->get("id"))
    Request.Id = *Id;
  const Json *Method = Doc->get("method");
  if (!Method || !Method->isString())
    return Status::invalidArgument("request has no string 'method'");
  Request.Method = Method->asString();
  if (const Json *Params = Doc->get("params")) {
    if (!Params->isObject())
      return Status::invalidArgument("'params' must be an object");
    Request.Params = *Params;
  } else {
    Request.Params = Json::object();
  }
  return Request;
}

Json vega::serve::makeRpcResult(const Json &Id, Json Result) {
  Json Doc = Json::object();
  Doc.set("jsonrpc", "2.0");
  Doc.set("id", Id);
  Doc.set("result", std::move(Result));
  return Doc;
}

Json vega::serve::makeRpcError(const Json &Id, ErrorCode Code,
                               const std::string &Message,
                               const std::string &StatusName) {
  Json Error = Json::object();
  Error.set("code", toJsonRpc(Code));
  Error.set("message", Message);
  if (!StatusName.empty()) {
    Json Data = Json::object();
    Data.set("status", StatusName);
    Error.set("data", std::move(Data));
  }
  Json Doc = Json::object();
  Doc.set("jsonrpc", "2.0");
  Doc.set("id", Id);
  Doc.set("error", std::move(Error));
  return Doc;
}

Json vega::serve::makeRpcError(const Json &Id, const Status &St) {
  return makeRpcError(Id, errorCodeFor(St.code()), St.message(),
                      statusCodeName(St.code()));
}
