//===- support/ArgParse.cpp - Flags, subcommands, auto-usage -----------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "support/ArgParse.h"

#include <cstdlib>

using namespace vega;

ArgParse::ArgParse(std::string Prog, std::string Overview)
    : Prog(std::move(Prog)), Overview(std::move(Overview)) {}

void ArgParse::addFlag(const std::string &Name, const std::string &Help) {
  Flags[Name] = FlagDecl{Help, "", ""};
  FlagOrder.push_back(Name);
}

void ArgParse::addOption(const std::string &Name, const std::string &ValueName,
                         const std::string &Help, std::string Default) {
  Flags[Name] = FlagDecl{Help, ValueName, std::move(Default)};
  FlagOrder.push_back(Name);
}

void ArgParse::addCommand(const std::string &Name, const std::string &ArgSpec,
                          const std::string &Help, size_t MinArgs,
                          size_t MaxArgs) {
  Commands[Name] = CommandDecl{ArgSpec, Help, MinArgs, MaxArgs,
                               CommandOrder.size()};
  CommandOrder.push_back(Name);
}

Status ArgParse::parse(int Argc, char **Argv) {
  std::vector<std::string> Args;
  for (int I = 1; I < Argc; ++I)
    Args.push_back(Argv[I]);
  return parse(Args);
}

Status ArgParse::parse(const std::vector<std::string> &Args) {
  Command.clear();
  Positionals.clear();
  Passthrough.clear();
  Values.clear();
  MultiValues.clear();

  for (size_t I = 0; I < Args.size(); ++I) {
    const std::string &Arg = Args[I];
    if (Arg.size() >= 2 && Arg[0] == '-' && Arg[1] == '-') {
      std::string Name = Arg.substr(2);
      std::string Value;
      bool HasValue = false;
      size_t Eq = Name.find('=');
      if (Eq != std::string::npos) {
        Value = Name.substr(Eq + 1);
        Name = Name.substr(0, Eq);
        HasValue = true;
      }
      auto It = Flags.find(Name);
      if (It == Flags.end()) {
        if (PassthroughUnknown) {
          Passthrough.push_back(Arg);
          continue;
        }
        return Status::invalidArgument("unknown flag '--" + Name + "'");
      }
      const FlagDecl &Decl = It->second;
      if (Decl.ValueName.empty()) {
        if (HasValue)
          return Status::invalidArgument("flag '--" + Name +
                                         "' takes no value");
        Values[Name] = "1";
        continue;
      }
      if (!HasValue) {
        // `--jobs 4` form: the value is the next argument.
        if (I + 1 >= Args.size())
          return Status::invalidArgument("flag '--" + Name +
                                         "' requires a value");
        Value = Args[++I];
      }
      Values[Name] = Value;
      MultiValues[Name].push_back(Value);
      continue;
    }
    if (Command.empty() && !Commands.empty()) {
      auto It = Commands.find(Arg);
      if (It == Commands.end())
        return Status::invalidArgument("unknown command '" + Arg + "'");
      Command = Arg;
      continue;
    }
    Positionals.push_back(Arg);
  }

  if (!Commands.empty()) {
    if (Command.empty())
      return Status::invalidArgument("no command given");
    const CommandDecl &Decl = Commands.at(Command);
    if (Positionals.size() < Decl.MinArgs)
      return Status::invalidArgument("command '" + Command +
                                     "' needs at least " +
                                     std::to_string(Decl.MinArgs) +
                                     " argument(s)");
    if (Positionals.size() > Decl.MaxArgs)
      return Status::invalidArgument("command '" + Command +
                                     "' takes at most " +
                                     std::to_string(Decl.MaxArgs) +
                                     " argument(s)");
  }
  return Status::ok();
}

bool ArgParse::has(const std::string &Name) const {
  return Values.count(Name) != 0;
}

const std::string &ArgParse::get(const std::string &Name) const {
  auto It = Values.find(Name);
  if (It != Values.end())
    return It->second;
  static const std::string Empty;
  auto Decl = Flags.find(Name);
  return Decl != Flags.end() ? Decl->second.Default : Empty;
}

const std::vector<std::string> &
ArgParse::getAll(const std::string &Name) const {
  auto It = MultiValues.find(Name);
  if (It != MultiValues.end())
    return It->second;
  static const std::vector<std::string> Empty;
  return Empty;
}

int ArgParse::getInt(const std::string &Name, int Default) const {
  const std::string &V = get(Name);
  if (V.empty())
    return Default;
  char *End = nullptr;
  long N = std::strtol(V.c_str(), &End, 10);
  if (End == V.c_str() || *End != '\0')
    return Default;
  return static_cast<int>(N);
}

std::string ArgParse::usage() const {
  std::string Out = Overview.empty() ? "" : Overview + "\n\n";
  Out += "usage: " + Prog;
  if (!FlagOrder.empty())
    Out += " [flags]";
  if (!Commands.empty())
    Out += " <command> [args]";
  Out += "\n";
  if (!FlagOrder.empty()) {
    Out += "\nflags:\n";
    for (const std::string &Name : FlagOrder) {
      const FlagDecl &Decl = Flags.at(Name);
      std::string Left = "  --" + Name;
      if (!Decl.ValueName.empty())
        Left += "=<" + Decl.ValueName + ">";
      Out += Left;
      if (Left.size() < 28)
        Out += std::string(28 - Left.size(), ' ');
      else
        Out += "  ";
      Out += Decl.Help;
      if (!Decl.Default.empty())
        Out += " (default: " + Decl.Default + ")";
      Out += "\n";
    }
  }
  if (!CommandOrder.empty()) {
    Out += "\ncommands:\n";
    for (const std::string &Name : CommandOrder) {
      const CommandDecl &Decl = Commands.at(Name);
      std::string Left = "  " + Name;
      if (!Decl.ArgSpec.empty())
        Left += " " + Decl.ArgSpec;
      Out += Left;
      if (Left.size() < 34)
        Out += std::string(34 - Left.size(), ' ');
      else
        Out += "  ";
      Out += Decl.Help + "\n";
    }
  }
  return Out;
}
