//===- tests/TemplatizeTest.cpp - vega_templatize unit tests -------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "templatize/FunctionTemplate.h"

#include <gtest/gtest.h>

using namespace vega;

namespace {

const BackendCorpus &sharedCorpus() {
  static BackendCorpus Corpus =
      BackendCorpus::build(TargetDatabase::standard());
  return Corpus;
}

const FunctionGroup &groupNamed(const std::string &Name) {
  static std::vector<FunctionGroup> Groups = sharedCorpus().trainingGroups();
  for (const FunctionGroup &G : Groups)
    if (G.InterfaceName == Name)
      return G;
  ADD_FAILURE() << "no group named " << Name;
  static FunctionGroup Empty;
  return Empty;
}

} // namespace

TEST(Templatize, RelocTemplateMatchesThePaperShape) {
  FunctionTemplate FT = buildFunctionTemplate(groupNamed("getRelocType"));
  // Definition has a placeholder for the writer class name.
  ASSERT_NE(FT.Definition, nullptr);
  EXPECT_GE(FT.Definition->placeholderCount(), 1u);
  // The first body row is the Kind declaration — common code, no slots.
  ASSERT_FALSE(FT.Body.empty());
  EXPECT_EQ(FT.Body[0]->placeholderCount(), 0u);
  EXPECT_EQ(FT.Body[0]->text(), "unsigned Kind = Fixup.getTargetKind();");

  // Somewhere in the tree: a repeatable "case $SV0::$SV1:" row (paper T5).
  bool FoundRepeatableCase = false;
  for (const TemplateRow *Row : FT.rows()) {
    if (Row->Kind == StmtKind::Case && Row->Repeatable &&
        Row->placeholderCount() == 2)
      FoundRepeatableCase = true;
  }
  EXPECT_TRUE(FoundRepeatableCase);
}

TEST(Templatize, VariantKindRowHasPartialSupport) {
  FunctionTemplate FT = buildFunctionTemplate(groupNamed("getRelocType"));
  const TemplateRow *VariantRow = nullptr;
  for (const TemplateRow *Row : FT.rows())
    for (const Token &T : Row->Tokens)
      if (T.Text == "VariantKind")
        VariantRow = Row;
  ASSERT_NE(VariantRow, nullptr);
  std::vector<std::string> Support = VariantRow->supportTargets();
  // Only the HasVariantKind targets (ARM, PPC, Sparc, SystemZ, LoongArch).
  EXPECT_GE(Support.size(), 3u);
  EXPECT_LT(Support.size(), 21u);
  for (const std::string &T : Support)
    EXPECT_NE(T, "Lanai") << "Lanai has no VariantKind";
}

TEST(Templatize, InstancesCoverEveryMember) {
  FunctionTemplate FT = buildFunctionTemplate(groupNamed("getRelocType"));
  // Every member target instantiates the definition row exactly once.
  EXPECT_EQ(FT.Definition->PerTarget.size(), FT.MemberTargets.size());
  for (const auto &[Target, Instances] : FT.Definition->PerTarget)
    EXPECT_EQ(Instances.size(), 1u) << Target;
}

TEST(Templatize, SlotFillersAlignWithPlaceholders) {
  FunctionTemplate FT = buildFunctionTemplate(groupNamed("getRelocType"));
  for (const TemplateRow *Row : FT.rows()) {
    size_t Slots = Row->placeholderCount();
    for (const auto &[Target, Instances] : Row->PerTarget)
      for (const auto &Inst : Instances)
        EXPECT_EQ(Inst.SlotFillers.size(), Slots)
            << "row '" << Row->text() << "' target " << Target;
  }
}

TEST(Templatize, RepeatableRowsFoldCaseVariants) {
  FunctionTemplate FT = buildFunctionTemplate(groupNamed("getInstrLatency"));
  const TemplateRow *CaseRow = nullptr;
  for (const TemplateRow *Row : FT.rows())
    if (Row->Kind == StmtKind::Case && Row->Repeatable)
      CaseRow = Row;
  ASSERT_NE(CaseRow, nullptr);
  // Every target contributes several opcode cases to the folded row.
  for (const auto &[Target, Instances] : CaseRow->PerTarget)
    EXPECT_GE(Instances.size(), 3u) << Target;
}

TEST(Templatize, CommonTokenCountsAreConsistent) {
  for (const FunctionGroup &G : sharedCorpus().trainingGroups()) {
    FunctionTemplate FT = buildFunctionTemplate(G);
    for (const TemplateRow *Row : FT.rows()) {
      EXPECT_EQ(Row->commonTokenCount() + Row->placeholderCount(),
                Row->Tokens.size())
          << G.InterfaceName << " row " << Row->Index;
    }
  }
}

TEST(Templatize, RowIndicesArePreOrderAndUnique) {
  FunctionTemplate FT = buildFunctionTemplate(groupNamed("getRelocType"));
  std::vector<TemplateRow *> Rows = FT.rows();
  for (size_t I = 0; I < Rows.size(); ++I)
    EXPECT_EQ(Rows[I]->Index, static_cast<int>(I));
}

// Property sweep: templatization invariants hold for every function group.
class TemplateGroupTest : public ::testing::TestWithParam<std::string> {};

TEST_P(TemplateGroupTest, TemplateInvariants) {
  FunctionTemplate FT = buildFunctionTemplate(groupNamed(GetParam()));
  ASSERT_NE(FT.Definition, nullptr);
  EXPECT_EQ(FT.InterfaceName, GetParam());
  EXPECT_FALSE(FT.MemberTargets.empty());

  size_t MemberCount = FT.MemberTargets.size();
  for (const TemplateRow *Row : FT.rows()) {
    // No row is supported by more targets than exist in the group.
    EXPECT_LE(Row->supportTargets().size(), MemberCount);
    // Template tokens are never empty for a real row.
    EXPECT_FALSE(Row->Tokens.empty());
    // Every instance statement belongs to some member implementation.
    for (const auto &[Target, Instances] : Row->PerTarget) {
      EXPECT_FALSE(Instances.empty());
      for (const auto &Inst : Instances)
        EXPECT_NE(Inst.Stmt, nullptr);
    }
  }
  // The definition row must be supported by every member.
  EXPECT_EQ(FT.Definition->supportTargets().size(), MemberCount);
}

INSTANTIATE_TEST_SUITE_P(
    AllGroups, TemplateGroupTest,
    ::testing::ValuesIn([] {
      std::vector<std::string> Names;
      for (const FunctionGroup &G : sharedCorpus().trainingGroups())
        Names.push_back(G.InterfaceName);
      return Names;
    }()),
    [](const ::testing::TestParamInfo<std::string> &Info) {
      return Info.param;
    });
