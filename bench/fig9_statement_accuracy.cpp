//===- bench/fig9_statement_accuracy.cpp - Fig. 9 -----------------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// Fig. 9: statement-level accuracy ("Accurate" vs "Manual Effort") per
/// module, VEGA against FORKFLOW. Paper anchors: VEGA statement averages
/// 55.0 / 58.5 / 38.5% while ForkFlow needs manual work on >85% of
/// statements.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/TextTable.h"

#include <cstdio>

using namespace vega;

namespace {

void printTarget(const std::string &Target) {
  const BackendEval &Vega = bench::evaluation(Target);
  const BackendEval &Fork = bench::forkflowEvaluation(Target);

  TextTable Table;
  Table.setHeader({"Module", "VEGA acc", "VEGA manual", "VEGA acc%",
                   "FF acc", "FF manual", "FF acc%"});
  for (BackendModule Module : AllModules) {
    auto VIt = Vega.PerModule.find(Module);
    auto FIt = Fork.PerModule.find(Module);
    if (VIt == Vega.PerModule.end() && FIt == Fork.PerModule.end())
      continue;
    auto Pct = [](size_t Acc, size_t Manual) {
      size_t Total = Acc + Manual;
      return Total == 0 ? std::string("-")
                        : TextTable::formatPercent(
                              static_cast<double>(Acc) /
                              static_cast<double>(Total));
    };
    size_t VA = VIt == Vega.PerModule.end() ? 0
                                            : VIt->second.AccurateStatements;
    size_t VM = VIt == Vega.PerModule.end() ? 0
                                            : VIt->second.ManualStatements;
    size_t FA = FIt == Fork.PerModule.end() ? 0
                                            : FIt->second.AccurateStatements;
    size_t FM = FIt == Fork.PerModule.end() ? 0
                                            : FIt->second.ManualStatements;
    Table.addRow({moduleName(Module), std::to_string(VA), std::to_string(VM),
                  Pct(VA, VM), std::to_string(FA), std::to_string(FM),
                  Pct(FA, FM)});
  }
  Table.addSeparator();
  Table.addRow({"ALL", "", "",
                TextTable::formatPercent(Vega.statementAccuracy()), "", "",
                TextTable::formatPercent(Fork.statementAccuracy())});
  std::printf("== Fig. 9: %s statement-level accuracy ==\n%s\n",
              Target.c_str(), Table.render().c_str());
}

} // namespace

int main() {
  for (const char *Target : {"RISCV", "RI5CY", "XCORE"})
    printTarget(Target);
  std::printf("paper: VEGA statement averages 55.0 / 58.5 / 38.5%%; ForkFlow "
              "manual effort >85%% everywhere — shape to match: VEGA well "
              "above ForkFlow in every module, xCORE the weakest VEGA "
              "column\n");
  return 0;
}
