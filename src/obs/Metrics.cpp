//===- obs/Metrics.cpp - Named counters, gauges, histograms ------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include "obs/Trace.h"
#include "support/TextTable.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

using namespace vega;
using namespace vega::obs;

namespace {

std::string formatNum(double V) {
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.6g", V);
  return Buf;
}

/// Prometheus metric names allow [a-zA-Z_:][a-zA-Z0-9_:]*; fold everything
/// else (the registry's dots, mostly) to '_'.
std::string promName(const std::string &Name) {
  std::string Out;
  Out.reserve(Name.size());
  for (char C : Name) {
    bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
              (C >= '0' && C <= '9') || C == '_';
    Out += Ok ? C : '_';
  }
  if (!Out.empty() && Out[0] >= '0' && Out[0] <= '9')
    Out.insert(Out.begin(), '_');
  return Out;
}

/// Splits a canonical counter key into (base name, "{...}" label suffix).
std::pair<std::string, std::string> splitLabels(const std::string &Key) {
  size_t Brace = Key.find('{');
  if (Brace == std::string::npos)
    return {Key, ""};
  return {Key.substr(0, Brace), Key.substr(Brace)};
}

const double kSummaryQuantiles[] = {0.5, 0.95, 0.99};

} // namespace

size_t Histogram::bucketFor(double Value) const {
  if (Buckets.empty())
    return 0;
  if (Value < Lo)
    return 0;
  if (Value >= Hi)
    return Buckets.size() - 1;
  size_t Idx;
  if (LogScale) {
    // Buckets uniform in log-space: bucket i covers
    // [Lo * R^(i/N), Lo * R^((i+1)/N)) with R = Hi/Lo.
    double Frac = std::log(Value / Lo) / std::log(Hi / Lo);
    Idx = static_cast<size_t>(Frac * static_cast<double>(Buckets.size()));
  } else {
    double Width = (Hi - Lo) / static_cast<double>(Buckets.size());
    Idx = static_cast<size_t>((Value - Lo) / Width);
  }
  return std::min(Idx, Buckets.size() - 1);
}

double Histogram::bucketLowerBound(size_t Idx) const {
  if (Buckets.empty())
    return Lo;
  double N = static_cast<double>(Buckets.size());
  if (LogScale)
    return Lo * std::pow(Hi / Lo, static_cast<double>(Idx) / N);
  return Lo + (Hi - Lo) * static_cast<double>(Idx) / N;
}

double Histogram::bucketUpperBound(size_t Idx) const {
  return bucketLowerBound(Idx + 1);
}

void Histogram::observe(double Value) {
  if (Buckets.empty())
    return;
  if (Count == 0) {
    MinSeen = MaxSeen = Value;
  } else {
    MinSeen = std::min(MinSeen, Value);
    MaxSeen = std::max(MaxSeen, Value);
  }
  ++Buckets[bucketFor(Value)];
  ++Count;
  Sum += Value;
}

double Histogram::quantile(double Q) const {
  if (Count == 0 || Buckets.empty())
    return 0.0;
  Q = std::min(1.0, std::max(0.0, Q));
  // The rank of the target observation, 1-based.
  double Target = Q * static_cast<double>(Count);
  if (Target < 1.0)
    Target = 1.0;
  uint64_t Cum = 0;
  for (size_t I = 0; I < Buckets.size(); ++I) {
    if (Buckets[I] == 0)
      continue;
    double Before = static_cast<double>(Cum);
    Cum += Buckets[I];
    if (static_cast<double>(Cum) >= Target) {
      double Frac = (Target - Before) / static_cast<double>(Buckets[I]);
      double V = bucketLowerBound(I) +
                 Frac * (bucketUpperBound(I) - bucketLowerBound(I));
      return std::min(std::max(V, MinSeen), MaxSeen);
    }
  }
  return MaxSeen;
}

bool Histogram::sameShape(const Histogram &Other) const {
  return Lo == Other.Lo && Hi == Other.Hi && LogScale == Other.LogScale &&
         Buckets.size() == Other.Buckets.size();
}

bool Histogram::merge(const Histogram &Other) {
  if (!sameShape(Other))
    return false;
  if (Other.Count == 0)
    return true;
  if (Count == 0) {
    MinSeen = Other.MinSeen;
    MaxSeen = Other.MaxSeen;
  } else {
    MinSeen = std::min(MinSeen, Other.MinSeen);
    MaxSeen = std::max(MaxSeen, Other.MaxSeen);
  }
  for (size_t I = 0; I < Buckets.size(); ++I)
    Buckets[I] += Other.Buckets[I];
  Count += Other.Count;
  Sum += Other.Sum;
  return true;
}

MetricsRegistry &MetricsRegistry::instance() {
  static MetricsRegistry Registry;
  return Registry;
}

MetricsRegistry::MetricsRegistry() {
  // The standard histogram layouts, pinned once so no call site can cause a
  // first-call-wins divergence. Latency metrics are log-bucketed: 10µs to
  // 10min in 64 geometric buckets keeps p50 and p99 resolvable decades
  // apart at fixed memory.
  declareHistogram("serve.request_ms", 0.01, 600000.0, 64, /*LogScale=*/true);
  declareHistogram("serve.queue_ms", 0.01, 600000.0, 64, /*LogScale=*/true);
  declareHistogram("serve.batch_size", 0.0, 32.0, 32);
  declareHistogram("gen.confidence", 0.0, 1.0, 10);
  // KV rows reused per prefix-sharing hit (0..MaxDstLen+margin).
  declareHistogram("gen.prefix_reuse_tokens", 0.0, 64.0, 32);
  declareHistogram("train.epoch_loss", 0.0, 16.0, 32);
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Counters.clear();
  Gauges.clear();
  Histograms.clear();
  // Declared shapes are definitions, not data — they survive.
}

void MetricsRegistry::addCounter(const std::string &Name, uint64_t Delta) {
  if (!enabled())
    return;
  std::lock_guard<std::mutex> Lock(Mu);
  Counters[Name] += Delta;
}

std::string
MetricsRegistry::labeledName(const std::string &Name,
                             const std::vector<MetricLabel> &Labels) {
  std::vector<MetricLabel> Sorted = Labels;
  std::sort(Sorted.begin(), Sorted.end());
  std::string Key = Name + "{";
  bool First = true;
  for (const auto &[K, V] : Sorted) {
    if (!First)
      Key += ",";
    First = false;
    Key += K + "=\"";
    for (char C : V) {
      if (C == '\\' || C == '"')
        Key += '\\';
      if (C == '\n') {
        Key += "\\n";
        continue;
      }
      Key += C;
    }
    Key += "\"";
  }
  Key += "}";
  return Key;
}

void MetricsRegistry::addCounter(const std::string &Name,
                                 const std::vector<MetricLabel> &Labels,
                                 uint64_t Delta) {
  if (!enabled())
    return;
  std::string Key = labeledName(Name, Labels);
  std::lock_guard<std::mutex> Lock(Mu);
  Counters[Key] += Delta;
}

void MetricsRegistry::setGauge(const std::string &Name, double Value) {
  if (!enabled())
    return;
  std::lock_guard<std::mutex> Lock(Mu);
  Gauges[Name] = Value;
}

Histogram &
MetricsRegistry::materializeLocked(const std::string &Name,
                                   const HistogramShape &Fallback) {
  auto It = Histograms.find(Name);
  if (It != Histograms.end())
    return It->second;
  HistogramShape Shape = Fallback;
  auto Decl = Declared.find(Name);
  if (Decl != Declared.end())
    Shape = Decl->second;
  Histogram &H = Histograms[Name];
  H.LogScale = Shape.LogScale;
  H.Lo = Shape.Lo;
  if (H.LogScale && H.Lo <= 0.0)
    H.Lo = 1e-9;
  H.Hi = Shape.Hi > H.Lo ? Shape.Hi : H.Lo + 1.0;
  H.Buckets.assign(std::max<size_t>(1, Shape.BucketCount), 0);
  return H;
}

void MetricsRegistry::declareHistogram(const std::string &Name, double Lo,
                                       double Hi, size_t BucketCount,
                                       bool LogScale) {
  std::lock_guard<std::mutex> Lock(Mu);
  Declared.emplace(Name, HistogramShape{Lo, Hi, BucketCount, LogScale});
}

void MetricsRegistry::defineHistogram(const std::string &Name, double Lo,
                                      double Hi, size_t BucketCount,
                                      bool LogScale) {
  std::lock_guard<std::mutex> Lock(Mu);
  Declared.emplace(Name, HistogramShape{Lo, Hi, BucketCount, LogScale});
  materializeLocked(Name, HistogramShape{Lo, Hi, BucketCount, LogScale});
}

void MetricsRegistry::observe(const std::string &Name, double Value) {
  observe(Name, Value, 0.0, 1.0, 10);
}

void MetricsRegistry::observe(const std::string &Name, double Value, double Lo,
                              double Hi, size_t BucketCount) {
  if (!enabled())
    return;
  std::lock_guard<std::mutex> Lock(Mu);
  materializeLocked(Name, HistogramShape{Lo, Hi, BucketCount, false})
      .observe(Value);
}

uint64_t MetricsRegistry::counterValue(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Counters.find(Name);
  return It == Counters.end() ? 0 : It->second;
}

std::optional<double> MetricsRegistry::gaugeValue(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Gauges.find(Name);
  if (It == Gauges.end())
    return std::nullopt;
  return It->second;
}

std::optional<Histogram>
MetricsRegistry::histogram(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Histograms.find(Name);
  if (It == Histograms.end())
    return std::nullopt;
  return It->second;
}

size_t MetricsRegistry::metricCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Counters.size() + Gauges.size() + Histograms.size();
}

std::string MetricsRegistry::exportJson() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::string Out = "{\n  \"counters\": {";
  bool First = true;
  for (const auto &[Name, Value] : Counters) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "    \"" + jsonEscape(Name) + "\": " + std::to_string(Value);
  }
  Out += "\n  },\n  \"gauges\": {";
  First = true;
  for (const auto &[Name, Value] : Gauges) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "    \"" + jsonEscape(Name) + "\": " + formatNum(Value);
  }
  Out += "\n  },\n  \"histograms\": {";
  First = true;
  for (const auto &[Name, H] : Histograms) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "    \"" + jsonEscape(Name) + "\": {\"lo\": " + formatNum(H.Lo) +
           ", \"hi\": " + formatNum(H.Hi) +
           ", \"log\": " + (H.LogScale ? "true" : "false") +
           ", \"count\": " + std::to_string(H.Count) +
           ", \"sum\": " + formatNum(H.Sum) +
           ", \"min\": " + formatNum(H.MinSeen) +
           ", \"max\": " + formatNum(H.MaxSeen) +
           ", \"p50\": " + formatNum(H.quantile(0.5)) +
           ", \"p95\": " + formatNum(H.quantile(0.95)) +
           ", \"p99\": " + formatNum(H.quantile(0.99)) + ", \"buckets\": [";
    for (size_t I = 0; I < H.Buckets.size(); ++I) {
      if (I)
        Out += ", ";
      Out += std::to_string(H.Buckets[I]);
    }
    Out += "]}";
  }
  Out += "\n  }\n}\n";
  return Out;
}

std::string MetricsRegistry::exportPrometheus() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::string Out;
  // Counters, grouped by base name so each family gets one TYPE line.
  std::string LastFamily;
  for (const auto &[Key, Value] : Counters) {
    auto [Base, Labels] = splitLabels(Key);
    std::string Family = "vega_" + promName(Base) + "_total";
    if (Family != LastFamily) {
      Out += "# TYPE " + Family + " counter\n";
      LastFamily = Family;
    }
    Out += Family + Labels + " " + std::to_string(Value) + "\n";
  }
  for (const auto &[Name, Value] : Gauges) {
    std::string Family = "vega_" + promName(Name);
    Out += "# TYPE " + Family + " gauge\n";
    Out += Family + " " + formatNum(Value) + "\n";
  }
  for (const auto &[Name, H] : Histograms) {
    std::string Family = "vega_" + promName(Name);
    Out += "# TYPE " + Family + " summary\n";
    for (double Q : kSummaryQuantiles)
      Out += Family + "{quantile=\"" + formatNum(Q) + "\"} " +
             formatNum(H.quantile(Q)) + "\n";
    Out += Family + "_sum " + formatNum(H.Sum) + "\n";
    Out += Family + "_count " + std::to_string(H.Count) + "\n";
  }
  return Out;
}

bool MetricsRegistry::writeJson(const std::string &Path) const {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << exportJson();
  return static_cast<bool>(Out);
}

bool MetricsRegistry::writePrometheus(const std::string &Path) const {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << exportPrometheus();
  return static_cast<bool>(Out);
}

std::string MetricsRegistry::textSummary() const {
  std::lock_guard<std::mutex> Lock(Mu);
  TextTable Table;
  Table.setHeader({"Metric", "Kind", "Value", "Detail"});
  for (const auto &[Name, Value] : Counters)
    Table.addRow({Name, "counter", std::to_string(Value), ""});
  for (const auto &[Name, Value] : Gauges)
    Table.addRow({Name, "gauge", formatNum(Value), ""});
  for (const auto &[Name, H] : Histograms) {
    std::string Detail = "n=" + std::to_string(H.Count) +
                         " mean=" + formatNum(H.mean()) +
                         " p50=" + formatNum(H.quantile(0.5)) +
                         " p99=" + formatNum(H.quantile(0.99)) +
                         " min=" + formatNum(H.MinSeen) +
                         " max=" + formatNum(H.MaxSeen);
    std::string Sparkline;
    uint64_t Peak = 0;
    for (uint64_t B : H.Buckets)
      Peak = std::max(Peak, B);
    for (uint64_t B : H.Buckets) {
      static const char *Levels[] = {" ", ".", ":", "-", "=", "#"};
      size_t L = Peak ? (B * 5 + Peak - 1) / Peak : 0;
      Sparkline += Levels[std::min<size_t>(L, 5)];
    }
    Table.addRow({Name, "histogram", "[" + Sparkline + "]", Detail});
  }
  return Table.render();
}
