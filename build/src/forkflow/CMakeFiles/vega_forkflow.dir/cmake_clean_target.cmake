file(REMOVE_RECURSE
  "libvega_forkflow.a"
)
