//===- corpus/TargetTraits.h - Synthetic target descriptions -----*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Trait records describing each target processor in the synthetic corpus
/// (SynthLLVM). A target's traits drive everything rendered for it: its
/// TGTDIRs description files, its golden backend functions, and the cycle
/// model of its simulator. The corpus substitutes for the 101 GitHub LLVM
/// backends the paper trains on (see DESIGN.md §2).
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_CORPUS_TARGETTRAITS_H
#define VEGA_CORPUS_TARGETTRAITS_H

#include <string>
#include <vector>

namespace vega {

/// Broad processor category (Fig. 6(a) of the paper).
enum class TargetCategory { CPU, GPU, DSP, MCU, IoT, ULP };

/// What a relocation fixup is for; determines which statements mention it.
enum class FixupClass {
  Abs32,    ///< plain 32-bit data
  Abs64,    ///< 64-bit data (only on 64-bit targets)
  Hi,       ///< upper-immediate half (MOVT / LUI / AUIPC class)
  Lo,       ///< lower-immediate half
  Branch,   ///< pc-relative branch
  Call,     ///< call/plt
  Got,      ///< GOT-indirect access
  TprelHi,  ///< TLS hi
  TprelLo,  ///< TLS lo
};

/// One target-specific relocation fixup.
struct FixupInfo {
  std::string Name;   ///< e.g. "fixup_riscv_pcrel_hi20"
  std::string Reloc;  ///< e.g. "R_RISCV_PCREL_HI20"
  FixupClass Class = FixupClass::Abs32;
  bool IsPCRel = false;
};

/// Rough functional role of an instruction; drives selection and the cycle
/// model.
enum class InstrClass {
  Alu,      ///< add/sub/logic
  Mul,
  Div,
  Load,
  Store,
  Branch,
  Call,
  Ret,
  Mov,
  Shift,
  Cmp,
  HwLoop,   ///< hardware-loop setup (RI5CY-class)
  Simd,     ///< packed ALU op
  Thread,   ///< thread scheduler op (xCORE-class)
  Compressed,
};

/// One machine instruction of a synthetic target.
struct InstrInfo {
  std::string Name;  ///< e.g. "ADDrr", "lp_setup"
  InstrClass Class = InstrClass::Alu;
  int Cycles = 1;    ///< simulator cost
  int Size = 4;      ///< encoding size in bytes
};

/// A target-specific SelectionDAG-style node name (getTargetNodeName).
struct IsdNodeInfo {
  std::string Name;   ///< e.g. "CALL", "HWLOOP"
  std::string Lowered; ///< instruction it selects to
};

/// Everything the corpus knows about one target processor.
struct TargetTraits {
  std::string Name;          ///< e.g. "RISCV" (used in file names and code)
  TargetCategory Category = TargetCategory::CPU;

  // Architectural flags: each one gates statements in golden functions, so
  // they are the honest source of cross-target variation.
  bool IsBigEndian = false;
  bool Is64Bit = false;
  bool HasVariantKind = false;   ///< models ARM's VariantKind statement
  bool HasDelaySlots = false;    ///< MIPS/Sparc-style branch delay slots
  bool HasHardwareLoop = false;  ///< Hexagon / RI5CY hardware loops
  bool HasSimd = false;          ///< packed-SIMD extension
  bool HasCompressed = false;    ///< 16-bit compressed instructions
  bool HasThreadScheduler = false; ///< xCORE-style hardware threads
  bool HasDisassembler = true;   ///< xCORE's LLVM 3.0 port lacks DIS
  bool HasRegisterScavenging = false;
  bool HasPostRAScheduler = false;

  int RegisterCount = 32;
  int ReservedRegCount = 3;      ///< sp, ra/lr, zero-like
  int StackAlignment = 8;
  int BranchLatency = 2;
  int LoadLatency = 2;
  int ImmWidth = 16;             ///< signed immediate width in bits
  int VectorWidth = 0;           ///< SIMD register width in bits (0 = none)

  std::vector<FixupInfo> Fixups;
  std::vector<InstrInfo> Instructions;
  std::vector<IsdNodeInfo> IsdNodes;
  std::vector<std::string> RegisterClasses; ///< e.g. {"GPR", "FPR"}
  std::vector<std::string> RegisterNames;   ///< "X0", "X1", ...
  std::string StackPointer = "SP";
  std::string ReturnAddressReg = "LR";
  std::string FramePointer = "FP";

  /// Free-form quirk tags. A quirk injects statements into specific golden
  /// functions that few (or no) training targets share; quirks are the
  /// honest source of the paper's Err-Def failures.
  std::vector<std::string> Quirks;

  /// True when this target has the given quirk tag.
  bool hasQuirk(const std::string &Tag) const {
    for (const std::string &Q : Quirks)
      if (Q == Tag)
        return true;
    return false;
  }

  /// Lowercase form of Name, used inside fixup identifiers.
  std::string lowerName() const;

  /// Fixups filtered by PC-relativity.
  std::vector<const FixupInfo *> pcRelFixups() const;
  std::vector<const FixupInfo *> absFixups() const;

  /// First instruction of a class, or nullptr.
  const InstrInfo *findInstr(InstrClass Class) const;
};

/// The target database: 21 training targets plus the three evaluation
/// targets of the paper (RISCV, RI5CY, XCORE).
class TargetDatabase {
public:
  /// Builds the standard database used throughout the reproduction.
  static TargetDatabase standard();

  /// All targets, training first, evaluation targets last.
  const std::vector<TargetTraits> &targets() const { return Targets; }

  /// Names of the targets held out for evaluation.
  static const std::vector<std::string> &evaluationTargetNames();

  /// The targets used for training (everything except the held-out three).
  std::vector<const TargetTraits *> trainingTargets() const;

  /// Lookup by name; nullptr when unknown.
  const TargetTraits *find(const std::string &Name) const;

  void add(TargetTraits Traits) { Targets.push_back(std::move(Traits)); }

private:
  std::vector<TargetTraits> Targets;
};

} // namespace vega

#endif // VEGA_CORPUS_TARGETTRAITS_H
