file(REMOVE_RECURSE
  "CMakeFiles/forkflow_test.dir/ForkflowTest.cpp.o"
  "CMakeFiles/forkflow_test.dir/ForkflowTest.cpp.o.d"
  "forkflow_test"
  "forkflow_test.pdb"
  "forkflow_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forkflow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
