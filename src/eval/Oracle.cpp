//===- eval/Oracle.cpp - Pluggable execution oracles --------------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "eval/Oracle.h"

#include "eval/EvalSpecs.h"
#include "support/BinaryIO.h"
#include "support/RNG.h"

#include <algorithm>
#include <map>

using namespace vega;
using namespace vega::eval;

Oracle::~Oracle() = default;

OracleVerdict TextOracle::score(const FunctionAST &Candidate,
                                const FunctionAST &Golden,
                                const std::string &InterfaceName,
                                const TargetTraits &Traits) const {
  Interpreter Interp;
  OracleVerdict Verdict;
  for (const Environment &Env : buildTestEnvironments(InterfaceName, Traits)) {
    ExecResult Expected = Interp.run(Golden, Env);
    if (Expected.St == ExecResult::Status::Error)
      continue; // spec gap: skipped on both sides
    ++Verdict.Cases;
    ExecResult Actual = Interp.run(Candidate, Env);
    if (Actual.St == ExecResult::Status::Error) {
      Verdict.CandidateError = true;
      continue;
    }
    if (Expected.equivalent(Actual))
      ++Verdict.Passed;
  }
  return Verdict;
}

namespace {

/// Boundary-heavy integer pool for randomized Int bindings: zeros, powers
/// of two and their neighbours, signed extremes of common immediate widths.
constexpr int64_t IntPool[] = {
    0,    1,    -1,   2,     3,     4,     7,     8,     15,   16,
    31,   32,   63,   64,    100,   127,   128,   255,   256,  511,
    1023, 1024, 2047, -2048, 4095,  4096,  32767, -32768, -8,  -64,
};

/// Redraws one binding value. Symbols redraw from the binding's observed
/// domain (or, for ordinal-bearing symbols, the full ordinal domain so
/// enum comparisons exercise every member); ints and bools redraw from
/// their pools; units pass through. A quarter of draws keep the curated
/// donor value so the randomized suite stays anchored to known-interesting
/// points.
Value mutateValue(const Value &V, const Environment &Donor,
                  const std::vector<std::string> &SymDomain, RNG &R) {
  if (R.nextBool(0.25))
    return V;
  switch (V.K) {
  case Value::Kind::Int:
    return Value::integer(
        IntPool[R.nextBelow(sizeof(IntPool) / sizeof(IntPool[0]))]);
  case Value::Kind::Bool:
    return Value::boolean(R.nextBool(0.5));
  case Value::Kind::Sym: {
    if (Donor.ordinals().count(V.SymV) && !Donor.ordinals().empty()) {
      std::vector<std::string> Domain;
      Domain.reserve(Donor.ordinals().size());
      for (const auto &[Name, Ord] : Donor.ordinals())
        Domain.push_back(Name);
      return Value::symbol(Domain[R.nextBelow(Domain.size())]);
    }
    if (!SymDomain.empty())
      return Value::symbol(SymDomain[R.nextBelow(SymDomain.size())]);
    return V;
  }
  case Value::Kind::Unit:
    return V;
  }
  return V;
}

} // namespace

std::vector<Environment>
DifferentialOracle::buildCases(const std::string &InterfaceName,
                               const TargetTraits &Traits) const {
  std::vector<Environment> Donors = buildTestEnvironments(InterfaceName, Traits);
  if (Donors.empty())
    Donors.emplace_back();

  // Observed symbol domain per binding key, pooled across all donors —
  // std::map iteration keeps collection order deterministic.
  std::map<std::string, std::vector<std::string>> VarSyms, CallSyms;
  auto Collect = [](const std::map<std::string, Value> &Bindings,
                    std::map<std::string, std::vector<std::string>> &Pool) {
    for (const auto &[Name, V] : Bindings) {
      if (!V.isSym())
        continue;
      std::vector<std::string> &Domain = Pool[Name];
      if (std::find(Domain.begin(), Domain.end(), V.SymV) == Domain.end())
        Domain.push_back(V.SymV);
    }
  };
  for (const Environment &Donor : Donors) {
    Collect(Donor.vars(), VarSyms);
    Collect(Donor.calls(), CallSyms);
  }

  // One RNG stream per (seed, interface): verdicts cannot depend on which
  // thread, job count, or visit order asked for them.
  RNG R(Opts.Seed ^ fnv1a(InterfaceName));
  std::vector<Environment> Cases;
  Cases.reserve(static_cast<size_t>(Opts.CaseBudget));
  for (int I = 0; I < Opts.CaseBudget; ++I) {
    const Environment &Donor = Donors[static_cast<size_t>(I) % Donors.size()];
    Environment Env = Donor; // keeps intrinsic resolver and ordinals
    for (const auto &[Name, V] : Donor.vars())
      Env.bind(Name, mutateValue(V, Donor, VarSyms[Name], R));
    for (const auto &[Name, V] : Donor.calls())
      Env.bindCall(Name, mutateValue(V, Donor, CallSyms[Name], R));
    Cases.push_back(std::move(Env));
  }
  return Cases;
}

OracleVerdict DifferentialOracle::score(const FunctionAST &Candidate,
                                        const FunctionAST &Golden,
                                        const std::string &InterfaceName,
                                        const TargetTraits &Traits) const {
  Interpreter Interp;
  OracleVerdict Verdict;
  for (const Environment &Env : buildCases(InterfaceName, Traits)) {
    ExecResult Expected = Interp.run(Golden, Env);
    if (Expected.St == ExecResult::Status::Error)
      continue; // randomized input outside the golden's domain: skip
    ++Verdict.Cases;
    ExecResult Actual = Interp.run(Candidate, Env);
    if (Actual.St == ExecResult::Status::Error) {
      // The candidate crashed the interpreter where the golden ran: a
      // trap-class divergence.
      Verdict.CandidateError = true;
      ++Verdict.TrapDivergences;
      continue;
    }
    if (Expected.equivalent(Actual)) {
      ++Verdict.Passed;
      continue;
    }
    // Exactly one class per failing case.
    if (Expected.St != Actual.St)
      ++Verdict.TrapDivergences;
    else if (Expected.St == ExecResult::Status::Trap)
      ++(Expected.Message != Actual.Message ? Verdict.TrapDivergences
                                            : Verdict.EffDivergences);
    else
      ++(!(Expected.Return == Actual.Return) ? Verdict.ValDivergences
                                             : Verdict.EffDivergences);
  }
  return Verdict;
}

const TextOracle &vega::eval::textOracle() {
  static const TextOracle Oracle;
  return Oracle;
}

const DifferentialOracle &vega::eval::differentialOracle() {
  static const DifferentialOracle Oracle;
  return Oracle;
}

std::optional<OracleKind> vega::eval::parseOracleKind(const std::string &Name) {
  if (Name == "text")
    return OracleKind::Text;
  if (Name == "differential")
    return OracleKind::Differential;
  if (Name == "both")
    return OracleKind::Both;
  return std::nullopt;
}

const char *vega::eval::oracleKindName(OracleKind Kind) {
  switch (Kind) {
  case OracleKind::Text:
    return "text";
  case OracleKind::Differential:
    return "differential";
  case OracleKind::Both:
    return "both";
  }
  return "text";
}
