file(REMOVE_RECURSE
  "CMakeFiles/vega_gumtree.dir/Matcher.cpp.o"
  "CMakeFiles/vega_gumtree.dir/Matcher.cpp.o.d"
  "libvega_gumtree.a"
  "libvega_gumtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vega_gumtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
