//===- minicc/IR.cpp - Toy intermediate representation -----------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "minicc/IR.h"

using namespace vega;

const char *vega::irOpName(IROp Op) {
  switch (Op) {
  case IROp::Add:
    return "add";
  case IROp::Sub:
    return "sub";
  case IROp::Mul:
    return "mul";
  case IROp::Div:
    return "div";
  case IROp::And:
    return "and";
  case IROp::Or:
    return "or";
  case IROp::Xor:
    return "xor";
  case IROp::Shl:
    return "shl";
  case IROp::Shr:
    return "shr";
  case IROp::Cmp:
    return "cmp";
  case IROp::Mov:
    return "mov";
  case IROp::MovImm:
    return "movi";
  case IROp::Load:
    return "load";
  case IROp::Store:
    return "store";
  case IROp::Br:
    return "br";
  case IROp::CondBr:
    return "condbr";
  case IROp::Call:
    return "call";
  case IROp::Ret:
    return "ret";
  }
  return "?";
}

std::string vega::printModule(const IRModule &Module) {
  std::string Out = "module " + Module.Name + "\n";
  for (const IRFunction &Fn : Module.Functions) {
    Out += "fn " + Fn.Name + " (vregs=" + std::to_string(Fn.NumVRegs) + ")\n";
    for (size_t B = 0; B < Fn.Blocks.size(); ++B) {
      const IRBlock &Block = Fn.Blocks[B];
      Out += Block.Name + ":";
      if (const IRLoop *L = Fn.loopOf(static_cast<int>(B))) {
        Out += "  ; loop trip=" + std::to_string(L->TripCount);
        if (L->Vectorizable)
          Out += " vectorizable";
      }
      Out += "\n";
      for (const IRInstr &I : Block.Instrs) {
        Out += "  ";
        Out += irOpName(I.Op);
        if (I.Dst >= 0)
          Out += " v" + std::to_string(I.Dst);
        if (I.A >= 0)
          Out += ", v" + std::to_string(I.A);
        if (I.B >= 0)
          Out += ", v" + std::to_string(I.B);
        if (I.UsesImm)
          Out += ", #" + std::to_string(I.Imm);
        if (I.TargetBlock >= 0)
          Out += " -> bb" + std::to_string(I.TargetBlock);
        if (!I.Callee.empty())
          Out += " @" + I.Callee;
        if (I.LoopInvariant)
          Out += "  ; invariant";
        Out += "\n";
      }
    }
  }
  return Out;
}
