file(REMOVE_RECURSE
  "libvega_bench_common.a"
)
