file(REMOVE_RECURSE
  "CMakeFiles/vega_bench_common.dir/BenchCommon.cpp.o"
  "CMakeFiles/vega_bench_common.dir/BenchCommon.cpp.o.d"
  "libvega_bench_common.a"
  "libvega_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vega_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
