//===- gumtree/Matcher.h - GumTree-style statement matching ------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// GumTree-style [Falleri et al., ASE'14] alignment between the statement
/// trees of two functions from the same function group. A greedy top-down
/// phase matches isomorphic subtrees; a bottom-up phase matches containers
/// whose descendants largely map to each other (dice similarity); an LCS
/// recovery pass aligns the remaining siblings by label similarity.
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_GUMTREE_MATCHER_H
#define VEGA_GUMTREE_MATCHER_H

#include "ast/Statement.h"

#include <unordered_map>

namespace vega {

/// A one-to-one mapping between statements of two functions.
class TreeMapping {
public:
  /// Records the pair (A, B); both must be unmatched.
  void addPair(const Statement *A, const Statement *B);

  /// Returns B's partner of \p A, or nullptr.
  const Statement *getDst(const Statement *A) const;

  /// Returns A's partner of \p B, or nullptr.
  const Statement *getSrc(const Statement *B) const;

  bool hasSrc(const Statement *A) const { return getDst(A) != nullptr; }
  bool hasDst(const Statement *B) const { return getSrc(B) != nullptr; }

  size_t size() const { return SrcToDst.size(); }

private:
  std::unordered_map<const Statement *, const Statement *> SrcToDst;
  std::unordered_map<const Statement *, const Statement *> DstToSrc;
};

/// Token-level dice similarity of two statements in [0, 1]; statements of
/// different kinds are penalized.
double statementSimilarity(const Statement &A, const Statement &B);

/// Structural hash of a statement's own label (kind + tokens).
uint64_t statementShapeHash(const Statement &Stmt);

/// Structural hash of an entire statement subtree.
uint64_t statementSubtreeHash(const Statement &Stmt);

/// Options controlling the matcher.
struct MatchOptions {
  /// Minimum dice similarity for a bottom-up container match.
  double MinDice = 0.3;
  /// Minimum label similarity for an LCS recovery match.
  double MinLabelSimilarity = 0.55;
};

/// Computes the GumTree alignment between \p A and \p B (their definition
/// statements are always matched as roots).
TreeMapping matchFunctions(const FunctionAST &A, const FunctionAST &B,
                           const MatchOptions &Options = MatchOptions());

} // namespace vega

#endif // VEGA_GUMTREE_MATCHER_H
