//===- tests/ForkflowTest.cpp - fork-flow baseline tests ------------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "eval/Harness.h"
#include "forkflow/ForkFlow.h"

#include <gtest/gtest.h>

using namespace vega;

namespace {

const BackendCorpus &sharedCorpus() {
  static BackendCorpus Corpus =
      BackendCorpus::build(TargetDatabase::standard());
  return Corpus;
}

} // namespace

TEST(ForkFlow, ChoosesATrainingTarget) {
  for (const std::string &Eval : TargetDatabase::evaluationTargetNames()) {
    std::string Source = chooseForkSource(sharedCorpus(), Eval);
    const TargetTraits *T = sharedCorpus().targets().find(Source);
    ASSERT_NE(T, nullptr) << Source;
    // Never forks from a held-out target.
    for (const std::string &Held : TargetDatabase::evaluationTargetNames())
      EXPECT_NE(Source, Held);
  }
}

TEST(ForkFlow, RI5CYForksFromAHardwareLoopTarget) {
  // RI5CY's closest trait-neighbour has hardware loops (Hexagon-like),
  // matching the paper's observation about Hexagon and RI5CY.
  std::string Source = chooseForkSource(sharedCorpus(), "RI5CY");
  const TargetTraits *T = sharedCorpus().targets().find(Source);
  ASSERT_NE(T, nullptr);
  EXPECT_TRUE(T->HasHardwareLoop) << Source;
}

TEST(ForkFlow, PortRenamesAllSpellings) {
  GeneratedBackend GB = forkflowBackend(sharedCorpus(), "Mips", "RISCV");
  const GeneratedFunction *Fn = GB.find("getRelocType");
  ASSERT_NE(Fn, nullptr);
  ASSERT_TRUE(Fn->Emitted);
  std::string Text = Fn->AST.render();
  EXPECT_EQ(Text.find("Mips"), std::string::npos);
  EXPECT_EQ(Text.find("mips"), std::string::npos);
  EXPECT_EQ(Text.find("MIPS"), std::string::npos);
  EXPECT_NE(Text.find("RISCV"), std::string::npos);
}

TEST(ForkFlow, AccuracyIsFarBelowGolden) {
  // The paper's headline comparison forks from MIPS (§4.2): fork-flow lands
  // far below VEGA while the golden backend is 100% by construction.
  GeneratedBackend GB = forkflowBackend(sharedCorpus(), "Mips", "RISCV");
  BackendEval Eval = evaluateBackend(GB, *sharedCorpus().backend("RISCV"),
                                     *sharedCorpus().targets().find("RISCV"));
  // At our corpus scale functions are 5-15 statements, so a rename-port
  // legitimately satisfies more of them than at LLVM scale (paper: <8%);
  // the preserved shape is VEGA >> ForkFlow, checked in the benches.
  EXPECT_LT(Eval.functionAccuracy(), 0.60);
  EXPECT_GT(Eval.functionAccuracy(), 0.0); // structure-only functions port
}

TEST(ForkFlow, ForkedFixupsFailRegression) {
  GeneratedBackend GB = forkflowBackend(sharedCorpus(), "Mips", "RISCV");
  BackendEval Eval = evaluateBackend(GB, *sharedCorpus().backend("RISCV"),
                                     *sharedCorpus().targets().find("RISCV"));
  for (const FunctionEval &F : Eval.Functions) {
    if (F.InterfaceName == "getRelocType")
      EXPECT_FALSE(F.Accurate) << "renamed MIPS fixups cannot satisfy RISCV";
    if (F.InterfaceName == "getNumFixupKinds")
      EXPECT_TRUE(F.Accurate) << "pure-structure functions port fine";
  }
}

TEST(ForkFlow, PortingIsIdempotentOnNeutralSources) {
  // Forking to a target whose name never appears leaves sources intact.
  GeneratedBackend GB = forkflowBackend(sharedCorpus(), "Lanai", "XCORE");
  const Backend *Lanai = sharedCorpus().backend("Lanai");
  const GeneratedFunction *Ported = GB.find("canRealignStack");
  const BackendFunction *Original = Lanai->find("canRealignStack");
  ASSERT_NE(Ported, nullptr);
  ASSERT_NE(Original, nullptr);
  EXPECT_EQ(Ported->AST.size(), Original->AST.size());
}
