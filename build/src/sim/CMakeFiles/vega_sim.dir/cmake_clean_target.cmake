file(REMOVE_RECURSE
  "libvega_sim.a"
)
