//===- serve/Scheduler.cpp - Continuous decode-step batching -----------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "serve/Scheduler.h"

#include "obs/Metrics.h"

#include <algorithm>
#include <utility>

using namespace vega;
using namespace vega::serve;

Scheduler::Scheduler(VegaSession &Session, SchedulerOptions Options)
    : Session(Session), Options(Options) {
  if (this->Options.Window < 1)
    this->Options.Window = 1;
  if (this->Options.MaxQueue < 0)
    this->Options.MaxQueue = 0;
  LoopThread = std::thread([this] { loop(); });
  CompletionThread = std::thread([this] { completionLoop(); });
}

Scheduler::~Scheduler() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Stop = true;
  }
  Cv.notify_all();
  LoopThread.join();
  // The loop is gone; whatever it left behind gets a terminal answer. A
  // waiter is never silently dropped — transports block on the callback.
  {
    std::lock_guard<std::mutex> Lock(Mu);
    for (PendingAdmission &P : Queue)
      failWaiter(std::move(P.W), Status::unavailable("server shutting down"));
    Queue.clear();
    for (ActiveGeneration &G : Active)
      for (Waiter &W : G.Waiters)
        failWaiter(std::move(W), Status::unavailable("server shutting down"));
    Active.clear();
  }
  {
    std::lock_guard<std::mutex> Lock(CompMu);
    CompStop = true;
  }
  CompCv.notify_all();
  CompletionThread.join();
}

Status Scheduler::submit(const std::string &Target,
                         std::shared_ptr<obs::RequestContext> Ctx,
                         Completion Done) {
  Waiter W{std::move(Ctx), std::move(Done)};
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Stop)
      return Status::unavailable("scheduler stopped");
    // Attach-dedup: a target already decoding serves every new request for
    // it from the same generation. Window-exempt — no new decode work.
    for (ActiveGeneration &G : Active)
      if (G.Target == Target) {
        if (W.Ctx)
          obs::MetricsRegistry::instance().observe("serve.queue_ms",
                                                   W.Ctx->elapsedMs());
        G.Waiters.push_back(std::move(W));
        Attached.fetch_add(1, std::memory_order_relaxed);
        obs::MetricsRegistry::instance().addCounter("serve.sched.attached");
        return Status::ok();
      }
    if (Options.MaxQueue > 0 &&
        Queue.size() >= static_cast<size_t>(Options.MaxQueue)) {
      Rejected.fetch_add(1, std::memory_order_relaxed);
      obs::MetricsRegistry::instance().addCounter("serve.sched.rejected");
      return Status::resourceExhausted(
          "admission queue full (" + std::to_string(Queue.size()) +
          " waiting, window " + std::to_string(Options.Window) + ")");
    }
    Queue.push_back(PendingAdmission{Target, std::move(W)});
    publishGauges();
  }
  Cv.notify_one();
  return Status::ok();
}

SchedulerStats Scheduler::stats() const {
  SchedulerStats S;
  S.Steps = Steps.load(std::memory_order_relaxed);
  S.Admitted = Admitted.load(std::memory_order_relaxed);
  S.Attached = Attached.load(std::memory_order_relaxed);
  S.Retired = Retired.load(std::memory_order_relaxed);
  S.Rejected = Rejected.load(std::memory_order_relaxed);
  S.Expired = Expired.load(std::memory_order_relaxed);
  S.MaxCoActive = MaxCoActive.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> Lock(Mu);
  S.Active = Active.size();
  S.QueueDepth = Queue.size();
  return S;
}

void Scheduler::pause() {
  std::lock_guard<std::mutex> Lock(Mu);
  Paused = true;
}

void Scheduler::resume() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Paused = false;
  }
  Cv.notify_all();
}

void Scheduler::loop() {
  while (true) {
    {
      std::unique_lock<std::mutex> Lock(Mu);
      Cv.wait(Lock, [this] {
        return Stop || (!Paused && (!Queue.empty() || !Active.empty()));
      });
      if (Stop)
        return;
      admitLocked();
      if (Active.empty())
        continue;
    }
    stepOnce();
    retireCompleted();
  }
}

void Scheduler::admitLocked() {
  // Attach first: queued requests whose target started decoding since they
  // were submitted join that generation (window-exempt).
  for (auto It = Queue.begin(); It != Queue.end();) {
    ActiveGeneration *Owner = nullptr;
    for (ActiveGeneration &G : Active)
      if (G.Target == It->Target) {
        Owner = &G;
        break;
      }
    if (!Owner) {
      ++It;
      continue;
    }
    if (It->W.Ctx)
      obs::MetricsRegistry::instance().observe("serve.queue_ms",
                                               It->W.Ctx->elapsedMs());
    Owner->Waiters.push_back(std::move(It->W));
    Attached.fetch_add(1, std::memory_order_relaxed);
    obs::MetricsRegistry::instance().addCounter("serve.sched.attached");
    It = Queue.erase(It);
  }
  // Then open new generations while the window has room. This is where
  // mid-flight admission happens: the loop re-enters here between every
  // step, so a request that arrived during a step joins the next one.
  while (Active.size() < static_cast<size_t>(Options.Window) &&
         !Queue.empty()) {
    PendingAdmission P = std::move(Queue.front());
    Queue.pop_front();
    // A generation opened earlier in this very pass may now own the
    // target (two queued requests for one target): attach, don't open a
    // duplicate generation.
    ActiveGeneration *Owner = nullptr;
    for (ActiveGeneration &G : Active)
      if (G.Target == P.Target) {
        Owner = &G;
        break;
      }
    if (Owner) {
      if (P.W.Ctx)
        obs::MetricsRegistry::instance().observe("serve.queue_ms",
                                                 P.W.Ctx->elapsedMs());
      Owner->Waiters.push_back(std::move(P.W));
      Attached.fetch_add(1, std::memory_order_relaxed);
      obs::MetricsRegistry::instance().addCounter("serve.sched.attached");
      continue;
    }
    if (P.W.Ctx && P.W.Ctx->expired()) {
      Expired.fetch_add(1, std::memory_order_relaxed);
      failWaiter(std::move(P.W), Status::unavailable("deadline exceeded"));
      continue;
    }
    if (P.W.Ctx)
      obs::MetricsRegistry::instance().observe("serve.queue_ms",
                                               P.W.Ctx->elapsedMs());
    StatusOr<VegaSession::GenerationHandle> Handle =
        Session.beginGenerate(P.Target);
    if (!Handle.isOk()) {
      failWaiter(std::move(P.W), Handle.status());
      continue;
    }
    ActiveGeneration G;
    G.Target = P.Target;
    G.Handle = std::move(Handle.value());
    G.Waiters.push_back(std::move(P.W));
    Active.push_back(std::move(G));
    Admitted.fetch_add(1, std::memory_order_relaxed);
    obs::MetricsRegistry::instance().addCounter("serve.sched.admitted");
    uint64_t Co = Active.size();
    uint64_t Prev = MaxCoActive.load(std::memory_order_relaxed);
    while (Prev < Co &&
           !MaxCoActive.compare_exchange_weak(Prev, Co,
                                              std::memory_order_relaxed)) {
    }
  }
  publishGauges();
}

void Scheduler::stepOnce() {
  // Claim up to one pool's worth of units, round-robin across the active
  // set so every co-active request advances each step. With fewer active
  // requests than lanes the extra claims revisit requests with units left
  // (same-request units are independent), keeping the pool saturated.
  size_t LaneTarget = std::max(
      Active.size(), static_cast<size_t>(Session.system().stage3Lanes()));
  std::vector<std::pair<VegaSession::GenerationHandle *, size_t>> Units;
  Units.reserve(LaneTarget);
  bool Claimed = true;
  while (Units.size() < LaneTarget && Claimed) {
    Claimed = false;
    for (ActiveGeneration &G : Active) {
      if (Units.size() >= LaneTarget)
        break;
      if (std::optional<size_t> U = G.Handle.claimUnit()) {
        Units.emplace_back(&G.Handle, *U);
        Claimed = true;
      }
    }
  }
  if (Units.empty())
    return;

  // Attribute each target's generation spans to the first request that
  // asked for it; the router thread-local hops pool lanes with the fan-out
  // so every gen.* span lands in the right flight-recorder ring.
  obs::RequestRouter Router;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    for (ActiveGeneration &G : Active)
      if (!G.Waiters.empty() && G.Waiters.front().Ctx)
        Router.bind(G.Target, G.Waiters.front().Ctx.get());
  }
  auto &Metrics = obs::MetricsRegistry::instance();
  Metrics.addCounter("serve.sched.steps");
  Metrics.observe("serve.batch_size", static_cast<double>(Active.size()));
  {
    obs::RouterScope RouteScope(&Router);
    std::lock_guard<std::mutex> EngineLock(EngineMu);
    Session.system().runGenerateUnits(Units);
  }
  Steps.fetch_add(1, std::memory_order_relaxed);
}

void Scheduler::retireCompleted() {
  // Fold under Mu so submit() can never attach to a generation that is
  // mid-retire; the fold itself is a cheap deterministic merge (every unit
  // already executed), not decode work.
  std::vector<CompletionItem> Done;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    for (auto It = Active.begin(); It != Active.end();) {
      if (!It->Handle.complete()) {
        ++It;
        continue;
      }
      CompletionItem Item;
      Item.Waiters = std::move(It->Waiters);
      StatusOr<GeneratedBackend> Backend =
          Session.finish(std::move(It->Handle));
      if (Backend.isOk())
        Item.Backend =
            std::make_shared<GeneratedBackend>(std::move(Backend.value()));
      else
        Item.Error = Backend.status();
      Done.push_back(std::move(Item));
      It = Active.erase(It);
      Retired.fetch_add(1, std::memory_order_relaxed);
      obs::MetricsRegistry::instance().addCounter("serve.sched.retired");
    }
    publishGauges();
  }
  for (CompletionItem &Item : Done)
    pushCompletion(std::move(Item));
}

void Scheduler::completionLoop() {
  while (true) {
    CompletionItem Item;
    {
      std::unique_lock<std::mutex> Lock(CompMu);
      CompCv.wait(Lock, [this] { return CompStop || !Completions.empty(); });
      if (Completions.empty())
        return; // stopping and fully drained
      Item = std::move(Completions.front());
      Completions.pop_front();
    }
    for (Waiter &W : Item.Waiters)
      if (W.Done)
        W.Done(Item.Backend.get(), Item.Backend ? Status::ok() : Item.Error);
  }
}

void Scheduler::failWaiter(Waiter W, Status St) {
  CompletionItem Item;
  Item.Waiters.push_back(std::move(W));
  Item.Error = std::move(St);
  pushCompletion(std::move(Item));
}

void Scheduler::pushCompletion(CompletionItem Item) {
  {
    std::lock_guard<std::mutex> Lock(CompMu);
    Completions.push_back(std::move(Item));
  }
  CompCv.notify_one();
}

void Scheduler::publishGauges() {
  auto &Metrics = obs::MetricsRegistry::instance();
  Metrics.setGauge("serve.queue_depth", static_cast<double>(Queue.size()));
  Metrics.setGauge("serve.active", static_cast<double>(Active.size()));
}
