//===- obs/Trace.h - Pipeline-wide tracing -----------------------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide, thread-safe trace recorder with scoped RAII spans and
/// Chrome-trace (chrome://tracing / Perfetto) JSON export. Disabled by
/// default: a Span constructed while the recorder is off costs one
/// steady-clock read and an atomic load, and records nothing.
///
/// The recorder is the single timing source for the pipeline: the Fig. 7
/// fields (GeneratedFunction::Seconds, GeneratedBackend::ModuleSeconds) are
/// derived from Span::close() so the bench numbers and the exported traces
/// can never disagree.
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_OBS_TRACE_H
#define VEGA_OBS_TRACE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace vega {
namespace obs {

class RequestContext;

/// One completed span ("X" phase event in the Chrome trace format).
struct TraceEvent {
  std::string Name;
  std::string Category;
  double StartUs = 0.0; ///< microseconds since the recorder epoch
  double DurUs = 0.0;   ///< span duration in microseconds
  uint64_t ThreadId = 0;
  int Depth = 0; ///< nesting depth within its thread at record time
  std::vector<std::pair<std::string, std::string>> Args;
};

/// The process-wide recorder. All mutation goes through Span.
class TraceRecorder {
public:
  static TraceRecorder &instance();

  void setEnabled(bool On) { Enabled.store(On, std::memory_order_relaxed); }
  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }

  /// Drops every recorded event (the epoch is preserved).
  void clear();

  size_t eventCount() const;

  /// A copy of the recorded events, ordered by start time.
  std::vector<TraceEvent> snapshot() const;

  /// The full trace as Chrome-trace JSON ({"traceEvents": [...]}). Raw
  /// thread-id hashes are folded to small dense tids in order of first
  /// appearance, so two threads can never collide onto one trace row.
  std::string exportChromeTrace() const;

  /// Writes exportChromeTrace() to \p Path; false on I/O failure.
  bool writeChromeTrace(const std::string &Path) const;

private:
  friend class Span;
  TraceRecorder();

  double sinceEpochUs(std::chrono::steady_clock::time_point T) const;
  void record(TraceEvent E);

  std::atomic<bool> Enabled{false};
  std::chrono::steady_clock::time_point Epoch;
  mutable std::mutex Mu;
  std::vector<TraceEvent> Events;
};

/// A scoped span. Construction samples the clock; destruction (or an
/// explicit close()) records a TraceEvent when the recorder was enabled at
/// construction time. Spans nest per thread via a thread-local depth; the
/// depth counter is balanced against construction-time state (TrackedDepth)
/// so toggling the recorder mid-span — in either direction — cannot skew
/// the accounting for later spans.
///
/// A span constructed while a RequestContext is current is additionally
/// attributed to that request: the recorded trace event carries a
/// "req":<id> arg, and a SpanRecord lands in the request's flight-recorder
/// ring even when the global recorder is disabled.
class Span {
public:
  explicit Span(std::string Name, std::string Category = "vega");
  ~Span();
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

  /// Attaches a key/value argument (dropped when not recording).
  void arg(const std::string &Key, std::string Value);

  /// Elapsed seconds since construction (valid before and after close()).
  double seconds() const;

  /// Ends the span now, records it, and returns the elapsed seconds — the
  /// canonical duration for any bookkeeping derived from this span.
  double close();

private:
  std::string Name, Category;
  std::vector<std::pair<std::string, std::string>> Args;
  std::chrono::steady_clock::time_point Start;
  RequestContext *Ctx = nullptr; ///< the request current at construction
  double ElapsedSec = 0.0;
  int Depth = 0;
  bool Recording = false;
  bool TrackedDepth = false; ///< this span incremented CurrentDepth
  bool Closed = false;
};

/// Escapes \p S for embedding in a JSON string literal (shared with the
/// metrics exporter).
std::string jsonEscape(const std::string &S);

} // namespace obs
} // namespace vega

#endif // VEGA_OBS_TRACE_H
