//===- forkflow/ForkFlow.cpp - The fork-flow baseline -----------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "forkflow/ForkFlow.h"

#include "obs/Trace.h"
#include "support/StringUtils.h"

#include <cctype>

using namespace vega;

namespace {

std::string upperOf(const std::string &S) {
  std::string Out;
  for (char C : S)
    Out += static_cast<char>(std::toupper(static_cast<unsigned char>(C)));
  return Out;
}

std::string lowerOf(const std::string &S) {
  std::string Out;
  for (char C : S)
    Out += static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
  return Out;
}

/// Trait-distance between two targets: how many architecture flags differ.
int traitDistance(const TargetTraits &A, const TargetTraits &B) {
  int D = 0;
  D += A.IsBigEndian != B.IsBigEndian;
  D += A.Is64Bit != B.Is64Bit;
  D += A.HasVariantKind != B.HasVariantKind;
  D += A.HasDelaySlots != B.HasDelaySlots;
  D += A.HasHardwareLoop != B.HasHardwareLoop;
  D += A.HasSimd != B.HasSimd;
  D += A.HasCompressed != B.HasCompressed;
  D += A.HasThreadScheduler != B.HasThreadScheduler;
  D += A.HasPostRAScheduler != B.HasPostRAScheduler;
  D += A.HasRegisterScavenging != B.HasRegisterScavenging;
  return D;
}

} // namespace

std::string vega::chooseForkSource(const BackendCorpus &Corpus,
                                   const std::string &NewTarget) {
  const TargetTraits *New = Corpus.targets().find(NewTarget);
  if (!New)
    return "Mips";
  std::string Best = "Mips";
  int BestD = 1 << 20;
  for (const TargetTraits *T : Corpus.targets().trainingTargets()) {
    int D = traitDistance(*T, *New);
    if (D < BestD) {
      BestD = D;
      Best = T->Name;
    }
  }
  return Best;
}

GeneratedBackend vega::forkflowBackend(const BackendCorpus &Corpus,
                                       const std::string &SourceTarget,
                                       const std::string &NewTarget) {
  GeneratedBackend Result;
  Result.TargetName = NewTarget;

  const Backend *Source = Corpus.backend(SourceTarget);
  if (!Source)
    reportFatalError("unknown fork source '" + SourceTarget + "'");

  for (const auto &Fn : Source->Functions) {
    obs::Span FnSpan(std::string("gen.") + moduleName(Fn->Module),
                     "forkflow");
    FnSpan.arg("function", Fn->InterfaceName);
    FnSpan.arg("target", NewTarget);
    GeneratedFunction GF;
    GF.InterfaceName = Fn->InterfaceName;
    GF.Module = Fn->Module;
    GF.Emitted = true;
    GF.Confidence = 1.0; // fork-flow has no confidence model

    // Rename the donor's spelling variants throughout the source.
    std::string Ported = Fn->Source;
    Ported = replaceAll(std::move(Ported), SourceTarget, NewTarget);
    Ported = replaceAll(std::move(Ported), lowerOf(SourceTarget),
                        lowerOf(NewTarget));
    Ported = replaceAll(std::move(Ported), upperOf(SourceTarget),
                        upperOf(NewTarget));
    Expected<FunctionAST> AST = preprocessFunctionSource(Ported);
    if (!AST) {
      GF.Emitted = false;
    } else {
      GF.AST = std::move(*AST);
    }
    GF.Seconds = FnSpan.close();
    Result.ModuleSeconds[GF.Module] += GF.Seconds;
    Result.Functions.push_back(std::move(GF));
  }
  return Result;
}
