file(REMOVE_RECURSE
  "CMakeFiles/minicc_test.dir/MiniccTest.cpp.o"
  "CMakeFiles/minicc_test.dir/MiniccTest.cpp.o.d"
  "minicc_test"
  "minicc_test.pdb"
  "minicc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minicc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
