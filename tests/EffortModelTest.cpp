//===- tests/EffortModelTest.cpp - developer-effort model tests ----------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// The Table-4 effort model in isolation: per-module hour estimates are
/// manual statements × the profile rate, totals sum the modules, and the
/// before/after hour delta the repair report derives from two evaluations
/// behaves on the edges (empty eval, all statements accurate, all manual).
///
//===----------------------------------------------------------------------===//

#include "eval/EffortModel.h"

#include <gtest/gtest.h>

using namespace vega;

namespace {

/// A minimal eval with one module carrying \p Manual manual statements.
BackendEval evalWith(BackendModule Module, size_t Accurate, size_t Manual) {
  BackendEval Eval;
  Eval.TargetName = "RISCV";
  BackendEval::ModuleStats Stats;
  Stats.Functions = 1;
  Stats.AccurateStatements = Accurate;
  Stats.ManualStatements = Manual;
  Eval.PerModule[Module] = Stats;
  return Eval;
}

} // namespace

TEST(EffortModel, ProfilesCarryAllModuleRates) {
  for (const DeveloperProfile &P : {developerA(), developerB()}) {
    EXPECT_FALSE(P.Name.empty());
    for (BackendModule Module : AllModules) {
      auto It = P.HoursPerStatement.find(Module);
      ASSERT_NE(It, P.HoursPerStatement.end())
          << P.Name << " lacks " << moduleName(Module);
      EXPECT_GT(It->second, 0.0);
      EXPECT_LT(It->second, 1.0); // all calibrated rates are < 1 h/stmt
    }
  }
}

TEST(EffortModel, EmptyEvalCostsNothing) {
  BackendEval Empty;
  EXPECT_TRUE(estimateRepairHours(Empty, developerA()).empty());
  EXPECT_EQ(totalRepairHours(Empty, developerA()), 0.0);
  EXPECT_EQ(totalRepairHours(Empty, developerB()), 0.0);
}

TEST(EffortModel, AllPassCostsNothing) {
  // Every statement accurate → zero manual statements → zero hours, even
  // though the module has entries.
  BackendEval Eval = evalWith(BackendModule::SEL, 100, 0);
  std::map<BackendModule, double> Hours =
      estimateRepairHours(Eval, developerA());
  ASSERT_EQ(Hours.size(), 1u);
  EXPECT_EQ(Hours[BackendModule::SEL], 0.0);
  EXPECT_EQ(totalRepairHours(Eval, developerA()), 0.0);
}

TEST(EffortModel, AllFailScalesLinearlyWithManualStatements) {
  BackendEval One = evalWith(BackendModule::EMI, 0, 1);
  BackendEval Ten = evalWith(BackendModule::EMI, 0, 10);
  double RateA = developerA().HoursPerStatement[BackendModule::EMI];
  EXPECT_DOUBLE_EQ(totalRepairHours(One, developerA()), RateA);
  EXPECT_DOUBLE_EQ(totalRepairHours(Ten, developerA()),
                   10.0 * RateA);
  // Developer B repairs EMI slower than A (Table 4) — the model preserves
  // the profile ordering.
  EXPECT_GT(totalRepairHours(Ten, developerB()),
            totalRepairHours(Ten, developerA()));
}

TEST(EffortModel, TotalsSumAcrossModules) {
  BackendEval Eval = evalWith(BackendModule::SEL, 0, 7);
  BackendEval::ModuleStats Asm;
  Asm.Functions = 1;
  Asm.ManualStatements = 3;
  Eval.PerModule[BackendModule::ASS] = Asm;
  DeveloperProfile P = developerA();
  std::map<BackendModule, double> Hours = estimateRepairHours(Eval, P);
  ASSERT_EQ(Hours.size(), 2u);
  EXPECT_DOUBLE_EQ(totalRepairHours(Eval, P),
                   Hours[BackendModule::SEL] + Hours[BackendModule::ASS]);
  EXPECT_DOUBLE_EQ(Hours[BackendModule::SEL],
                   7.0 * P.HoursPerStatement[BackendModule::SEL]);
}

TEST(EffortModel, MissingProfileRateFallsBackConservatively) {
  DeveloperProfile Sparse;
  Sparse.Name = "sparse";
  BackendEval Eval = evalWith(BackendModule::SCH, 0, 4);
  // No SCH rate in the profile: the model charges the 0.005 h/stmt
  // fallback instead of dropping the module silently.
  EXPECT_DOUBLE_EQ(totalRepairHours(Eval, Sparse), 4.0 * 0.005);
}

TEST(EffortModel, RepairHourDeltaTracksManualStatementReduction) {
  // The repair report's before/after delta: hours(baseline) -
  // hours(repaired) must equal the repaired statements × rate, and can
  // never be negative when repair only removes manual statements.
  DeveloperProfile P = developerB();
  BackendEval Before = evalWith(BackendModule::SEL, 10, 25);
  BackendEval After = evalWith(BackendModule::SEL, 31, 4);
  double Delta =
      totalRepairHours(Before, P) - totalRepairHours(After, P);
  EXPECT_DOUBLE_EQ(Delta, (25.0 - 4.0) *
                              P.HoursPerStatement[BackendModule::SEL]);
  EXPECT_GT(Delta, 0.0);
  // Equal manual counts → zero delta, regardless of accuracy movement.
  EXPECT_DOUBLE_EQ(totalRepairHours(Before, P) -
                       totalRepairHours(evalWith(BackendModule::SEL, 99, 25),
                                        P),
                   0.0);
}
