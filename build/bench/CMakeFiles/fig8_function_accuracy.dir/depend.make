# Empty dependencies file for fig8_function_accuracy.
# This may be replaced when dependencies are built.
