//===- tests/PropertyTest.cpp - cross-module property sweeps --------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// Property-style invariants that hold across the whole corpus: parse/render
/// round trips, normalization idempotence, interpreter determinism, and
/// templatization stability.
///
//===----------------------------------------------------------------------===//

#include "ast/Normalize.h"
#include "ast/Parser.h"
#include "eval/EvalSpecs.h"
#include "interp/Interpreter.h"
#include "templatize/FunctionTemplate.h"

#include <gtest/gtest.h>

using namespace vega;

namespace {

const BackendCorpus &sharedCorpus() {
  static BackendCorpus Corpus =
      BackendCorpus::build(TargetDatabase::standard());
  return Corpus;
}

struct FnCase {
  std::string Target;
  std::string Interface;
};

std::vector<FnCase> sampledFunctions() {
  // Every function of the three evaluation targets plus two training ones.
  std::vector<FnCase> Cases;
  for (const char *Target : {"RISCV", "RI5CY", "XCORE", "ARM", "Mips"})
    for (const auto &F : sharedCorpus().backend(Target)->Functions)
      Cases.push_back({Target, F->InterfaceName});
  return Cases;
}

} // namespace

class FunctionPropertyTest : public ::testing::TestWithParam<FnCase> {};

TEST_P(FunctionPropertyTest, RenderParseRenderIsAFixpoint) {
  const auto &[Target, Iface] = GetParam();
  const BackendFunction *Fn = sharedCorpus().backend(Target)->find(Iface);
  ASSERT_NE(Fn, nullptr);
  std::string Once = Fn->AST.render();
  auto Reparsed = parseFunction(Once);
  ASSERT_TRUE(static_cast<bool>(Reparsed));
  EXPECT_EQ(Reparsed->render(), Once);
}

TEST_P(FunctionPropertyTest, NormalizationIsIdempotent) {
  const auto &[Target, Iface] = GetParam();
  const BackendFunction *Fn = sharedCorpus().backend(Target)->find(Iface);
  ASSERT_NE(Fn, nullptr);
  FunctionAST Copy = Fn->AST.clone();
  // The corpus preprocessor already normalized once; a second pass must be
  // a no-op.
  EXPECT_EQ(normalizeSelectionStatements(Copy), 0u);
  EXPECT_EQ(Copy.render(), Fn->AST.render());
}

TEST_P(FunctionPropertyTest, InterpretationIsDeterministic) {
  const auto &[Target, Iface] = GetParam();
  const BackendFunction *Fn = sharedCorpus().backend(Target)->find(Iface);
  const TargetTraits *Traits = sharedCorpus().targets().find(Target);
  ASSERT_NE(Fn, nullptr);
  Interpreter Interp;
  for (const Environment &Env : buildTestEnvironments(Iface, *Traits)) {
    ExecResult A = Interp.run(Fn->AST, Env);
    ExecResult B = Interp.run(Fn->AST, Env);
    EXPECT_TRUE(A.equivalent(B));
    EXPECT_EQ(A.Trace, B.Trace);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SampledFunctions, FunctionPropertyTest,
    ::testing::ValuesIn(sampledFunctions()),
    [](const ::testing::TestParamInfo<FnCase> &Info) {
      return Info.param.Target + "_" + Info.param.Interface;
    });

TEST(TemplateProperty, BuildingTwiceIsIdentical) {
  auto Groups = sharedCorpus().trainingGroups();
  for (const FunctionGroup &G : Groups) {
    FunctionTemplate A = buildFunctionTemplate(G);
    FunctionTemplate B = buildFunctionTemplate(G);
    EXPECT_EQ(A.render(), B.render()) << G.InterfaceName;
    EXPECT_EQ(A.rows().size(), B.rows().size()) << G.InterfaceName;
  }
}

TEST(TemplateProperty, EveryInstanceRendersFromItsRow) {
  // Substituting an instance's fillers back into its row's placeholders
  // must reproduce the instance's token count.
  auto Groups = sharedCorpus().trainingGroups();
  for (const FunctionGroup &G : Groups) {
    FunctionTemplate FT = buildFunctionTemplate(G);
    for (const TemplateRow *Row : FT.rows()) {
      for (const auto &[Target, Instances] : Row->PerTarget) {
        for (const auto &Inst : Instances) {
          size_t FillerTokens = 0;
          for (const auto &F : Inst.SlotFillers)
            FillerTokens += F.size();
          EXPECT_EQ(Row->commonTokenCount() + FillerTokens,
                    Inst.Stmt->Tokens.size())
              << G.InterfaceName << " row " << Row->Index << " target "
              << Target;
        }
      }
    }
  }
}
