//===- minicc/IR.h - Toy intermediate representation -------------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The toy IR consumed by the mini compiler (the substrate behind §4.3's
/// robustness and performance experiments). A function is a list of basic
/// blocks of three-address instructions over virtual registers, with loop
/// metadata (trip counts, vectorizability) attached for the optimizer.
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_MINICC_IR_H
#define VEGA_MINICC_IR_H

#include <cstdint>
#include <string>
#include <vector>

namespace vega {

/// IR operations.
enum class IROp : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  And,
  Or,
  Xor,
  Shl,
  Shr,
  Cmp,
  Mov,    ///< register copy
  MovImm, ///< load immediate
  Load,
  Store,
  Br,     ///< unconditional branch
  CondBr, ///< conditional branch
  Call,
  Ret,
};

/// Printable opcode name.
const char *irOpName(IROp Op);

/// One three-address instruction.
struct IRInstr {
  IROp Op = IROp::Add;
  int Dst = -1; ///< destination vreg (-1 = none)
  int A = -1;   ///< first source vreg
  int B = -1;   ///< second source vreg
  int64_t Imm = 0;
  bool UsesImm = false;
  int TargetBlock = -1; ///< branch target
  std::string Callee;   ///< for Call
  bool LoopInvariant = false; ///< candidate for hoisting
};

/// A basic block.
struct IRBlock {
  std::string Name;
  std::vector<IRInstr> Instrs;
};

/// Loop metadata for the optimizer (single-level loops).
struct IRLoop {
  int BodyBlock = -1;
  int TripCount = 1;
  bool ConstantTrip = true;
  bool Vectorizable = false;
  int NumBlocks = 1;
};

/// A function.
struct IRFunction {
  std::string Name;
  int NumVRegs = 0;
  std::vector<IRBlock> Blocks;
  std::vector<IRLoop> Loops;

  /// The loop whose body is \p BlockIndex, or nullptr.
  const IRLoop *loopOf(int BlockIndex) const {
    for (const IRLoop &L : Loops)
      if (L.BodyBlock == BlockIndex)
        return &L;
    return nullptr;
  }

  /// Total instruction count.
  size_t size() const {
    size_t N = 0;
    for (const IRBlock &B : Blocks)
      N += B.Instrs.size();
    return N;
  }
};

/// A translation unit.
struct IRModule {
  std::string Name;
  std::vector<IRFunction> Functions;
};

/// Renders a module as text (for examples and debugging).
std::string printModule(const IRModule &Module);

} // namespace vega

#endif // VEGA_MINICC_IR_H
