//===- tablegen/DescriptionReader.h - Target description reader --*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Readers for the target-description surface Algorithm 1 searches: TableGen
/// (.td) records and field assignments, C++ header (.h) enums, and .def
/// macro entry files. The readers extract exactly the facts feature
/// selection needs: token occurrences, "field = value" assignments, enum
/// memberships, and record definitions.
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_TABLEGEN_DESCRIPTIONREADER_H
#define VEGA_TABLEGEN_DESCRIPTIONREADER_H

#include "support/VirtualFileSystem.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace vega {

/// "Field = Value" found in a description file. String literal values are
/// stored without quotes.
struct DescAssignment {
  std::string Field;
  std::string Value;
  bool ValueIsString = false;
  std::string Path; ///< file it came from
};

/// An enum (from a .h) or an enum-like macro list (from a .def).
struct DescEnum {
  std::string Name;
  std::vector<std::string> Members;
  /// Identifiers referenced by member initializers (e.g. the
  /// "FirstTargetFixupKind" in "fixup_arm_ldst = FirstTargetFixupKind").
  /// Algorithm 1 uses these to correlate a target enum with the framework
  /// enum it specializes.
  std::vector<std::string> InitRefs;
  std::string Path;

  /// True when \p Ref occurs in InitRefs.
  bool referencesInInit(const std::string &Ref) const {
    for (const std::string &R : InitRefs)
      if (R == Ref)
        return true;
    return false;
  }
};

/// A TableGen record: "def Name : Class { ... }".
struct DescRecord {
  std::string Name;
  std::string ParentClass;
  std::vector<DescAssignment> Fields;
  std::string Path;
};

/// Facts extracted from one description file.
struct DescriptionFile {
  std::string Path;
  std::set<std::string> Tokens; ///< identifiers occurring in the file
  std::vector<DescAssignment> Assignments;
  std::vector<DescEnum> Enums;
  std::vector<DescRecord> Records;
  std::vector<std::string> Classes; ///< class/struct names declared here

  /// Parses \p Content according to the extension of \p Path.
  static DescriptionFile parse(std::string Path, std::string_view Content);
};

/// Aggregated, queryable view over a set of description directories (the
/// TGTDIRs of one target, or the LLVMDIRs of the framework).
class DescriptionIndex {
public:
  /// Parses and indexes one file.
  void addFile(std::string Path, std::string_view Content);

  /// Indexes every file under \p Dir in \p VFS.
  void addDirectory(const VirtualFileSystem &VFS, std::string_view Dir);

  /// Files in which identifier \p Token occurs (empty when none).
  const std::vector<std::string> &filesContaining(const std::string &Token)
      const;

  /// True when \p Token occurs anywhere in the index.
  bool containsToken(const std::string &Token) const;

  /// All assignments whose field name is \p Field.
  std::vector<const DescAssignment *>
  assignmentsOf(const std::string &Field) const;

  /// All assignments in the index.
  const std::vector<DescAssignment> &assignments() const {
    return AllAssignments;
  }

  /// All enums in the index.
  const std::vector<DescEnum> &enums() const { return AllEnums; }

  /// All records in the index.
  const std::vector<DescRecord> &records() const { return AllRecords; }

  /// The enum containing member \p Member, or nullptr.
  const DescEnum *enumOfMember(const std::string &Member) const;

  /// The enum named \p Name, or nullptr.
  const DescEnum *enumNamed(const std::string &Name) const;

  /// All class/struct names declared anywhere in the index.
  const std::set<std::string> &classNames() const { return AllClasses; }

  /// Number of indexed files.
  size_t fileCount() const { return Files.size(); }

  /// The parsed files, in insertion order.
  const std::vector<DescriptionFile> &files() const { return Files; }

private:
  std::vector<DescriptionFile> Files;
  std::map<std::string, std::vector<std::string>> TokenToFiles;
  std::vector<DescAssignment> AllAssignments;
  std::vector<DescEnum> AllEnums;
  std::vector<DescRecord> AllRecords;
  std::set<std::string> AllClasses;
};

} // namespace vega

#endif // VEGA_TABLEGEN_DESCRIPTIONREADER_H
