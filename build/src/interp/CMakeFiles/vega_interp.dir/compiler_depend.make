# Empty compiler generated dependencies file for vega_interp.
# This may be replaced when dependencies are built.
