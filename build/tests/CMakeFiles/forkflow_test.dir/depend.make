# Empty dependencies file for forkflow_test.
# This may be replaced when dependencies are built.
