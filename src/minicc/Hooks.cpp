//===- minicc/Hooks.cpp - Backend hooks driving the compiler ----------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "minicc/Hooks.h"

#include "interp/Interpreter.h"

using namespace vega;

BackendHooks vega::hooksFromTraits(const TargetTraits &Traits) {
  BackendHooks Hooks;
  TargetTraits Copy = Traits; // captured by value for lifetime safety
  Hooks.Latency = [Copy](InstrClass Class) {
    if (const InstrInfo *I = Copy.findInstr(Class))
      return I->Cycles;
    return 1;
  };
  Hooks.PostRAScheduler = Traits.HasPostRAScheduler;
  Hooks.HardwareLoops = Traits.HasHardwareLoop;
  Hooks.VectorWidth = Traits.HasSimd ? Traits.VectorWidth : 0;
  Hooks.StackAlignment = Traits.StackAlignment;
  Hooks.BranchLatency = Traits.BranchLatency;
  return Hooks;
}

BackendHooks vega::hooksFromFunctions(
    const TargetTraits &Traits,
    const std::map<std::string, const FunctionAST *> &Functions) {
  BackendHooks Hooks = hooksFromTraits(Traits);
  Interpreter Interp;

  auto Find = [&](const char *Name) -> const FunctionAST * {
    auto It = Functions.find(Name);
    return It == Functions.end() ? nullptr : It->second;
  };

  if (const FunctionAST *Latency = Find("getInstrLatency")) {
    // Snapshot per-class latencies by interpreting the function once per
    // instruction class present on the target.
    auto Table = std::make_shared<std::map<int, int>>();
    for (const InstrInfo &I : Traits.Instructions) {
      Environment Env;
      Env.bindCall("MI.getOpcode",
                   Value::symbol(Traits.Name + "::" + I.Name));
      ExecResult R = Interp.run(*Latency, Env);
      int Cycles = I.Cycles;
      if (R.St == ExecResult::Status::Ok && R.Return.isInt())
        Cycles = static_cast<int>(R.Return.IntV);
      auto [It, Inserted] =
          Table->emplace(static_cast<int>(I.Class), Cycles);
      (void)Inserted;
      (void)It;
    }
    TargetTraits Copy = Traits;
    Hooks.Latency = [Table, Copy](InstrClass Class) {
      auto It = Table->find(static_cast<int>(Class));
      if (It != Table->end())
        return It->second;
      if (const InstrInfo *I = Copy.findInstr(Class))
        return I->Cycles;
      return 1;
    };
  }

  if (const FunctionAST *PostRA = Find("enablePostRAScheduler")) {
    Environment Env;
    ExecResult R = Interp.run(*PostRA, Env);
    if (R.St == ExecResult::Status::Ok && R.Return.isBool())
      Hooks.PostRAScheduler = R.Return.BoolV;
  }

  if (const FunctionAST *HwLoop = Find("isHardwareLoopProfitable")) {
    Environment Env;
    Env.bindCall("L.hasConstantTripCount", Value::boolean(true));
    Env.bindCall("L.getNumBlocks", Value::integer(1));
    ExecResult R = Interp.run(*HwLoop, Env);
    Hooks.HardwareLoops =
        R.St == ExecResult::Status::Ok && R.Return.isBool() && R.Return.BoolV;
  } else {
    Hooks.HardwareLoops = false;
  }

  if (const FunctionAST *Width = Find("getVectorRegisterWidth")) {
    Environment Env;
    ExecResult R = Interp.run(*Width, Env);
    if (R.St == ExecResult::Status::Ok && R.Return.isInt())
      Hooks.VectorWidth = static_cast<int>(R.Return.IntV);
  } else {
    Hooks.VectorWidth = 0;
  }
  return Hooks;
}
