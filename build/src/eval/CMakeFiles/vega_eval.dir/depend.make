# Empty dependencies file for vega_eval.
# This may be replaced when dependencies are built.
