file(REMOVE_RECURSE
  "CMakeFiles/tablegen_test.dir/TablegenTest.cpp.o"
  "CMakeFiles/tablegen_test.dir/TablegenTest.cpp.o.d"
  "tablegen_test"
  "tablegen_test.pdb"
  "tablegen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tablegen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
