//===- eval/EffortModel.h - Manual-effort model ------------------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The developer-effort model behind Table 4. The paper measured two real
/// developers repairing the VEGA-generated RISC-V backend; we model hours
/// as manual-statements × a per-module correction rate calibrated from the
/// paper's Table 3 (manual statement counts) and Table 4 (hours). The
/// substitution is documented in DESIGN.md §2.
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_EVAL_EFFORTMODEL_H
#define VEGA_EVAL_EFFORTMODEL_H

#include "eval/Harness.h"

namespace vega {

/// A developer's per-module repair rate (hours per manual statement).
struct DeveloperProfile {
  std::string Name;
  std::map<BackendModule, double> HoursPerStatement;
};

/// Developer A: third-year PhD candidate, compiler mid-ends (Table 4).
DeveloperProfile developerA();

/// Developer B: compiler engineer, RISC-V performance work (Table 4).
DeveloperProfile developerB();

/// Estimated repair hours per module for \p Eval under \p Profile.
std::map<BackendModule, double> estimateRepairHours(
    const BackendEval &Eval, const DeveloperProfile &Profile);

/// Total hours across modules.
double totalRepairHours(const BackendEval &Eval,
                        const DeveloperProfile &Profile);

} // namespace vega

#endif // VEGA_EVAL_EFFORTMODEL_H
