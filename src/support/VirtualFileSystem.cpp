//===- support/VirtualFileSystem.cpp - In-memory file tree ----------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "support/VirtualFileSystem.h"

#include <cassert>

using namespace vega;

std::string VirtualFileSystem::normalizePath(std::string_view Path) {
  std::string Result;
  Result.reserve(Path.size());
  size_t I = 0;
  if (Path.substr(0, 2) == "./")
    I = 2;
  while (I < Path.size() && Path[I] == '/')
    ++I;
  bool PrevSlash = false;
  for (; I < Path.size(); ++I) {
    char C = Path[I];
    if (C == '/') {
      if (PrevSlash)
        continue;
      PrevSlash = true;
    } else {
      PrevSlash = false;
    }
    Result += C;
  }
  return Result;
}

void VirtualFileSystem::addFile(std::string_view Path, std::string Content) {
  std::string Normalized = normalizePath(Path);
  assert(!Normalized.empty() && "cannot add a file with an empty path");
  Files[Normalized] = VirtualFile{Normalized, std::move(Content)};
}

void VirtualFileSystem::appendToFile(std::string_view Path,
                                     std::string_view Content) {
  std::string Normalized = normalizePath(Path);
  auto It = Files.find(Normalized);
  if (It == Files.end()) {
    addFile(Normalized, std::string(Content));
    return;
  }
  It->second.Content += Content;
}

std::optional<std::string>
VirtualFileSystem::getFile(std::string_view Path) const {
  auto It = Files.find(normalizePath(Path));
  if (It == Files.end())
    return std::nullopt;
  return It->second.Content;
}

bool VirtualFileSystem::exists(std::string_view Path) const {
  return Files.count(normalizePath(Path)) != 0;
}

bool VirtualFileSystem::removeFile(std::string_view Path) {
  return Files.erase(normalizePath(Path)) != 0;
}

std::vector<const VirtualFile *>
VirtualFileSystem::filesUnder(std::string_view Dir) const {
  std::string Prefix = normalizePath(Dir);
  if (!Prefix.empty() && Prefix.back() != '/')
    Prefix += '/';
  std::vector<const VirtualFile *> Result;
  for (auto It = Files.lower_bound(Prefix); It != Files.end(); ++It) {
    if (It->first.compare(0, Prefix.size(), Prefix) != 0)
      break;
    Result.push_back(&It->second);
  }
  return Result;
}

std::vector<const VirtualFile *>
VirtualFileSystem::filesUnderWithExtension(std::string_view Dir,
                                           std::string_view Extension) const {
  std::vector<const VirtualFile *> Result;
  for (const VirtualFile *File : filesUnder(Dir)) {
    const std::string &P = File->Path;
    if (P.size() >= Extension.size() &&
        P.compare(P.size() - Extension.size(), Extension.size(), Extension) ==
            0)
      Result.push_back(File);
  }
  return Result;
}

std::vector<const VirtualFile *> VirtualFileSystem::allFiles() const {
  std::vector<const VirtualFile *> Result;
  Result.reserve(Files.size());
  for (const auto &[Path, File] : Files)
    Result.push_back(&File);
  return Result;
}
