//===- lexer/Lexer.cpp - C++-subset tokenizer -----------------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "lexer/Lexer.h"

#include <cctype>
#include <set>

using namespace vega;

const char *vega::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::Keyword:
    return "keyword";
  case TokenKind::IntLiteral:
    return "int-literal";
  case TokenKind::StringLiteral:
    return "string-literal";
  case TokenKind::CharLiteral:
    return "char-literal";
  case TokenKind::Punct:
    return "punct";
  case TokenKind::Placeholder:
    return "placeholder";
  case TokenKind::EndOfFile:
    return "eof";
  }
  return "unknown";
}

bool Lexer::isKeyword(std::string_view Word) {
  static const std::set<std::string, std::less<>> Keywords = {
      "if",       "else",     "switch",  "case",    "default", "return",
      "break",    "continue", "for",     "while",   "do",      "unsigned",
      "signed",   "int",      "bool",    "char",    "short",   "long",
      "float",    "double",   "void",    "auto",    "const",   "static",
      "struct",   "class",    "enum",    "namespace", "using", "true",
      "false",    "nullptr",  "virtual", "override", "public", "private",
      "protected", "template", "typename", "sizeof", "new",    "delete",
      "constexpr", "inline",  "let",     "def",     "in",      "string",
      "bits",     "list",     "include", "field",   "defm",    "multiclass"};
  return Keywords.count(Word) != 0;
}

Lexer::Lexer(std::string_view Buffer, bool KeepPreprocessor)
    : Buffer(Buffer), KeepPreprocessor(KeepPreprocessor) {}

char Lexer::peek(size_t Ahead) const {
  return Pos + Ahead < Buffer.size() ? Buffer[Pos + Ahead] : '\0';
}

void Lexer::skipTrivia() {
  while (Pos < Buffer.size()) {
    char C = Buffer[Pos];
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++Pos;
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (Pos < Buffer.size() && Buffer[Pos] != '\n')
        ++Pos;
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      Pos += 2;
      while (Pos + 1 < Buffer.size() &&
             !(Buffer[Pos] == '*' && Buffer[Pos + 1] == '/'))
        ++Pos;
      Pos = Pos + 2 <= Buffer.size() ? Pos + 2 : Buffer.size();
      continue;
    }
    if (C == '#' && !KeepPreprocessor) {
      while (Pos < Buffer.size() && Buffer[Pos] != '\n')
        ++Pos;
      continue;
    }
    break;
  }
}

Token Lexer::lex() {
  skipTrivia();
  if (Pos >= Buffer.size())
    return Token(TokenKind::EndOfFile, "", static_cast<uint32_t>(Pos));

  uint32_t Start = static_cast<uint32_t>(Pos);
  char C = Buffer[Pos];

  // Template placeholders ($SV0, $SV1, ...) survive re-lexing of rendered
  // statement templates.
  if (C == '$' &&
      (std::isalpha(static_cast<unsigned char>(peek(1))) || peek(1) == '_')) {
    size_t Begin = Pos++;
    while (Pos < Buffer.size() &&
           (std::isalnum(static_cast<unsigned char>(Buffer[Pos])) ||
            Buffer[Pos] == '_'))
      ++Pos;
    return Token(TokenKind::Placeholder,
                 std::string(Buffer.substr(Begin, Pos - Begin)), Start);
  }

  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
    size_t Begin = Pos;
    while (Pos < Buffer.size() &&
           (std::isalnum(static_cast<unsigned char>(Buffer[Pos])) ||
            Buffer[Pos] == '_'))
      ++Pos;
    std::string Word(Buffer.substr(Begin, Pos - Begin));
    TokenKind Kind =
        isKeyword(Word) ? TokenKind::Keyword : TokenKind::Identifier;
    return Token(Kind, std::move(Word), Start);
  }

  if (std::isdigit(static_cast<unsigned char>(C))) {
    size_t Begin = Pos;
    if (C == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
      Pos += 2;
      while (Pos < Buffer.size() &&
             std::isxdigit(static_cast<unsigned char>(Buffer[Pos])))
        ++Pos;
    } else {
      while (Pos < Buffer.size() &&
             (std::isdigit(static_cast<unsigned char>(Buffer[Pos])) ||
              Buffer[Pos] == '.'))
        ++Pos;
    }
    // Integer suffixes (u, U, l, L, ull...).
    while (Pos < Buffer.size() &&
           (Buffer[Pos] == 'u' || Buffer[Pos] == 'U' || Buffer[Pos] == 'l' ||
            Buffer[Pos] == 'L'))
      ++Pos;
    return Token(TokenKind::IntLiteral,
                 std::string(Buffer.substr(Begin, Pos - Begin)), Start);
  }

  if (C == '"') {
    size_t Begin = Pos++;
    while (Pos < Buffer.size() && Buffer[Pos] != '"') {
      if (Buffer[Pos] == '\\')
        ++Pos;
      ++Pos;
    }
    if (Pos < Buffer.size())
      ++Pos; // closing quote
    return Token(TokenKind::StringLiteral,
                 std::string(Buffer.substr(Begin, Pos - Begin)), Start);
  }

  if (C == '\'') {
    size_t Begin = Pos++;
    while (Pos < Buffer.size() && Buffer[Pos] != '\'') {
      if (Buffer[Pos] == '\\')
        ++Pos;
      ++Pos;
    }
    if (Pos < Buffer.size())
      ++Pos;
    return Token(TokenKind::CharLiteral,
                 std::string(Buffer.substr(Begin, Pos - Begin)), Start);
  }

  // Punctuation: longest-match over multi-character operators.
  static const char *ThreeChar[] = {"<<=", ">>=", "...", "->*"};
  static const char *TwoChar[] = {"::", "->", "==", "!=", "<=", ">=", "&&",
                                  "||", "<<", ">>", "+=", "-=", "*=", "/=",
                                  "%=", "&=", "|=", "^=", "++", "--"};
  for (const char *Op : ThreeChar) {
    if (Buffer.substr(Pos, 3) == Op) {
      Pos += 3;
      return Token(TokenKind::Punct, Op, Start);
    }
  }
  for (const char *Op : TwoChar) {
    if (Buffer.substr(Pos, 2) == Op) {
      Pos += 2;
      return Token(TokenKind::Punct, Op, Start);
    }
  }
  ++Pos;
  return Token(TokenKind::Punct, std::string(1, C), Start);
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  for (Token T = lex(); !T.is(TokenKind::EndOfFile); T = lex())
    Tokens.push_back(std::move(T));
  return Tokens;
}

std::vector<Token> Lexer::tokenize(std::string_view Buffer,
                                   bool KeepPreprocessor) {
  Lexer L(Buffer, KeepPreprocessor);
  return L.lexAll();
}
