file(REMOVE_RECURSE
  "CMakeFiles/bench_serialization_test.dir/BenchSerializationTest.cpp.o"
  "CMakeFiles/bench_serialization_test.dir/BenchSerializationTest.cpp.o.d"
  "bench_serialization_test"
  "bench_serialization_test.pdb"
  "bench_serialization_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_serialization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
