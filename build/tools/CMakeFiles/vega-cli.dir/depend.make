# Empty dependencies file for vega-cli.
# This may be replaced when dependencies are built.
