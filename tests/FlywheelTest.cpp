//===- tests/FlywheelTest.cpp - self-training flywheel tests -------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// Exercises flywheel::FlywheelEngine against a shared one-epoch session:
/// option validation, the acceptance-gated trajectory invariants (pass@1
/// monotone non-decreasing, repair reliance non-increasing), the
/// "vega-flywheel-1" JSON round trip, byte-identical reports across job
/// counts, and byte-identical artifacts across an interrupt + resume.
///
//===----------------------------------------------------------------------===//

#include "flywheel/Flywheel.h"

#include "core/VegaSession.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace vega;

namespace {

VegaSession &session() {
  static std::unique_ptr<VegaSession> S = [] {
    VegaOptions Opts;
    Opts.Model.Epochs = 1;
    Opts.Verbose = false;
    StatusOr<std::unique_ptr<VegaSession>> Built = VegaSession::build(Opts);
    if (!Built.isOk()) {
      std::fprintf(stderr, "session build failed: %s\n",
                   Built.status().toString().c_str());
      std::abort();
    }
    return std::move(*Built);
  }();
  return *S;
}

/// The shared session's trained weights, captured once.
const std::string &baseWeights() {
  static std::string Blob = session().system().model()->saveWeights();
  return Blob;
}

/// A fresh trainable system over the standard corpus, seeded with the
/// shared session's weights — the flywheel mutates its corpus and weights,
/// so every test works on its own copy.
std::unique_ptr<VegaSystem> freshSystem(int Jobs, int TrainJobs) {
  VegaOptions Opts;
  Opts.Model.Epochs = 1;
  Opts.Verbose = false;
  Opts.Jobs = Jobs;
  Opts.TrainJobs = TrainJobs;
  auto System = std::make_unique<VegaSystem>(VegaSession::standardCorpus(),
                                             Opts);
  System->buildTemplates();
  System->buildDataset();
  System->initModelFromCache();
  if (!System->model()->loadWeights(baseWeights())) {
    std::fprintf(stderr, "base weight restore failed\n");
    std::abort();
  }
  return System;
}

/// Small, fast schedule shared by the expensive tests.
flywheel::FlywheelOptions fastOptions() {
  flywheel::FlywheelOptions Opts;
  Opts.Targets = {"RISCV"};
  Opts.Generations = 1;
  Opts.FineTuneEpochs = 1;
  Opts.BeamWidth = 2;
  Opts.MaxRounds = 1;
  return Opts;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

void clearArtifacts(const std::string &Dir) {
  for (int K = 0; K <= 4; ++K) {
    std::string Base = Dir + "/gen-" + std::to_string(K);
    std::remove((Base + ".vega").c_str());
    std::remove((Base + ".report.json").c_str());
    std::remove((Base + ".harvest.json").c_str());
  }
}

void expectMonotone(const flywheel::FlywheelReport &Report) {
  ASSERT_FALSE(Report.Generations.empty());
  EXPECT_EQ(Report.Generations.front().Generation, 0);
  EXPECT_TRUE(Report.Generations.front().Accepted);
  for (size_t I = 1; I < Report.Generations.size(); ++I) {
    const flywheel::GenerationStats &Prev = Report.Generations[I - 1];
    const flywheel::GenerationStats &Cur = Report.Generations[I];
    EXPECT_EQ(Cur.Generation, static_cast<int>(I));
    EXPECT_GE(Cur.Pass1, Prev.Pass1) << "generation " << I;
    EXPECT_LE(Cur.RepairReliance, Prev.RepairReliance) << "generation " << I;
  }
}

} // namespace

TEST(Flywheel, OptionValidation) {
  flywheel::FlywheelOptions Opts;
  EXPECT_EQ(Opts.validate().code(), StatusCode::InvalidArgument); // no targets
  Opts.Targets = {"RISCV"};
  EXPECT_TRUE(Opts.validate().isOk());
  Opts.Generations = 0;
  EXPECT_EQ(Opts.validate().code(), StatusCode::InvalidArgument);
  Opts = {};
  Opts.Targets = {"RISCV"};
  Opts.FineTuneEpochs = 0;
  EXPECT_EQ(Opts.validate().code(), StatusCode::InvalidArgument);
  Opts = {};
  Opts.Targets = {"RISCV"};
  Opts.NegativeConfidenceFloor = 1.5;
  EXPECT_EQ(Opts.validate().code(), StatusCode::InvalidArgument);
  Opts = {};
  Opts.Targets = {"RISCV"};
  Opts.NegativeWeight = -1.0f;
  EXPECT_EQ(Opts.validate().code(), StatusCode::InvalidArgument);
  Opts = {};
  Opts.Targets = {"RISCV"};
  Opts.PositiveWeight = 0.0f;
  EXPECT_EQ(Opts.validate().code(), StatusCode::InvalidArgument);
}

TEST(Flywheel, UnknownTargetRejected) {
  flywheel::FlywheelOptions Opts = fastOptions();
  Opts.Targets = {"NoSuchTarget"};
  flywheel::FlywheelEngine Engine(session().system(), Opts);
  StatusOr<flywheel::FlywheelReport> Report = Engine.run();
  EXPECT_EQ(Report.status().code(), StatusCode::InvalidArgument);
}

TEST(Flywheel, GenerationJsonRejectsMalformedDocuments) {
  EXPECT_EQ(flywheel::generationFromJson(Json::object()).status().code(),
            StatusCode::InvalidArgument);
  EXPECT_EQ(flywheel::reportFromJson(Json::object()).status().code(),
            StatusCode::InvalidArgument);
  Json NotQuite = Json::object();
  NotQuite.set("schema", "vega-flywheel-1");
  EXPECT_EQ(flywheel::reportFromJson(NotQuite).status().code(),
            StatusCode::InvalidArgument);
}

TEST(Flywheel, ReportByteIdenticalAcrossJobs) {
  std::unique_ptr<VegaSystem> One = freshSystem(1, 1);
  std::unique_ptr<VegaSystem> Four = freshSystem(4, 4);

  flywheel::FlywheelOptions Opts = fastOptions();
  Opts.Jobs = 1;
  flywheel::FlywheelEngine EngineOne(*One, Opts);
  StatusOr<flywheel::FlywheelReport> A = EngineOne.run();
  ASSERT_TRUE(A.isOk()) << A.status().toString();

  Opts.Jobs = 4;
  flywheel::FlywheelEngine EngineFour(*Four, Opts);
  StatusOr<flywheel::FlywheelReport> B = EngineFour.run();
  ASSERT_TRUE(B.isOk()) << B.status().toString();

  EXPECT_EQ(flywheel::reportToJson(*A).dump(2),
            flywheel::reportToJson(*B).dump(2));
}

TEST(Flywheel, ResumeMatchesUninterruptedRunByteForByte) {
  const std::string DirA = "flywheel_test_full";
  const std::string DirB = "flywheel_test_resume";
  clearArtifacts(DirA);
  clearArtifacts(DirB);

  flywheel::FlywheelOptions Opts = fastOptions();
  Opts.Generations = 2;

  // Uninterrupted run: generations 0..2 into DirA.
  std::unique_ptr<VegaSystem> Full = freshSystem(0, 0);
  Opts.OutDir = DirA;
  flywheel::FlywheelEngine FullEngine(*Full, Opts);
  StatusOr<flywheel::FlywheelReport> FullReport = FullEngine.run();
  ASSERT_TRUE(FullReport.isOk()) << FullReport.status().toString();
  ASSERT_EQ(FullReport->Generations.size(), 3u);
  EXPECT_EQ(FullReport->GenerationsRun, 3);
  EXPECT_EQ(FullReport->GenerationsResumed, 0);
  expectMonotone(*FullReport);
  EXPECT_EQ(FullReport->Options.Targets, Opts.Targets);

  // Baseline harvested nothing; later generations account their pairs.
  EXPECT_EQ(FullReport->Generations[0].HarvestedPositives, 0u);
  EXPECT_EQ(FullReport->Generations[0].HarvestedNegatives, 0u);
  size_t Added = 0;
  for (const flywheel::GenerationStats &G : FullReport->Generations) {
    EXPECT_EQ(G.HarvestedPositives + G.HarvestedNegatives,
              G.PairsAdded + G.PairsDeduped + G.PairsSkippedOov);
    Added += G.PairsAdded;
  }
  EXPECT_EQ(FullReport->TotalPairsAdded, Added);

  // The JSON rendering round-trips byte-for-byte.
  Json Doc = flywheel::reportToJson(*FullReport);
  StatusOr<flywheel::FlywheelReport> Parsed = flywheel::reportFromJson(Doc);
  ASSERT_TRUE(Parsed.isOk()) << Parsed.status().toString();
  EXPECT_EQ(flywheel::reportToJson(*Parsed).dump(2), Doc.dump(2));

  // Interrupted run: generations 0..1 into DirB, then a fresh engine
  // resumes the directory and computes only generation 2.
  std::unique_ptr<VegaSystem> Part = freshSystem(0, 0);
  Opts.OutDir = DirB;
  Opts.Generations = 1;
  flywheel::FlywheelEngine PartEngine(*Part, Opts);
  StatusOr<flywheel::FlywheelReport> PartReport = PartEngine.run();
  ASSERT_TRUE(PartReport.isOk()) << PartReport.status().toString();
  ASSERT_EQ(PartReport->Generations.size(), 2u);

  std::unique_ptr<VegaSystem> Res = freshSystem(0, 0);
  Opts.Generations = 2;
  flywheel::FlywheelEngine ResEngine(*Res, Opts);
  StatusOr<flywheel::FlywheelReport> ResReport = ResEngine.run();
  ASSERT_TRUE(ResReport.isOk()) << ResReport.status().toString();
  ASSERT_EQ(ResReport->Generations.size(), 3u);
  EXPECT_EQ(ResReport->GenerationsResumed, 2);
  EXPECT_EQ(ResReport->GenerationsRun, 1);

  // The resumed run's generation records equal the uninterrupted run's —
  // as JSON bytes, the strongest equality the report offers.
  for (size_t I = 0; I < 3; ++I)
    EXPECT_EQ(
        flywheel::generationToJson(ResReport->Generations[I]).dump(2),
        flywheel::generationToJson(FullReport->Generations[I]).dump(2))
        << "generation " << I;

  // And every persisted artifact matches byte-for-byte, including the
  // generation-2 checkpoint the resumed run produced after the interrupt.
  for (int K = 0; K <= 2; ++K) {
    for (const char *Suffix : {".report.json", ".vega"}) {
      std::string A = slurp(DirA + "/gen-" + std::to_string(K) + Suffix);
      std::string B = slurp(DirB + "/gen-" + std::to_string(K) + Suffix);
      ASSERT_FALSE(A.empty()) << K << Suffix;
      EXPECT_EQ(A == B, true) << "gen-" << K << Suffix;
    }
    if (K > 0) {
      std::string A = slurp(DirA + "/gen-" + std::to_string(K) +
                            ".harvest.json");
      std::string B = slurp(DirB + "/gen-" + std::to_string(K) +
                            ".harvest.json");
      ASSERT_FALSE(A.empty());
      EXPECT_EQ(A == B, true) << "gen-" << K << ".harvest.json";
    }
  }

  // A directory written under different options is refused — the scan
  // rejects before any evaluation or corpus mutation, so the shared
  // session is safe to use.
  flywheel::FlywheelOptions Other = fastOptions();
  Other.OutDir = DirB;
  Other.Seed = 99;
  flywheel::FlywheelEngine ClashEngine(session().system(), Other);
  StatusOr<flywheel::FlywheelReport> ClashReport = ClashEngine.run();
  EXPECT_EQ(ClashReport.status().code(), StatusCode::FailedPrecondition);
}
