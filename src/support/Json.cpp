//===- support/Json.cpp - JSON values, writer, parser ------------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace vega;

const Json *Json::get(const std::string &Key) const {
  const Json *Found = nullptr;
  for (const auto &[K, V] : Fields)
    if (K == Key)
      Found = &V; // last write wins
  return Found;
}

std::string Json::getString(const std::string &Key,
                            const std::string &Default) const {
  const Json *V = get(Key);
  return V && V->isString() ? V->asString() : Default;
}

double Json::getNumber(const std::string &Key, double Default) const {
  const Json *V = get(Key);
  return V && V->isNumber() ? V->asNumber() : Default;
}

std::string Json::quote(std::string_view S) {
  std::string Out = "\"";
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  Out += '"';
  return Out;
}

namespace {

/// Shortest round-trip-ish number rendering: integers print without a
/// fractional part so ids and counts look like ids and counts.
std::string numberText(double V) {
  if (std::isfinite(V) && V == std::floor(V) && std::fabs(V) < 1e15) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.0f", V);
    return Buf;
  }
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  return Buf;
}

} // namespace

void Json::dumpTo(std::string &Out, int Indent, int Depth) const {
  auto NewlineIndent = [&](int D) {
    if (Indent < 0)
      return;
    Out += '\n';
    Out.append(static_cast<size_t>(Indent * D), ' ');
  };
  switch (K) {
  case Kind::Null:
    Out += "null";
    return;
  case Kind::Bool:
    Out += BoolV ? "true" : "false";
    return;
  case Kind::Number:
    Out += numberText(NumV);
    return;
  case Kind::String:
    Out += quote(StrV);
    return;
  case Kind::Array:
    if (Items.empty()) {
      Out += "[]";
      return;
    }
    Out += '[';
    for (size_t I = 0; I < Items.size(); ++I) {
      if (I)
        Out += ',';
      NewlineIndent(Depth + 1);
      Items[I].dumpTo(Out, Indent, Depth + 1);
    }
    NewlineIndent(Depth);
    Out += ']';
    return;
  case Kind::Object:
    if (Fields.empty()) {
      Out += "{}";
      return;
    }
    Out += '{';
    for (size_t I = 0; I < Fields.size(); ++I) {
      if (I)
        Out += ',';
      NewlineIndent(Depth + 1);
      Out += quote(Fields[I].first);
      Out += Indent < 0 ? ":" : ": ";
      Fields[I].second.dumpTo(Out, Indent, Depth + 1);
    }
    NewlineIndent(Depth);
    Out += '}';
    return;
  }
}

std::string Json::dump(int Indent) const {
  std::string Out;
  dumpTo(Out, Indent, 0);
  return Out;
}

namespace {

class Parser {
public:
  explicit Parser(std::string_view Text) : Text(Text) {}

  StatusOr<Json> run() {
    StatusOr<Json> V = value();
    if (!V.isOk())
      return V;
    skipWs();
    if (Pos != Text.size())
      return err("trailing characters after JSON document");
    return V;
  }

private:
  Status err(const std::string &Msg) const {
    return Status::invalidArgument(Msg + " at offset " + std::to_string(Pos));
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool literal(std::string_view Word) {
    if (Text.substr(Pos, Word.size()) == Word) {
      Pos += Word.size();
      return true;
    }
    return false;
  }

  StatusOr<Json> value() {
    skipWs();
    if (Pos >= Text.size())
      return err("unexpected end of input");
    char C = Text[Pos];
    if (C == '{')
      return object();
    if (C == '[')
      return array();
    if (C == '"') {
      StatusOr<std::string> S = string();
      if (!S.isOk())
        return S.status();
      return Json(std::move(*S));
    }
    if (literal("true"))
      return Json(true);
    if (literal("false"))
      return Json(false);
    if (literal("null"))
      return Json();
    if (C == '-' || (C >= '0' && C <= '9'))
      return number();
    return err(std::string("unexpected character '") + C + "'");
  }

  StatusOr<Json> number() {
    size_t Start = Pos;
    if (consume('-')) {
    }
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-'))
      ++Pos;
    std::string Num(Text.substr(Start, Pos - Start));
    char *End = nullptr;
    double V = std::strtod(Num.c_str(), &End);
    if (End != Num.c_str() + Num.size() || Num.empty())
      return err("malformed number");
    return Json(V);
  }

  StatusOr<std::string> string() {
    if (!consume('"'))
      return err("expected string");
    std::string Out;
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return Out;
      if (static_cast<unsigned char>(C) < 0x20)
        return err("unescaped control character in string");
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        return err("unterminated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return err("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else
            return err("bad hex digit in \\u escape");
        }
        // UTF-8 encode (surrogate pairs are passed through as-is: the
        // corpus is ASCII; this parser just needs to not corrupt them).
        if (Code < 0x80) {
          Out += static_cast<char>(Code);
        } else if (Code < 0x800) {
          Out += static_cast<char>(0xC0 | (Code >> 6));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          Out += static_cast<char>(0xE0 | (Code >> 12));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return err(std::string("unknown escape '\\") + E + "'");
      }
    }
    return err("unterminated string");
  }

  StatusOr<Json> array() {
    consume('[');
    Json Out = Json::array();
    skipWs();
    if (consume(']'))
      return Out;
    while (true) {
      StatusOr<Json> V = value();
      if (!V.isOk())
        return V;
      Out.push(std::move(*V));
      skipWs();
      if (consume(']'))
        return Out;
      if (!consume(','))
        return err("expected ',' or ']' in array");
    }
  }

  StatusOr<Json> object() {
    consume('{');
    Json Out = Json::object();
    skipWs();
    if (consume('}'))
      return Out;
    while (true) {
      skipWs();
      StatusOr<std::string> Key = string();
      if (!Key.isOk())
        return Key.status();
      skipWs();
      if (!consume(':'))
        return err("expected ':' after object key");
      StatusOr<Json> V = value();
      if (!V.isOk())
        return V;
      Out.set(std::move(*Key), std::move(*V));
      skipWs();
      if (consume('}'))
        return Out;
      if (!consume(','))
        return err("expected ',' or '}' in object");
    }
  }

  std::string_view Text;
  size_t Pos = 0;
};

} // namespace

StatusOr<Json> Json::parse(std::string_view Text) {
  return Parser(Text).run();
}
