//===- lexer/Token.h - Token kinds and values --------------------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokens for the C++ subset the backend corpus is written in. The paper's
/// feature selection (Algorithm 1) and templatization both operate on token
/// sequences produced by this lexer (its "Tokenizer [42]").
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_LEXER_TOKEN_H
#define VEGA_LEXER_TOKEN_H

#include <cstdint>
#include <string>

namespace vega {

/// Lexical category of a token.
enum class TokenKind : uint8_t {
  Identifier,    ///< foo, MCFixupKind
  Keyword,       ///< if, switch, return, unsigned, ...
  IntLiteral,    ///< 42, 0x1f
  StringLiteral, ///< "RISCV" (Text keeps the quotes)
  CharLiteral,   ///< 'a'
  Punct,         ///< ::, ->, ==, {, }, ;, ...
  Placeholder,   ///< $SV0, $SV1 ... template placeholders (templatize stage)
  EndOfFile,
};

/// A single lexed token. Text always holds the exact spelling.
struct Token {
  TokenKind Kind = TokenKind::EndOfFile;
  std::string Text;
  uint32_t Offset = 0; ///< byte offset in the lexed buffer

  Token() = default;
  Token(TokenKind Kind, std::string Text, uint32_t Offset = 0)
      : Kind(Kind), Text(std::move(Text)), Offset(Offset) {}

  bool is(TokenKind K) const { return Kind == K; }
  bool isIdentifier(std::string_view Name) const {
    return Kind == TokenKind::Identifier && Text == Name;
  }
  bool isKeyword(std::string_view Name) const {
    return Kind == TokenKind::Keyword && Text == Name;
  }
  bool isPunct(std::string_view Spelling) const {
    return Kind == TokenKind::Punct && Text == Spelling;
  }
  bool isPlaceholder() const { return Kind == TokenKind::Placeholder; }

  bool operator==(const Token &Other) const {
    return Kind == Other.Kind && Text == Other.Text;
  }
};

/// Human-readable name of a token kind, for diagnostics and tests.
const char *tokenKindName(TokenKind Kind);

} // namespace vega

#endif // VEGA_LEXER_TOKEN_H
