# Empty dependencies file for table4_manual_effort.
# This may be replaced when dependencies are built.
