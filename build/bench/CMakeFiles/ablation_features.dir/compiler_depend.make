# Empty compiler generated dependencies file for ablation_features.
# This may be replaced when dependencies are built.
