//===- corpus/TargetTraits.cpp - Synthetic target descriptions -------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "corpus/TargetTraits.h"

#include "support/StringUtils.h"

#include <cassert>
#include <cctype>

using namespace vega;

std::string TargetTraits::lowerName() const { return lowerString(Name); }

std::vector<const FixupInfo *> TargetTraits::pcRelFixups() const {
  std::vector<const FixupInfo *> Result;
  for (const FixupInfo &F : Fixups)
    if (F.IsPCRel)
      Result.push_back(&F);
  return Result;
}

std::vector<const FixupInfo *> TargetTraits::absFixups() const {
  std::vector<const FixupInfo *> Result;
  for (const FixupInfo &F : Fixups)
    if (!F.IsPCRel)
      Result.push_back(&F);
  return Result;
}

const InstrInfo *TargetTraits::findInstr(InstrClass Class) const {
  for (const InstrInfo &I : Instructions)
    if (I.Class == Class)
      return &I;
  return nullptr;
}

namespace {

/// Per-target spelling convention for fixups and instructions. The spread of
/// conventions is what gives target-dependent properties genuinely ambiguous
/// value sets (the paper's Err-V source).
enum class NamingStyle {
  Halves16,   ///< hi16/lo16, classic 32-bit RISC (ARM, MIPS, ...)
  Imm20,      ///< pcrel_hi20/lo12, RISC-V family
  Pages21,    ///< adrp-style hi21/lo12, AArch64 family
  Words,      ///< word-offset naming, unusual (xCORE-like)
};

std::string upperName(const std::string &Name) {
  std::string Out;
  for (char C : Name)
    Out += static_cast<char>(std::toupper(static_cast<unsigned char>(C)));
  return Out;
}

void addFixup(TargetTraits &T, FixupClass Class, bool IsPCRel,
              const std::string &Suffix, const std::string &RelocSuffix) {
  FixupInfo F;
  F.Name = "fixup_" + T.lowerName() + "_" + Suffix;
  F.Reloc = "R_" + upperName(T.Name) + "_" + RelocSuffix;
  F.Class = Class;
  F.IsPCRel = IsPCRel;
  T.Fixups.push_back(std::move(F));
}

void makeFixups(TargetTraits &T, NamingStyle Style, bool WithGot,
                bool WithTls) {
  switch (Style) {
  case NamingStyle::Halves16:
    addFixup(T, FixupClass::Abs32, false, "32", "32");
    addFixup(T, FixupClass::Hi, false, "movt_hi16", "MOVT_ABS");
    addFixup(T, FixupClass::Lo, false, "movw_lo16", "MOVW_ABS");
    addFixup(T, FixupClass::Branch, true, "branch24", "BRANCH24");
    addFixup(T, FixupClass::Call, true, "call24", "CALL24");
    addFixup(T, FixupClass::Hi, true, "movt_hi16_pcrel", "MOVT_PREL");
    addFixup(T, FixupClass::Lo, true, "movw_lo16_pcrel", "MOVW_PREL");
    break;
  case NamingStyle::Imm20:
    addFixup(T, FixupClass::Abs32, false, "32", "32");
    addFixup(T, FixupClass::Hi, false, "hi20", "HI20");
    addFixup(T, FixupClass::Lo, false, "lo12_i", "LO12_I");
    addFixup(T, FixupClass::Hi, true, "pcrel_hi20", "PCREL_HI20");
    addFixup(T, FixupClass::Lo, true, "pcrel_lo12_i", "PCREL_LO12_I");
    addFixup(T, FixupClass::Branch, true, "branch", "BRANCH");
    addFixup(T, FixupClass::Call, true, "call", "CALL");
    break;
  case NamingStyle::Pages21:
    addFixup(T, FixupClass::Abs32, false, "abs32", "ABS32");
    addFixup(T, FixupClass::Hi, false, "adr_hi21", "ADR_PREL_PG_HI21");
    addFixup(T, FixupClass::Lo, false, "add_lo12", "ADD_ABS_LO12_NC");
    addFixup(T, FixupClass::Branch, true, "branch26", "JUMP26");
    addFixup(T, FixupClass::Call, true, "call26", "CALL26");
    addFixup(T, FixupClass::Hi, true, "adr_prel21", "ADR_PREL_LO21");
    break;
  case NamingStyle::Words:
    addFixup(T, FixupClass::Abs32, false, "word", "WORD");
    addFixup(T, FixupClass::Hi, false, "dp_high", "DP_HIGH");
    addFixup(T, FixupClass::Lo, false, "dp_low", "DP_LOW");
    addFixup(T, FixupClass::Branch, true, "brel", "BREL");
    addFixup(T, FixupClass::Call, true, "cp_call", "CP_CALL");
    break;
  }
  if (T.Is64Bit)
    addFixup(T, FixupClass::Abs64, false, "64", "64");
  if (WithGot)
    addFixup(T, FixupClass::Got, true, "got", "GOT");
  if (WithTls) {
    addFixup(T, FixupClass::TprelHi, false, "tprel_hi", "TPREL_HI");
    addFixup(T, FixupClass::TprelLo, false, "tprel_lo", "TPREL_LO");
  }
}

void addInstr(TargetTraits &T, const std::string &Name, InstrClass Class,
              int Cycles, int Size = 4) {
  InstrInfo I;
  I.Name = Name;
  I.Class = Class;
  I.Cycles = Cycles;
  I.Size = Size;
  T.Instructions.push_back(std::move(I));
}

uint64_t nameHash(const std::string &Name) {
  uint64_t H = 1469598103934665603ULL;
  for (char C : Name) {
    H ^= static_cast<unsigned char>(C);
    H *= 1099511628211ULL;
  }
  return H;
}

/// \p MnemonicStyle: 0 = LLVM-ish "ADDrr", 1 = lowercase "add", 2 = unusual
/// xCORE-like spellings.
void makeInstructions(TargetTraits &T, int MnemonicStyle) {
  auto N = [&](const char *A, const char *B, const char *C) {
    return MnemonicStyle == 0 ? A : MnemonicStyle == 1 ? B : C;
  };
  // Per-target microarchitectural profile: real ISAs disagree on multiply
  // and divide costs, which is exactly why fork-flow ports of scheduling
  // hooks break (§4.2).
  uint64_t H = nameHash(T.Name);
  int MulCycles = 2 + static_cast<int>((H >> 16) % 4);  // 2..5
  int DivCycles = 8 + static_cast<int>((H >> 24) % 12); // 8..19
  addInstr(T, N("ADDrr", "add", "ladd"), InstrClass::Alu, 1);
  addInstr(T, N("SUBrr", "sub", "lsub"), InstrClass::Alu, 1);
  addInstr(T, N("ANDrr", "and", "and_"), InstrClass::Alu, 1);
  addInstr(T, N("ORrr", "or", "or_"), InstrClass::Alu, 1);
  addInstr(T, N("XORrr", "xor", "xor_"), InstrClass::Alu, 1);
  addInstr(T, N("MUL", "mul", "lmul"), InstrClass::Mul, MulCycles);
  addInstr(T, N("DIV", "div", "divu"), InstrClass::Div, DivCycles);
  addInstr(T, N("LDRi", "lw", "ldw"), InstrClass::Load, T.LoadLatency);
  addInstr(T, N("STRi", "sw", "stw"), InstrClass::Store, 1);
  addInstr(T, N("Bcc", "beq", "bt"), InstrClass::Branch, T.BranchLatency);
  addInstr(T, N("BL", "jal", "blrelative"), InstrClass::Call, 2);
  addInstr(T, N("RET", "ret", "retsp"), InstrClass::Ret, 2);
  addInstr(T, N("MOVr", "mv", "setr"), InstrClass::Mov, 1);
  addInstr(T, N("LSLr", "sll", "shl"), InstrClass::Shift, 1);
  addInstr(T, N("CMPrr", "slt", "lss"), InstrClass::Cmp, 1);
  if (T.HasHardwareLoop) {
    addInstr(T, N("LOOP0", "lp_setup", "lsetup"), InstrClass::HwLoop, 1);
    addInstr(T, N("ENDLOOP0", "lp_end", "lend"), InstrClass::HwLoop, 0);
  }
  if (T.HasSimd) {
    addInstr(T, N("VADD", "pv_add", "vadd"), InstrClass::Simd, 1);
    addInstr(T, N("VMUL", "pv_mul", "vmul"), InstrClass::Simd, 3);
  }
  if (T.HasCompressed)
    addInstr(T, N("C_ADD", "c_add", "cadd"), InstrClass::Compressed, 1, 2);
  if (T.HasThreadScheduler) {
    addInstr(T, "tstart", InstrClass::Thread, 4);
    addInstr(T, "tsetr", InstrClass::Thread, 1);
    addInstr(T, "msync", InstrClass::Thread, 6);
  }
}

void makeIsdNodes(TargetTraits &T) {
  auto Node = [&](const char *Name, InstrClass SelClass) {
    const InstrInfo *I = T.findInstr(SelClass);
    T.IsdNodes.push_back(IsdNodeInfo{Name, I ? I->Name : "ADDrr"});
  };
  Node("CALL", InstrClass::Call);
  Node("RET_FLAG", InstrClass::Ret);
  Node("BR_CC", InstrClass::Branch);
  Node("SELECT_CC", InstrClass::Cmp);
  Node("Hi", InstrClass::Mov);
  Node("Lo", InstrClass::Mov);
  Node("Wrapper", InstrClass::Mov);
  if (T.HasHardwareLoop) {
    Node("LOOP_BEGIN", InstrClass::HwLoop);
    Node("LOOP_END", InstrClass::HwLoop);
  }
  if (T.HasSimd) {
    Node("VSPLAT", InstrClass::Simd);
    Node("VADD", InstrClass::Simd);
  }
  if (T.HasThreadScheduler) {
    Node("TSTART", InstrClass::Thread);
    Node("MSYNC", InstrClass::Thread);
  }
}

void makeRegisters(TargetTraits &T, int MnemonicStyle, bool RiscvRegs) {
  int Visible = T.RegisterCount > 16 ? 16 : T.RegisterCount;
  // Register-file naming diverges across real targets (x0.. vs $t0.. vs
  // r0..); homogeneous names would let fork-flow REG ports pass by luck.
  const char *Prefix = "R";
  if (RiscvRegs) {
    Prefix = "X";
  } else if (MnemonicStyle == 1) {
    const char *Prefixes[] = {"T", "G", "W", "A", "S"};
    Prefix = Prefixes[nameHash(T.Name) % 5];
  }
  for (int I = 0; I < Visible; ++I)
    T.RegisterNames.push_back(Prefix + std::to_string(I));
  if (RiscvRegs) {
    T.StackPointer = "X2";
    T.ReturnAddressReg = "X1";
    T.FramePointer = "X8";
  } else if (MnemonicStyle == 2) {
    T.StackPointer = "SP";
    T.ReturnAddressReg = "LR";
    T.FramePointer = "R10";
    T.RegisterNames.push_back("CP");
    T.RegisterNames.push_back("DP");
  } else {
    T.StackPointer = "SP";
    T.ReturnAddressReg = "LR";
    T.FramePointer = "R11";
  }
  auto AddUnique = [&](const std::string &Name) {
    for (const std::string &R : T.RegisterNames)
      if (R == Name)
        return;
    T.RegisterNames.push_back(Name);
  };
  AddUnique(T.StackPointer);
  AddUnique(T.ReturnAddressReg);
  AddUnique(T.FramePointer);
}

void finishTarget(TargetTraits &T, NamingStyle Style, int MnemonicStyle,
                  bool WithGot = true, bool WithTls = false,
                  bool RiscvRegs = false) {
  // Diversify the microarchitectural numbers per target unless the target
  // definition pinned them. Homogeneous latencies would let a fork-flow
  // rename-port of the SCH/REG hooks pass by accident.
  uint64_t H = nameHash(T.Name);
  if (T.LoadLatency == 2)
    T.LoadLatency = 1 + static_cast<int>(H % 4); // 1..4
  if (T.BranchLatency == 2)
    T.BranchLatency = 1 + static_cast<int>((H >> 8) % 3); // 1..3
  if (T.StackAlignment == 8) {
    const int Aligns[3] = {4, 8, 16};
    T.StackAlignment = Aligns[(H >> 32) % 3];
  }
  switch (Style) {
  case NamingStyle::Halves16:
    T.ImmWidth = 16;
    break;
  case NamingStyle::Imm20:
    T.ImmWidth = 12;
    break;
  case NamingStyle::Pages21:
    T.ImmWidth = 21;
    break;
  case NamingStyle::Words:
    T.ImmWidth = 10;
    break;
  }
  if (T.HasSimd && T.VectorWidth == 0)
    T.VectorWidth = 128;
  makeFixups(T, Style, WithGot, WithTls);
  makeInstructions(T, MnemonicStyle);
  makeIsdNodes(T);
  makeRegisters(T, MnemonicStyle, RiscvRegs);
  if (T.RegisterClasses.empty())
    T.RegisterClasses = {"GPR"};
}

} // namespace

const std::vector<std::string> &TargetDatabase::evaluationTargetNames() {
  static const std::vector<std::string> Names = {"RISCV", "RI5CY", "XCORE"};
  return Names;
}

std::vector<const TargetTraits *> TargetDatabase::trainingTargets() const {
  std::vector<const TargetTraits *> Result;
  for (const TargetTraits &T : Targets) {
    bool HeldOut = false;
    for (const std::string &Name : evaluationTargetNames())
      if (T.Name == Name)
        HeldOut = true;
    if (!HeldOut)
      Result.push_back(&T);
  }
  return Result;
}

const TargetTraits *TargetDatabase::find(const std::string &Name) const {
  for (const TargetTraits &T : Targets)
    if (T.Name == Name)
      return &T;
  return nullptr;
}

TargetDatabase TargetDatabase::standard() {
  TargetDatabase DB;

  auto Make = [](const char *Name, TargetCategory Cat) {
    TargetTraits T;
    T.Name = Name;
    T.Category = Cat;
    return T;
  };

  { // ARM: VariantKind, SIMD, scavenging; the paper's first exemplar.
    TargetTraits T = Make("ARM", TargetCategory::CPU);
    T.HasVariantKind = true;
    T.HasSimd = true;
    T.HasRegisterScavenging = true;
    T.HasPostRAScheduler = true;
    T.RegisterCount = 16;
    T.RegisterClasses = {"GPR", "SPR", "DPR"};
    finishTarget(T, NamingStyle::Halves16, 0, true, true);
    DB.add(std::move(T));
  }
  { // Mips: big-endian, delay slots; the paper's second exemplar.
    TargetTraits T = Make("Mips", TargetCategory::CPU);
    T.IsBigEndian = true;
    T.HasDelaySlots = true;
    T.HasRegisterScavenging = true;
    T.RegisterClasses = {"GPR32", "FGR32"};
    finishTarget(T, NamingStyle::Halves16, 1, true, true);
    DB.add(std::move(T));
  }
  { // AArch64: 64-bit pages addressing, SIMD.
    TargetTraits T = Make("AArch64", TargetCategory::CPU);
    T.Is64Bit = true;
    T.HasSimd = true;
    T.HasPostRAScheduler = true;
    T.StackAlignment = 16;
    T.RegisterClasses = {"GPR64", "FPR128"};
    finishTarget(T, NamingStyle::Pages21, 0, true, true);
    DB.add(std::move(T));
  }
  { // PowerPC: big-endian 64-bit, VariantKind, SIMD.
    TargetTraits T = Make("PPC", TargetCategory::CPU);
    T.IsBigEndian = true;
    T.Is64Bit = true;
    T.HasVariantKind = true;
    T.HasSimd = true;
    T.StackAlignment = 16;
    T.RegisterClasses = {"GPRC", "VRRC"};
    finishTarget(T, NamingStyle::Halves16, 0, true, true);
    DB.add(std::move(T));
  }
  { // Sparc: big-endian, delay slots, VariantKind.
    TargetTraits T = Make("Sparc", TargetCategory::CPU);
    T.IsBigEndian = true;
    T.HasDelaySlots = true;
    T.HasVariantKind = true;
    T.RegisterClasses = {"IntRegs", "FPRegs"};
    finishTarget(T, NamingStyle::Halves16, 1);
    DB.add(std::move(T));
  }
  { // Hexagon: DSP with hardware loops and SIMD — teaches RI5CY's loops.
    TargetTraits T = Make("Hexagon", TargetCategory::DSP);
    T.HasHardwareLoop = true;
    T.HasSimd = true;
    T.HasPostRAScheduler = true;
    T.VectorWidth = 512;
    T.RegisterClasses = {"IntRegs", "HvxVR"};
    finishTarget(T, NamingStyle::Imm20, 0);
    T.Quirks = {"hwloop_align"};
    DB.add(std::move(T));
  }
  { // Lanai: simple 32-bit CPU.
    TargetTraits T = Make("Lanai", TargetCategory::CPU);
    finishTarget(T, NamingStyle::Halves16, 0, false);
    DB.add(std::move(T));
  }
  { // MSP430: 16-ish MCU, few registers.
    TargetTraits T = Make("MSP430", TargetCategory::MCU);
    T.RegisterCount = 16;
    T.StackAlignment = 2;
    finishTarget(T, NamingStyle::Halves16, 1, false);
    DB.add(std::move(T));
  }
  { // AVR: 8-bit MCU.
    TargetTraits T = Make("AVR", TargetCategory::MCU);
    T.RegisterCount = 32;
    T.StackAlignment = 1;
    T.BranchLatency = 1;
    finishTarget(T, NamingStyle::Halves16, 1, false);
    DB.add(std::move(T));
  }
  { // BPF: 64-bit kernel VM target.
    TargetTraits T = Make("BPF", TargetCategory::CPU);
    T.Is64Bit = true;
    T.RegisterCount = 11;
    finishTarget(T, NamingStyle::Imm20, 1, false);
    DB.add(std::move(T));
  }
  { // SystemZ: big-endian 64-bit, VariantKind.
    TargetTraits T = Make("SystemZ", TargetCategory::CPU);
    T.IsBigEndian = true;
    T.Is64Bit = true;
    T.HasVariantKind = true;
    T.HasPostRAScheduler = true;
    finishTarget(T, NamingStyle::Pages21, 0, true, true);
    DB.add(std::move(T));
  }
  { // VE: 64-bit vector engine.
    TargetTraits T = Make("VE", TargetCategory::CPU);
    T.Is64Bit = true;
    T.HasSimd = true;
    T.StackAlignment = 16;
    finishTarget(T, NamingStyle::Imm20, 0);
    DB.add(std::move(T));
  }
  { // CSKY: compressed instructions, RISC-V-ish naming.
    TargetTraits T = Make("CSKY", TargetCategory::CPU);
    T.HasCompressed = true;
    T.HasRegisterScavenging = true;
    finishTarget(T, NamingStyle::Imm20, 1);
    DB.add(std::move(T));
  }
  { // LoongArch: VariantKind + imm20 naming.
    TargetTraits T = Make("LoongArch", TargetCategory::CPU);
    T.Is64Bit = true;
    T.HasVariantKind = true;
    finishTarget(T, NamingStyle::Imm20, 1, true, true);
    DB.add(std::move(T));
  }
  { // M68k: big-endian CISC-ish.
    TargetTraits T = Make("M68k", TargetCategory::CPU);
    T.IsBigEndian = true;
    T.RegisterCount = 16;
    finishTarget(T, NamingStyle::Halves16, 0, false);
    DB.add(std::move(T));
  }
  { // ARC: hardware loops like Hexagon.
    TargetTraits T = Make("ARC", TargetCategory::CPU);
    T.HasHardwareLoop = true;
    finishTarget(T, NamingStyle::Halves16, 1);
    DB.add(std::move(T));
  }
  { // Xtensa: configurable DSP.
    TargetTraits T = Make("Xtensa", TargetCategory::DSP);
    T.HasRegisterScavenging = true;
    finishTarget(T, NamingStyle::Imm20, 1, false);
    DB.add(std::move(T));
  }
  { // MicroBlaze: big-endian with delay slots.
    TargetTraits T = Make("MicroBlaze", TargetCategory::CPU);
    T.IsBigEndian = true;
    T.HasDelaySlots = true;
    finishTarget(T, NamingStyle::Halves16, 1, false);
    DB.add(std::move(T));
  }
  { // Nios2: FPGA soft core.
    TargetTraits T = Make("Nios2", TargetCategory::MCU);
    finishTarget(T, NamingStyle::Halves16, 1, false);
    DB.add(std::move(T));
  }
  { // TriCore: automotive MCU with post-RA scheduling.
    TargetTraits T = Make("TriCore", TargetCategory::MCU);
    T.HasPostRAScheduler = true;
    finishTarget(T, NamingStyle::Halves16, 0, false);
    DB.add(std::move(T));
  }
  { // AMDGPU-like GPU target: SIMD-heavy, unusual sizes.
    TargetTraits T = Make("AMDGPU", TargetCategory::GPU);
    T.HasSimd = true;
    T.Is64Bit = true;
    T.RegisterCount = 256;
    T.RegisterClasses = {"SGPR", "VGPR"};
    finishTarget(T, NamingStyle::Pages21, 1, false);
    DB.add(std::move(T));
  }

  // -------------------- Evaluation targets (held out) --------------------
  { // RISC-V: GPP with compressed instructions (Fig. 6: I,M,F,C,...).
    TargetTraits T = Make("RISCV", TargetCategory::CPU);
    T.HasCompressed = true;
    T.HasRegisterScavenging = true;
    T.RegisterClasses = {"GPR", "FPR32"};
    finishTarget(T, NamingStyle::Imm20, 1, true, true);
    T.Quirks = {"compressed_relax"};
    DB.add(std::move(T));
  }
  { // RI5CY: ULP RISC-V with hardware loops + packed SIMD (PULP).
    TargetTraits T = Make("RI5CY", TargetCategory::ULP);
    T.HasCompressed = true;
    T.HasHardwareLoop = true;
    T.HasSimd = true;
    T.VectorWidth = 32;
    T.RegisterClasses = {"GPR"};
    finishTarget(T, NamingStyle::Imm20, 1, true, false);
    T.Quirks = {"hwloop_align", "event_unit"};
    DB.add(std::move(T));
  }
  { // xCORE: IoT chip, hardware threads, unusually named instructions,
    // no disassembler in its LLVM 3.0 port (§4.1.4).
    TargetTraits T = Make("XCORE", TargetCategory::IoT);
    T.HasThreadScheduler = true;
    T.HasDisassembler = false;
    T.RegisterCount = 12;
    T.StackAlignment = 4;
    T.RegisterClasses = {"GRRegs", "RRegs"};
    finishTarget(T, NamingStyle::Words, 2, false);
    T.Quirks = {"thread_stack", "resource_regs", "event_enable"};
    DB.add(std::move(T));
  }

  return DB;
}
