//===- examples/generate_backend.cpp - full pipeline ----------------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// End-to-end backend generation for a held-out target:
///
///   ./build/examples/generate_backend [RISCV|RI5CY|XCORE] [epochs]
///
/// Trains CodeBE (cached in vega_example_model.bin after the first run),
/// generates the backend from the target's description files, and prints
/// every emitted function with its confidence score. Pass a small epoch
/// count (e.g. 2) for a fast demo; the bench suite uses the full budget.
///
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "support/Timer.h"

#include <cstdio>
#include <cstdlib>

using namespace vega;

int main(int argc, char **argv) {
  std::string Target = argc > 1 ? argv[1] : "RISCV";
  int Epochs = argc > 2 ? std::atoi(argv[2]) : 6;

  BackendCorpus Corpus = BackendCorpus::build(TargetDatabase::standard());
  if (!Corpus.targets().find(Target)) {
    std::fprintf(stderr, "error: unknown target '%s'\n", Target.c_str());
    return 1;
  }

  VegaOptions Opts;
  Opts.Model.Epochs = Epochs;
  Opts.WeightCachePath = "vega_example_model.bin";
  Opts.Verbose = true;
  VegaSystem Sys(Corpus, Opts);

  Timer Stage1;
  Sys.buildTemplates();
  Sys.buildDataset();
  std::printf("stage 1 (code-feature mapping): %.1fs, %zu templates, %zu "
              "training sequences\n",
              Stage1.seconds(), Sys.templates().size(),
              Sys.trainPairCount());

  Timer Stage2;
  Sys.trainModel();
  std::printf("stage 2 (model creation): %.1fs (cached after first run)\n",
              Stage2.seconds());

  Timer Stage3;
  GeneratedBackend GB = Sys.generateBackend(Target);
  std::printf("stage 3 (target-specific generation): %.1fs\n\n",
              Stage3.seconds());

  size_t Emitted = 0;
  for (const GeneratedFunction &F : GB.Functions) {
    if (!F.Emitted) {
      std::printf("-- %-26s [%s]  confidence %.2f -> NOT EMITTED\n",
                  F.InterfaceName.c_str(), moduleName(F.Module),
                  F.Confidence);
      continue;
    }
    ++Emitted;
    std::printf("-- %-26s [%s]  confidence %.2f%s\n",
                F.InterfaceName.c_str(), moduleName(F.Module), F.Confidence,
                F.MultiTargetDerived ? "  (multi-target)" : "");
  }
  std::printf("\nemitted %zu/%zu functions for %s\n\n", Emitted,
              GB.Functions.size(), Target.c_str());

  if (const GeneratedFunction *Reloc = GB.find("getRelocType"))
    if (Reloc->Emitted)
      std::printf("generated getRelocType (the paper's running "
                  "example):\n%s\n",
                  Reloc->AST.render().c_str());
  return 0;
}
