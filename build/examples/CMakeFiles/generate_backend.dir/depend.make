# Empty dependencies file for generate_backend.
# This may be replaced when dependencies are built.
