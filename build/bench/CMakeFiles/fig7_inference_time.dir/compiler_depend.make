# Empty compiler generated dependencies file for fig7_inference_time.
# This may be replaced when dependencies are built.
