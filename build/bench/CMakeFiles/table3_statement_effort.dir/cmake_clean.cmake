file(REMOVE_RECURSE
  "CMakeFiles/table3_statement_effort.dir/table3_statement_effort.cpp.o"
  "CMakeFiles/table3_statement_effort.dir/table3_statement_effort.cpp.o.d"
  "table3_statement_effort"
  "table3_statement_effort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_statement_effort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
