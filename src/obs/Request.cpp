//===- obs/Request.cpp - Request-scoped telemetry context --------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "obs/Request.h"

#include "support/ThreadPool.h"

#include <atomic>
#include <memory>

using namespace vega;
using namespace vega::obs;

namespace {

std::atomic<uint64_t> NextRequestId{1};

thread_local RequestContext *CurrentRequestTL = nullptr;
thread_local const RequestRouter *CurrentRouterTL = nullptr;

/// Snapshot of both ambient thread-locals, hopped across ThreadPool lanes.
struct AmbientContext {
  RequestContext *Request = nullptr;
  const RequestRouter *Router = nullptr;
};

/// Registers the obs propagator with the (lower-level) support ThreadPool.
/// Runs at static-init time of vega_obs, before any pool exists.
const bool PropagatorRegistered = [] {
  ThreadPool::ContextPropagator Propagator;
  Propagator.Capture = []() -> std::shared_ptr<void> {
    if (!CurrentRequestTL && !CurrentRouterTL)
      return nullptr;
    auto Snapshot = std::make_shared<AmbientContext>();
    Snapshot->Request = CurrentRequestTL;
    Snapshot->Router = CurrentRouterTL;
    return Snapshot;
  };
  Propagator.Install =
      [](const std::shared_ptr<void> &Ctx) -> std::shared_ptr<void> {
    auto Prior = std::make_shared<AmbientContext>();
    Prior->Request = CurrentRequestTL;
    Prior->Router = CurrentRouterTL;
    const auto *Snapshot = static_cast<const AmbientContext *>(Ctx.get());
    CurrentRequestTL = Snapshot->Request;
    CurrentRouterTL = Snapshot->Router;
    return Prior;
  };
  Propagator.Restore = [](const std::shared_ptr<void> &Prior) {
    const auto *Snapshot = static_cast<const AmbientContext *>(Prior.get());
    CurrentRequestTL = Snapshot->Request;
    CurrentRouterTL = Snapshot->Router;
  };
  ThreadPool::setContextPropagator(std::move(Propagator));
  return true;
}();

} // namespace

RequestContext::RequestContext(std::string Method, size_t RingCapacity)
    : Id(NextRequestId.fetch_add(1, std::memory_order_relaxed)),
      Method(std::move(Method)), Start(std::chrono::steady_clock::now()),
      RingCapacity(RingCapacity ? RingCapacity : 1) {
  Ring.reserve(this->RingCapacity);
}

double RequestContext::elapsedMs() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

double RequestContext::sinceStartUs(
    std::chrono::steady_clock::time_point T) const {
  return std::chrono::duration<double, std::micro>(T - Start).count();
}

void RequestContext::setDeadlineAfterMs(double Ms) {
  if (Ms <= 0.0)
    return;
  Deadline = Start + std::chrono::duration_cast<
                         std::chrono::steady_clock::duration>(
                         std::chrono::duration<double, std::milli>(Ms));
  HasDeadline = true;
}

bool RequestContext::expired() const {
  return HasDeadline && std::chrono::steady_clock::now() > Deadline;
}

void RequestContext::recordSpan(SpanRecord Record) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Ring.size() < RingCapacity) {
    Ring.push_back(std::move(Record));
  } else {
    Ring[Recorded % RingCapacity] = std::move(Record);
  }
  ++Recorded;
}

std::vector<RequestContext::SpanRecord> RequestContext::spans() const {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Recorded <= RingCapacity)
    return Ring;
  std::vector<SpanRecord> Out;
  Out.reserve(RingCapacity);
  size_t Oldest = Recorded % RingCapacity;
  for (size_t I = 0; I < RingCapacity; ++I)
    Out.push_back(Ring[(Oldest + I) % RingCapacity]);
  return Out;
}

uint64_t RequestContext::spansRecorded() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Recorded;
}

uint64_t RequestContext::spansDropped() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Recorded > RingCapacity ? Recorded - RingCapacity : 0;
}

RequestContext *RequestContext::current() { return CurrentRequestTL; }

RequestScope::RequestScope(RequestContext *Ctx) {
  if (!Ctx)
    return;
  Prev = CurrentRequestTL;
  CurrentRequestTL = Ctx;
  Installed = true;
}

RequestScope::~RequestScope() {
  if (Installed)
    CurrentRequestTL = Prev;
}

void RequestRouter::bind(const std::string &Key, RequestContext *Ctx) {
  if (!Ctx)
    return;
  ByKey.emplace(Key, Ctx); // first bind wins
}

RequestContext *RequestRouter::lookup(const std::string &Key) const {
  auto It = ByKey.find(Key);
  return It == ByKey.end() ? nullptr : It->second;
}

const RequestRouter *RequestRouter::current() { return CurrentRouterTL; }

RouterScope::RouterScope(const RequestRouter *Router) : Prev(CurrentRouterTL) {
  CurrentRouterTL = Router;
}

RouterScope::~RouterScope() { CurrentRouterTL = Prev; }

RequestContext *obs::boundRequest(const std::string &Key) {
  const RequestRouter *Router = CurrentRouterTL;
  return Router ? Router->lookup(Key) : nullptr;
}
