# Empty compiler generated dependencies file for templatize_test.
# This may be replaced when dependencies are built.
