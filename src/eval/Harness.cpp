//===- eval/Harness.cpp - pass@1 and statement accuracy ---------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "eval/Harness.h"

#include "eval/EvalSpecs.h"
#include "gumtree/Matcher.h"
#include "interp/Interpreter.h"

#include <cassert>
#include <set>

using namespace vega;

double BackendEval::functionAccuracy() const {
  size_t Total = 0, Accurate = 0;
  for (const FunctionEval &F : Functions) {
    if (!F.GoldenExists && !F.Generated)
      continue;
    ++Total;
    if (F.Accurate)
      ++Accurate;
  }
  return Total == 0 ? 0.0
                    : static_cast<double>(Accurate) /
                          static_cast<double>(Total);
}

double BackendEval::functionAccuracy(BackendModule Module) const {
  size_t Total = 0, Accurate = 0;
  for (const FunctionEval &F : Functions) {
    if (F.Module != Module || (!F.GoldenExists && !F.Generated))
      continue;
    ++Total;
    if (F.Accurate)
      ++Accurate;
  }
  return Total == 0 ? 0.0
                    : static_cast<double>(Accurate) /
                          static_cast<double>(Total);
}

double BackendEval::statementAccuracy() const {
  size_t Accurate = 0, Manual = 0;
  for (const FunctionEval &F : Functions) {
    Accurate += F.AccurateStatements;
    Manual += F.ManualStatements;
  }
  size_t Total = Accurate + Manual;
  return Total == 0 ? 0.0
                    : static_cast<double>(Accurate) /
                          static_cast<double>(Total);
}

static double errRate(const BackendEval &Eval,
                      bool FunctionEval::*Member) {
  size_t Total = 0, Hit = 0;
  for (const FunctionEval &F : Eval.Functions) {
    if (!F.GoldenExists && !F.Generated)
      continue;
    ++Total;
    if (F.*Member)
      ++Hit;
  }
  return Total == 0 ? 0.0 : static_cast<double>(Hit) /
                                static_cast<double>(Total);
}

double BackendEval::errVRate() const { return errRate(*this, &FunctionEval::ErrV); }
double BackendEval::errCSRate() const { return errRate(*this, &FunctionEval::ErrCS); }
double BackendEval::errDefRate() const { return errRate(*this, &FunctionEval::ErrDef); }
double BackendEval::divValRate() const { return errRate(*this, &FunctionEval::DivVal); }
double BackendEval::divTrapRate() const { return errRate(*this, &FunctionEval::DivTrap); }
double BackendEval::divEffRate() const { return errRate(*this, &FunctionEval::DivEff); }
double BackendEval::txtOnlyRate() const { return errRate(*this, &FunctionEval::TxtOnly); }

double BackendEval::adjustedStatementAccuracy() const {
  size_t Accurate = 0, Manual = 0;
  for (const FunctionEval &F : Functions) {
    Accurate += F.AccurateStatements;
    if (F.TxtOnly)
      Accurate += F.ManualStatements; // behaviourally validated: not manual
    else
      Manual += F.ManualStatements;
  }
  size_t Total = Accurate + Manual;
  return Total == 0 ? 0.0
                    : static_cast<double>(Accurate) /
                          static_cast<double>(Total);
}

bool BackendEval::hasDifferential() const {
  for (const FunctionEval &F : Functions)
    if (F.DiffRan)
      return true;
  return false;
}

double BackendEval::differentialAccuracy() const {
  size_t Total = 0, Accurate = 0;
  for (const FunctionEval &F : Functions) {
    if (!F.GoldenExists && !F.Generated)
      continue;
    ++Total;
    if (F.DiffRan && F.DiffAccurate)
      ++Accurate;
  }
  return Total == 0 ? 0.0
                    : static_cast<double>(Accurate) /
                          static_cast<double>(Total);
}

BackendEval::OracleAgreement BackendEval::agreement() const {
  OracleAgreement A;
  for (const FunctionEval &F : Functions) {
    if (!F.DiffRan)
      continue;
    if (F.Accurate && F.DiffAccurate)
      ++A.BothPass;
    else if (!F.Accurate && !F.DiffAccurate)
      ++A.BothFail;
    else if (F.Accurate)
      ++A.PrimaryOnlyPass;
    else
      ++A.DifferentialOnlyPass;
  }
  return A;
}

bool vega::functionPassesRegression(const FunctionAST &Candidate,
                                    const FunctionAST &Golden,
                                    const std::string &InterfaceName,
                                    const TargetTraits &Traits) {
  return eval::textOracle().passes(Candidate, Golden, InterfaceName, Traits);
}

std::pair<size_t, size_t>
vega::statementAccounting(const FunctionAST &Candidate,
                          const FunctionAST &Golden) {
  TreeMapping Mapping = matchFunctions(Golden, Candidate);
  size_t Accurate = 0, Manual = 0;

  // Golden statements: matched & token-identical → accurate; otherwise they
  // need manual modification or supplementation.
  for (const auto &FS : Golden.flatten()) {
    if (FS.Stmt == &Golden.Definition)
      continue;
    const Statement *Partner = Mapping.getDst(FS.Stmt);
    if (Partner && Partner->Tokens == FS.Stmt->Tokens)
      ++Accurate;
    else
      ++Manual;
  }
  // Spurious generated statements must be deleted by hand.
  for (const auto &FS : Candidate.flatten()) {
    if (FS.Stmt == &Candidate.Definition)
      continue;
    if (!Mapping.getSrc(FS.Stmt))
      ++Manual;
  }
  return {Accurate, Manual};
}

namespace {

/// Masked skeleton equality: true when two statements differ only in
/// value-like positions (identifiers adjacent to '::', literals). Used to
/// classify Err-V.
bool sameSkeleton(const std::vector<Token> &A, const std::vector<Token> &B) {
  if (A.size() != B.size())
    return false;
  auto MaskedAt = [](const std::vector<Token> &T, size_t I) {
    if (T[I].Kind == TokenKind::IntLiteral ||
        T[I].Kind == TokenKind::StringLiteral)
      return true;
    if (T[I].Kind == TokenKind::Identifier) {
      if (I > 0 && T[I - 1].isPunct("::"))
        return true;
      if (I + 1 < T.size() && T[I + 1].isPunct("::"))
        return true;
    }
    return false;
  };
  for (size_t I = 0; I < A.size(); ++I) {
    bool MA = MaskedAt(A, I), MB = MaskedAt(B, I);
    if (MA != MB)
      return false;
    if (!MA && !(A[I] == B[I]))
      return false;
  }
  return true;
}

} // namespace

BackendEval vega::evaluateBackend(const GeneratedBackend &Generated,
                                  const Backend &Golden,
                                  const TargetTraits &Traits) {
  return evaluateBackend(Generated, Golden, Traits, eval::textOracle());
}

BackendEval vega::evaluateBackend(const GeneratedBackend &Generated,
                                  const Backend &Golden,
                                  const TargetTraits &Traits,
                                  const eval::Oracle &Primary,
                                  const eval::Oracle *Differential) {
  BackendEval Eval;
  Eval.TargetName = Generated.TargetName;
  Eval.OracleName = Primary.name();
  if (Differential && Differential != &Primary)
    Eval.OracleName += "+" + Differential->name();

  for (const GeneratedFunction &GF : Generated.Functions) {
    FunctionEval FE;
    FE.InterfaceName = GF.InterfaceName;
    FE.Module = GF.Module;
    FE.Generated = GF.Emitted;
    FE.Confidence = GF.Confidence;
    FE.MultiTargetDerived = GF.MultiTargetDerived;

    const BackendFunction *GoldenFn = Golden.find(GF.InterfaceName);
    FE.GoldenExists = GoldenFn != nullptr;

    if (FE.GoldenExists)
      FE.GoldenStatements = GoldenFn->AST.size() - 1;

    if (FE.GoldenExists && FE.Generated) {
      eval::OracleVerdict Verdict =
          Primary.score(GF.AST, GoldenFn->AST, GF.InterfaceName, Traits);
      FE.Accurate = Verdict.full();
      auto [Acc, Manual] = statementAccounting(GF.AST, GoldenFn->AST);
      FE.AccurateStatements = Acc;
      FE.ManualStatements = Manual;

      if (Differential) {
        eval::OracleVerdict DV =
            Differential == &Primary
                ? Verdict
                : Differential->score(GF.AST, GoldenFn->AST, GF.InterfaceName,
                                      Traits);
        FE.DiffRan = true;
        FE.DiffAccurate = DV.full();
        FE.DiffCases = DV.Cases;
        FE.DiffPassed = DV.Passed;
        FE.DivVal = DV.ValDivergences > 0;
        FE.DivTrap = DV.TrapDivergences > 0 || DV.CandidateError;
        FE.DivEff = DV.EffDivergences > 0;
        FE.TxtOnly = DV.full() && FE.ManualStatements > 0;
      }
    } else if (FE.GoldenExists) {
      // Function never emitted: every golden statement is manual effort.
      FE.ManualStatements = FE.GoldenStatements;
      FE.ErrDef = true;
      FE.ErrCS = true; // the definition's low score suppressed a needed fn
    } else if (FE.Generated) {
      // Spurious function: all its statements must be deleted.
      FE.ManualStatements = GF.AST.size() - 1;
      FE.ErrCS = true;
    }

    // Error taxonomy for inaccurate-but-emitted functions.
    if (FE.GoldenExists && FE.Generated && !FE.Accurate) {
      TreeMapping Mapping = matchFunctions(GoldenFn->AST, GF.AST);
      for (const auto &FS : GoldenFn->AST.flatten()) {
        if (FS.Stmt == &GoldenFn->AST.Definition)
          continue;
        const Statement *Partner = Mapping.getDst(FS.Stmt);
        if (!Partner) {
          FE.ErrDef = true;
          continue;
        }
        if (!(Partner->Tokens == FS.Stmt->Tokens) &&
            sameSkeleton(Partner->Tokens, FS.Stmt->Tokens))
          FE.ErrV = true;
      }
      // Confidence contradictions: a suppressed statement that was right,
      // or a near-certain statement that was wrong.
      std::set<std::string> GoldenTexts;
      for (const auto &FS : GoldenFn->AST.flatten())
        GoldenTexts.insert(FS.Stmt->text());
      for (const GeneratedStatement &GS : GF.Statements) {
        std::string Text = renderTokens(GS.Tokens);
        bool InGolden = GoldenTexts.count(Text) != 0;
        if (!GS.Emitted && InGolden)
          FE.ErrCS = true;
        if (GS.Emitted && GS.Confidence > 0.99 && !InGolden)
          FE.ErrCS = true;
      }
    }

    // Module aggregates.
    if (FE.GoldenExists || FE.Generated) {
      auto &MS = Eval.PerModule[FE.Module];
      ++MS.Functions;
      if (FE.Accurate) {
        ++MS.AccurateFunctions;
        if (FE.Confidence > 0.99)
          ++MS.AccurateHighConfidence;
        if (FE.MultiTargetDerived)
          ++MS.MultiTarget;
      }
      MS.AccurateStatements += FE.AccurateStatements;
      MS.ManualStatements += FE.ManualStatements;
      if (FE.TxtOnly)
        ++MS.TxtOnlyFunctions;
    }
    Eval.Functions.push_back(std::move(FE));
  }

  // Golden functions the generator produced no entry for at all (e.g. a
  // fork source that lacks the interface): pure Err-Def misses.
  for (const auto &GoldenFn : Golden.Functions) {
    if (Generated.find(GoldenFn->InterfaceName))
      continue;
    FunctionEval FE;
    FE.InterfaceName = GoldenFn->InterfaceName;
    FE.Module = GoldenFn->Module;
    FE.GoldenExists = true;
    FE.GoldenStatements = GoldenFn->AST.size() - 1;
    FE.ManualStatements = FE.GoldenStatements;
    FE.ErrDef = true;
    auto &MS = Eval.PerModule[FE.Module];
    ++MS.Functions;
    MS.ManualStatements += FE.ManualStatements;
    Eval.Functions.push_back(std::move(FE));
  }
  return Eval;
}
