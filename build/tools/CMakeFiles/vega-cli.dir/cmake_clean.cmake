file(REMOVE_RECURSE
  "CMakeFiles/vega-cli.dir/vega-cli.cpp.o"
  "CMakeFiles/vega-cli.dir/vega-cli.cpp.o.d"
  "vega-cli"
  "vega-cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vega-cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
