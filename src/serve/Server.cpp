//===- serve/Server.cpp - The vega-serve shard daemon ------------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "obs/Log.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "serve/Transport.h"

#include <condition_variable>
#include <deque>
#include <istream>
#include <mutex>
#include <ostream>
#include <thread>
#include <utility>

using namespace vega;
using namespace vega::serve;

VegaServer::VegaServer(VegaSession &Session, ServerOptions Options)
    : Session(Session), Options(Options),
      StartTime(std::chrono::steady_clock::now()) {
  if (this->Options.Window < 1)
    this->Options.Window = 1;
  // A daemon always keeps its request metrics on — the `stats` method must
  // answer without any exporter flag, and counter updates are cheap.
  obs::MetricsRegistry::instance().setEnabled(true);
  SchedulerOptions SchedOpts;
  SchedOpts.Window = this->Options.Window;
  SchedOpts.MaxQueue = this->Options.MaxQueue;
  Sched = std::make_unique<Scheduler>(Session, SchedOpts);
}

VegaServer::~VegaServer() = default;

void VegaServer::shutdown() {
  Shutdown.store(true, std::memory_order_relaxed);
}

std::future<std::string> VegaServer::submitLine(std::string Line) {
  auto Ctx = std::make_shared<obs::RequestContext>();
  auto Promise = std::make_shared<std::promise<std::string>>();
  std::future<std::string> Future = Promise->get_future();
  InFlight.fetch_add(1, std::memory_order_relaxed);
  dispatch(std::move(Line), std::move(Ctx), std::move(Promise));
  return Future;
}

std::string VegaServer::handleLine(const std::string &Line) {
  return submitLine(Line).get();
}

std::vector<std::string>
VegaServer::handleLines(const std::vector<std::string> &Lines) {
  std::vector<std::future<std::string>> Futures;
  Futures.reserve(Lines.size());
  for (const std::string &Line : Lines)
    Futures.push_back(submitLine(Line));
  std::vector<std::string> Responses;
  Responses.reserve(Futures.size());
  for (std::future<std::string> &Future : Futures)
    Responses.push_back(Future.get());
  return Responses;
}

void VegaServer::resolve(
    const std::shared_ptr<std::promise<std::string>> &Promise,
    std::string Response) {
  // Decrement before fulfilling: a waiter woken by the future must never
  // observe its own request still counted in flight.
  InFlight.fetch_sub(1, std::memory_order_relaxed);
  Promise->set_value(std::move(Response));
}

std::string VegaServer::runRequest(obs::RequestContext &Ctx,
                                   const std::string &MethodLabel,
                                   const std::string &Target,
                                   const std::function<Json()> &Build) {
  auto &Metrics = obs::MetricsRegistry::instance();
  auto &Log = obs::Logger::instance();
  obs::RequestScope ReqScope(&Ctx);
  obs::Span RequestSpan("serve.request", "serve");
  RequestSpan.arg("method", MethodLabel == "invalid" ? "<invalid>"
                                                     : MethodLabel);
  if (!Target.empty())
    RequestSpan.arg("target", Target);
  // The total counter lands before the response is built, so a `stats`
  // payload counts the request that asked for it.
  Metrics.addCounter("serve.requests");
  Json Response = Build();

  // Completion telemetry: one labeled counter series per (method, code),
  // the latency histogram, an info-level NDJSON line, and — past the slow
  // threshold — a warn-level dump of the request's span ring.
  std::string CodeLabel = "ok";
  if (const Json *Error = Response.get("error")) {
    Metrics.addCounter("serve.errors");
    CodeLabel =
        std::to_string(static_cast<long long>(Error->getNumber("code")));
  }
  RequestSpan.arg("code", CodeLabel);
  Metrics.addCounter("serve.requests",
                     {{"method", MethodLabel}, {"code", CodeLabel}});
  double Ms = Ctx.elapsedMs();
  Metrics.observe("serve.request_ms", Ms);
  if (Log.enabled(obs::LogLevel::Info)) {
    Json Fields = Json::object();
    Fields.set("req", Ctx.id());
    Fields.set("method", MethodLabel);
    if (!Target.empty())
      Fields.set("target", Target);
    Fields.set("code", CodeLabel);
    Fields.set("ms", Ms);
    Log.log(obs::LogLevel::Info, "serve.request", Fields);
  }
  if (Options.SlowMs > 0.0 && Ms >= Options.SlowMs &&
      Log.enabled(obs::LogLevel::Warn)) {
    Json Fields = Json::object();
    Fields.set("req", Ctx.id());
    Fields.set("method", MethodLabel);
    Fields.set("ms", Ms);
    Fields.set("slowMs", Options.SlowMs);
    Json SpanList = Json::array();
    for (const obs::RequestContext::SpanRecord &R : Ctx.spans()) {
      Json SpanJson = Json::object();
      SpanJson.set("name", R.Name);
      SpanJson.set("startUs", R.StartUs);
      SpanJson.set("durUs", R.DurUs);
      SpanList.push(std::move(SpanJson));
    }
    Fields.set("spans", std::move(SpanList));
    Fields.set("spansDropped", Ctx.spansDropped());
    Log.log(obs::LogLevel::Warn, "serve.slow", Fields);
  }
  return Response.dump();
}

void VegaServer::dispatch(std::string Line,
                          std::shared_ptr<obs::RequestContext> Ctx,
                          std::shared_ptr<std::promise<std::string>> Promise) {
  auto &Metrics = obs::MetricsRegistry::instance();
  StatusOr<RpcRequest> Parsed = parseRpcRequest(Line);
  if (!Parsed.isOk()) {
    Metrics.observe("serve.queue_ms", Ctx->elapsedMs());
    const Status &St = Parsed.status();
    ErrorCode Code = St.message().rfind("parse error", 0) == 0
                         ? ErrorCode::ParseError
                         : ErrorCode::InvalidRequest;
    resolve(Promise, runRequest(*Ctx, "invalid", "", [&] {
      return makeRpcError(Json(), Code, St.message());
    }));
    return;
  }

  RpcRequest &Request = *Parsed;
  Ctx->setMethod(Request.Method);
  Ctx->setDeadlineAfterMs(Request.Params.getNumber("deadlineMs", 0.0));
  const std::string &Method = Request.Method;

  // Everything answered on this thread experienced (essentially) no queue.
  // Generation requests observe their real queue wait at admission instead.
  auto Inline = [&](const std::string &Target, const std::function<Json()> &Build) {
    Metrics.observe("serve.queue_ms", Ctx->elapsedMs());
    resolve(Promise, runRequest(*Ctx, Method, Target, Build));
  };

  if (Ctx->expired()) {
    Inline("", [&] {
      return makeRpcError(Request.Id, ErrorCode::Unavailable,
                          "deadline exceeded", "unavailable");
    });
    return;
  }
  if (Method == "ping") {
    Inline("", [&] {
      Json Result = Json::object();
      Result.set("ok", true);
      return makeRpcResult(Request.Id, std::move(Result));
    });
    return;
  }
  if (Method == "info") {
    Inline("", [&] { return makeRpcResult(Request.Id, handleInfo()); });
    return;
  }
  if (Method == "stats") {
    Inline("", [&] { return makeRpcResult(Request.Id, handleStats()); });
    return;
  }
  if (Method == "shutdown") {
    shutdown();
    Inline("", [&] {
      Json Result = Json::object();
      Result.set("ok", true);
      return makeRpcResult(Request.Id, std::move(Result));
    });
    return;
  }
  if (Method != "generate" && Method != "evaluate" && Method != "repair") {
    Inline("", [&] {
      return makeRpcError(Request.Id, ErrorCode::MethodNotFound,
                          "unknown method '" + Method + "'", "unimplemented");
    });
    return;
  }

  std::string Target = Request.Params.getString("target");
  if (Target.empty()) {
    Inline("", [&] {
      return makeRpcError(Request.Id, ErrorCode::InvalidParams,
                          "params require a string 'target'",
                          "invalid-argument");
    });
    return;
  }
  if (Session.corpus().targets().find(Target) == nullptr) {
    Inline(Target, [&] {
      return makeRpcError(Request.Id,
                          Status::notFound("unknown target '" + Target + "'"));
    });
    return;
  }
  // Oracle selection (evaluate and repair): reject unknown names before the
  // request ever reaches the scheduler.
  std::string OracleParam = Request.Params.getString("oracle", "text");
  std::optional<eval::OracleKind> Oracle = eval::parseOracleKind(OracleParam);
  if (!Oracle) {
    Inline(Target, [&] {
      return makeRpcError(Request.Id, ErrorCode::InvalidParams,
                          "unknown oracle '" + OracleParam +
                              "' (expected text|differential|both)",
                          "invalid-argument");
    });
    return;
  }

  // A validated generation request: hand it to the scheduler. The
  // completion runs on the scheduler's completion worker once the target's
  // generation retires — possibly shared with other attached requests, but
  // each request still gets its own serve.request span, counters, and log
  // line.
  auto R = std::make_shared<RpcRequest>(std::move(Request));
  eval::OracleKind Kind = *Oracle;
  Status Submitted = Sched->submit(
      Target, Ctx,
      [this, R, Ctx, Promise, Target, Kind](const GeneratedBackend *Gen,
                                            const Status &St) {
        resolve(Promise, runRequest(*Ctx, R->Method, Target, [&]() -> Json {
          if (!St.isOk())
            return makeRpcError(R->Id, St);
          if (R->Method == "generate")
            return makeRpcResult(R->Id, backendToJson(*Gen));
          if (R->Method == "repair") {
            // The repair engine re-enters the model, so it takes the
            // scheduler's engine lock — serialized against decode steps.
            // The report is deterministic, so co-batching does not change
            // the payload.
            repair::RepairOptions Opts;
            Opts.BeamWidth = static_cast<int>(
                R->Params.getNumber("beamWidth", Opts.BeamWidth));
            Opts.MaxRounds = static_cast<int>(
                R->Params.getNumber("maxRounds", Opts.MaxRounds));
            Opts.CSThreshold =
                R->Params.getNumber("csThreshold", Opts.CSThreshold);
            switch (Kind) {
            case eval::OracleKind::Text:
              break; // defaults: text gate, no classifier
            case eval::OracleKind::Differential:
              Opts.OracleImpl = &eval::differentialOracle();
              Opts.Classifier = &eval::differentialOracle();
              break;
            case eval::OracleKind::Both:
              Opts.Classifier = &eval::differentialOracle();
              break;
            }
            repair::RepairEngine Engine(Session.system(), Opts);
            StatusOr<repair::RepairReport> Report = [&] {
              std::lock_guard<std::mutex> EngineLock(Sched->engineMutex());
              return Engine.repairBackend(*Gen);
            }();
            if (!Report.isOk())
              return makeRpcError(R->Id, Report.status());
            return makeRpcResult(R->Id, repairToJson(*Report));
          }
          const Backend *Golden = Session.corpus().backend(Target);
          const TargetTraits *Traits = Session.corpus().targets().find(Target);
          if (!Golden || !Traits)
            return makeRpcError(
                R->Id, Status::failedPrecondition("target '" + Target +
                                                  "' has no golden backend"));
          const eval::Oracle &Primary = Kind == eval::OracleKind::Differential
                                            ? static_cast<const eval::Oracle &>(
                                                  eval::differentialOracle())
                                            : eval::textOracle();
          const eval::Oracle *Classifier =
              Kind == eval::OracleKind::Text ? nullptr
                                             : &eval::differentialOracle();
          BackendEval Eval =
              evaluateBackend(*Gen, *Golden, *Traits, Primary, Classifier);
          return makeRpcResult(R->Id, evalToJson(Eval));
        }));
      });
  if (!Submitted.isOk()) {
    // Typed backpressure (Overloaded, -32005) or shutdown — answered here;
    // the scheduler never saw a waiter.
    Inline(Target, [&] { return makeRpcError(R->Id, Submitted); });
  }
}

Json VegaServer::handleInfo() const {
  const BackendCorpus &Corpus = Session.corpus();
  Json Targets = Json::array();
  for (const TargetTraits &T : Corpus.targets().targets())
    Targets.push(T.Name);
  Json Training = Json::array();
  for (const std::string &N : Corpus.trainingTargetNames())
    Training.push(N);
  Json Info = Json::object();
  Info.set("schema", "vega-serve-1");
  Info.set("targets", std::move(Targets));
  Info.set("trainingTargets", std::move(Training));
  Info.set("templates",
           static_cast<uint64_t>(Session.system().templates().size()));
  Info.set("fromCheckpoint", Session.loadedFromCheckpoint());
  Info.set("maxBatch", Options.Window);
  Info.set("precision", precisionName(Session.precision()));
  Info.set("prefixSharing", Session.prefixSharing());
  return Info;
}

Json VegaServer::handleStats() {
  auto &Metrics = obs::MetricsRegistry::instance();
  SchedulerStats Sch = Sched->stats();
  Json Stats = Json::object();
  Stats.set("schema", "vega-stats-1");
  Stats.set("uptimeSec",
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          StartTime)
                .count());
  Stats.set("inFlight", InFlight.load(std::memory_order_relaxed));
  Stats.set("queueDepth", Sch.QueueDepth);
  Stats.set("requests", Metrics.counterValue("serve.requests"));
  {
    Json Scheduler = Json::object();
    Scheduler.set("window", Options.Window);
    Scheduler.set("maxQueue", Options.MaxQueue);
    Scheduler.set("steps", Sch.Steps);
    Scheduler.set("admitted", Sch.Admitted);
    Scheduler.set("attached", Sch.Attached);
    Scheduler.set("retired", Sch.Retired);
    Scheduler.set("rejected", Sch.Rejected);
    Scheduler.set("expired", Sch.Expired);
    Scheduler.set("maxCoActive", Sch.MaxCoActive);
    Scheduler.set("active", Sch.Active);
    Stats.set("scheduler", std::move(Scheduler));
  }
  // Reuse the registry's JSON export as the snapshot — stats, the JSON
  // exporter, and the Prometheus exposition all read the same store, so
  // the three views can never disagree on a count.
  StatusOr<Json> All = Json::parse(Metrics.exportJson());
  if (All.isOk()) {
    if (const Json *Counters = All->get("counters"))
      Stats.set("counters", *Counters);
    if (const Json *Gauges = All->get("gauges"))
      Stats.set("gauges", *Gauges);
    Json Quantiles = Json::object();
    if (const Json *Histograms = All->get("histograms"))
      for (const auto &[Name, H] : Histograms->fields()) {
        Json Q = Json::object();
        double Count = H.getNumber("count");
        Q.set("count", Count);
        Q.set("mean", Count > 0 ? H.getNumber("sum") / Count : 0.0);
        Q.set("p50", H.getNumber("p50"));
        Q.set("p95", H.getNumber("p95"));
        Q.set("p99", H.getNumber("p99"));
        Quantiles.set(Name, std::move(Q));
      }
    Stats.set("quantiles", std::move(Quantiles));
  }
  return Stats;
}

Status VegaServer::serveStream(std::istream &In, std::ostream &Out) {
  std::mutex Mu;
  std::condition_variable Cv;
  std::deque<std::future<std::string>> Pending;
  bool Done = false;

  // Responses go out in submission order; the writer drains futures so the
  // reader can keep pipelining lines into the scheduler.
  std::thread Writer([&] {
    while (true) {
      std::future<std::string> Future;
      {
        std::unique_lock<std::mutex> Lock(Mu);
        Cv.wait(Lock, [&] { return Done || !Pending.empty(); });
        if (Pending.empty())
          return;
        Future = std::move(Pending.front());
        Pending.pop_front();
      }
      Out << Future.get() << "\n" << std::flush;
    }
  });

  std::string Line;
  while (!shutdownRequested() && std::getline(In, Line)) {
    if (Line.empty())
      continue;
    std::future<std::string> Future = submitLine(std::move(Line));
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Pending.push_back(std::move(Future));
    }
    Cv.notify_one();
  }
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Done = true;
  }
  Cv.notify_one();
  Writer.join();
  return Status::ok();
}

Status VegaServer::serveSocket(const std::string &Path) {
  return serveSocketLines(
      Path, [this](const std::string &Line) { return handleLine(Line); },
      [this] { return shutdownRequested(); });
}
