file(REMOVE_RECURSE
  "libvega_corpus.a"
)
