file(REMOVE_RECURSE
  "libvega_lexer.a"
)
