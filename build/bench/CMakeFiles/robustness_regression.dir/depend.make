# Empty dependencies file for robustness_regression.
# This may be replaced when dependencies are built.
