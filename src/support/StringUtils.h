//===- support/StringUtils.h - String helpers -------------------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small string helpers used across the VEGA pipeline: splitting, trimming,
/// joining, case folding, and the partial-match predicate from Algorithm 1
/// (a token matches an assignment RHS when either is a substring of the
/// other, case-insensitively).
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_SUPPORT_STRINGUTILS_H
#define VEGA_SUPPORT_STRINGUTILS_H

#include <string>
#include <string_view>
#include <vector>

namespace vega {

/// Splits \p Text on \p Separator; empty pieces are kept unless
/// \p KeepEmpty is false.
std::vector<std::string> splitString(std::string_view Text, char Separator,
                                     bool KeepEmpty = true);

/// Splits \p Text into lines, accepting both "\n" and "\r\n" endings.
std::vector<std::string> splitLines(std::string_view Text);

/// Returns \p Text without leading/trailing whitespace.
std::string trimString(std::string_view Text);

/// Joins \p Pieces with \p Separator between consecutive elements.
std::string joinStrings(const std::vector<std::string> &Pieces,
                        std::string_view Separator);

/// Returns a lowercase copy of \p Text (ASCII only).
std::string lowerString(std::string_view Text);

/// True when \p Haystack contains \p Needle ignoring ASCII case.
bool containsIgnoreCase(std::string_view Haystack, std::string_view Needle);

/// The partial-match rule from Algorithm 1 lines 14 and 33: true when either
/// string is a case-insensitive substring of the other. Tokens shorter than
/// 3 characters never partially match (identifiers like "i" would otherwise
/// match everything).
bool partiallyMatches(std::string_view A, std::string_view B);

/// Splits a descriptive identifier such as "IsPCRel" or "fixup_arm_movt_hi16"
/// into lowercase word pieces ("is", "pc", "rel" / "fixup", "arm", ...).
std::vector<std::string> splitIdentifierWords(std::string_view Identifier);

/// Dice similarity of the word multisets of two identifiers, in [0, 1].
double identifierSimilarity(std::string_view A, std::string_view B);

/// True when the squashed lowercase forms of \p A and \p B (separators
/// removed) share a common substring of at least \p MinStem characters.
/// This is the looser partial match Algorithm 1 needs to connect e.g.
/// "IsPCRel" with "OPERAND_PCREL" (shared stem "pcrel").
bool sharesSignificantStem(std::string_view A, std::string_view B,
                           size_t MinStem = 5);

/// Replaces every occurrence of \p From in \p Text with \p To.
std::string replaceAll(std::string Text, std::string_view From,
                       std::string_view To);

} // namespace vega

#endif // VEGA_SUPPORT_STRINGUTILS_H
