//===- bench/fig10_backend_performance.cpp - Fig. 10 ---------------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// Fig. 10: -O3 speedup over -O0 for the repaired VEGA compilers
/// (VEGA^RISC-V, VEGA^RI5CY, VEGA^xCORE) against their base compilers, on
/// SPEC CPU2017 / PULP / Embench workloads. The paper's claim is that the
/// bars (VEGA) match the curves (base); here both compilers drive the mini
/// compiler through backend hooks, and the repaired backend (inaccurate
/// functions replaced by golden ones, §4.3) must match the base exactly.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "minicc/Benchmarks.h"
#include "sim/Simulator.h"
#include "support/TextTable.h"

#include <cstdio>

using namespace vega;

namespace {

/// Hooks for the repaired VEGA compiler: accurate generated functions where
/// available, golden ones elsewhere. \p UseGenerated false gives the base
/// compiler (pure golden functions), so both compilers are driven the same
/// way, exactly as in §4.3.
BackendHooks compilerHooks(const std::string &Target, bool UseGenerated) {
  const Backend *Golden = bench::corpus().backend(Target);
  const BackendEval &Eval = bench::evaluation(Target);
  const GeneratedBackend &GB = bench::generated(Target);
  std::map<std::string, const FunctionAST *> Functions;
  for (const FunctionEval &FE : Eval.Functions) {
    const BackendFunction *GoldenFn = Golden->find(FE.InterfaceName);
    if (!GoldenFn)
      continue;
    const GeneratedFunction *Gen = GB.find(FE.InterfaceName);
    if (UseGenerated && FE.Accurate && Gen && Gen->Emitted)
      Functions[FE.InterfaceName] = &Gen->AST;
    else
      Functions[FE.InterfaceName] = &GoldenFn->AST;
  }
  return hooksFromFunctions(*bench::corpus().targets().find(Target),
                            Functions);
}

void printSuite(const std::string &Target, const char *SuiteName,
                const std::vector<std::string> &Suite) {
  const TargetTraits *Traits = bench::corpus().targets().find(Target);
  BackendHooks Base = compilerHooks(Target, /*UseGenerated=*/false);
  BackendHooks Vega = compilerHooks(Target, /*UseGenerated=*/true);

  TextTable Table;
  Table.setHeader({"Benchmark", "Base -O3/-O0", "VEGA -O3/-O0"});
  double BaseSum = 0.0, VegaSum = 0.0;
  for (const std::string &Name : Suite) {
    IRModule Module = buildBenchmark(Name);
    double BaseSpeed = speedupO3(Module, *Traits, Base);
    double VegaSpeed = speedupO3(Module, *Traits, Vega);
    BaseSum += BaseSpeed;
    VegaSum += VegaSpeed;
    Table.addRow({Name, TextTable::formatDouble(BaseSpeed, 2) + "x",
                  TextTable::formatDouble(VegaSpeed, 2) + "x"});
  }
  Table.addSeparator();
  size_t N = Suite.size();
  Table.addRow({"geomean-ish (mean)",
                TextTable::formatDouble(BaseSum / N, 2) + "x",
                TextTable::formatDouble(VegaSum / N, 2) + "x"});
  std::printf("== Fig. 10: VEGA^%s vs base compiler on %s ==\n%s\n",
              Target.c_str(), SuiteName, Table.render().c_str());
}

} // namespace

int main() {
  printSuite("RISCV", "SPEC CPU2017 (28 C/C++)", specSuite());
  printSuite("RI5CY", "PULP regression (69)", pulpSuite());
  printSuite("XCORE", "Embench (22)", embenchSuite());
  std::printf("paper: the repaired VEGA compilers' -O3 speedups coincide "
              "with the base compilers' on every benchmark — shape to "
              "match: the two columns above are identical\n");
  return 0;
}
