//===- bench/robustness_differential.cpp - oracle-comparison sweep ------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// The differential-robustness sweep: for each held-out evaluation target,
/// score the generated backend with the text oracle (curated regression
/// environments) and the differential oracle (seeded randomized inputs)
/// side-by-side, and report where the two verdicts disagree — Div-Val /
/// Div-Trap / Div-Eff divergence rates, the Txt-Only over-penalization
/// census, and the pass/fail agreement matrix. Merges the results into
/// BENCH_repair.json as per-target "oracleComparison" objects, bumping the
/// schema to "vega-repair-bench-2" (all vega-repair-bench-1 fields are
/// preserved; the file is created fresh when passk_repair has not run).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "eval/Oracle.h"
#include "support/Json.h"
#include "support/TextTable.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

using namespace vega;

namespace {

Json comparisonFor(const BackendEval &Eval) {
  Json Cmp = Json::object();
  Cmp.set("textAccuracy", Eval.functionAccuracy());
  Cmp.set("differentialAccuracy", Eval.differentialAccuracy());
  Cmp.set("statementAccuracy", Eval.statementAccuracy());
  Cmp.set("adjustedStatementAccuracy", Eval.adjustedStatementAccuracy());
  Cmp.set("divValRate", Eval.divValRate());
  Cmp.set("divTrapRate", Eval.divTrapRate());
  Cmp.set("divEffRate", Eval.divEffRate());
  Cmp.set("txtOnlyRate", Eval.txtOnlyRate());
  BackendEval::OracleAgreement A = Eval.agreement();
  Json Agreement = Json::object();
  Agreement.set("bothPass", static_cast<uint64_t>(A.BothPass));
  Agreement.set("bothFail", static_cast<uint64_t>(A.BothFail));
  Agreement.set("primaryOnlyPass", static_cast<uint64_t>(A.PrimaryOnlyPass));
  Agreement.set("differentialOnlyPass",
                static_cast<uint64_t>(A.DifferentialOnlyPass));
  Cmp.set("agreement", std::move(Agreement));
  return Cmp;
}

/// Rebuilds one vega-repair-bench target entry with its oracleComparison
/// replaced. Json::set appends rather than replaces, so every merge here
/// copies field-by-field instead of mutating the parsed document.
Json mergeTarget(const Json &Old, const Json &Cmp) {
  Json T = Json::object();
  for (const auto &[Key, V] : Old.fields()) {
    if (Key == "oracleComparison")
      continue;
    T.set(Key, V);
  }
  T.set("oracleComparison", Cmp);
  return T;
}

} // namespace

int main(int argc, char **argv) {
  std::string ReportPath = "BENCH_repair.json";
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    const std::string Prefix = "--report=";
    if (Arg.rfind(Prefix, 0) == 0)
      ReportPath = Arg.substr(Prefix.size());
  }

  const eval::DifferentialOracle::Options &DiffOpts =
      eval::differentialOracle().options();
  TextTable Table;
  Table.setHeader({"Target", "text", "differential", "Div-Val", "Div-Trap",
                   "Div-Eff", "Txt-Only", "text-only-pass"});

  std::map<std::string, Json> Comparisons;
  for (const std::string &Target : TargetDatabase::evaluationTargetNames()) {
    const BackendEval &Eval = bench::evaluation(Target);
    BackendEval::OracleAgreement A = Eval.agreement();
    Table.addRow({Target, TextTable::formatPercent(Eval.functionAccuracy()),
                  TextTable::formatPercent(Eval.differentialAccuracy()),
                  TextTable::formatPercent(Eval.divValRate()),
                  TextTable::formatPercent(Eval.divTrapRate()),
                  TextTable::formatPercent(Eval.divEffRate()),
                  TextTable::formatPercent(Eval.txtOnlyRate()),
                  std::to_string(A.PrimaryOnlyPass)});
    Comparisons.emplace(Target, comparisonFor(Eval));
  }

  std::printf("== differential robustness: text vs randomized execution ==\n"
              "%s\n",
              Table.render().c_str());
  std::printf("seed %llu, %d randomized cases per interface; "
              "'text-only-pass' counts functions the curated suite accepts "
              "but randomized execution refutes — the dangerous inverse of "
              "Txt-Only\n",
              static_cast<unsigned long long>(DiffOpts.Seed),
              DiffOpts.CaseBudget);

  // Merge into BENCH_repair.json. The document is rebuilt field-by-field
  // (never mutated in place) and its schema bumped to vega-repair-bench-2.
  Json Old = Json::object();
  {
    std::ifstream In(ReportPath);
    if (In) {
      std::stringstream Buffer;
      Buffer << In.rdbuf();
      StatusOr<Json> Parsed = Json::parse(Buffer.str());
      if (Parsed.isOk() && Parsed->isObject())
        Old = std::move(*Parsed);
    }
  }

  Json Doc = Json::object();
  Doc.set("schema", "vega-repair-bench-2");
  bool HadTargets = false;
  for (const auto &[Key, V] : Old.fields()) {
    if (Key == "schema" || Key == "differentialOracle")
      continue;
    if (Key == "targets" && V.isArray()) {
      HadTargets = true;
      Json Targets = Json::array();
      for (const Json &T : V.items()) {
        auto It = Comparisons.find(T.getString("target"));
        Targets.push(It == Comparisons.end() ? T
                                             : mergeTarget(T, It->second));
      }
      Doc.set("targets", std::move(Targets));
      continue;
    }
    Doc.set(Key, V);
  }
  if (!HadTargets) {
    // passk_repair has not written its report yet: emit a standalone sweep.
    Doc.set("epochs", bench::defaultEpochs());
    Json Targets = Json::array();
    for (const auto &[Target, Cmp] : Comparisons) {
      Json T = Json::object();
      T.set("target", Target);
      T.set("oracleComparison", Cmp);
      Targets.push(std::move(T));
    }
    Doc.set("targets", std::move(Targets));
  }
  Json OracleInfo = Json::object();
  OracleInfo.set("name", eval::differentialOracle().name());
  OracleInfo.set("seed", static_cast<uint64_t>(DiffOpts.Seed));
  OracleInfo.set("caseBudget", DiffOpts.CaseBudget);
  Doc.set("differentialOracle", std::move(OracleInfo));

  if (FILE *F = std::fopen(ReportPath.c_str(), "w")) {
    std::string Dump = Doc.dump(2);
    std::fwrite(Dump.data(), 1, Dump.size(), F);
    std::fputc('\n', F);
    std::fclose(F);
    std::printf("report merged into %s\n", ReportPath.c_str());
  } else {
    std::fprintf(stderr, "robustness_differential: cannot write %s\n",
                 ReportPath.c_str());
    return 1;
  }
  return 0;
}
