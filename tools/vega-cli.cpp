//===- tools/vega-cli.cpp - The VEGA command-line driver ------------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// The command-line face of the reproduction:
///
///   vega-cli targets                      list the corpus targets
///   vega-cli groups                       list function groups and sizes
///   vega-cli template <iface>             print a function template
///   vega-cli features <iface>             print Algorithm-1 properties
///   vega-cli golden <target> <iface>      print a golden implementation
///   vega-cli harvest <prop> <target>      print a TgtValSet
///   vega-cli generate <target> [epochs]   train (cached) + emit a backend
///   vega-cli evaluate <target> [epochs]   generate + pass@1 report
///   vega-cli forkflow <target>            evaluate the MIPS fork baseline
///
/// Flags (valid before any command):
///
///   --jobs=<N>                 Stage-3 generation lanes (default: VEGA_JOBS
///                              env var, else hardware concurrency); output
///                              is byte-identical for every N
///   --trace-out=<file>.json    record spans, write a Chrome/Perfetto trace
///   --metrics-out=<file>.json  record counters/gauges/histograms as JSON
///   --stats                    print a text metrics summary on exit
///
//===----------------------------------------------------------------------===//

#include "eval/EffortModel.h"
#include "eval/Harness.h"
#include "forkflow/ForkFlow.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/TextTable.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace vega;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: vega-cli [--jobs=<N>] [--trace-out=<file>] "
      "[--metrics-out=<file>]\n"
      "                [--stats] <command> [args]\n"
      "  targets | groups | template <iface> | features <iface>\n"
      "  golden <target> <iface> | harvest <prop> <target>\n"
      "  generate <target> [epochs] | evaluate <target> [epochs]\n"
      "  forkflow <target>\n");
  return 2;
}

const BackendCorpus &corpus() {
  static BackendCorpus Corpus =
      BackendCorpus::build(TargetDatabase::standard());
  return Corpus;
}

FeatureSelector &selector() {
  static FeatureSelector *S = [] {
    std::vector<std::string> Names;
    for (const TargetTraits &T : corpus().targets().targets())
      Names.push_back(T.Name);
    return new FeatureSelector(corpus().vfs(), Names);
  }();
  return *S;
}

int cmdTargets() {
  TextTable Table;
  Table.setHeader({"Target", "Role", "Endian", "Bits", "Flags", "Fixups",
                   "Instrs"});
  for (const TargetTraits &T : corpus().targets().targets()) {
    bool Held = false;
    for (const std::string &E : TargetDatabase::evaluationTargetNames())
      if (E == T.Name)
        Held = true;
    std::string Flags;
    if (T.HasVariantKind)
      Flags += "V";
    if (T.HasDelaySlots)
      Flags += "D";
    if (T.HasHardwareLoop)
      Flags += "H";
    if (T.HasSimd)
      Flags += "S";
    if (T.HasCompressed)
      Flags += "C";
    if (T.HasThreadScheduler)
      Flags += "T";
    Table.addRow({T.Name, Held ? "eval" : "train",
                  T.IsBigEndian ? "BE" : "LE", T.Is64Bit ? "64" : "32",
                  Flags.empty() ? "-" : Flags,
                  std::to_string(T.Fixups.size()),
                  std::to_string(T.Instructions.size())});
  }
  std::printf("%s", Table.render().c_str());
  return 0;
}

int cmdGroups() {
  TextTable Table;
  Table.setHeader({"Interface function", "Module", "Members", "Statements"});
  for (const FunctionGroup &G : corpus().trainingGroups()) {
    size_t Stmts = 0;
    for (const BackendFunction *F : G.Members)
      Stmts += F->AST.size();
    Table.addRow({G.InterfaceName, moduleName(G.Module),
                  std::to_string(G.Members.size()), std::to_string(Stmts)});
  }
  std::printf("%s", Table.render().c_str());
  return 0;
}

const FunctionGroup *groupNamed(const std::string &Name) {
  static std::vector<FunctionGroup> Groups = corpus().trainingGroups();
  for (const FunctionGroup &G : Groups)
    if (G.InterfaceName == Name)
      return &G;
  std::fprintf(stderr, "error: unknown interface function '%s'\n",
               Name.c_str());
  return nullptr;
}

int cmdTemplate(const std::string &Iface) {
  const FunctionGroup *G = groupNamed(Iface);
  if (!G)
    return 1;
  FunctionTemplate FT = buildFunctionTemplate(*G);
  std::printf("%s", FT.render().c_str());
  return 0;
}

int cmdFeatures(const std::string &Iface) {
  const FunctionGroup *G = groupNamed(Iface);
  if (!G)
    return 1;
  FunctionTemplate FT = buildFunctionTemplate(*G);
  TemplateFeatures F = selector().analyze(FT);
  std::printf("target-independent properties:\n");
  for (const BoolProperty &P : F.BoolProps)
    std::printf("  %-22s %-12s identified at %s\n", P.Name.c_str(),
                P.Updatable ? "updatable" : "constant",
                P.IdentifiedSite.c_str());
  std::printf("placeholder slots:\n");
  for (const auto &[RowIdx, Slots] : F.RowSlots) {
    std::printf("  row %-3d:", RowIdx);
    for (const SlotProperty &S : Slots)
      std::printf(" [%s]", S.Name.empty() ? "?" : S.Name.c_str());
    std::printf("\n");
  }
  return 0;
}

int cmdGolden(const std::string &Target, const std::string &Iface) {
  const Backend *B = corpus().backend(Target);
  if (!B) {
    std::fprintf(stderr, "error: unknown target '%s'\n", Target.c_str());
    return 1;
  }
  const BackendFunction *F = B->find(Iface);
  if (!F) {
    std::fprintf(stderr, "error: %s does not implement %s\n", Target.c_str(),
                 Iface.c_str());
    return 1;
  }
  std::printf("%s", F->AST.render().c_str());
  return 0;
}

int cmdHarvest(const std::string &Prop, const std::string &Target) {
  for (const std::string &V : selector().harvestValues(Prop, Target))
    std::printf("%s\n", V.c_str());
  return 0;
}

/// Stage-3 lane count from --jobs=N (0 = auto; see VegaOptions::Jobs).
int JobsFlag = 0;

VegaSystem &trainedSystem(int Epochs) {
  static VegaSystem *Sys = nullptr;
  if (!Sys) {
    VegaOptions Opts;
    Opts.Model.Epochs = Epochs;
    Opts.WeightCachePath = "vega_cli_model.bin";
    Opts.Verbose = true;
    Opts.Jobs = JobsFlag;
    Sys = new VegaSystem(corpus(), Opts);
    Sys->buildTemplates();
    Sys->buildDataset();
    Sys->trainModel();
  }
  return *Sys;
}

int cmdGenerate(const std::string &Target, int Epochs) {
  if (!corpus().targets().find(Target)) {
    std::fprintf(stderr, "error: unknown target '%s'\n", Target.c_str());
    return 1;
  }
  GeneratedBackend GB = trainedSystem(Epochs).generateBackend(Target);
  for (const GeneratedFunction &F : GB.Functions) {
    if (!F.Emitted)
      continue;
    std::printf("// confidence %.2f [%s]\n%s\n", F.Confidence,
                moduleName(F.Module), F.AST.render().c_str());
  }
  return 0;
}

int cmdEvaluate(const std::string &Target, int Epochs) {
  if (!corpus().targets().find(Target)) {
    std::fprintf(stderr, "error: unknown target '%s'\n", Target.c_str());
    return 1;
  }
  GeneratedBackend GB = trainedSystem(Epochs).generateBackend(Target);
  BackendEval Eval = evaluateBackend(GB, *corpus().backend(Target),
                                     *corpus().targets().find(Target));
  TextTable Table;
  Table.setHeader({"Function", "Module", "Confidence", "pass@1"});
  for (const FunctionEval &F : Eval.Functions)
    Table.addRow({F.InterfaceName, moduleName(F.Module),
                  TextTable::formatDouble(F.Confidence, 2),
                  F.Accurate ? "pass" : (F.Generated ? "FAIL" : "missing")});
  std::printf("%s\n", Table.render().c_str());
  std::printf("function accuracy: %s   statement accuracy: %s\n",
              TextTable::formatPercent(Eval.functionAccuracy()).c_str(),
              TextTable::formatPercent(Eval.statementAccuracy()).c_str());
  std::printf("estimated repair hours (Developer A model): %.2f\n",
              totalRepairHours(Eval, developerA()));
  return 0;
}

int cmdForkflow(const std::string &Target) {
  GeneratedBackend FF = forkflowBackend(corpus(), "Mips", Target);
  BackendEval Eval = evaluateBackend(FF, *corpus().backend(Target),
                                     *corpus().targets().find(Target));
  std::printf("fork-flow (from Mips) accuracy for %s: functions %s, "
              "statements %s\n",
              Target.c_str(),
              TextTable::formatPercent(Eval.functionAccuracy()).c_str(),
              TextTable::formatPercent(Eval.statementAccuracy()).c_str());
  return 0;
}

int dispatch(const std::vector<std::string> &Args) {
  if (Args.empty())
    return usage();
  const std::string &Cmd = Args[0];
  size_t N = Args.size();
  if (Cmd == "targets")
    return cmdTargets();
  if (Cmd == "groups")
    return cmdGroups();
  if (Cmd == "template" && N >= 2)
    return cmdTemplate(Args[1]);
  if (Cmd == "features" && N >= 2)
    return cmdFeatures(Args[1]);
  if (Cmd == "golden" && N >= 3)
    return cmdGolden(Args[1], Args[2]);
  if (Cmd == "harvest" && N >= 3)
    return cmdHarvest(Args[1], Args[2]);
  if (Cmd == "generate" && N >= 2)
    return cmdGenerate(Args[1], N >= 3 ? std::atoi(Args[2].c_str()) : 8);
  if (Cmd == "evaluate" && N >= 2)
    return cmdEvaluate(Args[1], N >= 3 ? std::atoi(Args[2].c_str()) : 8);
  if (Cmd == "forkflow" && N >= 2)
    return cmdForkflow(Args[1]);
  return usage();
}

} // namespace

int main(int argc, char **argv) {
  std::string TraceOut, MetricsOut;
  bool Stats = false;
  std::vector<std::string> Args;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--jobs=", 0) == 0)
      JobsFlag = std::atoi(Arg.c_str() + 7);
    else if (Arg.rfind("--trace-out=", 0) == 0)
      TraceOut = Arg.substr(12);
    else if (Arg.rfind("--metrics-out=", 0) == 0)
      MetricsOut = Arg.substr(14);
    else if (Arg == "--stats")
      Stats = true;
    else
      Args.push_back(std::move(Arg));
  }

  if (!TraceOut.empty())
    obs::TraceRecorder::instance().setEnabled(true);
  if (!MetricsOut.empty() || Stats)
    obs::MetricsRegistry::instance().setEnabled(true);

  int Rc = dispatch(Args);

  if (!TraceOut.empty() &&
      !obs::TraceRecorder::instance().writeChromeTrace(TraceOut)) {
    std::fprintf(stderr, "error: cannot write trace to '%s'\n",
                 TraceOut.c_str());
    return Rc ? Rc : 1;
  }
  if (!MetricsOut.empty() &&
      !obs::MetricsRegistry::instance().writeJson(MetricsOut)) {
    std::fprintf(stderr, "error: cannot write metrics to '%s'\n",
                 MetricsOut.c_str());
    return Rc ? Rc : 1;
  }
  if (Stats)
    std::printf("%s", obs::MetricsRegistry::instance().textSummary().c_str());
  return Rc;
}
