//===- serve/Server.cpp - The vega-serve batching daemon ---------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "obs/Log.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <istream>
#include <map>
#include <ostream>
#include <set>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace vega;
using namespace vega::serve;

VegaServer::VegaServer(VegaSession &Session, ServerOptions Options)
    : Session(Session), Options(Options),
      StartTime(std::chrono::steady_clock::now()) {
  if (this->Options.MaxBatch < 1)
    this->Options.MaxBatch = 1;
  // A daemon always keeps its request metrics on — the `stats` method must
  // answer without any exporter flag, and counter updates are cheap.
  obs::MetricsRegistry::instance().setEnabled(true);
  Worker = std::thread([this] { workerLoop(); });
}

VegaServer::~VegaServer() {
  {
    std::lock_guard<std::mutex> Lock(QueueMu);
    Stopping = true;
  }
  QueueCv.notify_all();
  Worker.join();
}

void VegaServer::shutdown() {
  Shutdown.store(true, std::memory_order_relaxed);
}

std::future<std::string> VegaServer::submitLine(std::string Line) {
  PendingRequest Request;
  Request.Line = std::move(Line);
  Request.Ctx = std::make_shared<obs::RequestContext>();
  std::future<std::string> Future = Request.Promise.get_future();
  InFlight.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> Lock(QueueMu);
    Queue.push_back(std::move(Request));
  }
  QueueCv.notify_one();
  return Future;
}

std::string VegaServer::handleLine(const std::string &Line) {
  return submitLine(Line).get();
}

std::vector<std::string>
VegaServer::handleLines(const std::vector<std::string> &Lines) {
  std::vector<std::string> Responses;
  for (size_t Begin = 0; Begin < Lines.size();
       Begin += static_cast<size_t>(Options.MaxBatch)) {
    size_t End = std::min(Lines.size(),
                          Begin + static_cast<size_t>(Options.MaxBatch));
    std::vector<std::string> Chunk(Lines.begin() + static_cast<long>(Begin),
                                   Lines.begin() + static_cast<long>(End));
    std::vector<std::string> Out = processBatch(Chunk);
    Responses.insert(Responses.end(), std::make_move_iterator(Out.begin()),
                     std::make_move_iterator(Out.end()));
  }
  return Responses;
}

void VegaServer::workerLoop() {
  while (true) {
    std::vector<PendingRequest> Batch;
    {
      std::unique_lock<std::mutex> Lock(QueueMu);
      QueueCv.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping and fully drained.
      size_t N = std::min(Queue.size(), static_cast<size_t>(Options.MaxBatch));
      for (size_t I = 0; I < N; ++I) {
        Batch.push_back(std::move(Queue.front()));
        Queue.pop_front();
      }
    }
    std::vector<std::string> Lines;
    std::vector<std::shared_ptr<obs::RequestContext>> Ctxs;
    Lines.reserve(Batch.size());
    Ctxs.reserve(Batch.size());
    for (const PendingRequest &Request : Batch) {
      Lines.push_back(Request.Line);
      Ctxs.push_back(Request.Ctx);
    }
    std::vector<std::string> Responses = processBatch(Lines, Ctxs);
    for (size_t I = 0; I < Batch.size(); ++I) {
      Batch[I].Promise.set_value(std::move(Responses[I]));
      InFlight.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

Json VegaServer::handleInfo() const {
  const BackendCorpus &Corpus = Session.corpus();
  Json Targets = Json::array();
  for (const TargetTraits &T : Corpus.targets().targets())
    Targets.push(T.Name);
  Json Training = Json::array();
  for (const std::string &N : Corpus.trainingTargetNames())
    Training.push(N);
  Json Info = Json::object();
  Info.set("schema", "vega-serve-1");
  Info.set("targets", std::move(Targets));
  Info.set("trainingTargets", std::move(Training));
  Info.set("templates",
           static_cast<uint64_t>(Session.system().templates().size()));
  Info.set("fromCheckpoint", Session.loadedFromCheckpoint());
  Info.set("maxBatch", Options.MaxBatch);
  Info.set("precision", precisionName(Session.precision()));
  Info.set("prefixSharing", Session.prefixSharing());
  return Info;
}

Json VegaServer::handleStats() {
  auto &Metrics = obs::MetricsRegistry::instance();
  Json Stats = Json::object();
  Stats.set("schema", "vega-stats-1");
  Stats.set("uptimeSec",
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          StartTime)
                .count());
  Stats.set("inFlight", InFlight.load(std::memory_order_relaxed));
  {
    std::lock_guard<std::mutex> Lock(QueueMu);
    Stats.set("queueDepth", static_cast<uint64_t>(Queue.size()));
  }
  Stats.set("requests", Metrics.counterValue("serve.requests"));
  // Reuse the registry's JSON export as the snapshot — stats, the JSON
  // exporter, and the Prometheus exposition all read the same store, so
  // the three views can never disagree on a count.
  StatusOr<Json> All = Json::parse(Metrics.exportJson());
  if (All.isOk()) {
    if (const Json *Counters = All->get("counters"))
      Stats.set("counters", *Counters);
    if (const Json *Gauges = All->get("gauges"))
      Stats.set("gauges", *Gauges);
    Json Quantiles = Json::object();
    if (const Json *Histograms = All->get("histograms"))
      for (const auto &[Name, H] : Histograms->fields()) {
        Json Q = Json::object();
        double Count = H.getNumber("count");
        Q.set("count", Count);
        Q.set("mean", Count > 0 ? H.getNumber("sum") / Count : 0.0);
        Q.set("p50", H.getNumber("p50"));
        Q.set("p95", H.getNumber("p95"));
        Q.set("p99", H.getNumber("p99"));
        Quantiles.set(Name, std::move(Q));
      }
    Stats.set("quantiles", std::move(Quantiles));
  }
  return Stats;
}

std::vector<std::string>
VegaServer::processBatch(const std::vector<std::string> &Lines) {
  return processBatch(
      Lines, std::vector<std::shared_ptr<obs::RequestContext>>(Lines.size()));
}

std::vector<std::string> VegaServer::processBatch(
    const std::vector<std::string> &Lines,
    const std::vector<std::shared_ptr<obs::RequestContext>> &CtxsIn) {
  std::lock_guard<std::mutex> BatchLock(BatchMu);
  auto &Metrics = obs::MetricsRegistry::instance();
  auto &Log = obs::Logger::instance();
  obs::Span BatchSpan("serve.batch", "serve");
  BatchSpan.arg("requests", std::to_string(Lines.size()));
  Metrics.addCounter("serve.batches");
  Metrics.observe("serve.batch_size", static_cast<double>(Lines.size()));

  // Every slot gets a context: the queue path created one at submission
  // (so elapsed time covers queue wait); the direct handleLines path gets
  // a fresh one here.
  std::vector<std::shared_ptr<obs::RequestContext>> Ctxs = CtxsIn;
  Ctxs.resize(Lines.size());
  for (std::shared_ptr<obs::RequestContext> &Ctx : Ctxs)
    if (!Ctx)
      Ctx = std::make_shared<obs::RequestContext>();

  struct Slot {
    StatusOr<RpcRequest> Request = Status::internal("unparsed");
    bool WantsBackend = false; ///< generate or evaluate with a valid target
    bool Expired = false;      ///< deadline already passed at parse time
    std::string Target;
  };
  std::vector<Slot> Slots;
  Slots.reserve(Lines.size());

  // Parse + validate every request, collecting the generation targets.
  std::vector<std::string> Targets;
  std::set<std::string> SeenTargets;
  for (size_t I = 0; I < Lines.size(); ++I) {
    obs::RequestContext &Ctx = *Ctxs[I];
    Metrics.observe("serve.queue_ms", Ctx.elapsedMs());
    Slot S;
    S.Request = parseRpcRequest(Lines[I]);
    if (S.Request.isOk()) {
      const RpcRequest &Request = *S.Request;
      Ctx.setMethod(Request.Method);
      Ctx.setDeadlineAfterMs(Request.Params.getNumber("deadlineMs", 0.0));
      if (Ctx.expired()) {
        S.Expired = true; // answered unavailable; never reaches the fan-out
      } else if (Request.Method == "generate" ||
                 Request.Method == "evaluate" || Request.Method == "repair") {
        std::string Target = Request.Params.getString("target");
        if (!Target.empty() &&
            Session.corpus().targets().find(Target) != nullptr) {
          S.WantsBackend = true;
          S.Target = Target;
          if (SeenTargets.insert(Target).second)
            Targets.push_back(Target);
        }
      }
    }
    Slots.push_back(std::move(S));
  }

  // Attribute each target's generation spans to the first request that
  // asked for it; the router hops pool lanes with the fan-out so every
  // gen.* span lands in the right flight-recorder ring.
  obs::RequestRouter Router;
  for (size_t I = 0; I < Slots.size(); ++I)
    if (Slots[I].WantsBackend)
      Router.bind(Slots[I].Target, Ctxs[I].get());

  // One fan-out for every distinct target in the batch. The merge inside
  // generateBackends() is deterministic, so each per-target backend is
  // byte-identical to a single-request run.
  std::map<std::string, GeneratedBackend> Backends;
  Status BatchStatus = Status::ok();
  if (!Targets.empty()) {
    obs::RouterScope RouteScope(&Router);
    StatusOr<std::vector<GeneratedBackend>> Generated =
        Session.generateMany(Targets);
    if (Generated.isOk())
      for (GeneratedBackend &Backend : *Generated) {
        std::string Name = Backend.TargetName;
        Backends.emplace(std::move(Name), std::move(Backend));
      }
    else
      BatchStatus = Generated.status();
  }

  std::vector<std::string> Responses;
  Responses.reserve(Lines.size());
  for (size_t SlotIdx = 0; SlotIdx < Slots.size(); ++SlotIdx) {
    Slot &S = Slots[SlotIdx];
    obs::RequestContext &Ctx = *Ctxs[SlotIdx];
    obs::RequestScope ReqScope(&Ctx);
    obs::Span RequestSpan("serve.request", "serve");
    Metrics.addCounter("serve.requests");
    auto Fail = [&](Json Response) {
      Metrics.addCounter("serve.errors");
      return Response;
    };

    std::string MethodLabel = "invalid";
    Json Response;
    if (!S.Request.isOk()) {
      const Status &St = S.Request.status();
      int Code = St.message().rfind("parse error", 0) == 0 ? RpcParseError
                                                           : RpcInvalidRequest;
      RequestSpan.arg("method", "<invalid>");
      Response = Fail(makeRpcError(Json(), Code, St.message()));
    } else {
      const RpcRequest &Request = *S.Request;
      MethodLabel = Request.Method;
      RequestSpan.arg("method", Request.Method);
      if (!S.Target.empty())
        RequestSpan.arg("target", S.Target);

      if (S.Expired) {
        Response = Fail(makeRpcError(Request.Id, RpcUnavailable,
                                     "deadline exceeded", "unavailable"));
      } else if (Request.Method == "ping") {
        Json Result = Json::object();
        Result.set("ok", true);
        Response = makeRpcResult(Request.Id, std::move(Result));
      } else if (Request.Method == "info") {
        Response = makeRpcResult(Request.Id, handleInfo());
      } else if (Request.Method == "stats") {
        Response = makeRpcResult(Request.Id, handleStats());
      } else if (Request.Method == "shutdown") {
        shutdown();
        Json Result = Json::object();
        Result.set("ok", true);
        Response = makeRpcResult(Request.Id, std::move(Result));
      } else if (Request.Method == "generate" ||
                 Request.Method == "evaluate" || Request.Method == "repair") {
        std::string Target = Request.Params.getString("target");
        if (Target.empty()) {
          Response = Fail(makeRpcError(
              Request.Id, RpcInvalidParams,
              "params require a string 'target'", "invalid-argument"));
        } else if (!S.WantsBackend) {
          Response = Fail(makeRpcError(
              Request.Id, Status::notFound("unknown target '" + Target + "'")));
        } else if (!BatchStatus.isOk()) {
          Response = Fail(makeRpcError(Request.Id, BatchStatus));
        } else {
          const GeneratedBackend &Generated = Backends.at(Target);
          if (Request.Method == "generate") {
            Response = makeRpcResult(Request.Id, backendToJson(Generated));
          } else if (Request.Method == "repair") {
            // Repair shares the batch's generate fan-out and then runs the
            // per-request engine; the report is deterministic, so batching
            // does not change the payload.
            repair::RepairOptions Opts;
            Opts.BeamWidth = static_cast<int>(
                Request.Params.getNumber("beamWidth", Opts.BeamWidth));
            Opts.MaxRounds = static_cast<int>(
                Request.Params.getNumber("maxRounds", Opts.MaxRounds));
            Opts.CSThreshold =
                Request.Params.getNumber("csThreshold", Opts.CSThreshold);
            repair::RepairEngine Engine(Session.system(), Opts);
            StatusOr<repair::RepairReport> Report =
                Engine.repairBackend(Generated);
            if (Report.isOk())
              Response = makeRpcResult(Request.Id, repairToJson(*Report));
            else
              Response = Fail(makeRpcError(Request.Id, Report.status()));
          } else {
            const Backend *Golden = Session.corpus().backend(Target);
            const TargetTraits *Traits =
                Session.corpus().targets().find(Target);
            if (!Golden || !Traits) {
              Response = Fail(makeRpcError(
                  Request.Id,
                  Status::failedPrecondition("target '" + Target +
                                             "' has no golden backend")));
            } else {
              BackendEval Eval = evaluateBackend(Generated, *Golden, *Traits);
              Response = makeRpcResult(Request.Id, evalToJson(Eval));
            }
          }
        }
      } else {
        Response = Fail(makeRpcError(Request.Id, RpcMethodNotFound,
                                     "unknown method '" + Request.Method + "'",
                                     "unimplemented"));
      }
    }

    // Completion telemetry: one labeled counter series per (method, code),
    // the latency histogram, an info-level NDJSON line, and — past the
    // slow threshold — a warn-level dump of the request's span ring.
    std::string CodeLabel = "ok";
    if (const Json *Error = Response.get("error"))
      CodeLabel = std::to_string(
          static_cast<long long>(Error->getNumber("code")));
    RequestSpan.arg("code", CodeLabel);
    Metrics.addCounter("serve.requests",
                       {{"method", MethodLabel}, {"code", CodeLabel}});
    double Ms = Ctx.elapsedMs();
    Metrics.observe("serve.request_ms", Ms);
    if (Log.enabled(obs::LogLevel::Info)) {
      Json Fields = Json::object();
      Fields.set("req", Ctx.id());
      Fields.set("method", MethodLabel);
      if (!S.Target.empty())
        Fields.set("target", S.Target);
      Fields.set("code", CodeLabel);
      Fields.set("ms", Ms);
      Fields.set("batch", static_cast<uint64_t>(Lines.size()));
      Log.log(obs::LogLevel::Info, "serve.request", Fields);
    }
    if (Options.SlowMs > 0.0 && Ms >= Options.SlowMs &&
        Log.enabled(obs::LogLevel::Warn)) {
      Json Fields = Json::object();
      Fields.set("req", Ctx.id());
      Fields.set("method", MethodLabel);
      Fields.set("ms", Ms);
      Fields.set("slowMs", Options.SlowMs);
      Json SpanList = Json::array();
      for (const obs::RequestContext::SpanRecord &R : Ctx.spans()) {
        Json SpanJson = Json::object();
        SpanJson.set("name", R.Name);
        SpanJson.set("startUs", R.StartUs);
        SpanJson.set("durUs", R.DurUs);
        SpanList.push(std::move(SpanJson));
      }
      Fields.set("spans", std::move(SpanList));
      Fields.set("spansDropped", Ctx.spansDropped());
      Log.log(obs::LogLevel::Warn, "serve.slow", Fields);
    }
    Responses.push_back(Response.dump());
  }
  return Responses;
}

Status VegaServer::serveStream(std::istream &In, std::ostream &Out) {
  std::mutex Mu;
  std::condition_variable Cv;
  std::deque<std::future<std::string>> Pending;
  bool Done = false;

  // Responses go out in submission order; the writer drains futures so the
  // reader can keep pipelining lines into the batcher.
  std::thread Writer([&] {
    while (true) {
      std::future<std::string> Future;
      {
        std::unique_lock<std::mutex> Lock(Mu);
        Cv.wait(Lock, [&] { return Done || !Pending.empty(); });
        if (Pending.empty())
          return;
        Future = std::move(Pending.front());
        Pending.pop_front();
      }
      Out << Future.get() << "\n" << std::flush;
    }
  });

  std::string Line;
  while (!shutdownRequested() && std::getline(In, Line)) {
    if (Line.empty())
      continue;
    std::future<std::string> Future = submitLine(std::move(Line));
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Pending.push_back(std::move(Future));
    }
    Cv.notify_one();
  }
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Done = true;
  }
  Cv.notify_one();
  Writer.join();
  return Status::ok();
}

Status VegaServer::serveSocket(const std::string &Path) {
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return Status::unavailable(std::string("cannot create socket: ") +
                               std::strerror(errno));
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    ::close(Fd);
    return Status::invalidArgument("socket path too long: '" + Path + "'");
  }
  std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  ::unlink(Path.c_str());
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    ::close(Fd);
    return Status::unavailable("cannot bind '" + Path +
                               "': " + std::strerror(errno));
  }
  if (::listen(Fd, 16) < 0) {
    ::close(Fd);
    return Status::unavailable("cannot listen on '" + Path +
                               "': " + std::strerror(errno));
  }

  std::vector<std::thread> Connections;
  while (!shutdownRequested()) {
    // Poll with a timeout so a `shutdown` request processed on another
    // connection breaks the accept loop promptly.
    pollfd Poll{Fd, POLLIN, 0};
    int Ready = ::poll(&Poll, 1, 200);
    if (Ready < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (Ready == 0)
      continue;
    int Client = ::accept(Fd, nullptr, nullptr);
    if (Client < 0)
      continue;
    Connections.emplace_back([this, Client] {
      std::string Buffer;
      char Chunk[4096];
      for (;;) {
        ssize_t N = ::read(Client, Chunk, sizeof(Chunk));
        if (N <= 0)
          break;
        Buffer.append(Chunk, static_cast<size_t>(N));
        size_t Newline;
        while ((Newline = Buffer.find('\n')) != std::string::npos) {
          std::string Line = Buffer.substr(0, Newline);
          Buffer.erase(0, Newline + 1);
          if (Line.empty())
            continue;
          std::string Response = handleLine(Line) + "\n";
          size_t Written = 0;
          while (Written < Response.size()) {
            ssize_t W = ::write(Client, Response.data() + Written,
                                Response.size() - Written);
            if (W <= 0)
              break;
            Written += static_cast<size_t>(W);
          }
        }
      }
      ::close(Client);
    });
  }
  ::close(Fd);
  for (std::thread &Connection : Connections)
    Connection.join();
  ::unlink(Path.c_str());
  return Status::ok();
}
