# Empty compiler generated dependencies file for gumtree_test.
# This may be replaced when dependencies are built.
