# CMake generated Testfile for 
# Source directory: /root/repo/src/tablegen
# Build directory: /root/repo/build/src/tablegen
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
