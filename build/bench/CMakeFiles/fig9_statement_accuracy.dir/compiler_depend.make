# Empty compiler generated dependencies file for fig9_statement_accuracy.
# This may be replaced when dependencies are built.
