//===- core/VegaSession.cpp - The session-level library API ------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "core/VegaSession.h"

#include "core/Checkpoint.h"
#include "obs/Trace.h"

#include <cstdio>

using namespace vega;

const BackendCorpus &VegaSession::standardCorpus() {
  static BackendCorpus Corpus = BackendCorpus::build(TargetDatabase::standard());
  return Corpus;
}

StatusOr<std::unique_ptr<VegaSession>>
VegaSession::build(const BackendCorpus &Corpus, VegaOptions Opts) {
  auto System = std::make_unique<VegaSystem>(Corpus, Opts);
  System->buildTemplates();
  System->buildDataset();

  std::string Detail;
  switch (System->initModelFromCache(&Detail)) {
  case VegaSystem::WeightCacheStatus::Loaded: {
    obs::Span StageSpan("stage2.train_model", "stage2");
    StageSpan.arg("weights", "cached");
    if (Opts.Verbose)
      std::fprintf(stderr, "vega: loaded cached CodeBE weights\n");
    break;
  }
  case VegaSystem::WeightCacheStatus::Mismatch:
    // The historical vega-cli path silently retrained here; the session API
    // refuses instead — a stale cache means the caller's state and the disk
    // disagree, and retraining would quietly shadow the cache they asked for.
    return Status::failedPrecondition(Detail);
  case VegaSystem::WeightCacheStatus::Disabled:
  case VegaSystem::WeightCacheStatus::Missing:
    if (Status St = System->fineTune(); !St.isOk())
      return St;
    break;
  }
  return std::unique_ptr<VegaSession>(
      new VegaSession(Corpus, std::move(System), /*FromCheckpoint=*/false));
}

StatusOr<std::unique_ptr<VegaSession>> VegaSession::build(VegaOptions Opts) {
  return build(standardCorpus(), std::move(Opts));
}

StatusOr<std::unique_ptr<VegaSession>>
VegaSession::load(const BackendCorpus &Corpus, const std::string &Path) {
  StatusOr<std::unique_ptr<VegaSystem>> System =
      SessionCheckpoint::load(Corpus, Path);
  if (!System.isOk())
    return System.status();
  return std::unique_ptr<VegaSession>(new VegaSession(
      Corpus, std::move(System.value()), /*FromCheckpoint=*/true));
}

StatusOr<std::unique_ptr<VegaSession>>
VegaSession::load(const std::string &Path) {
  return load(standardCorpus(), Path);
}

Status VegaSession::save(const std::string &Path) const {
  return SessionCheckpoint::save(*System, Path);
}

StatusOr<GeneratedBackend> VegaSession::generate(const std::string &Target) {
  StatusOr<std::vector<GeneratedBackend>> Backends = generateMany({Target});
  if (!Backends.isOk())
    return Backends.status();
  return std::move(Backends->front());
}

StatusOr<VegaSession::GenerationHandle>
VegaSession::beginGenerate(const std::string &Target) {
  if (!Corpus.targets().find(Target))
    return Status::notFound("unknown target '" + Target + "'");
  return System->beginGenerate(Target);
}

StatusOr<std::vector<GeneratedBackend>>
VegaSession::generateMany(const std::vector<std::string> &Targets) {
  if (Targets.empty())
    return Status::invalidArgument("no targets given");
  for (const std::string &Target : Targets)
    if (!Corpus.targets().find(Target))
      return Status::notFound("unknown target '" + Target + "'");
  return System->generateBackends(Targets);
}
