# Empty dependencies file for vega_corpus.
# This may be replaced when dependencies are built.
