//===- obs/Metrics.h - Named counters, gauges, histograms --------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide, thread-safe metrics registry: monotonically increasing
/// counters (optionally labeled, e.g. serve.requests{method,code}),
/// last-write-wins gauges, and fixed-bucket histograms — linear (the
/// per-statement confidence distribution) or log-bucketed (request
/// latencies, where p50 and p99 live decades apart). Histograms are
/// bounded-memory and mergeable, and answer quantile queries by
/// interpolating inside the hit bucket. Like the TraceRecorder, the
/// registry is disabled by default and a disabled mutation costs one atomic
/// load.
///
/// Histogram *shapes* are declared centrally (declareHistogram at registry
/// construction) so call sites can observe by name alone and two call sites
/// can never race to define different bucket layouts for one metric.
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_OBS_METRICS_H
#define VEGA_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace vega {
namespace obs {

/// One key=value metric label.
using MetricLabel = std::pair<std::string, std::string>;

/// A fixed-bucket histogram over [Lo, Hi). Buckets are uniform in value
/// (linear) or uniform in log-space (LogScale, for quantities spanning
/// decades). Out-of-range observations clamp into the first/last bucket so
/// Count always equals the sum of Buckets; memory is bounded by the bucket
/// vector alone.
struct Histogram {
  double Lo = 0.0, Hi = 1.0;
  bool LogScale = false;
  std::vector<uint64_t> Buckets;
  uint64_t Count = 0;
  double Sum = 0.0;
  double MinSeen = 0.0, MaxSeen = 0.0;

  /// Index of the bucket \p Value falls into (clamped to the edge buckets).
  size_t bucketFor(double Value) const;

  /// The lower / upper value bound of bucket \p Idx (geometric bounds for
  /// log-scale histograms).
  double bucketLowerBound(size_t Idx) const;
  double bucketUpperBound(size_t Idx) const;

  void observe(double Value);

  double mean() const { return Count ? Sum / static_cast<double>(Count) : 0.0; }

  /// Estimated value at quantile \p Q in [0, 1]: walks the cumulative
  /// bucket counts to the Q-th observation and interpolates linearly inside
  /// the hit bucket, clamped to [MinSeen, MaxSeen]. 0 when empty.
  double quantile(double Q) const;

  /// True when \p Other has the same Lo/Hi/scale/bucket count.
  bool sameShape(const Histogram &Other) const;

  /// Adds \p Other's observations into this histogram. Shapes must match
  /// (sameShape); returns false and changes nothing otherwise. Merging N
  /// per-worker histograms is exact: counts and sums are plain additions.
  bool merge(const Histogram &Other);
};

class MetricsRegistry {
public:
  static MetricsRegistry &instance();

  void setEnabled(bool On) { Enabled.store(On, std::memory_order_relaxed); }
  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }

  /// Drops every metric. Centrally declared histogram shapes survive, so a
  /// post-clear observe() still lands in the declared bucket layout.
  void clear();

  void addCounter(const std::string &Name, uint64_t Delta = 1);

  /// Labeled counter: one series per distinct label set, stored under the
  /// canonical key Name{k1="v1",k2="v2"} with keys sorted — call sites can
  /// list labels in any order and always hit the same series. The unlabeled
  /// base counter is a separate series (callers bump it explicitly when
  /// they want a total).
  void addCounter(const std::string &Name,
                  const std::vector<MetricLabel> &Labels, uint64_t Delta = 1);

  /// The canonical storage key for a labeled series (label keys sorted,
  /// values quote-escaped) — also the exact Prometheus series syntax.
  static std::string labeledName(const std::string &Name,
                                 const std::vector<MetricLabel> &Labels);

  void setGauge(const std::string &Name, double Value);

  /// Declares a histogram's bucket layout without creating the histogram;
  /// the first observation materializes it. Declarations are first-wins,
  /// work while disabled, and survive clear() — this is how the registry
  /// constructor pins the layouts of the standard metrics so call sites
  /// cannot diverge.
  void declareHistogram(const std::string &Name, double Lo, double Hi,
                        size_t BucketCount, bool LogScale = false);

  /// Declares a histogram's shape and materializes it immediately. Safe to
  /// call repeatedly; the first call wins. Works while disabled so shapes
  /// survive an enable toggle.
  void defineHistogram(const std::string &Name, double Lo, double Hi,
                       size_t BucketCount, bool LogScale = false);

  /// Records \p Value into histogram \p Name. A histogram that does not
  /// exist yet takes its declared shape, else 10 linear buckets over [0,1).
  void observe(const std::string &Name, double Value);

  /// Records \p Value, supplying a fallback shape for a histogram that is
  /// neither materialized nor declared. A central declaration always wins
  /// over the call-site shape.
  void observe(const std::string &Name, double Value, double Lo, double Hi,
               size_t BucketCount);

  // ---- Read side (tests, exporters) ----
  uint64_t counterValue(const std::string &Name) const;
  std::optional<double> gaugeValue(const std::string &Name) const;
  std::optional<Histogram> histogram(const std::string &Name) const;
  /// Total number of distinct metrics (counters + gauges + histograms).
  size_t metricCount() const;

  /// All metrics as one JSON object, keyed by name within kind. Histograms
  /// include p50/p95/p99 alongside the raw buckets.
  std::string exportJson() const;

  /// Prometheus text exposition (version 0.0.4): counters as
  /// vega_<name>_total, gauges as vega_<name>, histograms as summaries with
  /// quantile="0.5|0.95|0.99" labels plus _sum and _count. Metric names are
  /// sanitized ([a-zA-Z0-9_]); label sets pass through verbatim.
  std::string exportPrometheus() const;

  /// Writes exportJson() to \p Path; false on I/O failure.
  bool writeJson(const std::string &Path) const;

  /// Writes exportPrometheus() to \p Path; false on I/O failure.
  bool writePrometheus(const std::string &Path) const;

  /// A human-readable summary (support/TextTable) for `vega-cli --stats`.
  std::string textSummary() const;

private:
  MetricsRegistry();

  struct HistogramShape {
    double Lo, Hi;
    size_t BucketCount;
    bool LogScale;
  };

  /// Materializes \p Name using its declared shape, else \p Fallback.
  /// Caller holds Mu.
  Histogram &materializeLocked(const std::string &Name,
                               const HistogramShape &Fallback);

  std::atomic<bool> Enabled{false};
  mutable std::mutex Mu;
  std::map<std::string, uint64_t> Counters;
  std::map<std::string, double> Gauges;
  std::map<std::string, Histogram> Histograms;
  std::map<std::string, HistogramShape> Declared; ///< survives clear()
};

} // namespace obs
} // namespace vega

#endif // VEGA_OBS_METRICS_H
