//===- minicc/Compiler.cpp - The mini compiler -------------------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "minicc/Compiler.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace vega;

namespace {

InstrClass classOf(IROp Op) {
  switch (Op) {
  case IROp::Add:
  case IROp::Sub:
  case IROp::And:
  case IROp::Or:
  case IROp::Xor:
    return InstrClass::Alu;
  case IROp::Mul:
    return InstrClass::Mul;
  case IROp::Div:
    return InstrClass::Div;
  case IROp::Shl:
  case IROp::Shr:
    return InstrClass::Shift;
  case IROp::Cmp:
    return InstrClass::Cmp;
  case IROp::Mov:
  case IROp::MovImm:
    return InstrClass::Mov;
  case IROp::Load:
    return InstrClass::Load;
  case IROp::Store:
    return InstrClass::Store;
  case IROp::Br:
  case IROp::CondBr:
    return InstrClass::Branch;
  case IROp::Call:
    return InstrClass::Call;
  case IROp::Ret:
    return InstrClass::Ret;
  }
  return InstrClass::Alu;
}

MachineInstr makeInstr(InstrClass Class, const TargetTraits &Traits,
                       const BackendHooks &Hooks) {
  MachineInstr MI;
  MI.Class = Class;
  MI.Cycles = Hooks.Latency ? Hooks.Latency(Class) : 1;
  if (const InstrInfo *I = Traits.findInstr(Class))
    MI.Size = I->Size;
  return MI;
}

/// Optimization pipeline state for one function.
struct OptimizedIR {
  IRFunction Fn;
  std::set<std::pair<int, int>> Removed; ///< (block, instr) erased
  std::set<std::pair<int, int>> Hoisted; ///< moved to the preheader
  std::set<std::pair<int, int>> Strength; ///< mul→shift
  std::set<int> VectorizedBlocks;
  std::set<int> HwLoopBlocks;
};

/// Constant folding + dead-code elimination + strength reduction + LICM +
/// vectorization + hardware-loop conversion, all as marks over the IR.
OptimizedIR optimize(const IRFunction &Fn, const BackendHooks &Hooks) {
  OptimizedIR Out;
  Out.Fn = Fn;

  // Liveness for DCE: a vreg is live if any instruction reads it or it
  // feeds a store/branch/call/ret.
  std::set<int> Read;
  for (const IRBlock &B : Fn.Blocks)
    for (const IRInstr &I : B.Instrs) {
      if (I.A >= 0)
        Read.insert(I.A);
      if (I.B >= 0)
        Read.insert(I.B);
    }

  // Constants for folding: vregs defined by MovImm.
  std::set<int> ConstRegs;
  for (const IRBlock &B : Fn.Blocks)
    for (const IRInstr &I : B.Instrs)
      if (I.Op == IROp::MovImm && I.Dst >= 0)
        ConstRegs.insert(I.Dst);

  for (size_t BI = 0; BI < Fn.Blocks.size(); ++BI) {
    const IRBlock &B = Fn.Blocks[BI];
    const IRLoop *Loop = Fn.loopOf(static_cast<int>(BI));
    for (size_t II = 0; II < B.Instrs.size(); ++II) {
      const IRInstr &I = B.Instrs[II];
      auto Key = std::make_pair(static_cast<int>(BI), static_cast<int>(II));

      // DCE: pure def never read.
      bool Pure = I.Op != IROp::Store && I.Op != IROp::Call &&
                  I.Op != IROp::Br && I.Op != IROp::CondBr &&
                  I.Op != IROp::Ret;
      if (Pure && I.Dst >= 0 && !Read.count(I.Dst)) {
        Out.Removed.insert(Key);
        continue;
      }
      // Constant folding: arithmetic over two constants folds to MovImm,
      // and a fold of a fold disappears entirely; model as removal when
      // both operands are constant.
      bool Arith = I.Op == IROp::Add || I.Op == IROp::Sub ||
                   I.Op == IROp::Mul || I.Op == IROp::And ||
                   I.Op == IROp::Or || I.Op == IROp::Xor;
      if (Arith && I.A >= 0 && ConstRegs.count(I.A) &&
          (I.B < 0 || ConstRegs.count(I.B))) {
        Out.Removed.insert(Key);
        if (I.Dst >= 0)
          ConstRegs.insert(I.Dst);
        continue;
      }
      // Strength reduction: multiply by a power-of-two immediate.
      if (I.Op == IROp::Mul && I.UsesImm && I.Imm > 0 &&
          (I.Imm & (I.Imm - 1)) == 0) {
        Out.Strength.insert(Key);
        continue;
      }
      // LICM.
      if (Loop && I.LoopInvariant)
        Out.Hoisted.insert(Key);
    }
  }

  // Loop transforms.
  for (const IRLoop &L : Fn.Loops) {
    if (L.Vectorizable && Hooks.VectorWidth >= 64)
      Out.VectorizedBlocks.insert(L.BodyBlock);
    if (Hooks.HardwareLoops && L.ConstantTrip && L.NumBlocks == 1)
      Out.HwLoopBlocks.insert(L.BodyBlock);
  }
  return Out;
}

} // namespace

MachineFunction vega::compileFunction(const IRFunction &Fn,
                                      const TargetTraits &Traits,
                                      const BackendHooks &Hooks,
                                      OptLevel Level) {
  MachineFunction MF;
  MF.Name = Fn.Name;

  // Prologue block.
  MachineBlock Prologue;
  Prologue.Instrs.push_back(makeInstr(InstrClass::Store, Traits, Hooks));
  Prologue.Instrs.push_back(makeInstr(InstrClass::Alu, Traits, Hooks));
  MF.Blocks.push_back(std::move(Prologue));

  OptimizedIR Opt = Level == OptLevel::O3
                        ? optimize(Fn, Hooks)
                        : OptimizedIR{Fn, {}, {}, {}, {}, {}};

  // Register pressure: at -O0 everything is spilled; at -O3 we spill only
  // the virtual registers beyond the allocatable set.
  int Allocatable = std::max(2, Traits.RegisterCount - Traits.ReservedRegCount);
  bool SpillEverything = Level == OptLevel::O0;
  int SpilledRegs =
      SpillEverything ? Fn.NumVRegs : std::max(0, Fn.NumVRegs - Allocatable);
  MF.SpillCount = SpilledRegs;
  // At -O3 a spilled vreg costs one reload per use in hot blocks; model by
  // marking a fraction of operand reads as memory ops.
  double SpillFraction =
      Fn.NumVRegs == 0
          ? 0.0
          : static_cast<double>(SpilledRegs) / static_cast<double>(Fn.NumVRegs);

  for (size_t BI = 0; BI < Fn.Blocks.size(); ++BI) {
    const IRBlock &B = Fn.Blocks[BI];
    MachineBlock MB;
    const IRLoop *Loop = Fn.loopOf(static_cast<int>(BI));
    MB.ExecCount = Loop ? Loop->TripCount : 1;
    bool Vectorized = Opt.VectorizedBlocks.count(static_cast<int>(BI)) != 0;
    if (Vectorized)
      MB.ExecCount = std::max<int64_t>(1, MB.ExecCount / 4);
    MB.HardwareLoopBody = Opt.HwLoopBlocks.count(static_cast<int>(BI)) != 0;

    int SpillCounter = 0;
    bool PrevWasLoad = false;
    for (size_t II = 0; II < B.Instrs.size(); ++II) {
      const IRInstr &I = B.Instrs[II];
      auto Key = std::make_pair(static_cast<int>(BI), static_cast<int>(II));
      if (Opt.Removed.count(Key))
        continue;
      if (Opt.Hoisted.count(Key)) {
        // Execute once in the entry block instead of per iteration.
        MF.Blocks.front().Instrs.push_back(
            makeInstr(classOf(I.Op), Traits, Hooks));
        continue;
      }
      // Hardware loops drop the per-iteration compare and branch.
      if (MB.HardwareLoopBody &&
          (I.Op == IROp::CondBr || I.Op == IROp::Cmp))
        continue;

      InstrClass Class = classOf(I.Op);
      if (Opt.Strength.count(Key))
        Class = InstrClass::Shift;
      if (Vectorized && (Class == InstrClass::Alu || Class == InstrClass::Mul))
        Class = Traits.HasSimd ? InstrClass::Simd : Class;

      // -O0 lowering reloads operands and stores results through the stack.
      auto EmitOperandLoads = [&](int Count) {
        for (int K = 0; K < Count; ++K) {
          MB.Instrs.push_back(makeInstr(InstrClass::Load, Traits, Hooks));
          PrevWasLoad = true;
        }
      };
      if (SpillEverything) {
        int Operands = (I.A >= 0) + (I.B >= 0);
        EmitOperandLoads(Operands);
      } else if (SpillFraction > 0.0) {
        // Deterministic modulo pattern approximating reload frequency.
        int Operands = (I.A >= 0) + (I.B >= 0);
        for (int K = 0; K < Operands; ++K) {
          if (++SpillCounter * SpillFraction >= 1.0) {
            SpillCounter = 0;
            EmitOperandLoads(1);
          }
        }
      }

      MachineInstr MI = makeInstr(Class, Traits, Hooks);
      MI.DependsOnPrevLoad = PrevWasLoad;
      PrevWasLoad = Class == InstrClass::Load;
      MB.Instrs.push_back(MI);

      if (SpillEverything && I.Dst >= 0 && I.Op != IROp::Load)
        MB.Instrs.push_back(makeInstr(InstrClass::Store, Traits, Hooks));
    }

    // Hardware-loop setup lands in the preheader (entry block here).
    if (MB.HardwareLoopBody && Traits.findInstr(InstrClass::HwLoop))
      MF.Blocks.front().Instrs.push_back(
          makeInstr(InstrClass::HwLoop, Traits, Hooks));

    // Post-RA scheduling hides load-use latency by reordering: clear the
    // dependency flags on alternate instructions.
    if (Level == OptLevel::O3 && Hooks.PostRAScheduler) {
      bool Toggle = false;
      for (MachineInstr &MI : MB.Instrs) {
        if (MI.DependsOnPrevLoad && (Toggle = !Toggle))
          MI.DependsOnPrevLoad = false;
      }
    }
    MF.Blocks.push_back(std::move(MB));
  }

  // Epilogue.
  MachineBlock Epilogue;
  Epilogue.Instrs.push_back(makeInstr(InstrClass::Load, Traits, Hooks));
  Epilogue.Instrs.push_back(makeInstr(InstrClass::Ret, Traits, Hooks));
  MF.Blocks.push_back(std::move(Epilogue));
  return MF;
}

MachineProgram vega::compileModule(const IRModule &Module,
                                   const TargetTraits &Traits,
                                   const BackendHooks &Hooks, OptLevel Level) {
  MachineProgram Program;
  Program.Name = Module.Name;
  for (const IRFunction &Fn : Module.Functions)
    Program.Functions.push_back(compileFunction(Fn, Traits, Hooks, Level));
  return Program;
}
