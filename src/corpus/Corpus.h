//===- corpus/Corpus.h - The backend corpus ----------------------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The assembled corpus: the framework tree (LLVMDIRs), every target's
/// description files (TGTDIRs), and every target's golden backend functions,
/// preprocessed per §3.1 of the paper (helper inlining, statement
/// normalization) and organized into function groups.
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_CORPUS_CORPUS_H
#define VEGA_CORPUS_CORPUS_H

#include "ast/Statement.h"
#include "support/Error.h"
#include "corpus/GoldenBackend.h"
#include "corpus/TargetTraits.h"
#include "support/VirtualFileSystem.h"

#include <map>
#include <memory>

namespace vega {

/// One target-specific implementation of an interface function.
struct BackendFunction {
  std::string InterfaceName;
  std::string TargetName;
  BackendModule Module = BackendModule::SEL;
  std::string Source;  ///< golden source text (pre-inlining)
  FunctionAST AST;     ///< preprocessed statement tree
};

/// All functions of one target.
struct Backend {
  std::string TargetName;
  std::vector<std::unique_ptr<BackendFunction>> Functions;

  /// Finds the implementation of \p InterfaceName, or nullptr.
  const BackendFunction *find(const std::string &InterfaceName) const;

  /// Number of statements across all functions.
  size_t statementCount() const;
};

/// All target-specific implementations of one interface function M
/// (the paper's FG_M).
struct FunctionGroup {
  std::string InterfaceName;
  BackendModule Module = BackendModule::SEL;
  std::vector<const BackendFunction *> Members;
};

/// Splits a source buffer containing several function definitions into
/// per-function sources (top-level brace matching).
std::vector<std::string> splitFunctionSources(std::string_view Source);

/// Parses \p Source (one or more functions), inlines single-call helper
/// forwarding ("return GetRelocTypeInner(...)"), normalizes selection
/// statements, and returns the interface function's AST.
Expected<FunctionAST> preprocessFunctionSource(std::string_view Source);

/// The assembled corpus.
class BackendCorpus {
public:
  /// Renders and preprocesses everything for \p DB. Expensive; build once.
  static BackendCorpus build(const TargetDatabase &DB);

  /// The file tree holding LLVMDIRs and every target's TGTDIRs.
  const VirtualFileSystem &vfs() const { return VFS; }

  /// The target database the corpus was built from.
  const TargetDatabase &targets() const { return DB; }

  /// The backend of \p TargetName, or nullptr.
  const Backend *backend(const std::string &TargetName) const;

  /// All backends, in target order.
  const std::vector<std::unique_ptr<Backend>> &backends() const {
    return Backends;
  }

  /// Function groups over the given target names (typically the training
  /// targets). Groups are returned in registry order.
  std::vector<FunctionGroup>
  functionGroups(const std::vector<std::string> &TargetNames) const;

  /// Function groups over all training targets.
  std::vector<FunctionGroup> trainingGroups() const;

  /// Names of all training targets.
  std::vector<std::string> trainingTargetNames() const;

private:
  TargetDatabase DB;
  VirtualFileSystem VFS;
  std::vector<std::unique_ptr<Backend>> Backends;
};

} // namespace vega

#endif // VEGA_CORPUS_CORPUS_H
