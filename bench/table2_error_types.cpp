//===- bench/table2_error_types.cpp - Table 2 ---------------------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// Table 2: the three sources of inaccurate statements — wrong
/// target-specific values (Err-V), contradicting confidence scores
/// (Err-CS), and deficient statements (Err-Def) — as a fraction of all
/// generated functions. Paper anchors: Err-V 3.9/3.0/1.1%, Err-CS
/// 11.6/10.6/10.1%, Err-Def 23.9/22.9/37.2%. Shape to match: Err-Def
/// dominates, Err-V is smallest, xCORE has the most Err-Def.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/TextTable.h"

#include <cstdio>

using namespace vega;

int main() {
  TextTable Table;
  Table.setHeader({"Error Type", "RISCV", "RI5CY", "XCORE"});
  const std::vector<std::string> Targets = {"RISCV", "RI5CY", "XCORE"};

  auto Row = [&](const char *Label, double (BackendEval::*Rate)() const) {
    std::vector<std::string> Cells = {Label};
    for (const std::string &Target : Targets)
      Cells.push_back(
          TextTable::formatPercent((bench::evaluation(Target).*Rate)()));
    Table.addRow(std::move(Cells));
  };
  Row("1. Err-V", &BackendEval::errVRate);
  Row("2. Err-CS", &BackendEval::errCSRate);
  Row("3. Err-Def", &BackendEval::errDefRate);
  Table.addSeparator();
  // Behavioural-divergence census from the differential oracle riding along
  // on bench::evaluation(). Txt-Only is not a failure class: those
  // functions are textually different yet behaviourally equal, and are
  // broken out so they stop being counted as plain failures.
  Row("4. Div-Val", &BackendEval::divValRate);
  Row("5. Div-Trap", &BackendEval::divTrapRate);
  Row("6. Div-Eff", &BackendEval::divEffRate);
  Row("7. Txt-Only", &BackendEval::txtOnlyRate);

  std::printf("== Table 2: sources of inaccurate statements ==\n%s\n",
              Table.render().c_str());
  std::printf("paper: Err-V 3.9/3.0/1.1%%, Err-CS 11.6/10.6/10.1%%, Err-Def "
              "23.9/22.9/37.2%% (totals may exceed 100%%: one function can "
              "exhibit several error types)\n");
  std::printf("rows 4-6 are behavioural divergences under the differential "
              "oracle; row 7 (Txt-Only) is behaviourally equal code that "
              "plain text accounting over-penalizes, not a failure class\n");
  return 0;
}
