//===- bench/fig7_inference_time.cpp - Fig. 7 --------------------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// Fig. 7: wall-clock inference time of VEGA's Target-Specific Code
/// Generation stage, per function module, for RISC-V, RI5CY, and xCORE.
/// Paper shape: a few hundred seconds per module on their hardware, whole
/// backends "under an hour"; our scaled model generates whole backends in
/// minutes — the per-module *distribution* is the comparable shape.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/TextTable.h"

#include <cstdio>

using namespace vega;

int main() {
  TextTable Table;
  Table.setHeader({"Module", "RISCV (s)", "RI5CY (s)", "XCORE (s)"});
  const std::vector<std::string> Targets = {"RISCV", "RI5CY", "XCORE"};

  std::map<std::string, double> Totals;
  for (BackendModule Module : AllModules) {
    std::vector<std::string> Row = {moduleName(Module)};
    for (const std::string &Target : Targets) {
      const GeneratedBackend &GB = bench::generated(Target);
      auto It = GB.ModuleSeconds.find(Module);
      double Seconds = It == GB.ModuleSeconds.end() ? 0.0 : It->second;
      Totals[Target] += Seconds;
      Row.push_back(TextTable::formatDouble(Seconds, 2));
    }
    Table.addRow(std::move(Row));
  }
  Table.addSeparator();
  Table.addRow({"ALL", TextTable::formatDouble(Totals["RISCV"], 2),
                TextTable::formatDouble(Totals["RI5CY"], 2),
                TextTable::formatDouble(Totals["XCORE"], 2)});

  std::printf("== Fig. 7: per-module backend generation time ==\n%s\n",
              Table.render().c_str());
  std::printf("paper: 1383 s (RISC-V), 1664 s (RI5CY), 424 s (xCORE) — all "
              "under one hour; shape to match: EMI/SEL dominate, DIS absent "
              "for xCORE, every target finishes in minutes at our scale\n");
  return 0;
}
