//===- bench/ablation_split_strategy.cpp - §4.2 split ablation ------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// §4.2's dataset ablation: the function-group-based 75/25 split (default)
/// versus the backend-based split that risks leaving whole function
/// templates uncovered. Paper anchor: the backend-based split costs 26.2 /
/// 25.2 / 11.1 accuracy points. Shape to match: backend-based split is
/// clearly worse on the generated backend. The ablated model trains fewer
/// epochs than the main one; both arms here use the same budget, so the
/// comparison is fair.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/TextTable.h"

#include <cstdio>

using namespace vega;

namespace {

double accuracyWithSplit(VegaOptions::SplitKind Split, const char *Cache,
                         double &ExactMatch) {
  VegaOptions Opts;
  Opts.Model.Epochs = std::max(2, bench::defaultEpochs() / 4);
  Opts.Split = Split;
  Opts.WeightCachePath = Cache;
  Opts.Verbose = true;
  VegaSystem Sys(bench::corpus(), Opts);
  Sys.buildTemplates();
  Sys.buildDataset();
  Sys.trainModel();
  ExactMatch = Sys.verificationExactMatch(400);
  GeneratedBackend GB = Sys.generateBackend("RISCV");
  BackendEval Eval =
      evaluateBackend(GB, *bench::corpus().backend("RISCV"),
                      *bench::corpus().targets().find("RISCV"));
  return Eval.functionAccuracy();
}

} // namespace

int main() {
  double EmGroup = 0.0, EmBackend = 0.0;
  double AccGroup = accuracyWithSplit(VegaOptions::SplitKind::FunctionGroup,
                                      "vega_model_ablsplit_group.bin",
                                      EmGroup);
  double AccBackend = accuracyWithSplit(VegaOptions::SplitKind::BackendBased,
                                        "vega_model_ablsplit_backend.bin",
                                        EmBackend);

  TextTable Table;
  Table.setHeader({"Split strategy", "Verify EM", "RISCV fn accuracy"});
  Table.addRow({"function-group (75/25 within groups)",
                TextTable::formatPercent(EmGroup),
                TextTable::formatPercent(AccGroup)});
  Table.addRow({"backend-based (75/25 whole backends)",
                TextTable::formatPercent(EmBackend),
                TextTable::formatPercent(AccBackend)});
  std::printf("== §4.2 ablation: dataset split strategy ==\n%s\n",
              Table.render().c_str());
  std::printf("accuracy delta (group - backend): %+.1f points; paper: "
              "-26.2 points for RISC-V when switching to the backend-based "
              "split\n",
              (AccGroup - AccBackend) * 100.0);
  return 0;
}
