//===- support/ThreadPool.cpp - Fixed-size worker pool ----------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <cstdlib>

using namespace vega;

namespace {

thread_local int CurrentLaneTL = -1;

/// The registered propagator. Function-local static so registration from
/// another translation unit's static initializer is order-safe.
ThreadPool::ContextPropagator &propagator() {
  static ThreadPool::ContextPropagator P;
  return P;
}

} // namespace

void ThreadPool::setContextPropagator(ContextPropagator P) {
  propagator() = std::move(P);
}

unsigned ThreadPool::defaultJobs() {
  if (const char *Env = std::getenv("VEGA_JOBS")) {
    int N = std::atoi(Env);
    if (N > 0)
      return static_cast<unsigned>(N);
  }
  unsigned HW = std::thread::hardware_concurrency();
  return HW > 0 ? HW : 1;
}

int ThreadPool::currentLane() { return CurrentLaneTL; }

ThreadPool::ThreadPool(int Jobs)
    : JobCount(Jobs > 0 ? static_cast<unsigned>(Jobs) : defaultJobs()) {
  for (unsigned Lane = 1; Lane < JobCount; ++Lane)
    Workers.emplace_back([this, Lane] { workerLoop(Lane); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> L(Mu);
    Stop = true;
  }
  WorkCv.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::runBatch(Batch &B) {
  const ContextPropagator &P = propagator();
  std::shared_ptr<void> Prior;
  bool Installed = false;
  if (B.Ambient && P.Install) {
    Prior = P.Install(B.Ambient);
    Installed = true;
  }
  for (;;) {
    size_t I = B.Next.fetch_add(1, std::memory_order_relaxed);
    if (I >= B.N)
      break;
    try {
      (*B.Fn)(I);
    } catch (...) {
      std::lock_guard<std::mutex> L(B.Mu);
      if (!B.Error)
        B.Error = std::current_exception();
    }
    if (B.Done.fetch_add(1, std::memory_order_acq_rel) + 1 == B.N) {
      std::lock_guard<std::mutex> L(B.Mu);
      B.Finished = true;
      B.DoneCv.notify_all();
    }
  }
  if (Installed && P.Restore)
    P.Restore(Prior);
}

void ThreadPool::workerLoop(unsigned Lane) {
  CurrentLaneTL = static_cast<int>(Lane);
  std::shared_ptr<Batch> Seen;
  for (;;) {
    std::shared_ptr<Batch> B;
    {
      std::unique_lock<std::mutex> L(Mu);
      WorkCv.wait(L, [&] { return Stop || Current != Seen; });
      if (Stop)
        return;
      Seen = Current;
      B = Current;
    }
    if (B)
      runBatch(*B);
  }
}

void ThreadPool::parallelFor(size_t N,
                             const std::function<void(size_t)> &Fn) {
  if (N == 0)
    return;
  int PrevLane = CurrentLaneTL;
  if (Workers.empty() || N == 1) {
    // Serial fast path: jobs=1 (or a single item) runs inline with no
    // synchronization, which is exactly the pre-pool code path.
    CurrentLaneTL = 0;
    try {
      for (size_t I = 0; I < N; ++I)
        Fn(I);
    } catch (...) {
      CurrentLaneTL = PrevLane;
      throw;
    }
    CurrentLaneTL = PrevLane;
    return;
  }
  auto B = std::make_shared<Batch>();
  B->Fn = &Fn;
  B->N = N;
  if (const auto &Capture = propagator().Capture)
    B->Ambient = Capture();
  {
    std::lock_guard<std::mutex> L(Mu);
    Current = B;
  }
  WorkCv.notify_all();
  CurrentLaneTL = 0;
  runBatch(*B);
  CurrentLaneTL = PrevLane;
  std::unique_lock<std::mutex> L(B->Mu);
  B->DoneCv.wait(L, [&] { return B->Finished; });
  if (B->Error)
    std::rethrow_exception(B->Error);
}
