file(REMOVE_RECURSE
  "libvega_support.a"
)
