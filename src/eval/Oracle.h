//===- eval/Oracle.h - Pluggable execution oracles ---------------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pluggable execution-oracle API. An Oracle scores one candidate
/// function against its golden counterpart and returns an OracleVerdict:
/// cases considered, cases passed, and (for differential oracles) a
/// per-class divergence census. Two implementations ship:
///
///  - TextOracle: the historical pass@1 oracle — runs candidate and golden
///    under the curated per-interface regression environments
///    (eval/EvalSpecs) and demands behavioural equivalence. This is the
///    exact machinery previously private to eval::evaluateBackend and
///    repair::RepairEngine, extracted behind the interface.
///
///  - DifferentialOracle: executes candidate and golden side-by-side over
///    *seeded randomized* inputs derived from each interface group's
///    regression environments (the environments encode the function's
///    effective signature: which variables and call results it consumes,
///    and of which kinds). Divergences classify as Div-Val (wrong result),
///    Div-Trap (trap/crash mismatch), or Div-Eff (effect-trace mismatch).
///
/// Determinism contract: a verdict depends only on (oracle options,
/// interface name, target traits, the two ASTs). DifferentialOracle derives
/// its RNG stream from fnv1a(interface) ^ seed and consumes it in ordered-
/// map iteration order, so verdicts are byte-identical at any --jobs, any
/// visit order, and across processes.
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_EVAL_ORACLE_H
#define VEGA_EVAL_ORACLE_H

#include "ast/Statement.h"
#include "corpus/TargetTraits.h"
#include "interp/Interpreter.h"

#include <optional>
#include <string>
#include <vector>

namespace vega {
namespace eval {

/// Outcome of scoring one candidate function against its golden
/// counterpart. Cases where the *golden* run errors are spec gaps and are
/// skipped on both sides (they count in neither Cases nor Passed).
struct OracleVerdict {
  size_t Passed = 0;
  size_t Cases = 0;
  /// Any candidate run the interpreter rejected outright.
  bool CandidateError = false;

  /// Divergence census (populated by differential oracles; the text oracle
  /// reports pass/fail only). One failing case lands in exactly one class.
  size_t ValDivergences = 0;  ///< same outcome shape, wrong result value
  size_t TrapDivergences = 0; ///< trap/crash on one side only (or mismatched
                              ///< trap message, or a candidate Error)
  size_t EffDivergences = 0;  ///< matching result, diverging effect trace

  /// The pass@1 verdict: every considered case passed and no run errored.
  bool full() const { return !CandidateError && Passed == Cases; }
  /// Pass fraction used to rank partial improvements during repair
  /// hill-climbing.
  double fraction() const {
    if (CandidateError)
      return 0.0;
    return Cases == 0 ? 1.0
                      : static_cast<double>(Passed) /
                            static_cast<double>(Cases);
  }
};

/// The oracle seam: anything that can judge a candidate implementation of
/// an interface function against the golden one.
class Oracle {
public:
  virtual ~Oracle();

  /// Stable identifier used in JSON schemas and CLI flags.
  virtual std::string name() const = 0;

  /// Scores \p Candidate against \p Golden for \p InterfaceName on
  /// \p Traits. Must be deterministic and safe to call concurrently.
  virtual OracleVerdict score(const FunctionAST &Candidate,
                              const FunctionAST &Golden,
                              const std::string &InterfaceName,
                              const TargetTraits &Traits) const = 0;

  /// Convenience pass@1 verdict.
  bool passes(const FunctionAST &Candidate, const FunctionAST &Golden,
              const std::string &InterfaceName,
              const TargetTraits &Traits) const {
    return score(Candidate, Golden, InterfaceName, Traits).full();
  }
};

/// The historical golden-text/interpreter oracle: behavioural equivalence
/// over the curated regression environments of eval/EvalSpecs.
class TextOracle final : public Oracle {
public:
  std::string name() const override { return "text"; }
  OracleVerdict score(const FunctionAST &Candidate, const FunctionAST &Golden,
                      const std::string &InterfaceName,
                      const TargetTraits &Traits) const override;
};

/// Differential robustness oracle: candidate and golden run side-by-side
/// over seeded randomized environments (a fixed case budget per interface),
/// and every failing case is classified as Div-Val / Div-Trap / Div-Eff.
class DifferentialOracle final : public Oracle {
public:
  struct Options {
    /// Base seed; the per-interface stream is fnv1a(interface) ^ Seed.
    uint64_t Seed = 0x5eedc0de;
    /// Randomized cases generated per interface (the fixed case budget).
    int CaseBudget = 24;
  };

  DifferentialOracle() = default;
  explicit DifferentialOracle(Options Opts) : Opts(Opts) {}

  std::string name() const override { return "differential"; }
  OracleVerdict score(const FunctionAST &Candidate, const FunctionAST &Golden,
                      const std::string &InterfaceName,
                      const TargetTraits &Traits) const override;

  /// The randomized environments the oracle runs for (interface, traits) —
  /// exposed so tests can assert the determinism contract directly.
  /// Exactly Options::CaseBudget environments, derived by perturbing the
  /// interface's regression environments: Int bindings redrawn from a
  /// boundary-heavy pool, Bool bindings re-flipped, Sym bindings redrawn
  /// from the interface's observed symbol domain (ordinal-bearing symbols
  /// from the full ordinal domain). Intrinsics and ordinals are preserved.
  std::vector<Environment> buildCases(const std::string &InterfaceName,
                                      const TargetTraits &Traits) const;

  const Options &options() const { return Opts; }

private:
  Options Opts;
};

/// Process-wide default instances (stateless, safe to share).
const TextOracle &textOracle();
const DifferentialOracle &differentialOracle();

/// Oracle selection as surfaced by `--oracle=text|differential|both` and
/// the serve "oracle" request parameter.
enum class OracleKind {
  Text,         ///< primary = text, no differential classification
  Differential, ///< primary = differential (classification from the same run)
  Both,         ///< primary = text, differential attached as classifier
};

/// Parses a user-facing oracle name; std::nullopt on anything unknown.
std::optional<OracleKind> parseOracleKind(const std::string &Name);
const char *oracleKindName(OracleKind Kind);

} // namespace eval
} // namespace vega

#endif // VEGA_EVAL_ORACLE_H
