//===- gumtree/Matcher.cpp - GumTree-style statement matching --------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "gumtree/Matcher.h"

#include "gumtree/LCS.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <unordered_set>

using namespace vega;

void TreeMapping::addPair(const Statement *A, const Statement *B) {
  assert(A && B && "null statements cannot be matched");
  assert(!hasSrc(A) && !hasDst(B) && "statement already matched");
  SrcToDst[A] = B;
  DstToSrc[B] = A;
}

const Statement *TreeMapping::getDst(const Statement *A) const {
  auto It = SrcToDst.find(A);
  return It == SrcToDst.end() ? nullptr : It->second;
}

const Statement *TreeMapping::getSrc(const Statement *B) const {
  auto It = DstToSrc.find(B);
  return It == DstToSrc.end() ? nullptr : It->second;
}

static uint64_t hashCombine(uint64_t Seed, uint64_t Value) {
  // 64-bit mix in the spirit of boost::hash_combine.
  return Seed ^ (Value + 0x9e3779b97f4a7c15ULL + (Seed << 12) + (Seed >> 4));
}

static uint64_t hashString(std::string_view Text) {
  uint64_t Hash = 1469598103934665603ULL; // FNV-1a
  for (char C : Text) {
    Hash ^= static_cast<unsigned char>(C);
    Hash *= 1099511628211ULL;
  }
  return Hash;
}

uint64_t vega::statementShapeHash(const Statement &Stmt) {
  uint64_t Hash = hashString(stmtKindName(Stmt.Kind));
  for (const Token &T : Stmt.Tokens)
    Hash = hashCombine(Hash, hashString(T.Text));
  return Hash;
}

uint64_t vega::statementSubtreeHash(const Statement &Stmt) {
  uint64_t Hash = statementShapeHash(Stmt);
  for (const auto &Child : Stmt.Children)
    Hash = hashCombine(Hash, statementSubtreeHash(*Child));
  return Hash;
}

double vega::statementSimilarity(const Statement &A, const Statement &B) {
  std::map<std::string, int> Counts;
  for (const Token &T : A.Tokens)
    ++Counts[T.Text];
  int Common = 0;
  for (const Token &T : B.Tokens) {
    auto It = Counts.find(T.Text);
    if (It != Counts.end() && It->second > 0) {
      --It->second;
      ++Common;
    }
  }
  size_t Total = A.Tokens.size() + B.Tokens.size();
  double Dice = Total == 0 ? 1.0 : 2.0 * Common / static_cast<double>(Total);
  if (A.Kind != B.Kind)
    Dice *= 0.5;
  return Dice;
}

namespace {

/// Flattened view of one function's statement tree with parent links and
/// subtree metadata.
struct TreeIndex {
  std::vector<const Statement *> PostOrder;
  std::unordered_map<const Statement *, const Statement *> Parent;
  std::unordered_map<const Statement *, int> Height;
  std::unordered_map<const Statement *, size_t> SubtreeSize;
  std::unordered_map<const Statement *, uint64_t> SubtreeHash;

  void build(const Statement *Stmt, const Statement *ParentStmt) {
    Parent[Stmt] = ParentStmt;
    int MaxChildHeight = -1;
    size_t Size = 1;
    for (const auto &Child : Stmt->Children) {
      build(Child.get(), Stmt);
      MaxChildHeight = std::max(MaxChildHeight, Height[Child.get()]);
      Size += SubtreeSize[Child.get()];
    }
    Height[Stmt] = MaxChildHeight + 1;
    SubtreeSize[Stmt] = Size;
    SubtreeHash[Stmt] = statementSubtreeHash(*Stmt);
    PostOrder.push_back(Stmt);
  }
};

/// The matcher state for one (A, B) function pair.
class Matcher {
public:
  Matcher(const FunctionAST &A, const FunctionAST &B,
          const MatchOptions &Options)
      : A(A), B(B), Options(Options) {
    // A virtual pass over both bodies; definitions are roots.
    for (const auto &Stmt : A.Body)
      IndexA.build(Stmt.get(), &A.Definition);
    for (const auto &Stmt : B.Body)
      IndexB.build(Stmt.get(), &B.Definition);
    IndexA.Parent[&A.Definition] = nullptr;
    IndexB.Parent[&B.Definition] = nullptr;
  }

  TreeMapping run() {
    matchTopDown();
    Mapping.addPair(&A.Definition, &B.Definition);
    recoverChildren(A.Body, B.Body);
    matchBottomUp();
    return std::move(Mapping);
  }

private:
  void matchSubtreesRecursively(const Statement *SA, const Statement *SB) {
    if (Mapping.hasSrc(SA) || Mapping.hasDst(SB))
      return;
    Mapping.addPair(SA, SB);
    assert(SA->Children.size() == SB->Children.size() &&
           "isomorphic subtrees must have equal arity");
    for (size_t I = 0; I < SA->Children.size(); ++I)
      matchSubtreesRecursively(SA->Children[I].get(), SB->Children[I].get());
  }

  /// Greedy top-down phase: equal subtree hashes of maximal height match.
  void matchTopDown() {
    std::unordered_map<uint64_t, std::vector<const Statement *>> ByHash;
    for (const Statement *SA : IndexA.PostOrder)
      ByHash[IndexA.SubtreeHash[SA]].push_back(SA);

    std::vector<const Statement *> BNodes = IndexB.PostOrder;
    std::stable_sort(BNodes.begin(), BNodes.end(),
                     [&](const Statement *X, const Statement *Y) {
                       return IndexB.Height[X] > IndexB.Height[Y];
                     });
    for (const Statement *SB : BNodes) {
      if (Mapping.hasDst(SB))
        continue;
      auto It = ByHash.find(IndexB.SubtreeHash[SB]);
      if (It == ByHash.end())
        continue;
      for (const Statement *SA : It->second) {
        if (Mapping.hasSrc(SA))
          continue;
        matchSubtreesRecursively(SA, SB);
        break;
      }
    }
  }

  /// LCS recovery over two sibling lists; recurses into new pairs.
  void recoverChildren(const std::vector<std::unique_ptr<Statement>> &KidsA,
                       const std::vector<std::unique_ptr<Statement>> &KidsB) {
    std::vector<const Statement *> UA, UB;
    for (const auto &Child : KidsA)
      if (!Mapping.hasSrc(Child.get()))
        UA.push_back(Child.get());
    for (const auto &Child : KidsB)
      if (!Mapping.hasDst(Child.get()))
        UB.push_back(Child.get());
    auto Pairs = longestCommonSubsequence(
        UA, UB, [&](const Statement *X, const Statement *Y) {
          return X->Kind == Y->Kind &&
                 statementSimilarity(*X, *Y) >= Options.MinLabelSimilarity;
        });
    for (auto [I, J] : Pairs) {
      Mapping.addPair(UA[I], UB[J]);
      recoverChildren(UA[I]->Children, UB[J]->Children);
    }
    // Recurse into pairs that were already matched top-down so their
    // children lists also get recovery (hash-equal subtrees are fully
    // matched already; this is a no-op for them).
    for (const auto &Child : KidsA)
      if (const Statement *Partner = Mapping.getDst(Child.get()))
        recoverChildren(Child->Children, Partner->Children);
  }

  /// Bottom-up container phase: an unmatched A container whose descendants
  /// map into a common unmatched B container matches it when the dice
  /// coefficient is high enough.
  void matchBottomUp() {
    for (const Statement *SA : IndexA.PostOrder) {
      if (Mapping.hasSrc(SA) || SA->Children.empty())
        continue;
      const Statement *Candidate = findContainerCandidate(SA);
      if (!Candidate)
        continue;
      if (diceCoefficient(SA, Candidate) < Options.MinDice)
        continue;
      Mapping.addPair(SA, Candidate);
      recoverChildren(SA->Children, Candidate->Children);
    }
  }

  const Statement *findContainerCandidate(const Statement *SA) {
    // Walk A-descendants; vote for the B-ancestors of their partners.
    std::map<const Statement *, unsigned> Votes;
    collectVotes(SA, SA, Votes);
    const Statement *Best = nullptr;
    unsigned BestVotes = 0;
    for (auto [SB, Count] : Votes) {
      if (SB->Kind != SA->Kind || Mapping.hasDst(SB))
        continue;
      if (Count > BestVotes) {
        Best = SB;
        BestVotes = Count;
      }
    }
    return Best;
  }

  void collectVotes(const Statement *Root, const Statement *Stmt,
                    std::map<const Statement *, unsigned> &Votes) {
    for (const auto &Child : Stmt->Children) {
      if (const Statement *Partner = Mapping.getDst(Child.get())) {
        for (const Statement *Anc = IndexB.Parent[Partner]; Anc;
             Anc = IndexB.Parent[Anc])
          ++Votes[Anc];
      }
      collectVotes(Root, Child.get(), Votes);
    }
  }

  double diceCoefficient(const Statement *SA, const Statement *SB) {
    unsigned MappedInto = 0;
    std::unordered_set<const Statement *> BDesc;
    collectDescendants(SB, BDesc);
    countMappedInto(SA, BDesc, MappedInto);
    size_t SizeA = IndexA.SubtreeSize[SA] - 1;
    size_t SizeB = IndexB.SubtreeSize[SB] - 1;
    if (SizeA + SizeB == 0)
      return 0.0;
    return 2.0 * MappedInto / static_cast<double>(SizeA + SizeB);
  }

  void collectDescendants(const Statement *Stmt,
                          std::unordered_set<const Statement *> &Out) {
    for (const auto &Child : Stmt->Children) {
      Out.insert(Child.get());
      collectDescendants(Child.get(), Out);
    }
  }

  void countMappedInto(const Statement *Stmt,
                       const std::unordered_set<const Statement *> &BDesc,
                       unsigned &Count) {
    for (const auto &Child : Stmt->Children) {
      const Statement *Partner = Mapping.getDst(Child.get());
      if (Partner && BDesc.count(Partner))
        ++Count;
      countMappedInto(Child.get(), BDesc, Count);
    }
  }

  const FunctionAST &A;
  const FunctionAST &B;
  MatchOptions Options;
  TreeIndex IndexA, IndexB;
  TreeMapping Mapping;
};

} // namespace

TreeMapping vega::matchFunctions(const FunctionAST &A, const FunctionAST &B,
                                 const MatchOptions &Options) {
  Matcher M(A, B, Options);
  return M.run();
}
