//===- model/Autograd.cpp - Tape-based reverse-mode autodiff ----------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "model/Autograd.h"

#include "support/RNG.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace vega;

TensorPtr vega::makeTensor(int Rows, int Cols, bool RequiresGrad) {
  return std::make_shared<Tensor>(Rows, Cols, RequiresGrad);
}

TensorPtr vega::makeParam(int Rows, int Cols, float Scale, uint64_t Seed) {
  TensorPtr T = makeTensor(Rows, Cols, /*RequiresGrad=*/true);
  RNG Rng(Seed);
  for (float &V : T->Data)
    V = static_cast<float>(Rng.nextDouble(-Scale, Scale));
  return T;
}

namespace {

TensorPtr makeResult(int Rows, int Cols,
                     std::initializer_list<TensorPtr> Parents) {
  bool NeedsGrad = false;
  for (const TensorPtr &P : Parents)
    if (P->RequiresGrad || P->Backward)
      NeedsGrad = true;
  TensorPtr Out = makeTensor(Rows, Cols, NeedsGrad);
  Out->ensureGrad();
  for (const TensorPtr &P : Parents) {
    P->ensureGrad();
    Out->Parents.push_back(P);
  }
  return Out;
}

} // namespace

TensorPtr vega::matmul(const TensorPtr &A, const TensorPtr &B) {
  assert(A->Cols == B->Rows && "matmul shape mismatch");
  TensorPtr Out = makeResult(A->Rows, B->Cols, {A, B});
  const int M = A->Rows, K = A->Cols, N = B->Cols;
  for (int I = 0; I < M; ++I) {
    for (int P = 0; P < K; ++P) {
      float AV = A->Data[static_cast<size_t>(I) * K + P];
      if (AV == 0.0f)
        continue;
      const float *BRow = &B->Data[static_cast<size_t>(P) * N];
      float *ORow = &Out->Data[static_cast<size_t>(I) * N];
      for (int J = 0; J < N; ++J)
        ORow[J] += AV * BRow[J];
    }
  }
  Tensor *AP = A.get(), *BP = B.get(), *OP = Out.get();
  Out->Backward = [AP, BP, OP, M, K, N] {
    // dA = dO · Bᵀ ; dB = Aᵀ · dO
    for (int I = 0; I < M; ++I) {
      const float *GRow = &OP->Grad[static_cast<size_t>(I) * N];
      for (int P = 0; P < K; ++P) {
        const float *BRow = &BP->Data[static_cast<size_t>(P) * N];
        float Acc = 0.0f;
        for (int J = 0; J < N; ++J)
          Acc += GRow[J] * BRow[J];
        AP->Grad[static_cast<size_t>(I) * K + P] += Acc;
      }
      for (int P = 0; P < K; ++P) {
        float AV = AP->Data[static_cast<size_t>(I) * K + P];
        if (AV == 0.0f)
          continue;
        float *BGRow = &BP->Grad[static_cast<size_t>(P) * N];
        for (int J = 0; J < N; ++J)
          BGRow[J] += AV * GRow[J];
      }
    }
  };
  return Out;
}

TensorPtr vega::matmulNT(const TensorPtr &A, const TensorPtr &B) {
  assert(A->Cols == B->Cols && "matmulNT shape mismatch");
  TensorPtr Out = makeResult(A->Rows, B->Rows, {A, B});
  const int M = A->Rows, K = A->Cols, N = B->Rows;
  for (int I = 0; I < M; ++I) {
    const float *ARow = &A->Data[static_cast<size_t>(I) * K];
    float *ORow = &Out->Data[static_cast<size_t>(I) * N];
    for (int J = 0; J < N; ++J) {
      const float *BRow = &B->Data[static_cast<size_t>(J) * K];
      float Acc = 0.0f;
      for (int P = 0; P < K; ++P)
        Acc += ARow[P] * BRow[P];
      ORow[J] = Acc;
    }
  }
  Tensor *AP = A.get(), *BP = B.get(), *OP = Out.get();
  Out->Backward = [AP, BP, OP, M, K, N] {
    // dA = dO · B ; dB = dOᵀ · A
    for (int I = 0; I < M; ++I) {
      const float *GRow = &OP->Grad[static_cast<size_t>(I) * N];
      float *AGRow = &AP->Grad[static_cast<size_t>(I) * K];
      const float *ARow = &AP->Data[static_cast<size_t>(I) * K];
      for (int J = 0; J < N; ++J) {
        float G = GRow[J];
        if (G == 0.0f)
          continue;
        const float *BRow = &BP->Data[static_cast<size_t>(J) * K];
        float *BGRow = &BP->Grad[static_cast<size_t>(J) * K];
        for (int P = 0; P < K; ++P) {
          AGRow[P] += G * BRow[P];
          BGRow[P] += G * ARow[P];
        }
      }
    }
  };
  return Out;
}

TensorPtr vega::add(const TensorPtr &A, const TensorPtr &B) {
  assert(A->Rows == B->Rows && A->Cols == B->Cols && "add shape mismatch");
  TensorPtr Out = makeResult(A->Rows, A->Cols, {A, B});
  for (size_t I = 0; I < Out->Data.size(); ++I)
    Out->Data[I] = A->Data[I] + B->Data[I];
  Tensor *AP = A.get(), *BP = B.get(), *OP = Out.get();
  Out->Backward = [AP, BP, OP] {
    for (size_t I = 0; I < OP->Grad.size(); ++I) {
      AP->Grad[I] += OP->Grad[I];
      BP->Grad[I] += OP->Grad[I];
    }
  };
  return Out;
}

TensorPtr vega::addRow(const TensorPtr &A, const TensorPtr &B) {
  assert(B->Rows == 1 && B->Cols == A->Cols && "addRow shape mismatch");
  TensorPtr Out = makeResult(A->Rows, A->Cols, {A, B});
  for (int I = 0; I < A->Rows; ++I)
    for (int J = 0; J < A->Cols; ++J)
      Out->at(I, J) = A->at(I, J) + B->Data[static_cast<size_t>(J)];
  Tensor *AP = A.get(), *BP = B.get(), *OP = Out.get();
  Out->Backward = [AP, BP, OP] {
    for (int I = 0; I < OP->Rows; ++I)
      for (int J = 0; J < OP->Cols; ++J) {
        float G = OP->gradAt(I, J);
        AP->gradAt(I, J) += G;
        BP->Grad[static_cast<size_t>(J)] += G;
      }
  };
  return Out;
}

TensorPtr vega::scale(const TensorPtr &A, float Factor) {
  TensorPtr Out = makeResult(A->Rows, A->Cols, {A});
  for (size_t I = 0; I < A->Data.size(); ++I)
    Out->Data[I] = A->Data[I] * Factor;
  Tensor *AP = A.get(), *OP = Out.get();
  Out->Backward = [AP, OP, Factor] {
    for (size_t I = 0; I < OP->Grad.size(); ++I)
      AP->Grad[I] += OP->Grad[I] * Factor;
  };
  return Out;
}

TensorPtr vega::scaleByScalar(const TensorPtr &A, const TensorPtr &S) {
  assert(S->Rows == 1 && S->Cols == 1 && "scalar expected");
  TensorPtr Out = makeResult(A->Rows, A->Cols, {A, S});
  float Factor = S->Data[0];
  for (size_t I = 0; I < A->Data.size(); ++I)
    Out->Data[I] = A->Data[I] * Factor;
  Tensor *AP = A.get(), *SP = S.get(), *OP = Out.get();
  Out->Backward = [AP, SP, OP, Factor] {
    float SGrad = 0.0f;
    for (size_t I = 0; I < OP->Grad.size(); ++I) {
      AP->Grad[I] += OP->Grad[I] * Factor;
      SGrad += OP->Grad[I] * AP->Data[I];
    }
    SP->Grad[0] += SGrad;
  };
  return Out;
}

TensorPtr vega::relu(const TensorPtr &A) {
  TensorPtr Out = makeResult(A->Rows, A->Cols, {A});
  for (size_t I = 0; I < A->Data.size(); ++I)
    Out->Data[I] = A->Data[I] > 0.0f ? A->Data[I] : 0.0f;
  Tensor *AP = A.get(), *OP = Out.get();
  Out->Backward = [AP, OP] {
    for (size_t I = 0; I < OP->Grad.size(); ++I)
      if (AP->Data[I] > 0.0f)
        AP->Grad[I] += OP->Grad[I];
  };
  return Out;
}

TensorPtr vega::softmaxRows(const TensorPtr &A, const Tensor *Mask) {
  TensorPtr Out = makeResult(A->Rows, A->Cols, {A});
  for (int I = 0; I < A->Rows; ++I) {
    float Max = -1e30f;
    for (int J = 0; J < A->Cols; ++J) {
      float V = A->at(I, J) + (Mask ? Mask->at(I, J) : 0.0f);
      Max = std::max(Max, V);
    }
    float Sum = 0.0f;
    for (int J = 0; J < A->Cols; ++J) {
      float V = A->at(I, J) + (Mask ? Mask->at(I, J) : 0.0f);
      float E = std::exp(V - Max);
      Out->at(I, J) = E;
      Sum += E;
    }
    for (int J = 0; J < A->Cols; ++J)
      Out->at(I, J) /= Sum;
  }
  Tensor *AP = A.get(), *OP = Out.get();
  Out->Backward = [AP, OP] {
    for (int I = 0; I < OP->Rows; ++I) {
      float Dot = 0.0f;
      for (int J = 0; J < OP->Cols; ++J)
        Dot += OP->gradAt(I, J) * OP->at(I, J);
      for (int J = 0; J < OP->Cols; ++J)
        AP->gradAt(I, J) += OP->at(I, J) * (OP->gradAt(I, J) - Dot);
    }
  };
  return Out;
}

TensorPtr vega::layerNorm(const TensorPtr &X, const TensorPtr &Gamma,
                          const TensorPtr &Beta) {
  assert(Gamma->Cols == X->Cols && Beta->Cols == X->Cols &&
         "layerNorm parameter shape mismatch");
  TensorPtr Out = makeResult(X->Rows, X->Cols, {X, Gamma, Beta});
  const int C = X->Cols;
  std::vector<float> Mean(X->Rows), InvStd(X->Rows);
  for (int I = 0; I < X->Rows; ++I) {
    float Mu = 0.0f;
    for (int J = 0; J < C; ++J)
      Mu += X->at(I, J);
    Mu /= C;
    float Var = 0.0f;
    for (int J = 0; J < C; ++J) {
      float D = X->at(I, J) - Mu;
      Var += D * D;
    }
    Var /= C;
    float Inv = 1.0f / std::sqrt(Var + 1e-5f);
    Mean[I] = Mu;
    InvStd[I] = Inv;
    for (int J = 0; J < C; ++J)
      Out->at(I, J) =
          (X->at(I, J) - Mu) * Inv * Gamma->Data[static_cast<size_t>(J)] +
          Beta->Data[static_cast<size_t>(J)];
  }
  Tensor *XP = X.get(), *GP = Gamma.get(), *BP = Beta.get(), *OP = Out.get();
  Out->Backward = [XP, GP, BP, OP, Mean, InvStd, C] {
    for (int I = 0; I < XP->Rows; ++I) {
      // xhat = (x - mu) * inv; dL/dxhat = dy * gamma.
      float SumDxhat = 0.0f, SumDxhatXhat = 0.0f;
      std::vector<float> Dxhat(static_cast<size_t>(C));
      for (int J = 0; J < C; ++J) {
        float Xhat = (XP->at(I, J) - Mean[I]) * InvStd[I];
        float Dy = OP->gradAt(I, J);
        GP->Grad[static_cast<size_t>(J)] += Dy * Xhat;
        BP->Grad[static_cast<size_t>(J)] += Dy;
        Dxhat[static_cast<size_t>(J)] = Dy * GP->Data[static_cast<size_t>(J)];
        SumDxhat += Dxhat[static_cast<size_t>(J)];
        SumDxhatXhat += Dxhat[static_cast<size_t>(J)] * Xhat;
      }
      for (int J = 0; J < C; ++J) {
        float Xhat = (XP->at(I, J) - Mean[I]) * InvStd[I];
        XP->gradAt(I, J) += InvStd[I] / C *
                            (C * Dxhat[static_cast<size_t>(J)] - SumDxhat -
                             Xhat * SumDxhatXhat);
      }
    }
  };
  return Out;
}

TensorPtr vega::gatherRows(const TensorPtr &E, const std::vector<int> &Ids) {
  TensorPtr Out = makeResult(static_cast<int>(Ids.size()), E->Cols, {E});
  for (size_t I = 0; I < Ids.size(); ++I) {
    assert(Ids[I] >= 0 && Ids[I] < E->Rows && "gather index out of range");
    for (int J = 0; J < E->Cols; ++J)
      Out->at(static_cast<int>(I), J) = E->at(Ids[I], J);
  }
  Tensor *EP = E.get(), *OP = Out.get();
  std::vector<int> IdsCopy = Ids;
  Out->Backward = [EP, OP, IdsCopy] {
    for (size_t I = 0; I < IdsCopy.size(); ++I)
      for (int J = 0; J < OP->Cols; ++J)
        EP->gradAt(IdsCopy[I], J) += OP->gradAt(static_cast<int>(I), J);
  };
  return Out;
}

TensorPtr vega::sliceCols(const TensorPtr &A, int Start, int Count) {
  assert(Start >= 0 && Start + Count <= A->Cols && "slice out of range");
  TensorPtr Out = makeResult(A->Rows, Count, {A});
  for (int I = 0; I < A->Rows; ++I)
    for (int J = 0; J < Count; ++J)
      Out->at(I, J) = A->at(I, Start + J);
  Tensor *AP = A.get(), *OP = Out.get();
  Out->Backward = [AP, OP, Start, Count] {
    for (int I = 0; I < OP->Rows; ++I)
      for (int J = 0; J < Count; ++J)
        AP->gradAt(I, Start + J) += OP->gradAt(I, J);
  };
  return Out;
}

TensorPtr vega::concatCols(const std::vector<TensorPtr> &Parts) {
  assert(!Parts.empty() && "concat of nothing");
  int Rows = Parts.front()->Rows, Cols = 0;
  for (const TensorPtr &P : Parts) {
    assert(P->Rows == Rows && "concat row mismatch");
    Cols += P->Cols;
  }
  TensorPtr Out = makeTensor(Rows, Cols, true);
  Out->ensureGrad();
  for (const TensorPtr &P : Parts) {
    P->ensureGrad();
    Out->Parents.push_back(P);
  }
  int Offset = 0;
  for (const TensorPtr &P : Parts) {
    for (int I = 0; I < Rows; ++I)
      for (int J = 0; J < P->Cols; ++J)
        Out->at(I, Offset + J) = P->at(I, J);
    Offset += P->Cols;
  }
  Tensor *OP = Out.get();
  std::vector<Tensor *> Raw;
  for (const TensorPtr &P : Parts)
    Raw.push_back(P.get());
  Out->Backward = [OP, Raw] {
    int Offset = 0;
    for (Tensor *P : Raw) {
      for (int I = 0; I < OP->Rows; ++I)
        for (int J = 0; J < P->Cols; ++J)
          P->gradAt(I, J) += OP->gradAt(I, Offset + J);
      Offset += P->Cols;
    }
  };
  return Out;
}

TensorPtr vega::copyScatter(const TensorPtr &A, const std::vector<int> &SrcIds,
                            int VocabSize) {
  assert(A->Cols == static_cast<int>(SrcIds.size()) &&
         "copyScatter width must match source length");
  TensorPtr Out = makeResult(A->Rows, VocabSize, {A});
  for (int T = 0; T < A->Rows; ++T)
    for (size_t J = 0; J < SrcIds.size(); ++J)
      Out->at(T, SrcIds[J]) += A->at(T, static_cast<int>(J));
  Tensor *AP = A.get(), *OP = Out.get();
  std::vector<int> Ids = SrcIds;
  Out->Backward = [AP, OP, Ids] {
    for (int T = 0; T < AP->Rows; ++T)
      for (size_t J = 0; J < Ids.size(); ++J)
        AP->gradAt(T, static_cast<int>(J)) += OP->gradAt(T, Ids[J]);
  };
  return Out;
}

TensorPtr vega::sparseMix(const TensorPtr &E,
                          const std::vector<std::vector<int>> &Lists) {
  TensorPtr Out = makeResult(static_cast<int>(Lists.size()), E->Cols, {E});
  for (size_t I = 0; I < Lists.size(); ++I) {
    if (Lists[I].empty())
      continue;
    float Inv = 1.0f / static_cast<float>(Lists[I].size());
    for (int P : Lists[I])
      for (int J = 0; J < E->Cols; ++J)
        Out->at(static_cast<int>(I), J) += E->at(P, J) * Inv;
  }
  Tensor *EP = E.get(), *OP = Out.get();
  const std::vector<std::vector<int>> *ListsPtr = &Lists;
  // Lists outlive the tape in our usage (owned by the Vocab); copy anyway
  // for safety in tests.
  std::vector<std::vector<int>> ListsCopy = *ListsPtr;
  Out->Backward = [EP, OP, ListsCopy] {
    for (size_t I = 0; I < ListsCopy.size(); ++I) {
      if (ListsCopy[I].empty())
        continue;
      float Inv = 1.0f / static_cast<float>(ListsCopy[I].size());
      for (int P : ListsCopy[I])
        for (int J = 0; J < OP->Cols; ++J)
          EP->gradAt(P, J) += OP->gradAt(static_cast<int>(I), J) * Inv;
    }
  };
  return Out;
}

TensorPtr vega::crossEntropy(const TensorPtr &Logits,
                             const std::vector<int> &Targets) {
  assert(Logits->Rows == static_cast<int>(Targets.size()) &&
         "one target per logit row");
  TensorPtr Out = makeResult(1, 1, {Logits});
  const int V = Logits->Cols;
  std::vector<float> Probs(Logits->Data.size());
  float Loss = 0.0f;
  for (int I = 0; I < Logits->Rows; ++I) {
    float Max = -1e30f;
    for (int J = 0; J < V; ++J)
      Max = std::max(Max, Logits->at(I, J));
    float Sum = 0.0f;
    for (int J = 0; J < V; ++J) {
      float E = std::exp(Logits->at(I, J) - Max);
      Probs[static_cast<size_t>(I) * V + J] = E;
      Sum += E;
    }
    for (int J = 0; J < V; ++J)
      Probs[static_cast<size_t>(I) * V + J] /= Sum;
    Loss -= std::log(Probs[static_cast<size_t>(I) * V + Targets[I]] + 1e-12f);
  }
  Out->Data[0] = Loss / static_cast<float>(Logits->Rows);
  Tensor *LP = Logits.get(), *OP = Out.get();
  std::vector<int> T = Targets;
  Out->Backward = [LP, OP, Probs, T, V] {
    float Scale = OP->Grad[0] / static_cast<float>(LP->Rows);
    for (int I = 0; I < LP->Rows; ++I)
      for (int J = 0; J < V; ++J) {
        float P = Probs[static_cast<size_t>(I) * V + J];
        LP->gradAt(I, J) += Scale * (P - (J == T[I] ? 1.0f : 0.0f));
      }
  };
  return Out;
}

static void topoSort(Tensor *Node, std::vector<Tensor *> &Order) {
  if (Node->Visited)
    return;
  Node->Visited = true;
  for (const TensorPtr &P : Node->Parents)
    topoSort(P.get(), Order);
  Order.push_back(Node);
}

void vega::backward(const TensorPtr &Root) {
  std::vector<Tensor *> Order;
  topoSort(Root.get(), Order);
  Root->ensureGrad();
  std::fill(Root->Grad.begin(), Root->Grad.end(), 0.0f);
  Root->Grad[0] = 1.0f;
  for (auto It = Order.rbegin(); It != Order.rend(); ++It) {
    if ((*It)->Backward)
      (*It)->Backward();
    (*It)->Visited = false; // reset for the next tape
  }
}

AdamOptimizer::AdamOptimizer(std::vector<TensorPtr> Params,
                             float LearningRate)
    : Params(std::move(Params)), LearningRate(LearningRate) {
  for (const TensorPtr &P : this->Params) {
    P->ensureGrad();
    M.emplace_back(P->Data.size(), 0.0f);
    V.emplace_back(P->Data.size(), 0.0f);
  }
}

void AdamOptimizer::step() {
  ++StepCount;
  float Bias1 = 1.0f - std::pow(Beta1, static_cast<float>(StepCount));
  float Bias2 = 1.0f - std::pow(Beta2, static_cast<float>(StepCount));
  for (size_t P = 0; P < Params.size(); ++P) {
    Tensor &T = *Params[P];
    for (size_t I = 0; I < T.Data.size(); ++I) {
      float G = T.Grad[I];
      M[P][I] = Beta1 * M[P][I] + (1.0f - Beta1) * G;
      V[P][I] = Beta2 * V[P][I] + (1.0f - Beta2) * G * G;
      float MHat = M[P][I] / Bias1;
      float VHat = V[P][I] / Bias2;
      T.Data[I] -= LearningRate * MHat / (std::sqrt(VHat) + Eps);
    }
    T.zeroGrad();
  }
}

void AdamOptimizer::zeroGrad() {
  for (const TensorPtr &P : Params)
    P->zeroGrad();
}
