# Empty dependencies file for confidence_review.
# This may be replaced when dependencies are built.
