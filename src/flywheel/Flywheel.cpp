//===- flywheel/Flywheel.cpp - Self-training repair flywheel ----------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "flywheel/Flywheel.h"

#include "ast/Statement.h"
#include "core/Checkpoint.h"
#include "lexer/Lexer.h"
#include "model/Vocab.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "repair/RepairEngine.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <sys/stat.h>

namespace vega {
namespace flywheel {

namespace {

constexpr const char *ReportSchema = "vega-flywheel-1";
constexpr const char *GenSchema = "vega-flywheel-gen-1";
constexpr const char *HarvestSchema = "vega-flywheel-harvest-1";

uint64_t fnv1a(uint64_t H, const void *Data, size_t Len) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  for (size_t I = 0; I < Len; ++I) {
    H ^= P[I];
    H *= 1099511628211ULL;
  }
  return H;
}

uint64_t fnv1a(uint64_t H, const std::string &S) {
  H = fnv1a(H, S.data(), S.size());
  unsigned char Term = 0x1f;
  return fnv1a(H, &Term, 1);
}

/// Hash of every option that shapes the persisted artifacts. Generations is
/// deliberately excluded (a finished run may be extended in place), as are
/// the runtime knobs Jobs / OutDir / Verbose.
uint64_t optionsKey(const FlywheelOptions &O) {
  uint64_t H = 1469598103934665603ULL;
  for (const std::string &T : O.Targets)
    H = fnv1a(H, T);
  int64_t Ints[] = {O.FineTuneEpochs, O.BeamWidth, O.MaxRounds,
                    O.HarvestNegatives ? 1 : 0,
                    static_cast<int64_t>(O.Seed)};
  H = fnv1a(H, Ints, sizeof(Ints));
  double Doubles[] = {static_cast<double>(O.PositiveWeight),
                      static_cast<double>(O.NegativeWeight),
                      O.NegativeConfidenceFloor};
  H = fnv1a(H, Doubles, sizeof(Doubles));
  H = fnv1a(H, std::string(eval::oracleKindName(O.Oracle)));
  return H;
}

std::string hex64(uint64_t V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

StatusOr<std::string> readFile(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return Status::notFound("cannot open '" + Path +
                            "': " + std::strerror(errno));
  std::string Out;
  char Buf[65536];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  bool Bad = std::ferror(F);
  std::fclose(F);
  if (Bad)
    return Status::unavailable("error reading '" + Path + "'");
  return Out;
}

Status writeFile(const std::string &Path, const std::string &Data) {
  std::string Tmp = Path + ".tmp";
  std::FILE *F = std::fopen(Tmp.c_str(), "wb");
  if (!F)
    return Status::unavailable("cannot write '" + Tmp +
                               "': " + std::strerror(errno));
  bool Ok = std::fwrite(Data.data(), 1, Data.size(), F) == Data.size();
  Ok = (std::fclose(F) == 0) && Ok;
  if (!Ok || std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    return Status::unavailable("cannot write '" + Path + "'");
  }
  return Status::ok();
}

std::string genPath(const std::string &Dir, int Gen, const char *Suffix) {
  return Dir + "/gen-" + std::to_string(Gen) + Suffix;
}

size_t asCount(const Json &Doc, const char *Key) {
  return static_cast<size_t>(Doc.getNumber(Key, 0.0));
}

/// One harvested pair plus which target it came from, pre-dedup. The
/// harvest artifact persists exactly this list, so replaying it through
/// augmentTrainingPairs reconstructs the corpus and fingerprint state of
/// the original run.
struct Harvest {
  std::vector<AugmentedPair> Pairs;
  /// target → (positives, negatives), in Options.Targets order.
  std::map<std::string, std::pair<size_t, size_t>> PerTarget;
  size_t Positives = 0, Negatives = 0;
};

Json harvestToJson(const Harvest &H, uint64_t Key, int Gen) {
  Json Doc = Json::object();
  Doc.set("schema", HarvestSchema);
  Doc.set("optionsKey", hex64(Key));
  Doc.set("generation", Gen);
  Json Pairs = Json::array();
  for (const AugmentedPair &P : H.Pairs) {
    Json E = Json::object();
    Json Src = Json::array(), Dst = Json::array();
    for (const std::string &T : P.Src)
      Src.push(T);
    for (const std::string &T : P.Dst)
      Dst.push(T);
    E.set("src", std::move(Src));
    E.set("dst", std::move(Dst));
    E.set("target", P.Target);
    E.set("weight", static_cast<double>(P.Weight));
    Pairs.push(std::move(E));
  }
  Doc.set("pairs", std::move(Pairs));
  return Doc;
}

StatusOr<std::vector<AugmentedPair>> harvestFromJson(const Json &Doc) {
  const Json *Pairs = Doc.get("pairs");
  if (Doc.getString("schema") != HarvestSchema || !Pairs || !Pairs->isArray())
    return Status::invalidArgument("not a " + std::string(HarvestSchema) +
                                   " document");
  std::vector<AugmentedPair> Out;
  for (const Json &E : Pairs->items()) {
    AugmentedPair P;
    const Json *Src = E.get("src"), *Dst = E.get("dst");
    if (!Src || !Dst || !Src->isArray() || !Dst->isArray())
      return Status::invalidArgument("malformed harvest pair");
    for (const Json &T : Src->items())
      P.Src.push_back(T.asString());
    for (const Json &T : Dst->items())
      P.Dst.push_back(T.asString());
    P.Target = E.getString("target");
    P.Weight = static_cast<float>(E.getNumber("weight", 1.0));
    Out.push_back(std::move(P));
  }
  return Out;
}

} // namespace

Status FlywheelOptions::validate() const {
  if (Targets.empty())
    return Status::invalidArgument("flywheel needs at least one target");
  if (Generations < 1)
    return Status::invalidArgument("Generations must be >= 1");
  if (FineTuneEpochs < 1)
    return Status::invalidArgument("FineTuneEpochs must be >= 1");
  if (BeamWidth < 1)
    return Status::invalidArgument("BeamWidth must be >= 1");
  if (MaxRounds < 1)
    return Status::invalidArgument("MaxRounds must be >= 1");
  if (!(PositiveWeight > 0.0f) || !std::isfinite(PositiveWeight))
    return Status::invalidArgument("PositiveWeight must be finite and > 0");
  if (!(NegativeWeight >= 0.0f) || !std::isfinite(NegativeWeight))
    return Status::invalidArgument("NegativeWeight must be finite and >= 0");
  if (!(NegativeConfidenceFloor >= 0.0) || !(NegativeConfidenceFloor <= 1.0))
    return Status::invalidArgument(
        "NegativeConfidenceFloor must be in [0, 1]");
  return Status::ok();
}

Json generationToJson(const GenerationStats &Gen) {
  Json Doc = Json::object();
  Doc.set("generation", Gen.Generation);
  Doc.set("pass1", Gen.Pass1);
  Doc.set("greedyPass1", Gen.GreedyPass1);
  Doc.set("repairReliance", Gen.RepairReliance);
  Doc.set("accepted", Gen.Accepted);
  Doc.set("harvestedPositives", static_cast<uint64_t>(Gen.HarvestedPositives));
  Doc.set("harvestedNegatives", static_cast<uint64_t>(Gen.HarvestedNegatives));
  Doc.set("pairsAdded", static_cast<uint64_t>(Gen.PairsAdded));
  Doc.set("pairsDeduped", static_cast<uint64_t>(Gen.PairsDeduped));
  Doc.set("pairsSkippedOov", static_cast<uint64_t>(Gen.PairsSkippedOov));
  Doc.set("trainMeanLoss", Gen.TrainMeanLoss);
  Json Targets = Json::array();
  for (const TargetGenStats &T : Gen.Targets) {
    Json E = Json::object();
    E.set("target", T.Target);
    E.set("functions", static_cast<uint64_t>(T.Functions));
    E.set("greedyAccurate", static_cast<uint64_t>(T.GreedyAccurate));
    E.set("accurate", static_cast<uint64_t>(T.Accurate));
    E.set("functionsFlagged", static_cast<uint64_t>(T.FunctionsFlagged));
    E.set("functionsRepaired", static_cast<uint64_t>(T.FunctionsRepaired));
    E.set("statementsAutoRepaired",
          static_cast<uint64_t>(T.StatementsAutoRepaired));
    E.set("greedyPass1", T.GreedyPass1);
    E.set("pass1", T.Pass1);
    E.set("statementAccuracy", T.StatementAccuracy);
    E.set("errV", T.ErrVRate);
    E.set("errCS", T.ErrCSRate);
    E.set("errDef", T.ErrDefRate);
    E.set("divVal", T.DivValRate);
    E.set("divTrap", T.DivTrapRate);
    E.set("divEff", T.DivEffRate);
    E.set("harvestedPositives", static_cast<uint64_t>(T.HarvestedPositives));
    E.set("harvestedNegatives", static_cast<uint64_t>(T.HarvestedNegatives));
    Targets.push(std::move(E));
  }
  Doc.set("targets", std::move(Targets));
  return Doc;
}

StatusOr<GenerationStats> generationFromJson(const Json &Doc) {
  if (!Doc.isObject() || !Doc.get("generation"))
    return Status::invalidArgument("not a flywheel generation document");
  GenerationStats Gen;
  Gen.Generation = static_cast<int>(Doc.getNumber("generation", 0.0));
  Gen.Pass1 = Doc.getNumber("pass1");
  Gen.GreedyPass1 = Doc.getNumber("greedyPass1");
  Gen.RepairReliance = Doc.getNumber("repairReliance");
  const Json *Accepted = Doc.get("accepted");
  Gen.Accepted = Accepted && Accepted->isBool() ? Accepted->asBool() : true;
  Gen.HarvestedPositives = asCount(Doc, "harvestedPositives");
  Gen.HarvestedNegatives = asCount(Doc, "harvestedNegatives");
  Gen.PairsAdded = asCount(Doc, "pairsAdded");
  Gen.PairsDeduped = asCount(Doc, "pairsDeduped");
  Gen.PairsSkippedOov = asCount(Doc, "pairsSkippedOov");
  Gen.TrainMeanLoss = Doc.getNumber("trainMeanLoss");
  const Json *Targets = Doc.get("targets");
  if (!Targets || !Targets->isArray())
    return Status::invalidArgument("flywheel generation lacks targets");
  for (const Json &E : Targets->items()) {
    TargetGenStats T;
    T.Target = E.getString("target");
    T.Functions = asCount(E, "functions");
    T.GreedyAccurate = asCount(E, "greedyAccurate");
    T.Accurate = asCount(E, "accurate");
    T.FunctionsFlagged = asCount(E, "functionsFlagged");
    T.FunctionsRepaired = asCount(E, "functionsRepaired");
    T.StatementsAutoRepaired = asCount(E, "statementsAutoRepaired");
    T.GreedyPass1 = E.getNumber("greedyPass1");
    T.Pass1 = E.getNumber("pass1");
    T.StatementAccuracy = E.getNumber("statementAccuracy");
    T.ErrVRate = E.getNumber("errV");
    T.ErrCSRate = E.getNumber("errCS");
    T.ErrDefRate = E.getNumber("errDef");
    T.DivValRate = E.getNumber("divVal");
    T.DivTrapRate = E.getNumber("divTrap");
    T.DivEffRate = E.getNumber("divEff");
    T.HarvestedPositives = asCount(E, "harvestedPositives");
    T.HarvestedNegatives = asCount(E, "harvestedNegatives");
    Gen.Targets.push_back(std::move(T));
  }
  return Gen;
}

Json reportToJson(const FlywheelReport &Report) {
  const FlywheelOptions &O = Report.Options;
  Json Doc = Json::object();
  Doc.set("schema", ReportSchema);
  Json Opts = Json::object();
  Json Targets = Json::array();
  for (const std::string &T : O.Targets)
    Targets.push(T);
  Opts.set("targets", std::move(Targets));
  Opts.set("generations", O.Generations);
  Opts.set("ftEpochs", O.FineTuneEpochs);
  Opts.set("beamWidth", O.BeamWidth);
  Opts.set("maxRounds", O.MaxRounds);
  Opts.set("oracle", eval::oracleKindName(O.Oracle));
  Opts.set("harvestNegatives", O.HarvestNegatives);
  Opts.set("positiveWeight", static_cast<double>(O.PositiveWeight));
  Opts.set("negativeWeight", static_cast<double>(O.NegativeWeight));
  Opts.set("negativeConfidenceFloor", O.NegativeConfidenceFloor);
  Opts.set("seed", static_cast<uint64_t>(O.Seed));
  Doc.set("options", std::move(Opts));
  Json Gens = Json::array();
  for (const GenerationStats &G : Report.Generations)
    Gens.push(generationToJson(G));
  Doc.set("generations", std::move(Gens));
  Doc.set("generationsRun", Report.GenerationsRun);
  Doc.set("generationsResumed", Report.GenerationsResumed);
  Doc.set("totalPairsAdded", static_cast<uint64_t>(Report.TotalPairsAdded));
  return Doc;
}

StatusOr<FlywheelReport> reportFromJson(const Json &Doc) {
  if (Doc.getString("schema") != ReportSchema)
    return Status::invalidArgument("not a " + std::string(ReportSchema) +
                                   " document");
  FlywheelReport Report;
  const Json *Opts = Doc.get("options");
  if (!Opts || !Opts->isObject())
    return Status::invalidArgument("flywheel report lacks options");
  FlywheelOptions &O = Report.Options;
  if (const Json *Targets = Opts->get("targets"))
    for (const Json &T : Targets->items())
      O.Targets.push_back(T.asString());
  O.Generations = static_cast<int>(Opts->getNumber("generations", 3));
  O.FineTuneEpochs = static_cast<int>(Opts->getNumber("ftEpochs", 2));
  O.BeamWidth = static_cast<int>(Opts->getNumber("beamWidth", 4));
  O.MaxRounds = static_cast<int>(Opts->getNumber("maxRounds", 2));
  if (std::optional<eval::OracleKind> K =
          eval::parseOracleKind(Opts->getString("oracle", "text")))
    O.Oracle = *K;
  const Json *HN = Opts->get("harvestNegatives");
  O.HarvestNegatives = HN && HN->isBool() ? HN->asBool() : true;
  O.PositiveWeight =
      static_cast<float>(Opts->getNumber("positiveWeight", 1.0));
  O.NegativeWeight =
      static_cast<float>(Opts->getNumber("negativeWeight", 0.25));
  O.NegativeConfidenceFloor = Opts->getNumber("negativeConfidenceFloor", 0.5);
  O.Seed = static_cast<uint64_t>(Opts->getNumber("seed", 42));
  const Json *Gens = Doc.get("generations");
  if (!Gens || !Gens->isArray())
    return Status::invalidArgument("flywheel report lacks generations");
  for (const Json &G : Gens->items()) {
    StatusOr<GenerationStats> Gen = generationFromJson(G);
    if (!Gen.isOk())
      return Gen.status();
    Report.Generations.push_back(std::move(*Gen));
  }
  Report.GenerationsRun = static_cast<int>(Doc.getNumber("generationsRun"));
  Report.GenerationsResumed =
      static_cast<int>(Doc.getNumber("generationsResumed"));
  Report.TotalPairsAdded = asCount(Doc, "totalPairsAdded");
  return Report;
}

FlywheelEngine::FlywheelEngine(VegaSystem &System, FlywheelOptions Options)
    : System(System), Options(std::move(Options)) {}

namespace {

/// Counts the evaluated population (golden exists or VEGA emitted) and how
/// many of it pass.
void countEval(const BackendEval &Eval, size_t &Population, size_t &Passing) {
  Population = Passing = 0;
  for (const FunctionEval &F : Eval.Functions) {
    if (!F.GoldenExists && !F.Generated)
      continue;
    ++Population;
    if (F.Accurate)
      ++Passing;
  }
}

TargetGenStats statsOf(const repair::RepairReport &Report) {
  TargetGenStats T;
  T.Target = Report.TargetName;
  size_t Pop = 0, Pass = 0;
  countEval(Report.BaselineEval, Pop, Pass);
  T.GreedyAccurate = Pass;
  countEval(Report.RepairedEval, Pop, Pass);
  T.Functions = Pop;
  T.Accurate = Pass;
  T.FunctionsFlagged = Report.FunctionsFlagged;
  T.FunctionsRepaired = Report.FunctionsRepaired;
  T.StatementsAutoRepaired = Report.StatementsAutoRepaired;
  T.GreedyPass1 =
      Pop == 0 ? 0.0
               : static_cast<double>(T.GreedyAccurate) /
                     static_cast<double>(Pop);
  T.Pass1 = Pop == 0 ? 0.0
                     : static_cast<double>(T.Accurate) /
                           static_cast<double>(Pop);
  T.StatementAccuracy = Report.RepairedEval.statementAccuracy();
  T.ErrVRate = Report.RepairedEval.errVRate();
  T.ErrCSRate = Report.RepairedEval.errCSRate();
  T.ErrDefRate = Report.RepairedEval.errDefRate();
  T.DivValRate = Report.RepairedEval.divValRate();
  T.DivTrapRate = Report.RepairedEval.divTrapRate();
  T.DivEffRate = Report.RepairedEval.divEffRate();
  return T;
}

/// Folds per-target stats into the generation aggregate (Pass1 and the
/// repair-reliance ratio over the union population).
void aggregate(GenerationStats &Gen) {
  size_t Pop = 0, Pass = 0, Greedy = 0, Repaired = 0;
  for (const TargetGenStats &T : Gen.Targets) {
    Pop += T.Functions;
    Pass += T.Accurate;
    Greedy += T.GreedyAccurate;
    Repaired += T.FunctionsRepaired;
  }
  Gen.Pass1 =
      Pop == 0 ? 0.0 : static_cast<double>(Pass) / static_cast<double>(Pop);
  Gen.GreedyPass1 =
      Pop == 0 ? 0.0 : static_cast<double>(Greedy) / static_cast<double>(Pop);
  Gen.RepairReliance =
      Pass == 0 ? 0.0
                : static_cast<double>(Repaired) / static_cast<double>(Pass);
}

} // namespace

StatusOr<FlywheelReport> FlywheelEngine::run() {
  if (Status S = Options.validate(); !S.isOk())
    return S;
  for (const std::string &T : Options.Targets)
    if (!System.corpus().targets().find(T))
      return Status::invalidArgument("unknown flywheel target '" + T + "'");

  obs::Span RunSpan("flywheel.run", "flywheel");
  RunSpan.arg("targets", std::to_string(Options.Targets.size()));
  RunSpan.arg("generations", std::to_string(Options.Generations));
  RunSpan.arg("oracle", eval::oracleKindName(Options.Oracle));

  const uint64_t Key = optionsKey(Options);
  const bool Persist = !Options.OutDir.empty();
  if (Persist && ::mkdir(Options.OutDir.c_str(), 0755) != 0 &&
      errno != EEXIST)
    return Status::unavailable("cannot create '" + Options.OutDir +
                               "': " + std::strerror(errno));

  repair::RepairOptions ROpts;
  ROpts.BeamWidth = Options.BeamWidth;
  ROpts.MaxRounds = Options.MaxRounds;
  ROpts.Jobs = Options.Jobs;
  ROpts.CollectRejected = Options.HarvestNegatives;
  ROpts.RejectedConfidenceFloor = Options.NegativeConfidenceFloor;
  switch (Options.Oracle) {
  case eval::OracleKind::Text:
    break; // defaults: text gate, no classifier
  case eval::OracleKind::Differential:
    ROpts.OracleImpl = &eval::differentialOracle();
    ROpts.Classifier = &eval::differentialOracle();
    break;
  case eval::OracleKind::Both:
    ROpts.Classifier = &eval::differentialOracle();
    break;
  }
  repair::RepairEngine Engine(System, ROpts);

  // One generate + repair pass over every target — the evaluation unit the
  // whole loop is built from. Deterministic given the current weights.
  auto evalAll = [&](int Gen) -> StatusOr<std::vector<repair::RepairReport>> {
    std::vector<repair::RepairReport> Reports;
    for (const std::string &Target : Options.Targets) {
      obs::Span EvalSpan("flywheel.evaluate", "flywheel");
      EvalSpan.arg("target", Target);
      EvalSpan.arg("generation", std::to_string(Gen));
      GeneratedBackend GB = System.generateBackend(Target);
      StatusOr<repair::RepairReport> R = Engine.repairBackend(GB);
      if (!R.isOk())
        return R.status();
      Reports.push_back(std::move(*R));
    }
    return Reports;
  };

  // Harvest the previous generation's oracle-validated repairs (and,
  // optionally, its refuted high-confidence candidates) as training pairs
  // in the exact Stage-1 function-group representation.
  auto harvestReports =
      [&](const std::vector<repair::RepairReport> &Reports) -> Harvest {
    Harvest H;
    for (const repair::RepairReport &Report : Reports) {
      size_t Pos = 0, Neg = 0;
      // Accepted (site, text) pairs — a candidate refuted in one round but
      // accepted in a later one must not also become a negative.
      std::set<std::string> AcceptedAt;
      auto siteKey = [](const std::string &Iface, int Row,
                        const std::string &Cand, const std::string &Ctx,
                        const std::string &Text) {
        return Iface + '\x1f' + std::to_string(Row) + '\x1f' + Cand + '\x1f' +
               Ctx + '\x1f' + Text;
      };
      auto srcFor = [&](const std::string &Iface, int RowIndex,
                        const std::string &Cand,
                        const std::string &Ctx) -> std::vector<std::string> {
        const TemplateInfo *TI = System.findTemplate(Iface);
        if (!TI)
          return {};
        for (const TemplateRow *Row : TI->FT.rows())
          if (Row->Index == RowIndex)
            return System.buildInputTokens(
                *TI, *Row, Report.TargetName,
                Cand.empty() ? std::nullopt
                             : std::optional<std::string>(Cand),
                Ctx);
        return {};
      };
      auto dstFor = [](double Confidence, const std::vector<Token> &Tokens) {
        std::vector<std::string> Dst;
        Dst.push_back(Vocab::csToken(Vocab::csBucket(Confidence)));
        for (const Token &T : Tokens)
          Dst.push_back(T.Text);
        Dst.push_back(Vocab::Eos);
        return Dst;
      };
      for (const repair::StatementRepair &Rep : Report.Repairs) {
        AcceptedAt.insert(siteKey(Rep.InterfaceName, Rep.RowIndex,
                                  Rep.CandidateValue, Rep.CtxValue,
                                  Rep.NewText));
        AugmentedPair P;
        P.Src = srcFor(Rep.InterfaceName, Rep.RowIndex, Rep.CandidateValue,
                       Rep.CtxValue);
        if (P.Src.empty())
          continue;
        if (Rep.NewEmitted) {
          P.Dst = dstFor(1.0, Lexer::tokenize(Rep.NewText));
        } else {
          // The oracle accepted *suppressing* this site: teach the model
          // the template row does not apply, exactly like a Stage-1
          // negative pair.
          const TemplateInfo *TI = System.findTemplate(Rep.InterfaceName);
          const TemplateRow *Row = nullptr;
          if (TI)
            for (const TemplateRow *R : TI->FT.rows())
              if (R->Index == Rep.RowIndex)
                Row = R;
          if (!Row)
            continue;
          P.Dst = dstFor(0.0, Row->Tokens);
        }
        P.Target = Report.TargetName;
        P.Weight = Options.PositiveWeight;
        H.Pairs.push_back(std::move(P));
        ++Pos;
      }
      if (Options.HarvestNegatives) {
        for (const repair::RejectedCandidate &RC : Report.Rejected) {
          if (AcceptedAt.count(siteKey(RC.InterfaceName, RC.RowIndex,
                                       RC.CandidateValue, RC.CtxValue,
                                       RC.Text)))
            continue;
          AugmentedPair P;
          P.Src = srcFor(RC.InterfaceName, RC.RowIndex, RC.CandidateValue,
                         RC.CtxValue);
          if (P.Src.empty())
            continue;
          P.Dst = dstFor(0.0, Lexer::tokenize(RC.Text));
          P.Target = Report.TargetName;
          P.Weight = Options.NegativeWeight;
          H.Pairs.push_back(std::move(P));
          ++Neg;
        }
      }
      H.PerTarget[Report.TargetName] = {Pos, Neg};
      H.Positives += Pos;
      H.Negatives += Neg;
    }
    return H;
  };

  FlywheelReport Report;
  Report.Options = Options;

  // ---- Resume: count the complete-generation prefix in OutDir. ----------
  int Resumed = 0;
  if (Persist) {
    for (int K = 0; K <= Options.Generations; ++K) {
      StatusOr<std::string> Text = readFile(genPath(Options.OutDir, K,
                                                    ".report.json"));
      if (!Text.isOk())
        break;
      StatusOr<Json> Doc = Json::parse(*Text);
      if (!Doc.isOk())
        return Status::failedPrecondition(
            "corrupt flywheel artifact gen-" + std::to_string(K) +
            ".report.json: " + Doc.status().message());
      if (Doc->getString("schema") != GenSchema ||
          Doc->getString("optionsKey") != hex64(Key))
        return Status::failedPrecondition(
            "'" + Options.OutDir +
            "' holds flywheel artifacts from different options; use a fresh "
            "--out-dir");
      const Json *Gen = Doc->get("generation");
      if (!Gen)
        return Status::failedPrecondition("malformed gen-" +
                                          std::to_string(K) + ".report.json");
      StatusOr<GenerationStats> Stats = generationFromJson(*Gen);
      if (!Stats.isOk())
        return Stats.status();
      // The checkpoint must exist too (framing check only; weights load
      // below, once, from the last complete generation).
      if (!SessionCheckpoint::inspect(genPath(Options.OutDir, K, ".vega"))
               .isOk())
        break;
      if (K > 0) {
        StatusOr<std::string> HText =
            readFile(genPath(Options.OutDir, K, ".harvest.json"));
        if (!HText.isOk())
          break;
        StatusOr<Json> HDoc = Json::parse(*HText);
        if (!HDoc.isOk() || HDoc->getString("optionsKey") != hex64(Key))
          return Status::failedPrecondition(
              "corrupt flywheel artifact gen-" + std::to_string(K) +
              ".harvest.json");
        StatusOr<std::vector<AugmentedPair>> Pairs = harvestFromJson(*HDoc);
        if (!Pairs.isOk())
          return Pairs.status();
        System.augmentTrainingPairs(*Pairs);
      }
      Report.Generations.push_back(std::move(*Stats));
      Report.TotalPairsAdded += Report.Generations.back().PairsAdded;
      Resumed = K + 1;
    }
    if (Resumed > 0) {
      // Restore the last complete generation's weights into the live model.
      std::string CkptPath =
          genPath(Options.OutDir, Resumed - 1, ".vega");
      StatusOr<std::unique_ptr<VegaSystem>> Restored =
          SessionCheckpoint::load(System.corpus(), CkptPath);
      if (!Restored.isOk())
        return Restored.status();
      if (!System.model()->loadWeights((*Restored)->model()->saveWeights()))
        return Status::failedPrecondition("weight shape mismatch restoring '" +
                                          CkptPath + "'");
      if (Options.Verbose)
        std::fprintf(stderr,
                     "vega: flywheel resumed %d generation(s) from %s\n",
                     Resumed, Options.OutDir.c_str());
    }
  }
  Report.GenerationsResumed = Resumed;

  auto persistGeneration = [&](int K,
                               const GenerationStats &Stats,
                               const Harvest *H) -> Status {
    if (!Persist)
      return Status::ok();
    if (H) {
      Json HDoc = harvestToJson(*H, Key, K);
      if (Status S = writeFile(genPath(Options.OutDir, K, ".harvest.json"),
                               HDoc.dump(2) + "\n");
          !S.isOk())
        return S;
    }
    Json Doc = Json::object();
    Doc.set("schema", GenSchema);
    Doc.set("optionsKey", hex64(Key));
    Doc.set("generation", generationToJson(Stats));
    if (Status S = writeFile(genPath(Options.OutDir, K, ".report.json"),
                             Doc.dump(2) + "\n");
        !S.isOk())
      return S;
    return SessionCheckpoint::save(System,
                                   genPath(Options.OutDir, K, ".vega"));
  };

  // ---- Baseline (generation 0). -----------------------------------------
  std::vector<repair::RepairReport> CurReports;
  if (Resumed == 0) {
    obs::Span GenSpan("flywheel.generation", "flywheel");
    GenSpan.arg("generation", "0");
    StatusOr<std::vector<repair::RepairReport>> Reports = evalAll(0);
    if (!Reports.isOk())
      return Reports.status();
    CurReports = std::move(*Reports);
    GenerationStats Base;
    Base.Generation = 0;
    for (const repair::RepairReport &R : CurReports)
      Base.Targets.push_back(statsOf(R));
    aggregate(Base);
    Report.Generations.push_back(Base);
    Report.GenerationsRun = 1;
    if (Status S = persistGeneration(0, Base, nullptr); !S.isOk())
      return S;
  } else if (Resumed <= Options.Generations) {
    // Reports of the last resumed generation, regenerated from its
    // restored weights — deterministic, so the continuation is
    // byte-identical to the uninterrupted run. Skipped when every
    // requested generation was resumed (nothing left to harvest for).
    StatusOr<std::vector<repair::RepairReport>> Reports =
        evalAll(Resumed - 1);
    if (!Reports.isOk())
      return Reports.status();
    CurReports = std::move(*Reports);
  }

  // ---- Fine-tune generations. -------------------------------------------
  obs::MetricsRegistry &Metrics = obs::MetricsRegistry::instance();
  for (int K = std::max(Resumed, 1); K <= Options.Generations; ++K) {
    obs::Span GenSpan("flywheel.generation", "flywheel");
    GenSpan.arg("generation", std::to_string(K));
    const GenerationStats &Prev = Report.Generations.back();

    Harvest H = harvestReports(CurReports);
    VegaSystem::AugmentResult AR = System.augmentTrainingPairs(H.Pairs);
    Metrics.addCounter("flywheel.pairs_harvested", H.Pairs.size());
    Metrics.addCounter("flywheel.pairs_added", AR.Added);
    Metrics.addCounter("flywheel.pairs_deduped", AR.Deduped);

    std::string Snapshot = System.model()->saveWeights();
    StatusOr<model::TrainResult> TR = System.fineTuneRound(
        Options.FineTuneEpochs, Options.Seed ^ (0xf17ee1ULL + K));
    if (!TR.isOk())
      return TR.status();

    StatusOr<std::vector<repair::RepairReport>> NewReports = evalAll(K);
    if (!NewReports.isOk())
      return NewReports.status();

    GenerationStats Gen;
    Gen.Generation = K;
    for (const repair::RepairReport &R : *NewReports)
      Gen.Targets.push_back(statsOf(R));
    aggregate(Gen);

    // The acceptance gate: never regress the committed trajectory.
    bool Accept =
        Gen.Pass1 >= Prev.Pass1 && Gen.RepairReliance <= Prev.RepairReliance;
    if (Options.Verbose && !Accept)
      std::fprintf(stderr,
                   "vega: flywheel gen %d candidate pass@1 %.4f reliance "
                   "%.4f regressed (prev %.4f / %.4f); reverting\n",
                   K, Gen.Pass1, Gen.RepairReliance, Prev.Pass1,
                   Prev.RepairReliance);
    if (Accept) {
      CurReports = std::move(*NewReports);
    } else {
      // Revert the weights; the generation's eval columns repeat the
      // previous generation's (the trajectory stays flat).
      if (!System.model()->loadWeights(Snapshot))
        return Status::internal("weight snapshot restore failed");
      Gen.Pass1 = Prev.Pass1;
      Gen.GreedyPass1 = Prev.GreedyPass1;
      Gen.RepairReliance = Prev.RepairReliance;
      Gen.Targets = Prev.Targets;
      Gen.Accepted = false;
    }
    Gen.HarvestedPositives = H.Positives;
    Gen.HarvestedNegatives = H.Negatives;
    Gen.PairsAdded = AR.Added;
    Gen.PairsDeduped = AR.Deduped;
    Gen.PairsSkippedOov = AR.SkippedOov;
    Gen.TrainMeanLoss = TR->FinalMeanLoss;
    for (TargetGenStats &T : Gen.Targets) {
      auto It = H.PerTarget.find(T.Target);
      T.HarvestedPositives = It == H.PerTarget.end() ? 0 : It->second.first;
      T.HarvestedNegatives = It == H.PerTarget.end() ? 0 : It->second.second;
    }

    Metrics.addCounter("flywheel.generations");
    Metrics.addCounter(Gen.Accepted ? "flywheel.generations_accepted"
                                    : "flywheel.generations_rejected");
    Metrics.setGauge("flywheel.pass1", Gen.Pass1);
    Metrics.setGauge("flywheel.repair_reliance", Gen.RepairReliance);
    if (Options.Verbose)
      std::fprintf(stderr,
                   "vega: flywheel gen %d: pass@1 %.4f reliance %.4f "
                   "(+%zu pairs, %s)\n",
                   K, Gen.Pass1, Gen.RepairReliance, AR.Added,
                   Gen.Accepted ? "accepted" : "rejected");

    Report.Generations.push_back(Gen);
    Report.TotalPairsAdded += AR.Added;
    ++Report.GenerationsRun;
    if (Status S = persistGeneration(K, Gen, &H); !S.isOk())
      return S;
  }

  RunSpan.arg("pass1", std::to_string(Report.Generations.back().Pass1));
  return Report;
}

} // namespace flywheel
} // namespace vega
