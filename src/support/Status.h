//===- support/Status.h - Status and StatusOr result types -------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The result types of the session-level library API. Every VegaSession /
/// checkpoint / serving entry point reports failure through vega::Status
/// (code + human-readable message) instead of printing to stderr and falling
/// through; the CLI maps codes to process exit codes and the vega-serve
/// daemon maps them to JSON-RPC error codes, so one error travels unchanged
/// from the library to either consumer.
///
/// Expected<T> (support/Error.h) remains the carrier for low-level parsing
/// utilities; Status/StatusOr is the public-API surface.
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_SUPPORT_STATUS_H
#define VEGA_SUPPORT_STATUS_H

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace vega {

/// Canonical error space (a deliberately small subset of the gRPC codes).
enum class StatusCode : uint8_t {
  Ok = 0,
  InvalidArgument,    ///< malformed request / flag / parameter
  NotFound,           ///< unknown target, interface function, file, method
  FailedPrecondition, ///< fingerprint mismatch, wrong session state
  DataLoss,           ///< truncated or corrupted artifact / checksum failure
  Unavailable,        ///< I/O failure (cannot open, write, bind, ...)
  Internal,           ///< invariant violation surfaced as a recoverable error
  Unimplemented,      ///< known but unsupported operation
  ResourceExhausted,  ///< admission window / queue full — retry later
};

/// Short kebab-case name of a code ("invalid-argument", ...).
inline const char *statusCodeName(StatusCode Code) {
  switch (Code) {
  case StatusCode::Ok:
    return "ok";
  case StatusCode::InvalidArgument:
    return "invalid-argument";
  case StatusCode::NotFound:
    return "not-found";
  case StatusCode::FailedPrecondition:
    return "failed-precondition";
  case StatusCode::DataLoss:
    return "data-loss";
  case StatusCode::Unavailable:
    return "unavailable";
  case StatusCode::Internal:
    return "internal";
  case StatusCode::Unimplemented:
    return "unimplemented";
  case StatusCode::ResourceExhausted:
    return "resource-exhausted";
  }
  return "unknown";
}

/// A success-or-error result. Messages follow LLVM error style: lowercase
/// first word, no trailing period.
class Status {
public:
  Status() = default;
  Status(StatusCode Code, std::string Message)
      : Code(Code), Msg(std::move(Message)) {
    assert((Code != StatusCode::Ok || Msg.empty()) &&
           "ok status carries no message");
  }

  static Status ok() { return Status(); }
  static Status invalidArgument(std::string Msg) {
    return Status(StatusCode::InvalidArgument, std::move(Msg));
  }
  static Status notFound(std::string Msg) {
    return Status(StatusCode::NotFound, std::move(Msg));
  }
  static Status failedPrecondition(std::string Msg) {
    return Status(StatusCode::FailedPrecondition, std::move(Msg));
  }
  static Status dataLoss(std::string Msg) {
    return Status(StatusCode::DataLoss, std::move(Msg));
  }
  static Status unavailable(std::string Msg) {
    return Status(StatusCode::Unavailable, std::move(Msg));
  }
  static Status internal(std::string Msg) {
    return Status(StatusCode::Internal, std::move(Msg));
  }
  static Status unimplemented(std::string Msg) {
    return Status(StatusCode::Unimplemented, std::move(Msg));
  }
  static Status resourceExhausted(std::string Msg) {
    return Status(StatusCode::ResourceExhausted, std::move(Msg));
  }

  bool isOk() const { return Code == StatusCode::Ok; }
  StatusCode code() const { return Code; }
  const std::string &message() const { return Msg; }

  /// "data-loss: section checksum mismatch" (or "ok").
  std::string toString() const {
    if (isOk())
      return "ok";
    return std::string(statusCodeName(Code)) + ": " + Msg;
  }

  /// The CLI exit-code mapping (documented in README):
  /// 0 ok, 1 internal, 2 invalid-argument, 3 not-found,
  /// 4 failed-precondition, 5 data-loss, 6 unavailable, 7 unimplemented,
  /// 8 resource-exhausted.
  int toExitCode() const {
    switch (Code) {
    case StatusCode::Ok:
      return 0;
    case StatusCode::Internal:
      return 1;
    case StatusCode::InvalidArgument:
      return 2;
    case StatusCode::NotFound:
      return 3;
    case StatusCode::FailedPrecondition:
      return 4;
    case StatusCode::DataLoss:
      return 5;
    case StatusCode::Unavailable:
      return 6;
    case StatusCode::Unimplemented:
      return 7;
    case StatusCode::ResourceExhausted:
      return 8;
    }
    return 1;
  }

private:
  StatusCode Code = StatusCode::Ok;
  std::string Msg;
};

/// A value or a Status. Mirrors absl::StatusOr at the size this project
/// needs: implicit construction from either side, checked access.
template <typename T> class StatusOr {
public:
  StatusOr(T Value) : Value(std::move(Value)) {}
  StatusOr(Status St) : St(std::move(St)) {
    assert(!this->St.isOk() && "ok StatusOr must carry a value");
  }

  bool isOk() const { return Value.has_value(); }
  const Status &status() const { return St; }

  T &value() {
    assert(Value && "value() on an error StatusOr");
    return *Value;
  }
  const T &value() const {
    assert(Value && "value() on an error StatusOr");
    return *Value;
  }
  T &operator*() { return value(); }
  const T &operator*() const { return value(); }
  T *operator->() { return &value(); }
  const T *operator->() const { return &value(); }

private:
  Status St;
  std::optional<T> Value;
};

} // namespace vega

#endif // VEGA_SUPPORT_STATUS_H
