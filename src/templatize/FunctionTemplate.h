//===- templatize/FunctionTemplate.h - Function templates --------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Function templates (the paper's FT_M): the union statement tree over all
/// target-specific implementations of one interface function, with common
/// code kept verbatim and variant code abstracted into $SV placeholders
/// (§3.2.1). Each template row records, per target, the concrete statements
/// that instantiated it — the training signal for CodeBE.
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_TEMPLATIZE_FUNCTIONTEMPLATE_H
#define VEGA_TEMPLATIZE_FUNCTIONTEMPLATE_H

#include "ast/Statement.h"
#include "corpus/Corpus.h"

#include <map>
#include <memory>

namespace vega {

/// One statement template T_k in a function template.
struct TemplateRow {
  StmtKind Kind = StmtKind::Other;
  /// Template tokens; variant positions hold Placeholder tokens ($SV0...).
  std::vector<Token> Tokens;
  /// True when implementations repeat this row with different values (e.g.
  /// "case $SV0::$SV1:" — one row standing for ARM's 66 fixup cases).
  bool Repeatable = false;
  /// Stable pre-order index within the template (0 = definition).
  int Index = 0;
  std::vector<std::unique_ptr<TemplateRow>> Children;

  /// One concrete instantiation of this row in one target's implementation.
  struct Instance {
    const Statement *Stmt = nullptr;
    /// Per placeholder (in order): the tokens filling it.
    std::vector<std::vector<Token>> SlotFillers;
  };
  /// Target name → instances (absent key = the target lacks this row).
  std::map<std::string, std::vector<Instance>> PerTarget;

  /// Number of placeholders in Tokens.
  size_t placeholderCount() const;

  /// Number of non-placeholder tokens (the paper's |T_k^com|).
  size_t commonTokenCount() const { return Tokens.size() - placeholderCount(); }

  /// Targets with at least one instance.
  std::vector<std::string> supportTargets() const;

  /// Single-line rendering of the template tokens.
  std::string text() const { return renderTokens(Tokens); }

  /// Pre-order traversal including this row.
  void preOrder(std::vector<TemplateRow *> &Out);
  void preOrder(std::vector<const TemplateRow *> &Out) const;
};

/// The function template FT_M for one interface function M.
struct FunctionTemplate {
  std::string InterfaceName;
  BackendModule Module = BackendModule::SEL;
  /// Row for the function-definition statement.
  std::unique_ptr<TemplateRow> Definition;
  /// Body rows (tree).
  std::vector<std::unique_ptr<TemplateRow>> Body;
  /// All member targets of the group the template was built from.
  std::vector<std::string> MemberTargets;

  /// All rows in pre-order (definition first).
  std::vector<TemplateRow *> rows();
  std::vector<const TemplateRow *> rows() const;

  /// Renders the template as pseudo-source (placeholders as $SVn).
  std::string render() const;
};

/// Builds the function template for \p Group (§3.2.1: GumTree alignment +
/// LCS common/variant split + repeated-row folding).
FunctionTemplate buildFunctionTemplate(const FunctionGroup &Group);

} // namespace vega

#endif // VEGA_TEMPLATIZE_FUNCTIONTEMPLATE_H
