file(REMOVE_RECURSE
  "CMakeFiles/minicc_pipeline.dir/minicc_pipeline.cpp.o"
  "CMakeFiles/minicc_pipeline.dir/minicc_pipeline.cpp.o.d"
  "minicc_pipeline"
  "minicc_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minicc_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
