//===- corpus/SynthTargetDesc.cpp - TGTDIRs renderer ------------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "corpus/SynthTargetDesc.h"

#include "corpus/SourceBuilder.h"
#include "support/StringUtils.h"

using namespace vega;

namespace {

const char *instrClassName(InstrClass Class) {
  switch (Class) {
  case InstrClass::Alu:
    return "Alu";
  case InstrClass::Mul:
    return "Mul";
  case InstrClass::Div:
    return "Div";
  case InstrClass::Load:
    return "Load";
  case InstrClass::Store:
    return "Store";
  case InstrClass::Branch:
    return "Branch";
  case InstrClass::Call:
    return "Call";
  case InstrClass::Ret:
    return "Ret";
  case InstrClass::Mov:
    return "Mov";
  case InstrClass::Shift:
    return "Shift";
  case InstrClass::Cmp:
    return "Cmp";
  case InstrClass::HwLoop:
    return "HwLoop";
  case InstrClass::Simd:
    return "Simd";
  case InstrClass::Thread:
    return "Thread";
  case InstrClass::Compressed:
    return "Compressed";
  }
  return "Alu";
}

std::string renderTargetTd(const TargetTraits &T) {
  SourceBuilder S;
  S.open("def " + T.Name + " : Target {");
  S.line("Name = \"" + T.Name + "\";");
  if (T.IsBigEndian)
    S.line("IsBigEndian = 1;");
  else
    S.line("IsLittleEndian = 1;");
  if (T.Is64Bit)
    S.line("Is64Bit = 1;");
  if (T.HasDelaySlots)
    S.line("HasDelaySlots = 1;");
  if (T.HasHardwareLoop)
    S.line("HasHardwareLoop = 1;");
  if (T.HasSimd)
    S.line("HasVectorUnit = 1;");
  if (T.HasCompressed)
    S.line("HasCompressedISA = 1;");
  if (T.HasThreadScheduler)
    S.line("HasThreadScheduler = 1;");
  if (T.HasPostRAScheduler)
    S.line("HasPostRAScheduler = 1;");
  if (T.HasRegisterScavenging)
    S.line("UsesRegScavenger = 1;");
  S.line("ImmWidth = " + std::to_string(T.ImmWidth) + ";");
  if (T.VectorWidth != 0)
    S.line("VectorWidth = " + std::to_string(T.VectorWidth) + ";");
  S.close("};");
  S.blank();
  S.open("def " + T.Name + "AsmInfo : MCAsmInfo {");
  S.line(std::string("DataDirective = \"") +
         (T.Category == TargetCategory::IoT ? ".word" : ".long") + "\";");
  S.line(std::string("CommentString = \"") +
         (T.Category == TargetCategory::IoT ? "//" : "#") + "\";");
  S.close("};");
  return S.str();
}

std::string renderInstrInfoTd(const TargetTraits &T) {
  SourceBuilder S;
  for (const InstrInfo &I : T.Instructions) {
    S.open("def " + I.Name + " : Instruction {");
    S.line("Mnemonic = \"" + lowerString(I.Name) + "\";");
    S.line(std::string("InstrClass = \"") + instrClassName(I.Class) + "\";");
    S.line("Cycles = " + std::to_string(I.Cycles) + ";");
    S.line("Size = " + std::to_string(I.Size) + ";");
    if (I.Class == InstrClass::Branch || I.Class == InstrClass::Call)
      S.line("OperandType = \"OPERAND_PCREL\";");
    S.close("};");
    S.blank();
  }
  return S.str();
}

std::string renderRegisterInfoTd(const TargetTraits &T) {
  SourceBuilder S;
  for (const std::string &RC : T.RegisterClasses) {
    S.open("def " + RC + " : RegisterClass {");
    S.line("RegCount = " + std::to_string(T.RegisterCount) + ";");
    S.line("Alignment = " + std::to_string(T.StackAlignment) + ";");
    S.close("};");
    S.blank();
  }
  for (const std::string &Reg : T.RegisterNames) {
    S.open("def " + Reg + " : Register {");
    S.line("AsmName = \"" + lowerString(Reg) + "\";");
    if (Reg == T.StackPointer || Reg == T.ReturnAddressReg)
      S.line("IsReserved = 1;");
    S.close("};");
  }
  S.blank();
  S.open("def " + T.Name + "Frame : FrameModel {");
  S.line("StackAlignment = " + std::to_string(T.StackAlignment) + ";");
  S.line("NumRegs = " + std::to_string(T.RegisterCount) + ";");
  S.line("ReservedRegs = " + std::to_string(T.ReservedRegCount) + ";");
  S.close("};");
  return S.str();
}

std::string renderScheduleTd(const TargetTraits &T) {
  SourceBuilder S;
  S.open("def " + T.Name + "SchedModel : SchedModel {");
  S.line("LoadLatency = " + std::to_string(T.LoadLatency) + ";");
  S.line("BranchLatency = " + std::to_string(T.BranchLatency) + ";");
  S.line("IssueWidth = 1;");
  S.close("};");
  return S.str();
}

std::string renderFixupKindsHeader(const TargetTraits &T) {
  SourceBuilder S;
  S.open("namespace " + T.Name + " {");
  S.open("enum Fixups {");
  bool First = true;
  for (const FixupInfo &F : T.Fixups) {
    if (First) {
      S.line(F.Name + " = FirstTargetFixupKind,");
      First = false;
    } else {
      S.line(F.Name + ",");
    }
  }
  S.line("LastTargetFixupKind,");
  S.line("NumTargetFixupKinds = LastTargetFixupKind - FirstTargetFixupKind,");
  S.close("};");
  S.close("}");
  return S.str();
}

std::string renderIsdHeader(const TargetTraits &T) {
  SourceBuilder S;
  S.open("namespace " + T.Name + "ISD {");
  S.open("enum NodeType {");
  S.line("FIRST_NUMBER = BUILTIN_OP_END,");
  for (const IsdNodeInfo &N : T.IsdNodes)
    S.line(N.Name + ",");
  S.close("};");
  S.close("}");
  return S.str();
}

std::string renderElfRelocsDef(const TargetTraits &T) {
  SourceBuilder S;
  int Id = 0;
  S.line("ELF_RELOC(R_" + [&] {
    std::string U;
    for (char C : T.Name)
      U += static_cast<char>(std::toupper(static_cast<unsigned char>(C)));
    return U;
  }() + "_NONE, " + std::to_string(Id++) + ")");
  std::string Upper;
  for (char C : T.Name)
    Upper += static_cast<char>(std::toupper(static_cast<unsigned char>(C)));
  S.line("ELF_RELOC(R_" + Upper + "_REL32, " + std::to_string(Id++) + ")");
  for (const FixupInfo &F : T.Fixups)
    S.line("ELF_RELOC(" + F.Reloc + ", " + std::to_string(Id++) + ")");
  return S.str();
}

std::string renderVariantKindHeader(const TargetTraits &T) {
  SourceBuilder S;
  S.open("namespace " + T.Name + "MC {");
  S.open("enum VariantKind {");
  S.line("VK_" + T.Name + "_None = 0,");
  S.line("VK_" + T.Name + "_LO,");
  S.line("VK_" + T.Name + "_HI,");
  S.line("VK_" + T.Name + "_GOT,");
  S.line("VK_" + T.Name + "_TPREL,");
  S.close("};");
  S.close("}");
  return S.str();
}

} // namespace

void vega::renderTargetDescription(VirtualFileSystem &VFS,
                                   const TargetTraits &T) {
  std::string Dir = "lib/Target/" + T.Name + "/";
  VFS.addFile(Dir + T.Name + ".td", renderTargetTd(T));
  VFS.addFile(Dir + T.Name + "InstrInfo.td", renderInstrInfoTd(T));
  VFS.addFile(Dir + T.Name + "RegisterInfo.td", renderRegisterInfoTd(T));
  VFS.addFile(Dir + T.Name + "Schedule.td", renderScheduleTd(T));
  VFS.addFile(Dir + T.Name + "FixupKinds.h", renderFixupKindsHeader(T));
  VFS.addFile(Dir + T.Name + "ISD.h", renderIsdHeader(T));
  VFS.addFile("llvm/BinaryFormat/ELFRelocs/" + T.Name + ".def",
              renderElfRelocsDef(T));
  if (T.HasVariantKind)
    VFS.addFile(Dir + T.Name + "MCExpr.h", renderVariantKindHeader(T));
}
