# Empty dependencies file for vega_forkflow.
# This may be replaced when dependencies are built.
