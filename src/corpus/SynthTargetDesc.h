//===- corpus/SynthTargetDesc.h - TGTDIRs renderer ---------------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a target's description files (TGTDIRs): the TableGen records,
/// fixup-kind headers, target ISD node headers, and ELF relocation .def
/// lists that Algorithm 1 mines for update sites and target-specific
/// values. For a new target these files are the *only* input VEGA needs
/// (paper abstract).
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_CORPUS_SYNTHTARGETDESC_H
#define VEGA_CORPUS_SYNTHTARGETDESC_H

#include "corpus/TargetTraits.h"
#include "support/VirtualFileSystem.h"

namespace vega {

/// Writes every description file of target \p Traits into \p VFS.
void renderTargetDescription(VirtualFileSystem &VFS,
                             const TargetTraits &Traits);

} // namespace vega

#endif // VEGA_CORPUS_SYNTHTARGETDESC_H
