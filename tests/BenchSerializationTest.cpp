//===- tests/BenchSerializationTest.cpp - backend cache round trip --------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "ast/Parser.h"
#include "flywheel/Flywheel.h"
#include "lexer/Lexer.h"

#include <gtest/gtest.h>

using namespace vega;

namespace {

GeneratedBackend sampleBackend() {
  GeneratedBackend GB;
  GB.TargetName = "RISCV";
  GB.ModuleSeconds[BackendModule::EMI] = 1.25;
  GB.ModuleSeconds[BackendModule::SEL] = 3.5;

  GeneratedFunction F;
  F.InterfaceName = "getNumFixupKinds";
  F.Module = BackendModule::EMI;
  F.Emitted = true;
  F.Confidence = 0.95;
  F.MultiTargetDerived = true;
  F.Seconds = 0.4;
  auto AST = parseFunction("unsigned RISCVAsmBackend::getNumFixupKinds() "
                           "const {\n return RISCV::NumTargetFixupKinds;\n}");
  F.AST = std::move(*AST);
  GeneratedStatement S;
  S.RowIndex = 1;
  S.Confidence = 0.85;
  S.Emitted = true;
  S.Tokens = Lexer::tokenize("return RISCV::NumTargetFixupKinds;");
  F.Statements.push_back(S);
  GB.Functions.push_back(std::move(F));

  GeneratedFunction Missing;
  Missing.InterfaceName = "fillDelaySlots";
  Missing.Module = BackendModule::SCH;
  Missing.Emitted = false;
  Missing.Confidence = 0.1;
  GB.Functions.push_back(std::move(Missing));
  return GB;
}

} // namespace

TEST(BenchSerialization, RoundTripPreservesEverything) {
  GeneratedBackend GB = sampleBackend();
  std::string Blob = bench::serializeBackend(GB);
  GeneratedBackend Back;
  ASSERT_TRUE(bench::deserializeBackend(Blob, Back));

  EXPECT_EQ(Back.TargetName, "RISCV");
  ASSERT_EQ(Back.Functions.size(), 2u);
  const GeneratedFunction &F = Back.Functions[0];
  EXPECT_EQ(F.InterfaceName, "getNumFixupKinds");
  EXPECT_EQ(F.Module, BackendModule::EMI);
  EXPECT_TRUE(F.Emitted);
  EXPECT_NEAR(F.Confidence, 0.95, 1e-6);
  EXPECT_TRUE(F.MultiTargetDerived);
  EXPECT_EQ(F.AST.render(), GB.Functions[0].AST.render());
  ASSERT_EQ(F.Statements.size(), 1u);
  EXPECT_EQ(F.Statements[0].RowIndex, 1);
  EXPECT_NEAR(F.Statements[0].Confidence, 0.85, 1e-6);
  EXPECT_EQ(renderTokens(F.Statements[0].Tokens),
            "return RISCV::NumTargetFixupKinds;");

  EXPECT_FALSE(Back.Functions[1].Emitted);
  EXPECT_NEAR(Back.ModuleSeconds[BackendModule::EMI], 1.25, 1e-6);
  EXPECT_NEAR(Back.ModuleSeconds[BackendModule::SEL], 3.5, 1e-6);
}

TEST(BenchSerialization, RejectsGarbage) {
  GeneratedBackend Out;
  EXPECT_FALSE(bench::deserializeBackend("", Out));
  EXPECT_FALSE(bench::deserializeBackend("nonsense\nlines\n", Out));
}

TEST(BenchSerialization, EmptyBackendRejected) {
  GeneratedBackend GB;
  GB.TargetName = "RISCV";
  GeneratedBackend Out;
  EXPECT_FALSE(bench::deserializeBackend(bench::serializeBackend(GB), Out));
}

namespace {

flywheel::FlywheelReport sampleFlywheelReport() {
  flywheel::FlywheelReport Report;
  Report.Options.Targets = {"RISCV", "RI5CY"};
  Report.Options.Generations = 2;
  Report.Options.Seed = 7;
  Report.GenerationsRun = 2;
  Report.GenerationsResumed = 1;
  Report.TotalPairsAdded = 42;

  flywheel::GenerationStats Baseline;
  Baseline.Generation = 0;
  Baseline.Pass1 = 0.625;
  Baseline.GreedyPass1 = 0.5;
  Baseline.RepairReliance = 0.2;
  flywheel::TargetGenStats T;
  T.Target = "RISCV";
  T.Functions = 40;
  T.GreedyAccurate = 20;
  T.Accurate = 25;
  T.FunctionsFlagged = 12;
  T.FunctionsRepaired = 5;
  T.StatementsAutoRepaired = 13;
  T.GreedyPass1 = 0.5;
  T.Pass1 = 0.625;
  T.StatementAccuracy = 0.75;
  T.ErrVRate = 0.01;
  T.DivValRate = 0.02;
  Baseline.Targets.push_back(T);
  Report.Generations.push_back(Baseline);

  flywheel::GenerationStats Gen = Baseline;
  Gen.Generation = 1;
  Gen.Pass1 = 0.675;
  Gen.RepairReliance = 0.15;
  Gen.Accepted = false;
  Gen.HarvestedPositives = 30;
  Gen.HarvestedNegatives = 18;
  Gen.PairsAdded = 42;
  Gen.PairsDeduped = 5;
  Gen.PairsSkippedOov = 1;
  Gen.TrainMeanLoss = 0.0875;
  Report.Generations.push_back(Gen);
  return Report;
}

} // namespace

TEST(BenchSerialization, FlywheelReportJsonRoundTripsByteForByte) {
  // The "vega-flywheel-1" rendering backs the CLI --json payload, the
  // resume artifacts, and the bench section — the round trip must be exact
  // down to the bytes or resume byte-identity is unprovable.
  flywheel::FlywheelReport Report = sampleFlywheelReport();
  Json Doc = flywheel::reportToJson(Report);
  EXPECT_EQ(Doc.getString("schema"), "vega-flywheel-1");
  StatusOr<flywheel::FlywheelReport> Back = flywheel::reportFromJson(Doc);
  ASSERT_TRUE(Back.isOk()) << Back.status().toString();
  EXPECT_EQ(flywheel::reportToJson(*Back).dump(2), Doc.dump(2));
  EXPECT_EQ(Back->TotalPairsAdded, 42u);
  EXPECT_EQ(Back->GenerationsResumed, 1);
  ASSERT_EQ(Back->Generations.size(), 2u);
  EXPECT_FALSE(Back->Generations[1].Accepted);
  ASSERT_EQ(Back->Generations[1].Targets.size(), 1u);
  EXPECT_EQ(Back->Generations[1].Targets[0].Target, "RISCV");
  EXPECT_EQ(Back->Generations[1].Targets[0].StatementsAutoRepaired, 13u);

  // The per-generation rendering round-trips independently (it is the
  // resume artifact payload).
  Json GenDoc = flywheel::generationToJson(Report.Generations[1]);
  StatusOr<flywheel::GenerationStats> GenBack =
      flywheel::generationFromJson(GenDoc);
  ASSERT_TRUE(GenBack.isOk()) << GenBack.status().toString();
  EXPECT_EQ(flywheel::generationToJson(*GenBack).dump(2), GenDoc.dump(2));
}
