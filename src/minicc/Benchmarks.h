//===- minicc/Benchmarks.h - Workload generators -----------------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthetic workloads standing in for the paper's §4.1.3 suites: 28 C/C++
/// SPEC CPU2017 benchmarks (RISC-V), 69 PULP regression tests (RI5CY), and
/// 22 Embench programs (xCORE). Each named benchmark deterministically
/// expands to a toy-IR module mixing the kernel shapes that exercise the
/// optimizer: reductions (vectorizable), pointer chases (load-bound),
/// branchy loops, call-heavy and division-heavy code, plus dead and
/// constant-foldable instructions for -O3 to harvest.
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_MINICC_BENCHMARKS_H
#define VEGA_MINICC_BENCHMARKS_H

#include "minicc/IR.h"

#include <vector>

namespace vega {

/// The 28 C/C++ SPEC CPU2017 benchmark names (paper's RISC-V workload).
const std::vector<std::string> &specSuite();

/// 69 PULP regression test names (paper's RI5CY workload).
const std::vector<std::string> &pulpSuite();

/// 22 Embench names (paper's xCORE workload).
const std::vector<std::string> &embenchSuite();

/// Builds the deterministic toy-IR module for \p BenchmarkName.
IRModule buildBenchmark(const std::string &BenchmarkName);

} // namespace vega

#endif // VEGA_MINICC_BENCHMARKS_H
