//===- support/ArgParse.h - Flags, subcommands, auto-usage -------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared command-line front end of vega-cli, vega-serve, and the bench
/// drivers, replacing the ad-hoc `rfind("--x=", 0)` loops each tool grew
/// independently. Supports:
///
///   - value options  (`--jobs=4` or `--jobs 4`)
///   - boolean flags  (`--stats`)
///   - subcommands with positional-arity checking (`generate <target>`)
///   - pass-through of unrecognized `--flags` (for google-benchmark)
///   - generated usage text from the registered declarations
///
/// Flags may appear anywhere relative to the subcommand, matching the
/// historical vega-cli behavior. Parsing reports failures as vega::Status so
/// tools map them straight to exit codes.
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_SUPPORT_ARGPARSE_H
#define VEGA_SUPPORT_ARGPARSE_H

#include "support/Status.h"

#include <map>
#include <string>
#include <vector>

namespace vega {

class ArgParse {
public:
  /// \p Prog is the program name for usage text, \p Overview one line about
  /// what the tool does.
  ArgParse(std::string Prog, std::string Overview);

  /// Registers a boolean flag ("stats" → `--stats`).
  void addFlag(const std::string &Name, const std::string &Help);

  /// Registers a value option ("jobs", "N" → `--jobs=<N>`). \p Default is
  /// returned by get() when the option was not given.
  void addOption(const std::string &Name, const std::string &ValueName,
                 const std::string &Help, std::string Default = "");

  /// Registers a subcommand. \p ArgSpec is usage text for the positionals
  /// ("<target> [epochs]"); \p MinArgs / \p MaxArgs bound their count.
  void addCommand(const std::string &Name, const std::string &ArgSpec,
                  const std::string &Help, size_t MinArgs, size_t MaxArgs);

  /// When enabled, unknown `--flags` are collected into passthroughArgs()
  /// instead of failing the parse (google-benchmark tools).
  void setPassthroughUnknown(bool On) { PassthroughUnknown = On; }

  /// Parses \p argv (argv[0] is skipped). On failure returns
  /// invalid-argument with a one-line reason; the tool should print
  /// usage() and exit with the status code.
  Status parse(int Argc, char **Argv);
  Status parse(const std::vector<std::string> &Args);

  /// True when the flag/option was present on the command line.
  bool has(const std::string &Name) const;

  /// Value of option \p Name (its default when absent). When the option was
  /// given more than once, the last occurrence wins.
  const std::string &get(const std::string &Name) const;

  /// Every occurrence of option \p Name, in command-line order (empty when
  /// absent — the default does not count). Lets tools accept repeatable
  /// options like `--shard=<socket> --shard=<socket>`.
  const std::vector<std::string> &getAll(const std::string &Name) const;

  /// Integer value of option \p Name; \p Default when absent or non-numeric.
  int getInt(const std::string &Name, int Default) const;

  /// The selected subcommand ("" when no commands are registered or none
  /// was given).
  const std::string &command() const { return Command; }

  /// Positional arguments after the subcommand (or all positionals when no
  /// commands are registered).
  const std::vector<std::string> &positionals() const { return Positionals; }

  /// Unrecognized `--flags`, in order, when pass-through is enabled.
  const std::vector<std::string> &passthroughArgs() const {
    return Passthrough;
  }

  /// Generated usage text: overview, synopsis, flags, commands.
  std::string usage() const;

private:
  struct FlagDecl {
    std::string Help;
    std::string ValueName; ///< empty = boolean flag
    std::string Default;
  };
  struct CommandDecl {
    std::string ArgSpec, Help;
    size_t MinArgs = 0, MaxArgs = 0;
    /// Registration order, for usage rendering.
    size_t Order = 0;
  };

  std::string Prog, Overview;
  std::map<std::string, FlagDecl> Flags; ///< by name, sans "--"
  std::vector<std::string> FlagOrder;
  std::map<std::string, CommandDecl> Commands;
  std::vector<std::string> CommandOrder;
  bool PassthroughUnknown = false;

  std::string Command;
  std::vector<std::string> Positionals;
  std::vector<std::string> Passthrough;
  std::map<std::string, std::string> Values;
  std::map<std::string, std::vector<std::string>> MultiValues;
};

} // namespace vega

#endif // VEGA_SUPPORT_ARGPARSE_H
