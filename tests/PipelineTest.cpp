//===- tests/PipelineTest.cpp - VEGA pipeline unit tests ------------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace vega;

namespace {

const BackendCorpus &sharedCorpus() {
  static BackendCorpus Corpus =
      BackendCorpus::build(TargetDatabase::standard());
  return Corpus;
}

/// A system with templates + dataset built (no training).
VegaSystem &sharedSystem() {
  static VegaSystem *Sys = [] {
    VegaOptions Opts;
    auto *S = new VegaSystem(sharedCorpus(), Opts);
    S->buildTemplates();
    S->buildDataset();
    return S;
  }();
  return *Sys;
}

} // namespace

TEST(Pipeline, BuildsOneTemplatePerGroup) {
  VegaSystem &Sys = sharedSystem();
  EXPECT_EQ(Sys.templates().size(), sharedCorpus().trainingGroups().size());
  EXPECT_NE(Sys.findTemplate("getRelocType"), nullptr);
  EXPECT_EQ(Sys.findTemplate("noSuchFunction"), nullptr);
}

TEST(Pipeline, DatasetSplitIsSeventyFiveTwentyFive) {
  VegaSystem &Sys = sharedSystem();
  size_t Train = Sys.trainFunctionCount();
  size_t Verify = Sys.verifyFunctionCount();
  ASSERT_GT(Train, 0u);
  ASSERT_GT(Verify, 0u);
  double Fraction =
      static_cast<double>(Train) / static_cast<double>(Train + Verify);
  EXPECT_NEAR(Fraction, 0.75, 0.06);
}

TEST(Pipeline, FeatureVectorLayout) {
  VegaSystem &Sys = sharedSystem();
  const TemplateInfo *TI = Sys.findTemplate("getRelocType");
  ASSERT_NE(TI, nullptr);
  std::vector<std::string> FV = Sys.buildInputTokens(
      *TI, *TI->FT.Definition, "RISCV", std::nullopt, std::string());
  ASSERT_GE(FV.size(), 8u);
  EXPECT_EQ(FV[0], "[CLS]");
  EXPECT_EQ(FV[1], "getRelocType");
  // Segment markers appear in order.
  auto Find = [&](const char *Tok) {
    return std::find(FV.begin(), FV.end(), Tok);
  };
  auto B = Find("[BOOLS]"), V = Find("[VALS]"), P = Find("[PATH]"),
       C = Find("[CTX]");
  ASSERT_NE(B, FV.end());
  ASSERT_NE(V, FV.end());
  ASSERT_NE(P, FV.end());
  ASSERT_NE(C, FV.end());
  EXPECT_LT(B, V);
  EXPECT_LT(V, P);
  EXPECT_LT(P, C);
  // Definition slot candidates include the composed writer class name.
  EXPECT_NE(Find("RISCVELFObjectWriter"), FV.end());
}

TEST(Pipeline, BoolSegmentTracksTargets) {
  VegaSystem &Sys = sharedSystem();
  const TemplateInfo *TI = Sys.findTemplate("getRelocType");
  ASSERT_NE(TI, nullptr);
  auto CountTrue = [&](const std::string &Target) {
    std::vector<std::string> FV = Sys.buildInputTokens(
        *TI, *TI->FT.Definition, Target, std::nullopt, std::string());
    return std::count(FV.begin(), FV.end(), "[T]");
  };
  // ARM (VariantKind true) has at least as many true bools as Lanai.
  EXPECT_GE(CountTrue("ARM"), CountTrue("Lanai"));
}

TEST(Pipeline, SlotCandidatesMixHarvestAndRenames) {
  VegaSystem &Sys = sharedSystem();
  const TemplateInfo *TI = Sys.findTemplate("getRelocType");
  ASSERT_NE(TI, nullptr);
  // Definition row slot 0 is the writer class; candidates contain the
  // Name harvest plus the renamed composite.
  auto Candidates =
      Sys.slotCandidates(*TI, *TI->FT.Definition, 0, "RISCV");
  ASSERT_FALSE(Candidates.empty());
  bool HasName = false, HasComposite = false;
  for (const std::string &C : Candidates) {
    if (C == "RISCV")
      HasName = true;
    if (C == "RISCVELFObjectWriter")
      HasComposite = true;
  }
  EXPECT_TRUE(HasName);
  EXPECT_TRUE(HasComposite);
  // No garbled double-renames (the all-caps "VE" regression).
  for (const std::string &C : Candidates)
    EXPECT_EQ(C.find("RISCRISCV"), std::string::npos) << C;
}

TEST(Pipeline, AnalyticConfidenceMatchesEq1) {
  VegaSystem &Sys = sharedSystem();
  const TemplateInfo *TI = Sys.findTemplate("getRelocType");
  ASSERT_NE(TI, nullptr);

  // Absent statements score 0 (has = 0).
  EXPECT_DOUBLE_EQ(
      Sys.analyticConfidence(*TI, *TI->FT.Definition, "RISCV", false), 0.0);

  // A pure-common row scores 1.
  const TemplateRow *Common = nullptr;
  const TemplateRow *Repeat = nullptr;
  for (const TemplateRow *Row : TI->FT.rows()) {
    if (Row->placeholderCount() == 0 && !Common &&
        Row->Kind == StmtKind::Decl)
      Common = Row;
    if (Row->Repeatable && Row->placeholderCount() == 2)
      Repeat = Row;
  }
  ASSERT_NE(Common, nullptr);
  EXPECT_DOUBLE_EQ(Sys.analyticConfidence(*TI, *Common, "RISCV", true), 1.0);

  // The repeatable case row scores |Tcom|/|T| + Σ 1/(|T|·N) — strictly
  // between 0.5 and 1 (paper §3.3's S5 example).
  ASSERT_NE(Repeat, nullptr);
  double CS = Sys.analyticConfidence(*TI, *Repeat, "RISCV", true);
  EXPECT_GT(CS, 0.5);
  EXPECT_LT(CS, 1.0);
}

TEST(Pipeline, Stage1TimingIsReported) {
  VegaOptions Opts;
  VegaSystem Sys(sharedCorpus(), Opts);
  double Seconds = Sys.buildTemplates();
  EXPECT_GT(Seconds, 0.0);
  EXPECT_LT(Seconds, 120.0);
}

TEST(Pipeline, BackendBasedSplitDiffersFromGroupBased) {
  VegaOptions Opts;
  Opts.Split = VegaOptions::SplitKind::BackendBased;
  VegaSystem Sys(sharedCorpus(), Opts);
  Sys.buildTemplates();
  Sys.buildDataset();
  // Backend-based: roughly 25% of backends hold out ALL their functions.
  EXPECT_GT(Sys.verifyFunctionCount(), 0u);
  EXPECT_GT(Sys.trainFunctionCount(), 0u);
  // The held-out share differs from the function-group split's share for
  // the same seed (they are different partitions of the same population).
  EXPECT_NE(Sys.verifyFunctionCount(), sharedSystem().verifyFunctionCount());
}

TEST(Pipeline, FeatureAblationChangesInputs) {
  VegaOptions Opts;
  Opts.UseTargetDependentValues = false;
  VegaSystem Sys(sharedCorpus(), Opts);
  Sys.buildTemplates();
  const TemplateInfo *TI = Sys.findTemplate("getRelocType");
  ASSERT_NE(TI, nullptr);
  std::vector<std::string> FV = Sys.buildInputTokens(
      *TI, *TI->FT.Definition, "RISCV", std::nullopt, std::string());
  EXPECT_EQ(std::find(FV.begin(), FV.end(), "RISCVELFObjectWriter"),
            FV.end());
}

namespace {

/// Canonical text form of a backend with the volatile timing fields zeroed
/// out — everything else (tokens, confidences, emission decisions, order)
/// must be byte-identical across job counts.
std::string canon(const GeneratedBackend &GB) {
  std::string Out = "TARGET " + GB.TargetName + "\n";
  char Buf[64];
  for (const GeneratedFunction &F : GB.Functions) {
    std::snprintf(Buf, sizeof(Buf), "%.17g", F.Confidence);
    Out += "FUNCTION " + F.InterfaceName + " " + moduleName(F.Module) + " " +
           Buf + (F.Emitted ? " emitted" : " dropped") +
           (F.MultiTargetDerived ? " multi\n" : "\n");
    for (const GeneratedStatement &S : F.Statements) {
      std::snprintf(Buf, sizeof(Buf), "%d %.17g %d", S.RowIndex, S.Confidence,
                    S.Emitted ? 1 : 0);
      Out += "  STMT " + std::string(Buf) + " [" + S.CandidateValue + "] " +
             renderTokens(S.Tokens) + "\n";
    }
  }
  return Out;
}

} // namespace

TEST(Pipeline, WeightCachePathHonorsCacheDirOverride) {
  // README "Weight caches": an absolute WeightCachePath is used verbatim;
  // a relative one resolves under $VEGA_CACHE_DIR when that is set and
  // non-empty; an empty path disables caching regardless of the override.
  VegaOptions Opts;

  ::unsetenv("VEGA_CACHE_DIR");
  Opts.WeightCachePath = "model.bin";
  EXPECT_EQ(Opts.resolvedWeightCachePath(), "model.bin");
  Opts.WeightCachePath = "/abs/model.bin";
  EXPECT_EQ(Opts.resolvedWeightCachePath(), "/abs/model.bin");
  Opts.WeightCachePath.clear();
  EXPECT_EQ(Opts.resolvedWeightCachePath(), "");

  ::setenv("VEGA_CACHE_DIR", "/tmp/vega-caches", 1);
  Opts.WeightCachePath = "model.bin";
  EXPECT_EQ(Opts.resolvedWeightCachePath(), "/tmp/vega-caches/model.bin");
  Opts.WeightCachePath = "/abs/model.bin"; // absolute wins over the override
  EXPECT_EQ(Opts.resolvedWeightCachePath(), "/abs/model.bin");
  Opts.WeightCachePath.clear(); // empty still means "no cache"
  EXPECT_EQ(Opts.resolvedWeightCachePath(), "");

  ::setenv("VEGA_CACHE_DIR", "/tmp/vega-caches/", 1); // trailing slash ok
  Opts.WeightCachePath = "model.bin";
  EXPECT_EQ(Opts.resolvedWeightCachePath(), "/tmp/vega-caches/model.bin");

  ::setenv("VEGA_CACHE_DIR", "", 1); // empty override = disabled
  EXPECT_EQ(Opts.resolvedWeightCachePath(), "model.bin");
  ::unsetenv("VEGA_CACHE_DIR");
}

TEST(Pipeline, GeneratedBackendIsIdenticalAcrossJobCounts) {
  // The hard Stage-3 invariant: the worker pool only changes who computes
  // each function, never what is computed — serial and 4-lane runs must
  // produce byte-identical backends (timing fields aside).
  VegaOptions Opts;
  Opts.Model.Epochs = 1;
  Opts.WeightCachePath = "pipeline_jobs_model.bin";
  VegaSystem Sys(sharedCorpus(), Opts);
  Sys.buildTemplates();
  Sys.buildDataset();
  Sys.trainModel();

  Sys.setJobs(1);
  GeneratedBackend Serial = Sys.generateBackend("RISCV");
  Sys.setJobs(4);
  GeneratedBackend Parallel = Sys.generateBackend("RISCV");

  ASSERT_EQ(Serial.Functions.size(), Parallel.Functions.size());
  EXPECT_EQ(canon(Serial), canon(Parallel));

  // And the KV cache itself must not change the output either.
  Sys.model()->setDecodeMode(CodeBE::DecodeMode::FullRecompute);
  GeneratedBackend Reference = Sys.generateBackend("RISCV");
  Sys.model()->setDecodeMode(CodeBE::DecodeMode::KVCache);
  EXPECT_EQ(canon(Reference), canon(Serial));
}

namespace {

/// A trained system for the precision / prefix-sharing invariants. Shares
/// the weight cache with the jobs test above (same config), so whichever
/// test runs first trains and the other loads.
VegaSystem &trainedSystem() {
  static VegaSystem *Sys = [] {
    VegaOptions Opts;
    Opts.Model.Epochs = 1;
    Opts.WeightCachePath = "pipeline_jobs_model.bin";
    auto *S = new VegaSystem(sharedCorpus(), Opts);
    S->buildTemplates();
    S->buildDataset();
    S->trainModel();
    return S;
  }();
  return *Sys;
}

} // namespace

TEST(Pipeline, PrefixSharingKeepsBackendsByteIdentical) {
  // Prefix sharing (group decode + the pinned-step logits skip) is pure
  // recomputation avoidance: for every evaluation target the generated
  // backend must be byte-identical with sharing on and off, and the
  // shared path must stay schedule-invariant across job counts.
  VegaSystem &Sys = trainedSystem();
  for (const char *Target : {"RISCV", "RI5CY", "XCORE"}) {
    Sys.setPrefixSharing(false);
    GeneratedBackend Unshared = Sys.generateBackend(Target);
    Sys.setPrefixSharing(true);
    GeneratedBackend Shared = Sys.generateBackend(Target);
    EXPECT_EQ(canon(Unshared), canon(Shared)) << "target " << Target;
  }

  Sys.setJobs(4);
  GeneratedBackend Parallel = Sys.generateBackend("RISCV");
  Sys.setJobs(1);
  GeneratedBackend Serial = Sys.generateBackend("RISCV");
  EXPECT_EQ(canon(Serial), canon(Parallel));
}

TEST(Pipeline, Int8GenerationIsByteDeterministicAcrossJobCounts) {
  // int8 is a different numeric contract from fp32, but within the
  // contract the determinism bar is the same: repeated runs and any job
  // count must produce byte-identical backends.
  VegaSystem &Sys = trainedSystem();
  Sys.setPrecision(Precision::INT8);
  Sys.setJobs(1);
  GeneratedBackend A = Sys.generateBackend("RISCV");
  GeneratedBackend B = Sys.generateBackend("RISCV");
  EXPECT_EQ(canon(A), canon(B));
  Sys.setJobs(4);
  GeneratedBackend C = Sys.generateBackend("RISCV");
  EXPECT_EQ(canon(A), canon(C));
  Sys.setJobs(1);
  Sys.setPrecision(Precision::FP32);
}
