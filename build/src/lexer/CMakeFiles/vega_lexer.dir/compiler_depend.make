# Empty compiler generated dependencies file for vega_lexer.
# This may be replaced when dependencies are built.
