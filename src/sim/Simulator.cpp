//===- sim/Simulator.cpp - Cycle-cost simulator ------------------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "sim/Simulator.h"

using namespace vega;

SimResult vega::simulate(const MachineProgram &Program,
                         const TargetTraits &Traits) {
  SimResult Result;
  for (const MachineFunction &Fn : Program.Functions) {
    for (const MachineBlock &Block : Fn.Blocks) {
      int64_t BlockCycles = 0, BlockStalls = 0, BlockBytes = 0;
      for (const MachineInstr &MI : Block.Instrs) {
        BlockCycles += MI.Cycles;
        BlockBytes += MI.Size;
        // Load-use hazard: a consumer scheduled right behind its load
        // stalls for the remaining latency.
        if (MI.DependsOnPrevLoad)
          BlockStalls += std::max(0, Traits.LoadLatency - 1);
        // Taken branches pay the pipeline bubble unless the block is a
        // hardware loop (the loop unit redirects fetch for free).
        if (MI.Class == InstrClass::Branch && !Block.HardwareLoopBody)
          BlockStalls += std::max(0, Traits.BranchLatency - 1);
        if (MI.Class == InstrClass::Call)
          BlockStalls += 2; // call/return overhead
      }
      Result.Cycles += (BlockCycles + BlockStalls) * Block.ExecCount;
      Result.Stalls += BlockStalls * Block.ExecCount;
      Result.Instructions +=
          static_cast<int64_t>(Block.Instrs.size()) * Block.ExecCount;
      Result.CodeBytes += BlockBytes;
    }
  }
  return Result;
}

SimResult vega::compileAndRun(const IRModule &Module,
                              const TargetTraits &Traits,
                              const BackendHooks &Hooks, OptLevel Level) {
  return simulate(compileModule(Module, Traits, Hooks, Level), Traits);
}

double vega::speedupO3(const IRModule &Module, const TargetTraits &Traits,
                       const BackendHooks &Hooks) {
  SimResult O0 = compileAndRun(Module, Traits, Hooks, OptLevel::O0);
  SimResult O3 = compileAndRun(Module, Traits, Hooks, OptLevel::O3);
  if (O3.Cycles <= 0)
    return 1.0;
  return static_cast<double>(O0.Cycles) / static_cast<double>(O3.Cycles);
}
