//===- serve/Server.h - The vega-serve batching daemon -----------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A long-running generation daemon over one loaded VegaSession. Requests
/// arrive as newline-delimited JSON-RPC 2.0 (over stdio or a local Unix
/// socket), queue behind a single batching worker, and fan out across the
/// session's ThreadPool: the worker drains up to MaxBatch pending requests,
/// dedups their targets, runs one batched generateMany() (every
/// (target, function) pair is one pool task), and answers each request from
/// the per-target merge. Merges are deterministic, so a response is
/// byte-identical whether its request ran alone or inside a batch.
///
/// Methods: ping, info, stats, generate {target}, evaluate {target},
/// repair {target}, shutdown. Every data method accepts an optional
/// `deadlineMs` (relative to submission); a request still queued past its
/// deadline is answered with RpcUnavailable instead of doing work.
///
/// Observability: each submitted line gets a RequestContext (monotonic id,
/// deadline, span flight-recorder ring) at submission time, so measured
/// latency includes queue wait. The batch worker routes the context onto
/// every generation span via RequestRouter — a `gen.*` span recorded while
/// serving carries its originating request id. Counters/histograms go to
/// the process MetricsRegistry (serve.requests — total and labeled by
/// {method,code} — serve.errors, serve.batches, serve.batch_size,
/// serve.queue_ms, serve.request_ms); the `stats` method returns a live
/// snapshot, and --metrics-out exports JSON or Prometheus text on exit.
/// Request completions are NDJSON-logged at info level; requests slower
/// than SlowMs dump their span ring at warn level.
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_SERVE_SERVER_H
#define VEGA_SERVE_SERVER_H

#include "core/VegaSession.h"
#include "obs/Request.h"
#include "serve/Protocol.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace vega {
namespace serve {

struct ServerOptions {
  /// Most pending requests merged into one generation fan-out.
  int MaxBatch = 8;
  /// Requests slower than this (milliseconds, queue wait included) dump
  /// their flight-recorder span ring to the structured log at warn level.
  /// 0 disables the slow-request dump.
  double SlowMs = 0.0;
  bool Verbose = false;
};

/// The daemon. One instance serves one session; serveStream()/serveSocket()
/// block until shutdown (the `shutdown` method or transport EOF).
class VegaServer {
public:
  VegaServer(VegaSession &Session, ServerOptions Options);
  ~VegaServer();

  VegaServer(const VegaServer &) = delete;
  VegaServer &operator=(const VegaServer &) = delete;

  /// Enqueues one raw request line; the future resolves to the response
  /// line once the batching worker reaches it. Thread-safe.
  std::future<std::string> submitLine(std::string Line);

  /// submitLine + wait. Thread-safe; concurrent callers may be answered
  /// from one merged batch.
  std::string handleLine(const std::string &Line);

  /// Processes \p Lines as explicit batches of up to MaxBatch (bypassing
  /// the queue) and returns the responses in order. Used by tests to force
  /// a known batch composition.
  std::vector<std::string> handleLines(const std::vector<std::string> &Lines);

  /// NDJSON loop over a stream pair (the stdio transport). Returns after
  /// EOF or a `shutdown` request; every submitted request is answered, in
  /// submission order, before returning.
  Status serveStream(std::istream &In, std::ostream &Out);

  /// NDJSON loop over an AF_UNIX socket at \p Path (created fresh; an
  /// existing file is replaced). One thread per connection; batching still
  /// happens in the single worker, so concurrent connections batch
  /// together. Returns after a `shutdown` request.
  Status serveSocket(const std::string &Path);

  /// True once a `shutdown` request was processed (or shutdown() called).
  bool shutdownRequested() const {
    return Shutdown.load(std::memory_order_relaxed);
  }

  /// Requests shutdown from outside a transport (tests, signal handlers).
  void shutdown();

private:
  struct PendingRequest {
    std::string Line;
    /// Created at submission; shared with the batch worker so elapsed time
    /// covers queue wait, not just processing.
    std::shared_ptr<obs::RequestContext> Ctx;
    std::promise<std::string> Promise;
  };

  void workerLoop();
  /// Answers one batch of raw lines (the core of the daemon). Serialized
  /// by BatchMu — the session's pool fan-out is not reentrant. \p Ctxs is
  /// index-parallel with \p Lines; null entries get a fresh context.
  std::vector<std::string>
  processBatch(const std::vector<std::string> &Lines,
               const std::vector<std::shared_ptr<obs::RequestContext>> &Ctxs);
  std::vector<std::string> processBatch(const std::vector<std::string> &Lines);
  Json handleInfo() const;
  /// The `stats` RPC payload: schema vega-stats-1 with uptime, in-flight /
  /// queue depth, the serve counters, and per-histogram quantiles.
  Json handleStats();

  VegaSession &Session;
  ServerOptions Options;
  std::chrono::steady_clock::time_point StartTime;

  std::mutex QueueMu;
  std::condition_variable QueueCv;
  std::deque<PendingRequest> Queue;
  bool Stopping = false; ///< guarded by QueueMu; set by the destructor
  std::atomic<bool> Shutdown{false};
  /// Requests submitted via submitLine and not yet answered.
  std::atomic<uint64_t> InFlight{0};
  std::mutex BatchMu;
  std::thread Worker;
};

} // namespace serve
} // namespace vega

#endif // VEGA_SERVE_SERVER_H
