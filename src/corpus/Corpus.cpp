//===- corpus/Corpus.cpp - The backend corpus --------------------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

#include "ast/Normalize.h"
#include "ast/Parser.h"
#include "corpus/SynthFramework.h"
#include "corpus/SynthTargetDesc.h"
#include "lexer/Lexer.h"

#include <cassert>

using namespace vega;

const BackendFunction *Backend::find(const std::string &InterfaceName) const {
  for (const auto &F : Functions)
    if (F->InterfaceName == InterfaceName)
      return F.get();
  return nullptr;
}

size_t Backend::statementCount() const {
  size_t N = 0;
  for (const auto &F : Functions)
    N += F->AST.size();
  return N;
}

std::vector<std::string> vega::splitFunctionSources(std::string_view Source) {
  Lexer L(Source);
  std::vector<Token> Tokens = L.lexAll();
  std::vector<std::string> Pieces;
  size_t I = 0;
  while (I < Tokens.size()) {
    size_t Start = I;
    // Scan to the first '{' at bracket depth 0, then to its matching '}'.
    int ParenDepth = 0;
    while (I < Tokens.size()) {
      const Token &T = Tokens[I];
      if (T.isPunct("(") || T.isPunct("["))
        ++ParenDepth;
      else if (T.isPunct(")") || T.isPunct("]"))
        --ParenDepth;
      else if (ParenDepth == 0 && T.isPunct("{"))
        break;
      ++I;
    }
    if (I == Tokens.size())
      break;
    int BraceDepth = 0;
    for (; I < Tokens.size(); ++I) {
      if (Tokens[I].isPunct("{"))
        ++BraceDepth;
      else if (Tokens[I].isPunct("}") && --BraceDepth == 0)
        break;
    }
    if (I == Tokens.size())
      break;
    size_t Begin = Tokens[Start].Offset;
    size_t End = Tokens[I].Offset + Tokens[I].Text.size();
    Pieces.emplace_back(Source.substr(Begin, End - Begin));
    ++I;
  }
  return Pieces;
}

namespace {

/// If \p Outer's whole body is "return Helper(...);" and \p Helper is
/// available, splice the helper's body in (the paper's §3.1 inlining,
/// e.g. GetRelocTypeInner into getRelocType).
void inlineForwardingHelper(FunctionAST &Outer,
                            const std::vector<FunctionAST> &Helpers) {
  if (Outer.Body.size() != 1 || Outer.Body[0]->Kind != StmtKind::Return)
    return;
  const std::vector<Token> &Toks = Outer.Body[0]->Tokens;
  // Shape: return <Identifier> ( ... ) ;
  if (Toks.size() < 5 || !Toks[0].isKeyword("return") ||
      Toks[1].Kind != TokenKind::Identifier || !Toks[2].isPunct("("))
    return;
  const std::string &CalleeName = Toks[1].Text;
  for (const FunctionAST &Helper : Helpers) {
    if (Helper.Name != CalleeName)
      continue;
    FunctionAST Clone = Helper.clone();
    Outer.Body = std::move(Clone.Body);
    return;
  }
}

} // namespace

Expected<FunctionAST> vega::preprocessFunctionSource(std::string_view Source) {
  std::vector<std::string> Pieces = splitFunctionSources(Source);
  if (Pieces.empty())
    return makeError<FunctionAST>("no function definitions found in source");

  std::vector<FunctionAST> Parsed;
  for (const std::string &Piece : Pieces) {
    Expected<FunctionAST> F = parseFunction(Piece);
    if (!F)
      return makeError<FunctionAST>(F.getError());
    Parsed.push_back(std::move(*F));
  }

  FunctionAST Interface = std::move(Parsed.front());
  if (Parsed.size() > 1) {
    std::vector<FunctionAST> Helpers;
    for (size_t I = 1; I < Parsed.size(); ++I)
      Helpers.push_back(std::move(Parsed[I]));
    inlineForwardingHelper(Interface, Helpers);
  }
  normalizeSelectionStatements(Interface);
  return Interface;
}

BackendCorpus BackendCorpus::build(const TargetDatabase &DB) {
  BackendCorpus Corpus;
  Corpus.DB = DB;
  renderFramework(Corpus.VFS);

  for (const TargetTraits &Traits : Corpus.DB.targets()) {
    renderTargetDescription(Corpus.VFS, Traits);

    auto B = std::make_unique<Backend>();
    B->TargetName = Traits.Name;
    for (const InterfaceFunctionSpec &Spec : interfaceFunctions()) {
      if (!Spec.AppliesTo(Traits))
        continue;
      auto F = std::make_unique<BackendFunction>();
      F->InterfaceName = Spec.Name;
      F->TargetName = Traits.Name;
      F->Module = Spec.Module;
      F->Source = Spec.Render(Traits);
      Expected<FunctionAST> AST = preprocessFunctionSource(F->Source);
      if (!AST)
        reportFatalError("golden source for " + Spec.Name + " on " +
                         Traits.Name + " failed to parse: " + AST.getError());
      F->AST = std::move(*AST);
      assert(F->AST.Name == Spec.Name &&
             "rendered function name must match its interface spec");
      B->Functions.push_back(std::move(F));
    }
    Corpus.Backends.push_back(std::move(B));
  }
  return Corpus;
}

const Backend *BackendCorpus::backend(const std::string &TargetName) const {
  for (const auto &B : Backends)
    if (B->TargetName == TargetName)
      return B.get();
  return nullptr;
}

std::vector<FunctionGroup> BackendCorpus::functionGroups(
    const std::vector<std::string> &TargetNames) const {
  std::vector<FunctionGroup> Groups;
  for (const InterfaceFunctionSpec &Spec : interfaceFunctions()) {
    FunctionGroup Group;
    Group.InterfaceName = Spec.Name;
    Group.Module = Spec.Module;
    for (const std::string &Name : TargetNames) {
      const Backend *B = backend(Name);
      if (!B)
        continue;
      if (const BackendFunction *F = B->find(Spec.Name))
        Group.Members.push_back(F);
    }
    if (!Group.Members.empty())
      Groups.push_back(std::move(Group));
  }
  return Groups;
}

std::vector<std::string> BackendCorpus::trainingTargetNames() const {
  std::vector<std::string> Names;
  for (const TargetTraits *T : DB.trainingTargets())
    Names.push_back(T->Name);
  return Names;
}

std::vector<FunctionGroup> BackendCorpus::trainingGroups() const {
  return functionGroups(trainingTargetNames());
}
