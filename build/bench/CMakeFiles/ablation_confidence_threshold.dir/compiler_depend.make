# Empty compiler generated dependencies file for ablation_confidence_threshold.
# This may be replaced when dependencies are built.
