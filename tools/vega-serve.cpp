//===- tools/vega-serve.cpp - The VEGA generation daemon ----------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// Long-running generation daemon: loads one .vega session artifact and
/// answers newline-delimited JSON-RPC 2.0 requests — over stdio by default,
/// or an AF_UNIX socket with --socket. Requests co-batch in the continuous
/// decode-step scheduler. See README "Serving" for the wire protocol and
/// request examples:
///
///   printf '%s\n' '{"id":1,"method":"generate","params":{"target":"RISCV"}}' \
///     | vega-serve --session=warm.vega
///
/// With --router the process becomes a fleet front-end instead: shards are
/// other vega-serve daemons behind AF_UNIX sockets (repeatable
/// --shard=path) and/or in-process shards over the same artifact
/// (--local-shards=N); the target space is partitioned round-robin and
/// requests forward verbatim to the owning shard:
///
///   vega-serve --router --shard /tmp/s0.sock --shard /tmp/s1.sock
///   vega-serve --router --session=warm.vega --local-shards=2
///
//===----------------------------------------------------------------------===//

#include "obs/Log.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "serve/Router.h"
#include "serve/Server.h"
#include "support/ArgParse.h"

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <vector>

using namespace vega;

int main(int argc, char **argv) {
  ArgParse Args("vega-serve",
                "continuous-batching JSON-RPC generation daemon over a .vega "
                "session");
  Args.addOption("session", "file.vega",
                 "session artifact to serve (required unless --router runs "
                 "on --shard sockets only)");
  Args.addOption("socket", "path",
                 "listen on an AF_UNIX socket instead of stdio");
  Args.addOption("jobs", "N", "Stage-3 generation lanes (default: auto)");
  Args.addOption("precision", "fp32|int8",
                 "inference precision of the decode logit GEMM", "fp32");
  Args.addOption("prefix-sharing", "on|off",
                 "decode fast paths reusing shared KV prefixes (byte-"
                 "identical either way)", "on");
  Args.addOption("window", "N",
                 "most generations decoding concurrently (the scheduler's "
                 "admission window)", "8");
  Args.addOption("max-batch", "N",
                 "deprecated alias for --window (kept for vega-serve-1 "
                 "scripts)");
  Args.addOption("max-queue", "N",
                 "most requests waiting for admission before rejecting with "
                 "-32005 overloaded (0 = unbounded)", "64");
  Args.addFlag("router",
               "route across shards instead of serving one session");
  Args.addOption("shard", "path",
                 "AF_UNIX socket of a shard daemon (repeatable; --router)");
  Args.addOption("local-shards", "N",
                 "spin up N in-process shards over --session (--router)", "0");
  Args.addOption("shard-window", "N",
                 "most in-flight forwards per shard before -32005 (--router; "
                 "0 = unbounded)", "16");
  Args.addOption("trace-out", "file", "write a Chrome/Perfetto trace on exit");
  Args.addOption("metrics-out", "file", "write metrics on exit");
  Args.addOption("metrics-format", "json|prometheus",
                 "metrics-out format (default: by extension, .prom = "
                 "prometheus, else json)");
  Args.addOption("log-level", "level",
                 "NDJSON log level on stderr: debug|info|warn|error|off "
                 "(default: $VEGA_LOG or off)");
  Args.addOption("slow-ms", "ms",
                 "warn-log the span flight recorder of requests slower than "
                 "this many milliseconds (0 = off)", "0");
  Args.addFlag("stats", "print a text metrics summary on exit");
  Args.addFlag("verbose", "log scheduler/router notes to stderr");

  if (Status St = Args.parse(argc, argv); !St.isOk()) {
    std::fprintf(stderr, "vega-serve: %s\n%s", St.toString().c_str(),
                 Args.usage().c_str());
    return St.toExitCode();
  }
  const bool Router = Args.has("router");
  const std::vector<std::string> &ShardSockets = Args.getAll("shard");
  const int LocalShards = Args.getInt("local-shards", 0);
  const bool NeedsSession = !Router || LocalShards > 0;
  if (NeedsSession && !Args.has("session")) {
    Status St = Status::invalidArgument("--session=<file.vega> is required");
    std::fprintf(stderr, "vega-serve: %s\n%s", St.toString().c_str(),
                 Args.usage().c_str());
    return St.toExitCode();
  }
  if (Router && ShardSockets.empty() && LocalShards <= 0) {
    Status St = Status::invalidArgument(
        "--router needs --shard sockets and/or --local-shards=N");
    std::fprintf(stderr, "vega-serve: %s\n%s", St.toString().c_str(),
                 Args.usage().c_str());
    return St.toExitCode();
  }

  if (Args.has("trace-out"))
    obs::TraceRecorder::instance().setEnabled(true);
  if (Args.has("metrics-out") || Args.has("stats"))
    obs::MetricsRegistry::instance().setEnabled(true);
  if (Args.has("log-level")) {
    std::optional<obs::LogLevel> Level =
        obs::Logger::parseLevel(Args.get("log-level"));
    if (!Level) {
      std::fprintf(stderr, "vega-serve: unknown log level '%s'\n",
                   Args.get("log-level").c_str());
      return 2;
    }
    obs::Logger::instance().setLevel(*Level);
  }

  // One knob-application pass per loaded session (each local shard loads
  // its own copy, so every shard gets the same precision/lane settings).
  auto ConfigureSession = [&](VegaSession &Session) -> Status {
    if (Args.has("jobs"))
      Session.setJobs(Args.getInt("jobs", 0));
    if (Args.has("precision")) {
      std::optional<Precision> P = parsePrecision(Args.get("precision"));
      if (!P)
        return Status::invalidArgument("unknown --precision '" +
                                       Args.get("precision") +
                                       "' (expected fp32 or int8)");
      Session.setPrecision(*P);
    }
    if (Args.has("prefix-sharing")) {
      const std::string &V = Args.get("prefix-sharing");
      if (V != "on" && V != "off")
        return Status::invalidArgument("unknown --prefix-sharing '" + V +
                                       "' (expected on or off)");
      Session.setPrefixSharing(V == "on");
    }
    return Status::ok();
  };

  serve::ServerOptions Options;
  Options.Window = Args.has("max-batch") ? Args.getInt("max-batch", 8)
                                         : Args.getInt("window", 8);
  Options.MaxQueue = Args.getInt("max-queue", 64);
  Options.SlowMs = std::atof(Args.get("slow-ms").c_str());
  Options.Verbose = Args.has("verbose");

  Status ServeStatus = Status::ok();
  if (Router) {
    std::vector<std::unique_ptr<serve::ShardEndpoint>> Endpoints;
    for (size_t I = 0; I < ShardSockets.size(); ++I)
      Endpoints.push_back(std::make_unique<serve::SocketShard>(
          "socket" + std::to_string(I), ShardSockets[I]));
    for (int I = 0; I < LocalShards; ++I) {
      StatusOr<std::unique_ptr<VegaSession>> Session =
          VegaSession::load(Args.get("session"));
      if (!Session.isOk()) {
        std::fprintf(stderr, "vega-serve: %s\n",
                     Session.status().toString().c_str());
        return Session.status().toExitCode();
      }
      if (Status St = ConfigureSession(**Session); !St.isOk()) {
        std::fprintf(stderr, "vega-serve: %s\n", St.toString().c_str());
        return St.toExitCode();
      }
      Endpoints.push_back(std::make_unique<serve::LocalShard>(
          "local" + std::to_string(I), std::move(Session.value()), Options));
    }
    serve::RouterOptions RouterOpts;
    RouterOpts.ShardWindow = Args.getInt("shard-window", 16);
    RouterOpts.Verbose = Args.has("verbose");
    serve::VegaRouter Fleet(std::move(Endpoints), RouterOpts);
    if (Status St = Fleet.init(); !St.isOk()) {
      std::fprintf(stderr, "vega-serve: %s\n", St.toString().c_str());
      return St.toExitCode();
    }
    if (RouterOpts.Verbose)
      std::fprintf(stderr,
                   "vega-serve: routing %zu targets across %zu shards on %s\n",
                   Fleet.shardMap().size(), Fleet.shardCount(),
                   Args.has("socket") ? Args.get("socket").c_str() : "stdio");
    ServeStatus = Args.has("socket") ? Fleet.serveSocket(Args.get("socket"))
                                     : Fleet.serveStream(std::cin, std::cout);
  } else {
    StatusOr<std::unique_ptr<VegaSession>> Session =
        VegaSession::load(Args.get("session"));
    if (!Session.isOk()) {
      std::fprintf(stderr, "vega-serve: %s\n",
                   Session.status().toString().c_str());
      return Session.status().toExitCode();
    }
    if (Status St = ConfigureSession(**Session); !St.isOk()) {
      std::fprintf(stderr, "vega-serve: %s\n", St.toString().c_str());
      return St.toExitCode();
    }
    if (Options.Verbose)
      std::fprintf(stderr, "vega-serve: session '%s' loaded, serving on %s\n",
                   Args.get("session").c_str(),
                   Args.has("socket") ? Args.get("socket").c_str() : "stdio");
    serve::VegaServer Server(**Session, Options);
    ServeStatus = Args.has("socket") ? Server.serveSocket(Args.get("socket"))
                                     : Server.serveStream(std::cin, std::cout);
  }
  if (!ServeStatus.isOk())
    std::fprintf(stderr, "vega-serve: %s\n", ServeStatus.toString().c_str());

  int Rc = ServeStatus.toExitCode();
  if (Args.has("trace-out") &&
      !obs::TraceRecorder::instance().writeChromeTrace(Args.get("trace-out"))) {
    std::fprintf(stderr, "vega-serve: error: cannot write trace to '%s'\n",
                 Args.get("trace-out").c_str());
    Rc = Rc ? Rc : 1;
  }
  if (Args.has("metrics-out")) {
    const std::string &Path = Args.get("metrics-out");
    std::string Format = Args.get("metrics-format");
    if (Format.empty())
      Format = Path.size() >= 5 && Path.rfind(".prom") == Path.size() - 5
                   ? "prometheus"
                   : "json";
    auto &Metrics = obs::MetricsRegistry::instance();
    bool Written = Format == "prometheus" ? Metrics.writePrometheus(Path)
                                          : Metrics.writeJson(Path);
    if (!Written) {
      std::fprintf(stderr, "vega-serve: error: cannot write metrics to '%s'\n",
                   Path.c_str());
      Rc = Rc ? Rc : 1;
    }
  }
  if (Args.has("stats"))
    std::printf("%s", obs::MetricsRegistry::instance().textSummary().c_str());
  return Rc;
}
