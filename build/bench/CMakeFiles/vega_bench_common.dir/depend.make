# Empty dependencies file for vega_bench_common.
# This may be replaced when dependencies are built.
