//===- repair/RepairEngine.cpp - Oracle-validated auto-repair ----------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "repair/RepairEngine.h"

#include "ast/Statement.h"
#include "eval/EffortModel.h"
#include "eval/EvalSpecs.h"
#include "interp/Interpreter.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

using namespace vega;
using namespace vega::repair;

Status RepairOptions::validate() const {
  if (BeamWidth < 1 || BeamWidth > 64)
    return Status::invalidArgument("beam width must be in [1, 64], got " +
                                   std::to_string(BeamWidth));
  if (MaxRounds < 1 || MaxRounds > 16)
    return Status::invalidArgument("max rounds must be in [1, 16], got " +
                                   std::to_string(MaxRounds));
  if (CSThreshold < 0.0 || CSThreshold > 1.0)
    return Status::invalidArgument("CS threshold must be in [0, 1], got " +
                                   std::to_string(CSThreshold));
  if (MaxSitesPerFunction < 1)
    return Status::invalidArgument("site budget must be >= 1, got " +
                                   std::to_string(MaxSitesPerFunction));
  if (RejectedConfidenceFloor < 0.0 || RejectedConfidenceFloor > 1.0)
    return Status::invalidArgument(
        "rejected-confidence floor must be in [0, 1], got " +
        std::to_string(RejectedConfidenceFloor));
  return Status::ok();
}

namespace {

/// The gating oracle a run actually uses: the configured one, or the
/// historical text oracle when none was supplied.
const eval::Oracle &gatingOracle(const RepairOptions &Options) {
  return Options.OracleImpl ? *Options.OracleImpl : eval::textOracle();
}

/// (RowIndex, CandidateValue, CtxValue) — the exact decode-site identity.
/// CtxValue must participate: a child row under a repeatable parent decodes
/// once per parent candidate, same RowIndex, different context.
using SiteKey = std::tuple<int, std::string, std::string>;

SiteKey keyOf(const GeneratedStatement &GS) {
  return {GS.RowIndex, GS.CandidateValue, GS.CtxValue};
}
SiteKey keyOf(const DecodeSite &Site) {
  return {Site.RowIndex, Site.CandidateValue, Site.CtxValue};
}

// GeneratedFunction owns its AST (unique_ptr statement tree), so the
// repaired backend starts as an explicit deep copy of the input.
GeneratedFunction cloneFunction(const GeneratedFunction &F) {
  GeneratedFunction C;
  C.InterfaceName = F.InterfaceName;
  C.Module = F.Module;
  C.Confidence = F.Confidence;
  C.Emitted = F.Emitted;
  C.AST = F.AST.clone();
  C.Statements = F.Statements;
  C.MultiTargetDerived = F.MultiTargetDerived;
  C.Seconds = F.Seconds;
  return C;
}

GeneratedBackend cloneBackend(const GeneratedBackend &B) {
  GeneratedBackend C;
  C.TargetName = B.TargetName;
  C.ModuleSeconds = B.ModuleSeconds;
  C.Functions.reserve(B.Functions.size());
  for (const GeneratedFunction &F : B.Functions)
    C.Functions.push_back(cloneFunction(F));
  return C;
}

} // namespace

struct RepairEngine::FunctionTask {
  size_t FunctionIdx = 0; ///< index into Backend.Functions
  const GeneratedFunction *Baseline = nullptr;
  const TemplateInfo *TI = nullptr;
  const BackendFunction *Golden = nullptr;
};

struct RepairEngine::FunctionResult {
  FunctionRepair Outcome;
  /// Set only when the repaired function fully passes the oracle.
  std::optional<GeneratedFunction> Replacement;
  std::vector<StatementRepair> Repairs;
  std::vector<RejectedCandidate> Rejected;
};

RepairEngine::RepairEngine(VegaSystem &System, RepairOptions Options)
    : System(System), Options(Options) {}

RepairEngine::~RepairEngine() = default;

RepairEngine::FunctionResult
RepairEngine::repairFunction(const FunctionTask &Task,
                             const TargetTraits &Traits,
                             const std::string &TargetName) {
  obs::Span FnSpan("repair.function", "repair");
  FnSpan.arg("function", Task.Baseline->InterfaceName);
  FnSpan.arg("target", TargetName);
  if (int Lane = ThreadPool::currentLane(); Lane >= 0)
    FnSpan.arg("worker", std::to_string(Lane));

  FunctionResult R;
  R.Outcome.InterfaceName = Task.Baseline->InterfaceName;
  R.Outcome.Module = Task.Baseline->Module;
  R.Outcome.BaselineEmitted = Task.Baseline->Emitted;

  const TemplateInfo &TI = *Task.TI;
  const FunctionAST &GoldenAST = Task.Golden->AST;
  const std::string &Iface = Task.Baseline->InterfaceName;

  // The per-site statement store. Seeded from the baseline decode so
  // in-process backends re-assemble without touching the model; sites
  // missing their keys (e.g. a backend restored from a disk snapshot that
  // predates site recording) simply re-decode — deterministically, to the
  // same statements.
  std::map<SiteKey, GeneratedStatement> Chosen;
  for (const GeneratedStatement &GS : Task.Baseline->Statements)
    Chosen.emplace(keyOf(GS), GS);

  auto Assemble = [&]() {
    VegaSystem::SiteChooser Choose =
        [&Chosen](const DecodeSite &Site) -> std::optional<GeneratedStatement> {
      auto It = Chosen.find(keyOf(Site));
      if (It != Chosen.end())
        return It->second;
      return std::nullopt;
    };
    GeneratedFunction Fn = System.assembleFunction(TI, TargetName, Choose);
    // Absorb fresh decodes so every later trial re-assembles from the
    // store alone (one model decode per site, ever).
    for (const GeneratedStatement &GS : Fn.Statements)
      Chosen.emplace(keyOf(GS), GS);
    return Fn;
  };
  const eval::Oracle &Oracle = gatingOracle(Options);
  auto ScoreFn = [&](const GeneratedFunction &Fn) {
    if (!Fn.Emitted) {
      // An unemitted function implements nothing: it fails its oracle.
      eval::OracleVerdict S;
      S.Cases = 1;
      S.CandidateError = true;
      return S;
    }
    return Oracle.score(Fn.AST, GoldenAST, Iface, Traits);
  };

  GeneratedFunction Current = Assemble();
  eval::OracleVerdict CurScore = ScoreFn(Current);
  double BestFrac = CurScore.fraction();
  const int DefIndex = TI.FT.Definition->Index;

  std::map<SiteKey, std::vector<GeneratedStatement>> BeamCache;
  std::vector<StatementRepair> Pending;
  // Rounds revisit sites with the same cached beam, so the same refuted
  // candidate can be tried again; record each (site, text) once.
  std::set<std::pair<SiteKey, std::string>> RejectedSeen;

  for (int Round = 1;
       Round <= Options.MaxRounds && !(CurScore.full() && Current.Emitted);
       ++Round) {
    bool Improved = false;

    // Confidence-guided triage (the automated Table-3 workflow): visit the
    // current assembly's sites lowest-confidence first — a suppressed
    // definition or statement naturally sorts to the front — capped by the
    // per-function budget. Stable sort keeps template order within ties.
    std::vector<DecodeSite> Sites;
    for (const GeneratedStatement &GS : Current.Statements)
      Sites.push_back({GS.RowIndex, GS.CandidateValue, GS.CtxValue});
    std::stable_sort(Sites.begin(), Sites.end(),
                     [&](const DecodeSite &A, const DecodeSite &B) {
                       return Chosen.at(keyOf(A)).Confidence <
                              Chosen.at(keyOf(B)).Confidence;
                     });
    if (Sites.size() > static_cast<size_t>(Options.MaxSitesPerFunction))
      Sites.resize(static_cast<size_t>(Options.MaxSitesPerFunction));

    for (const DecodeSite &Site : Sites) {
      ++R.Outcome.SitesExamined;
      SiteKey Key = keyOf(Site);
      auto CacheIt = BeamCache.find(Key);
      if (CacheIt == BeamCache.end())
        CacheIt = BeamCache
                      .emplace(Key, System.beamCandidatesForSite(
                                        TI, Site, TargetName,
                                        Options.BeamWidth))
                      .first;

      const GeneratedStatement Keep = Chosen.at(Key);
      // Trial list: every beam candidate force-emitted (acceptance is
      // oracle-gated, so the confidence threshold must not veto a correct
      // low-confidence statement), plus one suppression probe — golden may
      // simply lack this statement. Never suppress the definition: an
      // unemitted function cannot pass.
      std::vector<GeneratedStatement> Trials;
      for (const GeneratedStatement &Cand : CacheIt->second) {
        GeneratedStatement T = Cand;
        T.Emitted = !T.Tokens.empty();
        if (T.Tokens == Keep.Tokens && T.Emitted == Keep.Emitted)
          continue;
        Trials.push_back(std::move(T));
      }
      if (Site.RowIndex != DefIndex && Keep.Emitted) {
        GeneratedStatement T = Keep;
        T.Emitted = false;
        Trials.push_back(std::move(T));
      }

      for (const GeneratedStatement &T : Trials) {
        ++R.Outcome.CandidatesTried;
        Chosen[Key] = T;
        GeneratedFunction Trial = Assemble();
        eval::OracleVerdict S = ScoreFn(Trial);
        double Frac = S.fraction();
        // Strict-improvement hill climbing, first-wins within a site: beam
        // rank breaks ties, keeping the search deterministic.
        if (Frac > BestFrac) {
          StatementRepair Rep;
          Rep.InterfaceName = Iface;
          Rep.Module = Task.Baseline->Module;
          Rep.RowIndex = Site.RowIndex;
          Rep.CandidateValue = Site.CandidateValue;
          Rep.CtxValue = Site.CtxValue;
          Rep.OldText = renderTokens(Keep.Tokens);
          Rep.NewText = renderTokens(T.Tokens);
          Rep.OldEmitted = Keep.Emitted;
          Rep.NewEmitted = T.Emitted;
          Rep.OldConfidence = Keep.Confidence;
          Rep.NewConfidence = T.Confidence;
          Rep.Round = Round;
          Pending.push_back(std::move(Rep));
          Current = std::move(Trial);
          CurScore = S;
          BestFrac = Frac;
          Improved = true;
          break;
        }
        // The oracle refuted this candidate. Record it as a harvestable
        // hard negative when the model was confident in it — suppression
        // probes (unemitted trials) carry no statement to learn from and
        // are skipped.
        if (Options.CollectRejected && T.Emitted && !T.Tokens.empty() &&
            T.Confidence >= Options.RejectedConfidenceFloor &&
            RejectedSeen.emplace(Key, renderTokens(T.Tokens)).second) {
          RejectedCandidate RC;
          RC.InterfaceName = Iface;
          RC.Module = Task.Baseline->Module;
          RC.RowIndex = Site.RowIndex;
          RC.CandidateValue = Site.CandidateValue;
          RC.CtxValue = Site.CtxValue;
          RC.Text = renderTokens(T.Tokens);
          RC.Confidence = T.Confidence;
          RC.Round = Round;
          R.Rejected.push_back(std::move(RC));
        }
        Chosen[Key] = Keep;
      }
      if (CurScore.full() && Current.Emitted) {
        R.Outcome.RepairedAtRound = Round;
        break;
      }
    }
    if (!Improved)
      break; // fixed point: another round would retry the same trials
  }

  // Oracle-gated commit: the repaired function replaces the baseline only
  // when it fully passes the behavioural oracle. Partial improvements
  // guided the search but are discarded — the backend never regresses.
  if (CurScore.full() && Current.Emitted) {
    R.Outcome.RepairedPassed = true;
    R.Outcome.StatementsReplaced = Pending.size();
    R.Repairs = std::move(Pending);
    R.Replacement = std::move(Current);
  }
  return R;
}

StatusOr<RepairReport> RepairEngine::repairBackend(
    const GeneratedBackend &Backend) {
  if (Status St = Options.validate(); !St.isOk())
    return St;
  const BackendCorpus &Corpus = System.corpus();
  const TargetTraits *Traits = Corpus.targets().find(Backend.TargetName);
  if (!Traits)
    return Status::invalidArgument("unknown target '" + Backend.TargetName +
                                   "'");
  const vega::Backend *Golden = Corpus.backend(Backend.TargetName);
  if (!Golden)
    return Status::failedPrecondition("target '" + Backend.TargetName +
                                      "' has no golden backend to serve as "
                                      "the repair oracle");

  obs::Span RepairSpan("repair.backend", "repair");
  RepairSpan.arg("target", Backend.TargetName);
  RepairSpan.arg("beam", std::to_string(Options.BeamWidth));
  RepairSpan.arg("rounds", std::to_string(Options.MaxRounds));

  RepairReport Report;
  Report.TargetName = Backend.TargetName;
  Report.Options = Options;
  Report.BaselineEval = evaluateBackend(Backend, *Golden, *Traits,
                                        gatingOracle(Options),
                                        Options.Classifier);

  // Flag = golden exists and greedy pass@1 failed (wrong or never
  // emitted). Spurious functions (no golden) are skipped: the oracle has
  // nothing to validate them against.
  std::vector<FunctionTask> Tasks;
  for (size_t I = 0; I < Backend.Functions.size(); ++I) {
    const FunctionEval &FE = Report.BaselineEval.Functions[I];
    if (!FE.GoldenExists || FE.Accurate)
      continue;
    FunctionTask Task;
    Task.FunctionIdx = I;
    Task.Baseline = &Backend.Functions[I];
    Task.TI = System.findTemplate(FE.InterfaceName);
    Task.Golden = Golden->find(FE.InterfaceName);
    if (!Task.TI || !Task.Golden)
      continue;
    Tasks.push_back(Task);
  }
  Report.FunctionsFlagged = Tasks.size();

  // Per-function fan-out with a deterministic index-ordered merge. Repairs
  // are independent (each function owns its site store and beam cache), so
  // the merged report is byte-identical at any lane count. The engine owns
  // its pool — Stage-3 generation is not running, and ThreadPool fan-outs
  // must not nest.
  System.model()->prepareGenerate();
  if (!Pool)
    Pool = std::make_unique<ThreadPool>(Options.Jobs);
  std::vector<FunctionResult> Results(Tasks.size());
  Pool->parallelFor(Tasks.size(), [&](size_t I) {
    Results[I] = repairFunction(Tasks[I], *Traits, Backend.TargetName);
  });

  Report.RepairedBackend = cloneBackend(Backend);
  for (size_t I = 0; I < Tasks.size(); ++I) {
    FunctionResult &R = Results[I];
    if (R.Replacement) {
      ++Report.FunctionsRepaired;
      Report.StatementsAutoRepaired += R.Outcome.StatementsReplaced;
      Report.RepairedBackend.Functions[Tasks[I].FunctionIdx] =
          std::move(*R.Replacement);
    }
    Report.CandidatesTried += R.Outcome.CandidatesTried;
    Report.Functions.push_back(std::move(R.Outcome));
    for (StatementRepair &Rep : R.Repairs)
      Report.Repairs.push_back(std::move(Rep));
    for (RejectedCandidate &RC : R.Rejected)
      Report.Rejected.push_back(std::move(RC));
  }

  // Per-round pass@k: every committed repair flips exactly one flagged
  // function to accurate and the evaluated population is unchanged, so the
  // round-r accuracy is the baseline count plus the repairs landed by then.
  size_t Denom = 0, BaseAccurate = 0;
  for (const FunctionEval &FE : Report.BaselineEval.Functions) {
    if (!FE.GoldenExists && !FE.Generated)
      continue;
    ++Denom;
    if (FE.Accurate)
      ++BaseAccurate;
  }
  for (int Round = 1; Round <= Options.MaxRounds; ++Round) {
    RoundStats Stats;
    Stats.Round = Round;
    for (const FunctionRepair &F : Report.Functions)
      if (F.RepairedAtRound > 0 && F.RepairedAtRound <= Round)
        ++Stats.FunctionsRepaired;
    Stats.FunctionAccuracy =
        Denom == 0 ? 0.0
                   : static_cast<double>(BaseAccurate + Stats.FunctionsRepaired) /
                         static_cast<double>(Denom);
    Report.Rounds.push_back(Stats);
  }

  Report.RepairedEval =
      evaluateBackend(Report.RepairedBackend, *Golden, *Traits,
                      gatingOracle(Options), Options.Classifier);
  Report.BaselineHoursA = totalRepairHours(Report.BaselineEval, developerA());
  Report.RepairedHoursA = totalRepairHours(Report.RepairedEval, developerA());
  Report.BaselineHoursB = totalRepairHours(Report.BaselineEval, developerB());
  Report.RepairedHoursB = totalRepairHours(Report.RepairedEval, developerB());

  auto &Metrics = obs::MetricsRegistry::instance();
  Metrics.addCounter("repair.backends");
  Metrics.addCounter("repair.functions_flagged", Report.FunctionsFlagged);
  Metrics.addCounter("repair.functions_repaired", Report.FunctionsRepaired);
  Metrics.addCounter("repair.statements_repaired",
                     Report.StatementsAutoRepaired);
  Metrics.addCounter("repair.candidates_tried", Report.CandidatesTried);
  return Report;
}
