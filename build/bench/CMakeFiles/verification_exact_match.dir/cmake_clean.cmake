file(REMOVE_RECURSE
  "CMakeFiles/verification_exact_match.dir/verification_exact_match.cpp.o"
  "CMakeFiles/verification_exact_match.dir/verification_exact_match.cpp.o.d"
  "verification_exact_match"
  "verification_exact_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verification_exact_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
