# Empty compiler generated dependencies file for tablegen_test.
# This may be replaced when dependencies are built.
