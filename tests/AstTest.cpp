//===- tests/AstTest.cpp - vega_ast unit tests --------------------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "ast/Normalize.h"
#include "ast/Parser.h"
#include "lexer/Lexer.h"

#include <gtest/gtest.h>

using namespace vega;

namespace {

const char *RelocSource = R"(
unsigned ARMELFObjectWriter::getRelocType(const MCValue &Target, const MCFixup &Fixup, bool IsPCRel) const {
  unsigned Kind = Fixup.getTargetKind();
  if (IsPCRel) {
    switch (Kind) {
    case ARM::fixup_arm_branch24:
      return ELF::R_ARM_BRANCH24;
    default:
      report_fatal_error("invalid fixup kind");
    }
  }
  return ELF::R_ARM_NONE;
}
)";

} // namespace

TEST(Parser, ParsesFunctionNameAndQualifier) {
  auto Fn = parseFunction(RelocSource);
  ASSERT_TRUE(static_cast<bool>(Fn));
  EXPECT_EQ(Fn->Name, "getRelocType");
  EXPECT_EQ(Fn->Qualifier, "ARMELFObjectWriter");
}

TEST(Parser, BuildsNestedStatementTree) {
  auto Fn = parseFunction(RelocSource);
  ASSERT_TRUE(static_cast<bool>(Fn));
  ASSERT_EQ(Fn->Body.size(), 3u); // decl, if, return
  EXPECT_EQ(Fn->Body[0]->Kind, StmtKind::Decl);
  EXPECT_EQ(Fn->Body[1]->Kind, StmtKind::If);
  EXPECT_EQ(Fn->Body[2]->Kind, StmtKind::Return);
  // The if owns the switch; the switch owns case + default labels.
  ASSERT_EQ(Fn->Body[1]->Children.size(), 1u);
  const Statement &Switch = *Fn->Body[1]->Children[0];
  EXPECT_EQ(Switch.Kind, StmtKind::Switch);
  ASSERT_EQ(Switch.Children.size(), 2u);
  EXPECT_EQ(Switch.Children[0]->Kind, StmtKind::Case);
  EXPECT_EQ(Switch.Children[1]->Kind, StmtKind::Default);
  ASSERT_EQ(Switch.Children[0]->Children.size(), 1u);
  EXPECT_EQ(Switch.Children[0]->Children[0]->Kind, StmtKind::Return);
}

TEST(Parser, RenderReparseRoundTripPreservesTokens) {
  auto Fn = parseFunction(RelocSource);
  ASSERT_TRUE(static_cast<bool>(Fn));
  std::string Rendered = Fn->render();
  auto Fn2 = parseFunction(Rendered);
  ASSERT_TRUE(static_cast<bool>(Fn2));
  auto Flat1 = Fn->flatten();
  auto Flat2 = Fn2->flatten();
  ASSERT_EQ(Flat1.size(), Flat2.size());
  for (size_t I = 0; I < Flat1.size(); ++I)
    EXPECT_EQ(Flat1[I].Stmt->Tokens, Flat2[I].Stmt->Tokens)
        << "statement " << I << " differs after round trip";
}

TEST(Parser, ElseChainsParseAsSiblings) {
  const char *Src = R"(
int f(int x) {
  if (x == 1) {
    return 10;
  } else if (x == 2) {
    return 20;
  } else {
    return 30;
  }
}
)";
  auto Fn = parseFunction(Src);
  ASSERT_TRUE(static_cast<bool>(Fn));
  ASSERT_EQ(Fn->Body.size(), 3u);
  EXPECT_EQ(Fn->Body[0]->Kind, StmtKind::If);
  EXPECT_EQ(Fn->Body[1]->Kind, StmtKind::ElseIf);
  EXPECT_EQ(Fn->Body[2]->Kind, StmtKind::Else);

  // Round trip keeps the chain.
  auto Fn2 = parseFunction(Fn->render());
  ASSERT_TRUE(static_cast<bool>(Fn2));
  EXPECT_EQ(Fn2->Body.size(), 3u);
}

TEST(Parser, ClassifiesStatements) {
  EXPECT_EQ(parseStatementLine("unsigned Kind = f();").Kind, StmtKind::Decl);
  EXPECT_EQ(parseStatementLine("Kind = 3;").Kind, StmtKind::Assign);
  EXPECT_EQ(parseStatementLine("return 1;").Kind, StmtKind::Return);
  EXPECT_EQ(parseStatementLine("break;").Kind, StmtKind::Break);
  EXPECT_EQ(parseStatementLine("foo(1, 2);").Kind, StmtKind::Call);
  EXPECT_EQ(parseStatementLine("if (x) {").Kind, StmtKind::If);
  EXPECT_EQ(parseStatementLine("switch (Kind) {").Kind, StmtKind::Switch);
  EXPECT_EQ(parseStatementLine("case ARM::fixup:").Kind, StmtKind::Case);
  EXPECT_EQ(parseStatementLine("default:").Kind, StmtKind::Default);
  EXPECT_EQ(parseStatementLine("MCFixupKind Kind = x;").Kind, StmtKind::Decl);
}

TEST(Parser, RejectsGarbage) {
  EXPECT_FALSE(static_cast<bool>(parseFunction("")));
  EXPECT_FALSE(static_cast<bool>(parseFunction("int x;")));
}

TEST(Statement, TreeSizeCountsSubtree) {
  auto Fn = parseFunction(RelocSource);
  ASSERT_TRUE(static_cast<bool>(Fn));
  // definition + decl + if + switch + case + return + default + call + ret.
  EXPECT_EQ(Fn->size(), 9u);
}

TEST(Statement, CloneIsDeep) {
  auto Fn = parseFunction(RelocSource);
  ASSERT_TRUE(static_cast<bool>(Fn));
  FunctionAST Copy = Fn->clone();
  // Mutating the copy must not affect the original.
  Copy.Body[0]->Tokens.clear();
  EXPECT_FALSE(Fn->Body[0]->Tokens.empty());
  EXPECT_EQ(Copy.size(), Fn->size());
}

TEST(RenderTokens, SpacingIsCanonical) {
  auto Toks = Lexer::tokenize("return ELF :: R_ARM_NONE ;");
  EXPECT_EQ(renderTokens(Toks), "return ELF::R_ARM_NONE;");
  Toks = Lexer::tokenize("foo ( a , b )");
  EXPECT_EQ(renderTokens(Toks), "foo(a, b)");
}

TEST(Normalize, IfElifChainBecomesSwitch) {
  const char *Src = R"(
int f(int x) {
  if (x == 1) {
    return 10;
  } else if (x == 2) {
    return 20;
  } else {
    return 30;
  }
}
)";
  auto Fn = parseFunction(Src);
  ASSERT_TRUE(static_cast<bool>(Fn));
  unsigned Rewritten = normalizeSelectionStatements(*Fn);
  EXPECT_EQ(Rewritten, 1u);
  ASSERT_EQ(Fn->Body.size(), 1u);
  const Statement &Switch = *Fn->Body[0];
  EXPECT_EQ(Switch.Kind, StmtKind::Switch);
  ASSERT_EQ(Switch.Children.size(), 3u); // two cases + default
  EXPECT_EQ(Switch.Children[0]->Kind, StmtKind::Case);
  EXPECT_EQ(Switch.Children[2]->Kind, StmtKind::Default);
}

TEST(Normalize, LoneIfIsLeftAlone) {
  const char *Src = R"(
int f(int x) {
  if (x == 1) {
    return 10;
  }
  return 0;
}
)";
  auto Fn = parseFunction(Src);
  ASSERT_TRUE(static_cast<bool>(Fn));
  EXPECT_EQ(normalizeSelectionStatements(*Fn), 0u);
  EXPECT_EQ(Fn->Body[0]->Kind, StmtKind::If);
}

TEST(Normalize, NonEqualityChainIsLeftAlone) {
  const char *Src = R"(
int f(int x) {
  if (x < 1) {
    return 10;
  } else if (x == 2) {
    return 20;
  }
  return 0;
}
)";
  auto Fn = parseFunction(Src);
  ASSERT_TRUE(static_cast<bool>(Fn));
  EXPECT_EQ(normalizeSelectionStatements(*Fn), 0u);
}

TEST(Normalize, DifferentScrutineesAreLeftAlone) {
  const char *Src = R"(
int f(int x, int y) {
  if (x == 1) {
    return 10;
  } else if (y == 2) {
    return 20;
  }
  return 0;
}
)";
  auto Fn = parseFunction(Src);
  ASSERT_TRUE(static_cast<bool>(Fn));
  EXPECT_EQ(normalizeSelectionStatements(*Fn), 0u);
}
