//===- core/Pipeline.cpp - The VEGA system -----------------------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"

#include "ast/Parser.h"
#include "lexer/Lexer.h"
#include "obs/Metrics.h"
#include "obs/Request.h"
#include "obs/Trace.h"
#include "support/RNG.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <set>
#include <sstream>

using namespace vega;

const GeneratedFunction *
GeneratedBackend::find(const std::string &InterfaceName) const {
  for (const GeneratedFunction &F : Functions)
    if (F.InterfaceName == InterfaceName)
      return &F;
  return nullptr;
}

double GeneratedBackend::totalSeconds() const {
  double Total = 0.0;
  for (const auto &[Module, Seconds] : ModuleSeconds)
    Total += Seconds;
  return Total;
}

uint64_t VegaOptions::fingerprint() const {
  uint64_t H = Model.fingerprint();
  auto Mix = [&H](uint64_t V) {
    H ^= V;
    H *= 1099511628211ULL;
  };
  auto MixBits = [&Mix](double V) {
    uint64_t Bits = 0;
    std::memcpy(&Bits, &V, sizeof(Bits));
    Mix(Bits);
  };
  Mix(static_cast<uint64_t>(Model.Epochs));
  Mix(static_cast<uint64_t>(Model.BatchSize));
  MixBits(static_cast<double>(Model.LearningRate));
  Mix(static_cast<uint64_t>(Split));
  MixBits(TrainFraction);
  Mix(SplitSeed);
  Mix(static_cast<uint64_t>(MaxCandidatesPerRow));
  Mix(UseTargetDependentValues ? 1 : 2);
  Mix(UseTargetIndependentBools ? 1 : 2);
  return H;
}

namespace {

/// Global ordering of updatable Boolean properties shared by every feature
/// vector (the paper fixes 345 property positions; we fix the union of
/// updatable properties).
std::vector<std::string>
globalBoolOrder(const std::vector<TemplateInfo> &Templates) {
  std::set<std::string> Names;
  for (const TemplateInfo &TI : Templates)
    for (const BoolProperty &P : TI.Features.BoolProps)
      if (P.Updatable)
        Names.insert(P.Name);
  return std::vector<std::string>(Names.begin(), Names.end());
}

std::string fillerText(const std::vector<Token> &Filler) {
  for (const Token &T : Filler)
    if (T.Kind != TokenKind::Punct)
      return T.Text;
  return Filler.empty() ? std::string() : Filler.front().Text;
}

std::string upperOf(const std::string &S) {
  std::string Out;
  for (char C : S)
    Out += static_cast<char>(std::toupper(static_cast<unsigned char>(C)));
  return Out;
}

std::string lowerOf(const std::string &S) {
  std::string Out;
  for (char C : S)
    Out += static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
  return Out;
}

/// Renames every spelling variant of \p From inside \p Text to the matching
/// variant of \p To ("fixup_arm_movt_hi16" → "fixup_riscv_movt_hi16").
/// Each case variant is applied at most once — an all-caps source name like
/// "VE" must not be re-run over its own replacement ("RISCVELF…" contains
/// "VE").
std::string renameTarget(std::string Text, const std::string &From,
                         const std::string &To) {
  Text = replaceAll(std::move(Text), From, To);
  if (lowerOf(From) != From)
    Text = replaceAll(std::move(Text), lowerOf(From), lowerOf(To));
  if (upperOf(From) != From)
    Text = replaceAll(std::move(Text), upperOf(From), upperOf(To));
  return Text;
}

uint64_t hashText(std::string_view Text) {
  uint64_t H = 1469598103934665603ULL;
  for (char C : Text) {
    H ^= static_cast<unsigned char>(C);
    H *= 1099511628211ULL;
  }
  return H;
}

} // namespace

// Static storage for the global bool order, owned per system instance.
// (Kept out of the header to keep the interface small.)
namespace vega {
namespace detail {
struct VegaSystemState {
  std::vector<std::string> GlobalBools;
  /// Child statement → the primary value of its repeatable parent instance.
  std::map<const Statement *, std::string> ChildCtx;
  /// Eval targets = corpus targets minus training targets.
  std::vector<std::string> EvalTargets;
};
} // namespace detail
} // namespace vega

static std::map<const VegaSystem *, vega::detail::VegaSystemState> &
stateMap() {
  // Intentionally leaked: VegaSystem instances held in function-local statics
  // (e.g. a CLI's cached session) may outlive an ordinary function-local map,
  // and ~VegaSystem must be able to erase its entry at any point of shutdown.
  static auto *Map =
      new std::map<const VegaSystem *, vega::detail::VegaSystemState>();
  return *Map;
}

VegaSystem::VegaSystem(const BackendCorpus &Corpus, VegaOptions Options)
    : Corpus(Corpus), Options(Options) {
  std::vector<std::string> AllNames;
  for (const TargetTraits &T : Corpus.targets().targets())
    AllNames.push_back(T.Name);
  Selector = std::make_unique<FeatureSelector>(Corpus.vfs(), AllNames);

  auto &State = stateMap()[this];
  std::set<std::string> Training;
  for (const std::string &N : Corpus.trainingTargetNames())
    Training.insert(N);
  for (const std::string &N : AllNames)
    if (!Training.count(N))
      State.EvalTargets.push_back(N);
}

VegaSystem::~VegaSystem() { stateMap().erase(this); }

std::string VegaOptions::resolvedWeightCachePath() const {
  if (WeightCachePath.empty() || WeightCachePath.front() == '/')
    return WeightCachePath;
  const char *Dir = std::getenv("VEGA_CACHE_DIR");
  if (!Dir || !*Dir)
    return WeightCachePath;
  std::string Resolved(Dir);
  if (Resolved.back() != '/')
    Resolved += '/';
  return Resolved + WeightCachePath;
}

std::vector<std::string> VegaSystem::globalBoolNames() const {
  return stateMap().at(this).GlobalBools;
}

void VegaSystem::setGlobalBoolNames(std::vector<std::string> Names) {
  stateMap()[this].GlobalBools = std::move(Names);
}

const TemplateInfo *
VegaSystem::findTemplate(const std::string &InterfaceName) const {
  for (const TemplateInfo &TI : Templates)
    if (TI.FT.InterfaceName == InterfaceName)
      return &TI;
  return nullptr;
}

double VegaSystem::buildTemplates() {
  obs::Span StageSpan("stage1.build_templates", "stage1");
  Templates.clear();
  for (const FunctionGroup &Group : Corpus.trainingGroups()) {
    obs::Span GroupSpan("stage1.template", "stage1");
    GroupSpan.arg("interface", Group.InterfaceName);
    TemplateInfo TI;
    TI.FT = buildFunctionTemplate(Group);
    TI.Features = Selector->analyze(TI.FT);

    // Parent links.
    std::function<void(const TemplateRow *, const TemplateRow *)> Walk =
        [&](const TemplateRow *Row, const TemplateRow *Parent) {
          TI.Parent[Row] = Parent;
          for (const auto &Child : Row->Children)
            Walk(Child.get(), Row);
        };
    TI.Parent[TI.FT.Definition.get()] = nullptr;
    for (const auto &Row : TI.FT.Body)
      Walk(Row.get(), nullptr);

    // Primary slot of each repeatable row: the slot whose property has the
    // largest candidate set over the training targets.
    for (const TemplateRow *Row : TI.FT.rows()) {
      if (!Row->Repeatable)
        continue;
      auto It = TI.Features.RowSlots.find(Row->Index);
      if (It == TI.Features.RowSlots.end() || It->second.empty())
        continue;
      size_t Best = 0;
      size_t BestCount = 0;
      for (size_t S = 0; S < It->second.size(); ++S) {
        size_t MaxCount = 0;
        for (const std::string &Tgt : Corpus.trainingTargetNames())
          MaxCount = std::max(
              MaxCount,
              Selector->harvestValues(It->second[S].Name, Tgt).size());
        if (MaxCount > BestCount) {
          BestCount = MaxCount;
          Best = S;
        }
      }
      TI.PrimarySlot[Row] = Best;
    }
    Templates.push_back(std::move(TI));
  }
  stateMap()[this].GlobalBools = globalBoolOrder(Templates);
  obs::MetricsRegistry::instance().addCounter("stage1.templates",
                                              Templates.size());
  return StageSpan.close();
}

std::vector<std::string>
VegaSystem::slotCandidates(const TemplateInfo &TI, const TemplateRow &Row,
                           size_t SlotIdx, const std::string &Target) const {
  std::vector<std::string> Result;
  std::set<std::string> Seen;
  auto Add = [&](const std::string &V) {
    if (!V.empty() && Seen.insert(V).second)
      Result.push_back(V);
  };

  auto SlotsIt = TI.Features.RowSlots.find(Row.Index);
  if (SlotsIt != TI.Features.RowSlots.end() &&
      SlotIdx < SlotsIt->second.size()) {
    const std::string &Prop = SlotsIt->second[SlotIdx].Name;
    if (!Prop.empty()) {
      std::vector<std::string> Harvest =
          Selector->harvestValues(Prop, Target);
      for (size_t I = 0; I < Harvest.size() && I < 12; ++I)
        Add(Harvest[I]);
    }
  }

  // Prefix-rename synthesis from training fillers.
  size_t Budget = 8;
  for (const auto &[SrcTarget, Instances] : Row.PerTarget) {
    if (SrcTarget == Target)
      continue;
    for (const auto &Inst : Instances) {
      if (SlotIdx >= Inst.SlotFillers.size())
        continue;
      const std::vector<Token> &Filler = Inst.SlotFillers[SlotIdx];
      if (Filler.size() != 1)
        continue;
      const std::string &Text = Filler.front().Text;
      std::string Renamed = renameTarget(Text, SrcTarget, Target);
      if (Renamed == Text)
        continue; // no target-name occurrence; nothing to synthesize
      if (Result.size() >= 12 + 8 || Budget == 0)
        break;
      if (Seen.insert(Renamed).second) {
        Result.push_back(Renamed);
        --Budget;
      }
    }
  }
  return Result;
}

std::vector<std::string> VegaSystem::buildInputTokens(
    const TemplateInfo &TI, const TemplateRow &Row, const std::string &Target,
    const std::optional<std::string> &AssignedPrimary,
    const std::string &CtxValue) const {
  const auto &State = stateMap().at(this);
  std::vector<std::string> Tokens;
  Tokens.push_back(Vocab::Cls);
  Tokens.push_back(TI.FT.InterfaceName);
  for (const Token &T : Row.Tokens)
    Tokens.push_back(T.Text);

  // Boolean target-independent properties, in the fixed global order.
  Tokens.push_back(Vocab::Bools);
  for (const std::string &Name : State.GlobalBools) {
    if (!Options.UseTargetIndependentBools) {
      Tokens.push_back(Vocab::Null);
      continue;
    }
    const BoolProperty *P = TI.Features.findBool(Name);
    if (!P) {
      Tokens.push_back(Vocab::Null);
      continue;
    }
    auto It = P->ValuePerTarget.find(Target);
    bool V = It != P->ValuePerTarget.end() && It->second;
    Tokens.push_back(V ? Vocab::True : Vocab::False);
  }

  // Target-dependent slot values.
  Tokens.push_back(Vocab::Vals);
  auto SlotsIt = TI.Features.RowSlots.find(Row.Index);
  if (SlotsIt != TI.Features.RowSlots.end()) {
    size_t Primary = SIZE_MAX;
    auto PIt = TI.PrimarySlot.find(&Row);
    if (PIt != TI.PrimarySlot.end())
      Primary = PIt->second;
    for (size_t S = 0; S < SlotsIt->second.size(); ++S) {
      if (S != 0)
        Tokens.push_back(Vocab::Sep);
      if (!Options.UseTargetDependentValues) {
        Tokens.push_back(Vocab::Null);
        continue;
      }
      if (S == Primary && AssignedPrimary) {
        Tokens.push_back(*AssignedPrimary);
        continue;
      }
      std::vector<std::string> Values = slotCandidates(TI, Row, S, Target);
      if (Values.empty()) {
        Tokens.push_back(Vocab::Null);
        continue;
      }
      size_t Cap = std::min<size_t>(Values.size(), 14);
      for (size_t V = 0; V < Cap; ++V)
        Tokens.push_back(Values[V]);
    }
  }

  // Ancestor path context (nearest first).
  Tokens.push_back(Vocab::Path);
  int PathBudget = 8;
  for (const TemplateRow *Anc = TI.Parent.at(&Row); Anc && PathBudget > 0;
       Anc = TI.Parent.at(Anc)) {
    int PerRow = 4;
    for (const Token &T : Anc->Tokens) {
      if (PerRow-- <= 0 || PathBudget <= 0)
        break;
      Tokens.push_back(T.Text);
      --PathBudget;
    }
  }

  // Enclosing repeatable-row value context.
  Tokens.push_back(Vocab::Ctx);
  Tokens.push_back(CtxValue.empty() ? Vocab::Null : CtxValue);
  return Tokens;
}

double VegaSystem::analyticConfidence(const TemplateInfo &TI,
                                      const TemplateRow &Row,
                                      const std::string &Target,
                                      bool Has) const {
  if (!Has)
    return 0.0;
  size_t Total = Row.Tokens.size();
  if (Total == 0)
    return 1.0;
  size_t Common = Row.commonTokenCount();
  double Score = static_cast<double>(Common) / static_cast<double>(Total);
  auto SlotsIt = TI.Features.RowSlots.find(Row.Index);
  if (SlotsIt != TI.Features.RowSlots.end()) {
    for (const SlotProperty &Slot : SlotsIt->second) {
      size_t N = 1;
      if (!Slot.Name.empty()) {
        size_t H = Selector->harvestValues(Slot.Name, Target).size();
        if (H > 0)
          N = H;
      }
      Score += 1.0 / (static_cast<double>(Total) * static_cast<double>(N));
    }
  }
  return std::min(Score, 1.0);
}

void VegaSystem::collectPairsForTarget(const TemplateInfo &TI,
                                       const std::string &Target,
                                       bool Implements,
                                       std::vector<TextPair> &Out) {
  auto &State = stateMap()[this];
  std::vector<const TemplateRow *> Rows = TI.FT.rows();

  auto MakeDst = [&](double Confidence,
                     const std::vector<Token> &StmtTokens) {
    std::vector<std::string> Dst;
    Dst.push_back(Vocab::csToken(Vocab::csBucket(Confidence)));
    for (const Token &T : StmtTokens)
      Dst.push_back(T.Text);
    Dst.push_back(Vocab::Eos);
    return Dst;
  };

  if (!Implements) {
    // Negative example: the function does not exist on this target, so the
    // definition row learns confidence 0 from the Boolean properties.
    TextPair Pair;
    Pair.Target = Target;
    Pair.Src = buildInputTokens(TI, *TI.FT.Definition, Target, std::nullopt,
                                std::string());
    Pair.Dst = MakeDst(0.0, TI.FT.Definition->Tokens);
    Out.push_back(std::move(Pair));
    return;
  }

  for (const TemplateRow *Row : Rows) {
    auto InstIt = Row->PerTarget.find(Target);
    bool Has = InstIt != Row->PerTarget.end() && !InstIt->second.empty();

    if (Row->Repeatable) {
      // Expansion training: one example per candidate value, positive when
      // the target actually has an instance with that value.
      auto PIt = TI.PrimarySlot.find(Row);
      if (PIt == TI.PrimarySlot.end())
        continue;
      size_t Primary = PIt->second;
      const auto &Slots = TI.Features.RowSlots.at(Row->Index);
      std::vector<std::string> Candidates =
          Slots[Primary].Name.empty()
              ? std::vector<std::string>()
              : Selector->harvestValues(Slots[Primary].Name, Target);
      if (static_cast<int>(Candidates.size()) > Options.MaxCandidatesPerRow)
        Candidates.resize(static_cast<size_t>(Options.MaxCandidatesPerRow));
      for (const std::string &Candidate : Candidates) {
        const TemplateRow::Instance *Match = nullptr;
        if (Has) {
          for (const auto &Inst : InstIt->second) {
            if (Primary < Inst.SlotFillers.size() &&
                fillerText(Inst.SlotFillers[Primary]) == Candidate) {
              Match = &Inst;
              break;
            }
          }
        }
        TextPair Pair;
        Pair.Target = Target;
        Pair.Src =
            buildInputTokens(TI, *Row, Target, Candidate, std::string());
        if (Match) {
          double CS = analyticConfidence(TI, *Row, Target, true);
          Pair.Dst = MakeDst(CS, Match->Stmt->Tokens);
          // Record the context value for this instance's children.
          for (const auto &Child : Match->Stmt->Children)
            State.ChildCtx[Child.get()] = Candidate;
        } else {
          Pair.Dst = MakeDst(0.0, Row->Tokens);
        }
        Out.push_back(std::move(Pair));
      }
      continue;
    }

    // Non-repeatable rows: one example (present or absent).
    std::string Ctx;
    if (Has) {
      auto CtxIt = State.ChildCtx.find(InstIt->second.front().Stmt);
      if (CtxIt != State.ChildCtx.end())
        Ctx = CtxIt->second;
    }
    TextPair Pair;
    Pair.Target = Target;
    Pair.Src = buildInputTokens(TI, *Row, Target, std::nullopt, Ctx);
    if (Has) {
      double CS = analyticConfidence(TI, *Row, Target, true);
      Pair.Dst = MakeDst(CS, InstIt->second.front().Stmt->Tokens);
    } else {
      Pair.Dst = MakeDst(0.0, Row->Tokens);
    }
    Out.push_back(std::move(Pair));
  }
}

void VegaSystem::buildDataset() {
  obs::Span StageSpan("stage1.build_dataset", "stage1");
  auto &State = stateMap()[this];
  TrainTexts.clear();
  VerifyTexts.clear();
  TrainFunctions = VerifyFunctions = 0;
  State.ChildCtx.clear();

  std::vector<std::string> TrainingNames = Corpus.trainingTargetNames();
  std::set<std::string> BackendTrainSet;
  if (Options.Split == VegaOptions::SplitKind::BackendBased) {
    std::vector<std::string> Shuffled = TrainingNames;
    RNG Rng(Options.SplitSeed);
    Rng.shuffle(Shuffled);
    size_t N = static_cast<size_t>(Options.TrainFraction *
                                   static_cast<double>(Shuffled.size()));
    for (size_t I = 0; I < N; ++I)
      BackendTrainSet.insert(Shuffled[I]);
  }

  // Pass 1: positive pairs for repeatable rows populate ChildCtx, so
  // collect pairs in two phases per template: repeatable first via the
  // natural row order (parents precede children in pre-order).
  for (const TemplateInfo &TI : Templates) {
    std::vector<std::string> Members = TI.FT.MemberTargets;
    std::set<std::string> TrainMembers;
    if (Options.Split == VegaOptions::SplitKind::FunctionGroup) {
      std::vector<std::string> Shuffled = Members;
      RNG Rng(Options.SplitSeed ^ hashText(TI.FT.InterfaceName));
      Rng.shuffle(Shuffled);
      size_t N = std::max<size_t>(
          1, static_cast<size_t>(Options.TrainFraction *
                                 static_cast<double>(Shuffled.size())));
      for (size_t I = 0; I < N; ++I)
        TrainMembers.insert(Shuffled[I]);
    } else {
      for (const std::string &M : Members)
        if (BackendTrainSet.count(M))
          TrainMembers.insert(M);
    }

    std::set<std::string> MemberSet(Members.begin(), Members.end());
    for (const std::string &Target : TrainingNames) {
      bool Implements = MemberSet.count(Target) != 0;
      bool InTrain = !Implements || TrainMembers.count(Target) != 0;
      std::vector<TextPair> Pairs;
      collectPairsForTarget(TI, Target, Implements, Pairs);
      if (InTrain) {
        if (Implements)
          ++TrainFunctions;
        for (TextPair &P : Pairs)
          TrainTexts.push_back(std::move(P));
      } else {
        ++VerifyFunctions;
        for (TextPair &P : Pairs)
          VerifyTexts.push_back(std::move(P));
      }
    }
  }

  // Target-anonymization augmentation: duplicate every training pair with
  // the target's spellings renamed to a synthetic name. Without this the
  // model can shortcut-learn "Boolean pattern → target identity" instead of
  // copying identifiers from the feature vector, and the shortcut collapses
  // on a held-out target. (The paper's UniXcoder brings this robustness
  // from pre-training; at our scale it must be taught.)
  {
    static const char *Pseudo[] = {"Alder", "Birch", "Cedar", "Dogwd",
                                   "Elmwd", "Firbr", "Ginko", "Hazel"};
    size_t N = TrainTexts.size();
    for (size_t I = 0; I < N; ++I) {
      const TextPair &P = TrainTexts[I];
      if (P.Target.empty())
        continue;
      TextPair Renamed;
      // One fixed pseudonym per target keeps the vocabulary growth linear.
      std::string To = Pseudo[hashText(P.Target) % 8];
      Renamed.Target = To;
      Renamed.Src.reserve(P.Src.size());
      for (const std::string &T : P.Src)
        Renamed.Src.push_back(renameTarget(T, P.Target, To));
      Renamed.Dst.reserve(P.Dst.size());
      for (const std::string &T : P.Dst)
        Renamed.Dst.push_back(renameTarget(T, P.Target, To));
      TrainTexts.push_back(std::move(Renamed));
    }
  }
  buildVocab();
  auto &Metrics = obs::MetricsRegistry::instance();
  Metrics.addCounter("stage1.train_pairs", TrainTexts.size());
  Metrics.addCounter("stage1.verify_pairs", VerifyTexts.size());
  Metrics.setGauge("stage1.vocab_size",
                   static_cast<double>(Vocabulary.size()));
}

void VegaSystem::buildVocab() {
  auto &State = stateMap()[this];
  Vocabulary = Vocab();
  auto AddAll = [&](const std::vector<TextPair> &Pairs) {
    for (const TextPair &P : Pairs) {
      for (const std::string &T : P.Src)
        Vocabulary.addToken(T);
      for (const std::string &T : P.Dst)
        Vocabulary.addToken(T);
    }
  };
  AddAll(TrainTexts);
  AddAll(VerifyTexts);

  // Description-file identifiers of every target (evaluation targets'
  // description files are given inputs, so their tokens are fair game —
  // UniXcoder's BPE would cover them regardless).
  for (const TargetTraits &T : Corpus.targets().targets()) {
    const DescriptionIndex *Index = Selector->targetIndex(T.Name);
    if (!Index)
      continue;
    for (const DescriptionFile &File : Index->files())
      for (const std::string &Tok : File.Tokens)
        Vocabulary.addToken(Tok);
    for (const DescAssignment &A : Index->assignments())
      Vocabulary.addToken(A.Value);
  }

  // Compositional expansion: training tokens prefixed by a training target
  // name spawn the analogous token for each evaluation target ("ARM" +
  // "ELFObjectWriter" → "RISCVELFObjectWriter"). This mirrors what subword
  // tokenization gives the paper's model for free.
  std::vector<std::string> TrainingNames = Corpus.trainingTargetNames();
  std::vector<std::string> Composites;
  for (size_t Id = 0; Id < Vocabulary.size(); ++Id) {
    const std::string &Text = Vocabulary.textOf(static_cast<int>(Id));
    for (const std::string &N : TrainingNames) {
      if (Text.size() <= N.size() || Text.compare(0, N.size(), N) != 0)
        continue;
      std::string Suffix = Text.substr(N.size());
      for (const std::string &E : State.EvalTargets)
        Composites.push_back(E + Suffix);
    }
  }
  for (const std::string &C : Composites)
    Vocabulary.addToken(C);

  // Slot candidates (harvests + prefix renames) for every target, so the
  // generation-time feature vectors of the held-out targets are fully
  // in-vocabulary.
  for (const TemplateInfo &TI : Templates)
    for (const TemplateRow *Row : TI.FT.rows()) {
      auto SlotsIt = TI.Features.RowSlots.find(Row->Index);
      if (SlotsIt == TI.Features.RowSlots.end())
        continue;
      for (size_t S = 0; S < SlotsIt->second.size(); ++S)
        for (const TargetTraits &T : Corpus.targets().targets())
          for (const std::string &V : slotCandidates(TI, *Row, S, T.Name))
            Vocabulary.addToken(V);
    }

  // Structural tokens: output tokens observed for many distinct targets are
  // target-independent and always allowed in constrained decoding.
  std::map<std::string, std::set<std::string>> TokenTargets;
  for (const TextPair &P : TrainTexts)
    for (const std::string &T : P.Dst)
      TokenTargets[T].insert(P.Target);
  StructuralTokens.assign(Vocabulary.size(), 0);
  for (const auto &[Token, Targets] : TokenTargets)
    if (Targets.size() >= 6)
      StructuralTokens[static_cast<size_t>(Vocabulary.idOf(Token))] = 1;

  SpecialTokenIds.clear();
  for (size_t Id = 0; Id < Vocabulary.size(); ++Id)
    if (Vocab::isSpecialSpelling(Vocabulary.textOf(static_cast<int>(Id))))
      SpecialTokenIds.push_back(static_cast<int>(Id));
}

TrainPair VegaSystem::toIds(const TextPair &Pair) const {
  TrainPair Ids;
  for (const std::string &T : Pair.Src)
    Ids.Src.push_back(Vocabulary.idOf(T));
  for (const std::string &T : Pair.Dst)
    Ids.Dst.push_back(Vocabulary.idOf(T));
  return Ids;
}

VegaSystem::WeightCacheStatus
VegaSystem::initModelFromCache(std::string *Detail) {
  Model = std::make_unique<CodeBE>(Vocabulary, Options.Model);
  Model->setPrecision(Options.InferencePrecision);
  Model->setPrefixSharing(Options.PrefixSharing);
  std::string CachePath = Options.resolvedWeightCachePath();
  if (CachePath.empty())
    return WeightCacheStatus::Disabled;
  std::ifstream In(CachePath, std::ios::binary);
  if (!In)
    return WeightCacheStatus::Missing;
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  std::string Blob = Buffer.str();
  auto Mismatch = [&](const char *Why) {
    if (Detail)
      *Detail = std::string(Why) + " ('" + CachePath + "')";
    return WeightCacheStatus::Mismatch;
  };
  // Layout: u64 vocab length | vocab | weights.
  if (Blob.size() <= sizeof(uint64_t))
    return Mismatch("weight cache is truncated");
  uint64_t VLen = 0;
  std::memcpy(&VLen, Blob.data(), sizeof(VLen));
  if (sizeof(VLen) + VLen > Blob.size())
    return Mismatch("weight cache is truncated");
  if (Blob.substr(sizeof(VLen), VLen) != Vocabulary.serialize())
    return Mismatch("weight cache was built over a different vocabulary");
  if (!Model->loadWeights(Blob.substr(sizeof(VLen) + VLen)))
    return Mismatch("weight cache does not match the model architecture");
  return WeightCacheStatus::Loaded;
}

model::TrainOptions VegaSystem::trainOptions() const {
  model::TrainOptions T = model::TrainOptions::fromConfig(Options.Model);
  T.Jobs = Options.TrainJobs > 0 ? Options.TrainJobs : Options.Jobs;
  return T;
}

Status VegaSystem::fineTuneImpl() {
  assert(Model && "initModelFromCache() must run first");
  std::vector<TrainPair> Data;
  Data.reserve(TrainTexts.size());
  for (const TextPair &P : TrainTexts)
    Data.push_back(toIds(P));
  model::TrainOptions TOpts = trainOptions();
  TOpts.OnEpoch = [&](const model::EpochStats &Stats) {
    if (Options.Verbose)
      std::fprintf(stderr, "vega: epoch %d mean loss %.4f (%.1f examples/s)\n",
                   Stats.Epoch, Stats.MeanLoss, Stats.ExamplesPerSec);
  };
  model::Trainer Engine(*Model, std::move(TOpts));
  StatusOr<model::TrainResult> Result = Engine.run(Data);
  if (!Result.isOk())
    return Result.status();

  if (std::string CachePath = Options.resolvedWeightCachePath();
      !CachePath.empty()) {
    std::ofstream Out(CachePath, std::ios::binary);
    std::string VocabBlob = Vocabulary.serialize();
    uint64_t VLen = VocabBlob.size();
    Out.write(reinterpret_cast<const char *>(&VLen), sizeof(VLen));
    Out.write(VocabBlob.data(), static_cast<long>(VocabBlob.size()));
    std::string Weights = Model->saveWeights();
    Out.write(Weights.data(), static_cast<long>(Weights.size()));
    if (!Out)
      return Status::unavailable("cannot write weight cache '" + CachePath +
                                 "'");
  }
  return Status::ok();
}

Status VegaSystem::fineTune() {
  obs::Span StageSpan("stage2.train_model", "stage2");
  StageSpan.arg("weights", "trained");
  return fineTuneImpl();
}

namespace {

/// Content fingerprint of one training pair: FNV-1a over the Src tokens, a
/// side separator, then the Dst tokens, with a terminator after every token
/// so concatenation ambiguities ("ab"+"c" vs "a"+"bc") cannot collide.
uint64_t pairFingerprint(const std::vector<std::string> &Src,
                         const std::vector<std::string> &Dst) {
  uint64_t H = 1469598103934665603ULL;
  auto Mix = [&H](const std::string &T) {
    for (char C : T) {
      H ^= static_cast<unsigned char>(C);
      H *= 1099511628211ULL;
    }
    H ^= 0x1fu;
    H *= 1099511628211ULL;
  };
  for (const std::string &T : Src)
    Mix(T);
  H ^= 0x2fu;
  H *= 1099511628211ULL;
  for (const std::string &T : Dst)
    Mix(T);
  return H;
}

} // namespace

VegaSystem::AugmentResult
VegaSystem::augmentTrainingPairs(const std::vector<AugmentedPair> &Pairs) {
  AugmentResult Res;
  if (!FingerprintsSeeded) {
    for (const TextPair &P : TrainTexts)
      PairFingerprints.insert(pairFingerprint(P.Src, P.Dst));
    FingerprintsSeeded = true;
  }
  for (const AugmentedPair &P : Pairs) {
    bool Usable = !P.Src.empty() && !P.Dst.empty();
    for (const std::string &T : P.Src)
      Usable = Usable && Vocabulary.contains(T);
    for (const std::string &T : P.Dst)
      Usable = Usable && Vocabulary.contains(T);
    if (!Usable) {
      ++Res.SkippedOov;
      continue;
    }
    if (!PairFingerprints.insert(pairFingerprint(P.Src, P.Dst)).second) {
      ++Res.Deduped;
      continue;
    }
    if (TrainWeights.empty())
      TrainWeights.assign(TrainTexts.size(), 1.0f);
    TextPair T;
    T.Src = P.Src;
    T.Dst = P.Dst;
    T.Target = P.Target;
    TrainTexts.push_back(std::move(T));
    TrainWeights.push_back(P.Weight);
    ++Res.Added;
  }
  return Res;
}

StatusOr<model::TrainResult> VegaSystem::fineTuneRound(int Epochs,
                                                       uint64_t Seed) {
  assert(Model && "trainModel() must run first");
  obs::Span StageSpan("stage2.finetune_round", "stage2");
  StageSpan.arg("epochs", std::to_string(Epochs));
  std::vector<TrainPair> Data;
  Data.reserve(TrainTexts.size());
  for (const TextPair &P : TrainTexts)
    Data.push_back(toIds(P));
  model::TrainOptions TOpts = trainOptions();
  TOpts.Epochs = Epochs;
  TOpts.Seed = Seed;
  TOpts.ExampleWeights = TrainWeights;
  TOpts.OnEpoch = [&](const model::EpochStats &Stats) {
    if (Options.Verbose)
      std::fprintf(stderr,
                   "vega: round epoch %d mean loss %.4f (%.1f examples/s)\n",
                   Stats.Epoch, Stats.MeanLoss, Stats.ExamplesPerSec);
  };
  model::Trainer Engine(*Model, std::move(TOpts));
  return Engine.run(Data);
}

Status VegaSystem::trainModel() {
  obs::Span StageSpan("stage2.train_model", "stage2");
  std::string Detail;
  WeightCacheStatus CacheStatus = initModelFromCache(&Detail);
  if (CacheStatus == WeightCacheStatus::Loaded) {
    if (Options.Verbose)
      std::fprintf(stderr, "vega: loaded cached CodeBE weights\n");
    StageSpan.arg("weights", "cached");
    return Status::ok();
  }
  if (CacheStatus == WeightCacheStatus::Mismatch && Options.Verbose)
    std::fprintf(stderr, "vega: ignoring stale weight cache (%s)\n",
                 Detail.c_str());
  StageSpan.arg("weights", "trained");
  return fineTuneImpl();
}

double VegaSystem::verificationExactMatch(size_t MaxPairs) {
  assert(Model && "trainModel() must run first");
  std::vector<TrainPair> Data;
  size_t N = VerifyTexts.size();
  if (MaxPairs != 0)
    N = std::min(N, MaxPairs);
  for (size_t I = 0; I < N; ++I)
    Data.push_back(toIds(VerifyTexts[I]));
  return Model->exactMatch(Data);
}

void VegaSystem::buildRowDecode(const TemplateInfo &TI, const TemplateRow &Row,
                                const std::string &Target,
                                const std::optional<std::string> &Assigned,
                                const std::string &CtxValue,
                                std::vector<int> &SrcIds,
                                std::vector<uint8_t> &Allowed,
                                CodeBE::DecodePlan &Plan) const {
  std::vector<std::string> Src =
      buildInputTokens(TI, Row, Target, Assigned, CtxValue);
  for (const std::string &T : Src)
    SrcIds.push_back(Vocabulary.idOf(T));
  // Constrained decoding: structural tokens plus anything present in the
  // input feature vector.
  Allowed = StructuralTokens;
  Allowed.resize(Vocabulary.size(), 0);
  for (int Id : SrcIds)
    if (Id >= 0)
      Allowed[static_cast<size_t>(Id)] = 1;
  // Specials never appear in statements ($SV placeholders are fine: absent
  // rows echo the template).
  for (int Id : SpecialTokenIds)
    Allowed[static_cast<size_t>(Id)] = 0;

  // Template-guided decode plan (§3.4: generation *customizes the function
  // template*): position 0 picks a confidence bucket, skeleton positions
  // are pinned to the template, and each placeholder chooses among its
  // slot's candidate values.
  Plan.Steps.emplace_back(); // CS position
  Plan.Bias.emplace_back();
  for (int B = 0; B < Vocab::NumCsBuckets; ++B)
    Plan.Steps.front().push_back(Vocabulary.csId(B));
  {
    auto SlotsIt = TI.Features.RowSlots.find(Row.Index);
    size_t Primary = SIZE_MAX;
    auto PIt = TI.PrimarySlot.find(&Row);
    if (PIt != TI.PrimarySlot.end())
      Primary = PIt->second;
    size_t SlotIdx = 0;
    for (const Token &T : Row.Tokens) {
      std::vector<int> StepSet;
      std::map<int, float> StepBias;
      if (!T.isPlaceholder()) {
        StepSet.push_back(Vocabulary.idOf(T.Text));
      } else {
        if (SlotIdx == Primary && Assigned) {
          StepSet.push_back(Vocabulary.idOf(*Assigned));
        } else {
          // Lexical-affinity prior: candidates that share identifier words
          // with the enclosing context value (e.g. R_RISCV_PCREL_HI20 with
          // fixup_riscv_pcrel_hi20) get a logit boost — the stand-in for
          // the subword morphology a pre-trained model brings (DESIGN.md).
          std::string Affinity = CtxValue;
          if (Assigned)
            Affinity = *Assigned;
          for (const std::string &V :
               slotCandidates(TI, Row, SlotIdx, Target)) {
            int Id = Vocabulary.idOf(V);
            StepSet.push_back(Id);
            if (!Affinity.empty())
              StepBias[Id] =
                  12.0f * static_cast<float>(identifierSimilarity(V, Affinity));
          }
        }
        // No candidates: leave the step unconstrained (falls back to the
        // structural ∪ source set) — an honest Err-V source.
        ++SlotIdx;
      }
      Plan.Steps.push_back(std::move(StepSet));
      Plan.Bias.push_back(std::move(StepBias));
    }
  }
}

void VegaSystem::finishStatement(GeneratedStatement &Result,
                                 const std::vector<int> &Ids) const {
  size_t Start = 0;
  if (Vocabulary.isCsToken(Ids[0])) {
    Result.Confidence = Vocabulary.csValueOf(Ids[0]);
    Start = 1;
  }
  std::string Text;
  for (size_t I = Start; I < Ids.size(); ++I) {
    if (!Text.empty())
      Text += ' ';
    Text += Vocabulary.textOf(Ids[I]);
  }
  Result.Tokens = Lexer::tokenize(Text);
  Result.Emitted = Result.Confidence >= Options.ConfidenceThreshold &&
                   !Result.Tokens.empty();
}

const TemplateRow *VegaSystem::rowByIndex(const TemplateInfo &TI,
                                          int RowIndex) const {
  for (const TemplateRow *Row : TI.FT.rows())
    if (Row->Index == RowIndex)
      return Row;
  return nullptr;
}

GeneratedStatement VegaSystem::generateRow(
    const TemplateInfo &TI, const TemplateRow &Row, const std::string &Target,
    const std::optional<std::string> &Assigned, const std::string &CtxValue) {
  obs::Span RowSpan("gen.row", "stage3");
  RowSpan.arg("row", std::to_string(Row.Index));
  GeneratedStatement Result;
  Result.RowIndex = Row.Index;
  if (Assigned)
    Result.CandidateValue = *Assigned;
  Result.CtxValue = CtxValue;

  std::vector<int> SrcIds;
  std::vector<uint8_t> Allowed;
  CodeBE::DecodePlan Plan;
  buildRowDecode(TI, Row, Target, Assigned, CtxValue, SrcIds, Allowed, Plan);
  // Stage 3 reads the decoded confidence bucket, never the per-token
  // probabilities — skip their full-vocabulary softmax sweep per step.
  CodeBE::Decoded Out =
      Model->generate(SrcIds, &Allowed, &Plan, /*WithProbs=*/false);
  if (Out.Tokens.empty())
    return Result;

  finishStatement(Result, Out.Tokens);
  auto &Metrics = obs::MetricsRegistry::instance();
  Metrics.observe("gen.confidence", Result.Confidence);
  Metrics.addCounter("gen.statements");
  if (Result.Emitted)
    Metrics.addCounter("gen.statements_emitted");
  return Result;
}

std::vector<GeneratedStatement> VegaSystem::generateRowGroup(
    const TemplateInfo &TI, const TemplateRow &Row, const std::string &Target,
    const std::vector<std::string> &Candidates, const std::string &CtxValue) {
  obs::Span GroupSpan("gen.row_group", "stage3");
  GroupSpan.arg("row", std::to_string(Row.Index));
  GroupSpan.arg("candidates", std::to_string(Candidates.size()));

  struct Site {
    std::vector<int> SrcIds;
    std::vector<uint8_t> Allowed;
    CodeBE::DecodePlan Plan;
  };
  std::vector<Site> Sites(Candidates.size());
  std::vector<CodeBE::GroupRequest> Reqs(Candidates.size());
  for (size_t I = 0; I < Candidates.size(); ++I) {
    buildRowDecode(TI, Row, Target, Candidates[I], CtxValue, Sites[I].SrcIds,
                   Sites[I].Allowed, Sites[I].Plan);
    Reqs[I] = {&Sites[I].SrcIds, &Sites[I].Allowed, &Sites[I].Plan};
  }
  // CodeBE shares the encoder pass and the common plan-prefix KV rows when
  // the group's inputs coincide, and decodes per request when they don't —
  // byte-identical either way (and to per-candidate generateRow calls).
  std::vector<CodeBE::Decoded> Outs =
      Model->generateGroup(Reqs, /*WithProbs=*/false);

  std::vector<GeneratedStatement> Results(Candidates.size());
  auto &Metrics = obs::MetricsRegistry::instance();
  for (size_t I = 0; I < Candidates.size(); ++I) {
    GeneratedStatement &Result = Results[I];
    Result.RowIndex = Row.Index;
    Result.CandidateValue = Candidates[I];
    Result.CtxValue = CtxValue;
    if (Outs[I].Tokens.empty())
      continue;
    finishStatement(Result, Outs[I].Tokens);
    Metrics.observe("gen.confidence", Result.Confidence);
    Metrics.addCounter("gen.statements");
    if (Result.Emitted)
      Metrics.addCounter("gen.statements_emitted");
  }
  return Results;
}

std::vector<GeneratedStatement>
VegaSystem::beamCandidatesForSite(const TemplateInfo &TI,
                                  const DecodeSite &Site,
                                  const std::string &TargetName, int Width) {
  std::vector<GeneratedStatement> Out;
  const TemplateRow *Row = rowByIndex(TI, Site.RowIndex);
  if (!Row)
    return Out;
  std::optional<std::string> Assigned;
  if (!Site.CandidateValue.empty())
    Assigned = Site.CandidateValue;

  std::vector<int> SrcIds;
  std::vector<uint8_t> Allowed;
  CodeBE::DecodePlan Plan;
  buildRowDecode(TI, *Row, TargetName, Assigned, Site.CtxValue, SrcIds,
                 Allowed, Plan);
  std::vector<CodeBE::BeamHypothesis> Hyps =
      Model->decodeBeam(SrcIds, Width, &Allowed, &Plan);

  std::set<std::string> Seen;
  for (const CodeBE::BeamHypothesis &H : Hyps) {
    GeneratedStatement GS;
    GS.RowIndex = Site.RowIndex;
    GS.CandidateValue = Site.CandidateValue;
    GS.CtxValue = Site.CtxValue;
    if (!H.Tokens.empty())
      finishStatement(GS, H.Tokens);
    if (!Seen.insert(renderTokens(GS.Tokens)).second)
      continue;
    Out.push_back(std::move(GS));
  }
  return Out;
}

void VegaSystem::setJobs(int Jobs) {
  Options.Jobs = Jobs;
  Pool.reset();
}

void VegaSystem::setPrecision(Precision P) {
  Options.InferencePrecision = P;
  if (Model)
    Model->setPrecision(P);
}

void VegaSystem::setPrefixSharing(bool On) {
  Options.PrefixSharing = On;
  if (Model)
    Model->setPrefixSharing(On);
}

GeneratedFunction VegaSystem::generateFunction(const TemplateInfo &TI,
                                               const std::string &TargetName) {
  return assembleFunction(TI, TargetName, nullptr);
}

GeneratedFunction VegaSystem::assembleFunction(const TemplateInfo &TI,
                                               const std::string &TargetName,
                                               const SiteChooser &Choose) {
  // Inside a serve batch, attribute this function's spans to the request
  // that asked for the target (first submitter under dedup). Outside a
  // fan-out boundRequest is nullptr and the scope keeps the current
  // context, so offline paths see no change.
  obs::RequestScope ReqScope(obs::boundRequest(TargetName));
  // One span per function, named after its backend module so per-module
  // time (Fig. 7) is a plain aggregation over the trace. Worker-lane spans
  // carry their thread id (Perfetto shows one lane per worker).
  obs::Span FnSpan(std::string("gen.") + moduleName(TI.FT.Module), "stage3");
  FnSpan.arg("function", TI.FT.InterfaceName);
  FnSpan.arg("target", TargetName);
  if (int Lane = ThreadPool::currentLane(); Lane >= 0)
    FnSpan.arg("worker", std::to_string(Lane));
  GeneratedFunction Fn;
  Fn.InterfaceName = TI.FT.InterfaceName;
  Fn.Module = TI.FT.Module;

  // Every decode site flows through here: the chooser (when set) can
  // splice in a previously decoded or repaired statement; a nullopt answer
  // falls back to a fresh model decode — identical to plain generation.
  auto DecodeSiteStmt = [&](const TemplateRow &Row,
                            const std::optional<std::string> &Assigned,
                            const std::string &Ctx) -> GeneratedStatement {
    if (Choose) {
      DecodeSite Site;
      Site.RowIndex = Row.Index;
      if (Assigned)
        Site.CandidateValue = *Assigned;
      Site.CtxValue = Ctx;
      if (std::optional<GeneratedStatement> Chosen = Choose(Site)) {
        Chosen->RowIndex = Row.Index;
        Chosen->CandidateValue = Site.CandidateValue;
        Chosen->CtxValue = Ctx;
        return *std::move(Chosen);
      }
    }
    return generateRow(TI, Row, TargetName, Assigned, Ctx);
  };

  GeneratedStatement Def =
      DecodeSiteStmt(*TI.FT.Definition, std::nullopt, std::string());
  Fn.Confidence = Def.Confidence;
  Fn.Statements.push_back(Def);
  Fn.Emitted = Def.Emitted;

  std::set<const TemplateRow *> EmittedRows;
  if (Fn.Emitted) {
    Fn.AST.Definition =
        Statement(StmtKind::FunctionDef, Def.Tokens);
    Fn.AST.Name = TI.FT.InterfaceName;
    EmittedRows.insert(TI.FT.Definition.get());

    // Recursive emission over the template tree.
    std::function<void(const TemplateRow &, const std::string &,
                       std::vector<std::unique_ptr<Statement>> &)>
        Emit = [&](const TemplateRow &Row, const std::string &Ctx,
                   std::vector<std::unique_ptr<Statement>> &Out) {
          auto EmitChildren = [&](Statement &Into, const std::string &C) {
            for (const auto &Child : Row.Children)
              Emit(*Child, C, Into.Children);
          };
          if (Row.Repeatable) {
            auto PIt = TI.PrimarySlot.find(&Row);
            if (PIt == TI.PrimarySlot.end())
              return;
            const auto &Slots = TI.Features.RowSlots.at(Row.Index);
            const std::string &Prop = Slots[PIt->second].Name;
            if (Prop.empty())
              return;
            std::vector<std::string> Candidates =
                Selector->harvestValues(Prop, TargetName);
            if (static_cast<int>(Candidates.size()) >
                Options.MaxCandidatesPerRow)
              Candidates.resize(
                  static_cast<size_t>(Options.MaxCandidatesPerRow));
            // Plain generation decodes all expansions of the row as one
            // group (shared encoder/prefix work when inputs coincide); the
            // repair path keeps per-site decodes so the chooser is
            // consulted at every site.
            std::vector<GeneratedStatement> Pre;
            if (!Choose && Candidates.size() > 1)
              Pre = generateRowGroup(TI, Row, TargetName, Candidates, Ctx);
            for (size_t CI = 0; CI < Candidates.size(); ++CI) {
              const std::string &Candidate = Candidates[CI];
              GeneratedStatement Stmt =
                  Pre.empty() ? DecodeSiteStmt(Row, Candidate, Ctx) : Pre[CI];
              Fn.Statements.push_back(Stmt);
              if (!Stmt.Emitted)
                continue;
              EmittedRows.insert(&Row);
              auto Node = std::make_unique<Statement>(
                  classifyStatement(Stmt.Tokens), Stmt.Tokens);
              for (const auto &Child : Row.Children)
                Emit(*Child, Candidate, Node->Children);
              Out.push_back(std::move(Node));
            }
            return;
          }
          GeneratedStatement Stmt = DecodeSiteStmt(Row, std::nullopt, Ctx);
          Fn.Statements.push_back(Stmt);
          if (!Stmt.Emitted)
            return;
          EmittedRows.insert(&Row);
          auto Node = std::make_unique<Statement>(
              classifyStatement(Stmt.Tokens), Stmt.Tokens);
          EmitChildren(*Node, Ctx);
          Out.push_back(std::move(Node));
        };
    for (const auto &Row : TI.FT.Body)
      Emit(*Row, std::string(), Fn.AST.Body);
  }

  // Multi-target derivation: no single training target supports every
  // emitted row.
  if (Fn.Emitted) {
    bool SingleCovers = false;
    for (const std::string &Tgt : TI.FT.MemberTargets) {
      bool All = true;
      for (const TemplateRow *Row : EmittedRows)
        if (!Row->PerTarget.count(Tgt)) {
          All = false;
          break;
        }
      if (All) {
        SingleCovers = true;
        break;
      }
    }
    Fn.MultiTargetDerived = !SingleCovers;
  }

  // The span is the single timing source: Seconds/ModuleSeconds carry the
  // same measurement the trace records, so Fig. 7 and the exported trace
  // cannot disagree.
  Fn.Seconds = FnSpan.close();
  return Fn;
}

GeneratedBackend VegaSystem::generateBackend(const std::string &TargetName) {
  std::vector<GeneratedBackend> Backends = generateBackends({TargetName});
  return std::move(Backends.front());
}

std::vector<GeneratedBackend>
VegaSystem::generateBackends(const std::vector<std::string> &TargetNames) {
  assert(Model && "trainModel() must run first");
  // One span per call: the historical "stage3.generate_backend" name (with
  // its target arg) when generating a single backend — CI and the tests key
  // on it — and "stage3.generate_batch" for a multi-target fan-out.
  std::optional<obs::Span> StageSpan;
  if (TargetNames.size() == 1) {
    StageSpan.emplace("stage3.generate_backend", "stage3");
    StageSpan->arg("target", TargetNames.front());
  } else {
    StageSpan.emplace("stage3.generate_batch", "stage3");
    std::string Joined;
    for (const std::string &T : TargetNames)
      Joined += (Joined.empty() ? "" : ",") + T;
    StageSpan->arg("targets", Joined);
    StageSpan->arg("count", std::to_string(TargetNames.size()));
  }

  // The batch path is the handle API driven to completion in one shot: open
  // a handle per target, claim every unit into one target-major work list
  // (so a batched request from vega-serve saturates the pool even when each
  // individual backend has fewer functions than lanes), run a single
  // fan-out, and fold each handle. Merges happen per handle in template
  // order, so each backend is byte-identical to a standalone
  // generateBackend() call for any job count or batch composition.
  std::vector<GenerationHandle> Handles;
  Handles.reserve(TargetNames.size());
  for (const std::string &Target : TargetNames)
    Handles.push_back(beginGenerate(Target));

  std::vector<std::pair<GenerationHandle *, size_t>> Work;
  for (GenerationHandle &H : Handles)
    while (std::optional<size_t> U = H.claimUnit())
      Work.push_back({&H, *U});
  runGenerateUnits(Work);

  std::vector<GeneratedBackend> Backends;
  Backends.reserve(Handles.size());
  for (GenerationHandle &H : Handles)
    Backends.push_back(finishGenerate(std::move(H)));
  return Backends;
}

VegaSystem::GenerationHandle
VegaSystem::beginGenerate(const std::string &TargetName) {
  assert(Model && "trainModel() must run first");
  GenerationHandle H;
  H.Target = TargetName;
  // Module availability is a property of the base compiler, not something
  // VEGA infers: xCORE's LLVM 3.0 port has no disassembler interface to
  // implement (§4.1.4), so its DIS templates are never instantiated.
  const TargetTraits *Traits = Corpus.targets().find(TargetName);
  for (const TemplateInfo &TI : Templates) {
    if (Traits && TI.FT.Module == BackendModule::DIS &&
        !Traits->HasDisassembler)
      continue;
    H.Units.push_back(&TI);
  }
  H.Results.resize(H.Units.size());
  // The shared inference cache refreshes before any fan-out, so worker
  // threads never race to build it.
  Model->prepareGenerate();
  return H;
}

void VegaSystem::runGenerateUnits(
    const std::vector<std::pair<GenerationHandle *, size_t>> &Units) {
  if (Units.empty())
    return;
  if (!Pool)
    Pool = std::make_unique<ThreadPool>(Options.Jobs);
  Pool->parallelFor(Units.size(), [&](size_t I) {
    GenerationHandle &H = *Units[I].first;
    const size_t U = Units[I].second;
    H.Results[U] = generateFunction(*H.Units[U], H.Target);
  });
  for (const auto &[H, U] : Units)
    ++H->Executed;
}

bool VegaSystem::stepGenerate(GenerationHandle &H) {
  std::optional<size_t> U = H.claimUnit();
  if (!U)
    return false;
  H.Results[*U] = generateFunction(*H.Units[*U], H.Target);
  ++H.Executed;
  return true;
}

GeneratedBackend VegaSystem::finishGenerate(GenerationHandle H) {
  while (stepGenerate(H)) {
  }
  assert(H.complete() && "claimed units must be executed before finish");
  GeneratedBackend Backend;
  Backend.TargetName = H.Target;
  auto &Metrics = obs::MetricsRegistry::instance();
  for (size_t U = 0; U < H.Units.size(); ++U) {
    GeneratedFunction &Fn = H.Results[U];
    Backend.ModuleSeconds[Fn.Module] += Fn.Seconds;
    Metrics.addCounter("gen.functions");
    if (Fn.Emitted)
      Metrics.addCounter("gen.functions_emitted");
    Backend.Functions.push_back(std::move(Fn));
  }
  return Backend;
}

unsigned VegaSystem::stage3Lanes() {
  if (!Pool)
    Pool = std::make_unique<ThreadPool>(Options.Jobs);
  return Pool->jobs();
}
