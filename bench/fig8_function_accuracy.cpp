//===- bench/fig8_function_accuracy.cpp - Fig. 8 ------------------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// Fig. 8: pass@1 function accuracy per module per target, split into
/// confidence ≈ 1.00 vs < 1.00, plus the share of accurate functions derived
/// from multiple existing targets (the purple bars). Includes the §4.2
/// FORKFLOW comparison. Paper anchors: averages 72.3 / 71.5 / 67.2% per
/// module (71.5 / 73.2 / 62.2% over all functions) vs ForkFlow < 8%.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/TextTable.h"

#include <cstdio>

using namespace vega;

int main() {
  const std::vector<std::string> Targets = {"RISCV", "RI5CY", "XCORE"};
  for (const std::string &Target : Targets) {
    const BackendEval &Eval = bench::evaluation(Target);
    TextTable Table;
    Table.setHeader({"Module", "Functions", "Accurate", "Accuracy",
                     "CS~1.00", "CS<1.00", "MultiTarget", "TxtOnly"});
    double ModuleAccSum = 0.0;
    int ModuleCount = 0;
    size_t TxtOnlyTotal = 0;
    for (BackendModule Module : AllModules) {
      auto It = Eval.PerModule.find(Module);
      if (It == Eval.PerModule.end() || It->second.Functions == 0)
        continue;
      const auto &S = It->second;
      double Acc = static_cast<double>(S.AccurateFunctions) /
                   static_cast<double>(S.Functions);
      ModuleAccSum += Acc;
      ++ModuleCount;
      TxtOnlyTotal += S.TxtOnlyFunctions;
      Table.addRow({moduleName(Module), std::to_string(S.Functions),
                    std::to_string(S.AccurateFunctions),
                    TextTable::formatPercent(Acc),
                    std::to_string(S.AccurateHighConfidence),
                    std::to_string(S.AccurateFunctions -
                                   S.AccurateHighConfidence),
                    std::to_string(S.MultiTarget),
                    std::to_string(S.TxtOnlyFunctions)});
    }
    Table.addSeparator();
    Table.addRow({"ALL", "", "",
                  TextTable::formatPercent(Eval.functionAccuracy()), "", "",
                  "", std::to_string(TxtOnlyTotal)});
    std::printf("== Fig. 8: %s function accuracy (pass@1) ==\n%s",
                Target.c_str(), Table.render().c_str());
    std::printf("module-average accuracy: %s\n",
                TextTable::formatPercent(ModuleCount
                                             ? ModuleAccSum / ModuleCount
                                             : 0.0)
                    .c_str());
    // TxtOnly functions are textually off but behaviourally equal under the
    // differential oracle, so the plain statement accounting over-penalizes
    // them; the adjusted number counts their statements as accurate.
    std::printf("statement accuracy: %s (adjusted for Txt-Only: %s)\n\n",
                TextTable::formatPercent(Eval.statementAccuracy()).c_str(),
                TextTable::formatPercent(Eval.adjustedStatementAccuracy())
                    .c_str());
  }

  // ForkFlow comparison (§4.2).
  TextTable FF;
  FF.setHeader({"Target", "VEGA all-fn", "ForkFlow all-fn"});
  for (const std::string &Target : Targets) {
    FF.addRow({Target,
               TextTable::formatPercent(
                   bench::evaluation(Target).functionAccuracy()),
               TextTable::formatPercent(
                   bench::forkflowEvaluation(Target).functionAccuracy())});
  }
  std::printf("== VEGA vs FORKFLOW (function accuracy) ==\n%s\n",
              FF.render().c_str());
  std::printf("paper: VEGA 71.5 / 73.2 / 62.2%% vs ForkFlow 7.9 / 6.7 / "
              "2.1%% — shape to match: VEGA an order of magnitude above "
              "ForkFlow, xCORE lowest of the three\n");
  return 0;
}
