file(REMOVE_RECURSE
  "libvega_interp.a"
)
