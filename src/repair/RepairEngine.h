//===- repair/RepairEngine.h - Oracle-validated auto-repair ------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The confidence-guided auto-repair engine: turns one-shot Stage-3
/// generation into a generate→validate→repair loop. The paper's Tables 3–4
/// measure *developers* locating wrong statements via confidence scores and
/// fixing them by hand; this subsystem performs the same triage
/// automatically — flag functions failing the interpreter oracle, re-decode
/// their lowest-confidence sites from beam candidates (CodeBE::decodeBeam),
/// and accept a replacement only when the whole function passes the
/// behavioural oracle. The oracle itself is pluggable (eval/Oracle.h):
/// RepairOptions::OracleImpl selects what gates flagging and acceptance
/// (defaulting to the historical TextOracle regression equivalence), and
/// an optional Classifier rides along on the report evaluations to census
/// behavioural divergences. Acceptance is oracle-gated, never
/// confidence-gated, so post-repair accuracy can only improve on the
/// greedy pass@1 baseline.
///
/// Determinism contract: beam decoding has no RNG and a fixed tie-break
/// order, functions repair independently, sites are visited in ascending
/// confidence (stable within ties), candidates in beam rank order, and the
/// per-function fan-out merges by function index — so RepairReport (and its
/// "vega-repair-1" JSON rendering) is byte-identical at any job count.
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_REPAIR_REPAIRENGINE_H
#define VEGA_REPAIR_REPAIRENGINE_H

#include "core/Pipeline.h"
#include "eval/Harness.h"
#include "support/Status.h"
#include "support/ThreadPool.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace vega {
namespace repair {

/// Budgets and thresholds for one repair run.
struct RepairOptions {
  /// Ranked candidates decoded per flagged site.
  int BeamWidth = 4;
  /// Fixed-point iteration cap per flagged function: each round re-triages
  /// the (possibly partially improved) function and stops early once the
  /// oracle passes or a round lands no improvement.
  int MaxRounds = 2;
  /// Triage threshold: sites at or below this confidence are examined
  /// before higher-confidence ones (ordering, not acceptance — acceptance
  /// is always the behavioural oracle).
  double CSThreshold = 0.5;
  /// Repair fan-out lanes (<= 0: VEGA_JOBS when set, else hardware
  /// concurrency). Output is byte-identical for every value.
  int Jobs = 0;
  /// Per-function cap on distinct sites examined per round.
  int MaxSitesPerFunction = 24;
  /// Gating oracle: decides which functions are flagged and whether a
  /// repaired function may commit. Null selects eval::textOracle(), the
  /// historical behaviour. The pointee must outlive the engine.
  const eval::Oracle *OracleImpl = nullptr;
  /// Optional second oracle attached to the report's baseline/repaired
  /// evaluations as a divergence classifier (never gates acceptance).
  const eval::Oracle *Classifier = nullptr;
  /// Record beam candidates the hill climb tried and put back (see
  /// RejectedCandidate). Off by default: collection costs memory and the
  /// records exist purely for flywheel hard-negative harvesting; the
  /// "vega-repair-1" JSON rendering never includes them either way.
  bool CollectRejected = false;
  /// Minimum model confidence for a rejected candidate to be recorded —
  /// only candidates the model itself believed in make useful hard
  /// negatives.
  double RejectedConfidenceFloor = 0.5;

  /// InvalidArgument with a one-line reason when a field is out of range.
  Status validate() const;
};

/// One accepted statement replacement inside a committed repair.
struct StatementRepair {
  std::string InterfaceName;
  BackendModule Module = BackendModule::SEL;
  int RowIndex = -1;
  std::string CandidateValue; ///< repeatable-row expansion value
  /// Enclosing candidate context at decode time. (RowIndex, CandidateValue,
  /// CtxValue) is the exact decode-site identity, so a harvester can
  /// rebuild the site's feature vector via VegaSystem::buildInputTokens.
  std::string CtxValue;
  std::string OldText; ///< previous statement text
  std::string NewText; ///< accepted replacement text
  bool OldEmitted = false;
  bool NewEmitted = false;
  double OldConfidence = 0.0;
  double NewConfidence = 0.0;
  int Round = 0; ///< 1-based round in which the replacement landed
};

/// One beam candidate the hill climb tried and put back — the oracle
/// refuted what the model proposed with confidence at or above
/// RepairOptions::RejectedConfidenceFloor. Recorded (deduplicated per
/// decode site and statement text) only when RepairOptions::CollectRejected
/// is set; the flywheel harvests these as down-weighted hard negatives.
struct RejectedCandidate {
  std::string InterfaceName;
  BackendModule Module = BackendModule::SEL;
  int RowIndex = -1;
  std::string CandidateValue;
  std::string CtxValue;
  std::string Text;        ///< the refuted statement text
  double Confidence = 0.0; ///< the model's belief in it
  int Round = 0;           ///< 1-based round in which it was tried
};

/// Per-function outcome (one entry per flagged function).
struct FunctionRepair {
  std::string InterfaceName;
  BackendModule Module = BackendModule::SEL;
  bool BaselineEmitted = false;
  bool RepairedPassed = false; ///< oracle verdict after repair
  int RepairedAtRound = 0;     ///< 0 = never fully repaired
  size_t SitesExamined = 0;
  size_t CandidatesTried = 0;
  size_t StatementsReplaced = 0; ///< committed replacements only
};

/// Cumulative accuracy after each round (Rounds[0] is the pass@k headline:
/// accuracy when every flagged function may take one beam-repair round).
struct RoundStats {
  int Round = 0;
  size_t FunctionsRepaired = 0; ///< cumulative across rounds
  double FunctionAccuracy = 0.0;
};

/// The full result of one repairBackend() run.
struct RepairReport {
  std::string TargetName;
  RepairOptions Options; ///< the options the run actually used

  BackendEval BaselineEval; ///< greedy pass@1 evaluation of the input
  BackendEval RepairedEval; ///< evaluation of RepairedBackend
  GeneratedBackend RepairedBackend;

  std::vector<RoundStats> Rounds;
  size_t FunctionsFlagged = 0;  ///< golden exists but pass@1 failed
  size_t FunctionsRepaired = 0; ///< flagged functions now passing
  size_t StatementsAutoRepaired = 0;
  size_t CandidatesTried = 0;

  /// Residual manual effort (EffortModel hours) before/after repair.
  double BaselineHoursA = 0.0, RepairedHoursA = 0.0;
  double BaselineHoursB = 0.0, RepairedHoursB = 0.0;

  std::vector<FunctionRepair> Functions; ///< flagged functions, in order
  std::vector<StatementRepair> Repairs;  ///< committed repairs, in order
  /// Refuted high-confidence candidates, in function-index order (empty
  /// unless Options.CollectRejected).
  std::vector<RejectedCandidate> Rejected;
};

/// The generate→validate→repair driver. Holds a reference to a trained
/// VegaSystem (templates built, model trained); one engine can repair any
/// number of backends.
class RepairEngine {
public:
  RepairEngine(VegaSystem &System, RepairOptions Options);
  ~RepairEngine();

  /// Repairs \p Backend against the corpus golden for its target.
  /// InvalidArgument when the options fail validation or the target is
  /// unknown; FailedPrecondition when the target has no golden backend to
  /// serve as the oracle. Functions without a golden counterpart (spurious
  /// emissions) are left untouched — the oracle cannot validate them.
  StatusOr<RepairReport> repairBackend(const GeneratedBackend &Backend);

  const RepairOptions &options() const { return Options; }

private:
  struct FunctionTask;
  struct FunctionResult;
  FunctionResult repairFunction(const FunctionTask &Task,
                                const TargetTraits &Traits,
                                const std::string &TargetName);

  VegaSystem &System;
  RepairOptions Options;
  std::unique_ptr<ThreadPool> Pool;
};

} // namespace repair
} // namespace vega

#endif // VEGA_REPAIR_REPAIRENGINE_H
