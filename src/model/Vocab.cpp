//===- model/Vocab.cpp - Token vocabulary for CodeBE -------------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "model/Vocab.h"

#include "support/StringUtils.h"

#include <cassert>
#include <cmath>

using namespace vega;

Vocab::Vocab() {
  PadId = addToken(Pad);
  UnkId = addToken(Unk);
  ClsId = addToken(Cls);
  SepId = addToken(Sep);
  E2dId = addToken(E2d);
  EosId = addToken(Eos);
  NullId = addToken(Null);
  TrueId = addToken(True);
  FalseId = addToken(False);
  CsBase = static_cast<int>(Tokens.size());
  for (int B = 0; B < NumCsBuckets; ++B)
    addToken(csToken(B));
}

int Vocab::csBucket(double Score) {
  if (Score < 0.0)
    Score = 0.0;
  if (Score > 1.0)
    Score = 1.0;
  return static_cast<int>(std::lround(Score * (NumCsBuckets - 1)));
}

std::string Vocab::csToken(int Bucket) {
  return "[CS_" + std::to_string(Bucket) + "]";
}

double Vocab::csValueOf(int Id) const {
  if (!isCsToken(Id))
    return -1.0;
  return static_cast<double>(Id - CsBase) / (NumCsBuckets - 1);
}

bool Vocab::isCsToken(int Id) const {
  return Id >= CsBase && Id < CsBase + NumCsBuckets;
}

int Vocab::addToken(const std::string &Text) {
  auto It = Index.find(Text);
  if (It != Index.end())
    return It->second;
  int Id = static_cast<int>(Tokens.size());
  Tokens.push_back(Text);
  Index.emplace(Text, Id);

  // Piece decomposition. Special tokens ([...]) and punctuation get a
  // single dedicated piece; identifiers decompose into lowercase words.
  std::vector<int> PieceIds;
  auto PieceId = [&](const std::string &Piece) {
    auto [PIt, Inserted] = PieceIndex.emplace(Piece, PieceCount);
    if (Inserted)
      ++PieceCount;
    return PIt->second;
  };
  if (!Text.empty() && Text.front() != '[' &&
      (std::isalpha(static_cast<unsigned char>(Text.front())) ||
       Text.front() == '_' || Text.front() == '$' || Text.front() == '"')) {
    for (const std::string &W : splitIdentifierWords(Text))
      PieceIds.push_back(PieceId(W));
  }
  if (PieceIds.empty())
    PieceIds.push_back(PieceId("<" + Text + ">"));
  Pieces.push_back(std::move(PieceIds));
  return Id;
}

int Vocab::idOf(const std::string &Text) const {
  auto It = Index.find(Text);
  return It == Index.end() ? UnkId : It->second;
}

bool Vocab::contains(const std::string &Text) const {
  return Index.count(Text) != 0;
}

const std::string &Vocab::textOf(int Id) const {
  assert(Id >= 0 && Id < static_cast<int>(Tokens.size()) &&
         "token id out of range");
  return Tokens[static_cast<size_t>(Id)];
}

std::string Vocab::serialize() const {
  std::string Blob;
  // Specials are reconstructed by the constructor; serialize the rest.
  for (size_t I = static_cast<size_t>(CsBase) + NumCsBuckets;
       I < Tokens.size(); ++I) {
    Blob += Tokens[I];
    Blob += '\n';
  }
  return Blob;
}

Vocab Vocab::deserialize(const std::string &Blob) {
  Vocab V;
  for (const std::string &Line : splitLines(Blob))
    V.addToken(Line);
  return V;
}
