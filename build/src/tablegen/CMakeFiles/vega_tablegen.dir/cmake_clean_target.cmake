file(REMOVE_RECURSE
  "libvega_tablegen.a"
)
