//===- serve/Transport.h - NDJSON transport helpers --------------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire plumbing shared by the shard daemon (VegaServer) and the fleet
/// front-end (VegaRouter): a blocking NDJSON serve loop over an AF_UNIX
/// socket, and the matching connect-per-call client used to forward lines
/// to a remote shard. Both sides speak one line in, one line out, so the
/// router can forward a request verbatim and relay the shard's response
/// verbatim — byte-transparent by construction.
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_SERVE_TRANSPORT_H
#define VEGA_SERVE_TRANSPORT_H

#include "support/Status.h"

#include <functional>
#include <string>

namespace vega {
namespace serve {

/// Serves newline-delimited request lines at AF_UNIX socket \p Path
/// (created fresh; an existing file is replaced, and unlinked on return).
/// One thread per connection; \p Handler is called once per non-empty line
/// and must return one response line (no trailing newline). The accept
/// loop polls every 200ms and returns once \p ShutdownRequested() turns
/// true — e.g. after a `shutdown` request was processed on any connection.
Status serveSocketLines(const std::string &Path,
                        const std::function<std::string(const std::string &)>
                            &Handler,
                        const std::function<bool()> &ShutdownRequested);

/// One NDJSON round trip to the daemon at AF_UNIX socket \p Path: connect,
/// send \p Line (newline appended), read one response line, close. Returns
/// Unavailable when the daemon cannot be reached or hangs up early.
StatusOr<std::string> callSocketLine(const std::string &Path,
                                     const std::string &Line);

} // namespace serve
} // namespace vega

#endif // VEGA_SERVE_TRANSPORT_H
