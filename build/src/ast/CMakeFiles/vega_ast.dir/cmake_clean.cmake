file(REMOVE_RECURSE
  "CMakeFiles/vega_ast.dir/Normalize.cpp.o"
  "CMakeFiles/vega_ast.dir/Normalize.cpp.o.d"
  "CMakeFiles/vega_ast.dir/Parser.cpp.o"
  "CMakeFiles/vega_ast.dir/Parser.cpp.o.d"
  "CMakeFiles/vega_ast.dir/Statement.cpp.o"
  "CMakeFiles/vega_ast.dir/Statement.cpp.o.d"
  "libvega_ast.a"
  "libvega_ast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vega_ast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
