file(REMOVE_RECURSE
  "CMakeFiles/ablation_features.dir/ablation_features.cpp.o"
  "CMakeFiles/ablation_features.dir/ablation_features.cpp.o.d"
  "ablation_features"
  "ablation_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
