file(REMOVE_RECURSE
  "CMakeFiles/ablation_model_capacity.dir/ablation_model_capacity.cpp.o"
  "CMakeFiles/ablation_model_capacity.dir/ablation_model_capacity.cpp.o.d"
  "ablation_model_capacity"
  "ablation_model_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_model_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
