# Empty dependencies file for bench_serialization_test.
# This may be replaced when dependencies are built.
