//===- forkflow/ForkFlow.h - The fork-flow baseline --------------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The traditional FORKFLOW baseline (§4.2): fork every function from the
/// most similar existing backend and port it by renaming the source
/// target's identifier spellings to the new target's. This is exactly how
/// real out-of-tree backends start life, and exactly why it scores below
/// 8% in the paper — the forked code keeps the donor's fixups, relocations,
/// latencies, and architectural assumptions.
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_FORKFLOW_FORKFLOW_H
#define VEGA_FORKFLOW_FORKFLOW_H

#include "core/Pipeline.h"
#include "corpus/Corpus.h"

namespace vega {

/// Picks the training target whose traits are most similar to
/// \p NewTarget's (the paper forks from MIPS; the chooser reproduces that
/// preference for RISC-like targets).
std::string chooseForkSource(const BackendCorpus &Corpus,
                             const std::string &NewTarget);

/// Forks \p SourceTarget's backend and renames it for \p NewTarget.
/// Returned as a GeneratedBackend so the same harness evaluates it.
GeneratedBackend forkflowBackend(const BackendCorpus &Corpus,
                                 const std::string &SourceTarget,
                                 const std::string &NewTarget);

} // namespace vega

#endif // VEGA_FORKFLOW_FORKFLOW_H
