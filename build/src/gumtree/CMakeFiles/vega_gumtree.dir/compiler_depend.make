# Empty compiler generated dependencies file for vega_gumtree.
# This may be replaced when dependencies are built.
