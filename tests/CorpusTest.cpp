//===- tests/CorpusTest.cpp - vega_corpus unit tests ---------------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "ast/Parser.h"
#include "corpus/Corpus.h"
#include "corpus/SynthFramework.h"

#include <gtest/gtest.h>

using namespace vega;

namespace {

/// The corpus is expensive to build; share one across the whole suite.
const BackendCorpus &sharedCorpus() {
  static BackendCorpus Corpus =
      BackendCorpus::build(TargetDatabase::standard());
  return Corpus;
}

} // namespace

TEST(TargetDatabase, HasTrainingAndEvaluationTargets) {
  TargetDatabase DB = TargetDatabase::standard();
  EXPECT_EQ(DB.targets().size(), 24u);
  EXPECT_EQ(DB.trainingTargets().size(), 21u);
  for (const std::string &Name : TargetDatabase::evaluationTargetNames()) {
    const TargetTraits *T = DB.find(Name);
    ASSERT_NE(T, nullptr) << Name;
  }
}

TEST(TargetDatabase, EvaluationTargetsMatchThePaper) {
  TargetDatabase DB = TargetDatabase::standard();
  const TargetTraits *RiscV = DB.find("RISCV");
  ASSERT_NE(RiscV, nullptr);
  EXPECT_TRUE(RiscV->HasCompressed);
  const TargetTraits *Ri5cy = DB.find("RI5CY");
  ASSERT_NE(Ri5cy, nullptr);
  EXPECT_TRUE(Ri5cy->HasHardwareLoop); // ULP DSP extensions
  EXPECT_TRUE(Ri5cy->HasSimd);
  const TargetTraits *Xcore = DB.find("XCORE");
  ASSERT_NE(Xcore, nullptr);
  EXPECT_TRUE(Xcore->HasThreadScheduler);
  EXPECT_FALSE(Xcore->HasDisassembler); // LLVM 3.0 port lacks DIS (§4.1.4)
}

TEST(TargetDatabase, EveryTargetHasCoreInstructionClasses) {
  TargetDatabase DB = TargetDatabase::standard();
  for (const TargetTraits &T : DB.targets()) {
    EXPECT_NE(T.findInstr(InstrClass::Alu), nullptr) << T.Name;
    EXPECT_NE(T.findInstr(InstrClass::Load), nullptr) << T.Name;
    EXPECT_NE(T.findInstr(InstrClass::Branch), nullptr) << T.Name;
    EXPECT_NE(T.findInstr(InstrClass::Ret), nullptr) << T.Name;
    EXPECT_FALSE(T.Fixups.empty()) << T.Name;
    EXPECT_FALSE(T.RegisterNames.empty()) << T.Name;
  }
}

TEST(TargetDatabase, FeatureInstructionsTrackFlags) {
  TargetDatabase DB = TargetDatabase::standard();
  for (const TargetTraits &T : DB.targets()) {
    EXPECT_EQ(T.findInstr(InstrClass::HwLoop) != nullptr, T.HasHardwareLoop)
        << T.Name;
    EXPECT_EQ(T.findInstr(InstrClass::Simd) != nullptr, T.HasSimd) << T.Name;
    EXPECT_EQ(T.findInstr(InstrClass::Thread) != nullptr,
              T.HasThreadScheduler)
        << T.Name;
  }
}

TEST(SplitFunctionSources, SplitsMultipleDefinitions) {
  const char *Src = R"(
int a() {
  return 1;
}

int b(int x) {
  if (x) {
    return 2;
  }
  return 3;
}
)";
  auto Pieces = splitFunctionSources(Src);
  ASSERT_EQ(Pieces.size(), 2u);
  EXPECT_NE(Pieces[0].find("int a()"), std::string::npos);
  EXPECT_NE(Pieces[1].find("int b(int x)"), std::string::npos);
}

TEST(Preprocess, InlinesForwardingHelper) {
  const char *Src = R"(
unsigned W::getRelocType(int K) {
  return GetRelocTypeInner(K);
}
unsigned W::GetRelocTypeInner(int K) {
  if (K) {
    return 1;
  }
  return 2;
}
)";
  auto Fn = preprocessFunctionSource(Src);
  ASSERT_TRUE(static_cast<bool>(Fn));
  EXPECT_EQ(Fn->Name, "getRelocType");
  // The body is the helper's, not the forwarding return.
  ASSERT_EQ(Fn->Body.size(), 2u);
  EXPECT_EQ(Fn->Body[0]->Kind, StmtKind::If);
}

TEST(Corpus, BuildsAllBackends) {
  const BackendCorpus &Corpus = sharedCorpus();
  EXPECT_EQ(Corpus.backends().size(), 24u);
  for (const auto &B : Corpus.backends()) {
    EXPECT_GE(B->Functions.size(), 30u) << B->TargetName;
    EXPECT_GT(B->statementCount(), 150u) << B->TargetName;
  }
}

TEST(Corpus, VariantKindOnlyInVariantTargets) {
  const BackendCorpus &Corpus = sharedCorpus();
  const Backend *Arm = Corpus.backend("ARM");
  const Backend *Mips = Corpus.backend("Mips");
  ASSERT_NE(Arm, nullptr);
  ASSERT_NE(Mips, nullptr);
  auto HasVariantStmt = [](const Backend &B) {
    const BackendFunction *F = B.find("getRelocType");
    for (const auto &FS : F->AST.flatten())
      for (const Token &T : FS.Stmt->Tokens)
        if (T.Text == "VariantKind")
          return true;
    return false;
  };
  EXPECT_TRUE(HasVariantStmt(*Arm));   // paper Fig. 2(a) S2 present
  EXPECT_FALSE(HasVariantStmt(*Mips)); // paper Fig. 2(b) S2 absent
}

TEST(Corpus, DisassemblerAbsentForXCORE) {
  const BackendCorpus &Corpus = sharedCorpus();
  const Backend *Xcore = Corpus.backend("XCORE");
  ASSERT_NE(Xcore, nullptr);
  EXPECT_EQ(Xcore->find("getInstruction"), nullptr);
  EXPECT_EQ(Xcore->find("readInstruction32"), nullptr);
}

TEST(Corpus, FunctionGroupsCoverTrainingTargets) {
  const BackendCorpus &Corpus = sharedCorpus();
  auto Groups = Corpus.trainingGroups();
  EXPECT_EQ(Groups.size(), interfaceFunctions().size());
  for (const FunctionGroup &G : Groups) {
    EXPECT_FALSE(G.Members.empty()) << G.InterfaceName;
    for (const BackendFunction *F : G.Members)
      EXPECT_EQ(F->InterfaceName, G.InterfaceName);
  }
  // getRelocType applies to every training target.
  for (const FunctionGroup &G : Groups)
    if (G.InterfaceName == "getRelocType")
      EXPECT_EQ(G.Members.size(), 21u);
}

TEST(Corpus, GoldenSourcesReparseToTheirOwnRender) {
  const BackendCorpus &Corpus = sharedCorpus();
  // Property: every preprocessed golden AST renders to text that reparses
  // to an identical statement tree.
  for (const auto &B : Corpus.backends()) {
    for (const auto &F : B->Functions) {
      auto Fn2 = parseFunction(F->AST.render());
      ASSERT_TRUE(static_cast<bool>(Fn2))
          << B->TargetName << "::" << F->InterfaceName;
      EXPECT_EQ(Fn2->size(), F->AST.size())
          << B->TargetName << "::" << F->InterfaceName;
    }
  }
}

TEST(Corpus, DescriptionFilesExistForEveryTarget) {
  const BackendCorpus &Corpus = sharedCorpus();
  for (const TargetTraits &T : Corpus.targets().targets()) {
    std::string Dir = "lib/Target/" + T.Name + "/";
    EXPECT_TRUE(Corpus.vfs().exists(Dir + T.Name + ".td")) << T.Name;
    EXPECT_TRUE(Corpus.vfs().exists(Dir + T.Name + "InstrInfo.td")) << T.Name;
    EXPECT_TRUE(Corpus.vfs().exists(Dir + T.Name + "FixupKinds.h")) << T.Name;
    EXPECT_TRUE(Corpus.vfs().exists("llvm/BinaryFormat/ELFRelocs/" + T.Name +
                                    ".def"))
        << T.Name;
  }
  for (const std::string &Dir : llvmDirs())
    EXPECT_FALSE(Corpus.vfs().filesUnder(Dir).empty()) << Dir;
}
