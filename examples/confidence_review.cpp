//===- examples/confidence_review.cpp - developer triage ------------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// The paper's productivity story (§4.2, Table 4): VEGA attaches a
/// confidence score to every generated function and statement, so a
/// developer starts at the lowest-confidence code. This example generates
/// a backend, sorts functions by confidence, cross-checks the triage
/// against the pass@1 oracle, and prints the suggested review order.
///
///   ./build/examples/confidence_review [RISCV|RI5CY|XCORE] [epochs]
///
//===----------------------------------------------------------------------===//

#include "eval/Harness.h"
#include "support/TextTable.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

using namespace vega;

int main(int argc, char **argv) {
  std::string Target = argc > 1 ? argv[1] : "RISCV";
  int Epochs = argc > 2 ? std::atoi(argv[2]) : 6;

  BackendCorpus Corpus = BackendCorpus::build(TargetDatabase::standard());
  VegaOptions Opts;
  Opts.Model.Epochs = Epochs;
  Opts.WeightCachePath = "vega_example_model.bin";
  VegaSystem Sys(Corpus, Opts);
  Sys.buildTemplates();
  Sys.buildDataset();
  Sys.trainModel();

  GeneratedBackend GB = Sys.generateBackend(Target);
  BackendEval Eval = evaluateBackend(GB, *Corpus.backend(Target),
                                     *Corpus.targets().find(Target));

  std::vector<const FunctionEval *> Order;
  for (const FunctionEval &F : Eval.Functions)
    Order.push_back(&F);
  std::sort(Order.begin(), Order.end(),
            [](const FunctionEval *A, const FunctionEval *B) {
              return A->Confidence < B->Confidence;
            });

  TextTable Table;
  Table.setHeader({"Review order", "Function", "Module", "Confidence",
                   "pass@1", "Manual stmts"});
  int Rank = 1;
  for (const FunctionEval *F : Order)
    Table.addRow({std::to_string(Rank++), F->InterfaceName,
                  moduleName(F->Module),
                  TextTable::formatDouble(F->Confidence, 2),
                  F->Accurate ? "pass" : "FIX",
                  std::to_string(F->ManualStatements)});
  std::printf("== suggested review order for %s (lowest confidence first) "
              "==\n%s\n",
              Target.c_str(), Table.render().c_str());

  // How good is the triage? Average confidence of passing vs failing
  // functions should separate.
  double PassSum = 0.0, FailSum = 0.0;
  size_t PassN = 0, FailN = 0;
  for (const FunctionEval *F : Order) {
    if (F->Accurate) {
      PassSum += F->Confidence;
      ++PassN;
    } else {
      FailSum += F->Confidence;
      ++FailN;
    }
  }
  std::printf("mean confidence: passing %.2f (%zu fns) vs failing %.2f "
              "(%zu fns)\n",
              PassN ? PassSum / PassN : 0.0, PassN,
              FailN ? FailSum / FailN : 0.0, FailN);
  std::printf("a useful confidence signal ranks failing functions below "
              "passing ones, exactly like the paper's Err-CS analysis\n");
  return 0;
}
