//===- ast/Parser.h - Statement-tree parser ----------------------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses corpus function sources into statement trees (FunctionAST). The
/// grammar is the C++ subset the backend corpus is written in: declarations,
/// assignments, if/else, switch/case, return/break, and calls.
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_AST_PARSER_H
#define VEGA_AST_PARSER_H

#include "ast/Statement.h"
#include "support/Error.h"

#include <string_view>

namespace vega {

/// Parses one function definition (text from the "ret Type qual::name(...) {"
/// line through its closing '}').
Expected<FunctionAST> parseFunction(std::string_view Source);

/// Parses a single statement line (no block body) into a Statement.
/// Used to reconstruct statements from model output.
Statement parseStatementLine(std::string_view Line);

/// Classifies a token sequence into a StmtKind (shared by the parser and by
/// statement reconstruction from generated text).
StmtKind classifyStatement(const std::vector<Token> &Tokens);

} // namespace vega

#endif // VEGA_AST_PARSER_H
