//===- ast/Statement.cpp - Statement-level AST ----------------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "ast/Statement.h"

#include <cassert>

using namespace vega;

const char *vega::stmtKindName(StmtKind Kind) {
  switch (Kind) {
  case StmtKind::FunctionDef:
    return "function-def";
  case StmtKind::Decl:
    return "decl";
  case StmtKind::Assign:
    return "assign";
  case StmtKind::If:
    return "if";
  case StmtKind::ElseIf:
    return "else-if";
  case StmtKind::Else:
    return "else";
  case StmtKind::Switch:
    return "switch";
  case StmtKind::Case:
    return "case";
  case StmtKind::Default:
    return "default";
  case StmtKind::Return:
    return "return";
  case StmtKind::Break:
    return "break";
  case StmtKind::Call:
    return "call";
  case StmtKind::BlockEnd:
    return "block-end";
  case StmtKind::Other:
    return "other";
  }
  return "unknown";
}

std::unique_ptr<Statement> Statement::clone() const {
  auto Copy = std::make_unique<Statement>(Kind, Tokens);
  Copy->Children.reserve(Children.size());
  for (const auto &Child : Children)
    Copy->Children.push_back(Child->clone());
  return Copy;
}

std::string Statement::text() const { return renderTokens(Tokens); }

bool Statement::opensBlock() const {
  if (Kind == StmtKind::Case || Kind == StmtKind::Default)
    return true;
  return !Tokens.empty() && Tokens.back().isPunct("{");
}

size_t Statement::treeSize() const {
  size_t N = 1;
  for (const auto &Child : Children)
    N += Child->treeSize();
  return N;
}

std::string vega::renderTokens(const std::vector<Token> &Tokens) {
  std::string Out;
  for (size_t I = 0, E = Tokens.size(); I != E; ++I) {
    const Token &T = Tokens[I];
    if (I != 0) {
      const Token &Prev = Tokens[I - 1];
      bool NoSpace = false;
      // Tight binders: member access, scope, call/array parens.
      if (T.isPunct(";") || T.isPunct(",") || T.isPunct(")") ||
          T.isPunct("]") || T.isPunct("::") || T.isPunct(".") ||
          T.isPunct("->") || T.isPunct("++") || T.isPunct("--") ||
          T.isPunct(":"))
        NoSpace = true;
      if (Prev.isPunct("(") || Prev.isPunct("[") || Prev.isPunct("::") ||
          Prev.isPunct(".") || Prev.isPunct("->") || Prev.isPunct("!") ||
          Prev.isPunct("~"))
        NoSpace = true;
      // Call parenthesis: identifier immediately followed by '('.
      if (T.isPunct("(") && (Prev.Kind == TokenKind::Identifier ||
                             Prev.isPunct("::") || Prev.isPunct(")")))
        NoSpace = true;
      if (NoSpace) {
        Out += T.Text;
        continue;
      }
      Out += ' ';
    }
    Out += T.Text;
  }
  return Out;
}

static bool isElseLike(const Statement &Stmt) {
  return Stmt.Kind == StmtKind::Else || Stmt.Kind == StmtKind::ElseIf;
}

void vega::renderStatementList(
    const std::vector<std::unique_ptr<Statement>> &Stmts, int Depth,
    std::string &Out) {
  for (size_t I = 0, E = Stmts.size(); I != E; ++I) {
    const Statement &Stmt = *Stmts[I];
    bool NextIsElse = I + 1 < E && isElseLike(*Stmts[I + 1]);
    Out.append(static_cast<size_t>(Depth) * 2, ' ');
    if (isElseLike(Stmt))
      Out += "} "; // joins the previous block: "} else {"
    Out += Stmt.text();
    Out += '\n';
    renderStatementList(Stmt.Children, Depth + 1, Out);
    // Close an explicit brace-opened block unless an else clause follows and
    // will supply the '}' itself. Case/Default labels have no brace.
    if (!Stmt.Tokens.empty() && Stmt.Tokens.back().isPunct("{") &&
        !NextIsElse) {
      Out.append(static_cast<size_t>(Depth) * 2, ' ');
      Out += "}\n";
    }
  }
}

void vega::renderStatement(const Statement &Stmt, int Depth,
                           std::string &Out) {
  std::vector<std::unique_ptr<Statement>> One;
  One.push_back(Stmt.clone());
  renderStatementList(One, Depth, Out);
}

FunctionAST FunctionAST::clone() const {
  FunctionAST Copy;
  Copy.Name = Name;
  Copy.Qualifier = Qualifier;
  Copy.Definition = Statement(Definition.Kind, Definition.Tokens);
  Copy.Body.reserve(Body.size());
  for (const auto &Stmt : Body)
    Copy.Body.push_back(Stmt->clone());
  return Copy;
}

std::string FunctionAST::render() const {
  std::string Out = Definition.text();
  Out += '\n';
  renderStatementList(Body, 1, Out);
  Out += "}\n";
  return Out;
}

static void flattenInto(const Statement &Stmt, int Depth,
                        std::vector<FunctionAST::FlatStatement> &Out) {
  Out.push_back({&Stmt, Depth});
  for (const auto &Child : Stmt.Children)
    flattenInto(*Child, Depth + 1, Out);
}

std::vector<FunctionAST::FlatStatement> FunctionAST::flatten() const {
  std::vector<FlatStatement> Out;
  Out.push_back({&Definition, 0});
  for (const auto &Stmt : Body)
    flattenInto(*Stmt, 1, Out);
  return Out;
}

static void flattenMutableInto(Statement &Stmt, std::vector<Statement *> &Out) {
  Out.push_back(&Stmt);
  for (auto &Child : Stmt.Children)
    flattenMutableInto(*Child, Out);
}

std::vector<Statement *> FunctionAST::flattenMutable() {
  std::vector<Statement *> Out;
  Out.push_back(&Definition);
  for (auto &Stmt : Body)
    flattenMutableInto(*Stmt, Out);
  return Out;
}

size_t FunctionAST::size() const {
  size_t N = 1;
  for (const auto &Stmt : Body)
    N += Stmt->treeSize();
  return N;
}
