//===- obs/Metrics.h - Named counters, gauges, histograms --------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide, thread-safe metrics registry: monotonically increasing
/// counters, last-write-wins gauges, and fixed-bucket histograms (e.g. the
/// per-statement confidence distribution and the tokens-decoded
/// distribution). Like the TraceRecorder, it is disabled by default and a
/// disabled mutation costs one atomic load.
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_OBS_METRICS_H
#define VEGA_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace vega {
namespace obs {

/// A fixed-bucket histogram over [Lo, Hi). Out-of-range observations clamp
/// into the first/last bucket so Count always equals the sum of Buckets.
struct Histogram {
  double Lo = 0.0, Hi = 1.0;
  std::vector<uint64_t> Buckets;
  uint64_t Count = 0;
  double Sum = 0.0;
  double MinSeen = 0.0, MaxSeen = 0.0;

  /// Index of the bucket \p Value falls into (clamped to the edge buckets).
  size_t bucketFor(double Value) const;

  void observe(double Value);

  double mean() const { return Count ? Sum / static_cast<double>(Count) : 0.0; }
};

class MetricsRegistry {
public:
  static MetricsRegistry &instance();

  void setEnabled(bool On) { Enabled.store(On, std::memory_order_relaxed); }
  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }

  /// Drops every metric (definitions included).
  void clear();

  void addCounter(const std::string &Name, uint64_t Delta = 1);
  void setGauge(const std::string &Name, double Value);

  /// Declares a histogram's shape. Safe to call repeatedly; the first call
  /// wins. Works while disabled so shapes survive an enable toggle.
  void defineHistogram(const std::string &Name, double Lo, double Hi,
                       size_t BucketCount);

  /// Records \p Value into histogram \p Name, defining it as 10 buckets over
  /// [0, 1) when it does not exist yet.
  void observe(const std::string &Name, double Value);

  /// Records \p Value, defining the histogram with the given shape when it
  /// does not exist yet (the usual call for non-unit-interval metrics).
  void observe(const std::string &Name, double Value, double Lo, double Hi,
               size_t BucketCount);

  // ---- Read side (tests, exporters) ----
  uint64_t counterValue(const std::string &Name) const;
  std::optional<double> gaugeValue(const std::string &Name) const;
  std::optional<Histogram> histogram(const std::string &Name) const;
  /// Total number of distinct metrics (counters + gauges + histograms).
  size_t metricCount() const;

  /// All metrics as one JSON object, keyed by name within kind.
  std::string exportJson() const;

  /// Writes exportJson() to \p Path; false on I/O failure.
  bool writeJson(const std::string &Path) const;

  /// A human-readable summary (support/TextTable) for `vega-cli --stats`.
  std::string textSummary() const;

private:
  MetricsRegistry() = default;

  std::atomic<bool> Enabled{false};
  mutable std::mutex Mu;
  std::map<std::string, uint64_t> Counters;
  std::map<std::string, double> Gauges;
  std::map<std::string, Histogram> Histograms;
};

} // namespace obs
} // namespace vega

#endif // VEGA_OBS_METRICS_H
