//===- bench/table3_statement_effort.cpp - Table 3 -----------------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// Table 3: statements accurately generated ("Accurate") versus needing
/// manual correction ("Manual Effort") per function module for the three
/// generated backends. Shape to match: SEL carries the largest counts in
/// both columns; REG and DIS the smallest; xCORE has no DIS row.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/TextTable.h"

#include <cstdio>

using namespace vega;

int main() {
  TextTable Table;
  Table.setHeader({"Module", "RISCV acc", "RISCV man", "RI5CY acc",
                   "RI5CY man", "XCORE acc", "XCORE man"});
  const std::vector<std::string> Targets = {"RISCV", "RI5CY", "XCORE"};

  std::map<std::string, std::pair<size_t, size_t>> Totals;
  for (BackendModule Module : AllModules) {
    std::vector<std::string> Row = {moduleName(Module)};
    for (const std::string &Target : Targets) {
      const BackendEval &Eval = bench::evaluation(Target);
      auto It = Eval.PerModule.find(Module);
      if (It == Eval.PerModule.end() || It->second.Functions == 0) {
        Row.push_back("-");
        Row.push_back("-");
        continue;
      }
      Totals[Target].first += It->second.AccurateStatements;
      Totals[Target].second += It->second.ManualStatements;
      Row.push_back(std::to_string(It->second.AccurateStatements));
      Row.push_back(std::to_string(It->second.ManualStatements));
    }
    Table.addRow(std::move(Row));
  }
  Table.addSeparator();
  std::vector<std::string> All = {"ALL"};
  for (const std::string &Target : Targets) {
    All.push_back(std::to_string(Totals[Target].first));
    All.push_back(std::to_string(Totals[Target].second));
  }
  Table.addRow(std::move(All));

  std::printf("== Table 3: accurate vs manual-effort statements ==\n%s\n",
              Table.render().c_str());
  std::printf("paper (at LLVM scale): RISC-V 5524/7223, RI5CY 6996/8783, "
              "xCORE 1071/3516 — shape to match: a large accurate pool with "
              "a manual remainder concentrated in SEL/OPT/ASS\n");
  return 0;
}
