# Empty compiler generated dependencies file for vega_ast.
# This may be replaced when dependencies are built.
