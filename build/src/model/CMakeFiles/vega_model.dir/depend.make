# Empty dependencies file for vega_model.
# This may be replaced when dependencies are built.
