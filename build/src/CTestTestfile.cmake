# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("lexer")
subdirs("ast")
subdirs("gumtree")
subdirs("tablegen")
subdirs("corpus")
subdirs("templatize")
subdirs("feature")
subdirs("model")
subdirs("interp")
subdirs("minicc")
subdirs("sim")
subdirs("core")
subdirs("forkflow")
subdirs("eval")
