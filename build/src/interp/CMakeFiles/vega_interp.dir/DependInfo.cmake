
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/interp/Interpreter.cpp" "src/interp/CMakeFiles/vega_interp.dir/Interpreter.cpp.o" "gcc" "src/interp/CMakeFiles/vega_interp.dir/Interpreter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ast/CMakeFiles/vega_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/lexer/CMakeFiles/vega_lexer.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/vega_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
