file(REMOVE_RECURSE
  "libvega_model.a"
)
