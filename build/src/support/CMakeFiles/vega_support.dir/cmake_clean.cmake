file(REMOVE_RECURSE
  "CMakeFiles/vega_support.dir/StringUtils.cpp.o"
  "CMakeFiles/vega_support.dir/StringUtils.cpp.o.d"
  "CMakeFiles/vega_support.dir/TextTable.cpp.o"
  "CMakeFiles/vega_support.dir/TextTable.cpp.o.d"
  "CMakeFiles/vega_support.dir/VirtualFileSystem.cpp.o"
  "CMakeFiles/vega_support.dir/VirtualFileSystem.cpp.o.d"
  "libvega_support.a"
  "libvega_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vega_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
