//===- serve/Router.cpp - The fleet routing front-end -------------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "serve/Router.h"

#include "obs/Log.h"
#include "obs/Metrics.h"
#include "serve/Transport.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <set>
#include <utility>

using namespace vega;
using namespace vega::serve;

LocalShard::LocalShard(std::string Id, std::unique_ptr<VegaSession> Session,
                       ServerOptions Options)
    : Id(std::move(Id)), Session(std::move(Session)) {
  Server = std::make_unique<VegaServer>(*this->Session, Options);
}

LocalShard::~LocalShard() = default;

StatusOr<std::string> LocalShard::call(const std::string &Line) {
  return Server->handleLine(Line);
}

uint64_t LocalShard::queueDepth() const {
  return Server->scheduler().stats().QueueDepth;
}

SocketShard::SocketShard(std::string Id, std::string Path)
    : Id(std::move(Id)), Path(std::move(Path)) {}

StatusOr<std::string> SocketShard::call(const std::string &Line) {
  return callSocketLine(Path, Line);
}

VegaRouter::VegaRouter(std::vector<std::unique_ptr<ShardEndpoint>> Endpoints,
                       RouterOptions Options)
    : Options(Options), StartTime(std::chrono::steady_clock::now()) {
  if (this->Options.ShardWindow < 0)
    this->Options.ShardWindow = 0;
  obs::MetricsRegistry::instance().setEnabled(true);
  for (std::unique_ptr<ShardEndpoint> &E : Endpoints) {
    auto State = std::make_unique<ShardState>();
    State->Endpoint = std::move(E);
    Shards.push_back(std::move(State));
  }
}

VegaRouter::~VegaRouter() = default;

Status VegaRouter::init() {
  if (Shards.empty())
    return Status::failedPrecondition("router needs at least one shard");
  // Each shard reports its own target list; the fleet serves the union.
  // A target served by several shards gets one owner, chosen round-robin
  // over the union so identical shards split the corpus evenly.
  std::vector<std::set<std::string>> PerShard(Shards.size());
  std::set<std::string> Union;
  const std::string InfoLine =
      "{\"jsonrpc\":\"2.0\",\"id\":0,\"method\":\"info\"}";
  for (size_t I = 0; I < Shards.size(); ++I) {
    StatusOr<std::string> Response = Shards[I]->Endpoint->call(InfoLine);
    if (!Response.isOk())
      return Status::unavailable("shard '" + Shards[I]->Endpoint->id() +
                                 "' is unreachable: " +
                                 Response.status().message());
    StatusOr<Json> Parsed = Json::parse(*Response);
    const Json *Result = Parsed.isOk() ? Parsed->get("result") : nullptr;
    const Json *Targets = Result ? Result->get("targets") : nullptr;
    if (!Targets || !Targets->isArray() || Targets->size() == 0)
      return Status::failedPrecondition("shard '" +
                                        Shards[I]->Endpoint->id() +
                                        "' reports no targets");
    for (const Json &T : Targets->items())
      if (T.isString()) {
        PerShard[I].insert(T.asString());
        Union.insert(T.asString());
      }
  }
  ShardMap.clear();
  for (auto &Shard : Shards)
    Shard->Targets.clear();
  size_t Next = 0;
  for (const std::string &Target : Union) {
    // Owner = next shard (round-robin) that actually serves the target.
    size_t Owner = Shards.size();
    for (size_t Probe = 0; Probe < Shards.size(); ++Probe) {
      size_t Candidate = (Next + Probe) % Shards.size();
      if (PerShard[Candidate].count(Target)) {
        Owner = Candidate;
        break;
      }
    }
    if (Owner == Shards.size())
      continue; // unreachable: Target came from some shard's list
    ShardMap[Target] = Owner;
    Shards[Owner]->Targets.push_back(Target);
    Next = (Owner + 1) % Shards.size();
  }
  return Status::ok();
}

uint64_t VegaRouter::forwardCount(size_t Shard) const {
  return Shards[Shard]->Forwarded.load(std::memory_order_relaxed);
}

std::string VegaRouter::forwardLine(ShardState &Shard, const std::string &Line,
                                    const Json &Id) {
  auto &Metrics = obs::MetricsRegistry::instance();
  // Admission control at the edge: a saturated shard gets no new work; the
  // caller sees the same typed Overloaded code a shard's own full queue
  // produces.
  if (Options.ShardWindow > 0) {
    uint64_t InFlight = Shard.InFlight.fetch_add(1, std::memory_order_relaxed);
    if (InFlight >= static_cast<uint64_t>(Options.ShardWindow)) {
      Shard.InFlight.fetch_sub(1, std::memory_order_relaxed);
      Metrics.addCounter("router.rejected");
      return makeRpcError(
                 Id, Status::resourceExhausted(
                         "shard '" + Shard.Endpoint->id() + "' at capacity (" +
                         std::to_string(InFlight) + " in flight)"))
          .dump();
    }
  } else {
    Shard.InFlight.fetch_add(1, std::memory_order_relaxed);
  }
  Shard.Forwarded.fetch_add(1, std::memory_order_relaxed);
  Metrics.addCounter("router.forwarded",
                     {{"shard", Shard.Endpoint->id()}});
  StatusOr<std::string> Response = Shard.Endpoint->call(Line);
  Shard.InFlight.fetch_sub(1, std::memory_order_relaxed);
  if (!Response.isOk())
    return makeRpcError(Id, Response.status()).dump();
  // Relayed verbatim: the response through the router is byte-identical to
  // the shard's own.
  return std::move(Response.value());
}

std::string VegaRouter::handleLine(const std::string &Line) {
  auto &Metrics = obs::MetricsRegistry::instance();
  Metrics.addCounter("router.requests");
  StatusOr<RpcRequest> Parsed = parseRpcRequest(Line);
  if (!Parsed.isOk()) {
    const Status &St = Parsed.status();
    ErrorCode Code = St.message().rfind("parse error", 0) == 0
                         ? ErrorCode::ParseError
                         : ErrorCode::InvalidRequest;
    return makeRpcError(Json(), Code, St.message()).dump();
  }
  const RpcRequest &Request = *Parsed;
  const std::string &Method = Request.Method;

  if (Method == "ping") {
    Json Result = Json::object();
    Result.set("ok", true);
    return makeRpcResult(Request.Id, std::move(Result)).dump();
  }
  if (Method == "info")
    return makeRpcResult(Request.Id, handleInfo()).dump();
  if (Method == "stats")
    return makeRpcResult(Request.Id, handleStats()).dump();
  if (Method == "shutdown")
    return handleShutdown(Request.Id, Line);
  if (Method != "generate" && Method != "evaluate" && Method != "repair")
    return makeRpcError(Request.Id, ErrorCode::MethodNotFound,
                        "unknown method '" + Method + "'", "unimplemented")
        .dump();

  std::string Target = Request.Params.getString("target");
  if (Target.empty())
    return makeRpcError(Request.Id, ErrorCode::InvalidParams,
                        "params require a string 'target'", "invalid-argument")
        .dump();
  auto Owner = ShardMap.find(Target);
  if (Owner == ShardMap.end())
    // Same bytes a shard produces for an unknown target — clients cannot
    // tell whether routing or generation rejected them.
    return makeRpcError(Request.Id,
                        Status::notFound("unknown target '" + Target + "'"))
        .dump();
  return forwardLine(*Shards[Owner->second], Line, Request.Id);
}

Json VegaRouter::handleInfo() {
  Json Targets = Json::array();
  for (const auto &[Target, Owner] : ShardMap) {
    (void)Owner;
    Targets.push(Target);
  }
  Json ShardList = Json::array();
  for (auto &Shard : Shards) {
    Json Entry = Json::object();
    Entry.set("id", Shard->Endpoint->id());
    Json Owned = Json::array();
    for (const std::string &T : Shard->Targets)
      Owned.push(T);
    Entry.set("targets", std::move(Owned));
    Entry.set("inFlight", Shard->InFlight.load(std::memory_order_relaxed));
    Entry.set("queueDepth", Shard->Endpoint->queueDepth());
    ShardList.push(std::move(Entry));
  }
  Json Info = Json::object();
  Info.set("schema", "vega-serve-2");
  Info.set("router", true);
  Info.set("targets", std::move(Targets));
  Info.set("shardWindow", Options.ShardWindow);
  Info.set("shards", std::move(ShardList));
  return Info;
}

Json VegaRouter::handleStats() {
  auto &Metrics = obs::MetricsRegistry::instance();
  Json Stats = Json::object();
  Stats.set("schema", "vega-stats-1");
  Stats.set("uptimeSec",
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          StartTime)
                .count());
  Stats.set("requests", Metrics.counterValue("router.requests"));
  Json ShardList = Json::array();
  for (auto &Shard : Shards) {
    Json Entry = Json::object();
    Entry.set("id", Shard->Endpoint->id());
    Entry.set("inFlight", Shard->InFlight.load(std::memory_order_relaxed));
    Entry.set("forwarded", Shard->Forwarded.load(std::memory_order_relaxed));
    Entry.set("queueDepth", Shard->Endpoint->queueDepth());
    ShardList.push(std::move(Entry));
  }
  Stats.set("shards", std::move(ShardList));
  return Stats;
}

std::string VegaRouter::handleShutdown(const Json &Id,
                                       const std::string &Line) {
  // Fan out first so every shard's scheduler stops accepting work, then
  // stop the router's own transports.
  for (auto &Shard : Shards) {
    StatusOr<std::string> Response = Shard->Endpoint->call(Line);
    if (!Response.isOk() &&
        obs::Logger::instance().enabled(obs::LogLevel::Warn)) {
      Json Fields = Json::object();
      Fields.set("shard", Shard->Endpoint->id());
      Fields.set("error", Response.status().message());
      obs::Logger::instance().log(obs::LogLevel::Warn, "router.shutdown",
                                  Fields);
    }
  }
  Shutdown.store(true, std::memory_order_relaxed);
  Json Result = Json::object();
  Result.set("ok", true);
  return makeRpcResult(Id, std::move(Result)).dump();
}

Status VegaRouter::serveStream(std::istream &In, std::ostream &Out) {
  std::string Line;
  while (!shutdownRequested() && std::getline(In, Line)) {
    if (Line.empty())
      continue;
    Out << handleLine(Line) << "\n" << std::flush;
  }
  return Status::ok();
}

Status VegaRouter::serveSocket(const std::string &Path) {
  return serveSocketLines(
      Path, [this](const std::string &Line) { return handleLine(Line); },
      [this] { return shutdownRequested(); });
}
