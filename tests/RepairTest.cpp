//===- tests/RepairTest.cpp - auto-repair engine tests -------------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// Exercises repair::RepairEngine against a shared one-epoch session: the
/// oracle-gated acceptance invariant (post-repair accuracy can never drop,
/// and every committed repair re-validates against the golden regression
/// suite), option validation, the report's internal consistency, and the
/// determinism contract (the "vega-repair-1" rendering is byte-identical
/// across repair job counts).
///
//===----------------------------------------------------------------------===//

#include "repair/RepairEngine.h"

#include "core/VegaSession.h"
#include "eval/Oracle.h"
#include "serve/Protocol.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace vega;

namespace {

VegaSession &session() {
  static std::unique_ptr<VegaSession> S = [] {
    VegaOptions Opts;
    Opts.Model.Epochs = 1;
    Opts.Verbose = false;
    StatusOr<std::unique_ptr<VegaSession>> Built = VegaSession::build(Opts);
    if (!Built.isOk()) {
      std::fprintf(stderr, "session build failed: %s\n",
                   Built.status().toString().c_str());
      std::abort();
    }
    return std::move(*Built);
  }();
  return *S;
}

const GeneratedBackend &riscvBackend() {
  static StatusOr<GeneratedBackend> GB = session().generate("RISCV");
  if (!GB.isOk()) {
    std::fprintf(stderr, "generate failed: %s\n",
                 GB.status().toString().c_str());
    std::abort();
  }
  return *GB;
}

} // namespace

TEST(Repair, OptionValidation) {
  repair::RepairOptions Opts;
  EXPECT_TRUE(Opts.validate().isOk());
  Opts.BeamWidth = 0;
  EXPECT_EQ(Opts.validate().code(), StatusCode::InvalidArgument);
  Opts = {};
  Opts.MaxRounds = 0;
  EXPECT_EQ(Opts.validate().code(), StatusCode::InvalidArgument);
  Opts = {};
  Opts.CSThreshold = 1.5;
  EXPECT_EQ(Opts.validate().code(), StatusCode::InvalidArgument);
  Opts = {};
  Opts.MaxSitesPerFunction = 0;
  EXPECT_EQ(Opts.validate().code(), StatusCode::InvalidArgument);

  repair::RepairEngine Engine(session().system(), repair::RepairOptions{});
  GeneratedBackend Bogus;
  Bogus.TargetName = "NoSuchTarget";
  StatusOr<repair::RepairReport> Report = Engine.repairBackend(Bogus);
  EXPECT_EQ(Report.status().code(), StatusCode::InvalidArgument);
}

TEST(Repair, OracleGatedRepairNeverRegresses) {
  repair::RepairOptions Opts;
  Opts.BeamWidth = 4;
  Opts.MaxRounds = 2;
  repair::RepairEngine Engine(session().system(), Opts);
  StatusOr<repair::RepairReport> Report = Engine.repairBackend(riscvBackend());
  ASSERT_TRUE(Report.isOk()) << Report.status().toString();

  double Before = Report->BaselineEval.functionAccuracy();
  double After = Report->RepairedEval.functionAccuracy();
  EXPECT_GE(After, Before);
  EXPECT_LE(Report->FunctionsRepaired, Report->FunctionsFlagged);
  EXPECT_EQ(Report->Functions.size(), Report->FunctionsFlagged);
  ASSERT_EQ(Report->Rounds.size(), static_cast<size_t>(Opts.MaxRounds));
  // Round accuracies are cumulative, start at/above baseline, and the
  // final round matches the re-evaluated repaired backend exactly.
  double Prev = Before;
  for (const repair::RoundStats &R : Report->Rounds) {
    EXPECT_GE(R.FunctionAccuracy, Prev);
    Prev = R.FunctionAccuracy;
  }
  EXPECT_NEAR(Report->Rounds.back().FunctionAccuracy, After, 1e-12);

  // Every committed repair re-validates behaviourally: the repaired
  // function must pass the same golden regression suite the engine used.
  const Backend *Golden = session().corpus().backend("RISCV");
  const TargetTraits *Traits = session().corpus().targets().find("RISCV");
  ASSERT_NE(Golden, nullptr);
  ASSERT_NE(Traits, nullptr);
  size_t Validated = 0;
  for (const repair::FunctionRepair &F : Report->Functions) {
    if (!F.RepairedPassed)
      continue;
    EXPECT_GT(F.RepairedAtRound, 0) << F.InterfaceName;
    const GeneratedFunction *Repaired =
        Report->RepairedBackend.find(F.InterfaceName);
    const BackendFunction *Gold = Golden->find(F.InterfaceName);
    ASSERT_NE(Repaired, nullptr) << F.InterfaceName;
    ASSERT_NE(Gold, nullptr) << F.InterfaceName;
    EXPECT_TRUE(Repaired->Emitted) << F.InterfaceName;
    EXPECT_TRUE(functionPassesRegression(Repaired->AST, Gold->AST,
                                         F.InterfaceName, *Traits))
        << F.InterfaceName;
    ++Validated;
  }
  EXPECT_EQ(Validated, Report->FunctionsRepaired);
  // Untouched (unrepaired) functions are byte-identical to the baseline.
  ASSERT_EQ(Report->RepairedBackend.Functions.size(),
            riscvBackend().Functions.size());
  for (size_t I = 0; I < riscvBackend().Functions.size(); ++I) {
    const GeneratedFunction &Base = riscvBackend().Functions[I];
    const GeneratedFunction &Rep = Report->RepairedBackend.Functions[I];
    bool WasRepaired = false;
    for (const repair::FunctionRepair &F : Report->Functions)
      if (F.InterfaceName == Base.InterfaceName && F.RepairedPassed)
        WasRepaired = true;
    if (WasRepaired)
      continue;
    EXPECT_EQ(Base.Emitted, Rep.Emitted) << Base.InterfaceName;
    if (Base.Emitted)
      EXPECT_EQ(Base.AST.render(), Rep.AST.render()) << Base.InterfaceName;
  }
}

TEST(Repair, ReportJsonByteIdenticalAcrossJobs) {
  repair::RepairOptions Opts;
  Opts.BeamWidth = 3;
  Opts.MaxRounds = 1;
  Opts.Jobs = 1;
  repair::RepairEngine One(session().system(), Opts);
  StatusOr<repair::RepairReport> A = One.repairBackend(riscvBackend());
  ASSERT_TRUE(A.isOk()) << A.status().toString();
  Opts.Jobs = 4;
  repair::RepairEngine Four(session().system(), Opts);
  StatusOr<repair::RepairReport> B = Four.repairBackend(riscvBackend());
  ASSERT_TRUE(B.isOk()) << B.status().toString();
  EXPECT_EQ(serve::repairToJson(*A).dump(2), serve::repairToJson(*B).dump(2));
}

TEST(Repair, LegacyEvaluateWrapperMatchesExplicitTextOracleBytes) {
  // The 3-arg evaluateBackend is now a thin wrapper over the pluggable
  // oracle API; its rendering must be byte-identical to spelling the text
  // oracle out explicitly.
  const Backend *Golden = session().corpus().backend("RISCV");
  const TargetTraits *Traits = session().corpus().targets().find("RISCV");
  ASSERT_NE(Golden, nullptr);
  ASSERT_NE(Traits, nullptr);
  BackendEval Legacy = evaluateBackend(riscvBackend(), *Golden, *Traits);
  BackendEval Explicit = evaluateBackend(riscvBackend(), *Golden, *Traits,
                                         eval::textOracle());
  EXPECT_EQ(serve::evalToJson(Legacy).dump(2),
            serve::evalToJson(Explicit).dump(2));
  EXPECT_EQ(Legacy.OracleName, "text");
}

TEST(Repair, DifferentialOracleGatedRepairNeverRegresses) {
  // Swapping the gating oracle for the randomized differential one must
  // preserve the acceptance invariant: accuracy under that same oracle
  // never drops, and the report advertises which oracle gated it.
  repair::RepairOptions Opts;
  Opts.BeamWidth = 2;
  Opts.MaxRounds = 1;
  Opts.OracleImpl = &eval::differentialOracle();
  Opts.Classifier = &eval::differentialOracle();
  repair::RepairEngine Engine(session().system(), Opts);
  StatusOr<repair::RepairReport> Report = Engine.repairBackend(riscvBackend());
  ASSERT_TRUE(Report.isOk()) << Report.status().toString();
  EXPECT_GE(Report->RepairedEval.functionAccuracy(),
            Report->BaselineEval.functionAccuracy());
  EXPECT_EQ(Report->BaselineEval.OracleName, "differential");
  EXPECT_TRUE(Report->BaselineEval.hasDifferential());
  EXPECT_EQ(serve::repairToJson(*Report).get("options")->getString("oracle"),
            "differential");

  // Seeded input generation keeps the differential gate deterministic:
  // the full report renders byte-identically across repair job counts.
  Opts.Jobs = 1;
  repair::RepairEngine One(session().system(), Opts);
  StatusOr<repair::RepairReport> A = One.repairBackend(riscvBackend());
  ASSERT_TRUE(A.isOk()) << A.status().toString();
  Opts.Jobs = 4;
  repair::RepairEngine Four(session().system(), Opts);
  StatusOr<repair::RepairReport> B = Four.repairBackend(riscvBackend());
  ASSERT_TRUE(B.isOk()) << B.status().toString();
  EXPECT_EQ(serve::repairToJson(*A).dump(2), serve::repairToJson(*B).dump(2));
}

TEST(Repair, RejectedCandidatesCollectedOnlyWhenAsked) {
  // Off by default: the report never carries refuted candidates, and the
  // "vega-repair-1" rendering is unaffected by the flag either way.
  repair::RepairOptions Opts;
  Opts.BeamWidth = 4;
  Opts.MaxRounds = 2;
  repair::RepairEngine Plain(session().system(), Opts);
  StatusOr<repair::RepairReport> Off = Plain.repairBackend(riscvBackend());
  ASSERT_TRUE(Off.isOk()) << Off.status().toString();
  EXPECT_TRUE(Off->Rejected.empty());

  Opts.CollectRejected = true;
  Opts.RejectedConfidenceFloor = 0.0;
  repair::RepairEngine Collecting(session().system(), Opts);
  StatusOr<repair::RepairReport> On = Collecting.repairBackend(riscvBackend());
  ASSERT_TRUE(On.isOk()) << On.status().toString();
  EXPECT_EQ(serve::repairToJson(*Off).dump(2), serve::repairToJson(*On).dump(2));

  // With the floor at 0 every refuted candidate is recorded; raising it
  // can only shrink the set, and every survivor honours the floor.
  Opts.RejectedConfidenceFloor = 0.5;
  repair::RepairEngine Floored(session().system(), Opts);
  StatusOr<repair::RepairReport> Half = Floored.repairBackend(riscvBackend());
  ASSERT_TRUE(Half.isOk()) << Half.status().toString();
  EXPECT_LE(Half->Rejected.size(), On->Rejected.size());
  for (const repair::RejectedCandidate &RC : Half->Rejected) {
    EXPECT_GE(RC.Confidence, 0.5) << RC.InterfaceName;
    EXPECT_FALSE(RC.Text.empty()) << RC.InterfaceName;
    EXPECT_FALSE(RC.InterfaceName.empty());
    EXPECT_GE(RC.RowIndex, 0) << RC.InterfaceName;
    EXPECT_GE(RC.Round, 1) << RC.InterfaceName;
    EXPECT_LE(RC.Round, Opts.MaxRounds) << RC.InterfaceName;
  }
  // Validation: the floor is a probability.
  Opts.RejectedConfidenceFloor = -0.1;
  EXPECT_EQ(Opts.validate().code(), StatusCode::InvalidArgument);
  Opts.RejectedConfidenceFloor = 1.5;
  EXPECT_EQ(Opts.validate().code(), StatusCode::InvalidArgument);
}

TEST(Repair, BeamCandidatesForSiteAreRankedAndDeterministic) {
  VegaSystem &System = session().system();
  const GeneratedBackend &GB = riscvBackend();
  // Pick the first emitted statement of the first emitted function.
  const GeneratedFunction *Fn = nullptr;
  for (const GeneratedFunction &F : GB.Functions)
    if (F.Emitted && !F.Statements.empty()) {
      Fn = &F;
      break;
    }
  ASSERT_NE(Fn, nullptr);
  const TemplateInfo *TI = System.findTemplate(Fn->InterfaceName);
  ASSERT_NE(TI, nullptr);
  const GeneratedStatement &St = Fn->Statements.front();
  DecodeSite Site;
  Site.RowIndex = St.RowIndex;
  Site.CandidateValue = St.CandidateValue;
  Site.CtxValue = St.CtxValue;

  System.model()->prepareGenerate();
  std::vector<GeneratedStatement> First =
      System.beamCandidatesForSite(*TI, Site, "RISCV", 4);
  std::vector<GeneratedStatement> Second =
      System.beamCandidatesForSite(*TI, Site, "RISCV", 4);
  ASSERT_FALSE(First.empty());
  ASSERT_EQ(First.size(), Second.size());
  for (size_t I = 0; I < First.size(); ++I) {
    EXPECT_EQ(First[I].Tokens, Second[I].Tokens) << "rank " << I;
    EXPECT_EQ(First[I].Confidence, Second[I].Confidence) << "rank " << I;
    EXPECT_EQ(First[I].RowIndex, Site.RowIndex);
  }
  // Width 1 reproduces the greedy statement for this site.
  std::vector<GeneratedStatement> Top =
      System.beamCandidatesForSite(*TI, Site, "RISCV", 1);
  ASSERT_EQ(Top.size(), 1u);
  EXPECT_EQ(renderTokens(Top[0].Tokens), renderTokens(St.Tokens));
}
