//===- core/Checkpoint.cpp - The .vega session artifact ----------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "core/Checkpoint.h"

#include "support/BinaryIO.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iterator>
#include <map>
#include <sstream>

using namespace vega;

namespace {

// Statement nesting in the corpus is shallow; anything deeper in an
// artifact is corruption, not data.
constexpr int MaxRowDepth = 256;

void writeTokens(BinaryWriter &W, const std::vector<Token> &Tokens) {
  W.u32(static_cast<uint32_t>(Tokens.size()));
  for (const Token &T : Tokens) {
    W.u8(static_cast<uint8_t>(T.Kind));
    W.str(T.Text);
    W.u32(T.Offset);
  }
}

bool readTokens(BinaryReader &R, std::vector<Token> &Out) {
  uint32_t N = 0;
  if (!R.u32(N))
    return false;
  Out.clear();
  for (uint32_t I = 0; I < N; ++I) {
    uint8_t Kind = 0;
    Token T;
    if (!R.u8(Kind) || !R.str(T.Text) || !R.u32(T.Offset))
      return false;
    if (Kind > static_cast<uint8_t>(TokenKind::EndOfFile))
      return false;
    T.Kind = static_cast<TokenKind>(Kind);
    Out.push_back(std::move(T));
  }
  return true;
}

void writeRow(BinaryWriter &W, const TemplateRow &Row) {
  W.u8(static_cast<uint8_t>(Row.Kind));
  W.u8(Row.Repeatable ? 1 : 0);
  W.i32(Row.Index);
  writeTokens(W, Row.Tokens);
  W.u32(static_cast<uint32_t>(Row.PerTarget.size()));
  for (const auto &[Target, Instances] : Row.PerTarget) {
    W.str(Target);
    W.u32(static_cast<uint32_t>(Instances.size()));
    for (const TemplateRow::Instance &Inst : Instances) {
      // Instance::Stmt points into the corpus AST and is only consulted by
      // buildDataset(); a restored session generates without it.
      W.u32(static_cast<uint32_t>(Inst.SlotFillers.size()));
      for (const std::vector<Token> &Filler : Inst.SlotFillers)
        writeTokens(W, Filler);
    }
  }
  W.u32(static_cast<uint32_t>(Row.Children.size()));
  for (const auto &Child : Row.Children)
    writeRow(W, *Child);
}

std::unique_ptr<TemplateRow> readRow(BinaryReader &R, int Depth) {
  if (Depth > MaxRowDepth)
    return nullptr;
  auto Row = std::make_unique<TemplateRow>();
  uint8_t Kind = 0, Repeatable = 0;
  if (!R.u8(Kind) || !R.u8(Repeatable) || !R.i32(Row->Index) ||
      !readTokens(R, Row->Tokens))
    return nullptr;
  Row->Kind = static_cast<StmtKind>(Kind);
  Row->Repeatable = Repeatable != 0;
  uint32_t NTargets = 0;
  if (!R.u32(NTargets))
    return nullptr;
  for (uint32_t T = 0; T < NTargets; ++T) {
    std::string Target;
    uint32_t NInst = 0;
    if (!R.str(Target) || !R.u32(NInst))
      return nullptr;
    std::vector<TemplateRow::Instance> Instances;
    for (uint32_t I = 0; I < NInst; ++I) {
      TemplateRow::Instance Inst;
      uint32_t NFillers = 0;
      if (!R.u32(NFillers))
        return nullptr;
      for (uint32_t F = 0; F < NFillers; ++F) {
        std::vector<Token> Filler;
        if (!readTokens(R, Filler))
          return nullptr;
        Inst.SlotFillers.push_back(std::move(Filler));
      }
      Instances.push_back(std::move(Inst));
    }
    Row->PerTarget.emplace(std::move(Target), std::move(Instances));
  }
  uint32_t NChildren = 0;
  if (!R.u32(NChildren))
    return nullptr;
  for (uint32_t C = 0; C < NChildren; ++C) {
    std::unique_ptr<TemplateRow> Child = readRow(R, Depth + 1);
    if (!Child)
      return nullptr;
    Row->Children.push_back(std::move(Child));
  }
  return Row;
}

void writeOptions(BinaryWriter &W, const VegaOptions &O) {
  W.i32(O.Model.DModel);
  W.i32(O.Model.Heads);
  W.i32(O.Model.EncLayers);
  W.i32(O.Model.DecLayers);
  W.i32(O.Model.FFDim);
  W.i32(O.Model.MaxSrcLen);
  W.i32(O.Model.MaxDstLen);
  W.f64(static_cast<double>(O.Model.LearningRate));
  W.i32(O.Model.Epochs);
  W.i32(O.Model.BatchSize);
  W.u64(O.Model.Seed);
  W.f64(O.ConfidenceThreshold);
  W.u8(static_cast<uint8_t>(O.Split));
  W.f64(O.TrainFraction);
  W.u64(O.SplitSeed);
  W.i32(O.MaxCandidatesPerRow);
  W.u8(O.UseTargetDependentValues ? 1 : 0);
  W.u8(O.UseTargetIndependentBools ? 1 : 0);
}

bool readOptions(BinaryReader &R, VegaOptions &O) {
  double LearningRate = 0.0;
  uint8_t Split = 0, TDV = 0, TIB = 0;
  bool Ok = R.i32(O.Model.DModel) && R.i32(O.Model.Heads) &&
            R.i32(O.Model.EncLayers) && R.i32(O.Model.DecLayers) &&
            R.i32(O.Model.FFDim) && R.i32(O.Model.MaxSrcLen) &&
            R.i32(O.Model.MaxDstLen) && R.f64(LearningRate) &&
            R.i32(O.Model.Epochs) && R.i32(O.Model.BatchSize) &&
            R.u64(O.Model.Seed) && R.f64(O.ConfidenceThreshold) &&
            R.u8(Split) && R.f64(O.TrainFraction) && R.u64(O.SplitSeed) &&
            R.i32(O.MaxCandidatesPerRow) && R.u8(TDV) && R.u8(TIB);
  if (!Ok || Split > 1)
    return false;
  O.Model.LearningRate = static_cast<float>(LearningRate);
  O.Split = static_cast<VegaOptions::SplitKind>(Split);
  O.UseTargetDependentValues = TDV != 0;
  O.UseTargetIndependentBools = TIB != 0;
  return true;
}

/// Parsed META payload.
struct MetaSection {
  uint64_t OptionsFingerprint = 0;
  uint64_t CorpusFingerprint = 0;
  VegaOptions Options;
  uint64_t TemplateCount = 0;
  uint64_t VocabSize = 0;
  uint64_t TrainPairs = 0;
  uint64_t VerifyPairs = 0;
};

Status parseMeta(const std::string &Payload, MetaSection &Meta) {
  BinaryReader R(Payload);
  if (!R.u64(Meta.OptionsFingerprint) || !R.u64(Meta.CorpusFingerprint) ||
      !readOptions(R, Meta.Options) || !R.u64(Meta.TemplateCount) ||
      !R.u64(Meta.VocabSize) || !R.u64(Meta.TrainPairs) ||
      !R.u64(Meta.VerifyPairs))
    return Status::dataLoss("META section is malformed");
  if (Meta.Options.fingerprint() != Meta.OptionsFingerprint)
    return Status::dataLoss(
        "META options do not match their recorded fingerprint");
  return Status::ok();
}

/// Splits an artifact blob into header + checksum-verified sections.
Status parseSections(const std::string &Blob, uint32_t &Version,
                     std::vector<std::pair<std::string, std::string>> &Out) {
  BinaryReader R(Blob);
  std::string Magic;
  if (!R.bytes(Magic, 8) || Magic != SessionCheckpoint::Magic)
    return Status::dataLoss("not a .vega session artifact (bad magic)");
  uint32_t NSections = 0;
  if (!R.u32(Version) || !R.u32(NSections))
    return Status::dataLoss("artifact header is truncated");
  if (Version != SessionCheckpoint::FormatVersion)
    return Status::failedPrecondition(
        "unsupported session format version " + std::to_string(Version) +
        " (this build reads version " +
        std::to_string(SessionCheckpoint::FormatVersion) + ")");
  for (uint32_t I = 0; I < NSections; ++I) {
    std::string Tag, Payload;
    uint64_t Len = 0, Checksum = 0;
    if (!R.bytes(Tag, 4) || !R.u64(Len) || !R.u64(Checksum) ||
        !R.bytes(Payload, Len))
      return Status::dataLoss("artifact is truncated in section " +
                              std::to_string(I));
    if (fnv1a(Payload) != Checksum)
      return Status::dataLoss("checksum mismatch in section '" + Tag + "'");
    Out.emplace_back(std::move(Tag), std::move(Payload));
  }
  if (!R.atEnd())
    return Status::dataLoss("artifact has trailing bytes after last section");
  return Status::ok();
}

const std::string *findSection(
    const std::vector<std::pair<std::string, std::string>> &Sections,
    const char *Tag) {
  for (const auto &[T, Payload] : Sections)
    if (T == Tag)
      return &Payload;
  return nullptr;
}

} // namespace

uint64_t SessionCheckpoint::corpusFingerprint(const BackendCorpus &Corpus) {
  BinaryWriter W;
  for (const TargetTraits &T : Corpus.targets().targets())
    W.str(T.Name);
  W.u8(0xFF);
  for (const std::string &N : Corpus.trainingTargetNames())
    W.str(N);
  W.u8(0xFF);
  for (const auto &B : Corpus.backends()) {
    W.str(B->TargetName);
    W.u64(B->Functions.size());
    W.u64(B->statementCount());
  }
  return fnv1a(W.blob());
}

StatusOr<std::string> SessionCheckpoint::serialize(const VegaSystem &System) {
  if (System.Templates.empty())
    return Status::failedPrecondition(
        "session has no templates (run buildTemplates() first)");
  if (!System.Model)
    return Status::failedPrecondition(
        "session has no trained model (run trainModel() first)");

  // META.
  BinaryWriter Meta;
  Meta.u64(System.Options.fingerprint());
  Meta.u64(corpusFingerprint(System.Corpus));
  writeOptions(Meta, System.Options);
  Meta.u64(System.Templates.size());
  Meta.u64(System.Vocabulary.size());
  Meta.u64(System.TrainTexts.size());
  Meta.u64(System.VerifyTexts.size());

  // TMPL.
  BinaryWriter Tmpl;
  Tmpl.u32(static_cast<uint32_t>(System.Templates.size()));
  for (const TemplateInfo &TI : System.Templates) {
    Tmpl.str(TI.FT.InterfaceName);
    Tmpl.u8(static_cast<uint8_t>(TI.FT.Module));
    Tmpl.u32(static_cast<uint32_t>(TI.FT.MemberTargets.size()));
    for (const std::string &M : TI.FT.MemberTargets)
      Tmpl.str(M);
    writeRow(Tmpl, *TI.FT.Definition);
    Tmpl.u32(static_cast<uint32_t>(TI.FT.Body.size()));
    for (const auto &Row : TI.FT.Body)
      writeRow(Tmpl, *Row);

    Tmpl.u32(static_cast<uint32_t>(TI.Features.BoolProps.size()));
    for (const BoolProperty &P : TI.Features.BoolProps) {
      Tmpl.str(P.Name);
      Tmpl.str(P.IdentifiedSite);
      Tmpl.u8(P.Updatable ? 1 : 0);
      Tmpl.u32(static_cast<uint32_t>(P.ValuePerTarget.size()));
      for (const auto &[Target, Value] : P.ValuePerTarget) {
        Tmpl.str(Target);
        Tmpl.u8(Value ? 1 : 0);
      }
      Tmpl.u32(static_cast<uint32_t>(P.UpdateSitePerTarget.size()));
      for (const auto &[Target, Site] : P.UpdateSitePerTarget) {
        Tmpl.str(Target);
        Tmpl.str(Site);
      }
    }
    Tmpl.u32(static_cast<uint32_t>(TI.Features.RowSlots.size()));
    for (const auto &[RowIdx, Slots] : TI.Features.RowSlots) {
      Tmpl.i32(RowIdx);
      Tmpl.u32(static_cast<uint32_t>(Slots.size()));
      for (const SlotProperty &S : Slots) {
        Tmpl.str(S.Name);
        Tmpl.str(S.IdentifiedSite);
      }
    }
    // PrimarySlot keys are row pointers; persist them by stable row index,
    // sorted — map order is pointer order, which varies between two systems
    // in one process and would break checkpoint byte-identity.
    std::vector<std::pair<int, uint64_t>> Primary;
    Primary.reserve(TI.PrimarySlot.size());
    for (const auto &[Row, Slot] : TI.PrimarySlot)
      Primary.emplace_back(Row->Index, Slot);
    std::sort(Primary.begin(), Primary.end());
    Tmpl.u32(static_cast<uint32_t>(Primary.size()));
    for (const auto &[Index, Slot] : Primary) {
      Tmpl.i32(Index);
      Tmpl.u64(Slot);
    }
  }

  // FSEL.
  BinaryWriter Fsel;
  std::vector<std::string> GlobalBools = System.globalBoolNames();
  Fsel.u32(static_cast<uint32_t>(GlobalBools.size()));
  for (const std::string &Name : GlobalBools)
    Fsel.str(Name);
  std::vector<FeatureSelector::HarvestEntry> Harvests =
      System.Selector->harvestCacheSnapshot();
  Fsel.u32(static_cast<uint32_t>(Harvests.size()));
  for (const FeatureSelector::HarvestEntry &E : Harvests) {
    Fsel.str(E.Property);
    Fsel.str(E.Target);
    Fsel.u32(static_cast<uint32_t>(E.Values.size()));
    for (const std::string &V : E.Values)
      Fsel.str(V);
  }

  // VOCB.
  BinaryWriter Vocb;
  Vocb.str(System.Vocabulary.serialize());
  Vocb.str(std::string_view(
      reinterpret_cast<const char *>(System.StructuralTokens.data()),
      System.StructuralTokens.size()));

  // WGTS.
  BinaryWriter Wgts;
  Wgts.str(System.Model->saveWeights());

  BinaryWriter Out;
  Out.bytes(Magic);
  Out.u32(FormatVersion);
  const std::pair<const char *, const BinaryWriter *> Sections[] = {
      {"META", &Meta}, {"TMPL", &Tmpl}, {"FSEL", &Fsel},
      {"VOCB", &Vocb}, {"WGTS", &Wgts}};
  Out.u32(static_cast<uint32_t>(std::size(Sections)));
  for (const auto &[Tag, W] : Sections) {
    Out.bytes(Tag);
    Out.u64(W->size());
    Out.u64(fnv1a(W->blob()));
    Out.bytes(W->blob());
  }
  return Out.takeBlob();
}

Status SessionCheckpoint::save(const VegaSystem &System,
                               const std::string &Path) {
  StatusOr<std::string> Blob = serialize(System);
  if (!Blob.isOk())
    return Blob.status();
  std::string Tmp = Path + ".tmp";
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return Status::unavailable("cannot write '" + Tmp + "'");
    Out.write(Blob->data(), static_cast<std::streamsize>(Blob->size()));
    if (!Out)
      return Status::unavailable("short write to '" + Tmp + "'");
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    return Status::unavailable("cannot rename '" + Tmp + "' to '" + Path +
                               "'");
  }
  return Status::ok();
}

StatusOr<std::unique_ptr<VegaSystem>>
SessionCheckpoint::restore(const BackendCorpus &Corpus,
                           const std::string &Blob) {
  uint32_t Version = 0;
  std::vector<std::pair<std::string, std::string>> Sections;
  if (Status St = parseSections(Blob, Version, Sections); !St.isOk())
    return St;
  for (const char *Tag : {"META", "TMPL", "FSEL", "VOCB", "WGTS"})
    if (!findSection(Sections, Tag))
      return Status::dataLoss(std::string("artifact is missing section '") +
                              Tag + "'");

  MetaSection Meta;
  if (Status St = parseMeta(*findSection(Sections, "META"), Meta); !St.isOk())
    return St;
  if (Meta.CorpusFingerprint != corpusFingerprint(Corpus))
    return Status::failedPrecondition(
        "artifact was built over a different corpus (fingerprint mismatch)");

  auto System = std::make_unique<VegaSystem>(Corpus, Meta.Options);

  // TMPL.
  {
    BinaryReader R(*findSection(Sections, "TMPL"));
    uint32_t NTemplates = 0;
    if (!R.u32(NTemplates) || NTemplates != Meta.TemplateCount)
      return Status::dataLoss("TMPL section is malformed");
    for (uint32_t T = 0; T < NTemplates; ++T) {
      TemplateInfo TI;
      uint8_t Module = 0;
      uint32_t NMembers = 0;
      if (!R.str(TI.FT.InterfaceName) || !R.u8(Module) || !R.u32(NMembers) ||
          Module >= NumBackendModules)
        return Status::dataLoss("TMPL section is malformed");
      TI.FT.Module = static_cast<BackendModule>(Module);
      for (uint32_t M = 0; M < NMembers; ++M) {
        std::string Member;
        if (!R.str(Member))
          return Status::dataLoss("TMPL section is malformed");
        TI.FT.MemberTargets.push_back(std::move(Member));
      }
      TI.FT.Definition = readRow(R, 0);
      uint32_t NBody = 0;
      if (!TI.FT.Definition || !R.u32(NBody))
        return Status::dataLoss("TMPL section is malformed");
      for (uint32_t B = 0; B < NBody; ++B) {
        std::unique_ptr<TemplateRow> Row = readRow(R, 0);
        if (!Row)
          return Status::dataLoss("TMPL section is malformed");
        TI.FT.Body.push_back(std::move(Row));
      }

      uint32_t NBools = 0;
      if (!R.u32(NBools))
        return Status::dataLoss("TMPL section is malformed");
      for (uint32_t B = 0; B < NBools; ++B) {
        BoolProperty P;
        uint8_t Updatable = 0;
        uint32_t NValues = 0, NSites = 0;
        if (!R.str(P.Name) || !R.str(P.IdentifiedSite) || !R.u8(Updatable) ||
            !R.u32(NValues))
          return Status::dataLoss("TMPL section is malformed");
        P.Updatable = Updatable != 0;
        for (uint32_t V = 0; V < NValues; ++V) {
          std::string Target;
          uint8_t Value = 0;
          if (!R.str(Target) || !R.u8(Value))
            return Status::dataLoss("TMPL section is malformed");
          P.ValuePerTarget[Target] = Value != 0;
        }
        if (!R.u32(NSites))
          return Status::dataLoss("TMPL section is malformed");
        for (uint32_t S = 0; S < NSites; ++S) {
          std::string Target, Site;
          if (!R.str(Target) || !R.str(Site))
            return Status::dataLoss("TMPL section is malformed");
          P.UpdateSitePerTarget[Target] = std::move(Site);
        }
        TI.Features.BoolProps.push_back(std::move(P));
      }
      uint32_t NRowSlots = 0;
      if (!R.u32(NRowSlots))
        return Status::dataLoss("TMPL section is malformed");
      for (uint32_t S = 0; S < NRowSlots; ++S) {
        int32_t RowIdx = 0;
        uint32_t NSlots = 0;
        if (!R.i32(RowIdx) || !R.u32(NSlots))
          return Status::dataLoss("TMPL section is malformed");
        std::vector<SlotProperty> Slots;
        for (uint32_t I = 0; I < NSlots; ++I) {
          SlotProperty Slot;
          if (!R.str(Slot.Name) || !R.str(Slot.IdentifiedSite))
            return Status::dataLoss("TMPL section is malformed");
          Slots.push_back(std::move(Slot));
        }
        TI.Features.RowSlots[RowIdx] = std::move(Slots);
      }

      // Rebuild the pointer-keyed maps from the serialized tree: parent
      // links by walk, primary slots by stable row index.
      std::map<int, const TemplateRow *> ByIndex;
      std::function<void(const TemplateRow *, const TemplateRow *)> Walk =
          [&](const TemplateRow *Row, const TemplateRow *Parent) {
            TI.Parent[Row] = Parent;
            ByIndex[Row->Index] = Row;
            for (const auto &Child : Row->Children)
              Walk(Child.get(), Row);
          };
      Walk(TI.FT.Definition.get(), nullptr);
      for (const auto &Row : TI.FT.Body)
        Walk(Row.get(), nullptr);

      uint32_t NPrimary = 0;
      if (!R.u32(NPrimary))
        return Status::dataLoss("TMPL section is malformed");
      for (uint32_t P = 0; P < NPrimary; ++P) {
        int32_t RowIdx = 0;
        uint64_t Slot = 0;
        if (!R.i32(RowIdx) || !R.u64(Slot))
          return Status::dataLoss("TMPL section is malformed");
        auto It = ByIndex.find(RowIdx);
        if (It == ByIndex.end())
          return Status::dataLoss("TMPL primary slot references row " +
                                  std::to_string(RowIdx) +
                                  " absent from its template");
        TI.PrimarySlot[It->second] = static_cast<size_t>(Slot);
      }
      System->Templates.push_back(std::move(TI));
    }
    if (!R.atEnd())
      return Status::dataLoss("TMPL section has trailing bytes");
  }

  // FSEL.
  {
    BinaryReader R(*findSection(Sections, "FSEL"));
    uint32_t NBools = 0;
    if (!R.u32(NBools))
      return Status::dataLoss("FSEL section is malformed");
    std::vector<std::string> GlobalBools;
    for (uint32_t I = 0; I < NBools; ++I) {
      std::string Name;
      if (!R.str(Name))
        return Status::dataLoss("FSEL section is malformed");
      GlobalBools.push_back(std::move(Name));
    }
    System->setGlobalBoolNames(std::move(GlobalBools));
    uint32_t NHarvests = 0;
    if (!R.u32(NHarvests))
      return Status::dataLoss("FSEL section is malformed");
    for (uint32_t I = 0; I < NHarvests; ++I) {
      std::string Property, Target;
      uint32_t NValues = 0;
      if (!R.str(Property) || !R.str(Target) || !R.u32(NValues))
        return Status::dataLoss("FSEL section is malformed");
      std::vector<std::string> Values;
      for (uint32_t V = 0; V < NValues; ++V) {
        std::string Value;
        if (!R.str(Value))
          return Status::dataLoss("FSEL section is malformed");
        Values.push_back(std::move(Value));
      }
      System->Selector->seedHarvestCache(Property, Target, std::move(Values));
    }
    if (!R.atEnd())
      return Status::dataLoss("FSEL section has trailing bytes");
  }

  // VOCB.
  {
    BinaryReader R(*findSection(Sections, "VOCB"));
    std::string VocabBlob, Structural;
    if (!R.str(VocabBlob) || !R.str(Structural) || !R.atEnd())
      return Status::dataLoss("VOCB section is malformed");
    System->Vocabulary = Vocab::deserialize(VocabBlob);
    if (System->Vocabulary.size() != Meta.VocabSize ||
        Structural.size() != System->Vocabulary.size())
      return Status::dataLoss(
          "VOCB vocabulary does not match the recorded size");
    System->StructuralTokens.assign(Structural.begin(), Structural.end());
    System->SpecialTokenIds.clear();
    for (size_t Id = 0; Id < System->Vocabulary.size(); ++Id)
      if (Vocab::isSpecialSpelling(
              System->Vocabulary.textOf(static_cast<int>(Id))))
        System->SpecialTokenIds.push_back(static_cast<int>(Id));
  }

  // WGTS.
  {
    BinaryReader R(*findSection(Sections, "WGTS"));
    std::string Weights;
    if (!R.str(Weights) || !R.atEnd())
      return Status::dataLoss("WGTS section is malformed");
    System->Model =
        std::make_unique<CodeBE>(System->Vocabulary, Meta.Options.Model);
    if (!System->Model->loadWeights(Weights))
      return Status::dataLoss(
          "WGTS weights do not fit the recorded model architecture");
  }

  return System;
}

StatusOr<std::unique_ptr<VegaSystem>>
SessionCheckpoint::load(const BackendCorpus &Corpus, const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return Status::unavailable("cannot open '" + Path + "'");
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  return restore(Corpus, Buffer.str());
}

StatusOr<SessionCheckpoint::Info>
SessionCheckpoint::inspect(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return Status::unavailable("cannot open '" + Path + "'");
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  std::string Blob = Buffer.str();

  Info Result;
  std::vector<std::pair<std::string, std::string>> Sections;
  if (Status St = parseSections(Blob, Result.Version, Sections); !St.isOk())
    return St;
  const std::string *Meta = findSection(Sections, "META");
  if (!Meta)
    return Status::dataLoss("artifact is missing section 'META'");
  MetaSection Parsed;
  if (Status St = parseMeta(*Meta, Parsed); !St.isOk())
    return St;
  Result.OptionsFingerprint = Parsed.OptionsFingerprint;
  Result.CorpusFingerprint = Parsed.CorpusFingerprint;
  Result.Options = Parsed.Options;
  Result.TemplateCount = Parsed.TemplateCount;
  Result.VocabSize = Parsed.VocabSize;
  Result.TrainPairs = Parsed.TrainPairs;
  Result.VerifyPairs = Parsed.VerifyPairs;
  for (const auto &[Tag, Payload] : Sections)
    Result.Sections.emplace_back(Tag, Payload.size());
  return Result;
}
