# Empty compiler generated dependencies file for vega_eval.
# This may be replaced when dependencies are built.
