file(REMOVE_RECURSE
  "CMakeFiles/table4_manual_effort.dir/table4_manual_effort.cpp.o"
  "CMakeFiles/table4_manual_effort.dir/table4_manual_effort.cpp.o.d"
  "table4_manual_effort"
  "table4_manual_effort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_manual_effort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
