//===- support/TextTable.cpp - Aligned console tables ---------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "support/TextTable.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

using namespace vega;

void TextTable::setHeader(std::vector<std::string> Cells) {
  Header = std::move(Cells);
}

void TextTable::addRow(std::vector<std::string> Cells) {
  Rows.push_back(std::move(Cells));
}

void TextTable::addSeparator() { Rows.emplace_back(); }

static bool looksNumeric(const std::string &Cell) {
  if (Cell.empty())
    return false;
  for (char C : Cell)
    if (!std::isdigit(static_cast<unsigned char>(C)) && C != '.' && C != '-' &&
        C != '+' && C != '%' && C != 'x' && C != ',')
      return false;
  return true;
}

std::string TextTable::render() const {
  std::vector<size_t> Widths;
  auto Grow = [&](const std::vector<std::string> &Cells) {
    if (Cells.size() > Widths.size())
      Widths.resize(Cells.size(), 0);
    for (size_t I = 0; I < Cells.size(); ++I)
      Widths[I] = std::max(Widths[I], Cells[I].size());
  };
  Grow(Header);
  for (const auto &Row : Rows)
    Grow(Row);

  auto RenderRow = [&](const std::vector<std::string> &Cells,
                       std::string &Out) {
    for (size_t I = 0; I < Widths.size(); ++I) {
      std::string Cell = I < Cells.size() ? Cells[I] : std::string();
      size_t Pad = Widths[I] - Cell.size();
      if (I != 0)
        Out += "  ";
      if (looksNumeric(Cell)) {
        Out.append(Pad, ' ');
        Out += Cell;
      } else {
        Out += Cell;
        Out.append(Pad, ' ');
      }
    }
    while (!Out.empty() && Out.back() == ' ')
      Out.pop_back();
    Out += '\n';
  };

  std::string Out;
  size_t Total = 0;
  for (size_t W : Widths)
    Total += W + 2;
  if (!Header.empty()) {
    RenderRow(Header, Out);
    Out.append(Total, '-');
    Out += '\n';
  }
  for (const auto &Row : Rows) {
    if (Row.empty()) {
      Out.append(Total, '-');
      Out += '\n';
      continue;
    }
    RenderRow(Row, Out);
  }
  return Out;
}

std::string TextTable::formatDouble(double Value, int Decimals) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*f", Decimals, Value);
  return Buffer;
}

std::string TextTable::formatPercent(double Ratio) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.1f%%", Ratio * 100.0);
  return Buffer;
}
