//===- bench/serve_load.cpp - Concurrent-client serve latency ------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// Load generator for the vega-serve fleet: spins up a VegaServer over a
/// bench-trained session and drives it with 1/8/64 concurrent clients
/// issuing `generate` requests round-robin over the held-out evaluation
/// targets — requests co-batch in the continuous decode-step scheduler.
/// Latency is measured client-side (submit to response, queue wait
/// included); per level the bench reports p50/p95/p99 and backends/sec.
///
/// A second sweep drives the same load through a VegaRouter fronting two
/// in-process shards (each with its own session loaded from a saved copy
/// of the bench artifact), exercising the shard map, verbatim forwarding,
/// and per-shard admission. Every response — single-server or routed — is
/// checked byte-identical to the first response seen for its target, so
/// the fleet cannot change generated backends.
///
/// After the single-server sweep it cross-checks the `stats` RPC against
/// the Prometheus exposition — both must agree on the request count.
/// Writes BENCH_serve.json ("vega-serve-bench-2").
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "core/VegaSession.h"
#include "obs/Metrics.h"
#include "serve/Router.h"
#include "serve/Server.h"
#include "support/Json.h"
#include "support/TextTable.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

using namespace vega;

namespace {

/// Nearest-rank quantile over a sorted sample (0 when empty).
double quantileMs(const std::vector<double> &Sorted, double Q) {
  if (Sorted.empty())
    return 0.0;
  size_t Rank = static_cast<size_t>(Q * static_cast<double>(Sorted.size()));
  return Sorted[std::min(Rank, Sorted.size() - 1)];
}

struct LevelResult {
  int Clients = 0;
  size_t Requests = 0;
  size_t Ok = 0;
  size_t Errors = 0;
  double WallSec = 0.0;
  double P50Ms = 0.0, P95Ms = 0.0, P99Ms = 0.0;
};

Json levelsToJson(const std::vector<LevelResult> &Results) {
  Json LevelsJson = Json::array();
  for (const LevelResult &Level : Results) {
    Json L = Json::object();
    L.set("clients", Level.Clients);
    L.set("requests", static_cast<uint64_t>(Level.Requests));
    L.set("ok", static_cast<uint64_t>(Level.Ok));
    L.set("errors", static_cast<uint64_t>(Level.Errors));
    L.set("wallSec", Level.WallSec);
    L.set("backendsPerSec",
          Level.WallSec > 0.0
              ? static_cast<double>(Level.Ok) / Level.WallSec
              : 0.0);
    L.set("p50Ms", Level.P50Ms);
    L.set("p95Ms", Level.P95Ms);
    L.set("p99Ms", Level.P99Ms);
    LevelsJson.push(std::move(L));
  }
  return LevelsJson;
}

} // namespace

int main(int argc, char **argv) {
  std::string ReportPath = "BENCH_serve.json";
  std::vector<int> Levels = {1, 8, 64};
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    const std::string ReportPrefix = "--report=";
    const std::string ClientsPrefix = "--clients=";
    if (Arg.rfind(ReportPrefix, 0) == 0) {
      ReportPath = Arg.substr(ReportPrefix.size());
    } else if (Arg.rfind(ClientsPrefix, 0) == 0) {
      Levels.clear();
      std::string List = Arg.substr(ClientsPrefix.size());
      size_t Pos = 0;
      while (Pos < List.size()) {
        size_t Comma = List.find(',', Pos);
        if (Comma == std::string::npos)
          Comma = List.size();
        int N = std::atoi(List.substr(Pos, Comma - Pos).c_str());
        if (N > 0)
          Levels.push_back(N);
        Pos = Comma + 1;
      }
    }
  }
  if (Levels.empty())
    Levels = {1, 8, 64};

  bench::initObservability();

  // The daemon serves a real session, trained (or cache-loaded) exactly
  // like the other benches so results are comparable run to run.
  VegaOptions Opts;
  Opts.Model.Epochs = bench::defaultEpochs();
  Opts.WeightCachePath = "vega_model_cache.bin";
  StatusOr<std::unique_ptr<VegaSession>> Session = VegaSession::build(Opts);
  if (!Session.isOk()) {
    std::fprintf(stderr, "serve_load: %s\n",
                 Session.status().toString().c_str());
    return Session.status().toExitCode();
  }

  serve::ServerOptions ServerOpts; // Window 8 / MaxQueue 64, daemon defaults
  serve::VegaServer Server(**Session, ServerOpts);

  const std::vector<std::string> Targets =
      TargetDatabase::evaluationTargetNames();

  // Byte-determinism watchdog: the first response seen per target is the
  // reference; any later divergence — across clients, concurrency levels,
  // or the single-server/router boundary — is a correctness failure.
  std::mutex RefMu;
  std::map<std::string, std::string> Reference;
  std::atomic<bool> Deterministic{true};

  auto SweepLevel =
      [&](const std::function<std::string(const std::string &)> &Send,
          int Clients) {
        // Total volume stays bounded as concurrency grows: every level
        // issues at least one request per client.
        size_t PerClient =
            std::max<size_t>(1, 16 / static_cast<size_t>(Clients));
        LevelResult Level;
        Level.Clients = Clients;
        Level.Requests = PerClient * static_cast<size_t>(Clients);

        std::vector<std::vector<double>> Latencies(
            static_cast<size_t>(Clients));
        std::atomic<size_t> ErrorCount{0};
        auto WallStart = std::chrono::steady_clock::now();
        std::vector<std::thread> Pool;
        for (int C = 0; C < Clients; ++C)
          Pool.emplace_back([&, C, PerClient] {
            for (size_t R = 0; R < PerClient; ++R) {
              size_t Seq = static_cast<size_t>(C) * PerClient + R;
              const std::string &Target = Targets[Seq % Targets.size()];
              std::string Request =
                  "{\"jsonrpc\":\"2.0\",\"id\":" + std::to_string(Seq) +
                  ",\"method\":\"generate\",\"params\":{\"target\":\"" +
                  Target + "\"}}";
              auto T0 = std::chrono::steady_clock::now();
              std::string Response = Send(Request);
              Latencies[static_cast<size_t>(C)].push_back(
                  std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - T0)
                      .count());
              if (Response.find("\"error\"") != std::string::npos) {
                ErrorCount.fetch_add(1, std::memory_order_relaxed);
                continue;
              }
              // Responses embed the request id; strip it before comparing
              // so every response to one target must match byte for byte.
              size_t IdPos = Response.find("\"id\":");
              size_t IdEnd = Response.find(',', IdPos);
              std::string Canon =
                  IdPos == std::string::npos || IdEnd == std::string::npos
                      ? Response
                      : Response.substr(0, IdPos) + Response.substr(IdEnd + 1);
              std::lock_guard<std::mutex> Lock(RefMu);
              auto [It, Inserted] = Reference.emplace(Target, Canon);
              if (!Inserted && It->second != Canon)
                Deterministic.store(false, std::memory_order_relaxed);
            }
          });
        for (std::thread &T : Pool)
          T.join();
        Level.WallSec = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - WallStart)
                            .count();

        std::vector<double> All;
        for (const std::vector<double> &L : Latencies)
          All.insert(All.end(), L.begin(), L.end());
        std::sort(All.begin(), All.end());
        Level.Errors = ErrorCount.load();
        Level.Ok = Level.Requests - Level.Errors;
        Level.P50Ms = quantileMs(All, 0.50);
        Level.P95Ms = quantileMs(All, 0.95);
        Level.P99Ms = quantileMs(All, 0.99);
        return Level;
      };

  auto RenderTable = [](const std::vector<LevelResult> &Results) {
    TextTable Table;
    Table.setHeader({"Clients", "Requests", "Errors", "Wall s", "backends/s",
                     "p50 ms", "p95 ms", "p99 ms"});
    for (const LevelResult &Level : Results) {
      double PerSec = Level.WallSec > 0.0
                          ? static_cast<double>(Level.Ok) / Level.WallSec
                          : 0.0;
      Table.addRow({std::to_string(Level.Clients),
                    std::to_string(Level.Requests),
                    std::to_string(Level.Errors),
                    TextTable::formatDouble(Level.WallSec),
                    TextTable::formatDouble(PerSec),
                    TextTable::formatDouble(Level.P50Ms),
                    TextTable::formatDouble(Level.P95Ms),
                    TextTable::formatDouble(Level.P99Ms)});
    }
    return Table.render();
  };

  // ---- Sweep 1: one shard, continuous batching. ----
  std::vector<LevelResult> SingleResults;
  size_t SingleIssued = 0;
  for (int Clients : Levels) {
    SingleResults.push_back(SweepLevel(
        [&](const std::string &Line) { return Server.handleLine(Line); },
        Clients));
    SingleIssued += SingleResults.back().Requests;
  }

  // Cross-check the two live views: the `stats` RPC (which counts itself)
  // and the Prometheus exposition, read immediately after, must agree.
  std::string StatsLine = Server.handleLine(
      "{\"jsonrpc\":\"2.0\",\"id\":\"stats\",\"method\":\"stats\"}");
  double StatsRequests = -1.0;
  if (StatusOr<Json> Stats = Json::parse(StatsLine); Stats.isOk())
    if (const Json *Result = Stats->get("result"))
      StatsRequests = Result->getNumber("requests");
  double PromRequests = -2.0;
  std::string Prom = obs::MetricsRegistry::instance().exportPrometheus();
  const std::string Series = "vega_serve_requests_total ";
  if (size_t Pos = Prom.find("\n" + Series); Pos != std::string::npos)
    PromRequests = std::atof(Prom.c_str() + Pos + 1 + Series.size());
  bool StatsAgree = StatsRequests == PromRequests &&
                    StatsRequests == static_cast<double>(SingleIssued + 1);

  // ---- Sweep 2: a router fronting two in-process shards. Each shard
  // loads its own copy of the bench artifact, so routed responses must be
  // byte-identical to the single-server references. ----
  const std::string ShardArtifact = "serve_load_shard.vega";
  std::vector<LevelResult> RouterResults;
  std::vector<uint64_t> Forwards;
  bool RouterReady = false;
  size_t RouterTargets = 0;
  if (Status St = (*Session)->save(ShardArtifact); !St.isOk()) {
    std::fprintf(stderr, "serve_load: cannot save shard artifact: %s\n",
                 St.toString().c_str());
  } else {
    std::vector<std::unique_ptr<serve::ShardEndpoint>> Endpoints;
    Status ShardStatus = Status::ok();
    for (int I = 0; I < 2 && ShardStatus.isOk(); ++I) {
      StatusOr<std::unique_ptr<VegaSession>> ShardSession =
          VegaSession::load(ShardArtifact);
      if (!ShardSession.isOk()) {
        ShardStatus = ShardSession.status();
        break;
      }
      Endpoints.push_back(std::make_unique<serve::LocalShard>(
          "local" + std::to_string(I), std::move(ShardSession.value()),
          ServerOpts));
    }
    if (!ShardStatus.isOk()) {
      std::fprintf(stderr, "serve_load: cannot load shard session: %s\n",
                   ShardStatus.toString().c_str());
    } else {
      serve::RouterOptions RouterOpts;
      RouterOpts.ShardWindow = 0; // the bench saturates; let shards queue
      serve::VegaRouter Fleet(std::move(Endpoints), RouterOpts);
      if (Status St2 = Fleet.init(); !St2.isOk()) {
        std::fprintf(stderr, "serve_load: router init: %s\n",
                     St2.toString().c_str());
      } else {
        RouterReady = true;
        RouterTargets = Fleet.shardMap().size();
        for (int Clients : Levels)
          RouterResults.push_back(SweepLevel(
              [&](const std::string &Line) { return Fleet.handleLine(Line); },
              Clients));
        for (size_t I = 0; I < Fleet.shardCount(); ++I)
          Forwards.push_back(Fleet.forwardCount(I));
      }
    }
  }
  std::remove(ShardArtifact.c_str());
  bool AllShardsServed =
      RouterReady && Forwards.size() == 2 && Forwards[0] > 0 && Forwards[1] > 0;

  std::printf("== serve latency, one shard (continuous batching) ==\n%s\n",
              RenderTable(SingleResults).c_str());
  if (RouterReady)
    std::printf("== serve latency, router over 2 local shards ==\n%s\n",
                RenderTable(RouterResults).c_str());
  std::printf("stats rpc requests=%.0f, prometheus requests=%.0f, "
              "issued=%zu (+1 stats call) -> %s; responses %s; "
              "router forwards=[%s]\n",
              StatsRequests, PromRequests, SingleIssued,
              StatsAgree ? "agree" : "DISAGREE",
              Deterministic.load() ? "byte-identical per target" : "DIVERGED",
              [&] {
                std::string S;
                for (size_t I = 0; I < Forwards.size(); ++I)
                  S += (I ? "," : "") + std::to_string(Forwards[I]);
                return S;
              }()
                  .c_str());

  Json Doc = Json::object();
  Doc.set("schema", "vega-serve-bench-2");
  Doc.set("epochs", bench::defaultEpochs());
  Doc.set("window", ServerOpts.Window);
  Doc.set("maxQueue", ServerOpts.MaxQueue);
  {
    Json Single = Json::object();
    Single.set("levels", levelsToJson(SingleResults));
    Doc.set("single", std::move(Single));
  }
  {
    Json Router = Json::object();
    Router.set("ready", RouterReady);
    Router.set("shards", 2);
    Router.set("targets", static_cast<uint64_t>(RouterTargets));
    Json ForwardJson = Json::array();
    for (uint64_t F : Forwards)
      ForwardJson.push(F);
    Router.set("forwards", std::move(ForwardJson));
    Router.set("allShardsServed", AllShardsServed);
    Router.set("levels", levelsToJson(RouterResults));
    Doc.set("router", std::move(Router));
  }
  Json StatsJson = Json::object();
  StatsJson.set("serveRequests", StatsRequests);
  StatsJson.set("prometheusRequests", PromRequests);
  StatsJson.set("agree", StatsAgree);
  Doc.set("stats", std::move(StatsJson));
  Doc.set("deterministic", Deterministic.load());

  int Rc = StatsAgree && Deterministic.load() && RouterReady &&
                   AllShardsServed
               ? 0
               : 1;
  if (FILE *F = std::fopen(ReportPath.c_str(), "w")) {
    std::string Dump = Doc.dump(2);
    std::fwrite(Dump.data(), 1, Dump.size(), F);
    std::fputc('\n', F);
    std::fclose(F);
    std::printf("report written to %s\n", ReportPath.c_str());
  } else {
    std::fprintf(stderr, "serve_load: cannot write %s\n", ReportPath.c_str());
    Rc = 1;
  }
  return Rc;
}
