//===- support/Error.h - Lightweight error handling -------------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight recoverable-error utilities in the spirit of llvm::Expected.
/// Library code never throws; programmatic errors use assert(), recoverable
/// errors flow through Expected<T>.
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_SUPPORT_ERROR_H
#define VEGA_SUPPORT_ERROR_H

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace vega {

/// Prints \p Message to stderr and aborts. Used for invariant violations that
/// must be diagnosed even in release builds.
[[noreturn]] inline void reportFatalError(const std::string &Message) {
  std::fprintf(stderr, "vega fatal error: %s\n", Message.c_str());
  std::abort();
}

/// A value-or-error carrier. On failure it holds a human-readable message in
/// the style of LLVM error strings (lowercase first word, no trailing period).
template <typename T> class Expected {
public:
  /// Constructs a success value.
  Expected(T Value) : Value(std::move(Value)) {}

  /// Constructs a failure; use via makeError().
  struct ErrorTag {};
  Expected(ErrorTag, std::string Message) : Message(std::move(Message)) {}

  /// True on success.
  explicit operator bool() const { return Value.has_value(); }

  /// Returns the contained value; asserts on failure.
  T &operator*() {
    assert(Value && "dereferencing an error Expected");
    return *Value;
  }
  const T &operator*() const {
    assert(Value && "dereferencing an error Expected");
    return *Value;
  }
  T *operator->() {
    assert(Value && "dereferencing an error Expected");
    return &*Value;
  }
  const T *operator->() const {
    assert(Value && "dereferencing an error Expected");
    return &*Value;
  }

  /// Returns the error message (empty on success).
  const std::string &getError() const { return Message; }

private:
  std::optional<T> Value;
  std::string Message;
};

/// Builds a failure Expected with \p Message.
template <typename T> Expected<T> makeError(std::string Message) {
  return Expected<T>(typename Expected<T>::ErrorTag{}, std::move(Message));
}

} // namespace vega

#endif // VEGA_SUPPORT_ERROR_H
