file(REMOVE_RECURSE
  "CMakeFiles/vega_eval.dir/EffortModel.cpp.o"
  "CMakeFiles/vega_eval.dir/EffortModel.cpp.o.d"
  "CMakeFiles/vega_eval.dir/EvalSpecs.cpp.o"
  "CMakeFiles/vega_eval.dir/EvalSpecs.cpp.o.d"
  "CMakeFiles/vega_eval.dir/Harness.cpp.o"
  "CMakeFiles/vega_eval.dir/Harness.cpp.o.d"
  "libvega_eval.a"
  "libvega_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vega_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
