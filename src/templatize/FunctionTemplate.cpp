//===- templatize/FunctionTemplate.cpp - Function templates -----------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "templatize/FunctionTemplate.h"

#include "gumtree/LCS.h"
#include "gumtree/Matcher.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <unordered_set>

using namespace vega;

size_t TemplateRow::placeholderCount() const {
  size_t N = 0;
  for (const Token &T : Tokens)
    if (T.isPlaceholder())
      ++N;
  return N;
}

std::vector<std::string> TemplateRow::supportTargets() const {
  std::vector<std::string> Targets;
  for (const auto &[Target, Instances] : PerTarget)
    if (!Instances.empty())
      Targets.push_back(Target);
  return Targets;
}

void TemplateRow::preOrder(std::vector<TemplateRow *> &Out) {
  Out.push_back(this);
  for (auto &Child : Children)
    Child->preOrder(Out);
}

void TemplateRow::preOrder(std::vector<const TemplateRow *> &Out) const {
  Out.push_back(this);
  for (const auto &Child : Children)
    Child->preOrder(Out);
}

std::vector<TemplateRow *> FunctionTemplate::rows() {
  std::vector<TemplateRow *> Out;
  if (Definition)
    Definition->preOrder(Out);
  for (auto &Row : Body)
    Row->preOrder(Out);
  return Out;
}

std::vector<const TemplateRow *> FunctionTemplate::rows() const {
  std::vector<const TemplateRow *> Out;
  if (Definition)
    Definition->preOrder(Out);
  for (const auto &Row : Body)
    Row->preOrder(Out);
  return Out;
}

static void renderRow(const TemplateRow &Row, int Depth, std::string &Out) {
  Out.append(static_cast<size_t>(Depth) * 2, ' ');
  Out += Row.text();
  if (Row.Repeatable)
    Out += "   // repeatable";
  Out += '\n';
  for (const auto &Child : Row.Children)
    renderRow(*Child, Depth + 1, Out);
}

std::string FunctionTemplate::render() const {
  std::string Out;
  if (Definition)
    renderRow(*Definition, 0, Out);
  for (const auto &Row : Body)
    renderRow(*Row, 1, Out);
  return Out;
}

namespace {

/// Builds the union template tree over a function group.
class TemplateBuilder {
public:
  explicit TemplateBuilder(const FunctionGroup &Group) : Group(Group) {}

  FunctionTemplate build() {
    assert(!Group.Members.empty() && "empty function group");
    FT.InterfaceName = Group.InterfaceName;
    FT.Module = Group.Module;
    for (const BackendFunction *F : Group.Members)
      FT.MemberTargets.push_back(F->TargetName);

    const BackendFunction *Pivot = pickPivot();
    seed(*Pivot);
    for (const BackendFunction *Member : Group.Members)
      if (Member != Pivot)
        merge(*Member);
    foldRepeatableRows();
    computePlaceholders();
    assignIndices();
    return std::move(FT);
  }

private:
  const BackendFunction *pickPivot() const {
    const BackendFunction *Best = Group.Members.front();
    for (const BackendFunction *F : Group.Members)
      if (F->AST.size() > Best->AST.size())
        Best = F;
    return Best;
  }

  std::unique_ptr<TemplateRow> rowFromStatement(const Statement &Stmt,
                                                const std::string &Target) {
    auto Row = std::make_unique<TemplateRow>();
    Row->Kind = Stmt.Kind;
    Row->Tokens = Stmt.Tokens;
    Row->PerTarget[Target].push_back(TemplateRow::Instance{&Stmt, {}});
    for (const auto &Child : Stmt.Children)
      Row->Children.push_back(rowFromStatement(*Child, Target));
    return Row;
  }

  void seed(const BackendFunction &Pivot) {
    auto Def = std::make_unique<TemplateRow>();
    Def->Kind = StmtKind::FunctionDef;
    Def->Tokens = Pivot.AST.Definition.Tokens;
    Def->PerTarget[Pivot.TargetName].push_back(
        TemplateRow::Instance{&Pivot.AST.Definition, {}});
    FT.Definition = std::move(Def);
    for (const auto &Stmt : Pivot.AST.Body)
      FT.Body.push_back(rowFromStatement(*Stmt, Pivot.TargetName));
  }

  /// Materializes the current template as a FunctionAST so GumTree can match
  /// members against it; fills \p StmtToRow with the correspondence.
  FunctionAST materialize(
      std::unordered_map<const Statement *, TemplateRow *> &StmtToRow) {
    FunctionAST TF;
    TF.Name = FT.InterfaceName;
    TF.Definition = Statement(FT.Definition->Kind, FT.Definition->Tokens);
    StmtToRow[&TF.Definition] = FT.Definition.get();
    for (const auto &Row : FT.Body)
      TF.Body.push_back(materializeRow(*Row, StmtToRow));
    return TF;
  }

  std::unique_ptr<Statement> materializeRow(
      TemplateRow &Row,
      std::unordered_map<const Statement *, TemplateRow *> &StmtToRow) {
    auto Stmt = std::make_unique<Statement>(Row.Kind, Row.Tokens);
    StmtToRow[Stmt.get()] = &Row;
    for (auto &Child : Row.Children)
      Stmt->Children.push_back(materializeRow(*Child, StmtToRow));
    return Stmt;
  }

  void merge(const BackendFunction &Member) {
    std::unordered_map<const Statement *, TemplateRow *> StmtToRow;
    FunctionAST TF = materialize(StmtToRow);
    TreeMapping Mapping = matchFunctions(TF, Member.AST);

    // Record instances for matched rows.
    FT.Definition->PerTarget[Member.TargetName].push_back(
        TemplateRow::Instance{&Member.AST.Definition, {}});
    std::unordered_set<const Statement *> Absorbed;
    recordMatches(TF, Member, Mapping, StmtToRow, Absorbed);

    // Insert top-most unmatched member statements as new rows.
    insertUnmatchedList(Member.AST.Body, FT.Body, Mapping, StmtToRow,
                        Member.TargetName, /*ParentRow=*/nullptr);
  }

  void recordMatches(
      const FunctionAST &TF, const BackendFunction &Member,
      const TreeMapping &Mapping,
      const std::unordered_map<const Statement *, TemplateRow *> &StmtToRow,
      std::unordered_set<const Statement *> &Absorbed) {
    std::vector<FunctionAST::FlatStatement> Flat = TF.flatten();
    for (const auto &FS : Flat) {
      if (FS.Stmt == &TF.Definition)
        continue;
      const Statement *Partner = Mapping.getDst(FS.Stmt);
      if (!Partner)
        continue;
      auto It = StmtToRow.find(FS.Stmt);
      assert(It != StmtToRow.end() && "materialized stmt without row");
      It->second->PerTarget[Member.TargetName].push_back(
          TemplateRow::Instance{Partner, {}});
      Absorbed.insert(Partner);
    }
  }

  /// Walks member sibling lists; unmatched statements become new row
  /// subtrees inserted after the row of their nearest matched predecessor.
  void insertUnmatchedList(
      const std::vector<std::unique_ptr<Statement>> &Siblings,
      std::vector<std::unique_ptr<TemplateRow>> &RowList,
      const TreeMapping &Mapping,
      const std::unordered_map<const Statement *, TemplateRow *> &StmtToRow,
      const std::string &Target, TemplateRow *ParentRow) {
    (void)ParentRow;
    // Row position of the last matched sibling, for ordered insertion.
    int InsertAfter = -1;
    for (const auto &Child : Siblings) {
      const Statement *Partner = Mapping.getDst(nullptr);
      (void)Partner;
      const Statement *TFMatch = Mapping.getSrc(Child.get());
      if (TFMatch) {
        auto It = StmtToRow.find(TFMatch);
        if (It != StmtToRow.end()) {
          TemplateRow *Row = It->second;
          // Find its position in RowList (may be nested elsewhere when the
          // matcher paired across levels; only track same-level rows).
          for (size_t I = 0; I < RowList.size(); ++I)
            if (RowList[I].get() == Row)
              InsertAfter = static_cast<int>(I);
          // Recurse into the matched pair's children.
          insertUnmatchedList(Child->Children, Row->Children, Mapping,
                              StmtToRow, Target, Row);
        }
        continue;
      }
      // Top-most unmatched statement: new row subtree here.
      auto NewRow = rowFromStatement(*Child, Target);
      size_t Pos = static_cast<size_t>(InsertAfter + 1);
      if (Pos > RowList.size())
        Pos = RowList.size();
      RowList.insert(RowList.begin() + static_cast<long>(Pos),
                     std::move(NewRow));
      InsertAfter = static_cast<int>(Pos);
    }
  }

  // ----------------------------------------------------------- folding --

  static uint64_t hashMix(uint64_t Seed, uint64_t V) {
    return Seed ^ (V + 0x9e3779b97f4a7c15ULL + (Seed << 12) + (Seed >> 4));
  }

  static uint64_t hashText(std::string_view Text) {
    uint64_t H = 1469598103934665603ULL;
    for (char C : Text) {
      H ^= static_cast<unsigned char>(C);
      H *= 1099511628211ULL;
    }
    return H;
  }

  /// Skeleton hash with value-like tokens masked: identifiers adjacent to
  /// '::', plus int/string literals.
  static uint64_t maskedHash(const TemplateRow &Row) {
    uint64_t H = hashText(stmtKindName(Row.Kind));
    const auto &Toks = Row.Tokens;
    for (size_t I = 0; I < Toks.size(); ++I) {
      bool Masked = false;
      if (Toks[I].Kind == TokenKind::IntLiteral ||
          Toks[I].Kind == TokenKind::StringLiteral)
        Masked = true;
      if (Toks[I].Kind == TokenKind::Identifier) {
        if (I > 0 && Toks[I - 1].isPunct("::"))
          Masked = true;
        if (I + 1 < Toks.size() && Toks[I + 1].isPunct("::"))
          Masked = true;
      }
      H = hashMix(H, Masked ? hashText("#") : hashText(Toks[I].Text));
    }
    for (const auto &Child : Row.Children)
      H = hashMix(H, maskedHash(*Child));
    return H;
  }

  /// Merges Src's instances into Dst recursively (same masked shape).
  static void mergeRowInto(TemplateRow &Dst, TemplateRow &Src) {
    for (auto &[Target, Instances] : Src.PerTarget)
      for (auto &Inst : Instances)
        Dst.PerTarget[Target].push_back(std::move(Inst));
    size_t N = std::min(Dst.Children.size(), Src.Children.size());
    for (size_t I = 0; I < N; ++I)
      mergeRowInto(*Dst.Children[I], *Src.Children[I]);
  }

  void foldRepeatableRows() {
    for (auto &Row : FT.Body)
      foldUnder(*Row);
  }

  void foldUnder(TemplateRow &Row) {
    if (Row.Kind == StmtKind::Switch) {
      std::vector<std::unique_ptr<TemplateRow>> NewChildren;
      std::unordered_map<uint64_t, TemplateRow *> Leader;
      for (auto &Child : Row.Children) {
        if (Child->Kind != StmtKind::Case) {
          NewChildren.push_back(std::move(Child));
          continue;
        }
        uint64_t H = maskedHash(*Child);
        auto It = Leader.find(H);
        if (It == Leader.end()) {
          Leader[H] = Child.get();
          NewChildren.push_back(std::move(Child));
          continue;
        }
        It->second->Repeatable = true;
        mergeRowInto(*It->second, *Child);
      }
      Row.Children = std::move(NewChildren);
    }
    for (auto &Child : Row.Children)
      foldUnder(*Child);
  }

  // ------------------------------------------------------ placeholders --

  void computePlaceholders() {
    computeRowPlaceholders(*FT.Definition);
    for (auto &Row : FT.Body)
      computeRowPlaceholdersRec(*Row);
  }

  void computeRowPlaceholdersRec(TemplateRow &Row) {
    computeRowPlaceholders(Row);
    for (auto &Child : Row.Children)
      computeRowPlaceholdersRec(*Child);
  }

  void computeRowPlaceholders(TemplateRow &Row) {
    // Gather every instance's token texts.
    std::vector<TemplateRow::Instance *> Instances;
    for (auto &[Target, List] : Row.PerTarget)
      for (auto &Inst : List)
        Instances.push_back(&Inst);
    if (Instances.empty())
      return;

    auto TextsOf = [](const TemplateRow::Instance &Inst) {
      std::vector<std::string> Texts;
      for (const Token &T : Inst.Stmt->Tokens)
        Texts.push_back(T.Text);
      return Texts;
    };

    std::vector<std::string> Common = TextsOf(*Instances.front());
    for (size_t I = 1; I < Instances.size(); ++I) {
      std::vector<std::string> Other = TextsOf(*Instances[I]);
      auto Pairs = longestCommonSubsequence(Common, Other);
      std::vector<std::string> Next;
      for (auto [A, B] : Pairs) {
        (void)B;
        Next.push_back(Common[A]);
      }
      Common = std::move(Next);
    }

    // Per-instance gap extraction: anchors = Common; gaps are the segments
    // between consecutive anchors (with a leading and trailing gap).
    size_t GapCount = Common.size() + 1;
    std::vector<bool> GapActive(GapCount, false);
    std::vector<std::vector<std::vector<Token>>> InstGaps(Instances.size());
    for (size_t I = 0; I < Instances.size(); ++I) {
      const std::vector<Token> &Toks = Instances[I]->Stmt->Tokens;
      std::vector<std::string> Texts = TextsOf(*Instances[I]);
      auto Pairs = longestCommonSubsequence(Texts, Common);
      assert(Pairs.size() == Common.size() &&
             "common must be a subsequence of each instance");
      std::vector<std::vector<Token>> Gaps(GapCount);
      size_t Prev = 0;
      for (size_t A = 0; A < Pairs.size(); ++A) {
        for (size_t P = Prev; P < Pairs[A].first; ++P)
          Gaps[A].push_back(Toks[P]);
        Prev = Pairs[A].first + 1;
      }
      for (size_t P = Prev; P < Toks.size(); ++P)
        Gaps[GapCount - 1].push_back(Toks[P]);
      for (size_t G = 0; G < GapCount; ++G)
        if (!Gaps[G].empty())
          GapActive[G] = true;
      InstGaps[I] = std::move(Gaps);
    }

    // Template tokens: anchors interleaved with placeholders at active gaps.
    std::vector<Token> NewTokens;
    std::vector<size_t> SlotGapIndex;
    auto MaybePlaceholder = [&](size_t Gap) {
      if (!GapActive[Gap])
        return;
      NewTokens.emplace_back(TokenKind::Placeholder,
                             "$SV" + std::to_string(SlotGapIndex.size()));
      SlotGapIndex.push_back(Gap);
    };
    // Reuse the first instance's token kinds for anchors where possible.
    const TemplateRow::Instance &First = *Instances.front();
    std::vector<std::string> FirstTexts = TextsOf(First);
    auto FirstPairs = longestCommonSubsequence(FirstTexts, Common);
    for (size_t A = 0; A < Common.size(); ++A) {
      MaybePlaceholder(A);
      Token Anchor = First.Stmt->Tokens[FirstPairs[A].first];
      NewTokens.push_back(std::move(Anchor));
    }
    MaybePlaceholder(GapCount - 1);
    Row.Tokens = std::move(NewTokens);

    // Slot fillers per instance, aligned with the placeholder order.
    for (size_t I = 0; I < Instances.size(); ++I) {
      Instances[I]->SlotFillers.clear();
      for (size_t SlotIdx = 0; SlotIdx < SlotGapIndex.size(); ++SlotIdx)
        Instances[I]->SlotFillers.push_back(InstGaps[I][SlotGapIndex[SlotIdx]]);
    }
  }

  void assignIndices() {
    int Index = 0;
    for (TemplateRow *Row : FT.rows())
      Row->Index = Index++;
  }

  const FunctionGroup &Group;
  FunctionTemplate FT;
};

} // namespace

FunctionTemplate vega::buildFunctionTemplate(const FunctionGroup &Group) {
  obs::Span S("stage1.templatize", "stage1");
  S.arg("interface", Group.InterfaceName);
  S.arg("members", std::to_string(Group.Members.size()));
  TemplateBuilder Builder(Group);
  FunctionTemplate FT = Builder.build();
  obs::MetricsRegistry::instance().addCounter("templatize.rows",
                                              FT.rows().size());
  return FT;
}
