//===- serve/Server.h - The vega-serve shard daemon --------------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A long-running generation daemon over one loaded VegaSession — one shard
/// of the serving fleet (VegaRouter fronts several of these). Requests
/// arrive as newline-delimited JSON-RPC 2.0 (over stdio or a local Unix
/// socket) and flow into the continuous-batching Scheduler: concurrent
/// requests are admitted mid-flight up to the admission window, interleave
/// their decode steps in one pool fan-out per step, attach-dedup onto an
/// in-flight generation of the same target, and retire independently as
/// they finish. Merges are deterministic, so a response is byte-identical
/// whether its request ran alone or co-batched with seven neighbours.
///
/// Methods: ping, info, stats, generate {target}, evaluate {target},
/// repair {target}, shutdown. Every data method accepts an optional
/// `deadlineMs` (relative to submission); a request past its deadline is
/// answered Unavailable instead of doing work. When the admission queue is
/// full, submits are rejected with the typed Overloaded code (-32005) —
/// the backpressure signal callers and the router react to.
///
/// Observability: each submitted line gets a RequestContext (monotonic id,
/// deadline, span flight-recorder ring) at submission time, so measured
/// latency includes queue wait. The scheduler routes the context onto
/// every generation span via RequestRouter — a `gen.*` span recorded while
/// serving carries its originating request id. Counters/histograms go to
/// the process MetricsRegistry (serve.requests — total and labeled by
/// {method,code} — serve.errors, serve.batch_size, serve.queue_ms,
/// serve.request_ms, the serve.sched.* counters, and the
/// serve.queue_depth / serve.active gauges); the `stats` method returns a
/// live snapshot, and --metrics-out exports JSON or Prometheus text on
/// exit. Request completions are NDJSON-logged at info level; requests
/// slower than SlowMs dump their span ring at warn level.
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_SERVE_SERVER_H
#define VEGA_SERVE_SERVER_H

#include "core/VegaSession.h"
#include "obs/Request.h"
#include "serve/Protocol.h"
#include "serve/Scheduler.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

namespace vega {
namespace serve {

struct ServerOptions {
  /// Most generations decoding concurrently (the scheduler's admission
  /// window). Reported as `maxBatch` by `info` for vega-serve-1 wire
  /// compatibility.
  int Window = 8;
  /// Most requests waiting for admission before new generation requests
  /// are rejected with Overloaded (-32005). 0 means unbounded.
  int MaxQueue = 64;
  /// Requests slower than this (milliseconds, queue wait included) dump
  /// their flight-recorder span ring to the structured log at warn level.
  /// 0 disables the slow-request dump.
  double SlowMs = 0.0;
  bool Verbose = false;
};

/// The shard daemon. One instance serves one session; serveStream()/
/// serveSocket() block until shutdown (the `shutdown` method or transport
/// EOF).
class VegaServer {
public:
  VegaServer(VegaSession &Session, ServerOptions Options);
  ~VegaServer();

  VegaServer(const VegaServer &) = delete;
  VegaServer &operator=(const VegaServer &) = delete;

  /// Dispatches one raw request line. Protocol-only methods are answered
  /// before this returns; generation methods resolve the future once the
  /// scheduler retires their generation. Thread-safe.
  std::future<std::string> submitLine(std::string Line);

  /// submitLine + wait. Thread-safe; concurrent callers co-batch in the
  /// scheduler.
  std::string handleLine(const std::string &Line);

  /// Submits \p Lines as one wave — their generations co-batch in the
  /// scheduler — and returns the responses in submission order. Used by
  /// tests to force a known co-batch composition.
  std::vector<std::string> handleLines(const std::vector<std::string> &Lines);

  /// NDJSON loop over a stream pair (the stdio transport). Returns after
  /// EOF or a `shutdown` request; every submitted request is answered, in
  /// submission order, before returning.
  Status serveStream(std::istream &In, std::ostream &Out);

  /// NDJSON loop over an AF_UNIX socket at \p Path (created fresh; an
  /// existing file is replaced). One thread per connection; concurrent
  /// connections co-batch in the scheduler. Returns after a `shutdown`
  /// request.
  Status serveSocket(const std::string &Path);

  /// True once a `shutdown` request was processed (or shutdown() called).
  bool shutdownRequested() const {
    return Shutdown.load(std::memory_order_relaxed);
  }

  /// Requests shutdown from outside a transport (tests, signal handlers).
  void shutdown();

  /// The continuous-batching scheduler (pause/resume test hooks, stats).
  Scheduler &scheduler() { return *Sched; }
  const Scheduler &scheduler() const { return *Sched; }

  /// Requests submitted and not yet answered (router/fleet accounting).
  uint64_t inFlight() const { return InFlight.load(std::memory_order_relaxed); }

private:
  /// Parses \p Line and either answers it inline (protocol methods, parse
  /// and validation errors) or hands it to the scheduler (generation
  /// methods). Resolves \p Promise exactly once either way.
  void dispatch(std::string Line, std::shared_ptr<obs::RequestContext> Ctx,
                std::shared_ptr<std::promise<std::string>> Promise);
  /// The shared request tail: serve.request span + counters + NDJSON log
  /// around \p Build, under \p Ctx's RequestScope. Returns the serialized
  /// response line.
  std::string runRequest(obs::RequestContext &Ctx,
                         const std::string &MethodLabel,
                         const std::string &Target,
                         const std::function<Json()> &Build);
  /// Resolves \p Promise with \p Response and drops the in-flight count.
  void resolve(const std::shared_ptr<std::promise<std::string>> &Promise,
               std::string Response);
  Json handleInfo() const;
  /// The `stats` RPC payload: schema vega-stats-1 with uptime, in-flight /
  /// queue depth, the serve counters, per-histogram quantiles, and the
  /// scheduler snapshot.
  Json handleStats();

  VegaSession &Session;
  ServerOptions Options;
  std::chrono::steady_clock::time_point StartTime;
  std::atomic<bool> Shutdown{false};
  /// Requests submitted via submitLine and not yet answered.
  std::atomic<uint64_t> InFlight{0};
  /// Declared last: its destructor fails pending waiters, whose callbacks
  /// touch the members above.
  std::unique_ptr<Scheduler> Sched;
};

} // namespace serve
} // namespace vega

#endif // VEGA_SERVE_SERVER_H
