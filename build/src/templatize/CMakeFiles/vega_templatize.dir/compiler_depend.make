# Empty compiler generated dependencies file for vega_templatize.
# This may be replaced when dependencies are built.
