//===- support/BinaryIO.h - Bounds-checked binary (de)serialization -*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Little helpers for length-prefixed binary formats (the `.vega` session
/// artifact). BinaryWriter appends fixed-width little-endian scalars and
/// length-prefixed strings to a buffer; BinaryReader is the bounds-checked
/// inverse: every read reports truncation instead of reading past the end,
/// and once a read fails the reader stays failed — callers check ok() once
/// at the end of a section instead of after every field.
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_SUPPORT_BINARYIO_H
#define VEGA_SUPPORT_BINARYIO_H

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace vega {

/// Appends scalars/strings to an owned byte buffer.
class BinaryWriter {
public:
  void u8(uint8_t V) { raw(&V, sizeof(V)); }
  void u32(uint32_t V) { raw(&V, sizeof(V)); }
  void u64(uint64_t V) { raw(&V, sizeof(V)); }
  void i32(int32_t V) { raw(&V, sizeof(V)); }
  void f64(double V) { raw(&V, sizeof(V)); }

  /// u64 length + bytes.
  void str(std::string_view S) {
    u64(S.size());
    raw(S.data(), S.size());
  }

  /// Raw bytes, no length prefix.
  void bytes(std::string_view S) { raw(S.data(), S.size()); }

  const std::string &blob() const { return Buf; }
  std::string takeBlob() { return std::move(Buf); }
  size_t size() const { return Buf.size(); }

private:
  void raw(const void *Data, size_t N) {
    Buf.append(static_cast<const char *>(Data), N);
  }
  std::string Buf;
};

/// Bounds-checked reads over a borrowed byte buffer.
class BinaryReader {
public:
  explicit BinaryReader(std::string_view Blob) : Blob(Blob) {}

  bool u8(uint8_t &V) { return raw(&V, sizeof(V)); }
  bool u32(uint32_t &V) { return raw(&V, sizeof(V)); }
  bool u64(uint64_t &V) { return raw(&V, sizeof(V)); }
  bool i32(int32_t &V) { return raw(&V, sizeof(V)); }
  bool f64(double &V) { return raw(&V, sizeof(V)); }

  bool str(std::string &S) {
    uint64_t N = 0;
    if (!u64(N) || N > Blob.size() - Pos)
      return fail();
    S.assign(Blob.data() + Pos, N);
    Pos += N;
    return true;
  }

  bool bytes(std::string &S, size_t N) {
    if (N > Blob.size() - Pos)
      return fail();
    S.assign(Blob.data() + Pos, N);
    Pos += N;
    return true;
  }

  bool ok() const { return !Failed; }
  bool atEnd() const { return Pos == Blob.size(); }
  size_t pos() const { return Pos; }
  size_t remaining() const { return Blob.size() - Pos; }

private:
  bool raw(void *Dst, size_t N) {
    if (Failed || N > Blob.size() - Pos)
      return fail();
    std::memcpy(Dst, Blob.data() + Pos, N);
    Pos += N;
    return true;
  }
  bool fail() {
    Failed = true;
    return false;
  }

  std::string_view Blob;
  size_t Pos = 0;
  bool Failed = false;
};

/// FNV-1a over a byte range — the per-section checksum of the `.vega`
/// artifact (and the hash everywhere else in the project).
inline uint64_t fnv1a(std::string_view Bytes) {
  uint64_t H = 1469598103934665603ULL;
  for (char C : Bytes) {
    H ^= static_cast<unsigned char>(C);
    H *= 1099511628211ULL;
  }
  return H;
}

} // namespace vega

#endif // VEGA_SUPPORT_BINARYIO_H
