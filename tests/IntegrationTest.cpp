//===- tests/IntegrationTest.cpp - end-to-end pipeline test --------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// End-to-end: corpus → templates → features → (briefly) fine-tuned CodeBE
/// → backend generation → pass@1 evaluation. The model here trains for a
/// single epoch to keep the suite fast; the benches train the full model.
///
//===----------------------------------------------------------------------===//

#include "eval/EffortModel.h"
#include "eval/Harness.h"
#include "forkflow/ForkFlow.h"
#include "minicc/Benchmarks.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

using namespace vega;

namespace {

const BackendCorpus &sharedCorpus() {
  static BackendCorpus Corpus =
      BackendCorpus::build(TargetDatabase::standard());
  return Corpus;
}

VegaSystem &trainedSystem() {
  static VegaSystem *Sys = [] {
    VegaOptions Opts;
    Opts.Model.Epochs = 1;
    Opts.WeightCachePath = "integration_model.bin";
    auto *S = new VegaSystem(sharedCorpus(), Opts);
    S->buildTemplates();
    S->buildDataset();
    S->trainModel();
    return S;
  }();
  return *Sys;
}

} // namespace

TEST(Integration, GeneratesACompleteBackend) {
  GeneratedBackend GB = trainedSystem().generateBackend("RISCV");
  EXPECT_EQ(GB.Functions.size(),
            sharedCorpus().trainingGroups().size());
  size_t Emitted = 0;
  for (const GeneratedFunction &F : GB.Functions)
    if (F.Emitted)
      ++Emitted;
  // Even a briefly trained model emits most functions.
  EXPECT_GT(Emitted, GB.Functions.size() / 2);
  EXPECT_GT(GB.totalSeconds(), 0.0);
}

TEST(Integration, HarnessEvaluatesGeneratedBackend) {
  GeneratedBackend GB = trainedSystem().generateBackend("RISCV");
  BackendEval Eval = evaluateBackend(GB, *sharedCorpus().backend("RISCV"),
                                     *sharedCorpus().targets().find("RISCV"));
  // With one epoch the model is weak; the harness must still yield sane
  // bounded metrics.
  EXPECT_GE(Eval.functionAccuracy(), 0.0);
  EXPECT_LE(Eval.functionAccuracy(), 1.0);
  EXPECT_GE(Eval.statementAccuracy(), 0.0);
  EXPECT_LE(Eval.statementAccuracy(), 1.0);
  EXPECT_GE(totalRepairHours(Eval, developerA()), 0.0);
}

TEST(Integration, RepairedCompilerMatchesBaseCompiler) {
  // §4.3 robustness: replace inaccurate functions with golden ones; the
  // repaired backend must drive the mini compiler identically to base.
  GeneratedBackend GB = trainedSystem().generateBackend("RI5CY");
  const Backend *Golden = sharedCorpus().backend("RI5CY");
  const TargetTraits *Traits = sharedCorpus().targets().find("RI5CY");
  BackendEval Eval = evaluateBackend(GB, *Golden, *Traits);

  std::map<std::string, const FunctionAST *> Repaired, GoldenFns;
  for (const FunctionEval &FE : Eval.Functions) {
    const BackendFunction *GoldenFn = Golden->find(FE.InterfaceName);
    if (!GoldenFn)
      continue;
    GoldenFns[FE.InterfaceName] = &GoldenFn->AST;
    if (FE.Accurate) {
      Repaired[FE.InterfaceName] = &GB.find(FE.InterfaceName)->AST;
    } else {
      Repaired[FE.InterfaceName] = &GoldenFn->AST;
    }
  }
  // The base compiler IS the golden backend (§4.3), so both sides derive
  // their hooks by interpreting backend functions.
  BackendHooks RepairedHooks = hooksFromFunctions(*Traits, Repaired);
  BackendHooks BaseHooks = hooksFromFunctions(*Traits, GoldenFns);
  EXPECT_EQ(RepairedHooks.PostRAScheduler, BaseHooks.PostRAScheduler);
  EXPECT_EQ(RepairedHooks.HardwareLoops, BaseHooks.HardwareLoops);
  EXPECT_EQ(RepairedHooks.VectorWidth, BaseHooks.VectorWidth);
  for (const std::string &Name : {pulpSuite()[0], pulpSuite()[1]}) {
    IRModule M = buildBenchmark(Name);
    SimResult A = compileAndRun(M, *Traits, RepairedHooks, OptLevel::O3);
    SimResult B = compileAndRun(M, *Traits, BaseHooks, OptLevel::O3);
    EXPECT_EQ(A.Cycles, B.Cycles) << Name;
  }
}

TEST(Integration, ForkFlowLosesToGoldenEverywhere) {
  // The paper forks from MIPS for all three targets (§4.2).
  for (const std::string &Target : TargetDatabase::evaluationTargetNames()) {
    GeneratedBackend FF = forkflowBackend(sharedCorpus(), "Mips", Target);
    BackendEval Eval =
        evaluateBackend(FF, *sharedCorpus().backend(Target),
                        *sharedCorpus().targets().find(Target));
    EXPECT_LT(Eval.functionAccuracy(), 0.6) << Target;
  }
}

TEST(Integration, ConfidenceScoresAreBounded) {
  GeneratedBackend GB = trainedSystem().generateBackend("XCORE");
  for (const GeneratedFunction &F : GB.Functions) {
    EXPECT_GE(F.Confidence, 0.0);
    EXPECT_LE(F.Confidence, 1.0);
    for (const GeneratedStatement &S : F.Statements) {
      EXPECT_GE(S.Confidence, 0.0);
      EXPECT_LE(S.Confidence, 1.0);
      if (S.Emitted)
        EXPECT_GE(S.Confidence, 0.5);
    }
  }
}

TEST(Integration, TraceCoversAllModulesAndAgreesWithFig7) {
  auto &Rec = obs::TraceRecorder::instance();
  auto &Metrics = obs::MetricsRegistry::instance();
  Rec.clear();
  Rec.setEnabled(true);
  Metrics.clear();
  Metrics.setEnabled(true);
  GeneratedBackend GB = trainedSystem().generateBackend("RISCV");
  Rec.setEnabled(false);
  Metrics.setEnabled(false);

  std::vector<obs::TraceEvent> Events = Rec.snapshot();
  // One gen.<module> span per generated function, for all 7 modules.
  std::map<std::string, size_t> SpanCount;
  std::map<std::string, double> SpanSeconds;
  for (const obs::TraceEvent &E : Events) {
    if (E.Name.rfind("gen.", 0) == 0 && E.Name != "gen.row") {
      ++SpanCount[E.Name];
      SpanSeconds[E.Name] += E.DurUs / 1e6;
    }
  }
  for (BackendModule Module : AllModules) {
    std::string Name = std::string("gen.") + moduleName(Module);
    EXPECT_GT(SpanCount[Name], 0u) << Name;
    // Dedup check: Fig. 7's ModuleSeconds must equal the trace's per-module
    // span totals — they are the same measurement by construction.
    auto It = GB.ModuleSeconds.find(Module);
    ASSERT_NE(It, GB.ModuleSeconds.end()) << Name;
    EXPECT_NEAR(It->second, SpanSeconds[Name], 1e-9) << Name;
  }
  // The stage-3 umbrella span nests the per-function spans.
  bool SawStage3 = false;
  for (const obs::TraceEvent &E : Events)
    if (E.Name == "stage3.generate_backend") {
      SawStage3 = true;
      EXPECT_EQ(E.Depth, 0);
    }
  EXPECT_TRUE(SawStage3);
  // Per-row spans nest beneath the function spans. Span depth is
  // per-thread, so on a worker lane the gen.<module> span sits at depth 0
  // and the rows at depth 1; on the caller lane they sit one deeper.
  bool SawRow = false;
  for (const obs::TraceEvent &E : Events)
    if (E.Name == "gen.row") {
      SawRow = true;
      EXPECT_GE(E.Depth, 1);
    }
  EXPECT_TRUE(SawRow);

  // The metrics side: ≥5 distinct metrics including the confidence
  // histogram, and the counters agree with the generated backend.
  EXPECT_GE(Metrics.metricCount(), 5u);
  std::optional<obs::Histogram> Conf = Metrics.histogram("gen.confidence");
  ASSERT_TRUE(Conf.has_value());
  EXPECT_GT(Conf->Count, 0u);
  EXPECT_EQ(Metrics.counterValue("gen.functions"), GB.Functions.size());
}

TEST(Integration, WeightCacheRoundTrips) {
  // A second system with the same options must load the cached weights and
  // generate identical output.
  VegaOptions Opts;
  Opts.Model.Epochs = 1;
  Opts.WeightCachePath = "integration_model.bin";
  VegaSystem Sys2(sharedCorpus(), Opts);
  Sys2.buildTemplates();
  Sys2.buildDataset();
  Sys2.trainModel();
  GeneratedBackend A = trainedSystem().generateBackend("RISCV");
  GeneratedBackend B = Sys2.generateBackend("RISCV");
  ASSERT_EQ(A.Functions.size(), B.Functions.size());
  for (size_t I = 0; I < A.Functions.size(); ++I) {
    EXPECT_EQ(A.Functions[I].Emitted, B.Functions[I].Emitted);
    if (A.Functions[I].Emitted && B.Functions[I].Emitted)
      EXPECT_EQ(A.Functions[I].AST.render(), B.Functions[I].AST.render());
  }
}
