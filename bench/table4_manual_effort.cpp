//===- bench/table4_manual_effort.cpp - Table 4 --------------------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// Table 4: estimated hours two developers would need to repair the
/// generated RISC-V backend, via the effort model calibrated on the paper's
/// Table 3 → Table 4 rates (DESIGN.md §2). Paper anchors: 42.54 h
/// (Developer A) and 48.12 h (Developer B), dominated by SEL and OPT.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/TextTable.h"

#include <cstdio>

using namespace vega;

int main() {
  const BackendEval &Eval = bench::evaluation("RISCV");
  DeveloperProfile A = developerA();
  DeveloperProfile B = developerB();
  auto HoursA = estimateRepairHours(Eval, A);
  auto HoursB = estimateRepairHours(Eval, B);

  TextTable Table;
  Table.setHeader({"Module", "Developer A (h)", "Developer B (h)"});
  double TotalA = 0.0, TotalB = 0.0;
  for (BackendModule Module : AllModules) {
    double HA = HoursA.count(Module) ? HoursA[Module] : 0.0;
    double HB = HoursB.count(Module) ? HoursB[Module] : 0.0;
    TotalA += HA;
    TotalB += HB;
    Table.addRow({moduleName(Module), TextTable::formatDouble(HA, 2),
                  TextTable::formatDouble(HB, 2)});
  }
  Table.addSeparator();
  Table.addRow({"ALL", TextTable::formatDouble(TotalA, 2),
                TextTable::formatDouble(TotalB, 2)});

  std::printf("== Table 4: modeled manual-correction hours (RISC-V) ==\n%s\n",
              Table.render().c_str());
  std::printf("paper (at LLVM scale): 42.54 h / 48.12 h with SEL and OPT "
              "dominating; ForkFlow estimated at 120-176 h. Our corpus is "
              "~20x smaller, so absolute hours scale down accordingly — the "
              "module ranking is the comparable shape\n");
  return 0;
}
