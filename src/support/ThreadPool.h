//===- support/ThreadPool.h - Fixed-size worker pool -------------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size worker pool with a parallelFor / deterministic-reduce API.
/// Stage 3 fans backend generation out per function across this pool; the
/// merge step folds results in ascending index order so parallel runs are
/// byte-identical to serial ones (see DESIGN.md "Performance engineering").
///
/// With one job the pool spawns no threads and parallelFor runs inline on
/// the caller, so `--jobs=1` is exactly the serial code path.
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_SUPPORT_THREADPOOL_H
#define VEGA_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace vega {

class ThreadPool {
public:
  /// \p Jobs <= 0 selects defaultJobs(). The pool owns Jobs-1 worker
  /// threads; the caller of parallelFor always participates as lane 0.
  explicit ThreadPool(int Jobs = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Total lanes (worker threads + the participating caller).
  unsigned jobs() const { return JobCount; }

  /// The default job count: VEGA_JOBS when set, else hardware_concurrency.
  static unsigned defaultJobs();

  /// Lane index of the calling thread while it executes parallelFor work
  /// (0 = caller, 1..jobs()-1 = pool workers); -1 outside the pool.
  static int currentLane();

  /// Hooks for carrying ambient thread-local state (e.g. the obs layer's
  /// current request) from the parallelFor caller onto every lane that
  /// works the batch. The pool treats the state as an opaque snapshot:
  /// Capture runs on the caller (nullptr = nothing to carry), Install runs
  /// on each lane before it claims items and returns the lane's prior
  /// state, Restore reinstates that prior state after the lane drains.
  struct ContextPropagator {
    std::function<std::shared_ptr<void>()> Capture;
    std::function<std::shared_ptr<void>(const std::shared_ptr<void> &)>
        Install;
    std::function<void(const std::shared_ptr<void> &)> Restore;
  };

  /// Registers the process-wide propagator. Intended to be called once at
  /// static-init time by the layer that owns the thread-locals (vega_obs);
  /// the support library itself stays ignorant of what is propagated.
  static void setContextPropagator(ContextPropagator P);

  /// Runs Fn(0..N-1) across all lanes; items are claimed from a shared
  /// atomic counter. Blocks until every item completed. The first exception
  /// thrown by an item is rethrown on the caller after the batch drains.
  /// Not reentrant: do not call parallelFor from inside an item.
  void parallelFor(size_t N, const std::function<void(size_t)> &Fn);

  /// Maps Fn over 0..N-1 in parallel and returns the results indexed by
  /// item — the deterministic counterpart of a parallel loop with side
  /// effects: merge order never depends on thread scheduling.
  template <typename T>
  std::vector<T> parallelMap(size_t N, const std::function<T(size_t)> &Fn) {
    std::vector<T> Out(N);
    parallelFor(N, [&](size_t I) { Out[I] = Fn(I); });
    return Out;
  }

  /// Deterministic map-reduce: computes Map(i) in parallel, then folds the
  /// partial results serially in ascending index order, so floating-point
  /// and container accumulation match the serial loop bit for bit.
  template <typename T, typename MapFn, typename ReduceFn>
  T parallelReduce(size_t N, T Init, MapFn Map, ReduceFn Reduce) {
    std::vector<T> Parts(N);
    parallelFor(N, [&](size_t I) { Parts[I] = Map(I); });
    T Acc = std::move(Init);
    for (size_t I = 0; I < N; ++I)
      Acc = Reduce(std::move(Acc), std::move(Parts[I]));
    return Acc;
  }

private:
  /// One parallelFor invocation. Heap-allocated and published via
  /// shared_ptr so a worker that wakes up late holds a reference to the
  /// batch it saw, never to a newer one's counters.
  struct Batch {
    const std::function<void(size_t)> *Fn = nullptr;
    size_t N = 0;
    std::atomic<size_t> Next{0};
    std::atomic<size_t> Done{0};
    std::mutex Mu;
    std::condition_variable DoneCv;
    bool Finished = false;
    std::exception_ptr Error; ///< first failure; guarded by Mu
    std::shared_ptr<void> Ambient; ///< caller's captured ambient context
  };

  void workerLoop(unsigned Lane);
  static void runBatch(Batch &B);

  unsigned JobCount;
  std::vector<std::thread> Workers;
  std::mutex Mu;
  std::condition_variable WorkCv;
  std::shared_ptr<Batch> Current; ///< guarded by Mu
  bool Stop = false;              ///< guarded by Mu
};

} // namespace vega

#endif // VEGA_SUPPORT_THREADPOOL_H
