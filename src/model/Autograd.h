//===- model/Autograd.h - Tape-based reverse-mode autodiff -------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small reverse-mode automatic-differentiation engine over dense float
/// matrices — the substrate for the CodeBE transformer (the paper fine-tunes
/// UniXcoder; we train an architecturally equivalent model at laptop scale,
/// see DESIGN.md §2). Operations build a tape; backward() propagates
/// gradients in reverse topological order.
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_MODEL_AUTOGRAD_H
#define VEGA_MODEL_AUTOGRAD_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

namespace vega {

class Tensor;
using TensorPtr = std::shared_ptr<Tensor>;

/// A dense R×C float matrix with an optional gradient and a backward hook.
class Tensor {
public:
  /// Gradient storage is lazy: it materializes on the first backward()
  /// touch (or an explicit ensureGrad()), so inference-only tapes never
  /// allocate Grad buffers at all.
  Tensor(int Rows, int Cols, bool RequiresGrad)
      : Rows(Rows), Cols(Cols), RequiresGrad(RequiresGrad),
        Data(static_cast<size_t>(Rows) * Cols, 0.0f) {}

  int rows() const { return Rows; }
  int cols() const { return Cols; }
  size_t size() const { return Data.size(); }

  float &at(int R, int C) { return Data[static_cast<size_t>(R) * Cols + C]; }
  float at(int R, int C) const {
    return Data[static_cast<size_t>(R) * Cols + C];
  }
  float &gradAt(int R, int C) {
    return Grad[static_cast<size_t>(R) * Cols + C];
  }

  /// Gradient destination for backward closures: when a GradSink is active
  /// on this thread and tracks this tensor, its per-sink buffer; otherwise
  /// the tensor's own (lazily materialized) Grad buffer. This is the hook
  /// that lets several tapes sharing leaf tensors run backward()
  /// concurrently without ever writing the same memory.
  float *gradData();

  std::vector<float> Datav() const { return Data; }

  /// Ensures a gradient buffer exists (used when a no-grad tensor becomes
  /// part of a differentiable expression).
  void ensureGrad() {
    if (Grad.size() != Data.size())
      Grad.assign(Data.size(), 0.0f);
  }
  void zeroGrad() { std::fill(Grad.begin(), Grad.end(), 0.0f); }

  int Rows, Cols;
  bool RequiresGrad;
  std::vector<float> Data;
  std::vector<float> Grad;
  std::vector<TensorPtr> Parents;
  std::function<void()> Backward;
};

/// A private gradient accumulator for tensors shared between concurrently
/// walked tapes (model parameters, batch-shared embedding subtrees).
///
/// Each training lane owns one sink per in-flight example. While a sink is
/// active on a thread (via GradSink::Scope), every backward closure that
/// would accumulate into a tracked tensor's Grad is redirected to the
/// sink's own buffer for that tensor, so concurrent example tapes touch
/// disjoint memory by construction. After the batch, the per-example
/// buffers are folded into the real Grad buffers in ascending example
/// order — a fixed-order reduction that makes the summed gradient
/// bit-identical no matter how many threads ran the examples.
class GradSink {
public:
  GradSink() = default;

  /// (Re)binds the sink to an ordered tensor set. Buffer allocations are
  /// reused across track() calls when the shapes at each index match (the
  /// steady state: parameters plus same-shaped per-batch shared nodes).
  void track(const std::vector<TensorPtr> &Tensors);

  /// Zeroes every buffer for reuse on the next example.
  void zero();

  /// The sink's buffer for \p T, or nullptr when untracked.
  float *bufferFor(const Tensor *T);

  size_t trackedCount() const { return Tracked.size(); }
  const Tensor *trackedAt(size_t I) const { return Tracked[I]; }
  const std::vector<float> &bufferAt(size_t I) const { return Buffers[I]; }

  /// RAII activation of a sink on the current thread. Nesting restores the
  /// previous sink on destruction; sinks never leak across threads.
  class Scope {
  public:
    explicit Scope(GradSink &S);
    ~Scope();
    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    GradSink *Prev;
  };

  /// True when the active sink on this thread tracks \p T (used by
  /// backward() to skip materializing Grad on shared tensors from worker
  /// threads).
  static bool activeFor(const Tensor *T);

private:
  std::vector<const Tensor *> Tracked;
  std::unordered_map<const Tensor *, size_t> Index;
  std::vector<std::vector<float>> Buffers;
};

/// Creates a tensor of zeros.
TensorPtr makeTensor(int Rows, int Cols, bool RequiresGrad = false);

/// Creates a parameter initialized with uniform(-Scale, Scale) noise.
TensorPtr makeParam(int Rows, int Cols, float Scale, uint64_t Seed);

// ---- Differentiable operations (each returns a new tape node) ----

/// C = A · B.
TensorPtr matmul(const TensorPtr &A, const TensorPtr &B);

/// C = A · Bᵀ.
TensorPtr matmulNT(const TensorPtr &A, const TensorPtr &B);

/// Elementwise sum (same shape).
TensorPtr add(const TensorPtr &A, const TensorPtr &B);

/// Adds row vector \p B (1×C) to every row of \p A.
TensorPtr addRow(const TensorPtr &A, const TensorPtr &B);

/// Multiplies by a compile-time constant.
TensorPtr scale(const TensorPtr &A, float Factor);

/// Multiplies every element by a learned 1×1 tensor.
TensorPtr scaleByScalar(const TensorPtr &A, const TensorPtr &S);

/// Elementwise ReLU.
TensorPtr relu(const TensorPtr &A);

/// Row-wise softmax with an optional additive mask (same shape, no grad).
TensorPtr softmaxRows(const TensorPtr &A, const Tensor *Mask = nullptr);

/// Row-wise layer normalization with learned gain/bias (1×C each).
TensorPtr layerNorm(const TensorPtr &X, const TensorPtr &Gamma,
                    const TensorPtr &Beta);

/// Gathers rows of \p E by \p Ids (result |Ids|×C); backward scatter-adds.
TensorPtr gatherRows(const TensorPtr &E, const std::vector<int> &Ids);

/// Column slice [Start, Start+Count).
TensorPtr sliceCols(const TensorPtr &A, int Start, int Count);

/// Horizontal concatenation of equal-row tensors.
TensorPtr concatCols(const std::vector<TensorPtr> &Parts);

/// Copy-attention scatter: Out[t, SrcIds[j]] += A[t, j]. Out is T×VocabSize.
TensorPtr copyScatter(const TensorPtr &A, const std::vector<int> &SrcIds,
                      int VocabSize);

/// Sparse row mixture: Out[i] = mean over Lists[i] of E's rows (Out has
/// |Lists| rows). Rows with empty lists are zero. Used for piece-composed
/// token embeddings (the BPE-like compositionality of the vocabulary).
TensorPtr sparseMix(const TensorPtr &E,
                    const std::vector<std::vector<int>> &Lists);

/// Mean cross-entropy of row-logits vs target ids; result is 1×1.
/// Backward seeds softmax-minus-onehot into the logits.
TensorPtr crossEntropy(const TensorPtr &Logits,
                       const std::vector<int> &Targets);

/// Runs reverse-mode accumulation from \p Root (seeds dRoot = 1). The
/// traversal keeps its visited set on the stack, so tapes that share leaf
/// tensors (parameters under a GradSink) can run backward() from different
/// threads at once.
void backward(const TensorPtr &Root);

/// RAII scope that disables tape construction on the current thread: ops
/// still compute identical values but record no parents and allocate no
/// backward closures, so intermediates are freed as soon as they go out of
/// scope. Inference entry points (CodeBE::generate) hold one of these;
/// nestable; thread-local, so generation workers never affect training.
class NoGradGuard {
public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard &) = delete;
  NoGradGuard &operator=(const NoGradGuard &) = delete;

  /// True while any NoGradGuard is alive on this thread.
  static bool active();
};

namespace detail {

/// Register-blocked GEMM kernels behind matmul/matmulNT (forward and
/// backward). Each kernel keeps every output element's accumulation chain
/// in ascending inner-dimension order, so results are bit-identical to the
/// naive triple loops — blocking only adds independent accumulator chains
/// (ILP) and streams operands through cache in larger units. Exposed here
/// so the microbenchmarks can measure them directly.

/// C += A·B (A: M×K, B: K×N, C: M×N). Zero entries of A are skipped like
/// the historical scalar kernel (attention rows are sparse after masking).
void gemmAccum(const float *A, const float *B, float *C, int M, int K,
               int N);

/// C = A·Bᵀ (A: M×K, B: N×K, C: M×N), with a packed B-panel fast path
/// when M is large enough to amortize the packing.
void gemmNT(const float *A, const float *B, float *C, int M, int K, int N);

/// C += A·Bᵀ — the dA = dO·B step of matmulNT/matmul backward.
void gemmNTAccum(const float *A, const float *B, float *C, int M, int K,
                 int N);

/// C += Aᵀ·G (A: M×K, G: M×N, C: K×N) — the dB = Aᵀ·dO step of matmul
/// backward, preserving the skip on zero A entries.
void gemmTNAccum(const float *A, const float *G, float *C, int M, int K,
                 int N);

// ---- Quantized (int8) inference route ----
//
// Symmetric per-row int8 quantization with int32 accumulation and fp32
// dequantization. The integer dot products are exact (no rounding inside
// the accumulation chain), so a quantized GEMM is bit-deterministic at any
// thread count by construction — the only float operations are one
// round-to-nearest per input element at quantization time and one
// two-factor scale multiply per output element, both fixed-order.

/// Quantizes \p Rows rows of K floats each: Q[i][k] =
/// round(A[i][k] / Scale[i]) with Scale[i] = max|A[i][·]| / 127 (an
/// all-zero row gets Scale 0 and all-zero codes). Round-to-nearest,
/// ties away from zero.
void quantizeRowsQ8(const float *A, int Rows, int K, int8_t *Q,
                    float *Scale);

/// C = dequant(QA · QBᵀ): C[i][j] = (Σ_k QA[i][k]·QB[j][k]) · ScaleA[i] ·
/// ScaleB[j]. QA is M×K int8 with per-row scales; QB is N×K int8 with
/// per-row scales (the per-column scales of the logical Bᵀ). The int32
/// accumulator is exact for K ≤ 2^16 at int8 range.
void gemmNTQ8(const int8_t *QA, const float *ScaleA, const int8_t *QB,
              const float *ScaleB, float *C, int M, int K, int N);

} // namespace detail

/// Adam optimizer over a fixed parameter list.
class AdamOptimizer {
public:
  AdamOptimizer(std::vector<TensorPtr> Params, float LearningRate);

  /// Applies one update from accumulated gradients, then clears them.
  void step();

  /// Clears gradients without updating.
  void zeroGrad();

  void setLearningRate(float LR) { LearningRate = LR; }

private:
  std::vector<TensorPtr> Params;
  std::vector<std::vector<float>> M, V;
  float LearningRate;
  float Beta1 = 0.9f, Beta2 = 0.999f, Eps = 1e-8f;
  long StepCount = 0;
};

} // namespace vega

#endif // VEGA_MODEL_AUTOGRAD_H
