file(REMOVE_RECURSE
  "CMakeFiles/vega_minicc.dir/Benchmarks.cpp.o"
  "CMakeFiles/vega_minicc.dir/Benchmarks.cpp.o.d"
  "CMakeFiles/vega_minicc.dir/Compiler.cpp.o"
  "CMakeFiles/vega_minicc.dir/Compiler.cpp.o.d"
  "CMakeFiles/vega_minicc.dir/Hooks.cpp.o"
  "CMakeFiles/vega_minicc.dir/Hooks.cpp.o.d"
  "CMakeFiles/vega_minicc.dir/IR.cpp.o"
  "CMakeFiles/vega_minicc.dir/IR.cpp.o.d"
  "libvega_minicc.a"
  "libvega_minicc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vega_minicc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
