//===- support/TextTable.h - Aligned console tables --------------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small column-aligned table printer used by the benchmark harness to
/// render the paper's tables and figure series as text.
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_SUPPORT_TEXTTABLE_H
#define VEGA_SUPPORT_TEXTTABLE_H

#include <string>
#include <vector>

namespace vega {

/// Collects rows of cells and renders them with aligned columns.
class TextTable {
public:
  /// Sets the header row.
  void setHeader(std::vector<std::string> Cells);

  /// Appends a data row.
  void addRow(std::vector<std::string> Cells);

  /// Appends a horizontal separator row.
  void addSeparator();

  /// Renders the table. Numeric-looking cells are right-aligned.
  std::string render() const;

  /// Formats a double with \p Decimals fraction digits.
  static std::string formatDouble(double Value, int Decimals = 2);

  /// Formats a ratio as a percentage string with one decimal ("71.5%").
  static std::string formatPercent(double Ratio);

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows; // empty row == separator
};

} // namespace vega

#endif // VEGA_SUPPORT_TEXTTABLE_H
