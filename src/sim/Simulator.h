//===- sim/Simulator.h - Cycle-cost simulator --------------------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-target cycle simulator (the stand-in for QEMU / PULP RTL / XSIM
/// in §4.1.5). It prices a compiled MachineProgram: per-instruction cycles
/// from the target's schedule, load-use and branch stalls, hardware-loop
/// savings, and call overhead.
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_SIM_SIMULATOR_H
#define VEGA_SIM_SIMULATOR_H

#include "minicc/Compiler.h"

namespace vega {

/// Simulation outcome for one program.
struct SimResult {
  int64_t Cycles = 0;
  int64_t Instructions = 0;
  int64_t CodeBytes = 0;
  int64_t Stalls = 0;
};

/// Prices \p Program on the target described by \p Traits.
SimResult simulate(const MachineProgram &Program, const TargetTraits &Traits);

/// Convenience: compiles \p Module at \p Level and simulates it.
SimResult compileAndRun(const IRModule &Module, const TargetTraits &Traits,
                        const BackendHooks &Hooks, OptLevel Level);

/// Speedup of -O3 over -O0 (the Fig. 10 metric) for one module.
double speedupO3(const IRModule &Module, const TargetTraits &Traits,
                 const BackendHooks &Hooks);

} // namespace vega

#endif // VEGA_SIM_SIMULATOR_H
