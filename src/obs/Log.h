//===- obs/Log.h - Structured NDJSON logging ---------------------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide structured logger emitting one JSON object per line
/// (NDJSON) to stderr — machine-parseable request completion lines, slow-
/// request flight-recorder dumps, daemon lifecycle notes. Levels follow the
/// usual severity ladder; the initial level comes from the VEGA_LOG
/// environment variable (debug|info|warn|error|off) and tools override it
/// with --log-level. Disabled (the default, Off) costs one atomic load per
/// call site.
///
/// Log lines never carry payload data that feeds back into generation, so
/// logging on/off cannot change any generated backend byte.
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_OBS_LOG_H
#define VEGA_OBS_LOG_H

#include "support/Json.h"

#include <atomic>
#include <iosfwd>
#include <mutex>
#include <optional>
#include <string>

namespace vega {
namespace obs {

enum class LogLevel : uint8_t { Debug = 0, Info, Warn, Error, Off };

/// The level's lowercase wire spelling ("debug", ..., "off").
const char *logLevelName(LogLevel Level);

class Logger {
public:
  /// The process logger. First use seeds the level from VEGA_LOG (default
  /// Off).
  static Logger &instance();

  /// Parses a level name; nullopt on anything unrecognized.
  static std::optional<LogLevel> parseLevel(const std::string &Name);

  void setLevel(LogLevel Level) {
    this->Level.store(static_cast<uint8_t>(Level), std::memory_order_relaxed);
  }
  LogLevel level() const {
    return static_cast<LogLevel>(Level.load(std::memory_order_relaxed));
  }
  bool enabled(LogLevel L) const { return L >= level() && level() != LogLevel::Off; }

  /// Emits one NDJSON line: {"ts":<unix seconds>,"level":...,"event":...}
  /// merged with the fields of \p Fields (which must be an object or null).
  /// A no-op below the current level.
  void log(LogLevel L, const std::string &Event, const Json &Fields = Json());

  /// Redirects output (tests). nullptr restores the default (stderr).
  void setSink(std::ostream *NewSink);

private:
  Logger();

  std::atomic<uint8_t> Level;
  std::mutex Mu;
  std::ostream *Sink = nullptr; ///< guarded by Mu; nullptr → stderr
};

} // namespace obs
} // namespace vega

#endif // VEGA_OBS_LOG_H
