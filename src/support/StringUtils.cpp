//===- support/StringUtils.cpp - String helpers ---------------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

#include <algorithm>
#include <cctype>
#include <map>

using namespace vega;

std::vector<std::string> vega::splitString(std::string_view Text,
                                           char Separator, bool KeepEmpty) {
  std::vector<std::string> Pieces;
  size_t Start = 0;
  while (Start <= Text.size()) {
    size_t End = Text.find(Separator, Start);
    if (End == std::string_view::npos)
      End = Text.size();
    std::string_view Piece = Text.substr(Start, End - Start);
    if (KeepEmpty || !Piece.empty())
      Pieces.emplace_back(Piece);
    if (End == Text.size())
      break;
    Start = End + 1;
  }
  return Pieces;
}

std::vector<std::string> vega::splitLines(std::string_view Text) {
  std::vector<std::string> Lines = splitString(Text, '\n');
  for (std::string &Line : Lines)
    if (!Line.empty() && Line.back() == '\r')
      Line.pop_back();
  // splitString keeps a trailing empty piece for text ending in '\n'; drop it
  // so that "a\nb\n" yields exactly {"a", "b"}.
  if (!Lines.empty() && Lines.back().empty())
    Lines.pop_back();
  return Lines;
}

std::string vega::trimString(std::string_view Text) {
  size_t Begin = 0, End = Text.size();
  while (Begin < End && std::isspace(static_cast<unsigned char>(Text[Begin])))
    ++Begin;
  while (End > Begin &&
         std::isspace(static_cast<unsigned char>(Text[End - 1])))
    --End;
  return std::string(Text.substr(Begin, End - Begin));
}

std::string vega::joinStrings(const std::vector<std::string> &Pieces,
                              std::string_view Separator) {
  std::string Result;
  for (size_t I = 0, E = Pieces.size(); I != E; ++I) {
    if (I != 0)
      Result += Separator;
    Result += Pieces[I];
  }
  return Result;
}

std::string vega::lowerString(std::string_view Text) {
  std::string Result(Text);
  std::transform(Result.begin(), Result.end(), Result.begin(), [](char C) {
    return static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
  });
  return Result;
}

bool vega::containsIgnoreCase(std::string_view Haystack,
                              std::string_view Needle) {
  if (Needle.empty())
    return true;
  if (Needle.size() > Haystack.size())
    return false;
  std::string H = lowerString(Haystack), N = lowerString(Needle);
  return H.find(N) != std::string::npos;
}

bool vega::partiallyMatches(std::string_view A, std::string_view B) {
  if (A.size() < 3 || B.size() < 3)
    return false;
  return containsIgnoreCase(A, B) || containsIgnoreCase(B, A);
}

std::vector<std::string>
vega::splitIdentifierWords(std::string_view Identifier) {
  std::vector<std::string> Words;
  std::string Current;
  auto Flush = [&] {
    if (!Current.empty()) {
      Words.push_back(lowerString(Current));
      Current.clear();
    }
  };
  for (size_t I = 0, E = Identifier.size(); I != E; ++I) {
    char C = Identifier[I];
    if (C == '_' || C == ':' || C == '.') {
      Flush();
      continue;
    }
    bool IsUpper = std::isupper(static_cast<unsigned char>(C));
    bool PrevLower =
        !Current.empty() &&
        std::islower(static_cast<unsigned char>(Current.back()));
    bool NextLower = I + 1 < E &&
                     std::islower(static_cast<unsigned char>(Identifier[I + 1]));
    // Word break on lower→Upper ("IsPCRel" → is|PCRel) and on the last upper
    // of an acronym run ("PCRel" → PC|Rel).
    if (IsUpper && (PrevLower || (NextLower && !Current.empty() &&
                                  std::isupper(static_cast<unsigned char>(
                                      Current.back())))))
      Flush();
    Current += C;
  }
  Flush();
  return Words;
}

double vega::identifierSimilarity(std::string_view A, std::string_view B) {
  std::vector<std::string> WA = splitIdentifierWords(A);
  std::vector<std::string> WB = splitIdentifierWords(B);
  if (WA.empty() || WB.empty())
    return 0.0;
  std::map<std::string, int> CountA;
  for (const std::string &W : WA)
    ++CountA[W];
  int Common = 0;
  for (const std::string &W : WB) {
    auto It = CountA.find(W);
    if (It != CountA.end() && It->second > 0) {
      --It->second;
      ++Common;
    }
  }
  return 2.0 * Common / static_cast<double>(WA.size() + WB.size());
}

bool vega::sharesSignificantStem(std::string_view A, std::string_view B,
                                 size_t MinStem) {
  auto Squash = [](std::string_view Text) {
    std::string Out;
    for (char C : Text)
      if (std::isalnum(static_cast<unsigned char>(C)))
        Out += static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
    return Out;
  };
  std::string SA = Squash(A), SB = Squash(B);
  if (SA.size() < MinStem || SB.size() < MinStem)
    return SA == SB && !SA.empty();
  // Longest common substring via simple DP over the shorter string.
  if (SA.size() > SB.size())
    std::swap(SA, SB);
  std::vector<size_t> Prev(SB.size() + 1, 0), Cur(SB.size() + 1, 0);
  for (size_t I = 1; I <= SA.size(); ++I) {
    for (size_t J = 1; J <= SB.size(); ++J) {
      Cur[J] = SA[I - 1] == SB[J - 1] ? Prev[J - 1] + 1 : 0;
      if (Cur[J] >= MinStem)
        return true;
    }
    std::swap(Prev, Cur);
  }
  return false;
}

std::string vega::replaceAll(std::string Text, std::string_view From,
                             std::string_view To) {
  if (From.empty())
    return Text;
  size_t Pos = 0;
  while ((Pos = Text.find(From, Pos)) != std::string::npos) {
    Text.replace(Pos, From.size(), To);
    Pos += To.size();
  }
  return Text;
}
