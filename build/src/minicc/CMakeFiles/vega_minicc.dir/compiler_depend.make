# Empty compiler generated dependencies file for vega_minicc.
# This may be replaced when dependencies are built.
