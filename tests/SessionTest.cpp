//===- tests/SessionTest.cpp - .vega checkpoint + VegaSession tests -----------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// End-to-end coverage of the session API: a one-epoch session is built once,
/// then every test exercises save/restore against it — byte-identical
/// generation for all three evaluation targets, trace-level proof that a
/// restored session never re-enters Stage 1/2, and rejection of truncated,
/// corrupted, version-bumped, and fingerprint-mismatched artifacts.
///
//===----------------------------------------------------------------------===//

#include "core/Checkpoint.h"
#include "core/VegaSession.h"
#include "obs/Trace.h"
#include "serve/Protocol.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>

using namespace vega;

namespace {

/// The expensive fixture: one-epoch session over the standard corpus, built
/// once for the whole binary.
VegaSession &session() {
  static std::unique_ptr<VegaSession> S = [] {
    VegaOptions Opts;
    Opts.Model.Epochs = 1;
    Opts.Verbose = false;
    StatusOr<std::unique_ptr<VegaSession>> Built = VegaSession::build(Opts);
    if (!Built.isOk()) {
      std::fprintf(stderr, "session build failed: %s\n",
                   Built.status().toString().c_str());
      std::abort();
    }
    return std::move(*Built);
  }();
  return *S;
}

/// The fixture session serialized to an artifact blob, once.
const std::string &artifactBlob() {
  static std::string Blob = [] {
    StatusOr<std::string> B = SessionCheckpoint::serialize(session().system());
    if (!B.isOk()) {
      std::fprintf(stderr, "serialize failed: %s\n",
                   B.status().toString().c_str());
      std::abort();
    }
    return std::move(*B);
  }();
  return Blob;
}

/// Deterministic text form of a generated backend (no timing fields).
std::string render(const GeneratedBackend &GB) {
  return serve::backendToJson(GB).dump();
}

/// Artifact layout constants for surgical corruption: 16-byte file header,
/// then per section a 4-byte tag + u64 length + u64 checksum + payload.
constexpr size_t HeaderBytes = 16;
constexpr size_t MetaChecksumOffset = HeaderBytes + 4 + 8;
constexpr size_t MetaPayloadOffset = MetaChecksumOffset + 8;

uint64_t fnvOver(const std::string &Bytes, size_t Off, size_t Len) {
  uint64_t H = 1469598103934665603ULL;
  for (size_t I = Off; I < Off + Len; ++I) {
    H ^= static_cast<unsigned char>(Bytes[I]);
    H *= 1099511628211ULL;
  }
  return H;
}

} // namespace

TEST(SessionCheckpoint, RoundTripGeneratesIdenticalBackends) {
  StatusOr<std::unique_ptr<VegaSystem>> Restored =
      SessionCheckpoint::restore(VegaSession::standardCorpus(), artifactBlob());
  ASSERT_TRUE(Restored.isOk()) << Restored.status().toString();
  for (const std::string &Target : {"RISCV", "RI5CY", "XCORE"}) {
    GeneratedBackend Cold = session().system().generateBackend(Target);
    GeneratedBackend Warm = (*Restored)->generateBackend(Target);
    EXPECT_EQ(render(Cold), render(Warm)) << "target " << Target;
  }
}

TEST(SessionCheckpoint, SaveLoadFileRoundTripViaVegaSession) {
  const std::string Path = "session_test_roundtrip.vega";
  ASSERT_TRUE(session().save(Path).isOk());
  StatusOr<std::unique_ptr<VegaSession>> Loaded = VegaSession::load(Path);
  ASSERT_TRUE(Loaded.isOk()) << Loaded.status().toString();
  EXPECT_TRUE((*Loaded)->loadedFromCheckpoint());
  EXPECT_FALSE(session().loadedFromCheckpoint());

  StatusOr<GeneratedBackend> Warm = (*Loaded)->generate("RISCV");
  ASSERT_TRUE(Warm.isOk());
  GeneratedBackend Cold = session().system().generateBackend("RISCV");
  EXPECT_EQ(render(Cold), render(*Warm));
  std::remove(Path.c_str());
}

TEST(SessionCheckpoint, RestoredSessionEmitsNoTrainingSpans) {
  StatusOr<std::unique_ptr<VegaSystem>> Restored =
      SessionCheckpoint::restore(VegaSession::standardCorpus(), artifactBlob());
  ASSERT_TRUE(Restored.isOk());

  obs::TraceRecorder &Rec = obs::TraceRecorder::instance();
  Rec.clear();
  Rec.setEnabled(true);
  (*Restored)->generateBackend("RISCV");
  Rec.setEnabled(false);
  bool SawStage3 = false;
  for (const obs::TraceEvent &E : Rec.snapshot()) {
    EXPECT_TRUE(E.Name.rfind("stage1.", 0) != 0 &&
                E.Name.rfind("stage2.", 0) != 0)
        << "restored session ran " << E.Name;
    if (E.Name == "stage3.generate_backend")
      SawStage3 = true;
  }
  Rec.clear();
  EXPECT_TRUE(SawStage3);
}

TEST(SessionCheckpoint, BatchedGenerateMatchesStandaloneCalls) {
  StatusOr<std::unique_ptr<VegaSession>> Loaded = [] {
    const std::string Path = "session_test_batch.vega";
    session().save(Path);
    auto L = VegaSession::load(Path);
    std::remove(Path.c_str());
    return L;
  }();
  ASSERT_TRUE(Loaded.isOk());
  StatusOr<std::vector<GeneratedBackend>> Batch =
      (*Loaded)->generateMany({"RISCV", "RI5CY", "XCORE"});
  ASSERT_TRUE(Batch.isOk());
  ASSERT_EQ(Batch->size(), 3u);
  for (size_t I = 0; I < 3; ++I) {
    StatusOr<GeneratedBackend> Alone =
        (*Loaded)->generate(Batch->at(I).TargetName);
    ASSERT_TRUE(Alone.isOk());
    EXPECT_EQ(render(Batch->at(I)), render(*Alone));
  }
}

TEST(SessionCheckpoint, GenerateRejectsUnknownAndEmptyTargets) {
  StatusOr<GeneratedBackend> Unknown = session().generate("Z80");
  ASSERT_FALSE(Unknown.isOk());
  EXPECT_EQ(Unknown.status().code(), StatusCode::NotFound);
  StatusOr<std::vector<GeneratedBackend>> Empty = session().generateMany({});
  ASSERT_FALSE(Empty.isOk());
  EXPECT_EQ(Empty.status().code(), StatusCode::InvalidArgument);
}

TEST(SessionCheckpoint, RejectsTruncatedArtifact) {
  std::string Cut = artifactBlob().substr(0, artifactBlob().size() / 2);
  StatusOr<std::unique_ptr<VegaSystem>> R =
      SessionCheckpoint::restore(VegaSession::standardCorpus(), Cut);
  ASSERT_FALSE(R.isOk());
  EXPECT_EQ(R.status().code(), StatusCode::DataLoss);
}

TEST(SessionCheckpoint, RejectsCorruptedPayloadByte) {
  std::string Bad = artifactBlob();
  Bad[Bad.size() - 100] ^= 0x5A; // deep inside the WGTS payload
  StatusOr<std::unique_ptr<VegaSystem>> R =
      SessionCheckpoint::restore(VegaSession::standardCorpus(), Bad);
  ASSERT_FALSE(R.isOk());
  EXPECT_EQ(R.status().code(), StatusCode::DataLoss);
  EXPECT_NE(R.status().message().find("checksum"), std::string::npos);
}

TEST(SessionCheckpoint, RejectsBadMagic) {
  std::string Bad = artifactBlob();
  Bad[0] = 'X';
  StatusOr<std::unique_ptr<VegaSystem>> R =
      SessionCheckpoint::restore(VegaSession::standardCorpus(), Bad);
  ASSERT_FALSE(R.isOk());
  EXPECT_EQ(R.status().code(), StatusCode::DataLoss);
  EXPECT_NE(R.status().message().find("magic"), std::string::npos);
}

TEST(SessionCheckpoint, RejectsFutureFormatVersion) {
  std::string Bad = artifactBlob();
  Bad[8] = 99; // version u32 follows the 8-byte magic
  StatusOr<std::unique_ptr<VegaSystem>> R =
      SessionCheckpoint::restore(VegaSession::standardCorpus(), Bad);
  ASSERT_FALSE(R.isOk());
  EXPECT_EQ(R.status().code(), StatusCode::FailedPrecondition);
  EXPECT_NE(R.status().message().find("version"), std::string::npos);
}

TEST(SessionCheckpoint, RejectsEditedOptionsFingerprint) {
  // Flip a bit of the recorded options fingerprint (first META payload
  // field) and re-patch the section checksum so only the fingerprint check
  // can catch the edit.
  std::string Bad = artifactBlob();
  uint64_t MetaLen = 0;
  std::memcpy(&MetaLen, Bad.data() + HeaderBytes + 4, sizeof(MetaLen));
  Bad[MetaPayloadOffset] ^= 0x01;
  uint64_t Sum = fnvOver(Bad, MetaPayloadOffset, MetaLen);
  std::memcpy(Bad.data() + MetaChecksumOffset, &Sum, sizeof(Sum));

  StatusOr<std::unique_ptr<VegaSystem>> R =
      SessionCheckpoint::restore(VegaSession::standardCorpus(), Bad);
  ASSERT_FALSE(R.isOk());
  EXPECT_EQ(R.status().code(), StatusCode::DataLoss);
  EXPECT_NE(R.status().message().find("fingerprint"), std::string::npos);
}

TEST(SessionCheckpoint, InspectSummarizesWithoutRestoring) {
  const std::string Path = "session_test_inspect.vega";
  ASSERT_TRUE(session().save(Path).isOk());
  StatusOr<SessionCheckpoint::Info> Info = SessionCheckpoint::inspect(Path);
  std::remove(Path.c_str());
  ASSERT_TRUE(Info.isOk()) << Info.status().toString();
  EXPECT_EQ(Info->Version, SessionCheckpoint::FormatVersion);
  EXPECT_EQ(Info->Options.Model.Epochs, 1);
  EXPECT_GT(Info->TemplateCount, 0u);
  EXPECT_GT(Info->VocabSize, 0u);
  ASSERT_EQ(Info->Sections.size(), 5u);
  EXPECT_EQ(Info->Sections[0].first, "META");
  EXPECT_EQ(Info->Sections[4].first, "WGTS");
}

TEST(SessionCheckpoint, LoadReportsMissingFileAsUnavailable) {
  StatusOr<std::unique_ptr<VegaSession>> R =
      VegaSession::load("no_such_artifact.vega");
  ASSERT_FALSE(R.isOk());
  EXPECT_EQ(R.status().code(), StatusCode::Unavailable);
}

TEST(SessionCheckpoint, ArtifactBytesIgnorePrecisionAndSharingKnobs) {
  // --precision and --prefix-sharing are runtime knobs excluded from the
  // options fingerprint. That exclusion is only sound if the artifact
  // genuinely never records them: serializing the same session under
  // every knob combination must produce byte-identical blobs (weights are
  // always stored fp32; the int8 table is a derived cache).
  const std::string &Ref = artifactBlob();
  session().setPrecision(Precision::INT8);
  session().setPrefixSharing(false);
  StatusOr<std::string> Alt = SessionCheckpoint::serialize(session().system());
  session().setPrecision(Precision::FP32);
  session().setPrefixSharing(true);
  ASSERT_TRUE(Alt.isOk()) << Alt.status().toString();
  EXPECT_TRUE(Ref == *Alt) << "artifact bytes depend on a runtime knob";

  // A reloaded artifact comes back at the defaults, whatever the writer's
  // knobs were at save time.
  const std::string Path = "session_test_knobs.vega";
  ASSERT_TRUE(session().save(Path).isOk());
  StatusOr<std::unique_ptr<VegaSession>> Loaded = VegaSession::load(Path);
  std::remove(Path.c_str());
  ASSERT_TRUE(Loaded.isOk());
  EXPECT_EQ((*Loaded)->precision(), Precision::FP32);
  EXPECT_TRUE((*Loaded)->prefixSharing());
}

TEST(SessionCheckpoint, HandleApiStepLoopMatchesGenerate) {
  // The redesigned Stage-3 entry point: beginGenerate/step/finish driven
  // serially must produce exactly the bytes generate() produces, the step
  // count must equal the unit count (one function template per unit), and
  // two interleaved handles must not perturb each other — the scheduler's
  // determinism contract at the session layer.
  for (const std::string Target : {"RISCV", "RI5CY", "XCORE"}) {
    StatusOr<GeneratedBackend> Solo = session().generate(Target);
    ASSERT_TRUE(Solo.isOk()) << Target;

    StatusOr<VegaSession::GenerationHandle> Handle =
        session().beginGenerate(Target);
    ASSERT_TRUE(Handle.isOk()) << Target;
    EXPECT_EQ(Handle->target(), Target);
    const size_t Units = Handle->unitCount();
    ASSERT_GT(Units, 0u) << Target;
    size_t Steps = 0;
    while (session().step(*Handle))
      ++Steps;
    EXPECT_EQ(Steps, Units) << Target;
    EXPECT_TRUE(Handle->complete()) << Target;
    StatusOr<GeneratedBackend> Stepped =
        session().finish(std::move(Handle.value()));
    ASSERT_TRUE(Stepped.isOk()) << Target;
    EXPECT_EQ(render(*Stepped), render(*Solo)) << Target;

    // finish() on a fresh handle is exactly generate().
    StatusOr<VegaSession::GenerationHandle> Fresh =
        session().beginGenerate(Target);
    ASSERT_TRUE(Fresh.isOk()) << Target;
    StatusOr<GeneratedBackend> Folded =
        session().finish(std::move(Fresh.value()));
    ASSERT_TRUE(Folded.isOk()) << Target;
    EXPECT_EQ(render(*Folded), render(*Solo)) << Target;
  }

  // Interleave two handles step by step; both must match their solo runs.
  StatusOr<VegaSession::GenerationHandle> A = session().beginGenerate("RISCV");
  StatusOr<VegaSession::GenerationHandle> B = session().beginGenerate("XCORE");
  ASSERT_TRUE(A.isOk() && B.isOk());
  bool MoreA = true, MoreB = true;
  while (MoreA || MoreB) {
    if (MoreA)
      MoreA = session().step(*A);
    if (MoreB)
      MoreB = session().step(*B);
  }
  StatusOr<GeneratedBackend> OutA = session().finish(std::move(A.value()));
  StatusOr<GeneratedBackend> OutB = session().finish(std::move(B.value()));
  ASSERT_TRUE(OutA.isOk() && OutB.isOk());
  StatusOr<GeneratedBackend> SoloA = session().generate("RISCV");
  StatusOr<GeneratedBackend> SoloB = session().generate("XCORE");
  ASSERT_TRUE(SoloA.isOk() && SoloB.isOk());
  EXPECT_EQ(render(*OutA), render(*SoloA));
  EXPECT_EQ(render(*OutB), render(*SoloB));

  EXPECT_EQ(session().beginGenerate("Z80").status().code(),
            StatusCode::NotFound);
}
