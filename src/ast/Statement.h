//===- ast/Statement.h - Statement-level AST ---------------------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The statement-level program representation the whole pipeline works on.
/// Following the paper (§3.1), a *statement* is a source line terminated by
/// one of {';', '{', '}', ','}; block-opening statements own the statements
/// of their block as children, so a function body forms a statement tree.
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_AST_STATEMENT_H
#define VEGA_AST_STATEMENT_H

#include "lexer/Token.h"

#include <memory>
#include <string>
#include <vector>

namespace vega {

/// Syntactic category of a statement, used by alignment, normalization, and
/// the interpreter.
enum class StmtKind : uint8_t {
  FunctionDef, ///< "unsigned X::getRelocType(...) {"
  Decl,        ///< "unsigned Kind = Fixup.getTargetKind();"
  Assign,      ///< "Kind = 3;"
  If,          ///< "if (IsPCRel) {"
  ElseIf,      ///< "} else if (...) {" (normalized away where possible)
  Else,        ///< "} else {"
  Switch,      ///< "switch (Kind) {"
  Case,        ///< "case ARM::fixup_arm_movt_hi16:"
  Default,     ///< "default:"
  Return,      ///< "return ELF::R_ARM_MOVT_ABS;"
  Break,       ///< "break;"
  Call,        ///< "report_fatal_error(...);"
  BlockEnd,    ///< "}" closing a block (kept for faithful rendering)
  Other,       ///< anything else
};

/// Returns a printable name for \p Kind.
const char *stmtKindName(StmtKind Kind);

/// One statement plus the statements of the block it opens (if any).
struct Statement {
  StmtKind Kind = StmtKind::Other;
  /// The statement's own tokens, including any trailing '{', ';', or ':'.
  std::vector<Token> Tokens;
  /// Statements inside the block this statement opens; for Case/Default, the
  /// statements until the next label or the end of the switch body.
  std::vector<std::unique_ptr<Statement>> Children;

  Statement() = default;
  Statement(StmtKind Kind, std::vector<Token> Tokens)
      : Kind(Kind), Tokens(std::move(Tokens)) {}

  /// Deep copy.
  std::unique_ptr<Statement> clone() const;

  /// Single-line rendering of just this statement's tokens.
  std::string text() const;

  /// True when this statement opens a block ('{' at the end) or is a label.
  bool opensBlock() const;

  /// Number of statements in this subtree (including this one).
  size_t treeSize() const;
};

/// A parsed function: the definition statement plus its body tree.
struct FunctionAST {
  std::string Name;        ///< e.g. "getRelocType"
  std::string Qualifier;   ///< e.g. "ARMELFObjectWriter" (may be empty)
  Statement Definition;    ///< the FunctionDef statement
  std::vector<std::unique_ptr<Statement>> Body;

  /// Deep copy.
  FunctionAST clone() const;

  /// Renders the function back to source text with 2-space indentation.
  std::string render() const;

  /// Pre-order list of all statements (definition first), with depths.
  struct FlatStatement {
    const Statement *Stmt;
    int Depth;
  };
  std::vector<FlatStatement> flatten() const;

  /// Pre-order list of mutable statement pointers (definition first).
  std::vector<Statement *> flattenMutable();

  /// Total number of statements (definition + body subtrees).
  size_t size() const;
};

/// Renders a statement subtree to source lines at \p Depth, appending to
/// \p Out. Exposed for template rendering.
void renderStatement(const Statement &Stmt, int Depth, std::string &Out);

/// Renders a statement sequence, joining else clauses onto the closing brace
/// of the preceding block ("} else {").
void renderStatementList(const std::vector<std::unique_ptr<Statement>> &Stmts,
                         int Depth, std::string &Out);

/// Renders a sequence of tokens with canonical single spacing (no space
/// before ';', ',', ')', '::' joins, etc.). This is the single source of
/// truth for statement spelling everywhere in the pipeline.
std::string renderTokens(const std::vector<Token> &Tokens);

} // namespace vega

#endif // VEGA_AST_STATEMENT_H
