file(REMOVE_RECURSE
  "CMakeFiles/templatize_test.dir/TemplatizeTest.cpp.o"
  "CMakeFiles/templatize_test.dir/TemplatizeTest.cpp.o.d"
  "templatize_test"
  "templatize_test.pdb"
  "templatize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/templatize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
