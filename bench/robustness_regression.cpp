//===- bench/robustness_regression.cpp - §4.3 robustness ------------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// §4.3 robustness: replace every inaccurate generated function with its
/// base-compiler (golden) counterpart and rerun the full regression suite.
/// Paper anchor: all three repaired compilers pass all regression tests.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "eval/EvalSpecs.h"
#include "interp/Interpreter.h"
#include "support/TextTable.h"

#include <cstdio>

using namespace vega;

int main() {
  TextTable Table;
  Table.setHeader({"Target", "Regression cases", "Passed", "Kept generated",
                   "Replaced by base"});
  for (const char *Target : {"RISCV", "RI5CY", "XCORE"}) {
    const Backend *Golden = bench::corpus().backend(Target);
    const TargetTraits *Traits = bench::corpus().targets().find(Target);
    const BackendEval &Eval = bench::evaluation(Target);
    const GeneratedBackend &GB = bench::generated(Target);

    size_t Kept = 0, Replaced = 0, Cases = 0, Passed = 0;
    Interpreter Interp;
    for (const auto &GoldenFn : Golden->Functions) {
      const GeneratedFunction *Gen = GB.find(GoldenFn->InterfaceName);
      bool Accurate = false;
      for (const FunctionEval &FE : Eval.Functions)
        if (FE.InterfaceName == GoldenFn->InterfaceName)
          Accurate = FE.Accurate;
      const FunctionAST *Repaired;
      if (Accurate && Gen && Gen->Emitted) {
        Repaired = &Gen->AST;
        ++Kept;
      } else {
        Repaired = &GoldenFn->AST;
        ++Replaced;
      }
      for (const Environment &Env :
           buildTestEnvironments(GoldenFn->InterfaceName, *Traits)) {
        ++Cases;
        ExecResult Expected = Interp.run(GoldenFn->AST, Env);
        ExecResult Actual = Interp.run(*Repaired, Env);
        if (Expected.St == ExecResult::Status::Error ||
            Expected.equivalent(Actual))
          ++Passed;
      }
    }
    Table.addRow({Target, std::to_string(Cases), std::to_string(Passed),
                  std::to_string(Kept), std::to_string(Replaced)});
  }
  std::printf("== §4.3: repaired-compiler robustness ==\n%s\n",
              Table.render().c_str());
  std::printf("paper: all regression tests pass after repair — shape to "
              "match: Passed == Regression cases for every target\n");
  return 0;
}
