//===- bench/microbench.cpp - google-benchmark microbenchmarks ------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// Microbenchmarks for the hot kernels behind the figures: lexing, GumTree
/// matching, templatization, Algorithm-1 harvesting, interpretation, the
/// inference GEMM kernels, and CodeBE decoding. These are throughput
/// numbers, not paper results.
///
/// `microbench --inference-report=<file>.json` additionally measures the
/// inference stack end to end (GEMM GFLOP/s, decode tokens/sec with and
/// without the KV cache, generateBackend wall time at --jobs=1/4 against
/// the serial full-recompute baseline) and writes the numbers as JSON.
///
/// `microbench --training-report=<file>.json` measures fine-tuning
/// throughput (Trainer examples/sec at --train-jobs=1/4 on a synthetic
/// copy task) plus the jobs-determinism cross-check, as JSON.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "corpus/Corpus.h"
#include "eval/EvalSpecs.h"
#include "feature/FeatureSelector.h"
#include "gumtree/Matcher.h"
#include "interp/Interpreter.h"
#include "lexer/Lexer.h"
#include "minicc/Benchmarks.h"
#include "model/Autograd.h"
#include "model/Trainer.h"
#include "sim/Simulator.h"
#include "support/ArgParse.h"
#include "support/BinaryIO.h"
#include "support/RNG.h"
#include "templatize/FunctionTemplate.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <fstream>

using namespace vega;

namespace {

const BackendCorpus &corpus() {
  static BackendCorpus Corpus =
      BackendCorpus::build(TargetDatabase::standard());
  return Corpus;
}

const BackendFunction &armReloc() {
  return *corpus().backend("ARM")->find("getRelocType");
}

void BM_LexGetRelocType(benchmark::State &State) {
  const std::string &Src = armReloc().Source;
  for (auto _ : State)
    benchmark::DoNotOptimize(Lexer::tokenize(Src));
  State.SetBytesProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Src.size()));
}
BENCHMARK(BM_LexGetRelocType);

void BM_ParseGetRelocType(benchmark::State &State) {
  const std::string &Src = armReloc().Source;
  for (auto _ : State)
    benchmark::DoNotOptimize(preprocessFunctionSource(Src));
}
BENCHMARK(BM_ParseGetRelocType);

void BM_GumTreeMatch(benchmark::State &State) {
  const FunctionAST &A = armReloc().AST;
  const FunctionAST &B = corpus().backend("Mips")->find("getRelocType")->AST;
  for (auto _ : State)
    benchmark::DoNotOptimize(matchFunctions(A, B));
}
BENCHMARK(BM_GumTreeMatch);

void BM_TemplatizeRelocGroup(benchmark::State &State) {
  static std::vector<FunctionGroup> Groups = corpus().trainingGroups();
  const FunctionGroup *Reloc = nullptr;
  for (const FunctionGroup &G : Groups)
    if (G.InterfaceName == "getRelocType")
      Reloc = &G;
  for (auto _ : State)
    benchmark::DoNotOptimize(buildFunctionTemplate(*Reloc));
}
BENCHMARK(BM_TemplatizeRelocGroup);

void BM_HarvestFixups(benchmark::State &State) {
  static FeatureSelector Selector = [] {
    std::vector<std::string> Names;
    for (const TargetTraits &T : corpus().targets().targets())
      Names.push_back(T.Name);
    return FeatureSelector(corpus().vfs(), Names);
  }();
  for (auto _ : State)
    benchmark::DoNotOptimize(Selector.harvestValues("MCFixupKind", "RISCV"));
}
BENCHMARK(BM_HarvestFixups);

void BM_InterpretGetRelocType(benchmark::State &State) {
  const FunctionAST &Fn = armReloc().AST;
  const TargetTraits *T = corpus().targets().find("ARM");
  std::vector<Environment> Envs = buildTestEnvironments("getRelocType", *T);
  Interpreter Interp;
  size_t I = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(Interp.run(Fn, Envs[I % Envs.size()]));
    ++I;
  }
}
BENCHMARK(BM_InterpretGetRelocType);

void BM_CompileBenchmarkO3(benchmark::State &State) {
  const TargetTraits *T = corpus().targets().find("RISCV");
  BackendHooks Hooks = hooksFromTraits(*T);
  IRModule Module = buildBenchmark("502.gcc_r");
  for (auto _ : State)
    benchmark::DoNotOptimize(
        compileAndRun(Module, *T, Hooks, OptLevel::O3));
}
BENCHMARK(BM_CompileBenchmarkO3);

// ---- Inference kernels --------------------------------------------------

/// GEMM shapes from the decoder hot path: (dst rows × DModel) · (DModel ×
/// FFDim), the largest matmul per decode step at the default config.
constexpr int GemmM = 48, GemmK = 64, GemmN = 192;

std::vector<float> randomMatrix(size_t N, uint64_t Seed) {
  RNG Rng(Seed);
  std::vector<float> M(N);
  for (float &V : M)
    V = static_cast<float>(Rng.nextGaussian());
  return M;
}

/// The pre-blocking inner loop (what matmul's forward used to run), kept as
/// the reference point for the kernel speedup.
void naiveGemm(const float *A, const float *B, float *C, int M, int K,
               int N) {
  for (int I = 0; I < M; ++I)
    for (int P = 0; P < K; ++P) {
      float AV = A[I * K + P];
      if (AV == 0.0f)
        continue;
      for (int J = 0; J < N; ++J)
        C[I * N + J] += AV * B[P * N + J];
    }
}

void BM_GemmNaive(benchmark::State &State) {
  std::vector<float> A = randomMatrix(GemmM * GemmK, 1);
  std::vector<float> B = randomMatrix(GemmK * GemmN, 2);
  std::vector<float> C(GemmM * GemmN, 0.0f);
  for (auto _ : State) {
    naiveGemm(A.data(), B.data(), C.data(), GemmM, GemmK, GemmN);
    benchmark::DoNotOptimize(C.data());
  }
  State.counters["GFLOPS"] = benchmark::Counter(
      2.0 * GemmM * GemmK * GemmN * 1e-9,
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_GemmNaive);

void BM_GemmBlocked(benchmark::State &State) {
  std::vector<float> A = randomMatrix(GemmM * GemmK, 1);
  std::vector<float> B = randomMatrix(GemmK * GemmN, 2);
  std::vector<float> C(GemmM * GemmN, 0.0f);
  for (auto _ : State) {
    detail::gemmAccum(A.data(), B.data(), C.data(), GemmM, GemmK, GemmN);
    benchmark::DoNotOptimize(C.data());
  }
  State.counters["GFLOPS"] = benchmark::Counter(
      2.0 * GemmM * GemmK * GemmN * 1e-9,
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_GemmBlocked);

void BM_GemmNTFp32(benchmark::State &State) {
  std::vector<float> A = randomMatrix(GemmM * GemmK, 1);
  std::vector<float> B = randomMatrix(GemmN * GemmK, 2);
  std::vector<float> C(GemmM * GemmN, 0.0f);
  for (auto _ : State) {
    detail::gemmNT(A.data(), B.data(), C.data(), GemmM, GemmK, GemmN);
    benchmark::DoNotOptimize(C.data());
  }
  State.counters["GFLOPS"] = benchmark::Counter(
      2.0 * GemmM * GemmK * GemmN * 1e-9,
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_GemmNTFp32);

/// The int8 logits route as logitsFor runs it: B (the combined embedding
/// table) is quantized once and cached, A (the decoder rows) is quantized
/// per call, so the measured cost includes the per-step quantization.
void BM_GemmNTInt8(benchmark::State &State) {
  std::vector<float> A = randomMatrix(GemmM * GemmK, 1);
  std::vector<float> B = randomMatrix(GemmN * GemmK, 2);
  std::vector<int8_t> QB(GemmN * GemmK);
  std::vector<float> SB(GemmN);
  detail::quantizeRowsQ8(B.data(), GemmN, GemmK, QB.data(), SB.data());
  std::vector<int8_t> QA(GemmM * GemmK);
  std::vector<float> SA(GemmM);
  std::vector<float> C(GemmM * GemmN, 0.0f);
  for (auto _ : State) {
    detail::quantizeRowsQ8(A.data(), GemmM, GemmK, QA.data(), SA.data());
    detail::gemmNTQ8(QA.data(), SA.data(), QB.data(), SB.data(), C.data(),
                     GemmM, GemmK, GemmN);
    benchmark::DoNotOptimize(C.data());
  }
  State.counters["GFLOPS"] = benchmark::Counter(
      2.0 * GemmM * GemmK * GemmN * 1e-9,
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_GemmNTInt8);

/// A synthetic decode workload: an untrained (but deterministically seeded)
/// CodeBE plus a 40-step decode plan that pins one admissible token per
/// position, so every generate() emits exactly 40 tokens regardless of the
/// random weights.
struct DecodeFixture {
  Vocab V;
  std::unique_ptr<CodeBE> Model;
  std::vector<int> Src;
  CodeBE::DecodePlan Plan;
  int Tokens = 0;

  DecodeFixture() {
    std::vector<int> Words;
    for (int I = 0; I < 40; ++I)
      Words.push_back(V.addToken("tok" + std::to_string(I)));
    CodeBEConfig C;
    C.MaxSrcLen = 16;
    C.MaxDstLen = 48;
    Model = std::make_unique<CodeBE>(V, C);
    Src = {V.clsId(), Words[3], Words[7], Words[11]};
    Plan.Steps.push_back({V.csId(20)});
    for (int I = 0; I < 39; ++I)
      Plan.Steps.push_back({Words[static_cast<size_t>(I)]});
    Tokens = static_cast<int>(Plan.Steps.size());
  }

  static DecodeFixture &instance() {
    static DecodeFixture F;
    return F;
  }
};

void BM_DecodeFullRecompute(benchmark::State &State) {
  DecodeFixture &F = DecodeFixture::instance();
  F.Model->setDecodeMode(CodeBE::DecodeMode::FullRecompute);
  for (auto _ : State)
    benchmark::DoNotOptimize(F.Model->generate(F.Src, nullptr, &F.Plan));
  F.Model->setDecodeMode(CodeBE::DecodeMode::KVCache);
  State.SetItemsProcessed(State.iterations() * F.Tokens);
}
BENCHMARK(BM_DecodeFullRecompute);

void BM_DecodeKVCache(benchmark::State &State) {
  DecodeFixture &F = DecodeFixture::instance();
  F.Model->setDecodeMode(CodeBE::DecodeMode::KVCache);
  // Pre-PR baseline: prefix sharing off, so every pinned step still pays
  // the full vocab-wide logits GEMM.
  F.Model->setPrefixSharing(false);
  for (auto _ : State)
    benchmark::DoNotOptimize(F.Model->generate(F.Src, nullptr, &F.Plan));
  F.Model->setPrefixSharing(true);
  State.SetItemsProcessed(State.iterations() * F.Tokens);
}
BENCHMARK(BM_DecodeKVCache);

void BM_DecodeKVCacheInt8(benchmark::State &State) {
  DecodeFixture &F = DecodeFixture::instance();
  F.Model->setDecodeMode(CodeBE::DecodeMode::KVCache);
  F.Model->setPrefixSharing(false);
  F.Model->setPrecision(Precision::INT8);
  for (auto _ : State)
    benchmark::DoNotOptimize(F.Model->generate(F.Src, nullptr, &F.Plan));
  F.Model->setPrecision(Precision::FP32);
  F.Model->setPrefixSharing(true);
  State.SetItemsProcessed(State.iterations() * F.Tokens);
}
BENCHMARK(BM_DecodeKVCacheInt8);

/// With prefix sharing on, every pinned plan step (this fixture pins one
/// admissible token per position) skips the vocab-wide logits GEMM.
void BM_DecodePrefixShared(benchmark::State &State) {
  DecodeFixture &F = DecodeFixture::instance();
  F.Model->setDecodeMode(CodeBE::DecodeMode::KVCache);
  F.Model->setPrefixSharing(true);
  for (auto _ : State)
    benchmark::DoNotOptimize(F.Model->generate(F.Src, nullptr, &F.Plan));
  State.SetItemsProcessed(State.iterations() * F.Tokens);
}
BENCHMARK(BM_DecodePrefixShared);

/// Group decode of identical candidate sites: the shared KV prefix is
/// computed once and forked copy-on-write per member.
void BM_DecodeGroupShared(benchmark::State &State) {
  DecodeFixture &F = DecodeFixture::instance();
  F.Model->setDecodeMode(CodeBE::DecodeMode::KVCache);
  F.Model->setPrefixSharing(true);
  constexpr int Group = 6;
  std::vector<CodeBE::GroupRequest> Reqs(
      Group, CodeBE::GroupRequest{&F.Src, nullptr, &F.Plan});
  for (auto _ : State)
    benchmark::DoNotOptimize(F.Model->generateGroup(Reqs));
  State.SetItemsProcessed(State.iterations() * F.Tokens * Group);
}
BENCHMARK(BM_DecodeGroupShared);

// ---- Training throughput ------------------------------------------------

/// A synthetic fine-tuning workload: a deterministically seeded copy-task
/// corpus large enough to keep every lane busy. Each measurement trains a
/// fresh same-seed model, so jobs=1 and jobs=4 runs are directly
/// comparable (and, per the Trainer determinism contract, bit-identical).
struct TrainFixture {
  Vocab V;
  CodeBEConfig C;
  std::vector<TrainPair> Data;

  TrainFixture() {
    std::vector<std::string> Words;
    for (int I = 0; I < 12; ++I) {
      Words.push_back("w" + std::to_string(I));
      V.addToken(Words.back());
    }
    C.Epochs = 1;
    C.MaxSrcLen = 8;
    C.MaxDstLen = 6;
    RNG Rng(17);
    for (int I = 0; I < 96; ++I) {
      int A = static_cast<int>(Rng.nextBelow(12));
      int B = static_cast<int>(Rng.nextBelow(12));
      TrainPair P;
      P.Src = {V.clsId(), V.idOf(Words[static_cast<size_t>(A)]),
               V.idOf(Words[static_cast<size_t>(B)])};
      P.Dst = {V.csId(20), V.idOf(Words[static_cast<size_t>(B)]),
               V.idOf(Words[static_cast<size_t>(A)]), V.eosId()};
      Data.push_back(P);
    }
  }

  static TrainFixture &instance() {
    static TrainFixture F;
    return F;
  }

  /// One full train() at \p Jobs on a fresh model. Returns the engine's
  /// own examples/sec figure; \p WeightsOut (when non-null) receives the
  /// trained weights for the determinism cross-check.
  double run(int Jobs, std::string *WeightsOut = nullptr) {
    CodeBE Model(V, C);
    model::TrainOptions Opts = model::TrainOptions::fromConfig(C);
    Opts.Jobs = Jobs;
    model::Trainer Engine(Model, Opts);
    StatusOr<model::TrainResult> Result = Engine.run(Data);
    if (!Result.isOk())
      return 0.0;
    if (WeightsOut)
      *WeightsOut = Model.saveWeights();
    return Result->ExamplesPerSec;
  }
};

void BM_TrainEpoch(benchmark::State &State) {
  TrainFixture &F = TrainFixture::instance();
  const int Jobs = static_cast<int>(State.range(0));
  for (auto _ : State)
    benchmark::DoNotOptimize(F.run(Jobs));
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(F.Data.size()));
}
BENCHMARK(BM_TrainEpoch)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

// ---- --inference-report=<file>.json -------------------------------------

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

/// GFLOP/s of \p Run over at least ~0.2 s of repetitions.
template <typename Fn> double measureGflops(double FlopsPerCall, Fn Run) {
  Run(); // warm-up
  int Reps = 1;
  for (;;) {
    auto T0 = std::chrono::steady_clock::now();
    for (int I = 0; I < Reps; ++I)
      Run();
    double S = secondsSince(T0);
    if (S >= 1.0)
      return FlopsPerCall * Reps / S * 1e-9;
    Reps *= 4;
  }
}

/// Decode throughput (tokens/sec) of the fixture in \p Mode at \p Prec
/// with prefix sharing on or off.
double measureDecodeTokensPerSec(CodeBE::DecodeMode Mode,
                                 Precision Prec = Precision::FP32,
                                 bool Share = false) {
  DecodeFixture &F = DecodeFixture::instance();
  F.Model->setDecodeMode(Mode);
  F.Model->setPrecision(Prec);
  F.Model->setPrefixSharing(Share);
  F.Model->generate(F.Src, nullptr, &F.Plan); // warm-up
  int Reps = 1;
  double Result = 0.0;
  for (;;) {
    auto T0 = std::chrono::steady_clock::now();
    for (int I = 0; I < Reps; ++I)
      benchmark::DoNotOptimize(F.Model->generate(F.Src, nullptr, &F.Plan));
    double S = secondsSince(T0);
    if (S >= 2.0) {
      Result = static_cast<double>(F.Tokens) * Reps / S;
      break;
    }
    Reps *= 2;
  }
  F.Model->setDecodeMode(CodeBE::DecodeMode::KVCache);
  F.Model->setPrecision(Precision::FP32);
  F.Model->setPrefixSharing(true);
  return Result;
}

/// Group-decode throughput (tokens/sec across all members) of \p Group
/// identical requests, shared (one KV prefix, CoW forks) or cold (per
/// member from scratch).
double measureGroupDecodeTokensPerSec(int Group, bool Share) {
  DecodeFixture &F = DecodeFixture::instance();
  F.Model->setDecodeMode(CodeBE::DecodeMode::KVCache);
  F.Model->setPrefixSharing(Share);
  std::vector<CodeBE::GroupRequest> Reqs(
      static_cast<size_t>(Group),
      CodeBE::GroupRequest{&F.Src, nullptr, &F.Plan});
  F.Model->generateGroup(Reqs); // warm-up
  int Reps = 1;
  double Result = 0.0;
  for (;;) {
    auto T0 = std::chrono::steady_clock::now();
    for (int I = 0; I < Reps; ++I)
      benchmark::DoNotOptimize(F.Model->generateGroup(Reqs));
    double S = secondsSince(T0);
    if (S >= 2.0) {
      Result = static_cast<double>(F.Tokens) * Group * Reps / S;
      break;
    }
    Reps *= 2;
  }
  F.Model->setPrefixSharing(true);
  return Result;
}

/// One end-to-end Stage-3 wall time on the shared trained system.
double timeGenerateBackend(VegaSystem &Sys, CodeBE::DecodeMode Mode,
                           int Jobs) {
  Sys.model()->setDecodeMode(Mode);
  Sys.setJobs(Jobs);
  auto T0 = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(Sys.generateBackend("RISCV"));
  return secondsSince(T0);
}

int writeInferenceReport(const std::string &Path) {
  std::fprintf(stderr, "measuring GEMM kernels...\n");
  std::vector<float> A = randomMatrix(GemmM * GemmK, 1);
  std::vector<float> B = randomMatrix(GemmK * GemmN, 2);
  std::vector<float> C(GemmM * GemmN, 0.0f);
  const double Flops = 2.0 * GemmM * GemmK * GemmN;
  double NaiveGflops = measureGflops(Flops, [&] {
    naiveGemm(A.data(), B.data(), C.data(), GemmM, GemmK, GemmN);
    benchmark::DoNotOptimize(C.data());
  });
  double BlockedGflops = measureGflops(Flops, [&] {
    detail::gemmAccum(A.data(), B.data(), C.data(), GemmM, GemmK, GemmN);
    benchmark::DoNotOptimize(C.data());
  });

  // The quantized route benchmarks against the fp32 NT kernel on the same
  // shape (the logits GEMM is an NT product); B is pre-quantized like the
  // QComb cache, A is quantized inside the measured region like logitsFor.
  std::vector<float> BT = randomMatrix(GemmN * GemmK, 2);
  double NTFp32Gflops = measureGflops(Flops, [&] {
    detail::gemmNT(A.data(), BT.data(), C.data(), GemmM, GemmK, GemmN);
    benchmark::DoNotOptimize(C.data());
  });
  std::vector<int8_t> QB(GemmN * GemmK);
  std::vector<float> SB(GemmN);
  detail::quantizeRowsQ8(BT.data(), GemmN, GemmK, QB.data(), SB.data());
  std::vector<int8_t> QA(GemmM * GemmK);
  std::vector<float> SA(GemmM);
  double NTInt8Gflops = measureGflops(Flops, [&] {
    detail::quantizeRowsQ8(A.data(), GemmM, GemmK, QA.data(), SA.data());
    detail::gemmNTQ8(QA.data(), SA.data(), QB.data(), SB.data(), C.data(),
                     GemmM, GemmK, GemmN);
    benchmark::DoNotOptimize(C.data());
  });

  std::fprintf(stderr, "measuring decode throughput...\n");
  double FullTps = measureDecodeTokensPerSec(CodeBE::DecodeMode::FullRecompute);
  double KVTps = measureDecodeTokensPerSec(CodeBE::DecodeMode::KVCache);
  double Int8Tps = measureDecodeTokensPerSec(CodeBE::DecodeMode::KVCache,
                                             Precision::INT8, false);
  double PrefixTps = measureDecodeTokensPerSec(CodeBE::DecodeMode::KVCache,
                                               Precision::FP32, true);
  constexpr int GroupSize = 6;
  double GroupColdTps = measureGroupDecodeTokensPerSec(GroupSize, false);
  double GroupSharedTps = measureGroupDecodeTokensPerSec(GroupSize, true);

  std::fprintf(stderr, "measuring end-to-end generateBackend...\n");
  VegaSystem &Sys = bench::system();
  // Baseline = what Stage 3 did before this engine existed: serial decode
  // with full prefix recomputation (the blocked kernels are the same code
  // in both paths, so the end-to-end ratio isolates KV cache + pool).
  // The three configurations are timed round-robin and each keeps its
  // minimum: interleaving spreads slow machine phases across all three
  // instead of landing one phase on a single configuration, and the
  // minimum is the least noise-contaminated estimate of the true cost.
  double BaselineSec = 0.0, Jobs1Sec = 0.0, Jobs4Sec = 0.0;
  for (int Rep = 0; Rep < 5; ++Rep) {
    double B = timeGenerateBackend(Sys, CodeBE::DecodeMode::FullRecompute, 1);
    double J1 = timeGenerateBackend(Sys, CodeBE::DecodeMode::KVCache, 1);
    double J4 = timeGenerateBackend(Sys, CodeBE::DecodeMode::KVCache, 4);
    if (Rep == 0 || B < BaselineSec)
      BaselineSec = B;
    if (Rep == 0 || J1 < Jobs1Sec)
      Jobs1Sec = J1;
    if (Rep == 0 || J4 < Jobs4Sec)
      Jobs4Sec = J4;
  }

  char Buf[4096];
  std::snprintf(
      Buf, sizeof(Buf),
      "{\n"
      "  \"schema\": \"vega-inference-bench-2\",\n"
      "  \"gemm\": {\n"
      "    \"m\": %d, \"k\": %d, \"n\": %d,\n"
      "    \"naive_gflops\": %.4f,\n"
      "    \"blocked_gflops\": %.4f,\n"
      "    \"speedup\": %.3f,\n"
      "    \"int8\": {\n"
      "      \"precision\": \"int8\",\n"
      "      \"nt_fp32_gflops\": %.4f,\n"
      "      \"nt_int8_gflops\": %.4f,\n"
      "      \"speedup_vs_fp32_nt\": %.3f\n"
      "    }\n"
      "  },\n"
      "  \"decode\": {\n"
      "    \"tokens\": %d,\n"
      "    \"precision\": \"fp32\",\n"
      "    \"prefix_shared\": false,\n"
      "    \"full_recompute_tokens_per_sec\": %.2f,\n"
      "    \"kv_cache_tokens_per_sec\": %.2f,\n"
      "    \"speedup\": %.3f,\n"
      "    \"int8\": {\n"
      "      \"precision\": \"int8\",\n"
      "      \"prefix_shared\": false,\n"
      "      \"tokens_per_sec\": %.2f,\n"
      "      \"speedup_vs_kv_fp32\": %.3f\n"
      "    },\n"
      "    \"prefix\": {\n"
      "      \"precision\": \"fp32\",\n"
      "      \"prefix_shared\": true,\n"
      "      \"tokens_per_sec\": %.2f,\n"
      "      \"speedup_vs_kv_fp32\": %.3f,\n"
      "      \"group_size\": %d,\n"
      "      \"group_cold_tokens_per_sec\": %.2f,\n"
      "      \"group_shared_tokens_per_sec\": %.2f,\n"
      "      \"group_speedup\": %.3f\n"
      "    }\n"
      "  },\n"
      "  \"generate_backend\": {\n"
      "    \"target\": \"RISCV\",\n"
      "    \"precision\": \"fp32\",\n"
      "    \"baseline_serial_full_recompute_sec\": %.4f,\n"
      "    \"jobs1_sec\": %.4f,\n"
      "    \"jobs4_sec\": %.4f,\n"
      "    \"speedup_jobs1_vs_baseline\": %.3f,\n"
      "    \"speedup_jobs4_vs_baseline\": %.3f\n"
      "  }\n"
      "}\n",
      GemmM, GemmK, GemmN, NaiveGflops, BlockedGflops,
      BlockedGflops / NaiveGflops, NTFp32Gflops, NTInt8Gflops,
      NTInt8Gflops / NTFp32Gflops, DecodeFixture::instance().Tokens, FullTps,
      KVTps, KVTps / FullTps, Int8Tps, Int8Tps / KVTps, PrefixTps,
      PrefixTps / KVTps, GroupSize, GroupColdTps, GroupSharedTps,
      GroupSharedTps / GroupColdTps, BaselineSec, Jobs1Sec, Jobs4Sec,
      BaselineSec / Jobs1Sec, BaselineSec / Jobs4Sec);

  std::ofstream Out(Path);
  if (!Out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", Path.c_str());
    return 1;
  }
  Out << Buf;
  std::fprintf(stderr, "wrote %s\n", Path.c_str());
  return 0;
}

// ---- --training-report=<file>.json --------------------------------------

int writeTrainingReport(const std::string &Path) {
  TrainFixture &F = TrainFixture::instance();

  std::fprintf(stderr, "measuring train throughput...\n");
  // Round-robin with per-configuration maxima, mirroring the inference
  // report's minimum-of-interleaved-reps policy (a rate wants the max
  // where a latency wants the min). The first rep also captures weights
  // for the determinism cross-check.
  std::string Weights1, Weights4;
  double Jobs1Rate = 0.0, Jobs4Rate = 0.0;
  for (int Rep = 0; Rep < 3; ++Rep) {
    double R1 = F.run(1, Rep == 0 ? &Weights1 : nullptr);
    double R4 = F.run(4, Rep == 0 ? &Weights4 : nullptr);
    Jobs1Rate = std::max(Jobs1Rate, R1);
    Jobs4Rate = std::max(Jobs4Rate, R4);
  }
  const bool WeightsIdentical =
      !Weights1.empty() && Weights1 == Weights4 &&
      fnv1a(Weights1) == fnv1a(Weights4);

  char Buf[1024];
  std::snprintf(Buf, sizeof(Buf),
                "{\n"
                "  \"schema\": \"vega-training-bench-1\",\n"
                "  \"train\": {\n"
                "    \"examples\": %zu,\n"
                "    \"epochs\": %d,\n"
                "    \"batch_size\": %d,\n"
                "    \"jobs1_examples_per_sec\": %.2f,\n"
                "    \"jobs4_examples_per_sec\": %.2f,\n"
                "    \"speedup_jobs4_vs_jobs1\": %.3f,\n"
                "    \"weights_identical_jobs1_vs_jobs4\": %s\n"
                "  }\n"
                "}\n",
                F.Data.size(), F.C.Epochs, F.C.BatchSize, Jobs1Rate,
                Jobs4Rate, Jobs4Rate / Jobs1Rate,
                WeightsIdentical ? "true" : "false");

  std::ofstream Out(Path);
  if (!Out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", Path.c_str());
    return 1;
  }
  Out << Buf;
  std::fprintf(stderr, "wrote %s\n", Path.c_str());
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  vega::ArgParse Parser("microbench",
                        "google-benchmark micro-suite for the VEGA kernels");
  Parser.addOption("inference-report", "file.json",
                   "also measure end-to-end decode latency and write a report");
  Parser.addOption("training-report", "file.json",
                   "also measure train() examples/sec at jobs 1/4 and write "
                   "a report");
  Parser.setPassthroughUnknown(true); // --benchmark_* flags stay untouched
  if (vega::Status St = Parser.parse(argc, argv); !St.isOk()) {
    std::fprintf(stderr, "microbench: %s\n%s", St.toString().c_str(),
                 Parser.usage().c_str());
    return St.toExitCode();
  }
  std::string ReportPath = Parser.get("inference-report");
  std::string TrainingReportPath = Parser.get("training-report");

  std::vector<std::string> Stored;
  Stored.push_back(argv[0]);
  for (const std::string &A : Parser.passthroughArgs())
    Stored.push_back(A);
  std::vector<char *> Args;
  for (std::string &A : Stored)
    Args.push_back(A.data());
  int Argc = static_cast<int>(Args.size());
  benchmark::Initialize(&Argc, Args.data());
  if (benchmark::ReportUnrecognizedArguments(Argc, Args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!ReportPath.empty())
    if (int Rc = writeInferenceReport(ReportPath))
      return Rc;
  if (!TrainingReportPath.empty())
    return writeTrainingReport(TrainingReportPath);
  return 0;
}
