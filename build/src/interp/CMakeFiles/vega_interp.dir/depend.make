# Empty dependencies file for vega_interp.
# This may be replaced when dependencies are built.
