//===- corpus/SourceBuilder.h - Indented source rendering --------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helper for rendering golden backend sources and description files with
/// consistent indentation.
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_CORPUS_SOURCEBUILDER_H
#define VEGA_CORPUS_SOURCEBUILDER_H

#include <string>
#include <string_view>

namespace vega {

/// Accumulates lines of source text with a running indentation level.
class SourceBuilder {
public:
  /// Appends one line at the current indentation.
  SourceBuilder &line(std::string_view Text) {
    Out.append(static_cast<size_t>(Indent) * 2, ' ');
    Out.append(Text);
    Out += '\n';
    return *this;
  }

  /// Appends a line and increases indentation (for "... {").
  SourceBuilder &open(std::string_view Text) {
    line(Text);
    ++Indent;
    return *this;
  }

  /// Decreases indentation and appends \p Text (default "}").
  SourceBuilder &close(std::string_view Text = "}") {
    --Indent;
    line(Text);
    return *this;
  }

  /// Appends a blank line.
  SourceBuilder &blank() {
    Out += '\n';
    return *this;
  }

  /// The accumulated text.
  std::string str() const { return Out; }

private:
  std::string Out;
  int Indent = 0;
};

} // namespace vega

#endif // VEGA_CORPUS_SOURCEBUILDER_H
