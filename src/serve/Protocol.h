//===- serve/Protocol.h - JSON schemas and JSON-RPC framing ------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire vocabulary shared by `vega-cli --json` and the vega-serve
/// daemon: one deterministic JSON rendering of a generated backend
/// ("vega-backend-1") and of an evaluation report ("vega-eval-2"), plus the
/// newline-delimited JSON-RPC 2.0 framing the daemon speaks. Keeping both
/// consumers on these functions means a backend printed by the CLI is
/// byte-identical to the same backend inside a daemon response.
///
/// vega-eval-2 extends vega-eval-1 with the pluggable-oracle fields: a
/// top-level "oracle" name, per-function Div-Val/Div-Trap/Div-Eff entries
/// appended to "errors", a "txtOnly" flag, an optional per-function
/// "differential" verdict object, and (when a differential oracle ran)
/// summary divergence rates plus the text-vs-differential agreement
/// report. All vega-eval-1 fields are unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_SERVE_PROTOCOL_H
#define VEGA_SERVE_PROTOCOL_H

#include "core/Pipeline.h"
#include "eval/Harness.h"
#include "repair/RepairEngine.h"
#include "serve/Error.h"
#include "support/Json.h"
#include "support/Status.h"

#include <string>

namespace vega {
namespace serve {

/// Renders a generated backend as a "vega-backend-1" document. Fully
/// deterministic: no wall-clock fields — timing travels through vega_obs
/// (traces/metrics), never through result payloads, so identical backends
/// serialize identically across runs, job counts, and batch compositions.
Json backendToJson(const GeneratedBackend &Backend);

/// Renders an evaluation report as a "vega-eval-2" document (deterministic,
/// same reasoning).
Json evalToJson(const BackendEval &Eval);

/// Renders a repair report as a "vega-repair-1" document: options echo,
/// summary (baseline pass@1 vs per-round pass@k vs post-repair accuracy,
/// repair-hour deltas for both developer profiles), per-round stats, the
/// committed statement repairs, per-function outcomes, and the repaired
/// backend as a nested "vega-backend-1". Deterministic and timing-free like
/// the other schemas — byte-identical at any job count.
Json repairToJson(const repair::RepairReport &Report);

/// One parsed request line.
struct RpcRequest {
  Json Id; ///< echoed verbatim (null when the client sent none)
  std::string Method;
  Json Params; ///< object; empty object when the client sent none
};

/// Parses one NDJSON line into a request. InvalidArgument on JSON syntax
/// errors ("parse error"), non-object documents, or a missing/non-string
/// "method".
StatusOr<RpcRequest> parseRpcRequest(const std::string &Line);

/// {"jsonrpc":"2.0","id":...,"result":...}
Json makeRpcResult(const Json &Id, Json Result);

/// {"jsonrpc":"2.0","id":...,"error":{"code":...,"message":...,"data":...}}
/// The wire number comes from serve::toJsonRpc (serve/Error.h) — the single
/// code table shared by router and shard.
Json makeRpcError(const Json &Id, ErrorCode Code, const std::string &Message,
                  const std::string &StatusName = "");

/// makeRpcError from a failed Status (code via errorCodeFor).
Json makeRpcError(const Json &Id, const Status &St);

} // namespace serve
} // namespace vega

#endif // VEGA_SERVE_PROTOCOL_H
