//===- obs/Metrics.cpp - Named counters, gauges, histograms ------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include "obs/Trace.h"
#include "support/TextTable.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

using namespace vega;
using namespace vega::obs;

namespace {

std::string formatNum(double V) {
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.6g", V);
  return Buf;
}

} // namespace

size_t Histogram::bucketFor(double Value) const {
  if (Buckets.empty())
    return 0;
  if (Value < Lo)
    return 0;
  if (Value >= Hi)
    return Buckets.size() - 1;
  double Width = (Hi - Lo) / static_cast<double>(Buckets.size());
  size_t Idx = static_cast<size_t>((Value - Lo) / Width);
  return std::min(Idx, Buckets.size() - 1);
}

void Histogram::observe(double Value) {
  if (Buckets.empty())
    return;
  if (Count == 0) {
    MinSeen = MaxSeen = Value;
  } else {
    MinSeen = std::min(MinSeen, Value);
    MaxSeen = std::max(MaxSeen, Value);
  }
  ++Buckets[bucketFor(Value)];
  ++Count;
  Sum += Value;
}

MetricsRegistry &MetricsRegistry::instance() {
  static MetricsRegistry Registry;
  return Registry;
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Counters.clear();
  Gauges.clear();
  Histograms.clear();
}

void MetricsRegistry::addCounter(const std::string &Name, uint64_t Delta) {
  if (!enabled())
    return;
  std::lock_guard<std::mutex> Lock(Mu);
  Counters[Name] += Delta;
}

void MetricsRegistry::setGauge(const std::string &Name, double Value) {
  if (!enabled())
    return;
  std::lock_guard<std::mutex> Lock(Mu);
  Gauges[Name] = Value;
}

void MetricsRegistry::defineHistogram(const std::string &Name, double Lo,
                                      double Hi, size_t BucketCount) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Histograms.find(Name);
  if (It != Histograms.end())
    return;
  Histogram &H = Histograms[Name];
  H.Lo = Lo;
  H.Hi = Hi > Lo ? Hi : Lo + 1.0;
  H.Buckets.assign(std::max<size_t>(1, BucketCount), 0);
}

void MetricsRegistry::observe(const std::string &Name, double Value) {
  observe(Name, Value, 0.0, 1.0, 10);
}

void MetricsRegistry::observe(const std::string &Name, double Value, double Lo,
                              double Hi, size_t BucketCount) {
  if (!enabled())
    return;
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Histograms.find(Name);
  if (It == Histograms.end()) {
    Histogram &H = Histograms[Name];
    H.Lo = Lo;
    H.Hi = Hi > Lo ? Hi : Lo + 1.0;
    H.Buckets.assign(std::max<size_t>(1, BucketCount), 0);
    It = Histograms.find(Name);
  }
  It->second.observe(Value);
}

uint64_t MetricsRegistry::counterValue(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Counters.find(Name);
  return It == Counters.end() ? 0 : It->second;
}

std::optional<double> MetricsRegistry::gaugeValue(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Gauges.find(Name);
  if (It == Gauges.end())
    return std::nullopt;
  return It->second;
}

std::optional<Histogram>
MetricsRegistry::histogram(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Histograms.find(Name);
  if (It == Histograms.end())
    return std::nullopt;
  return It->second;
}

size_t MetricsRegistry::metricCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Counters.size() + Gauges.size() + Histograms.size();
}

std::string MetricsRegistry::exportJson() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::string Out = "{\n  \"counters\": {";
  bool First = true;
  for (const auto &[Name, Value] : Counters) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "    \"" + jsonEscape(Name) + "\": " + std::to_string(Value);
  }
  Out += "\n  },\n  \"gauges\": {";
  First = true;
  for (const auto &[Name, Value] : Gauges) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "    \"" + jsonEscape(Name) + "\": " + formatNum(Value);
  }
  Out += "\n  },\n  \"histograms\": {";
  First = true;
  for (const auto &[Name, H] : Histograms) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "    \"" + jsonEscape(Name) + "\": {\"lo\": " + formatNum(H.Lo) +
           ", \"hi\": " + formatNum(H.Hi) +
           ", \"count\": " + std::to_string(H.Count) +
           ", \"sum\": " + formatNum(H.Sum) +
           ", \"min\": " + formatNum(H.MinSeen) +
           ", \"max\": " + formatNum(H.MaxSeen) + ", \"buckets\": [";
    for (size_t I = 0; I < H.Buckets.size(); ++I) {
      if (I)
        Out += ", ";
      Out += std::to_string(H.Buckets[I]);
    }
    Out += "]}";
  }
  Out += "\n  }\n}\n";
  return Out;
}

bool MetricsRegistry::writeJson(const std::string &Path) const {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << exportJson();
  return static_cast<bool>(Out);
}

std::string MetricsRegistry::textSummary() const {
  std::lock_guard<std::mutex> Lock(Mu);
  TextTable Table;
  Table.setHeader({"Metric", "Kind", "Value", "Detail"});
  for (const auto &[Name, Value] : Counters)
    Table.addRow({Name, "counter", std::to_string(Value), ""});
  for (const auto &[Name, Value] : Gauges)
    Table.addRow({Name, "gauge", formatNum(Value), ""});
  for (const auto &[Name, H] : Histograms) {
    std::string Detail = "n=" + std::to_string(H.Count) +
                         " mean=" + formatNum(H.mean()) +
                         " min=" + formatNum(H.MinSeen) +
                         " max=" + formatNum(H.MaxSeen);
    std::string Sparkline;
    uint64_t Peak = 0;
    for (uint64_t B : H.Buckets)
      Peak = std::max(Peak, B);
    for (uint64_t B : H.Buckets) {
      static const char *Levels[] = {" ", ".", ":", "-", "=", "#"};
      size_t L = Peak ? (B * 5 + Peak - 1) / Peak : 0;
      Sparkline += Levels[std::min<size_t>(L, 5)];
    }
    Table.addRow({Name, "histogram", "[" + Sparkline + "]", Detail});
  }
  return Table.render();
}
