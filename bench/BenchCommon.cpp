//===- bench/BenchCommon.cpp - Shared benchmark context ----------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "ast/Parser.h"
#include "forkflow/ForkFlow.h"
#include "lexer/Lexer.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/StringUtils.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

using namespace vega;

int vega::bench::defaultEpochs() {
  if (const char *Env = std::getenv("VEGA_BENCH_EPOCHS"))
    return std::max(1, std::atoi(Env));
  return 18;
}

void vega::bench::initObservability() {
  static bool Done = [] {
    const char *TraceOut = std::getenv("VEGA_TRACE_OUT");
    const char *MetricsOut = std::getenv("VEGA_METRICS_OUT");
    if (TraceOut && *TraceOut)
      obs::TraceRecorder::instance().setEnabled(true);
    if (MetricsOut && *MetricsOut)
      obs::MetricsRegistry::instance().setEnabled(true);
    if ((TraceOut && *TraceOut) || (MetricsOut && *MetricsOut))
      std::atexit([] {
        if (const char *Path = std::getenv("VEGA_TRACE_OUT"))
          if (*Path && !obs::TraceRecorder::instance().writeChromeTrace(Path))
            std::fprintf(stderr, "bench: cannot write trace to '%s'\n", Path);
        if (const char *Path = std::getenv("VEGA_METRICS_OUT"))
          if (*Path && !obs::MetricsRegistry::instance().writeJson(Path))
            std::fprintf(stderr, "bench: cannot write metrics to '%s'\n",
                         Path);
      });
    return true;
  }();
  (void)Done;
}

const BackendCorpus &vega::bench::corpus() {
  static BackendCorpus Corpus =
      BackendCorpus::build(TargetDatabase::standard());
  return Corpus;
}

VegaSystem &vega::bench::system() {
  initObservability();
  static VegaSystem *Sys = [] {
    VegaOptions Opts;
    Opts.Model.Epochs = defaultEpochs();
    Opts.WeightCachePath = "vega_model_cache.bin";
    Opts.Verbose = true;
    auto *S = new VegaSystem(corpus(), Opts);
    std::fprintf(stderr, "bench: stage 1 (code-feature mapping)...\n");
    S->buildTemplates();
    S->buildDataset();
    std::fprintf(stderr,
                 "bench: stage 2 (model creation; cached after first run)...\n");
    S->trainModel();
    return S;
  }();
  return *Sys;
}

std::string vega::bench::serializeBackend(const GeneratedBackend &Backend) {
  std::string Out = "TARGET " + Backend.TargetName + "\n";
  for (const auto &[Module, Seconds] : Backend.ModuleSeconds)
    Out += "MODULE " + std::string(moduleName(Module)) + " " +
           std::to_string(Seconds) + "\n";
  for (const GeneratedFunction &F : Backend.Functions) {
    Out += "FUNCTION " + F.InterfaceName + " " + moduleName(F.Module) + " " +
           (F.Emitted ? "1" : "0") + " " + std::to_string(F.Confidence) +
           " " + (F.MultiTargetDerived ? "1" : "0") + " " +
           std::to_string(F.Seconds) + "\n";
    for (const GeneratedStatement &S : F.Statements)
      Out += "STMT " + std::to_string(S.RowIndex) + " " +
             std::to_string(S.Confidence) + " " + (S.Emitted ? "1" : "0") +
             " " + renderTokens(S.Tokens) + "\n";
    if (F.Emitted) {
      std::string Source = F.AST.render();
      Out += "SOURCE " + std::to_string(splitLines(Source).size()) + "\n";
      Out += Source;
    }
    Out += "END\n";
  }
  return Out;
}

bool vega::bench::deserializeBackend(const std::string &Blob,
                                     GeneratedBackend &Out) {
  std::vector<std::string> Lines = splitLines(Blob);
  size_t I = 0;
  auto Next = [&]() -> std::string {
    return I < Lines.size() ? Lines[I++] : std::string();
  };
  std::string Header = Next();
  if (Header.rfind("TARGET ", 0) != 0)
    return false;
  Out.TargetName = Header.substr(7);

  auto ModuleByName = [](const std::string &Name) {
    for (BackendModule M : AllModules)
      if (Name == moduleName(M))
        return M;
    return BackendModule::SEL;
  };

  while (I < Lines.size()) {
    std::string Line = Next();
    if (Line.rfind("MODULE ", 0) == 0) {
      std::istringstream In(Line.substr(7));
      std::string Mod;
      double Seconds = 0.0;
      In >> Mod >> Seconds;
      Out.ModuleSeconds[ModuleByName(Mod)] = Seconds;
      continue;
    }
    if (Line.rfind("FUNCTION ", 0) != 0)
      continue;
    std::istringstream In(Line.substr(9));
    GeneratedFunction F;
    std::string Mod;
    int Emitted = 0, Multi = 0;
    In >> F.InterfaceName >> Mod >> Emitted >> F.Confidence >> Multi >>
        F.Seconds;
    F.Module = ModuleByName(Mod);
    F.Emitted = Emitted != 0;
    F.MultiTargetDerived = Multi != 0;

    while (I < Lines.size()) {
      std::string Inner = Lines[I];
      if (Inner.rfind("STMT ", 0) == 0) {
        ++I;
        std::istringstream SIn(Inner.substr(5));
        GeneratedStatement S;
        int SEmitted = 0;
        SIn >> S.RowIndex >> S.Confidence >> SEmitted;
        S.Emitted = SEmitted != 0;
        std::string Rest;
        std::getline(SIn, Rest);
        S.Tokens = Lexer::tokenize(trimString(Rest));
        F.Statements.push_back(std::move(S));
        continue;
      }
      if (Inner.rfind("SOURCE ", 0) == 0) {
        ++I;
        size_t N = static_cast<size_t>(std::atol(Inner.substr(7).c_str()));
        std::string Source;
        for (size_t L = 0; L < N && I < Lines.size(); ++L)
          Source += Lines[I++] + "\n";
        Expected<FunctionAST> AST = parseFunction(Source);
        if (AST)
          F.AST = std::move(*AST);
        else
          F.Emitted = false;
        continue;
      }
      if (Inner == "END") {
        ++I;
        break;
      }
      ++I;
    }
    Out.Functions.push_back(std::move(F));
  }
  return !Out.Functions.empty();
}

const GeneratedBackend &vega::bench::generated(const std::string &Target) {
  initObservability();
  static std::map<std::string, GeneratedBackend> Cache;
  auto It = Cache.find(Target);
  if (It != Cache.end())
    return It->second;

  std::string Path = "vega_backend_" + Target + ".txt";
  {
    std::ifstream In(Path);
    if (In) {
      std::stringstream Buffer;
      Buffer << In.rdbuf();
      GeneratedBackend GB;
      if (deserializeBackend(Buffer.str(), GB) && GB.TargetName == Target) {
        std::fprintf(stderr, "bench: loaded cached backend for %s\n",
                     Target.c_str());
        return Cache.emplace(Target, std::move(GB)).first->second;
      }
    }
  }
  std::fprintf(stderr, "bench: stage 3 (generating %s backend)...\n",
               Target.c_str());
  GeneratedBackend GB = system().generateBackend(Target);
  std::ofstream OutFile(Path);
  OutFile << serializeBackend(GB);
  return Cache.emplace(Target, std::move(GB)).first->second;
}

const BackendEval &vega::bench::evaluation(const std::string &Target) {
  static std::map<std::string, BackendEval> Cache;
  auto It = Cache.find(Target);
  if (It != Cache.end())
    return It->second;
  // Text verdicts stay the headline numbers; the differential oracle rides
  // along so benches can report the divergence census and Txt-Only column.
  BackendEval Eval =
      evaluateBackend(generated(Target), *corpus().backend(Target),
                      *corpus().targets().find(Target), eval::textOracle(),
                      &eval::differentialOracle());
  return Cache.emplace(Target, std::move(Eval)).first->second;
}

const BackendEval &
vega::bench::forkflowEvaluation(const std::string &Target) {
  static std::map<std::string, BackendEval> Cache;
  auto It = Cache.find(Target);
  if (It != Cache.end())
    return It->second;
  // The paper forks from MIPS for all three targets (§4.2).
  GeneratedBackend FF = forkflowBackend(corpus(), "Mips", Target);
  BackendEval Eval = evaluateBackend(FF, *corpus().backend(Target),
                                     *corpus().targets().find(Target));
  return Cache.emplace(Target, std::move(Eval)).first->second;
}
