file(REMOVE_RECURSE
  "CMakeFiles/table2_error_types.dir/table2_error_types.cpp.o"
  "CMakeFiles/table2_error_types.dir/table2_error_types.cpp.o.d"
  "table2_error_types"
  "table2_error_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_error_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
