file(REMOVE_RECURSE
  "libvega_templatize.a"
)
