//===- bench/ablation_confidence_threshold.cpp - threshold sweep ----------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// The paper fixes the correctness threshold at 0.5 (§3.3). This sweep
/// re-scores the generated RISC-V backend at the function level for a range
/// of thresholds: a function whose definition confidence falls below the
/// threshold is treated as not generated. Too-low thresholds admit junk;
/// too-high thresholds suppress needed functions.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "support/TextTable.h"

#include <cstdio>

using namespace vega;

int main() {
  const BackendEval &Eval = bench::evaluation("RISCV");

  TextTable Table;
  Table.setHeader({"Threshold", "Generated", "Accurate", "Suppressed-needed",
                   "Accuracy"});
  for (double Threshold : {0.1, 0.3, 0.5, 0.7, 0.9, 0.99}) {
    size_t Generated = 0, Accurate = 0, SuppressedNeeded = 0, Total = 0;
    for (const FunctionEval &F : Eval.Functions) {
      bool Gen = F.Generated && F.Confidence >= Threshold;
      if (!Gen && !F.GoldenExists)
        continue;
      ++Total;
      if (Gen)
        ++Generated;
      if (Gen && F.Accurate)
        ++Accurate;
      if (!Gen && F.GoldenExists)
        ++SuppressedNeeded;
    }
    Table.addRow({TextTable::formatDouble(Threshold, 2),
                  std::to_string(Generated), std::to_string(Accurate),
                  std::to_string(SuppressedNeeded),
                  TextTable::formatPercent(
                      Total ? static_cast<double>(Accurate) / Total : 0.0)});
  }
  std::printf(
      "== Confidence-threshold sweep (function level, RISC-V) ==\n%s\n",
      Table.render().c_str());
  std::printf("paper fixes 0.5; shape to match: accuracy peaks near the "
              "middle of the sweep, with high thresholds suppressing needed "
              "functions\n");
  return 0;
}
