//===- bench/BenchCommon.h - Shared benchmark context ------------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared state for the table/figure benches. Model Creation is the paper's
/// 72-hour stage; here it is a one-time fine-tune cached on disk
/// (vega_model_cache.bin), and the three generated backends are cached as
/// rendered sources (vega_backend_<target>.txt) so every bench binary can
/// reload them instead of regenerating.
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_BENCH_BENCHCOMMON_H
#define VEGA_BENCH_BENCHCOMMON_H

#include "eval/EffortModel.h"
#include "eval/Harness.h"

namespace vega {
namespace bench {

/// Number of fine-tuning epochs used by the bench suite.
int defaultEpochs();

/// Observability hook for bench runs: when VEGA_TRACE_OUT and/or
/// VEGA_METRICS_OUT name output files, enables the obs layer and registers
/// an atexit handler that dumps the Chrome trace / metrics JSON when the
/// bench binary finishes. Idempotent; called by system() and generated().
void initObservability();

/// The shared corpus.
const BackendCorpus &corpus();

/// The shared trained system (loads the weight cache when present).
VegaSystem &system();

/// The generated backend for one evaluation target (disk-cached).
const GeneratedBackend &generated(const std::string &Target);

/// Harness evaluation of the generated backend for \p Target.
const BackendEval &evaluation(const std::string &Target);

/// ForkFlow (from MIPS, per §4.2) evaluation for \p Target.
const BackendEval &forkflowEvaluation(const std::string &Target);

/// Serializes / restores a generated backend (used by the disk cache).
std::string serializeBackend(const GeneratedBackend &Backend);
bool deserializeBackend(const std::string &Blob, GeneratedBackend &Out);

} // namespace bench
} // namespace vega

#endif // VEGA_BENCH_BENCHCOMMON_H
