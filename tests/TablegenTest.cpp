//===- tests/TablegenTest.cpp - vega_tablegen unit tests -----------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "tablegen/DescriptionReader.h"

#include <gtest/gtest.h>

using namespace vega;

TEST(DescriptionFile, ParsesEnums) {
  const char *Src = R"(
namespace RISCV {
enum Fixups {
  fixup_riscv_hi20 = FirstTargetFixupKind,
  fixup_riscv_lo12_i,
  LastTargetFixupKind,
};
}
)";
  DescriptionFile File = DescriptionFile::parse("X.h", Src);
  ASSERT_EQ(File.Enums.size(), 1u);
  const DescEnum &E = File.Enums[0];
  EXPECT_EQ(E.Name, "Fixups");
  ASSERT_EQ(E.Members.size(), 3u);
  EXPECT_EQ(E.Members[0], "fixup_riscv_hi20");
  // The initializer reference used to correlate with MCFixupKind.
  EXPECT_TRUE(E.referencesInInit("FirstTargetFixupKind"));
}

TEST(DescriptionFile, ParsesEnumWithUnderlyingType) {
  DescriptionFile File =
      DescriptionFile::parse("Y.h", "enum class Kind : int { A, B, C };");
  ASSERT_EQ(File.Enums.size(), 1u);
  EXPECT_EQ(File.Enums[0].Members.size(), 3u);
}

TEST(DescriptionFile, ParsesAssignments) {
  const char *Src = R"(
def RISCV : Target {
  Name = "RISCV";
  IsLittleEndian = 1;
}
)";
  DescriptionFile File = DescriptionFile::parse("RISCV.td", Src);
  bool FoundName = false, FoundEndian = false;
  for (const DescAssignment &A : File.Assignments) {
    if (A.Field == "Name") {
      FoundName = true;
      EXPECT_EQ(A.Value, "RISCV");
      EXPECT_TRUE(A.ValueIsString);
    }
    if (A.Field == "IsLittleEndian") {
      FoundEndian = true;
      EXPECT_EQ(A.Value, "1");
      EXPECT_FALSE(A.ValueIsString);
    }
  }
  EXPECT_TRUE(FoundName);
  EXPECT_TRUE(FoundEndian);
}

TEST(DescriptionFile, ParsesRecordsWithParentClass) {
  const char *Src = R"(
def ADDrr : Instruction {
  Mnemonic = "add";
  Cycles = 1;
}
def GPR : RegisterClass;
)";
  DescriptionFile File = DescriptionFile::parse("I.td", Src);
  ASSERT_EQ(File.Records.size(), 2u);
  EXPECT_EQ(File.Records[0].Name, "ADDrr");
  EXPECT_EQ(File.Records[0].ParentClass, "Instruction");
  ASSERT_GE(File.Records[0].Fields.size(), 2u);
  EXPECT_EQ(File.Records[1].ParentClass, "RegisterClass");
}

TEST(DescriptionFile, ParsesDefMacroLists) {
  const char *Src = "ELF_RELOC(R_RISCV_NONE, 0)\nELF_RELOC(R_RISCV_32, 1)\n";
  DescriptionFile File = DescriptionFile::parse("RISCV.def", Src);
  ASSERT_EQ(File.Enums.size(), 1u);
  EXPECT_EQ(File.Enums[0].Name, "ELF_RELOC");
  ASSERT_EQ(File.Enums[0].Members.size(), 2u);
  EXPECT_EQ(File.Enums[0].Members[1], "R_RISCV_32");
}

TEST(DescriptionFile, MacroListsInHeadersNeedMacroSpelling) {
  const char *Src = "ELF_RELOC(R_NONE, 0);\nfoo(bar, 1);\n";
  DescriptionFile File = DescriptionFile::parse("ELF.h", Src);
  bool HasElfReloc = false, HasFoo = false;
  for (const DescEnum &E : File.Enums) {
    if (E.Name == "ELF_RELOC")
      HasElfReloc = true;
    if (E.Name == "foo")
      HasFoo = true;
  }
  EXPECT_TRUE(HasElfReloc);
  EXPECT_FALSE(HasFoo) << "ordinary calls must not parse as macro lists";
}

TEST(DescriptionFile, CollectsClassNames) {
  const char *Src = "class MCExpr {\n int K;\n};\nstruct MCFixupKindInfo {};\n"
                    "enum class NotAClass { X };";
  DescriptionFile File = DescriptionFile::parse("C.h", Src);
  ASSERT_EQ(File.Classes.size(), 2u);
  EXPECT_EQ(File.Classes[0], "MCExpr");
  EXPECT_EQ(File.Classes[1], "MCFixupKindInfo");
}

TEST(DescriptionIndex, TokenQueriesAndEnumLookup) {
  DescriptionIndex Index;
  Index.addFile("a/X.h", "enum Fixups { fixup_x_one = FirstTargetFixupKind };");
  Index.addFile("a/Y.td", "def T : Target { Name = \"T\"; }");
  EXPECT_TRUE(Index.containsToken("fixup_x_one"));
  EXPECT_FALSE(Index.containsToken("nope"));
  ASSERT_EQ(Index.filesContaining("Fixups").size(), 1u);
  const DescEnum *E = Index.enumOfMember("fixup_x_one");
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(E->Name, "Fixups");
  EXPECT_NE(Index.enumNamed("Fixups"), nullptr);
  EXPECT_EQ(Index.enumNamed("Missing"), nullptr);
  EXPECT_EQ(Index.assignmentsOf("Name").size(), 1u);
}

TEST(DescriptionIndex, AddDirectoryScopesToPrefix) {
  VirtualFileSystem VFS;
  VFS.addFile("lib/Target/ARM/ARM.td", "def ARM : Target;");
  VFS.addFile("lib/Target/AVR/AVR.td", "def AVR : Target;");
  DescriptionIndex Index;
  Index.addDirectory(VFS, "lib/Target/ARM");
  EXPECT_TRUE(Index.containsToken("ARM"));
  EXPECT_FALSE(Index.containsToken("AVR"));
  EXPECT_EQ(Index.fileCount(), 1u);
}
