//===- lexer/Lexer.h - C++-subset tokenizer ----------------------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Clang-Lexer-flavoured tokenizer for the C++ subset used by backend
/// sources, TableGen files, and framework headers in the corpus. Comments
/// and whitespace are skipped; preprocessor lines can optionally be kept as
/// identifier streams (feature selection scans header tokens).
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_LEXER_LEXER_H
#define VEGA_LEXER_LEXER_H

#include "lexer/Token.h"

#include <string_view>
#include <vector>

namespace vega {

/// Tokenizes a buffer of corpus source text.
class Lexer {
public:
  /// \p KeepPreprocessor controls whether '#include' style lines are lexed
  /// (true) or skipped to end of line (false).
  explicit Lexer(std::string_view Buffer, bool KeepPreprocessor = false);

  /// Lexes and returns the next token; returns EndOfFile at the end.
  Token lex();

  /// Lexes the whole buffer (without the trailing EndOfFile token).
  std::vector<Token> lexAll();

  /// Convenience: tokenize \p Buffer in one call.
  static std::vector<Token> tokenize(std::string_view Buffer,
                                     bool KeepPreprocessor = false);

  /// True when \p Word is a C++ keyword in our subset.
  static bool isKeyword(std::string_view Word);

private:
  char peek(size_t Ahead = 0) const;
  void skipTrivia();

  std::string_view Buffer;
  size_t Pos = 0;
  bool KeepPreprocessor;
};

} // namespace vega

#endif // VEGA_LEXER_LEXER_H
