//===- interp/Interpreter.cpp - Backend-function interpreter ----------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include <cassert>
#include <cstdlib>

using namespace vega;

namespace {

/// Evaluation/execution state for one run.
class Executor {
public:
  Executor(const Environment &Env, int StepBudget)
      : Env(Env), Budget(StepBudget) {
    for (const auto &[Name, V] : Env.vars())
      Vars[Name] = V;
  }

  ExecResult runBody(const std::vector<std::unique_ptr<Statement>> &Body) {
    Flow F = execList(Body);
    ExecResult R;
    R.Trace = std::move(Trace);
    if (Failed) {
      R.St = ExecResult::Status::Error;
      R.Message = ErrorMessage;
      return R;
    }
    if (F == Flow::Trapped) {
      R.St = ExecResult::Status::Trap;
      R.Message = TrapMessage;
      return R;
    }
    R.St = ExecResult::Status::Ok;
    R.Return = ReturnValue;
    return R;
  }

private:
  enum class Flow { Normal, Broke, Returned, Trapped };

  // ------------------------------------------------------------ errors --
  Value fail(const std::string &Message) {
    if (!Failed) {
      Failed = true;
      ErrorMessage = Message;
    }
    return Value::unit();
  }

  // -------------------------------------------------- expression eval --
  // A small recursive-descent evaluator over a token span.
  struct Cursor {
    const std::vector<Token> *Toks;
    size_t Pos, End;
    const Token &peek(size_t Ahead = 0) const {
      static const Token Eof(TokenKind::EndOfFile, "");
      return Pos + Ahead < End ? (*Toks)[Pos + Ahead] : Eof;
    }
    bool atEnd() const { return Pos >= End; }
    const Token &take() { return (*Toks)[Pos++]; }
  };

  Value evalSpan(const std::vector<Token> &Toks, size_t Begin, size_t End) {
    Cursor C{&Toks, Begin, End};
    Value V = evalOr(C);
    return V;
  }

  Value evalOr(Cursor &C) {
    Value L = evalAnd(C);
    while (!Failed && C.peek().isPunct("||")) {
      C.take();
      Value R = evalAnd(C);
      L = Value::boolean(truthy(L) || truthy(R));
    }
    return L;
  }

  Value evalAnd(Cursor &C) {
    Value L = evalCmp(C);
    while (!Failed && C.peek().isPunct("&&")) {
      C.take();
      Value R = evalCmp(C);
      L = Value::boolean(truthy(L) && truthy(R));
    }
    return L;
  }

  Value evalCmp(Cursor &C) {
    Value L = evalAdd(C);
    const Token &Op = C.peek();
    if (Op.isPunct("==") || Op.isPunct("!=")) {
      C.take();
      Value R = evalAdd(C);
      bool Eq = L == R;
      return Value::boolean(Op.Text == "==" ? Eq : !Eq);
    }
    if (Op.isPunct("<") || Op.isPunct(">") || Op.isPunct("<=") ||
        Op.isPunct(">=")) {
      std::string OpText = C.take().Text;
      Value R = evalAdd(C);
      int64_t A = 0, B = 0;
      if (!asNumber(L, A) || !asNumber(R, B))
        return fail("non-numeric relational comparison");
      if (OpText == "<")
        return Value::boolean(A < B);
      if (OpText == ">")
        return Value::boolean(A > B);
      if (OpText == "<=")
        return Value::boolean(A <= B);
      return Value::boolean(A >= B);
    }
    return L;
  }

  Value evalAdd(Cursor &C) {
    Value L = evalMul(C);
    while (!Failed && (C.peek().isPunct("+") || C.peek().isPunct("-"))) {
      std::string Op = C.take().Text;
      Value R = evalMul(C);
      int64_t A = 0, B = 0;
      if (!asNumber(L, A) || !asNumber(R, B))
        return fail("non-numeric arithmetic");
      L = Value::integer(Op == "+" ? A + B : A - B);
    }
    return L;
  }

  Value evalMul(Cursor &C) {
    Value L = evalUnary(C);
    while (!Failed && (C.peek().isPunct("*") || C.peek().isPunct("/") ||
                       C.peek().isPunct("%"))) {
      std::string Op = C.take().Text;
      Value R = evalUnary(C);
      int64_t A = 0, B = 0;
      if (!asNumber(L, A) || !asNumber(R, B))
        return fail("non-numeric arithmetic");
      if ((Op == "/" || Op == "%") && B == 0)
        return fail("division by zero");
      L = Value::integer(Op == "*" ? A * B : Op == "/" ? A / B : A % B);
    }
    return L;
  }

  Value evalUnary(Cursor &C) {
    if (C.peek().isPunct("!")) {
      C.take();
      Value V = evalUnary(C);
      if (Failed)
        return V;
      return Value::boolean(!truthy(V));
    }
    if (C.peek().isPunct("-")) {
      C.take();
      Value V = evalUnary(C);
      int64_t A = 0;
      if (!asNumber(V, A))
        return fail("negation of non-number");
      return Value::integer(-A);
    }
    if (C.peek().isPunct("&") || C.peek().isPunct("*")) {
      // Address-of / dereference are semantic no-ops at this level.
      C.take();
      return evalUnary(C);
    }
    return evalPostfix(C);
  }

  Value evalPostfix(Cursor &C) {
    Value V;
    std::string Key;
    bool HasValue = false;

    const Token &T = C.peek();
    if (T.is(TokenKind::IntLiteral)) {
      C.take();
      V = Value::integer(parseInt(T.Text));
      HasValue = true;
    } else if (T.is(TokenKind::StringLiteral)) {
      C.take();
      std::string Inner = T.Text.size() >= 2
                              ? T.Text.substr(1, T.Text.size() - 2)
                              : T.Text;
      V = Value::symbol(Inner);
      HasValue = true;
    } else if (T.isKeyword("true")) {
      C.take();
      V = Value::boolean(true);
      HasValue = true;
    } else if (T.isKeyword("false")) {
      C.take();
      V = Value::boolean(false);
      HasValue = true;
    } else if (T.isKeyword("nullptr")) {
      C.take();
      V = Value::symbol("nullptr");
      HasValue = true;
    } else if (T.isPunct("(")) {
      C.take();
      V = evalOr(C);
      if (!C.peek().isPunct(")"))
        return fail("expected ')'");
      C.take();
      HasValue = true;
    } else if (T.is(TokenKind::Identifier) || T.is(TokenKind::Keyword) ||
               T.is(TokenKind::Placeholder)) {
      Key = C.take().Text;
    } else {
      return fail("unexpected token '" + T.Text + "' in expression");
    }

    while (!Failed) {
      const Token &Next = C.peek();
      if (Next.isPunct("::") &&
          (C.peek(1).is(TokenKind::Identifier) ||
           C.peek(1).is(TokenKind::Keyword))) {
        C.take();
        Key += "::" + C.take().Text;
        HasValue = false;
        continue;
      }
      if ((Next.isPunct(".") || Next.isPunct("->")) &&
          C.peek(1).is(TokenKind::Identifier)) {
        C.take();
        // Resolve the receiver as a plain name for the call key; the value
        // itself is irrelevant for bound calls.
        Key += "." + C.take().Text;
        HasValue = false;
        continue;
      }
      if (Next.isPunct("(")) {
        C.take();
        std::vector<Value> Args;
        if (!C.peek().isPunct(")")) {
          while (true) {
            Args.push_back(evalOr(C));
            if (Failed)
              return Value::unit();
            if (C.peek().isPunct(",")) {
              C.take();
              continue;
            }
            break;
          }
        }
        if (!C.peek().isPunct(")"))
          return fail("expected ')' after call arguments");
        C.take();
        V = callFunction(Key, Args);
        HasValue = true;
        Key += "()";
        continue;
      }
      break;
    }

    if (HasValue)
      return V;
    // Bare name: local variable, environment binding, or a symbol.
    auto It = Vars.find(Key);
    if (It != Vars.end())
      return It->second;
    return Value::symbol(Key);
  }

  Value callFunction(const std::string &Key, const std::vector<Value> &Args) {
    // 1. Environment call bindings.
    auto It = Env.calls().find(Key);
    if (It != Env.calls().end())
      return It->second;
    // 2. Environment intrinsic resolver.
    if (Env.intrinsic()) {
      if (auto V = Env.intrinsic()(Key, Args))
        return *V;
    }
    // 3. Builtins.
    if (Key == "report_fatal_error") {
      Trapping = true;
      TrapMessage = Args.empty() ? std::string() : Args.front().str();
      return Value::unit();
    }
    if (Key == "alignTo" && Args.size() == 2 && Args[0].isInt() &&
        Args[1].isInt() && Args[1].IntV > 0) {
      int64_t A = Args[1].IntV;
      return Value::integer((Args[0].IntV + A - 1) / A * A);
    }
    if (Key == "isIntN" && Args.size() == 2 && Args[0].isInt() &&
        Args[1].isInt()) {
      int64_t N = Args[0].IntV;
      if (N <= 0 || N > 62)
        return Value::boolean(true);
      int64_t Lo = -(int64_t(1) << (N - 1)), Hi = (int64_t(1) << (N - 1));
      return Value::boolean(Args[1].IntV >= Lo && Args[1].IntV < Hi);
    }
    if (Key == "markReserved" && Args.size() == 2)
      return Value::symbol(Args[0].str() + "|" + Args[1].str());
    if ((Key == "matchRegisterName" || Key == "isDirective") &&
        Args.size() == 2)
      return Value::boolean(Args[0].str() == Args[1].str());
    if (Key == "emitError") {
      Trace.push_back("error: " +
                      (Args.empty() ? std::string() : Args.front().str()));
      return Value::boolean(true);
    }
    // 4. Effect: record the call and synthesize a deterministic symbol.
    std::string Effect = Key + "(";
    for (size_t I = 0; I < Args.size(); ++I) {
      if (I)
        Effect += ", ";
      Effect += Args[I].str();
    }
    Effect += ")";
    Trace.push_back(Effect);
    return Value::symbol("#" + Effect);
  }

  // ------------------------------------------------------- statements --
  Flow execList(const std::vector<std::unique_ptr<Statement>> &Stmts) {
    for (size_t I = 0; I < Stmts.size(); ++I) {
      const Statement &S = *Stmts[I];
      // else/else-if clauses are consumed by their if; standalone ones are
      // skipped.
      if (S.Kind == StmtKind::Else || S.Kind == StmtKind::ElseIf)
        continue;
      if (S.Kind == StmtKind::If) {
        Flow F = execIfChain(Stmts, I);
        if (F != Flow::Normal)
          return F;
        continue;
      }
      Flow F = execStatement(S);
      if (F != Flow::Normal)
        return F;
    }
    return Flow::Normal;
  }

  Flow execIfChain(const std::vector<std::unique_ptr<Statement>> &Stmts,
                   size_t &Index) {
    // Evaluate the chain if / else-if* / else?, executing the first branch
    // whose condition holds; Index is left at the last chain element.
    bool Taken = false;
    Flow Result = Flow::Normal;
    size_t I = Index;
    for (; I < Stmts.size(); ++I) {
      const Statement &S = *Stmts[I];
      bool IsFirst = I == Index;
      if (!IsFirst && S.Kind != StmtKind::ElseIf && S.Kind != StmtKind::Else)
        break;
      if (Taken)
        continue;
      bool CondHolds = true;
      if (S.Kind != StmtKind::Else) {
        Value Cond = evalCondition(S);
        if (Failed)
          return Flow::Trapped; // surfaced as Error by runBody
        CondHolds = truthy(Cond);
      }
      if (CondHolds) {
        Taken = true;
        Result = withBudget([&] { return execList(S.Children); });
        if (Failed || Result != Flow::Normal) {
          // Still need Index to advance past the chain; but control flow
          // ends here anyway.
          Index = I;
          return Result;
        }
      }
      if (S.Kind == StmtKind::Else)
        break;
    }
    Index = I > Index ? I - 1 : Index;
    return Result;
  }

  Value evalCondition(const Statement &S) {
    // Tokens between the first '(' and its matching ')'.
    size_t Open = 0;
    while (Open < S.Tokens.size() && !S.Tokens[Open].isPunct("("))
      ++Open;
    if (Open == S.Tokens.size())
      return fail("missing condition");
    int Depth = 0;
    size_t Close = Open;
    for (; Close < S.Tokens.size(); ++Close) {
      if (S.Tokens[Close].isPunct("("))
        ++Depth;
      else if (S.Tokens[Close].isPunct(")") && --Depth == 0)
        break;
    }
    return evalSpan(S.Tokens, Open + 1, Close);
  }

  Flow execStatement(const Statement &S) {
    if (--Budget <= 0) {
      fail("step budget exhausted");
      return Flow::Trapped;
    }
    switch (S.Kind) {
    case StmtKind::FunctionDef:
    case StmtKind::BlockEnd:
      return Flow::Normal;
    case StmtKind::Decl:
    case StmtKind::Assign:
      return execAssign(S);
    case StmtKind::Return:
      return execReturn(S);
    case StmtKind::Break:
      return Flow::Broke;
    case StmtKind::Switch:
      return execSwitch(S);
    case StmtKind::Call:
    case StmtKind::Other: {
      if (!S.Tokens.empty() && !S.opensBlock()) {
        size_t End = S.Tokens.size();
        if (S.Tokens.back().isPunct(";"))
          --End;
        evalSpan(S.Tokens, 0, End);
        if (Trapping)
          return Flow::Trapped;
        if (Failed)
          return Flow::Trapped;
        return Flow::Normal;
      }
      // Unknown block statement: single pass over the body.
      return withBudget([&] { return execList(S.Children); });
    }
    case StmtKind::If:
    case StmtKind::ElseIf:
    case StmtKind::Else:
    case StmtKind::Case:
    case StmtKind::Default:
      // Handled by execList/execSwitch; reaching here means a malformed
      // tree (e.g. generated code with a stray label).
      fail("misplaced control statement '" + S.text() + "'");
      return Flow::Trapped;
    }
    return Flow::Normal;
  }

  Flow execAssign(const Statement &S) {
    // Find the top-level '='; LHS name is the identifier just before it.
    int Depth = 0;
    size_t Eq = S.Tokens.size();
    for (size_t I = 0; I < S.Tokens.size(); ++I) {
      const Token &T = S.Tokens[I];
      if (T.isPunct("(") || T.isPunct("["))
        ++Depth;
      else if (T.isPunct(")") || T.isPunct("]"))
        --Depth;
      else if (Depth == 0 && T.isPunct("=")) {
        Eq = I;
        break;
      }
    }
    if (Eq == S.Tokens.size() || Eq == 0) {
      fail("malformed assignment '" + S.text() + "'");
      return Flow::Trapped;
    }
    if (S.Tokens[Eq - 1].Kind != TokenKind::Identifier) {
      fail("unsupported assignment target in '" + S.text() + "'");
      return Flow::Trapped;
    }
    size_t End = S.Tokens.size();
    if (S.Tokens.back().isPunct(";"))
      --End;
    Value V = evalSpan(S.Tokens, Eq + 1, End);
    if (Trapping)
      return Flow::Trapped;
    if (Failed)
      return Flow::Trapped;
    Vars[S.Tokens[Eq - 1].Text] = std::move(V);
    return Flow::Normal;
  }

  Flow execReturn(const Statement &S) {
    size_t Begin = 1; // skip 'return'
    size_t End = S.Tokens.size();
    if (End > 0 && S.Tokens.back().isPunct(";"))
      --End;
    if (Begin < End) {
      ReturnValue = evalSpan(S.Tokens, Begin, End);
      if (Trapping)
        return Flow::Trapped;
      if (Failed)
        return Flow::Trapped;
    } else {
      ReturnValue = Value::unit();
    }
    return Flow::Returned;
  }

  Flow execSwitch(const Statement &S) {
    Value Scrutinee = evalCondition(S);
    if (Failed)
      return Flow::Trapped;

    // Find the matching label; C-style fallthrough to subsequent labels.
    size_t Match = S.Children.size();
    size_t Default = S.Children.size();
    for (size_t I = 0; I < S.Children.size(); ++I) {
      const Statement &Label = *S.Children[I];
      if (Label.Kind == StmtKind::Default) {
        Default = I;
        continue;
      }
      if (Label.Kind != StmtKind::Case)
        continue;
      // Label value: tokens between 'case' and ':'.
      size_t End = Label.Tokens.size();
      if (End > 0 && Label.Tokens.back().isPunct(":"))
        --End;
      Value LabelValue = evalSpan(Label.Tokens, 1, End);
      if (Failed)
        return Flow::Trapped;
      if (LabelValue == Scrutinee) {
        Match = I;
        break;
      }
    }
    if (Match == S.Children.size())
      Match = Default;
    if (Match == S.Children.size())
      return Flow::Normal; // no matching case, no default

    for (size_t I = Match; I < S.Children.size(); ++I) {
      Flow F = withBudget([&] { return execList(S.Children[I]->Children); });
      if (F == Flow::Broke)
        return Flow::Normal;
      if (F != Flow::Normal)
        return F;
      // Fallthrough to the next label's statements.
    }
    return Flow::Normal;
  }

  template <typename Fn> Flow withBudget(Fn &&Body) {
    if (--Budget <= 0) {
      fail("step budget exhausted");
      return Flow::Trapped;
    }
    return Body();
  }

  static bool truthy(const Value &V) {
    if (V.isBool())
      return V.BoolV;
    if (V.isInt())
      return V.IntV != 0;
    return false;
  }

  bool asNumber(const Value &V, int64_t &Out) {
    if (V.isInt()) {
      Out = V.IntV;
      return true;
    }
    if (V.isBool()) {
      Out = V.BoolV ? 1 : 0;
      return true;
    }
    if (V.isSym()) {
      auto It = Env.ordinals().find(V.SymV);
      if (It != Env.ordinals().end()) {
        Out = It->second;
        return true;
      }
    }
    return false;
  }

  static int64_t parseInt(const std::string &Text) {
    if (Text.size() > 2 && Text[0] == '0' && (Text[1] == 'x' || Text[1] == 'X'))
      return static_cast<int64_t>(std::strtoll(Text.c_str(), nullptr, 16));
    return static_cast<int64_t>(std::strtoll(Text.c_str(), nullptr, 10));
  }

  const Environment &Env;
  int Budget;
  std::map<std::string, Value> Vars;
  std::vector<std::string> Trace;
  Value ReturnValue;
  bool Failed = false;
  std::string ErrorMessage;
  bool Trapping = false;
  std::string TrapMessage;

  friend class ::vega::Interpreter;

public:
  bool trapping() const { return Trapping; }
  const std::string &trapMessage() const { return TrapMessage; }
  bool failed() const { return Failed; }
};

} // namespace

ExecResult Interpreter::run(const FunctionAST &Fn, const Environment &Env,
                            int StepBudget) const {
  Executor Exec(Env, StepBudget);
  ExecResult R = Exec.runBody(Fn.Body);
  if (Exec.failed()) {
    R.St = ExecResult::Status::Error;
  } else if (Exec.trapping()) {
    R.St = ExecResult::Status::Trap;
    R.Message = Exec.trapMessage();
    R.Return = Value::unit();
  }
  return R;
}
