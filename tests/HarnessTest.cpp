//===- tests/HarnessTest.cpp - harness + effort model tests ---------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "eval/EffortModel.h"
#include "eval/Harness.h"
#include "lexer/Lexer.h"

#include <gtest/gtest.h>

using namespace vega;

namespace {

const BackendCorpus &sharedCorpus() {
  static BackendCorpus Corpus =
      BackendCorpus::build(TargetDatabase::standard());
  return Corpus;
}

/// A "perfect generator": wraps the golden backend as a GeneratedBackend.
GeneratedBackend perfectBackend(const std::string &Target) {
  GeneratedBackend GB;
  GB.TargetName = Target;
  const Backend *B = sharedCorpus().backend(Target);
  for (const auto &Fn : B->Functions) {
    GeneratedFunction GF;
    GF.InterfaceName = Fn->InterfaceName;
    GF.Module = Fn->Module;
    GF.Emitted = true;
    GF.Confidence = 1.0;
    GF.AST = Fn->AST.clone();
    GB.Functions.push_back(std::move(GF));
  }
  return GB;
}

} // namespace

TEST(Harness, PerfectBackendScoresFullAccuracy) {
  GeneratedBackend GB = perfectBackend("RISCV");
  BackendEval Eval = evaluateBackend(GB, *sharedCorpus().backend("RISCV"),
                                     *sharedCorpus().targets().find("RISCV"));
  EXPECT_DOUBLE_EQ(Eval.functionAccuracy(), 1.0);
  EXPECT_DOUBLE_EQ(Eval.statementAccuracy(), 1.0);
  EXPECT_DOUBLE_EQ(Eval.errDefRate(), 0.0);
  EXPECT_DOUBLE_EQ(Eval.errVRate(), 0.0);
}

TEST(Harness, MissingFunctionIsErrDef) {
  GeneratedBackend GB = perfectBackend("RISCV");
  // Drop one function entirely.
  GB.Functions.erase(GB.Functions.begin());
  BackendEval Eval = evaluateBackend(GB, *sharedCorpus().backend("RISCV"),
                                     *sharedCorpus().targets().find("RISCV"));
  EXPECT_LT(Eval.functionAccuracy(), 1.0);
  EXPECT_GT(Eval.errDefRate(), 0.0);
}

TEST(Harness, WrongValueIsDetectedAndClassified) {
  GeneratedBackend GB = perfectBackend("RISCV");
  // Corrupt one relocation value inside getRelocType.
  for (GeneratedFunction &GF : GB.Functions) {
    if (GF.InterfaceName != "getRelocType")
      continue;
    for (Statement *S : GF.AST.flattenMutable())
      for (Token &T : S->Tokens)
        if (T.Text == "R_RISCV_HI20")
          T.Text = "R_RISCV_LO12_I";
  }
  BackendEval Eval = evaluateBackend(GB, *sharedCorpus().backend("RISCV"),
                                     *sharedCorpus().targets().find("RISCV"));
  const FunctionEval *Reloc = nullptr;
  for (const FunctionEval &F : Eval.Functions)
    if (F.InterfaceName == "getRelocType")
      Reloc = &F;
  ASSERT_NE(Reloc, nullptr);
  EXPECT_FALSE(Reloc->Accurate);
  EXPECT_TRUE(Reloc->ErrV);
  EXPECT_GT(Reloc->ManualStatements, 0u);
}

TEST(Harness, SuppressedCorrectStatementIsErrCS) {
  GeneratedBackend GB = perfectBackend("RISCV");
  for (GeneratedFunction &GF : GB.Functions) {
    if (GF.InterfaceName != "getNumFixupKinds")
      continue;
    // Remove the only body statement and record it as a low-confidence
    // suppression of the right answer.
    GeneratedStatement GS;
    GS.Confidence = 0.12;
    GS.Emitted = false;
    GS.Tokens = GF.AST.Body.front()->Tokens;
    GF.Statements.push_back(GS);
    GF.AST.Body.clear();
  }
  BackendEval Eval = evaluateBackend(GB, *sharedCorpus().backend("RISCV"),
                                     *sharedCorpus().targets().find("RISCV"));
  const FunctionEval *Fn = nullptr;
  for (const FunctionEval &F : Eval.Functions)
    if (F.InterfaceName == "getNumFixupKinds")
      Fn = &F;
  ASSERT_NE(Fn, nullptr);
  EXPECT_FALSE(Fn->Accurate);
  EXPECT_TRUE(Fn->ErrCS);
}

TEST(Harness, StatementAccountingCountsExactMatches) {
  const Backend *B = sharedCorpus().backend("RISCV");
  const BackendFunction *Fn = B->find("getRelocType");
  auto [Acc, Manual] = statementAccounting(Fn->AST, Fn->AST);
  EXPECT_EQ(Manual, 0u);
  EXPECT_EQ(Acc, Fn->AST.size() - 1);

  // Against an empty candidate everything is manual.
  FunctionAST Empty;
  Empty.Definition = Statement(StmtKind::FunctionDef, Fn->AST.Definition.Tokens);
  auto [Acc2, Manual2] = statementAccounting(Empty, Fn->AST);
  EXPECT_EQ(Acc2, 0u);
  EXPECT_EQ(Manual2, Fn->AST.size() - 1);
}

TEST(Harness, ModuleAggregatesSumToTotals) {
  GeneratedBackend GB = perfectBackend("RI5CY");
  BackendEval Eval = evaluateBackend(GB, *sharedCorpus().backend("RI5CY"),
                                     *sharedCorpus().targets().find("RI5CY"));
  size_t Total = 0;
  for (const auto &[Module, Stats] : Eval.PerModule)
    Total += Stats.Functions;
  EXPECT_EQ(Total, GB.Functions.size());
}

TEST(Harness, EmptyEvalReportsZeroNotNan) {
  // Accuracy over an empty population must be 0.0, never a 0/0 NaN: an
  // empty BackendEval flows into JSON summaries and effort totals, and a
  // NaN would poison both.
  BackendEval Empty;
  EXPECT_DOUBLE_EQ(Empty.functionAccuracy(), 0.0);
  EXPECT_DOUBLE_EQ(Empty.statementAccuracy(), 0.0);
  EXPECT_DOUBLE_EQ(Empty.errVRate(), 0.0);
  EXPECT_DOUBLE_EQ(Empty.errCSRate(), 0.0);
  EXPECT_DOUBLE_EQ(Empty.errDefRate(), 0.0);
  for (BackendModule M : AllModules)
    EXPECT_DOUBLE_EQ(Empty.functionAccuracy(M), 0.0) << moduleName(M);
  EXPECT_DOUBLE_EQ(totalRepairHours(Empty, developerA()), 0.0);

  // Same for a population with no *generated* functions: the function with
  // GoldenExists=false, Generated=false contributes to no denominator.
  BackendEval Phantom;
  FunctionEval FE;
  FE.InterfaceName = "ghost";
  FE.Module = BackendModule::SEL;
  Phantom.Functions.push_back(FE);
  EXPECT_DOUBLE_EQ(Phantom.functionAccuracy(), 0.0);
  EXPECT_DOUBLE_EQ(Phantom.functionAccuracy(BackendModule::REG), 0.0);
}

TEST(Harness, TxtOnlyFunctionIsUnPenalizedByAdjustedAccounting) {
  GeneratedBackend GB = perfectBackend("RISCV");
  // Rewrite one `return <int> ;` statement to the behaviourally identical
  // `return <int> + 0 ;` — textually different, semantically the same.
  std::string Mutated;
  for (GeneratedFunction &GF : GB.Functions) {
    if (!Mutated.empty())
      break;
    for (Statement *S : GF.AST.flattenMutable()) {
      if (S->Tokens.size() == 3 && S->Tokens[0].Text == "return" &&
          S->Tokens[1].Kind == TokenKind::IntLiteral) {
        S->Tokens = Lexer::tokenize("return " + S->Tokens[1].Text + " + 0 ;");
        Mutated = GF.InterfaceName;
        break;
      }
    }
  }
  ASSERT_FALSE(Mutated.empty());

  BackendEval Eval = evaluateBackend(GB, *sharedCorpus().backend("RISCV"),
                                     *sharedCorpus().targets().find("RISCV"),
                                     eval::textOracle(),
                                     &eval::differentialOracle());
  const FunctionEval *Fn = nullptr;
  for (const FunctionEval &F : Eval.Functions)
    if (F.InterfaceName == Mutated)
      Fn = &F;
  ASSERT_NE(Fn, nullptr);
  // Behaviourally equal under both oracles, textually penalized.
  EXPECT_TRUE(Fn->Accurate);
  EXPECT_TRUE(Fn->DiffRan);
  EXPECT_TRUE(Fn->DiffAccurate);
  EXPECT_GT(Fn->ManualStatements, 0u);
  EXPECT_TRUE(Fn->TxtOnly);
  EXPECT_FALSE(Fn->DivVal);
  EXPECT_FALSE(Fn->DivTrap);
  EXPECT_FALSE(Fn->DivEff);

  // The plain statement accounting charges the rewrite as manual effort;
  // the adjusted number forgives Txt-Only functions.
  EXPECT_LT(Eval.statementAccuracy(), 1.0);
  EXPECT_DOUBLE_EQ(Eval.adjustedStatementAccuracy(), 1.0);
  EXPECT_GT(Eval.txtOnlyRate(), 0.0);
  size_t TxtOnlyTotal = 0;
  for (const auto &[Module, Stats] : Eval.PerModule)
    TxtOnlyTotal += Stats.TxtOnlyFunctions;
  EXPECT_EQ(TxtOnlyTotal, 1u);
  EXPECT_EQ(Eval.OracleName, "text+differential");
}

TEST(Harness, DifferentialFieldsStayEmptyWithoutClassifier) {
  GeneratedBackend GB = perfectBackend("RISCV");
  BackendEval Eval = evaluateBackend(GB, *sharedCorpus().backend("RISCV"),
                                     *sharedCorpus().targets().find("RISCV"));
  EXPECT_FALSE(Eval.hasDifferential());
  EXPECT_EQ(Eval.OracleName, "text");
  for (const FunctionEval &F : Eval.Functions) {
    EXPECT_FALSE(F.DiffRan);
    EXPECT_FALSE(F.TxtOnly);
  }
  EXPECT_DOUBLE_EQ(Eval.divValRate(), 0.0);
  EXPECT_DOUBLE_EQ(Eval.txtOnlyRate(), 0.0);
  EXPECT_DOUBLE_EQ(Eval.adjustedStatementAccuracy(),
                   Eval.statementAccuracy());
}

TEST(EffortModel, CalibrationReproducesTable4Totals) {
  // Feeding the paper's Table 3 manual counts must reproduce Table 4 hours.
  BackendEval Eval;
  Eval.TargetName = "RISCV";
  auto Set = [&](BackendModule M, size_t Manual) {
    Eval.PerModule[M].ManualStatements = Manual;
  };
  Set(BackendModule::SEL, 3747);
  Set(BackendModule::REG, 35);
  Set(BackendModule::OPT, 1204);
  Set(BackendModule::SCH, 281);
  Set(BackendModule::EMI, 589);
  Set(BackendModule::ASS, 1310);
  Set(BackendModule::DIS, 57);
  EXPECT_NEAR(totalRepairHours(Eval, developerA()), 42.54, 0.05);
  EXPECT_NEAR(totalRepairHours(Eval, developerB()), 48.12, 0.05);
}

TEST(EffortModel, PerfectBackendNeedsNoHours) {
  GeneratedBackend GB = perfectBackend("RISCV");
  BackendEval Eval = evaluateBackend(GB, *sharedCorpus().backend("RISCV"),
                                     *sharedCorpus().targets().find("RISCV"));
  EXPECT_DOUBLE_EQ(totalRepairHours(Eval, developerA()), 0.0);
}
