//===- support/RNG.h - Deterministic random numbers -------------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic PRNG (SplitMix64). Every randomized component of
/// the reproduction (corpus synthesis, dataset splits, model initialization)
/// takes an explicit seed so runs are bit-reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_SUPPORT_RNG_H
#define VEGA_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace vega {

/// SplitMix64 generator; cheap, well distributed, and deterministic across
/// platforms (unlike std::mt19937 seeded via std::seed_seq distribution
/// choices, which we avoid on principle).
class RNG {
public:
  explicit RNG(uint64_t Seed) : State(Seed) {}

  /// Next raw 64-bit value.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform integer in [0, Bound).
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound > 0 && "nextBelow requires a positive bound");
    return next() % Bound;
  }

  /// Uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [Lo, Hi).
  double nextDouble(double Lo, double Hi) {
    return Lo + (Hi - Lo) * nextDouble();
  }

  /// Gaussian via Box-Muller (mean 0, stddev 1).
  double nextGaussian() {
    double U1 = nextDouble(), U2 = nextDouble();
    if (U1 < 1e-12)
      U1 = 1e-12;
    return __builtin_sqrt(-2.0 * __builtin_log(U1)) *
           __builtin_cos(6.283185307179586 * U2);
  }

  /// True with probability \p P.
  bool nextBool(double P) { return nextDouble() < P; }

  /// Fisher-Yates shuffle of \p Items.
  template <typename T> void shuffle(std::vector<T> &Items) {
    for (size_t I = Items.size(); I > 1; --I) {
      size_t J = static_cast<size_t>(nextBelow(I));
      std::swap(Items[I - 1], Items[J]);
    }
  }

  /// Picks a uniformly random element of \p Items.
  template <typename T> const T &pick(const std::vector<T> &Items) {
    assert(!Items.empty() && "pick from empty vector");
    return Items[static_cast<size_t>(nextBelow(Items.size()))];
  }

private:
  uint64_t State;
};

} // namespace vega

#endif // VEGA_SUPPORT_RNG_H
