//===- examples/quickstart.cpp - VEGA in five minutes ---------------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// Quickstart: build the synthetic backend corpus, run Stage 1
/// (Code-Feature Mapping) on the paper's running example — getRelocType —
/// and print the synthesized function template, its discovered properties,
/// and the feature values for a new target (RISC-V). No model training.
///
///   ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "feature/FeatureSelector.h"

#include <cstdio>

using namespace vega;

int main() {
  std::printf("VEGA quickstart: Stage 1 on getRelocType (paper §2)\n\n");

  // 1. The corpus: a framework tree (LLVMDIRs) + 24 synthetic targets'
  //    description files (TGTDIRs) + golden backend implementations.
  TargetDatabase DB = TargetDatabase::standard();
  BackendCorpus Corpus = BackendCorpus::build(DB);
  std::printf("corpus: %zu targets, %zu files, %zu function groups\n\n",
              DB.targets().size(), Corpus.vfs().size(),
              Corpus.trainingGroups().size());

  // 2. Templatization: fold the 21 training implementations of
  //    getRelocType into one function template.
  for (const FunctionGroup &Group : Corpus.trainingGroups()) {
    if (Group.InterfaceName != "getRelocType")
      continue;
    FunctionTemplate FT = buildFunctionTemplate(Group);
    std::printf("function template (placeholders $SVn are the variant "
                "code):\n%s\n",
                FT.render().c_str());

    // 3. Feature selection (Algorithm 1): Boolean target-independent
    //    properties and string target-dependent properties.
    std::vector<std::string> Names;
    for (const TargetTraits &T : DB.targets())
      Names.push_back(T.Name);
    FeatureSelector Selector(Corpus.vfs(), Names);
    TemplateFeatures Features = Selector.analyze(FT);

    std::printf("target-independent properties (Fig. 3(b)):\n");
    for (const BoolProperty &P : Features.BoolProps) {
      if (!P.Updatable)
        continue;
      std::printf("  %-14s identified at %-22s ARM=%c Mips=%c RISCV=%c\n",
                  P.Name.c_str(), P.IdentifiedSite.c_str(),
                  P.ValuePerTarget.at("ARM") ? 'T' : 'F',
                  P.ValuePerTarget.at("Mips") ? 'T' : 'F',
                  P.ValuePerTarget.at("RISCV") ? 'T' : 'F');
    }

    std::printf("\ntarget-dependent properties and RISC-V values "
                "(Fig. 4(b)):\n");
    std::set<std::string> Printed;
    for (const auto &[RowIdx, Slots] : Features.RowSlots) {
      for (const SlotProperty &S : Slots) {
        if (S.Name.empty() || !Printed.insert(S.Name).second)
          continue;
        auto Values = Selector.harvestValues(S.Name, "RISCV");
        std::string Joined;
        for (size_t I = 0; I < Values.size() && I < 4; ++I)
          Joined += (I ? ", " : "") + Values[I];
        if (Values.size() > 4)
          Joined += ", ...";
        std::printf("  %-14s -> {%s}\n", S.Name.c_str(), Joined.c_str());
      }
    }
    std::printf("\nnext: examples/generate_backend trains CodeBE and emits "
                "the full backend.\n");
    return 0;
  }
  return 1;
}
