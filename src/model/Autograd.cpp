//===- model/Autograd.cpp - Tape-based reverse-mode autodiff ----------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "model/Autograd.h"

#include "support/RNG.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>

using namespace vega;

namespace {

/// The sink receiving gradient writes for tracked tensors on this thread.
thread_local GradSink *ActiveSink = nullptr;

} // namespace

float *Tensor::gradData() {
  if (ActiveSink)
    if (float *Buf = ActiveSink->bufferFor(this))
      return Buf;
  ensureGrad();
  return Grad.data();
}

void GradSink::track(const std::vector<TensorPtr> &Tensors) {
  Tracked.clear();
  Index.clear();
  Tracked.reserve(Tensors.size());
  Index.reserve(Tensors.size());
  Buffers.resize(Tensors.size());
  for (size_t I = 0; I < Tensors.size(); ++I) {
    const Tensor *T = Tensors[I].get();
    Tracked.push_back(T);
    Index.emplace(T, I);
    // Reuse the allocation when the slot held an equal-sized buffer (the
    // steady state across batches); zeroing happens in zero().
    if (Buffers[I].size() != T->Data.size())
      Buffers[I].assign(T->Data.size(), 0.0f);
  }
}

void GradSink::zero() {
  for (std::vector<float> &B : Buffers)
    std::fill(B.begin(), B.end(), 0.0f);
}

float *GradSink::bufferFor(const Tensor *T) {
  auto It = Index.find(T);
  return It == Index.end() ? nullptr : Buffers[It->second].data();
}

GradSink::Scope::Scope(GradSink &S) : Prev(ActiveSink) { ActiveSink = &S; }
GradSink::Scope::~Scope() { ActiveSink = Prev; }

bool GradSink::activeFor(const Tensor *T) {
  return ActiveSink && ActiveSink->bufferFor(T);
}

TensorPtr vega::makeTensor(int Rows, int Cols, bool RequiresGrad) {
  return std::make_shared<Tensor>(Rows, Cols, RequiresGrad);
}

TensorPtr vega::makeParam(int Rows, int Cols, float Scale, uint64_t Seed) {
  TensorPtr T = makeTensor(Rows, Cols, /*RequiresGrad=*/true);
  RNG Rng(Seed);
  for (float &V : T->Data)
    V = static_cast<float>(Rng.nextDouble(-Scale, Scale));
  return T;
}

namespace {

thread_local int NoGradDepth = 0;

TensorPtr makeResult(int Rows, int Cols,
                     std::initializer_list<TensorPtr> Parents) {
  // Under a NoGradGuard the result is a plain value: no parent links (so
  // intermediates die with their last reference) and RequiresGrad=false
  // (so the op skips allocating its backward closure).
  if (NoGradDepth > 0)
    return makeTensor(Rows, Cols, /*RequiresGrad=*/false);
  bool NeedsGrad = false;
  for (const TensorPtr &P : Parents)
    if (P->RequiresGrad || P->Backward)
      NeedsGrad = true;
  // Grad buffers stay unallocated here; backward() materializes them for
  // the tapes it actually walks, so inference never pays for them.
  TensorPtr Out = makeTensor(Rows, Cols, NeedsGrad);
  for (const TensorPtr &P : Parents)
    Out->Parents.push_back(P);
  return Out;
}

} // namespace

NoGradGuard::NoGradGuard() { ++NoGradDepth; }
NoGradGuard::~NoGradGuard() { --NoGradDepth; }
bool NoGradGuard::active() { return NoGradDepth > 0; }

void vega::detail::gemmAccum(const float *A, const float *B, float *C, int M,
                             int K, int N) {
  for (int I = 0; I < M; ++I) {
    const float *ARow = A + static_cast<size_t>(I) * K;
    float *CRow = C + static_cast<size_t>(I) * N;
    int P = 0;
    for (; P + 4 <= K; P += 4) {
      float A0 = ARow[P], A1 = ARow[P + 1], A2 = ARow[P + 2],
            A3 = ARow[P + 3];
      if (A0 != 0.0f && A1 != 0.0f && A2 != 0.0f && A3 != 0.0f) {
        const float *B0 = B + static_cast<size_t>(P) * N;
        const float *B1 = B0 + N, *B2 = B1 + N, *B3 = B2 + N;
        for (int J = 0; J < N; ++J) {
          float Acc = CRow[J];
          Acc += A0 * B0[J];
          Acc += A1 * B1[J];
          Acc += A2 * B2[J];
          Acc += A3 * B3[J];
          CRow[J] = Acc;
        }
      } else {
        // Mixed zero/non-zero rank-4 block: keep the skip-aware scalar
        // schedule so 0·x products are never formed (x may be inf/NaN).
        for (int T = 0; T < 4; ++T) {
          float AV = ARow[P + T];
          if (AV == 0.0f)
            continue;
          const float *BRow = B + static_cast<size_t>(P + T) * N;
          for (int J = 0; J < N; ++J)
            CRow[J] += AV * BRow[J];
        }
      }
    }
    for (; P < K; ++P) {
      float AV = ARow[P];
      if (AV == 0.0f)
        continue;
      const float *BRow = B + static_cast<size_t>(P) * N;
      for (int J = 0; J < N; ++J)
        CRow[J] += AV * BRow[J];
    }
  }
}

void vega::detail::gemmNT(const float *A, const float *B, float *C, int M,
                          int K, int N) {
  constexpr int JT = 4;
  int J = 0;
  if (M >= 8 && N >= JT) {
    // Packed panel path: interleave a 4-row B panel once and stream it for
    // every row of A, turning four strided operand streams into one.
    thread_local std::vector<float> Packed;
    Packed.resize(static_cast<size_t>(JT) * K);
    for (; J + JT <= N; J += JT) {
      const float *B0 = B + static_cast<size_t>(J) * K;
      const float *B1 = B0 + K, *B2 = B1 + K, *B3 = B2 + K;
      for (int P = 0; P < K; ++P) {
        Packed[static_cast<size_t>(P) * JT + 0] = B0[P];
        Packed[static_cast<size_t>(P) * JT + 1] = B1[P];
        Packed[static_cast<size_t>(P) * JT + 2] = B2[P];
        Packed[static_cast<size_t>(P) * JT + 3] = B3[P];
      }
      for (int I = 0; I < M; ++I) {
        const float *ARow = A + static_cast<size_t>(I) * K;
        const float *Pk = Packed.data();
        float C0 = 0.0f, C1 = 0.0f, C2 = 0.0f, C3 = 0.0f;
        for (int P = 0; P < K; ++P) {
          float AV = ARow[P];
          C0 += AV * Pk[0];
          C1 += AV * Pk[1];
          C2 += AV * Pk[2];
          C3 += AV * Pk[3];
          Pk += JT;
        }
        float *CRow = C + static_cast<size_t>(I) * N;
        CRow[J] = C0;
        CRow[J + 1] = C1;
        CRow[J + 2] = C2;
        CRow[J + 3] = C3;
      }
    }
  } else {
    for (; J + JT <= N; J += JT) {
      const float *B0 = B + static_cast<size_t>(J) * K;
      const float *B1 = B0 + K, *B2 = B1 + K, *B3 = B2 + K;
      for (int I = 0; I < M; ++I) {
        const float *ARow = A + static_cast<size_t>(I) * K;
        float C0 = 0.0f, C1 = 0.0f, C2 = 0.0f, C3 = 0.0f;
        for (int P = 0; P < K; ++P) {
          float AV = ARow[P];
          C0 += AV * B0[P];
          C1 += AV * B1[P];
          C2 += AV * B2[P];
          C3 += AV * B3[P];
        }
        float *CRow = C + static_cast<size_t>(I) * N;
        CRow[J] = C0;
        CRow[J + 1] = C1;
        CRow[J + 2] = C2;
        CRow[J + 3] = C3;
      }
    }
  }
  for (; J < N; ++J) {
    const float *BRow = B + static_cast<size_t>(J) * K;
    for (int I = 0; I < M; ++I) {
      const float *ARow = A + static_cast<size_t>(I) * K;
      float Acc = 0.0f;
      for (int P = 0; P < K; ++P)
        Acc += ARow[P] * BRow[P];
      C[static_cast<size_t>(I) * N + J] = Acc;
    }
  }
}

void vega::detail::gemmNTAccum(const float *A, const float *B, float *C,
                               int M, int K, int N) {
  constexpr int JT = 4;
  for (int I = 0; I < M; ++I) {
    const float *ARow = A + static_cast<size_t>(I) * K;
    float *CRow = C + static_cast<size_t>(I) * N;
    int J = 0;
    for (; J + JT <= N; J += JT) {
      const float *B0 = B + static_cast<size_t>(J) * K;
      const float *B1 = B0 + K, *B2 = B1 + K, *B3 = B2 + K;
      float C0 = 0.0f, C1 = 0.0f, C2 = 0.0f, C3 = 0.0f;
      for (int P = 0; P < K; ++P) {
        float AV = ARow[P];
        C0 += AV * B0[P];
        C1 += AV * B1[P];
        C2 += AV * B2[P];
        C3 += AV * B3[P];
      }
      CRow[J] += C0;
      CRow[J + 1] += C1;
      CRow[J + 2] += C2;
      CRow[J + 3] += C3;
    }
    for (; J < N; ++J) {
      const float *BRow = B + static_cast<size_t>(J) * K;
      float Acc = 0.0f;
      for (int P = 0; P < K; ++P)
        Acc += ARow[P] * BRow[P];
      CRow[J] += Acc;
    }
  }
}

void vega::detail::gemmTNAccum(const float *A, const float *G, float *C,
                               int M, int K, int N) {
  for (int I = 0; I < M; ++I) {
    const float *ARow = A + static_cast<size_t>(I) * K;
    const float *GRow = G + static_cast<size_t>(I) * N;
    int P = 0;
    for (; P + 2 <= K; P += 2) {
      float A0 = ARow[P], A1 = ARow[P + 1];
      float *C0 = C + static_cast<size_t>(P) * N;
      float *C1 = C0 + N;
      if (A0 != 0.0f && A1 != 0.0f) {
        for (int J = 0; J < N; ++J) {
          C0[J] += A0 * GRow[J];
          C1[J] += A1 * GRow[J];
        }
      } else {
        if (A0 != 0.0f)
          for (int J = 0; J < N; ++J)
            C0[J] += A0 * GRow[J];
        if (A1 != 0.0f)
          for (int J = 0; J < N; ++J)
            C1[J] += A1 * GRow[J];
      }
    }
    for (; P < K; ++P) {
      float AV = ARow[P];
      if (AV == 0.0f)
        continue;
      float *CRow = C + static_cast<size_t>(P) * N;
      for (int J = 0; J < N; ++J)
        CRow[J] += AV * GRow[J];
    }
  }
}

void vega::detail::quantizeRowsQ8(const float *A, int Rows, int K, int8_t *Q,
                                  float *Scale) {
  for (int I = 0; I < Rows; ++I) {
    const float *Row = A + static_cast<size_t>(I) * K;
    int8_t *QRow = Q + static_cast<size_t>(I) * K;
    float AbsMax = 0.0f;
    for (int P = 0; P < K; ++P) {
      float V = Row[P] < 0.0f ? -Row[P] : Row[P];
      if (V > AbsMax)
        AbsMax = V;
    }
    if (AbsMax == 0.0f) {
      Scale[I] = 0.0f;
      for (int P = 0; P < K; ++P)
        QRow[P] = 0;
      continue;
    }
    float S = AbsMax / 127.0f;
    Scale[I] = S;
    float Inv = 127.0f / AbsMax;
    for (int P = 0; P < K; ++P) {
      // Round-to-nearest, ties away from zero: deterministic and
      // platform-independent (no dependence on the FP rounding mode).
      float V = Row[P] * Inv;
      int Code = static_cast<int>(V >= 0.0f ? V + 0.5f : V - 0.5f);
      if (Code > 127)
        Code = 127;
      if (Code < -127)
        Code = -127;
      QRow[P] = static_cast<int8_t>(Code);
    }
  }
}

// The int8 dot products below are exact integer math, so aggressive
// vectorization cannot change results — scope -O3 to just this kernel
// (int16×int16→int32 widening dots map onto pmaddwd-style SIMD). The fp32
// kernels keep the translation unit's flags: their codegen, and therefore
// the fp32 bit-determinism contract, is untouched.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC push_options
#pragma GCC optimize("O3")
#endif
void vega::detail::gemmNTQ8(const int8_t *QA, const float *ScaleA,
                            const int8_t *QB, const float *ScaleB, float *C,
                            int M, int K, int N) {
  // Widening each A row to int16 once lets the inner loop run int16×int16
  // multiplies (|code| ≤ 127, so every product fits int16 and the int32
  // accumulator is exact for any practical K).
  constexpr int MaxStackK = 1024;
  int16_t Stack[MaxStackK];
  std::vector<int16_t> Heap;
  int16_t *AW = Stack;
  if (K > MaxStackK) {
    Heap.resize(static_cast<size_t>(K));
    AW = Heap.data();
  }
  for (int I = 0; I < M; ++I) {
    const int8_t *ARow = QA + static_cast<size_t>(I) * K;
    for (int P = 0; P < K; ++P)
      AW[P] = ARow[P];
    float *CRow = C + static_cast<size_t>(I) * N;
    const float SA = ScaleA[I];
    for (int J = 0; J < N; ++J) {
      const int8_t *BRow = QB + static_cast<size_t>(J) * K;
      int32_t Acc = 0;
      for (int P = 0; P < K; ++P)
        Acc += AW[P] * static_cast<int16_t>(BRow[P]);
      CRow[J] = static_cast<float>(Acc) * SA * ScaleB[J];
    }
  }
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC pop_options
#endif

TensorPtr vega::matmul(const TensorPtr &A, const TensorPtr &B) {
  assert(A->Cols == B->Rows && "matmul shape mismatch");
  TensorPtr Out = makeResult(A->Rows, B->Cols, {A, B});
  const int M = A->Rows, K = A->Cols, N = B->Cols;
  detail::gemmAccum(A->Data.data(), B->Data.data(), Out->Data.data(), M, K,
                    N);
  Tensor *AP = A.get(), *BP = B.get(), *OP = Out.get();
  if (Out->RequiresGrad)
    Out->Backward = [AP, BP, OP, M, K, N] {
      // dA = dO · Bᵀ ; dB = Aᵀ · dO
      const float *OG = OP->gradData();
      detail::gemmNTAccum(OG, BP->Data.data(), AP->gradData(), M, N, K);
      detail::gemmTNAccum(AP->Data.data(), OG, BP->gradData(), M, K, N);
    };
  return Out;
}

TensorPtr vega::matmulNT(const TensorPtr &A, const TensorPtr &B) {
  assert(A->Cols == B->Cols && "matmulNT shape mismatch");
  TensorPtr Out = makeResult(A->Rows, B->Rows, {A, B});
  const int M = A->Rows, K = A->Cols, N = B->Rows;
  detail::gemmNT(A->Data.data(), B->Data.data(), Out->Data.data(), M, K, N);
  Tensor *AP = A.get(), *BP = B.get(), *OP = Out.get();
  if (Out->RequiresGrad)
    Out->Backward = [AP, BP, OP, M, K, N] {
      // dA = dO · B (dO's zero entries skipped, as the scalar loop did);
      // dB = dOᵀ · A with the same skip.
      const float *OG = OP->gradData();
      detail::gemmAccum(OG, BP->Data.data(), AP->gradData(), M, N, K);
      detail::gemmTNAccum(OG, AP->Data.data(), BP->gradData(), M, N, K);
    };
  return Out;
}

TensorPtr vega::add(const TensorPtr &A, const TensorPtr &B) {
  assert(A->Rows == B->Rows && A->Cols == B->Cols && "add shape mismatch");
  TensorPtr Out = makeResult(A->Rows, A->Cols, {A, B});
  for (size_t I = 0; I < Out->Data.size(); ++I)
    Out->Data[I] = A->Data[I] + B->Data[I];
  Tensor *AP = A.get(), *BP = B.get(), *OP = Out.get();
  if (Out->RequiresGrad)
    Out->Backward = [AP, BP, OP] {
      const float *OG = OP->gradData();
      float *AG = AP->gradData(), *BG = BP->gradData();
      for (size_t I = 0; I < OP->Data.size(); ++I) {
        AG[I] += OG[I];
        BG[I] += OG[I];
      }
    };
  return Out;
}

TensorPtr vega::addRow(const TensorPtr &A, const TensorPtr &B) {
  assert(B->Rows == 1 && B->Cols == A->Cols && "addRow shape mismatch");
  TensorPtr Out = makeResult(A->Rows, A->Cols, {A, B});
  for (int I = 0; I < A->Rows; ++I)
    for (int J = 0; J < A->Cols; ++J)
      Out->at(I, J) = A->at(I, J) + B->Data[static_cast<size_t>(J)];
  Tensor *AP = A.get(), *BP = B.get(), *OP = Out.get();
  if (Out->RequiresGrad)
    Out->Backward = [AP, BP, OP] {
      const float *OG = OP->gradData();
      float *AG = AP->gradData(), *BG = BP->gradData();
      for (int I = 0; I < OP->Rows; ++I)
        for (int J = 0; J < OP->Cols; ++J) {
          float G = OG[static_cast<size_t>(I) * OP->Cols + J];
          AG[static_cast<size_t>(I) * OP->Cols + J] += G;
          BG[static_cast<size_t>(J)] += G;
        }
    };
  return Out;
}

TensorPtr vega::scale(const TensorPtr &A, float Factor) {
  TensorPtr Out = makeResult(A->Rows, A->Cols, {A});
  for (size_t I = 0; I < A->Data.size(); ++I)
    Out->Data[I] = A->Data[I] * Factor;
  Tensor *AP = A.get(), *OP = Out.get();
  if (Out->RequiresGrad)
    Out->Backward = [AP, OP, Factor] {
      const float *OG = OP->gradData();
      float *AG = AP->gradData();
      for (size_t I = 0; I < OP->Data.size(); ++I)
        AG[I] += OG[I] * Factor;
    };
  return Out;
}

TensorPtr vega::scaleByScalar(const TensorPtr &A, const TensorPtr &S) {
  assert(S->Rows == 1 && S->Cols == 1 && "scalar expected");
  TensorPtr Out = makeResult(A->Rows, A->Cols, {A, S});
  float Factor = S->Data[0];
  for (size_t I = 0; I < A->Data.size(); ++I)
    Out->Data[I] = A->Data[I] * Factor;
  Tensor *AP = A.get(), *SP = S.get(), *OP = Out.get();
  if (Out->RequiresGrad)
    Out->Backward = [AP, SP, OP, Factor] {
      const float *OG = OP->gradData();
      float *AG = AP->gradData();
      float SGrad = 0.0f;
      for (size_t I = 0; I < OP->Data.size(); ++I) {
        AG[I] += OG[I] * Factor;
        SGrad += OG[I] * AP->Data[I];
      }
      SP->gradData()[0] += SGrad;
    };
  return Out;
}

TensorPtr vega::relu(const TensorPtr &A) {
  TensorPtr Out = makeResult(A->Rows, A->Cols, {A});
  for (size_t I = 0; I < A->Data.size(); ++I)
    Out->Data[I] = A->Data[I] > 0.0f ? A->Data[I] : 0.0f;
  Tensor *AP = A.get(), *OP = Out.get();
  if (Out->RequiresGrad)
    Out->Backward = [AP, OP] {
      const float *OG = OP->gradData();
      float *AG = AP->gradData();
      for (size_t I = 0; I < OP->Data.size(); ++I)
        if (AP->Data[I] > 0.0f)
          AG[I] += OG[I];
    };
  return Out;
}

TensorPtr vega::softmaxRows(const TensorPtr &A, const Tensor *Mask) {
  TensorPtr Out = makeResult(A->Rows, A->Cols, {A});
  for (int I = 0; I < A->Rows; ++I) {
    float Max = -1e30f;
    for (int J = 0; J < A->Cols; ++J) {
      float V = A->at(I, J) + (Mask ? Mask->at(I, J) : 0.0f);
      Max = std::max(Max, V);
    }
    float Sum = 0.0f;
    for (int J = 0; J < A->Cols; ++J) {
      float V = A->at(I, J) + (Mask ? Mask->at(I, J) : 0.0f);
      float E = std::exp(V - Max);
      Out->at(I, J) = E;
      Sum += E;
    }
    for (int J = 0; J < A->Cols; ++J)
      Out->at(I, J) /= Sum;
  }
  Tensor *AP = A.get(), *OP = Out.get();
  if (Out->RequiresGrad)
    Out->Backward = [AP, OP] {
      const float *OG = OP->gradData();
      float *AG = AP->gradData();
      const int C = OP->Cols;
      for (int I = 0; I < OP->Rows; ++I) {
        const float *OGRow = OG + static_cast<size_t>(I) * C;
        float *AGRow = AG + static_cast<size_t>(I) * C;
        float Dot = 0.0f;
        for (int J = 0; J < C; ++J)
          Dot += OGRow[J] * OP->at(I, J);
        for (int J = 0; J < C; ++J)
          AGRow[J] += OP->at(I, J) * (OGRow[J] - Dot);
      }
    };
  return Out;
}

TensorPtr vega::layerNorm(const TensorPtr &X, const TensorPtr &Gamma,
                          const TensorPtr &Beta) {
  assert(Gamma->Cols == X->Cols && Beta->Cols == X->Cols &&
         "layerNorm parameter shape mismatch");
  TensorPtr Out = makeResult(X->Rows, X->Cols, {X, Gamma, Beta});
  const int C = X->Cols;
  std::vector<float> Mean(X->Rows), InvStd(X->Rows);
  for (int I = 0; I < X->Rows; ++I) {
    float Mu = 0.0f;
    for (int J = 0; J < C; ++J)
      Mu += X->at(I, J);
    Mu /= C;
    float Var = 0.0f;
    for (int J = 0; J < C; ++J) {
      float D = X->at(I, J) - Mu;
      Var += D * D;
    }
    Var /= C;
    float Inv = 1.0f / std::sqrt(Var + 1e-5f);
    Mean[I] = Mu;
    InvStd[I] = Inv;
    for (int J = 0; J < C; ++J)
      Out->at(I, J) =
          (X->at(I, J) - Mu) * Inv * Gamma->Data[static_cast<size_t>(J)] +
          Beta->Data[static_cast<size_t>(J)];
  }
  Tensor *XP = X.get(), *GP = Gamma.get(), *BP = Beta.get(), *OP = Out.get();
  if (Out->RequiresGrad)
    Out->Backward = [XP, GP, BP, OP, Mean, InvStd, C] {
      const float *OG = OP->gradData();
      float *XG = XP->gradData(), *GG = GP->gradData(), *BG = BP->gradData();
      for (int I = 0; I < XP->Rows; ++I) {
        // xhat = (x - mu) * inv; dL/dxhat = dy * gamma.
        const float *OGRow = OG + static_cast<size_t>(I) * C;
        float *XGRow = XG + static_cast<size_t>(I) * C;
        float SumDxhat = 0.0f, SumDxhatXhat = 0.0f;
        std::vector<float> Dxhat(static_cast<size_t>(C));
        for (int J = 0; J < C; ++J) {
          float Xhat = (XP->at(I, J) - Mean[I]) * InvStd[I];
          float Dy = OGRow[J];
          GG[static_cast<size_t>(J)] += Dy * Xhat;
          BG[static_cast<size_t>(J)] += Dy;
          Dxhat[static_cast<size_t>(J)] = Dy * GP->Data[static_cast<size_t>(J)];
          SumDxhat += Dxhat[static_cast<size_t>(J)];
          SumDxhatXhat += Dxhat[static_cast<size_t>(J)] * Xhat;
        }
        for (int J = 0; J < C; ++J) {
          float Xhat = (XP->at(I, J) - Mean[I]) * InvStd[I];
          XGRow[J] += InvStd[I] / C *
                      (C * Dxhat[static_cast<size_t>(J)] - SumDxhat -
                       Xhat * SumDxhatXhat);
        }
      }
    };
  return Out;
}

TensorPtr vega::gatherRows(const TensorPtr &E, const std::vector<int> &Ids) {
  TensorPtr Out = makeResult(static_cast<int>(Ids.size()), E->Cols, {E});
  for (size_t I = 0; I < Ids.size(); ++I) {
    assert(Ids[I] >= 0 && Ids[I] < E->Rows && "gather index out of range");
    for (int J = 0; J < E->Cols; ++J)
      Out->at(static_cast<int>(I), J) = E->at(Ids[I], J);
  }
  Tensor *EP = E.get(), *OP = Out.get();
  std::vector<int> IdsCopy = Ids;
  if (Out->RequiresGrad)
    Out->Backward = [EP, OP, IdsCopy] {
      const float *OG = OP->gradData();
      float *EG = EP->gradData();
      const int C = OP->Cols;
      for (size_t I = 0; I < IdsCopy.size(); ++I)
        for (int J = 0; J < C; ++J)
          EG[static_cast<size_t>(IdsCopy[I]) * C + J] += OG[I * C + J];
    };
  return Out;
}

TensorPtr vega::sliceCols(const TensorPtr &A, int Start, int Count) {
  assert(Start >= 0 && Start + Count <= A->Cols && "slice out of range");
  TensorPtr Out = makeResult(A->Rows, Count, {A});
  for (int I = 0; I < A->Rows; ++I)
    for (int J = 0; J < Count; ++J)
      Out->at(I, J) = A->at(I, Start + J);
  Tensor *AP = A.get(), *OP = Out.get();
  if (Out->RequiresGrad)
    Out->Backward = [AP, OP, Start, Count] {
      const float *OG = OP->gradData();
      float *AG = AP->gradData();
      for (int I = 0; I < OP->Rows; ++I)
        for (int J = 0; J < Count; ++J)
          AG[static_cast<size_t>(I) * AP->Cols + Start + J] +=
              OG[static_cast<size_t>(I) * Count + J];
    };
  return Out;
}

TensorPtr vega::concatCols(const std::vector<TensorPtr> &Parts) {
  assert(!Parts.empty() && "concat of nothing");
  int Rows = Parts.front()->Rows, Cols = 0;
  for (const TensorPtr &P : Parts) {
    assert(P->Rows == Rows && "concat row mismatch");
    Cols += P->Cols;
  }
  TensorPtr Out = makeTensor(Rows, Cols, true);
  for (const TensorPtr &P : Parts)
    Out->Parents.push_back(P);
  int Offset = 0;
  for (const TensorPtr &P : Parts) {
    for (int I = 0; I < Rows; ++I)
      for (int J = 0; J < P->Cols; ++J)
        Out->at(I, Offset + J) = P->at(I, J);
    Offset += P->Cols;
  }
  Tensor *OP = Out.get();
  std::vector<Tensor *> Raw;
  for (const TensorPtr &P : Parts)
    Raw.push_back(P.get());
  if (Out->RequiresGrad)
    Out->Backward = [OP, Raw] {
      const float *OG = OP->gradData();
      int Offset = 0;
      for (Tensor *P : Raw) {
        float *PG = P->gradData();
        for (int I = 0; I < OP->Rows; ++I)
          for (int J = 0; J < P->Cols; ++J)
            PG[static_cast<size_t>(I) * P->Cols + J] +=
                OG[static_cast<size_t>(I) * OP->Cols + Offset + J];
        Offset += P->Cols;
      }
    };
  return Out;
}

TensorPtr vega::copyScatter(const TensorPtr &A, const std::vector<int> &SrcIds,
                            int VocabSize) {
  assert(A->Cols == static_cast<int>(SrcIds.size()) &&
         "copyScatter width must match source length");
  TensorPtr Out = makeResult(A->Rows, VocabSize, {A});
  for (int T = 0; T < A->Rows; ++T)
    for (size_t J = 0; J < SrcIds.size(); ++J)
      Out->at(T, SrcIds[J]) += A->at(T, static_cast<int>(J));
  Tensor *AP = A.get(), *OP = Out.get();
  std::vector<int> Ids = SrcIds;
  if (Out->RequiresGrad)
    Out->Backward = [AP, OP, Ids] {
      const float *OG = OP->gradData();
      float *AG = AP->gradData();
      for (int T = 0; T < AP->Rows; ++T)
        for (size_t J = 0; J < Ids.size(); ++J)
          AG[static_cast<size_t>(T) * AP->Cols + J] +=
              OG[static_cast<size_t>(T) * OP->Cols + Ids[J]];
    };
  return Out;
}

TensorPtr vega::sparseMix(const TensorPtr &E,
                          const std::vector<std::vector<int>> &Lists) {
  TensorPtr Out = makeResult(static_cast<int>(Lists.size()), E->Cols, {E});
  for (size_t I = 0; I < Lists.size(); ++I) {
    if (Lists[I].empty())
      continue;
    float Inv = 1.0f / static_cast<float>(Lists[I].size());
    for (int P : Lists[I])
      for (int J = 0; J < E->Cols; ++J)
        Out->at(static_cast<int>(I), J) += E->at(P, J) * Inv;
  }
  Tensor *EP = E.get(), *OP = Out.get();
  const std::vector<std::vector<int>> *ListsPtr = &Lists;
  // Lists outlive the tape in our usage (owned by the Vocab); copy anyway
  // for safety in tests.
  std::vector<std::vector<int>> ListsCopy = *ListsPtr;
  if (Out->RequiresGrad)
    Out->Backward = [EP, OP, ListsCopy] {
      const float *OG = OP->gradData();
      float *EG = EP->gradData();
      const int C = OP->Cols;
      for (size_t I = 0; I < ListsCopy.size(); ++I) {
        if (ListsCopy[I].empty())
          continue;
        float Inv = 1.0f / static_cast<float>(ListsCopy[I].size());
        for (int P : ListsCopy[I])
          for (int J = 0; J < C; ++J)
            EG[static_cast<size_t>(P) * C + J] += OG[I * C + J] * Inv;
      }
    };
  return Out;
}

TensorPtr vega::crossEntropy(const TensorPtr &Logits,
                             const std::vector<int> &Targets) {
  assert(Logits->Rows == static_cast<int>(Targets.size()) &&
         "one target per logit row");
  TensorPtr Out = makeResult(1, 1, {Logits});
  const int V = Logits->Cols;
  std::vector<float> Probs(Logits->Data.size());
  float Loss = 0.0f;
  for (int I = 0; I < Logits->Rows; ++I) {
    float Max = -1e30f;
    for (int J = 0; J < V; ++J)
      Max = std::max(Max, Logits->at(I, J));
    float Sum = 0.0f;
    for (int J = 0; J < V; ++J) {
      float E = std::exp(Logits->at(I, J) - Max);
      Probs[static_cast<size_t>(I) * V + J] = E;
      Sum += E;
    }
    for (int J = 0; J < V; ++J)
      Probs[static_cast<size_t>(I) * V + J] /= Sum;
    Loss -= std::log(Probs[static_cast<size_t>(I) * V + Targets[I]] + 1e-12f);
  }
  Out->Data[0] = Loss / static_cast<float>(Logits->Rows);
  Tensor *LP = Logits.get(), *OP = Out.get();
  std::vector<int> T = Targets;
  if (Out->RequiresGrad)
    Out->Backward = [LP, OP, Probs, T, V] {
      float Scale = OP->gradData()[0] / static_cast<float>(LP->Rows);
      float *LG = LP->gradData();
      for (int I = 0; I < LP->Rows; ++I)
        for (int J = 0; J < V; ++J) {
          float P = Probs[static_cast<size_t>(I) * V + J];
          LG[static_cast<size_t>(I) * V + J] +=
              Scale * (P - (J == T[I] ? 1.0f : 0.0f));
        }
    };
  return Out;
}

static void topoSort(Tensor *Node, std::vector<Tensor *> &Order,
                     std::unordered_set<const Tensor *> &Seen) {
  if (!Seen.insert(Node).second)
    return;
  for (const TensorPtr &P : Node->Parents)
    topoSort(P.get(), Order, Seen);
  Order.push_back(Node);
}

void vega::backward(const TensorPtr &Root) {
  // The visited set lives on this stack frame (not in the tensors), so
  // tapes that share nodes can be walked from several threads at once.
  std::vector<Tensor *> Order;
  std::unordered_set<const Tensor *> Seen;
  topoSort(Root.get(), Order, Seen);
  // Gradients are lazy: materialize them only for the tape actually being
  // walked. Existing buffers (mid-batch accumulation) are left untouched.
  // Tensors tracked by this thread's GradSink accumulate into the sink's
  // buffers instead — never touch their shared Grad storage here.
  for (Tensor *Node : Order)
    if (!GradSink::activeFor(Node))
      Node->ensureGrad();
  float *RootGrad = Root->gradData();
  std::fill(RootGrad, RootGrad + Root->Data.size(), 0.0f);
  RootGrad[0] = 1.0f;
  for (auto It = Order.rbegin(); It != Order.rend(); ++It)
    if ((*It)->Backward)
      (*It)->Backward();
}

AdamOptimizer::AdamOptimizer(std::vector<TensorPtr> Params,
                             float LearningRate)
    : Params(std::move(Params)), LearningRate(LearningRate) {
  for (const TensorPtr &P : this->Params) {
    P->ensureGrad();
    M.emplace_back(P->Data.size(), 0.0f);
    V.emplace_back(P->Data.size(), 0.0f);
  }
}

void AdamOptimizer::step() {
  ++StepCount;
  float Bias1 = 1.0f - std::pow(Beta1, static_cast<float>(StepCount));
  float Bias2 = 1.0f - std::pow(Beta2, static_cast<float>(StepCount));
  for (size_t P = 0; P < Params.size(); ++P) {
    Tensor &T = *Params[P];
    for (size_t I = 0; I < T.Data.size(); ++I) {
      float G = T.Grad[I];
      M[P][I] = Beta1 * M[P][I] + (1.0f - Beta1) * G;
      V[P][I] = Beta2 * V[P][I] + (1.0f - Beta2) * G * G;
      float MHat = M[P][I] / Bias1;
      float VHat = V[P][I] / Bias2;
      T.Data[I] -= LearningRate * MHat / (std::sqrt(VHat) + Eps);
    }
    T.zeroGrad();
  }
}

void AdamOptimizer::zeroGrad() {
  for (const TensorPtr &P : Params)
    P->zeroGrad();
}
