file(REMOVE_RECURSE
  "CMakeFiles/vega_core.dir/Pipeline.cpp.o"
  "CMakeFiles/vega_core.dir/Pipeline.cpp.o.d"
  "libvega_core.a"
  "libvega_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vega_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
