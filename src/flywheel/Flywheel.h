//===- flywheel/Flywheel.h - Self-training repair flywheel -------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The self-training repair flywheel: N *generations* of
/// generate → evaluate → repair → harvest → fine-tune → re-evaluate over a
/// trained VegaSystem. Every oracle-validated repair the RepairEngine
/// commits is ground truth the model never saw during Stage 2; each
/// generation turns those repairs into new positive training pairs (and,
/// optionally, the oracle-refuted high-confidence beam candidates into
/// down-weighted hard negatives), dedupes them against the corpus by
/// content fingerprint, fine-tunes the live model, and re-evaluates.
///
/// Weight commits are acceptance-gated: a generation's fine-tuned weights
/// are kept only when the aggregate post-repair pass@1 did not fall AND the
/// repair-reliance ratio (the share of passing functions that needed
/// repair) did not rise; otherwise the weights revert to the pre-round
/// snapshot and the trajectory stays flat. The committed trajectory is
/// therefore monotone by construction — the same never-regress bar the
/// RepairEngine's oracle gate sets per function, lifted to generations.
///
/// Resume: with OutDir set, each generation persists three artifacts —
/// gen-<k>.vega (a full session checkpoint of the post-gate weights),
/// gen-<k>.harvest.json (the pairs actually added to the corpus), and
/// gen-<k>.report.json (the generation's stats). Re-running over a partial
/// directory with the same options replays the harvests, restores the last
/// checkpoint's weights, and recomputes only the missing generations —
/// byte-identical to the uninterrupted run (DESIGN.md §17).
///
/// Determinism contract: the FlywheelReport (and every persisted artifact)
/// is byte-identical at any --jobs / --train-jobs, and across an
/// interrupt + resume.
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_FLYWHEEL_FLYWHEEL_H
#define VEGA_FLYWHEEL_FLYWHEEL_H

#include "core/Pipeline.h"
#include "eval/Oracle.h"
#include "support/Json.h"
#include "support/Status.h"

#include <string>
#include <vector>

namespace vega {
namespace flywheel {

/// Everything one flywheel run needs.
struct FlywheelOptions {
  /// Evaluation targets driven each generation (must exist in the corpus).
  std::vector<std::string> Targets;
  /// Fine-tune generations to run (the report additionally records the
  /// generation-0 baseline).
  int Generations = 3;
  /// Epochs per per-generation fine-tuning round.
  int FineTuneEpochs = 2;
  /// RepairEngine budgets (see repair/RepairEngine.h).
  int BeamWidth = 4;
  int MaxRounds = 2;
  /// Gating oracle for repair and evaluation (text | differential | both).
  eval::OracleKind Oracle = eval::OracleKind::Text;
  /// Harvest oracle-refuted high-confidence candidates as hard negatives.
  bool HarvestNegatives = true;
  /// Per-example loss weights for harvested pairs.
  float PositiveWeight = 1.0f;
  float NegativeWeight = 0.25f;
  /// Minimum model confidence for a refuted candidate to harvest.
  double NegativeConfidenceFloor = 0.5;
  /// Artifact directory (created if missing). Empty disables persistence
  /// and resume — the run is purely in-memory.
  std::string OutDir;
  /// Salts the per-generation fine-tune seeds (generation k trains with
  /// Seed ^ (0xf17ee1 + k), so a rejected round retries differently).
  uint64_t Seed = 42;
  /// Stage-3 generation + repair lanes (<= 0: auto). Byte-identical output
  /// for every value.
  int Jobs = 0;
  bool Verbose = false;

  /// InvalidArgument naming the first out-of-range field.
  Status validate() const;
};

/// Per-target slice of one generation's re-evaluation (post-repair unless
/// named otherwise). Counts use the repair population: functions with a
/// golden implementation or a generated one.
struct TargetGenStats {
  std::string Target;
  size_t Functions = 0;      ///< evaluated population
  size_t GreedyAccurate = 0; ///< passing before repair (greedy pass@1)
  size_t Accurate = 0;       ///< passing after repair
  size_t FunctionsFlagged = 0;
  size_t FunctionsRepaired = 0; ///< passing only thanks to repair
  size_t StatementsAutoRepaired = 0;
  double GreedyPass1 = 0.0; ///< GreedyAccurate / Functions
  double Pass1 = 0.0;       ///< Accurate / Functions (the pass@k headline)
  double StatementAccuracy = 0.0;
  double ErrVRate = 0.0, ErrCSRate = 0.0, ErrDefRate = 0.0;
  double DivValRate = 0.0, DivTrapRate = 0.0, DivEffRate = 0.0;
  /// Pairs harvested *for* this generation's fine-tune from this target's
  /// previous-generation repair run (zero for the baseline).
  size_t HarvestedPositives = 0;
  size_t HarvestedNegatives = 0;
};

/// One generation's record. Generation 0 is the baseline evaluation of the
/// incoming model (no harvest, no fine-tune, always accepted).
struct GenerationStats {
  int Generation = 0;
  /// Aggregate post-repair accuracy over all targets — the gated,
  /// monotone-non-decreasing headline.
  double Pass1 = 0.0;
  /// Aggregate pre-repair (greedy) accuracy.
  double GreedyPass1 = 0.0;
  /// FunctionsRepaired / Accurate over all targets — the share of passing
  /// functions that needed repair; gated monotone non-increasing.
  double RepairReliance = 0.0;
  /// False when the acceptance gate reverted this generation's weights
  /// (its eval columns then repeat the previous generation's).
  bool Accepted = true;
  size_t HarvestedPositives = 0;
  size_t HarvestedNegatives = 0;
  size_t PairsAdded = 0;      ///< harvested pairs appended to the corpus
  size_t PairsDeduped = 0;    ///< dropped by the content-fingerprint dedup
  size_t PairsSkippedOov = 0; ///< dropped for out-of-vocabulary tokens
  /// Final-epoch mean loss of this generation's fine-tuning round.
  double TrainMeanLoss = 0.0;
  std::vector<TargetGenStats> Targets;
};

/// The full result of one FlywheelEngine::run().
struct FlywheelReport {
  FlywheelOptions Options; ///< the options the run actually used
  /// Generations[0] is the baseline; then one entry per fine-tune
  /// generation, in order.
  std::vector<GenerationStats> Generations;
  int GenerationsRun = 0;     ///< generations computed in this process
  int GenerationsResumed = 0; ///< generations restored from OutDir artifacts
  size_t TotalPairsAdded = 0; ///< corpus growth across all generations
};

/// JSON renderings ("vega-flywheel-1"): the CLI --json payload, the resume
/// artifacts, and the bench section all share these.
Json generationToJson(const GenerationStats &Gen);
StatusOr<GenerationStats> generationFromJson(const Json &Doc);
Json reportToJson(const FlywheelReport &Report);
StatusOr<FlywheelReport> reportFromJson(const Json &Doc);

/// The generate→repair→harvest→fine-tune→re-evaluate driver. Holds a
/// trained VegaSystem (templates built, dataset built, model trained) whose
/// corpus and weights it mutates in place: augmentTrainingPairs() grows the
/// training set and accepted generations keep their fine-tuned weights.
/// It never writes the system's weight cache — per-generation weights live
/// in the OutDir checkpoints.
class FlywheelEngine {
public:
  FlywheelEngine(VegaSystem &System, FlywheelOptions Options);

  /// Runs (or resumes) the whole schedule. InvalidArgument when the options
  /// fail validation or a target is unknown; FailedPrecondition when OutDir
  /// artifacts were written under different options.
  StatusOr<FlywheelReport> run();

  const FlywheelOptions &options() const { return Options; }

private:
  VegaSystem &System;
  FlywheelOptions Options;
};

} // namespace flywheel
} // namespace vega

#endif // VEGA_FLYWHEEL_FLYWHEEL_H
