file(REMOVE_RECURSE
  "CMakeFiles/robustness_regression.dir/robustness_regression.cpp.o"
  "CMakeFiles/robustness_regression.dir/robustness_regression.cpp.o.d"
  "robustness_regression"
  "robustness_regression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robustness_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
