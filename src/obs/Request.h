//===- obs/Request.h - Request-scoped telemetry context ----------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-request identity for the serving layer: a RequestContext carries a
/// process-monotonic request ID, an optional deadline, and a bounded ring
/// buffer of the spans that closed while the request was current (the
/// "flight recorder" dumped for slow requests). A thread-local current
/// context is installed with RequestScope; Span picks it up automatically,
/// tagging every recorded trace event with its originating request ID and
/// appending a lightweight record to the ring buffer.
///
/// Batched fan-outs (one generateMany() serving several deduped requests)
/// install a RequestRouter mapping a work key — the target name — to the
/// originating request, so per-item code can rebind the correct context
/// with `RequestScope Scope(boundRequest(Key))`. Both thread-locals hop
/// across ThreadPool lanes via the pool's context propagator, which this
/// translation unit registers at static-init time.
///
/// Outside a request (every offline vega-cli / bench path) the only cost is
/// one thread-local load per span — the near-zero disabled path is intact.
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_OBS_REQUEST_H
#define VEGA_OBS_REQUEST_H

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace vega {
namespace obs {

/// Identity + telemetry state for one in-flight request. Created once per
/// request (at submission, so elapsed time includes queue wait) and shared
/// by every thread that works on the request's behalf. Thread-safe.
class RequestContext {
public:
  /// One completed span, relative to the request epoch. Deliberately small:
  /// the ring holds the most recent kDefaultRingCapacity of them.
  struct SpanRecord {
    std::string Name;
    std::string Category;
    double StartUs = 0.0; ///< microseconds since the request was created
    double DurUs = 0.0;
    uint64_t ThreadId = 0;
  };

  static constexpr size_t kDefaultRingCapacity = 64;

  explicit RequestContext(std::string Method = "",
                          size_t RingCapacity = kDefaultRingCapacity);

  /// Process-monotonic ID (starts at 1; never reused within a process).
  uint64_t id() const { return Id; }

  const std::string &method() const { return Method; }
  void setMethod(std::string M) { Method = std::move(M); }

  /// Milliseconds since the context was created.
  double elapsedMs() const;

  /// Microseconds from the request epoch to \p T (the span-record timebase).
  double sinceStartUs(std::chrono::steady_clock::time_point T) const;

  /// Arms the deadline \p Ms milliseconds after the request was created
  /// (not after now). Non-positive \p Ms leaves the request deadline-free.
  void setDeadlineAfterMs(double Ms);
  bool hasDeadline() const { return HasDeadline; }
  bool expired() const;

  /// Appends one completed span to the ring buffer, evicting the oldest
  /// record once the ring is full.
  void recordSpan(SpanRecord Record);

  /// The ring contents in chronological (record) order.
  std::vector<SpanRecord> spans() const;

  /// Total spans ever recorded / evicted-because-full.
  uint64_t spansRecorded() const;
  uint64_t spansDropped() const;

  /// The calling thread's current request (nullptr outside a request).
  static RequestContext *current();

private:
  friend class RequestScope;

  uint64_t Id;
  std::string Method;
  std::chrono::steady_clock::time_point Start;
  std::chrono::steady_clock::time_point Deadline{};
  bool HasDeadline = false;

  mutable std::mutex Mu;
  std::vector<SpanRecord> Ring; ///< circular once Recorded >= capacity
  size_t RingCapacity;
  uint64_t Recorded = 0; ///< guarded by Mu
};

/// RAII installer for the thread-local current request. A null \p Ctx keeps
/// whatever context is already current (so per-item rebinding code can pass
/// the possibly-null result of boundRequest() unconditionally).
class RequestScope {
public:
  explicit RequestScope(RequestContext *Ctx);
  ~RequestScope();
  RequestScope(const RequestScope &) = delete;
  RequestScope &operator=(const RequestScope &) = delete;

private:
  RequestContext *Prev = nullptr;
  bool Installed = false;
};

/// Key → originating-request map for one batched fan-out. The first bind
/// for a key wins: when several batched requests dedup onto one generation,
/// the spans are attributed to the request that caused the work.
class RequestRouter {
public:
  void bind(const std::string &Key, RequestContext *Ctx);
  RequestContext *lookup(const std::string &Key) const;
  size_t size() const { return ByKey.size(); }

  /// The calling thread's current router (nullptr outside a fan-out).
  static const RequestRouter *current();

private:
  std::map<std::string, RequestContext *> ByKey;
};

/// RAII installer for the thread-local current router.
class RouterScope {
public:
  explicit RouterScope(const RequestRouter *Router);
  ~RouterScope();
  RouterScope(const RouterScope &) = delete;
  RouterScope &operator=(const RouterScope &) = delete;

private:
  const RequestRouter *Prev = nullptr;
};

/// The request bound to \p Key under the current router; nullptr when no
/// router is installed or the key is unbound.
RequestContext *boundRequest(const std::string &Key);

} // namespace obs
} // namespace vega

#endif // VEGA_OBS_REQUEST_H
