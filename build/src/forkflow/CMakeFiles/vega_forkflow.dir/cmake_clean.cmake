file(REMOVE_RECURSE
  "CMakeFiles/vega_forkflow.dir/ForkFlow.cpp.o"
  "CMakeFiles/vega_forkflow.dir/ForkFlow.cpp.o.d"
  "libvega_forkflow.a"
  "libvega_forkflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vega_forkflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
