file(REMOVE_RECURSE
  "libvega_ast.a"
)
