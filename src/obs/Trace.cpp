//===- obs/Trace.cpp - Pipeline-wide tracing ---------------------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include "obs/Request.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <thread>

using namespace vega;
using namespace vega::obs;

namespace {

/// Per-thread span nesting depth (only maintained while recording).
thread_local int CurrentDepth = 0;

uint64_t currentThreadId() {
  thread_local uint64_t Id =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return Id;
}

std::string formatUs(double Us) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.3f", Us);
  return Buf;
}

} // namespace

std::string obs::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

TraceRecorder &TraceRecorder::instance() {
  static TraceRecorder Recorder;
  return Recorder;
}

TraceRecorder::TraceRecorder() : Epoch(std::chrono::steady_clock::now()) {}

double
TraceRecorder::sinceEpochUs(std::chrono::steady_clock::time_point T) const {
  return std::chrono::duration<double, std::micro>(T - Epoch).count();
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Events.clear();
}

size_t TraceRecorder::eventCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Events.size();
}

void TraceRecorder::record(TraceEvent E) {
  std::lock_guard<std::mutex> Lock(Mu);
  Events.push_back(std::move(E));
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::vector<TraceEvent> Copy;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Copy = Events;
  }
  std::sort(Copy.begin(), Copy.end(),
            [](const TraceEvent &A, const TraceEvent &B) {
              return A.StartUs < B.StartUs;
            });
  return Copy;
}

std::string TraceRecorder::exportChromeTrace() const {
  std::vector<TraceEvent> Sorted = snapshot();
  // Fold the full-width thread-id hashes to dense tids by first appearance
  // in start order; a modulo fold could alias two threads onto one row.
  std::map<uint64_t, uint64_t> TidByThread;
  for (const TraceEvent &E : Sorted)
    TidByThread.emplace(E.ThreadId, TidByThread.size());
  std::string Out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool First = true;
  for (const TraceEvent &E : Sorted) {
    if (!First)
      Out += ",";
    First = false;
    Out += "\n{\"name\":\"" + jsonEscape(E.Name) + "\",\"cat\":\"" +
           jsonEscape(E.Category) + "\",\"ph\":\"X\",\"ts\":" +
           formatUs(E.StartUs) + ",\"dur\":" + formatUs(E.DurUs) +
           ",\"pid\":1,\"tid\":" +
           std::to_string(TidByThread.at(E.ThreadId)) + ",\"args\":{";
    bool FirstArg = true;
    for (const auto &[K, V] : E.Args) {
      if (!FirstArg)
        Out += ",";
      FirstArg = false;
      Out += "\"" + jsonEscape(K) + "\":\"" + jsonEscape(V) + "\"";
    }
    if (!FirstArg)
      Out += ",";
    Out += "\"depth\":\"" + std::to_string(E.Depth) + "\"}}";
  }
  Out += "\n]}\n";
  return Out;
}

bool TraceRecorder::writeChromeTrace(const std::string &Path) const {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << exportChromeTrace();
  return static_cast<bool>(Out);
}

Span::Span(std::string Name, std::string Category)
    : Name(std::move(Name)), Category(std::move(Category)),
      Start(std::chrono::steady_clock::now()),
      Ctx(RequestContext::current()),
      Recording(TraceRecorder::instance().enabled()) {
  if (Recording) {
    Depth = CurrentDepth++;
    TrackedDepth = true;
    if (Ctx)
      Args.emplace_back("req", std::to_string(Ctx->id()));
  }
}

Span::~Span() { close(); }

void Span::arg(const std::string &Key, std::string Value) {
  if (Recording && !Closed)
    Args.emplace_back(Key, std::move(Value));
}

double Span::seconds() const {
  if (Closed)
    return ElapsedSec;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

double Span::close() {
  if (Closed)
    return ElapsedSec;
  auto End = std::chrono::steady_clock::now();
  ElapsedSec = std::chrono::duration<double>(End - Start).count();
  Closed = true;
  // Depth is balanced against TrackedDepth, not the recorder's *current*
  // enabled state: a toggle mid-span must not leave CurrentDepth skewed.
  if (TrackedDepth)
    --CurrentDepth;
  // The flight-recorder ring captures the span whether or not the global
  // recorder is on — slow-request dumps work without --trace-out.
  if (Ctx) {
    RequestContext::SpanRecord R;
    R.Name = Name;
    R.Category = Category;
    R.StartUs = Ctx->sinceStartUs(Start);
    R.DurUs = ElapsedSec * 1e6;
    R.ThreadId = currentThreadId();
    Ctx->recordSpan(std::move(R));
  }
  if (Recording) {
    TraceRecorder &Rec = TraceRecorder::instance();
    TraceEvent E;
    E.Name = std::move(Name);
    E.Category = std::move(Category);
    E.StartUs = Rec.sinceEpochUs(Start);
    E.DurUs = ElapsedSec * 1e6;
    E.ThreadId = currentThreadId();
    E.Depth = Depth;
    E.Args = std::move(Args);
    Rec.record(std::move(E));
  }
  return ElapsedSec;
}
