//===- core/Pipeline.h - The VEGA system -------------------------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top-level VEGA system (Fig. 5): Stage 1 Code-Feature Mapping
/// (templates + Algorithm 1 + feature vectors), Stage 2 Model Creation
/// (CodeBE fine-tuning with Eq. (1) confidence labels), and Stage 3
/// Target-Specific Code Generation (backend synthesis for a new target from
/// its description files alone, with per-statement confidence scores).
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_CORE_PIPELINE_H
#define VEGA_CORE_PIPELINE_H

#include "feature/FeatureSelector.h"
#include "model/CodeBE.h"
#include "model/Trainer.h"
#include "support/Status.h"
#include "support/ThreadPool.h"

#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>

namespace vega {

/// One analyzed function template: the template, its features, and derived
/// per-row metadata.
struct TemplateInfo {
  FunctionTemplate FT;
  TemplateFeatures Features;
  /// Row → parent row (nullptr for body-level rows and the definition).
  std::map<const TemplateRow *, const TemplateRow *> Parent;
  /// Repeatable row → index of the slot whose property drives expansion.
  std::map<const TemplateRow *, size_t> PrimarySlot;
};

/// Configuration of a VEGA run.
struct VegaOptions {
  CodeBEConfig Model;
  /// Statements below this confidence are dropped (§3.3, fixed 0.5).
  double ConfidenceThreshold = 0.5;
  /// Optional path for caching the fine-tuned weights across processes.
  std::string WeightCachePath;
  bool Verbose = false;
  /// §4.1.2: function-group-based (default) vs backend-based split.
  enum class SplitKind { FunctionGroup, BackendBased };
  SplitKind Split = SplitKind::FunctionGroup;
  double TrainFraction = 0.75;
  uint64_t SplitSeed = 123;
  /// Cap on candidates when expanding repeatable rows.
  int MaxCandidatesPerRow = 40;
  /// Feature ablations (DESIGN.md §5).
  bool UseTargetDependentValues = true;
  bool UseTargetIndependentBools = true;
  /// Stage-3 generation lanes (vega-cli --jobs=N). <= 0 means auto:
  /// VEGA_JOBS when set, else hardware_concurrency. Generated backends are
  /// byte-identical for every job count.
  int Jobs = 0;
  /// Stage-2 training lanes (vega-cli --train-jobs=N). <= 0 inherits Jobs
  /// (and through it VEGA_JOBS / hardware concurrency). Trained weights
  /// are bit-identical for every job count — like Jobs, this is a runtime
  /// knob excluded from fingerprint().
  int TrainJobs = 0;
  /// Inference precision of the Stage-3 vocabulary projection
  /// (vega-cli/vega-serve --precision={fp32,int8}). Training always runs
  /// fp32 and checkpoints always store fp32 weights, so this is a runtime
  /// knob excluded from fingerprint() — SessionTest proves the saved .vega
  /// artifact is byte-identical under either setting. Output under a given
  /// precision is byte-deterministic at any Jobs count; int8 output is NOT
  /// byte-equal to fp32 output (DESIGN.md §14).
  Precision InferencePrecision = Precision::FP32;
  /// Decode fast paths that reuse work across plan positions and group
  /// members (pinned-step logit skip, group-level KV prefix sharing).
  /// On/off is byte-identical by construction; off is the reference path
  /// for the CI equivalence smoke.
  bool PrefixSharing = true;

  /// The weight-cache path the system will actually touch: absolute paths
  /// are used verbatim; relative paths resolve under $VEGA_CACHE_DIR when
  /// that is set and non-empty, else under the current directory (the
  /// historical behavior). Empty stays empty (caching disabled). README
  /// "Weight caches" documents the precedence.
  std::string resolvedWeightCachePath() const;

  /// Stable hash of every option that shapes the trained session state
  /// (model architecture + training schedule + dataset split + feature
  /// ablations + candidate caps). Runtime knobs that cannot invalidate a
  /// trained artifact — Jobs, Verbose, WeightCachePath, ConfidenceThreshold,
  /// InferencePrecision, PrefixSharing — are deliberately excluded. Session
  /// checkpoints store this and refuse to load under mismatched options.
  uint64_t fingerprint() const;
};

/// One generated statement with its confidence score.
struct GeneratedStatement {
  int RowIndex = -1;
  double Confidence = 0.0;
  bool Emitted = false; ///< false when Confidence < threshold
  std::vector<Token> Tokens;
  std::string CandidateValue; ///< expansion value for repeatable rows
  /// Enclosing candidate value at decode time (the Ctx of the feature
  /// vector). Together with (RowIndex, CandidateValue) this identifies the
  /// decode site exactly, so the repair engine can re-decode it.
  std::string CtxValue;
};

/// Identity of one decode site inside a function's template walk: the
/// template row, the repeatable-expansion candidate value (empty for
/// non-repeatable rows), and the enclosing candidate context. The repair
/// engine keys its per-site overrides on (RowIndex, CandidateValue);
/// CtxValue reproduces the exact feature vector for re-decoding.
struct DecodeSite {
  int RowIndex = -1;
  std::string CandidateValue;
  std::string CtxValue;
};

/// One generated function.
struct GeneratedFunction {
  std::string InterfaceName;
  BackendModule Module = BackendModule::SEL;
  double Confidence = 0.0; ///< the definition row's score (§3.4)
  bool Emitted = false;    ///< definition confidence reached the threshold
  FunctionAST AST;         ///< assembled statement tree (valid when Emitted)
  std::vector<GeneratedStatement> Statements;
  /// True when the emitted rows are not all supported by any single
  /// training target (Fig. 8's "derived from multiple targets").
  bool MultiTargetDerived = false;
  /// Wall-clock generation time, derived from this function's obs span
  /// (gen.<module>) so traces and Fig. 7 agree by construction.
  double Seconds = 0.0;
};

/// One harvested training pair to append to the Stage-1 corpus (the
/// flywheel's currency): token sequences in the same function-group
/// representation collectPairsForTarget emits — Src a feature vector, Dst a
/// CS-bucket token, statement tokens, and [EOS] — plus a per-example loss
/// weight (1.0 for oracle-validated positives, fractional for hard
/// negatives).
struct AugmentedPair {
  std::vector<std::string> Src, Dst;
  std::string Target;
  float Weight = 1.0f;
};

/// A full generated backend (Stage 3 output).
struct GeneratedBackend {
  std::string TargetName;
  std::vector<GeneratedFunction> Functions;
  /// Wall-clock generation time per module (Fig. 7) — the sum of the
  /// gen.<module> span durations recorded while generating.
  std::map<BackendModule, double> ModuleSeconds;

  const GeneratedFunction *find(const std::string &InterfaceName) const;
  double totalSeconds() const;
};

/// The end-to-end system.
class VegaSystem {
public:
  VegaSystem(const BackendCorpus &Corpus, VegaOptions Options);
  ~VegaSystem();

  /// Stage 1: builds templates and runs feature selection over the training
  /// groups. Returns elapsed seconds.
  double buildTemplates();

  /// Builds the fine-tuning dataset (train + verification split) and the
  /// vocabulary. Requires buildTemplates().
  void buildDataset();

  /// Outcome of a weight-cache probe (see initModelFromCache()).
  enum class WeightCacheStatus {
    Disabled, ///< no WeightCachePath configured
    Missing,  ///< cache file absent or unreadable
    Loaded,   ///< cached vocabulary + weights restored
    Mismatch, ///< cache exists but does not match the current state
  };

  /// Constructs a fresh CodeBE and attempts to restore cached weights from
  /// Options.WeightCachePath. On Mismatch, \p Detail (when non-null)
  /// receives a one-line reason. The model is left ready for fineTune()
  /// whenever the result is not Loaded.
  WeightCacheStatus initModelFromCache(std::string *Detail = nullptr);

  /// Stage 2 proper: fine-tunes the (already constructed) model on the
  /// built dataset via model::Trainer and writes the weight cache.
  /// Requires initModelFromCache() to have run. InvalidArgument when the
  /// derived TrainOptions fail validation; Unavailable when the weight
  /// cache cannot be written.
  Status fineTune();

  /// Stage 2: fine-tunes CodeBE (or loads cached weights). Convenience
  /// wrapper over initModelFromCache() + fineTune() that keeps the
  /// historical lenient behavior: a mismatched cache is ignored (with a
  /// note when Verbose) and the model retrains. VegaSession::build is the
  /// strict consumer — it surfaces Mismatch as a Status instead.
  Status trainModel();

  /// The training schedule the next fineTune() will run: Options.Model's
  /// epochs/batch/LR/seed with Jobs resolved as TrainJobs, falling back to
  /// Jobs (exposed for the CLI and tests).
  model::TrainOptions trainOptions() const;

  /// Outcome of one augmentTrainingPairs() call.
  struct AugmentResult {
    size_t Added = 0;      ///< pairs appended to the training corpus
    size_t Deduped = 0;    ///< dropped: content fingerprint already present
    size_t SkippedOov = 0; ///< dropped: empty side or out-of-vocab token
  };

  /// Appends harvested pairs to the training corpus. Each pair is content-
  /// fingerprinted over its Src and Dst tokens and dropped when the
  /// fingerprint is already present (in the Stage-1 dataset or a previous
  /// augmentation — replaying the same harvest log therefore reconstructs
  /// the exact dedup state). Pairs with an empty side or a token outside
  /// the frozen vocabulary are skipped: the model's embeddings are sized at
  /// buildDataset() time and augmentation never regrows them. Weights ride
  /// along for fineTuneRound(); the base corpus weighs 1.0. Requires
  /// buildDataset().
  AugmentResult augmentTrainingPairs(const std::vector<AugmentedPair> &Pairs);

  /// One incremental fine-tuning round over the current (possibly
  /// augmented) training corpus: the trainOptions() schedule with Epochs
  /// and Seed overridden and the per-example augmentation weights attached.
  /// Unlike fineTune() this never writes the weight cache — a flywheel
  /// generation's weights belong to its own .vega checkpoint, not the
  /// shared cache of the pristine Stage-2 model. Requires a constructed
  /// model (initModelFromCache()/trainModel()).
  StatusOr<model::TrainResult> fineTuneRound(int Epochs, uint64_t Seed);

  /// Exact Match on the held-out verification pairs (§4.1.2).
  double verificationExactMatch(size_t MaxPairs = 0);

  /// Stage 3: generates a backend for \p TargetName from its description
  /// files. The target must exist in the corpus target database.
  GeneratedBackend generateBackend(const std::string &TargetName);

  /// Batched Stage 3: generates backends for several targets in one fan-out
  /// — every (target, function) pair becomes one task on the shared worker
  /// pool, and results are merged back per target in template order, so
  /// each returned backend is byte-identical to a standalone
  /// generateBackend() call for that target at any job count. This is the
  /// engine under the vega-serve request batcher.
  std::vector<GeneratedBackend>
  generateBackends(const std::vector<std::string> &TargetNames);

  /// An in-flight Stage-3 generation for one target: the applicable
  /// function templates as independent decode units plus their per-unit
  /// results. Obtained from beginGenerate(); advanced by stepGenerate() /
  /// runGenerateUnits(); folded into a backend by finishGenerate(). Units
  /// are independent (each decodes one function against read-only system
  /// state), so units from any mix of handles can share one pool fan-out —
  /// the per-request currency of the serve scheduler's continuous batching.
  class GenerationHandle {
  public:
    GenerationHandle() = default;
    const std::string &target() const { return Target; }
    size_t unitCount() const { return Units.size(); }
    size_t unitsExecuted() const { return Executed; }
    /// Every unit executed — finishGenerate() will only merge.
    bool complete() const { return Executed == Units.size(); }
    /// Claims the next unclaimed unit index; nullopt when all are claimed.
    /// Every claimed unit must reach runGenerateUnits()/the claimer before
    /// finishGenerate().
    std::optional<size_t> claimUnit() {
      if (Cursor >= Units.size())
        return std::nullopt;
      return Cursor++;
    }

  private:
    friend class VegaSystem;
    std::string Target;
    std::vector<const TemplateInfo *> Units;
    std::vector<GeneratedFunction> Results; ///< index-parallel with Units
    size_t Cursor = 0;                      ///< next unit to claim
    size_t Executed = 0;                    ///< units run to completion
  };

  /// Opens a generation handle for \p TargetName: one unit per applicable
  /// template (DIS templates are skipped for targets without a
  /// disassembler, exactly like generateBackends), model prepared for
  /// concurrent decode. Target validation is the caller's job, matching
  /// generateBackend() (VegaSession::beginGenerate validates).
  GenerationHandle beginGenerate(const std::string &TargetName);

  /// Executes already-claimed (handle, unit) pairs as one fan-out over the
  /// shared worker pool — the serve scheduler's "one pass per step". Any
  /// mix of handles can ride one call; units are marked executed on return.
  /// Not reentrant (one fan-out at a time, like generateBackends).
  void
  runGenerateUnits(const std::vector<std::pair<GenerationHandle *, size_t>> &Units);

  /// Claims and runs the next unit inline on the caller; false when the
  /// handle has no unclaimed units left.
  bool stepGenerate(GenerationHandle &H);

  /// Folds a handle into its backend: remaining unclaimed units run inline
  /// first, then functions merge in template order with per-module seconds
  /// and the gen.functions counters — byte-identical to the
  /// generateBackends() merge, so finish on a fresh handle is exactly
  /// generateBackend().
  GeneratedBackend finishGenerate(GenerationHandle H);

  /// Lane count of the Stage-3 worker pool (built on first use) — the
  /// serve scheduler sizes its per-step unit batch to this.
  unsigned stage3Lanes();

  /// Overrides the Stage-3 job count after construction (tests/benches);
  /// the worker pool is rebuilt on the next generateBackend().
  void setJobs(int Jobs);

  /// Overrides the inference precision after construction (vega-serve
  /// --precision, tests). Applies to the live model immediately; weights
  /// are untouched. Not safe against in-flight generate calls.
  void setPrecision(Precision P);

  /// Toggles the prefix-sharing decode fast paths after construction
  /// (byte-identical either way; off is the CI reference path).
  void setPrefixSharing(bool On);

  /// Per-site statement chooser for assembleFunction(): returns the
  /// statement to splice in at \p Site (its Emitted flag is respected
  /// verbatim — the repair engine force-emits oracle-gated candidates), or
  /// std::nullopt to decode the site fresh with the model.
  using SiteChooser =
      std::function<std::optional<GeneratedStatement>(const DecodeSite &)>;

  /// Assembles one function for \p TargetName by walking its template and
  /// consulting \p Choose at every decode site. With a null chooser this is
  /// exactly Stage-3 generation (generateBackend() is built on it); the
  /// repair engine passes a chooser that overrides flagged sites with beam
  /// candidates while untouched sites keep their previous statements.
  /// Thread-safe after Model->prepareGenerate() like generateBackend().
  GeneratedFunction assembleFunction(const TemplateInfo &TI,
                                     const std::string &TargetName,
                                     const SiteChooser &Choose = nullptr);

  /// Beam-decodes one site: up to \p Width ranked candidate statements,
  /// best first, deduplicated by statement text (candidates differing only
  /// in their confidence bucket collapse to the best-ranked copy).
  /// Candidate 0 always matches the greedy generateRow() choice; Emitted
  /// follows the usual confidence threshold. Deterministic — no RNG, fixed
  /// tie-break order (see CodeBE::decodeBeam).
  std::vector<GeneratedStatement>
  beamCandidatesForSite(const TemplateInfo &TI, const DecodeSite &Site,
                        const std::string &TargetName, int Width);

  // ---- Introspection (tests, benches, examples) ----
  const std::vector<TemplateInfo> &templates() const { return Templates; }
  const TemplateInfo *findTemplate(const std::string &InterfaceName) const;
  CodeBE *model() { return Model.get(); }
  const FeatureSelector &features() const { return *Selector; }
  size_t trainPairCount() const { return TrainTexts.size(); }
  size_t verifyPairCount() const { return VerifyTexts.size(); }
  size_t trainFunctionCount() const { return TrainFunctions; }
  size_t verifyFunctionCount() const { return VerifyFunctions; }
  const VegaOptions &options() const { return Options; }
  const BackendCorpus &corpus() const { return Corpus; }

  /// The fixed global ordering of updatable Boolean properties shared by
  /// every feature vector (set by buildTemplates(), restored by a session
  /// checkpoint load).
  std::vector<std::string> globalBoolNames() const;
  void setGlobalBoolNames(std::vector<std::string> Names);

  /// Eq. (1): the analytic confidence of row \p Row for \p Target.
  double analyticConfidence(const TemplateInfo &TI, const TemplateRow &Row,
                            const std::string &Target, bool Has) const;

  /// Builds the input feature-vector token sequence for one row (exposed
  /// for tests).
  std::vector<std::string>
  buildInputTokens(const TemplateInfo &TI, const TemplateRow &Row,
                   const std::string &Target,
                   const std::optional<std::string> &AssignedPrimary,
                   const std::string &CtxValue) const;

  /// Candidate values for one placeholder slot on \p Target: Algorithm-1
  /// harvests first, then prefix-renamed training fillers (the analogue of
  /// subword-level compositionality — "ARMELFObjectWriter" becomes
  /// "RISCVELFObjectWriter").
  std::vector<std::string> slotCandidates(const TemplateInfo &TI,
                                          const TemplateRow &Row,
                                          size_t SlotIdx,
                                          const std::string &Target) const;

private:
  /// The session checkpoint reads/writes Templates, Vocabulary, Model,
  /// StructuralTokens, and SpecialTokenIds directly (core/Checkpoint.cpp).
  friend class SessionCheckpoint;

  struct TextPair {
    std::vector<std::string> Src, Dst;
    std::string Target; ///< which target produced this pair
  };

  void collectPairsForTarget(const TemplateInfo &TI, const std::string &Target,
                             bool Implements, std::vector<TextPair> &Out);
  /// fineTune()/trainModel() body, span-free so both emit exactly one
  /// "stage2.train_model" span.
  Status fineTuneImpl();
  void buildVocab();
  TrainPair toIds(const TextPair &Pair) const;
  /// Shared constrained-decode setup for one row — source ids, allowed
  /// mask, and the template-guided plan — used by both the greedy and beam
  /// paths so they see identical constraints.
  void buildRowDecode(const TemplateInfo &TI, const TemplateRow &Row,
                      const std::string &Target,
                      const std::optional<std::string> &Assigned,
                      const std::string &CtxValue, std::vector<int> &SrcIds,
                      std::vector<uint8_t> &Allowed,
                      CodeBE::DecodePlan &Plan) const;
  /// Decoded-id postprocessing shared by greedy and beam paths: leading CS
  /// bucket → Confidence, remaining ids → statement tokens, threshold →
  /// Emitted.
  void finishStatement(GeneratedStatement &Result,
                       const std::vector<int> &Ids) const;
  const TemplateRow *rowByIndex(const TemplateInfo &TI, int RowIndex) const;
  GeneratedStatement generateRow(const TemplateInfo &TI,
                                 const TemplateRow &Row,
                                 const std::string &Target,
                                 const std::optional<std::string> &Assigned,
                                 const std::string &CtxValue);
  /// Decodes every candidate expansion of one repeatable row in a single
  /// CodeBE::generateGroup call, so candidates whose feature vectors
  /// coincide share the encoder pass and the common plan-prefix KV rows.
  /// Byte-identical to calling generateRow() per candidate.
  std::vector<GeneratedStatement>
  generateRowGroup(const TemplateInfo &TI, const TemplateRow &Row,
                   const std::string &Target,
                   const std::vector<std::string> &Candidates,
                   const std::string &CtxValue);
  /// Generates one function (the per-worker unit of Stage-3 parallelism).
  /// Touches only read-only system state and thread-safe singletons.
  GeneratedFunction generateFunction(const TemplateInfo &TI,
                                     const std::string &TargetName);

  const BackendCorpus &Corpus;
  VegaOptions Options;
  std::vector<TemplateInfo> Templates;
  std::unique_ptr<FeatureSelector> Selector;
  std::vector<TextPair> TrainTexts, VerifyTexts;
  /// Per-example weights parallel to TrainTexts: empty until the first
  /// augmentation (every base pair weighs 1.0), then kept index-aligned.
  std::vector<float> TrainWeights;
  /// Content fingerprints of every training pair, seeded lazily from the
  /// base corpus on the first augmentTrainingPairs() call.
  std::set<uint64_t> PairFingerprints;
  bool FingerprintsSeeded = false;
  size_t TrainFunctions = 0, VerifyFunctions = 0;
  Vocab Vocabulary;
  std::unique_ptr<CodeBE> Model;
  /// Tokens allowed unconditionally during constrained decoding (seen in
  /// the outputs of many distinct targets → target-independent).
  std::vector<uint8_t> StructuralTokens;
  /// Ids of special-spelled vocab entries ([CLS], [EOS], CS buckets, ...),
  /// precomputed so each generated row masks them without rescanning the
  /// whole vocabulary.
  std::vector<int> SpecialTokenIds;
  /// Stage-3 worker pool, built lazily from Options.Jobs.
  std::unique_ptr<ThreadPool> Pool;
};

} // namespace vega

#endif // VEGA_CORE_PIPELINE_H
