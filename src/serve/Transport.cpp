//===- serve/Transport.cpp - NDJSON transport helpers ------------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "serve/Transport.h"

#include <cerrno>
#include <cstring>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace vega;
using namespace vega::serve;

namespace {

/// Writes all of \p Data to \p Fd; false on a short or failed write.
bool writeAll(int Fd, const std::string &Data) {
  size_t Written = 0;
  while (Written < Data.size()) {
    ssize_t W = ::write(Fd, Data.data() + Written, Data.size() - Written);
    if (W <= 0)
      return false;
    Written += static_cast<size_t>(W);
  }
  return true;
}

/// Fills \p Addr for \p Path; false when the path does not fit.
bool fillAddr(sockaddr_un &Addr, const std::string &Path) {
  Addr = sockaddr_un{};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path))
    return false;
  std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  return true;
}

} // namespace

Status vega::serve::serveSocketLines(
    const std::string &Path,
    const std::function<std::string(const std::string &)> &Handler,
    const std::function<bool()> &ShutdownRequested) {
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return Status::unavailable(std::string("cannot create socket: ") +
                               std::strerror(errno));
  sockaddr_un Addr;
  if (!fillAddr(Addr, Path)) {
    ::close(Fd);
    return Status::invalidArgument("socket path too long: '" + Path + "'");
  }
  ::unlink(Path.c_str());
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    ::close(Fd);
    return Status::unavailable("cannot bind '" + Path +
                               "': " + std::strerror(errno));
  }
  if (::listen(Fd, 16) < 0) {
    ::close(Fd);
    return Status::unavailable("cannot listen on '" + Path +
                               "': " + std::strerror(errno));
  }

  std::vector<std::thread> Connections;
  while (!ShutdownRequested()) {
    // Poll with a timeout so a shutdown processed on another connection
    // breaks the accept loop promptly.
    pollfd Poll{Fd, POLLIN, 0};
    int Ready = ::poll(&Poll, 1, 200);
    if (Ready < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (Ready == 0)
      continue;
    int Client = ::accept(Fd, nullptr, nullptr);
    if (Client < 0)
      continue;
    Connections.emplace_back([&Handler, Client] {
      std::string Buffer;
      char Chunk[4096];
      for (;;) {
        ssize_t N = ::read(Client, Chunk, sizeof(Chunk));
        if (N <= 0)
          break;
        Buffer.append(Chunk, static_cast<size_t>(N));
        size_t Newline;
        while ((Newline = Buffer.find('\n')) != std::string::npos) {
          std::string Line = Buffer.substr(0, Newline);
          Buffer.erase(0, Newline + 1);
          if (Line.empty())
            continue;
          if (!writeAll(Client, Handler(Line) + "\n"))
            break;
        }
      }
      ::close(Client);
    });
  }
  ::close(Fd);
  for (std::thread &Connection : Connections)
    Connection.join();
  ::unlink(Path.c_str());
  return Status::ok();
}

StatusOr<std::string> vega::serve::callSocketLine(const std::string &Path,
                                                  const std::string &Line) {
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return Status::unavailable(std::string("cannot create socket: ") +
                               std::strerror(errno));
  sockaddr_un Addr;
  if (!fillAddr(Addr, Path)) {
    ::close(Fd);
    return Status::invalidArgument("socket path too long: '" + Path + "'");
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    ::close(Fd);
    return Status::unavailable("cannot connect to '" + Path +
                               "': " + std::strerror(errno));
  }
  if (!writeAll(Fd, Line + "\n")) {
    ::close(Fd);
    return Status::unavailable("short write to '" + Path + "'");
  }
  std::string Buffer;
  char Chunk[4096];
  for (;;) {
    size_t Newline = Buffer.find('\n');
    if (Newline != std::string::npos) {
      ::close(Fd);
      return Buffer.substr(0, Newline);
    }
    ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
    if (N <= 0) {
      ::close(Fd);
      return Status::unavailable("connection to '" + Path +
                                 "' closed before a response line");
    }
    Buffer.append(Chunk, static_cast<size_t>(N));
  }
}
