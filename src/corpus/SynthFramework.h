//===- corpus/SynthFramework.h - LLVMDIRs renderer ---------------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders the framework side of the synthetic corpus: the LLVM-provided
/// code under LLVMDIRs = {llvm/CodeGen, llvm/MC, llvm/BinaryFormat,
/// llvm/Target}. These files are the source of the *PropList* (class names,
/// enum names, and field/global names) and the *identified sites* Algorithm 1
/// resolves properties against.
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_CORPUS_SYNTHFRAMEWORK_H
#define VEGA_CORPUS_SYNTHFRAMEWORK_H

#include "support/VirtualFileSystem.h"

#include <vector>

namespace vega {

/// The LLVMDIRs directory prefixes (paper §2).
const std::vector<std::string> &llvmDirs();

/// The TGTDIRs directory prefixes for target \p TargetName (paper §2).
std::vector<std::string> targetDirs(const std::string &TargetName);

/// Writes every framework file into \p VFS.
void renderFramework(VirtualFileSystem &VFS);

} // namespace vega

#endif // VEGA_CORPUS_SYNTHFRAMEWORK_H
