file(REMOVE_RECURSE
  "CMakeFiles/vega_lexer.dir/Lexer.cpp.o"
  "CMakeFiles/vega_lexer.dir/Lexer.cpp.o.d"
  "libvega_lexer.a"
  "libvega_lexer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vega_lexer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
