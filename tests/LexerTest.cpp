//===- tests/LexerTest.cpp - vega_lexer unit tests ----------------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "lexer/Lexer.h"

#include <gtest/gtest.h>

using namespace vega;

TEST(Lexer, IdentifiersAndKeywords) {
  auto Toks = Lexer::tokenize("unsigned Kind = Fixup");
  ASSERT_EQ(Toks.size(), 4u);
  EXPECT_TRUE(Toks[0].isKeyword("unsigned"));
  EXPECT_TRUE(Toks[1].isIdentifier("Kind"));
  EXPECT_TRUE(Toks[2].isPunct("="));
  EXPECT_TRUE(Toks[3].isIdentifier("Fixup"));
}

TEST(Lexer, ScopedNamesLexAsThreeTokens) {
  auto Toks = Lexer::tokenize("ARM::fixup_arm_movt_hi16");
  ASSERT_EQ(Toks.size(), 3u);
  EXPECT_TRUE(Toks[0].isIdentifier("ARM"));
  EXPECT_TRUE(Toks[1].isPunct("::"));
  EXPECT_TRUE(Toks[2].isIdentifier("fixup_arm_movt_hi16"));
}

TEST(Lexer, MultiCharOperatorsLongestMatch) {
  auto Toks = Lexer::tokenize("a==b!=c<=d>=e&&f||g->h");
  std::vector<std::string> Ops;
  for (const Token &T : Toks)
    if (T.Kind == TokenKind::Punct)
      Ops.push_back(T.Text);
  std::vector<std::string> Expected = {"==", "!=", "<=", ">=",
                                       "&&", "||", "->"};
  EXPECT_EQ(Ops, Expected);
}

TEST(Lexer, IntLiterals) {
  auto Toks = Lexer::tokenize("0x1f 42 7u 100L");
  ASSERT_EQ(Toks.size(), 4u);
  for (const Token &T : Toks)
    EXPECT_EQ(T.Kind, TokenKind::IntLiteral);
  EXPECT_EQ(Toks[0].Text, "0x1f");
}

TEST(Lexer, StringLiteralsKeepQuotesAndEscapes) {
  auto Toks = Lexer::tokenize("return \"a \\\"b\\\" c\";");
  ASSERT_EQ(Toks.size(), 3u);
  EXPECT_EQ(Toks[1].Kind, TokenKind::StringLiteral);
  EXPECT_EQ(Toks[1].Text, "\"a \\\"b\\\" c\"");
}

TEST(Lexer, CharLiterals) {
  auto Toks = Lexer::tokenize("'x' '\\n'");
  ASSERT_EQ(Toks.size(), 2u);
  EXPECT_EQ(Toks[0].Kind, TokenKind::CharLiteral);
}

TEST(Lexer, CommentsAreSkipped) {
  auto Toks = Lexer::tokenize("a // line comment\n/* block */ b");
  ASSERT_EQ(Toks.size(), 2u);
  EXPECT_TRUE(Toks[0].isIdentifier("a"));
  EXPECT_TRUE(Toks[1].isIdentifier("b"));
}

TEST(Lexer, PreprocessorSkippedByDefault) {
  auto Toks = Lexer::tokenize("#include \"x.h\"\nfoo");
  ASSERT_EQ(Toks.size(), 1u);
  EXPECT_TRUE(Toks[0].isIdentifier("foo"));
}

TEST(Lexer, PreprocessorKeptWhenRequested) {
  auto Toks = Lexer::tokenize("#define X 1", /*KeepPreprocessor=*/true);
  ASSERT_GE(Toks.size(), 3u);
  EXPECT_TRUE(Toks[0].isPunct("#"));
}

TEST(Lexer, PlaceholdersLexAsSingleTokens) {
  auto Toks = Lexer::tokenize("case $SV0::$SV1:");
  ASSERT_EQ(Toks.size(), 5u);
  EXPECT_TRUE(Toks[1].isPlaceholder());
  EXPECT_EQ(Toks[1].Text, "$SV0");
  EXPECT_TRUE(Toks[3].isPlaceholder());
}

TEST(Lexer, OffsetsPointIntoBuffer) {
  std::string Src = "ab  cd";
  auto Toks = Lexer::tokenize(Src);
  ASSERT_EQ(Toks.size(), 2u);
  EXPECT_EQ(Toks[0].Offset, 0u);
  EXPECT_EQ(Toks[1].Offset, 4u);
}

TEST(Lexer, EmptyInputGivesNoTokens) {
  EXPECT_TRUE(Lexer::tokenize("").empty());
  EXPECT_TRUE(Lexer::tokenize("   \n\t  ").empty());
}

TEST(Lexer, UnterminatedStringDoesNotCrash) {
  auto Toks = Lexer::tokenize("\"abc");
  ASSERT_EQ(Toks.size(), 1u);
  EXPECT_EQ(Toks[0].Kind, TokenKind::StringLiteral);
}
