# Empty dependencies file for minicc_test.
# This may be replaced when dependencies are built.
