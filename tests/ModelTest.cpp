//===- tests/ModelTest.cpp - vega_model unit tests ------------------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "model/Autograd.h"
#include "model/CodeBE.h"
#include "model/Trainer.h"
#include "model/Vocab.h"
#include "support/BinaryIO.h"
#include "support/RNG.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

using namespace vega;

namespace {

/// Finite-difference gradient check: perturb each parameter entry and
/// compare the numeric derivative with the autograd one.
void checkGradient(const std::function<TensorPtr()> &Loss,
                   const TensorPtr &Param, float Tolerance = 2e-2f) {
  Param->ensureGrad();
  Param->zeroGrad(); // clear accumulation from earlier checks
  TensorPtr L = Loss();
  backward(L);
  std::vector<float> Analytic = Param->Grad;
  const float Eps = 1e-3f;
  for (size_t I = 0; I < std::min<size_t>(Param->Data.size(), 8); ++I) {
    float Saved = Param->Data[I];
    Param->Data[I] = Saved + Eps;
    float Up = Loss()->Data[0];
    Param->Data[I] = Saved - Eps;
    float Down = Loss()->Data[0];
    Param->Data[I] = Saved;
    float Numeric = (Up - Down) / (2 * Eps);
    EXPECT_NEAR(Analytic[I], Numeric,
                Tolerance * std::max(1.0f, std::fabs(Numeric)))
        << "entry " << I;
    Param->zeroGrad();
  }
}

} // namespace

TEST(Autograd, MatmulForward) {
  TensorPtr A = makeTensor(2, 3), B = makeTensor(3, 2);
  for (int I = 0; I < 6; ++I) {
    A->Data[static_cast<size_t>(I)] = static_cast<float>(I + 1);
    B->Data[static_cast<size_t>(I)] = static_cast<float>(I % 3);
  }
  TensorPtr C = matmul(A, B);
  // A = [1 2 3; 4 5 6], B = [0 1; 2 0; 1 2] → C = [7 7; 16 16].
  EXPECT_FLOAT_EQ(C->at(0, 0), 7.0f);
  EXPECT_FLOAT_EQ(C->at(0, 1), 7.0f);
  EXPECT_FLOAT_EQ(C->at(1, 0), 16.0f);
  EXPECT_FLOAT_EQ(C->at(1, 1), 16.0f);
}

TEST(Autograd, MatmulGradient) {
  TensorPtr A = makeParam(3, 4, 0.5f, 1);
  TensorPtr B = makeParam(4, 2, 0.5f, 2);
  std::vector<int> Targets = {1, 0, 1};
  auto Loss = [&] { return crossEntropy(matmul(A, B), Targets); };
  checkGradient(Loss, A);
  checkGradient(Loss, B);
}

TEST(Autograd, MatmulNTGradient) {
  TensorPtr A = makeParam(2, 4, 0.5f, 3);
  TensorPtr B = makeParam(5, 4, 0.5f, 4);
  std::vector<int> Targets = {3, 0};
  auto Loss = [&] { return crossEntropy(matmulNT(A, B), Targets); };
  checkGradient(Loss, A);
  checkGradient(Loss, B);
}

TEST(Autograd, LayerNormGradient) {
  TensorPtr X = makeParam(2, 6, 1.0f, 5);
  TensorPtr G = makeParam(1, 6, 0.5f, 6);
  TensorPtr Bt = makeParam(1, 6, 0.5f, 7);
  TensorPtr W = makeParam(6, 3, 0.5f, 8);
  std::vector<int> Targets = {0, 2};
  auto Loss = [&] {
    return crossEntropy(matmul(layerNorm(X, G, Bt), W), Targets);
  };
  checkGradient(Loss, X);
  checkGradient(Loss, G);
  checkGradient(Loss, Bt);
}

TEST(Autograd, SoftmaxGradient) {
  TensorPtr X = makeParam(2, 5, 1.0f, 9);
  TensorPtr W = makeParam(5, 3, 0.5f, 10);
  std::vector<int> Targets = {1, 2};
  auto Loss = [&] {
    return crossEntropy(matmul(softmaxRows(X), W), Targets);
  };
  checkGradient(Loss, X);
}

TEST(Autograd, GatherAndSliceGradients) {
  TensorPtr E = makeParam(6, 4, 0.8f, 11);
  std::vector<int> Ids = {2, 0, 2};
  TensorPtr W = makeParam(2, 3, 0.5f, 12);
  std::vector<int> Targets = {0, 1, 2};
  auto Loss = [&] {
    TensorPtr G = gatherRows(E, Ids);
    TensorPtr S = sliceCols(G, 1, 2);
    return crossEntropy(matmul(S, W), Targets);
  };
  checkGradient(Loss, E);
}

TEST(Autograd, ReluAndScaleGradients) {
  TensorPtr X = makeParam(3, 4, 1.0f, 13);
  TensorPtr W = makeParam(4, 2, 0.5f, 14);
  std::vector<int> Targets = {0, 1, 0};
  auto Loss = [&] {
    return crossEntropy(matmul(scale(relu(X), 1.5f), W), Targets);
  };
  checkGradient(Loss, X);
}

TEST(Autograd, CopyScatterGradient) {
  TensorPtr A = makeParam(2, 3, 0.7f, 15);
  std::vector<int> SrcIds = {4, 1, 4};
  std::vector<int> Targets = {4, 1};
  auto Loss = [&] {
    return crossEntropy(copyScatter(softmaxRows(A), SrcIds, 6), Targets);
  };
  checkGradient(Loss, A);
}

TEST(Autograd, SparseMixGradient) {
  TensorPtr E = makeParam(5, 4, 0.6f, 16);
  std::vector<std::vector<int>> Lists = {{0, 1}, {2}, {}};
  TensorPtr W = makeParam(4, 2, 0.5f, 17);
  std::vector<int> Targets = {0, 1, 0};
  auto Loss = [&] {
    return crossEntropy(matmul(sparseMix(E, Lists), W), Targets);
  };
  checkGradient(Loss, E);
}

TEST(Autograd, AdamReducesLoss) {
  TensorPtr W = makeParam(4, 3, 0.5f, 18);
  TensorPtr X = makeTensor(2, 4);
  // Well-separated inputs so 50 Adam steps suffice.
  X->at(0, 0) = 1.0f;
  X->at(0, 1) = -0.5f;
  X->at(1, 2) = 1.0f;
  X->at(1, 3) = -0.5f;
  std::vector<int> Targets = {2, 0};
  AdamOptimizer Opt({W}, 0.05f);
  float First = 0.0f, Last = 0.0f;
  for (int Step = 0; Step < 50; ++Step) {
    TensorPtr Loss = crossEntropy(matmul(X, W), Targets);
    if (Step == 0)
      First = Loss->Data[0];
    Last = Loss->Data[0];
    backward(Loss);
    Opt.step();
  }
  EXPECT_LT(Last, First * 0.2f);
}

TEST(Vocab, SpecialTokensExist) {
  Vocab V;
  EXPECT_EQ(V.textOf(V.padId()), "[PAD]");
  EXPECT_EQ(V.textOf(V.eosId()), "[EOS]");
  EXPECT_TRUE(V.isCsToken(V.csId(0)));
  EXPECT_TRUE(V.isCsToken(V.csId(Vocab::NumCsBuckets - 1)));
  EXPECT_FALSE(V.isCsToken(V.eosId()));
}

TEST(Vocab, CsBucketsRoundTrip) {
  Vocab V;
  EXPECT_EQ(Vocab::csBucket(0.0), 0);
  EXPECT_EQ(Vocab::csBucket(1.0), Vocab::NumCsBuckets - 1);
  EXPECT_NEAR(V.csValueOf(V.csId(Vocab::csBucket(0.8))), 0.8, 0.03);
  EXPECT_EQ(Vocab::csBucket(1.5), Vocab::NumCsBuckets - 1); // clamped
  EXPECT_EQ(Vocab::csBucket(-0.5), 0);
}

TEST(Vocab, TokensGetPieces) {
  Vocab V;
  int Id = V.addToken("fixup_riscv_pcrel_hi20");
  const auto &Pieces = V.pieceLists()[static_cast<size_t>(Id)];
  EXPECT_EQ(Pieces.size(), 4u); // fixup, riscv, pcrel, hi20
  // Shared pieces across tokens.
  int Id2 = V.addToken("fixup_riscv_branch");
  const auto &Pieces2 = V.pieceLists()[static_cast<size_t>(Id2)];
  EXPECT_EQ(Pieces[0], Pieces2[0]); // "fixup"
  EXPECT_EQ(Pieces[1], Pieces2[1]); // "riscv"
}

TEST(Vocab, UnknownMapsToUnk) {
  Vocab V;
  EXPECT_EQ(V.idOf("never_added"), V.unkId());
  EXPECT_FALSE(V.contains("never_added"));
}

TEST(Vocab, SerializeRoundTrip) {
  Vocab V;
  V.addToken("alpha");
  V.addToken("beta_gamma");
  Vocab V2 = Vocab::deserialize(V.serialize());
  EXPECT_EQ(V2.size(), V.size());
  EXPECT_EQ(V2.idOf("alpha"), V.idOf("alpha"));
  EXPECT_EQ(V2.idOf("beta_gamma"), V.idOf("beta_gamma"));
}

TEST(CodeBE, LearnsACopyTask) {
  Vocab V;
  std::vector<std::string> Words;
  for (int I = 0; I < 12; ++I) {
    Words.push_back("w" + std::to_string(I));
    V.addToken(Words.back());
  }
  CodeBEConfig C;
  C.Epochs = 25;
  C.MaxSrcLen = 8;
  C.MaxDstLen = 6;
  C.LearningRate = 2e-3f;
  std::vector<TrainPair> Data;
  RNG Rng(11);
  for (int I = 0; I < 150; ++I) {
    int A = static_cast<int>(Rng.nextBelow(12));
    int B = static_cast<int>(Rng.nextBelow(12));
    TrainPair P;
    P.Src = {V.clsId(), V.idOf(Words[static_cast<size_t>(A)]),
             V.idOf(Words[static_cast<size_t>(B)])};
    P.Dst = {V.csId(20), V.idOf(Words[static_cast<size_t>(B)]),
             V.idOf(Words[static_cast<size_t>(A)]), V.eosId()};
    Data.push_back(P);
  }
  CodeBE Model(V, C);
  Model.train(Data);
  double EM = Model.exactMatch({Data.begin(), Data.begin() + 40});
  EXPECT_GT(EM, 0.9);
}

TEST(CodeBE, KVCacheDecodeMatchesFullRecompute) {
  // The incremental decoder must be bit-identical to re-running the full
  // decoder every step: same tokens AND same chosen probabilities, compared
  // with exact floating-point equality (no tolerance).
  Vocab V;
  std::vector<std::string> Words;
  for (int I = 0; I < 12; ++I) {
    Words.push_back("kv" + std::to_string(I));
    V.addToken(Words.back());
  }
  CodeBEConfig C;
  C.Epochs = 6;
  C.MaxSrcLen = 8;
  C.MaxDstLen = 6;
  C.LearningRate = 2e-3f;
  std::vector<TrainPair> Data;
  RNG Rng(17);
  for (int I = 0; I < 120; ++I) {
    int A = static_cast<int>(Rng.nextBelow(12));
    int B = static_cast<int>(Rng.nextBelow(12));
    TrainPair P;
    P.Src = {V.clsId(), V.idOf(Words[static_cast<size_t>(A)]),
             V.idOf(Words[static_cast<size_t>(B)])};
    P.Dst = {V.csId(20), V.idOf(Words[static_cast<size_t>(B)]),
             V.idOf(Words[static_cast<size_t>(A)]), V.eosId()};
    Data.push_back(P);
  }
  CodeBE Model(V, C);
  Model.train(Data);

  RNG Pick(23);
  for (int Case = 0; Case < 20; ++Case) {
    std::vector<int> Src = {
        V.clsId(), V.idOf(Words[Pick.nextBelow(12)]),
        V.idOf(Words[Pick.nextBelow(12)])};
    Model.setDecodeMode(CodeBE::DecodeMode::FullRecompute);
    CodeBE::Decoded Full = Model.generate(Src);
    Model.setDecodeMode(CodeBE::DecodeMode::KVCache);
    CodeBE::Decoded Inc = Model.generate(Src);
    EXPECT_EQ(Full.Tokens, Inc.Tokens) << "case " << Case;
    ASSERT_EQ(Full.Probs.size(), Inc.Probs.size()) << "case " << Case;
    for (size_t I = 0; I < Full.Probs.size(); ++I)
      EXPECT_EQ(Full.Probs[I], Inc.Probs[I])
          << "case " << Case << " position " << I;
  }

  // Constrained decoding takes the same paths through both modes.
  std::vector<uint8_t> Allowed(static_cast<size_t>(V.size()), 0);
  for (int I = 0; I < 6; ++I)
    Allowed[static_cast<size_t>(V.idOf(Words[static_cast<size_t>(I)]))] = 1;
  std::vector<int> Src = {V.clsId(), V.idOf(Words[2]), V.idOf(Words[5])};
  Model.setDecodeMode(CodeBE::DecodeMode::FullRecompute);
  CodeBE::Decoded Full = Model.generate(Src, &Allowed);
  Model.setDecodeMode(CodeBE::DecodeMode::KVCache);
  CodeBE::Decoded Inc = Model.generate(Src, &Allowed);
  EXPECT_EQ(Full.Tokens, Inc.Tokens);
  ASSERT_EQ(Full.Probs.size(), Inc.Probs.size());
  for (size_t I = 0; I < Full.Probs.size(); ++I)
    EXPECT_EQ(Full.Probs[I], Inc.Probs[I]) << "position " << I;
}

TEST(CodeBE, BeamWidthOneMatchesGreedyAndRanksDescend) {
  // decodeBeam is the pass@k backbone of the repair engine: width 1 must
  // reproduce the greedy decode exactly (same tie-break rule), repeated
  // calls must be bit-identical (no RNG anywhere), and candidates must come
  // back ranked by score.
  Vocab V;
  std::vector<std::string> Words;
  for (int I = 0; I < 12; ++I) {
    Words.push_back("bm" + std::to_string(I));
    V.addToken(Words.back());
  }
  CodeBEConfig C;
  C.Epochs = 6;
  C.MaxSrcLen = 8;
  C.MaxDstLen = 6;
  C.LearningRate = 2e-3f;
  std::vector<TrainPair> Data;
  RNG Rng(29);
  for (int I = 0; I < 120; ++I) {
    int A = static_cast<int>(Rng.nextBelow(12));
    int B = static_cast<int>(Rng.nextBelow(12));
    TrainPair P;
    P.Src = {V.clsId(), V.idOf(Words[static_cast<size_t>(A)]),
             V.idOf(Words[static_cast<size_t>(B)])};
    P.Dst = {V.csId(20), V.idOf(Words[static_cast<size_t>(B)]),
             V.idOf(Words[static_cast<size_t>(A)]), V.eosId()};
    Data.push_back(P);
  }
  CodeBE Model(V, C);
  Model.train(Data);

  RNG Pick(31);
  for (int Case = 0; Case < 10; ++Case) {
    std::vector<int> Src = {V.clsId(), V.idOf(Words[Pick.nextBelow(12)]),
                            V.idOf(Words[Pick.nextBelow(12)])};
    CodeBE::Decoded Greedy = Model.generate(Src);
    std::vector<CodeBE::BeamHypothesis> One = Model.decodeBeam(Src, 1);
    ASSERT_FALSE(One.empty()) << "case " << Case;
    EXPECT_EQ(One[0].Tokens, Greedy.Tokens) << "case " << Case;

    std::vector<CodeBE::BeamHypothesis> Four = Model.decodeBeam(Src, 4);
    std::vector<CodeBE::BeamHypothesis> FourAgain = Model.decodeBeam(Src, 4);
    ASSERT_EQ(Four.size(), FourAgain.size()) << "case " << Case;
    EXPECT_LE(Four.size(), 4u);
    for (size_t I = 0; I < Four.size(); ++I) {
      EXPECT_EQ(Four[I].Tokens, FourAgain[I].Tokens) << "case " << Case;
      EXPECT_EQ(Four[I].Score, FourAgain[I].Score) << "case " << Case;
      if (I > 0)
        EXPECT_LE(Four[I].Score, Four[I - 1].Score)
            << "case " << Case << " rank " << I;
    }
    // Candidates are distinct statements, not duplicates.
    for (size_t I = 0; I < Four.size(); ++I)
      for (size_t J = I + 1; J < Four.size(); ++J)
        EXPECT_NE(Four[I].Tokens, Four[J].Tokens)
            << "case " << Case << " ranks " << I << "/" << J;
  }
}

TEST(CodeBE, ConstrainedDecodingRestrictsOutput) {
  Vocab V;
  int A = V.addToken("aaa"), B = V.addToken("bbb");
  CodeBEConfig C;
  C.Epochs = 1;
  C.MaxDstLen = 4;
  CodeBE Model(V, C);
  std::vector<uint8_t> Allowed(V.size(), 0);
  Allowed[static_cast<size_t>(B)] = 1;
  CodeBE::Decoded Out = Model.generate({V.clsId(), A}, &Allowed);
  for (int Id : Out.Tokens)
    EXPECT_TRUE(Id == B || V.isCsToken(Id))
        << "disallowed token " << V.textOf(Id);
}

TEST(CodeBE, SaveLoadRoundTrip) {
  Vocab V;
  V.addToken("x");
  CodeBEConfig C;
  C.Epochs = 1;
  CodeBE M1(V, C);
  std::string Blob = M1.saveWeights();
  CodeBE M2(V, C);
  ASSERT_TRUE(M2.loadWeights(Blob));
  CodeBE::Decoded D1 = M1.generate({V.clsId()});
  CodeBE::Decoded D2 = M2.generate({V.clsId()});
  EXPECT_EQ(D1.Tokens, D2.Tokens);

  // Mismatched config must refuse.
  CodeBEConfig C2 = C;
  C2.DModel = 32;
  CodeBE M3(V, C2);
  EXPECT_FALSE(M3.loadWeights(Blob));
}

TEST(Autograd, GradSinkReductionIsScheduleInvariant) {
  // Shared leaves used by every example tape, as parameters are in
  // training: the per-example sink buffers folded in ascending example
  // order must produce the same bits no matter how many lanes ran.
  TensorPtr E = makeParam(6, 4, 0.5f, 7);
  TensorPtr W = makeParam(4, 3, 0.5f, 8);
  const size_t Examples = 8;
  std::vector<std::vector<int>> Ids(Examples), Targets(Examples);
  RNG Rng(99);
  for (size_t I = 0; I < Examples; ++I)
    for (int T = 0; T < 3; ++T) {
      Ids[I].push_back(static_cast<int>(Rng.nextBelow(6)));
      Targets[I].push_back(static_cast<int>(Rng.nextBelow(3)));
    }

  auto RunWith = [&](int Jobs) {
    ThreadPool Pool(Jobs);
    std::vector<TensorPtr> Tracked = {E, W};
    std::vector<GradSink> Sinks(Examples);
    for (GradSink &S : Sinks)
      S.track(Tracked);
    Pool.parallelFor(Examples, [&](size_t I) {
      GradSink::Scope Active(Sinks[I]);
      Sinks[I].zero();
      TensorPtr Logits = matmul(gatherRows(E, Ids[I]), W);
      backward(crossEntropy(Logits, Targets[I]));
    });
    std::vector<std::vector<float>> Reduced;
    for (size_t P = 0; P < Tracked.size(); ++P) {
      std::vector<float> Acc(Tracked[P]->Data.size(), 0.0f);
      for (size_t S = 0; S < Examples; ++S) {
        const std::vector<float> &Buf = Sinks[S].bufferAt(P);
        for (size_t K = 0; K < Acc.size(); ++K)
          Acc[K] += Buf[K];
      }
      Reduced.push_back(std::move(Acc));
    }
    return Reduced;
  };

  std::vector<std::vector<float>> Serial = RunWith(1);
  std::vector<std::vector<float>> Parallel = RunWith(4);
  ASSERT_EQ(Serial.size(), Parallel.size());
  for (size_t P = 0; P < Serial.size(); ++P) {
    ASSERT_EQ(Serial[P].size(), Parallel[P].size());
    EXPECT_EQ(0, std::memcmp(Serial[P].data(), Parallel[P].data(),
                             Serial[P].size() * sizeof(float)))
        << "reduced gradient " << P << " differs between jobs=1 and jobs=4";
    // The gradients are real (the tapes actually ran).
    float Sum = 0.0f;
    for (float G : Serial[P])
      Sum += std::fabs(G);
    EXPECT_GT(Sum, 0.0f);
  }
}

TEST(Trainer, JobsDoNotChangeTrainedWeights) {
  // Full train() at jobs=1 vs jobs=4 from identical seeds must produce
  // byte-identical weights — and therefore identical WGTS checksums in a
  // session checkpoint, which stores fnv1a(saveWeights()).
  Vocab V;
  std::vector<std::string> Words;
  for (int I = 0; I < 12; ++I) {
    Words.push_back("w" + std::to_string(I));
    V.addToken(Words.back());
  }
  CodeBEConfig C;
  C.Epochs = 3;
  C.MaxSrcLen = 8;
  C.MaxDstLen = 6;
  std::vector<TrainPair> Data;
  RNG Rng(11);
  for (int I = 0; I < 60; ++I) {
    int A = static_cast<int>(Rng.nextBelow(12));
    int B = static_cast<int>(Rng.nextBelow(12));
    TrainPair P;
    P.Src = {V.clsId(), V.idOf(Words[static_cast<size_t>(A)]),
             V.idOf(Words[static_cast<size_t>(B)])};
    P.Dst = {V.csId(20), V.idOf(Words[static_cast<size_t>(B)]),
             V.idOf(Words[static_cast<size_t>(A)]), V.eosId()};
    Data.push_back(P);
  }

  auto TrainWith = [&](int Jobs) {
    CodeBE Model(V, C);
    model::TrainOptions Opts = model::TrainOptions::fromConfig(C);
    Opts.Jobs = Jobs;
    model::Trainer Engine(Model, Opts);
    StatusOr<model::TrainResult> Result = Engine.run(Data);
    EXPECT_TRUE(Result.isOk());
    if (Result.isOk()) {
      EXPECT_EQ(Result->JobsUsed, Jobs);
      EXPECT_EQ(Result->EpochsRun, C.Epochs);
      EXPECT_EQ(Result->ExamplesSeen, Data.size() * 3);
      EXPECT_EQ(Result->EpochMeanLoss.size(), 3u);
      EXPECT_GT(Result->ExamplesPerSec, 0.0);
    }
    return Model.saveWeights();
  };

  std::string Weights1 = TrainWith(1);
  std::string Weights4 = TrainWith(4);
  ASSERT_EQ(Weights1.size(), Weights4.size());
  EXPECT_TRUE(Weights1 == Weights4)
      << "trained weights differ between jobs=1 and jobs=4";
  EXPECT_EQ(fnv1a(Weights1), fnv1a(Weights4));
}

TEST(Trainer, UnitExampleWeightsMatchUnweightedBytes) {
  // ExampleWeights of all 1.0 must be a no-op: byte-identical trained
  // weights versus the unweighted schedule, so the flywheel's weighted
  // corpus degenerates cleanly when every pair carries the default weight.
  Vocab V;
  std::vector<std::string> Words;
  for (int I = 0; I < 8; ++I) {
    Words.push_back("w" + std::to_string(I));
    V.addToken(Words.back());
  }
  CodeBEConfig C;
  C.Epochs = 2;
  C.MaxSrcLen = 8;
  C.MaxDstLen = 6;
  std::vector<TrainPair> Data;
  RNG Rng(7);
  for (int I = 0; I < 24; ++I) {
    int A = static_cast<int>(Rng.nextBelow(8));
    TrainPair P;
    P.Src = {V.clsId(), V.idOf(Words[static_cast<size_t>(A)])};
    P.Dst = {V.csId(20), V.idOf(Words[static_cast<size_t>(A)]), V.eosId()};
    Data.push_back(P);
  }

  auto TrainWith = [&](std::vector<float> Weights) {
    CodeBE Model(V, C);
    model::TrainOptions Opts = model::TrainOptions::fromConfig(C);
    Opts.ExampleWeights = std::move(Weights);
    model::Trainer Engine(Model, Opts);
    StatusOr<model::TrainResult> Result = Engine.run(Data);
    EXPECT_TRUE(Result.isOk());
    return Model.saveWeights();
  };

  std::string Plain = TrainWith({});
  std::string Unit = TrainWith(std::vector<float>(Data.size(), 1.0f));
  EXPECT_TRUE(Plain == Unit)
      << "all-1.0 example weights changed the trained weights";

  // Down-weighting must actually change the optimization trajectory.
  std::vector<float> Skewed(Data.size(), 1.0f);
  Skewed.front() = 0.25f;
  EXPECT_FALSE(Plain == TrainWith(std::move(Skewed)));
}

TEST(Trainer, ExampleWeightsValidated) {
  Vocab V;
  V.addToken("x");
  CodeBEConfig C;
  CodeBE Model(V, C);
  TrainPair P;
  P.Src = {V.clsId(), V.idOf("x")};
  P.Dst = {V.csId(20), V.idOf("x"), V.eosId()};
  std::vector<TrainPair> Data(4, P);

  auto CodeFor = [&](std::vector<float> Weights) {
    model::TrainOptions Opts = model::TrainOptions::fromConfig(C);
    Opts.ExampleWeights = std::move(Weights);
    model::Trainer Engine(Model, Opts);
    StatusOr<model::TrainResult> Result = Engine.run(Data);
    EXPECT_FALSE(Result.isOk());
    return Result.isOk() ? StatusCode::Ok : Result.status().code();
  };

  // Size mismatch is typed, not silently truncated or padded.
  EXPECT_EQ(CodeFor(std::vector<float>(3, 1.0f)),
            StatusCode::InvalidArgument);
  // Negative and non-finite weights are rejected by validate().
  EXPECT_EQ(CodeFor({1.0f, -0.5f, 1.0f, 1.0f}), StatusCode::InvalidArgument);
  EXPECT_EQ(CodeFor({1.0f, std::nanf(""), 1.0f, 1.0f}),
            StatusCode::InvalidArgument);
}

TEST(Trainer, InvalidOptionsSurfaceTypedStatus) {
  Vocab V;
  V.addToken("x");
  CodeBEConfig C;
  CodeBE Model(V, C);

  auto CodeFor = [&](const model::TrainOptions &Opts) {
    model::Trainer Engine(Model, Opts);
    StatusOr<model::TrainResult> Result = Engine.run({});
    EXPECT_FALSE(Result.isOk());
    return Result.isOk() ? StatusCode::Ok : Result.status().code();
  };

  model::TrainOptions Bad = model::TrainOptions::fromConfig(C);
  Bad.BatchSize = 0;
  EXPECT_EQ(CodeFor(Bad), StatusCode::InvalidArgument);

  Bad = model::TrainOptions::fromConfig(C);
  Bad.Epochs = -1;
  EXPECT_EQ(CodeFor(Bad), StatusCode::InvalidArgument);

  Bad = model::TrainOptions::fromConfig(C);
  Bad.LearningRate = 0.0f;
  EXPECT_EQ(CodeFor(Bad), StatusCode::InvalidArgument);

  Bad = model::TrainOptions::fromConfig(C);
  Bad.LearningRate = std::nanf("");
  EXPECT_EQ(CodeFor(Bad), StatusCode::InvalidArgument);

  // Valid options succeed even on an empty dataset.
  model::Trainer Engine(Model, model::TrainOptions::fromConfig(C));
  StatusOr<model::TrainResult> Ok = Engine.run({});
  ASSERT_TRUE(Ok.isOk());
  EXPECT_EQ(Ok->ExamplesSeen, 0u);
}

namespace {

/// A small trained copy-task model shared by the quantization / prefix
/// sharing tests (training is the expensive part; the tests only decode).
struct SharedDecodeModel {
  Vocab V;
  std::vector<std::string> Words;
  std::unique_ptr<CodeBE> Model;

  SharedDecodeModel() {
    for (int I = 0; I < 12; ++I) {
      Words.push_back("qp" + std::to_string(I));
      V.addToken(Words.back());
    }
    CodeBEConfig C;
    C.Epochs = 6;
    C.MaxSrcLen = 8;
    C.MaxDstLen = 8;
    C.LearningRate = 2e-3f;
    std::vector<TrainPair> Data;
    RNG Rng(41);
    for (int I = 0; I < 120; ++I) {
      int A = static_cast<int>(Rng.nextBelow(12));
      int B = static_cast<int>(Rng.nextBelow(12));
      TrainPair P;
      P.Src = {V.clsId(), V.idOf(Words[static_cast<size_t>(A)]),
               V.idOf(Words[static_cast<size_t>(B)])};
      P.Dst = {V.csId(20), V.idOf(Words[static_cast<size_t>(B)]),
               V.idOf(Words[static_cast<size_t>(A)]), V.eosId()};
      Data.push_back(P);
    }
    Model = std::make_unique<CodeBE>(V, C);
    Model->train(Data);
  }

  static SharedDecodeModel &instance() {
    static SharedDecodeModel M;
    return M;
  }
};

} // namespace

TEST(Autograd, QuantizedGemmMatchesIntegerReference) {
  // The int8 route promises exact integer accumulation: the dequantized
  // output must equal a naive int32 reference bit for bit, and the
  // quantizer must round to nearest with ties away from zero.
  {
    float Row[4] = {0.0f, 127.0f, -127.0f, 63.5f};
    int8_t Q[4];
    float S;
    detail::quantizeRowsQ8(Row, 1, 4, Q, &S);
    EXPECT_FLOAT_EQ(S, 1.0f);
    EXPECT_EQ(Q[0], 0);
    EXPECT_EQ(Q[1], 127);
    EXPECT_EQ(Q[2], -127);
    EXPECT_EQ(Q[3], 64); // 63.5 rounds away from zero
  }
  {
    // An all-zero row must produce zero scale and zero codes (and a zero
    // output row, not NaN from 0/0).
    float Row[3] = {0.0f, 0.0f, 0.0f};
    int8_t Q[3];
    float S = 1.0f;
    detail::quantizeRowsQ8(Row, 1, 3, Q, &S);
    EXPECT_EQ(S, 0.0f);
    EXPECT_EQ(Q[0], 0);
    EXPECT_EQ(Q[1], 0);
    EXPECT_EQ(Q[2], 0);
  }

  constexpr int M = 5, K = 7, N = 9;
  RNG Rng(53);
  std::vector<float> A(M * K), B(N * K);
  for (float &X : A)
    X = static_cast<float>(Rng.nextGaussian());
  for (float &X : B)
    X = static_cast<float>(Rng.nextGaussian());
  std::vector<int8_t> QA(M * K), QB(N * K);
  std::vector<float> SA(M), SB(N);
  detail::quantizeRowsQ8(A.data(), M, K, QA.data(), SA.data());
  detail::quantizeRowsQ8(B.data(), N, K, QB.data(), SB.data());
  std::vector<float> C(M * N, -1.0f);
  detail::gemmNTQ8(QA.data(), SA.data(), QB.data(), SB.data(), C.data(), M,
                   K, N);
  for (int I = 0; I < M; ++I)
    for (int J = 0; J < N; ++J) {
      int32_t Acc = 0;
      for (int P = 0; P < K; ++P)
        Acc += static_cast<int32_t>(QA[I * K + P]) *
               static_cast<int32_t>(QB[J * K + P]);
      float Want = static_cast<float>(Acc) * SA[static_cast<size_t>(I)] *
                   SB[static_cast<size_t>(J)];
      EXPECT_EQ(C[static_cast<size_t>(I * N + J)], Want)
          << "element " << I << "," << J;
    }
}

TEST(CodeBE, PrefixSharingPreservesGreedyOutput) {
  // The pinned-step fast path (and the CoW KV prefix machinery behind it)
  // must be invisible in the output: sharing on and off decode the same
  // bytes, with and without a plan, and WithProbs still returns the same
  // probabilities.
  SharedDecodeModel &M = SharedDecodeModel::instance();
  CodeBE &Model = *M.Model;
  const Vocab &V = M.V;

  CodeBE::DecodePlan Plan;
  Plan.Steps.push_back({V.csId(20)});
  Plan.Steps.push_back({V.idOf(M.Words[4])});
  Plan.Steps.push_back({V.idOf(M.Words[1]), V.idOf(M.Words[2])});
  Plan.Steps.push_back({V.idOf(M.Words[7])});

  RNG Pick(59);
  for (int Case = 0; Case < 8; ++Case) {
    std::vector<int> Src = {V.clsId(), V.idOf(M.Words[Pick.nextBelow(12)]),
                            V.idOf(M.Words[Pick.nextBelow(12)])};
    for (const CodeBE::DecodePlan *P :
         std::initializer_list<const CodeBE::DecodePlan *>{nullptr, &Plan}) {
      Model.setPrefixSharing(false);
      CodeBE::Decoded Off = Model.generate(Src, nullptr, P, false);
      CodeBE::Decoded OffProbs = Model.generate(Src, nullptr, P, true);
      Model.setPrefixSharing(true);
      CodeBE::Decoded On = Model.generate(Src, nullptr, P, false);
      CodeBE::Decoded OnProbs = Model.generate(Src, nullptr, P, true);
      EXPECT_EQ(Off.Tokens, On.Tokens) << "case " << Case;
      EXPECT_EQ(OffProbs.Tokens, OnProbs.Tokens) << "case " << Case;
      ASSERT_EQ(OffProbs.Probs.size(), OnProbs.Probs.size())
          << "case " << Case;
      for (size_t I = 0; I < OffProbs.Probs.size(); ++I)
        EXPECT_EQ(OffProbs.Probs[I], OnProbs.Probs[I])
            << "case " << Case << " position " << I;
    }
  }
  Model.setPrefixSharing(true);
}

TEST(CodeBE, GenerateGroupMatchesPerRequestGenerate) {
  // Group decode shares the encoder pass and the longest common plan
  // prefix, then forks copy-on-write. Outputs must be byte-identical to
  // per-request generate(), including when the plans diverge mid-way
  // (fork-then-extend independence: one member's tail must not leak into
  // another's).
  SharedDecodeModel &M = SharedDecodeModel::instance();
  CodeBE &Model = *M.Model;
  const Vocab &V = M.V;

  std::vector<int> Src = {V.clsId(), V.idOf(M.Words[3]), V.idOf(M.Words[8])};

  // Three plans sharing a 2-step prefix, diverging after it.
  CodeBE::DecodePlan P1, P2, P3;
  for (CodeBE::DecodePlan *P : {&P1, &P2, &P3}) {
    P->Steps.push_back({V.csId(20)});
    P->Steps.push_back({V.idOf(M.Words[5])});
  }
  P1.Steps.push_back({V.idOf(M.Words[0])});
  P1.Steps.push_back({V.idOf(M.Words[1])});
  P2.Steps.push_back({V.idOf(M.Words[2])});
  P2.Steps.push_back({V.idOf(M.Words[9])});
  // P3 ends at the shared prefix.

  std::vector<CodeBE::GroupRequest> Reqs = {
      {&Src, nullptr, &P1}, {&Src, nullptr, &P2}, {&Src, nullptr, &P3}};

  Model.setPrefixSharing(true);
  std::vector<CodeBE::Decoded> Group = Model.generateGroup(Reqs);
  ASSERT_EQ(Group.size(), Reqs.size());

  Model.setPrefixSharing(false);
  for (size_t I = 0; I < Reqs.size(); ++I) {
    CodeBE::Decoded Solo =
        Model.generate(*Reqs[I].Src, Reqs[I].Allowed, Reqs[I].Plan, false);
    EXPECT_EQ(Group[I].Tokens, Solo.Tokens) << "member " << I;
  }
  Model.setPrefixSharing(true);

  // Identical plans across the group: everyone gets the shared result.
  std::vector<CodeBE::GroupRequest> Same(4,
                                         CodeBE::GroupRequest{&Src, nullptr,
                                                              &P1});
  std::vector<CodeBE::Decoded> SameOut = Model.generateGroup(Same);
  ASSERT_EQ(SameOut.size(), 4u);
  CodeBE::Decoded Ref = Model.generate(Src, nullptr, &P1, false);
  for (size_t I = 0; I < SameOut.size(); ++I)
    EXPECT_EQ(SameOut[I].Tokens, Ref.Tokens) << "member " << I;

  // Mixed Src groups must fall back safely and still match.
  std::vector<int> Src2 = {V.clsId(), V.idOf(M.Words[6])};
  std::vector<CodeBE::GroupRequest> Mixed = {{&Src, nullptr, &P1},
                                             {&Src2, nullptr, &P1}};
  std::vector<CodeBE::Decoded> MixedOut = Model.generateGroup(Mixed);
  ASSERT_EQ(MixedOut.size(), 2u);
  EXPECT_EQ(MixedOut[0].Tokens, Model.generate(Src, nullptr, &P1, false).Tokens);
  EXPECT_EQ(MixedOut[1].Tokens,
            Model.generate(Src2, nullptr, &P1, false).Tokens);
}

TEST(CodeBE, SharedPrefixImmutableUnderConcurrentDecode) {
  // Four threads decode the same sources concurrently with sharing on;
  // every result must match the serial decode. A mutable shared prefix
  // would corrupt one thread's KV rows with another's tail.
  SharedDecodeModel &M = SharedDecodeModel::instance();
  CodeBE &Model = *M.Model;
  const Vocab &V = M.V;

  std::vector<std::vector<int>> Srcs;
  RNG Pick(61);
  for (int I = 0; I < 16; ++I)
    Srcs.push_back({V.clsId(), V.idOf(M.Words[Pick.nextBelow(12)]),
                    V.idOf(M.Words[Pick.nextBelow(12)])});

  CodeBE::DecodePlan Plan;
  Plan.Steps.push_back({V.csId(20)});
  for (int I = 0; I < 5; ++I)
    Plan.Steps.push_back({V.idOf(M.Words[static_cast<size_t>(I * 2)])});

  Model.setPrefixSharing(true);
  std::vector<std::vector<int>> Want;
  for (const std::vector<int> &S : Srcs)
    Want.push_back(Model.generate(S, nullptr, &Plan, false).Tokens);

  std::vector<std::vector<int>> Got(Srcs.size());
  ThreadPool Pool(4);
  Pool.parallelFor(Srcs.size(), [&](size_t I) {
    Got[I] = Model.generate(Srcs[I], nullptr, &Plan, false).Tokens;
  });
  for (size_t I = 0; I < Srcs.size(); ++I)
    EXPECT_EQ(Got[I], Want[I]) << "lane " << I;
}

TEST(CodeBE, Int8DecodeIsDeterministicAcrossModes) {
  // int8 decode is a different numeric contract from fp32, but it must be
  // self-consistent: repeated calls bit-identical, and the KV-cached
  // decoder must match full recomputation exactly under int8 as well.
  SharedDecodeModel &M = SharedDecodeModel::instance();
  CodeBE &Model = *M.Model;
  const Vocab &V = M.V;

  Model.setPrecision(Precision::INT8);
  Model.setPrefixSharing(false);
  RNG Pick(67);
  for (int Case = 0; Case < 8; ++Case) {
    std::vector<int> Src = {V.clsId(), V.idOf(M.Words[Pick.nextBelow(12)]),
                            V.idOf(M.Words[Pick.nextBelow(12)])};
    Model.setDecodeMode(CodeBE::DecodeMode::KVCache);
    CodeBE::Decoded KV1 = Model.generate(Src);
    CodeBE::Decoded KV2 = Model.generate(Src);
    EXPECT_EQ(KV1.Tokens, KV2.Tokens) << "case " << Case;
    ASSERT_EQ(KV1.Probs.size(), KV2.Probs.size()) << "case " << Case;
    for (size_t I = 0; I < KV1.Probs.size(); ++I)
      EXPECT_EQ(KV1.Probs[I], KV2.Probs[I]) << "case " << Case;
    Model.setDecodeMode(CodeBE::DecodeMode::FullRecompute);
    CodeBE::Decoded Full = Model.generate(Src);
    Model.setDecodeMode(CodeBE::DecodeMode::KVCache);
    EXPECT_EQ(Full.Tokens, KV1.Tokens) << "case " << Case;
    ASSERT_EQ(Full.Probs.size(), KV1.Probs.size()) << "case " << Case;
    for (size_t I = 0; I < Full.Probs.size(); ++I)
      EXPECT_EQ(Full.Probs[I], KV1.Probs[I]) << "case " << Case;
  }
  Model.setPrecision(Precision::FP32);
  Model.setPrefixSharing(true);
}

TEST(CodeBE, DecodeStepManyMatchesSoloWithMidFlightJoin) {
  // The continuous-batching contract at the model layer: streams stepped
  // together — including one admitted mid-flight, after its peers already
  // advanced — decode exactly the bytes a solo generate() produces. Tokens
  // AND probabilities must match; co-residency may change only timing.
  SharedDecodeModel &M = SharedDecodeModel::instance();
  CodeBE &Model = *M.Model;
  const Vocab &V = M.V;

  std::vector<int> SrcA = {V.clsId(), V.idOf(M.Words[1]), V.idOf(M.Words[9])};
  std::vector<int> SrcB = {V.clsId(), V.idOf(M.Words[5]), V.idOf(M.Words[2])};
  std::vector<int> SrcC = {V.clsId(), V.idOf(M.Words[7]), V.idOf(M.Words[7])};

  std::vector<CodeBE::Decoded> Want;
  for (const std::vector<int> *S : {&SrcA, &SrcB, &SrcC})
    Want.push_back(Model.generate(*S, nullptr, nullptr, true));

  // A and B co-step from the start; C joins after two interleaved steps.
  CodeBE::DecodeStream A = Model.beginDecode(SrcA, nullptr, nullptr, true);
  CodeBE::DecodeStream B = Model.beginDecode(SrcB, nullptr, nullptr, true);
  std::vector<CodeBE::DecodeStream *> Streams = {&A, &B};
  Model.decodeStepMany(Streams);
  Model.decodeStepMany(Streams);
  CodeBE::DecodeStream C = Model.beginDecode(SrcC, nullptr, nullptr, true);
  Streams.push_back(&C);
  size_t Guard = 0;
  while (Model.decodeStepMany(Streams) > 0)
    ASSERT_LT(++Guard, 64u) << "co-batched decode failed to terminate";

  std::vector<CodeBE::Decoded> Got;
  Got.push_back(Model.finishDecode(std::move(A)));
  Got.push_back(Model.finishDecode(std::move(B)));
  Got.push_back(Model.finishDecode(std::move(C)));

  for (size_t I = 0; I < Want.size(); ++I) {
    EXPECT_EQ(Got[I].Tokens, Want[I].Tokens) << "stream " << I;
    ASSERT_EQ(Got[I].Probs.size(), Want[I].Probs.size()) << "stream " << I;
    for (size_t P = 0; P < Want[I].Probs.size(); ++P)
      EXPECT_EQ(Got[I].Probs[P], Want[I].Probs[P])
          << "stream " << I << " position " << P;
  }
}
