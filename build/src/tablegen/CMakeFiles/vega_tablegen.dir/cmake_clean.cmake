file(REMOVE_RECURSE
  "CMakeFiles/vega_tablegen.dir/DescriptionReader.cpp.o"
  "CMakeFiles/vega_tablegen.dir/DescriptionReader.cpp.o.d"
  "libvega_tablegen.a"
  "libvega_tablegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vega_tablegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
