# Empty dependencies file for ablation_split_strategy.
# This may be replaced when dependencies are built.
