# CMake generated Testfile for 
# Source directory: /root/repo/src/gumtree
# Build directory: /root/repo/build/src/gumtree
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
