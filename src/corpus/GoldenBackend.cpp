//===- corpus/GoldenBackend.cpp - Golden backend functions ------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// Every golden implementation below is rendered from target traits under
/// one invariant: every target-specific token it mentions is derivable from
/// the target's description files (fixups, relocs, instructions, ISD nodes,
/// registers, register classes, latencies, alignments, directive strings).
/// That invariant is what makes the paper's pipeline — generate a backend
/// from description files alone — well-posed on this corpus.
///
//===----------------------------------------------------------------------===//

#include "corpus/GoldenBackend.h"

#include "corpus/SourceBuilder.h"

#include <cassert>
#include <cctype>

using namespace vega;

namespace {

std::string sc(const TargetTraits &T, const std::string &Member) {
  return T.Name + "::" + Member;
}

std::string isdNs(const TargetTraits &T) { return T.Name + "ISD"; }

std::string upperName(const TargetTraits &T) {
  std::string Out;
  for (char C : T.Name)
    Out += static_cast<char>(std::toupper(static_cast<unsigned char>(C)));
  return Out;
}

std::string elf(const std::string &Reloc) { return "ELF::" + Reloc; }

const FixupInfo *fixupOf(const TargetTraits &T, FixupClass Class,
                         bool IsPCRel) {
  for (const FixupInfo &F : T.Fixups)
    if (F.Class == Class && F.IsPCRel == IsPCRel)
      return &F;
  return nullptr;
}

bool hasGot(const TargetTraits &T) {
  return fixupOf(T, FixupClass::Got, true) != nullptr;
}

std::string instrOf(const TargetTraits &T, InstrClass Class) {
  const InstrInfo *I = T.findInstr(Class);
  assert(I && "target lacks an instruction of the requested class");
  return sc(T, I->Name);
}

std::string regClass0(const TargetTraits &T) {
  return sc(T, T.RegisterClasses.front());
}

// ---------------------------------------------------------------- SEL ----

std::string renderGetTargetNodeName(const TargetTraits &T) {
  SourceBuilder S;
  S.open("const char *" + T.Name +
         "TargetLowering::getTargetNodeName(unsigned Opcode) const {");
  S.open("switch (Opcode) {");
  for (const IsdNodeInfo &N : T.IsdNodes) {
    S.line("case " + isdNs(T) + "::" + N.Name + ":");
    S.line("  return \"" + isdNs(T) + "::" + N.Name + "\";");
  }
  S.line("default:");
  S.line("  return nullptr;");
  S.close("}");
  S.close("}");
  return S.str();
}

std::string renderLowerCall(const TargetTraits &T) {
  SourceBuilder S;
  S.open("int " + T.Name +
         "TargetLowering::lowerCall(SelectionDAG &DAG, CallInfo &CI) {");
  S.line("int Chain = DAG.getNode(ISD::CALLSEQ_START);");
  S.line("int Callee = DAG.getTargetGlobalAddress(CI.getGlobal());");
  if (T.HasDelaySlots)
    S.line("DAG.scheduleDelaySlot(Callee);");
  S.line("int Call = DAG.getNode(" + isdNs(T) + "::CALL);");
  S.line("Chain = DAG.getNode(ISD::CALLSEQ_END);");
  S.line("return Call;");
  S.close("}");
  return S.str();
}

std::string renderLowerReturn(const TargetTraits &T) {
  SourceBuilder S;
  S.open("int " + T.Name +
         "TargetLowering::lowerReturn(SelectionDAG &DAG, CallInfo &CI) {");
  S.open("if (CI.hasReturnValue()) {");
  S.line("DAG.copyToReturnRegister(" + sc(T, T.RegisterNames.front()) + ");");
  S.close("}");
  S.line("return DAG.getNode(" + isdNs(T) + "::RET_FLAG);");
  S.close("}");
  return S.str();
}

std::string renderLowerGlobalAddress(const TargetTraits &T) {
  SourceBuilder S;
  S.open("int " + T.Name +
         "TargetLowering::lowerGlobalAddress(SelectionDAG &DAG, int GV) {");
  if (hasGot(T)) {
    S.open("if (DAG.isPositionIndependent()) {");
    S.line("return DAG.getNode(" + isdNs(T) + "::Wrapper);");
    S.close("}");
  }
  S.line("int Hi = DAG.getNode(" + isdNs(T) + "::Hi);");
  S.line("int Lo = DAG.getNode(" + isdNs(T) + "::Lo);");
  S.line("return DAG.getNode(ISD::ADD);");
  S.close("}");
  return S.str();
}

std::string renderLowerSelectCC(const TargetTraits &T) {
  SourceBuilder S;
  S.open("int " + T.Name +
         "TargetLowering::lowerSelectCC(SelectionDAG &DAG, int Op) {");
  S.line("int Cond = DAG.getCondition(Op);");
  S.open("if (DAG.isConstantCondition(Cond)) {");
  S.line("return DAG.foldConstantSelect(Op);");
  S.close("}");
  S.line("return DAG.getNode(" + isdNs(T) + "::SELECT_CC);");
  S.close("}");
  return S.str();
}

std::string renderSelectAddrFI(const TargetTraits &T) {
  SourceBuilder S;
  S.open("bool " + T.Name +
         "DAGToDAGISel::selectAddrFI(int Addr, int &Base) {");
  S.open("if (DAG.isFrameIndex(Addr)) {");
  S.line("Base = DAG.getTargetFrameIndex(Addr);");
  S.line("return true;");
  S.close("}");
  if (T.HasCompressed) {
    S.open("if (DAG.isShortOffset(Addr)) {");
    S.line("Base = DAG.getTargetConstant(Addr);");
    S.line("return true;");
    S.close("}");
  }
  S.line("return false;");
  S.close("}");
  return S.str();
}

std::string renderIsLegalICmpImmediate(const TargetTraits &T) {
  SourceBuilder S;
  S.open("bool " + T.Name +
         "TargetLowering::isLegalICmpImmediate(int Imm) const {");
  S.line("return isIntN(" + std::to_string(T.ImmWidth) + ", Imm);");
  S.close("}");
  return S.str();
}

std::string renderGetRegisterByName(const TargetTraits &T) {
  SourceBuilder S;
  S.open("unsigned " + T.Name +
         "TargetLowering::getRegisterByName(const char *RegName) {");
  S.open("if (matchRegisterName(RegName, \"" +
         [&] {
           std::string L;
           for (char C : T.StackPointer)
             L += static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
           return L;
         }() +
         "\")) {");
  S.line("return " + sc(T, T.StackPointer) + ";");
  S.close("}");
  S.open("if (matchRegisterName(RegName, \"" +
         [&] {
           std::string L;
           for (char C : T.ReturnAddressReg)
             L += static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
           return L;
         }() +
         "\")) {");
  S.line("return " + sc(T, T.ReturnAddressReg) + ";");
  S.close("}");
  S.line("report_fatal_error(\"invalid register name\");");
  S.close("}");
  return S.str();
}

// ---------------------------------------------------------------- REG ----

std::string renderGetReservedRegs(const TargetTraits &T) {
  SourceBuilder S;
  S.open("int " + T.Name +
         "RegisterInfo::getReservedRegs(const MachineFunction &MF) const {");
  S.line("int Reserved = 0;");
  S.line("Reserved = markReserved(Reserved, " + sc(T, T.StackPointer) + ");");
  S.line("Reserved = markReserved(Reserved, " + sc(T, T.ReturnAddressReg) +
         ");");
  S.open("if (getFrameLowering(MF).hasFP(MF)) {");
  S.line("Reserved = markReserved(Reserved, " + sc(T, T.FramePointer) + ");");
  S.close("}");
  if (T.hasQuirk("resource_regs")) {
    S.line("Reserved = markReserved(Reserved, " + sc(T, "CP") + ");");
    S.line("Reserved = markReserved(Reserved, " + sc(T, "DP") + ");");
  }
  S.line("return Reserved;");
  S.close("}");
  return S.str();
}

std::string renderGetCalleeSavedRegs(const TargetTraits &T) {
  SourceBuilder S;
  S.open("const int *" + T.Name +
         "RegisterInfo::getCalleeSavedRegs(const MachineFunction *MF) const "
         "{");
  if (T.HasSimd && T.RegisterClasses.size() > 1) {
    S.open("if (MF->hasVectorArguments()) {");
    S.line("return getCalleeSavedList(" + sc(T, T.RegisterClasses.back()) +
           ");");
    S.close("}");
  }
  S.line("return getCalleeSavedList(" + regClass0(T) + ");");
  S.close("}");
  return S.str();
}

std::string renderGetFrameRegister(const TargetTraits &T) {
  SourceBuilder S;
  S.open("unsigned " + T.Name +
         "RegisterInfo::getFrameRegister(const MachineFunction &MF) const {");
  S.open("if (getFrameLowering(MF).hasFP(MF)) {");
  S.line("return " + sc(T, T.FramePointer) + ";");
  S.close("}");
  S.line("return " + sc(T, T.StackPointer) + ";");
  S.close("}");
  return S.str();
}

std::string renderEliminateFrameIndex(const TargetTraits &T) {
  SourceBuilder S;
  S.open("void " + T.Name +
         "RegisterInfo::eliminateFrameIndex(MachineInstr &MI, int SPAdj, int "
         "FIOperandNum) const {");
  S.line("int FrameIndex = MI.getOperand(FIOperandNum);");
  S.line("int Offset = getFrameIndexOffset(FrameIndex);");
  S.line("Offset = alignTo(Offset, " + std::to_string(T.StackAlignment) +
         ");");
  S.open("if (!isIntN(" + std::to_string(T.ImmWidth) + ", Offset)) {");
  if (T.HasRegisterScavenging) {
    S.line("unsigned ScratchReg = RS.scavengeRegister(" + regClass0(T) +
           ");");
    S.line("Offset = materializeOffset(ScratchReg, Offset);");
  } else {
    S.line("report_fatal_error(\"frame offset out of range\");");
  }
  S.close("}");
  S.line("MI.setOperand(FIOperandNum, Offset);");
  S.close("}");
  return S.str();
}

std::string renderRequiresRegisterScavenging(const TargetTraits &T) {
  SourceBuilder S;
  S.open("bool " + T.Name +
         "RegisterInfo::requiresRegisterScavenging(const MachineFunction "
         "&MF) const {");
  S.line(T.HasRegisterScavenging ? "return true;" : "return false;");
  S.close("}");
  return S.str();
}

std::string renderCanRealignStack(const TargetTraits &T) {
  SourceBuilder S;
  S.open("bool " + T.Name +
         "RegisterInfo::canRealignStack(const MachineFunction &MF) const {");
  S.open("if (MF.hasVarSizedObjects()) {");
  S.line("return false;");
  S.close("}");
  if (T.HasRegisterScavenging)
    S.line("return true;");
  else
    S.line("return MF.getFrameSize() < 256;");
  S.close("}");
  return S.str();
}

std::string renderEmitPrologue(const TargetTraits &T) {
  SourceBuilder S;
  S.open("void " + T.Name +
         "FrameLowering::emitPrologue(MachineFunction &MF) const {");
  S.line("int StackSize = MF.getFrameSize();");
  S.line("StackSize = alignTo(StackSize, " + std::to_string(T.StackAlignment) +
         ");");
  if (T.hasQuirk("thread_stack"))
    S.line("StackSize = computeThreadStackSize(MF, StackSize);");
  S.open("if (StackSize == 0) {");
  S.line("return;");
  S.close("}");
  S.line("adjustStackPointer(" + sc(T, T.StackPointer) + ", -StackSize);");
  S.open("if (hasFP(MF)) {");
  S.line("copyRegister(" + sc(T, T.FramePointer) + ", " +
         sc(T, T.StackPointer) + ");");
  S.close("}");
  S.close("}");
  return S.str();
}

std::string renderEmitEpilogue(const TargetTraits &T) {
  SourceBuilder S;
  S.open("void " + T.Name +
         "FrameLowering::emitEpilogue(MachineFunction &MF) const {");
  S.line("int StackSize = MF.getFrameSize();");
  S.line("StackSize = alignTo(StackSize, " + std::to_string(T.StackAlignment) +
         ");");
  if (T.hasQuirk("thread_stack"))
    S.line("StackSize = computeThreadStackSize(MF, StackSize);");
  S.open("if (StackSize == 0) {");
  S.line("return;");
  S.close("}");
  S.open("if (hasFP(MF)) {");
  S.line("copyRegister(" + sc(T, T.StackPointer) + ", " +
         sc(T, T.FramePointer) + ");");
  S.close("}");
  S.line("adjustStackPointer(" + sc(T, T.StackPointer) + ", StackSize);");
  S.close("}");
  return S.str();
}

// ---------------------------------------------------------------- OPT ----

std::string renderIsHardwareLoopProfitable(const TargetTraits &T) {
  SourceBuilder S;
  S.open("bool " + T.Name +
         "TTIImpl::isHardwareLoopProfitable(Loop &L) const {");
  S.open("if (!L.hasConstantTripCount()) {");
  S.line("return false;");
  S.close("}");
  if (T.hasQuirk("hwloop_align")) {
    S.open("if (L.getNumBlocks() > 1) {");
    S.line("return false;");
    S.close("}");
  }
  S.line("return true;");
  S.close("}");
  return S.str();
}

std::string renderConvertToHardwareLoop(const TargetTraits &T) {
  SourceBuilder S;
  S.open("bool " + T.Name + "HardwareLoops::convertToHardwareLoop(Loop &L) {");
  S.open("if (!L.hasConstantTripCount()) {");
  S.line("return false;");
  S.close("}");
  S.line("int TripCount = L.getTripCount();");
  S.line("insertLoopSetup(" + instrOf(T, InstrClass::HwLoop) +
         ", TripCount);");
  S.line("insertLoopEnd(L);");
  if (T.hasQuirk("event_unit"))
    S.line("disableEventUnit(L);");
  S.line("return true;");
  S.close("}");
  return S.str();
}

std::string renderGetVectorRegisterWidth(const TargetTraits &T) {
  SourceBuilder S;
  S.open("int " + T.Name + "TTIImpl::getVectorRegisterWidth() const {");
  S.line("return " + std::to_string(T.VectorWidth) + ";");
  S.close("}");
  return S.str();
}

std::string renderShouldCombineMemAccess(const TargetTraits &T) {
  SourceBuilder S;
  S.open("bool " + T.Name +
         "TTIImpl::shouldCombineMemAccess(int AccessSize) const {");
  S.open("if (AccessSize > " + std::to_string(T.VectorWidth) + ") {");
  S.line("return false;");
  S.close("}");
  S.line("return true;");
  S.close("}");
  return S.str();
}

std::string renderIsProfitableToHoist(const TargetTraits &T) {
  SourceBuilder S;
  S.open("bool " + T.Name +
         "TargetLowering::isProfitableToHoist(MachineInstr &MI) const {");
  S.open("if (MI.getOpcode() == " + instrOf(T, InstrClass::Div) + ") {");
  S.line("return false;");
  S.close("}");
  S.line("return true;");
  S.close("}");
  return S.str();
}

std::string renderCombineRedundantMove(const TargetTraits &T) {
  SourceBuilder S;
  S.open("bool " + T.Name +
         "Peephole::combineRedundantMove(MachineInstr &MI) {");
  S.open("if (MI.getOpcode() != " + instrOf(T, InstrClass::Mov) + ") {");
  S.line("return false;");
  S.close("}");
  S.open("if (MI.getOperand(0) == MI.getOperand(1)) {");
  S.line("eraseInstruction(MI);");
  S.line("return true;");
  S.close("}");
  S.line("return false;");
  S.close("}");
  return S.str();
}

std::string renderGetLoopAlignment(const TargetTraits &T) {
  SourceBuilder S;
  S.open("int " + T.Name + "TTIImpl::getLoopAlignment(Loop &L) const {");
  if (T.hasQuirk("hwloop_align")) {
    S.open("if (L.isHardwareLoop()) {");
    S.line("return 8;");
    S.close("}");
  }
  S.line("return 4;");
  S.close("}");
  return S.str();
}

// ---------------------------------------------------------------- SCH ----

std::string renderGetInstrLatency(const TargetTraits &T) {
  SourceBuilder S;
  S.open("int " + T.Name +
         "InstrInfo::getInstrLatency(MachineInstr &MI) const {");
  S.open("switch (MI.getOpcode()) {");
  auto Case = [&](InstrClass Class) {
    const InstrInfo *I = T.findInstr(Class);
    if (!I)
      return;
    S.line("case " + sc(T, I->Name) + ":");
    S.line("  return " + std::to_string(I->Cycles) + ";");
  };
  Case(InstrClass::Load);
  Case(InstrClass::Branch);
  Case(InstrClass::Mul);
  Case(InstrClass::Div);
  Case(InstrClass::Simd);
  Case(InstrClass::Thread);
  S.line("default:");
  S.line("  return 1;");
  S.close("}");
  S.close("}");
  return S.str();
}

std::string renderEnablePostRAScheduler(const TargetTraits &T) {
  SourceBuilder S;
  S.open("bool " + T.Name + "Subtarget::enablePostRAScheduler() const {");
  S.line(T.HasPostRAScheduler ? "return true;" : "return false;");
  S.close("}");
  return S.str();
}

std::string renderShouldScheduleLoadsNear(const TargetTraits &T) {
  SourceBuilder S;
  S.open("bool " + T.Name +
         "InstrInfo::shouldScheduleLoadsNear(int Distance) const {");
  S.line("return Distance < " + std::to_string(T.LoadLatency) + ";");
  S.close("}");
  return S.str();
}

std::string renderFillDelaySlots(const TargetTraits &T) {
  SourceBuilder S;
  S.open("bool " + T.Name +
         "DelaySlotFiller::fillDelaySlots(MachineBasicBlock &MBB) {");
  S.open("if (!hasUnfilledSlot(MBB)) {");
  S.line("return false;");
  S.close("}");
  S.line("MachineInstr Filler = findDelayFiller(MBB);");
  S.open("if (isSafeToMove(Filler)) {");
  S.line("moveIntoSlot(Filler);");
  S.line("return true;");
  S.close("}");
  S.line("insertNoop(MBB, " + instrOf(T, InstrClass::Mov) + ");");
  S.line("return true;");
  S.close("}");
  return S.str();
}

std::string renderGetHazardType(const TargetTraits &T) {
  SourceBuilder S;
  S.open("int " + T.Name +
         "HazardRecognizer::getHazardType(MachineInstr &MI, int Stalls) {");
  S.open("if (MI.isBranch() && Stalls < " + std::to_string(T.BranchLatency) +
         ") {");
  S.line("return Hazard;");
  S.close("}");
  if (T.HasDelaySlots) {
    S.open("if (MI.isCall()) {");
    S.line("return NoopHazard;");
    S.close("}");
  }
  S.line("return NoHazard;");
  S.close("}");
  return S.str();
}

std::string renderIsSchedulingBoundary(const TargetTraits &T) {
  SourceBuilder S;
  S.open("bool " + T.Name +
         "InstrInfo::isSchedulingBoundary(MachineInstr &MI) const {");
  S.open("if (MI.isCall()) {");
  S.line("return true;");
  S.close("}");
  if (T.HasThreadScheduler) {
    const InstrInfo *Sync = nullptr;
    for (const InstrInfo &I : T.Instructions)
      if (I.Name == "msync")
        Sync = &I;
    if (Sync) {
      S.open("if (MI.getOpcode() == " + sc(T, Sync->Name) + ") {");
      S.line("return true;");
      S.close("}");
    }
  }
  S.line("return false;");
  S.close("}");
  return S.str();
}

// ---------------------------------------------------------------- EMI ----

std::string renderGetRelocType(const TargetTraits &T) {
  // The paper's running example (Fig. 2). HasVariantKind targets route
  // through an inner helper the preprocessor inlines, mirroring ARM's
  // GetRelocTypeInner.
  SourceBuilder S;
  bool UseInner = T.HasVariantKind;
  std::string Def = "unsigned " + T.Name +
                    "ELFObjectWriter::getRelocType(const MCValue &Target, "
                    "const MCFixup &Fixup, bool IsPCRel) const {";
  if (UseInner) {
    S.open(Def);
    S.line("return GetRelocTypeInner(Target, Fixup, IsPCRel);");
    S.close("}");
    S.blank();
    S.open("unsigned " + T.Name +
           "ELFObjectWriter::GetRelocTypeInner(const MCValue &Target, const "
           "MCFixup &Fixup, bool IsPCRel) const {");
  } else {
    S.open(Def);
  }

  S.line("unsigned Kind = Fixup.getTargetKind();");
  if (T.HasVariantKind)
    S.line("MCSymbolRefExpr::VariantKind Modifier = "
           "Target.getAccessVariant();");
  S.open("if (IsPCRel) {");
  S.open("switch (Kind) {");
  S.line("case FK_Data_4:");
  S.line("  return " + elf("R_" + upperName(T) + "_REL32") + ";");
  for (const FixupInfo *F : T.pcRelFixups()) {
    S.line("case " + sc(T, F->Name) + ":");
    S.line("  return " + elf(F->Reloc) + ";");
  }
  S.line("default:");
  S.line("  report_fatal_error(\"invalid fixup kind\");");
  S.close("}");
  S.close("}");
  if (T.HasVariantKind && hasGot(T)) {
    S.open("if (Modifier == " + T.Name + "MC::VK_" + T.Name + "_GOT) {");
    S.line("return " + elf(fixupOf(T, FixupClass::Got, true)->Reloc) + ";");
    S.close("}");
  }
  S.open("switch (Kind) {");
  S.line("case FK_Data_4:");
  S.line("  return " + elf(fixupOf(T, FixupClass::Abs32, false)->Reloc) +
         ";");
  if (T.Is64Bit && fixupOf(T, FixupClass::Abs64, false)) {
    S.line("case FK_Data_8:");
    S.line("  return " + elf(fixupOf(T, FixupClass::Abs64, false)->Reloc) +
           ";");
  }
  for (const FixupInfo *F : T.absFixups()) {
    if (F->Class == FixupClass::Abs32 || F->Class == FixupClass::Abs64)
      continue;
    S.line("case " + sc(T, F->Name) + ":");
    S.line("  return " + elf(F->Reloc) + ";");
  }
  S.line("default:");
  S.line("  report_fatal_error(\"invalid fixup kind\");");
  S.close("}");
  S.close("}");
  return S.str();
}

std::string renderApplyFixup(const TargetTraits &T) {
  SourceBuilder S;
  S.open("void " + T.Name +
         "AsmBackend::applyFixup(MCFixup Fixup, int Value) {");
  S.line("unsigned Kind = Fixup.getTargetKind();");
  S.line("unsigned NumBytes = getFixupNumBytes(Kind);");
  S.line("unsigned Offset = Fixup.getOffset();");
  S.line("Value = adjustFixupValue(Kind, Value);");
  S.open("if (Value == 0) {");
  S.line("return;");
  S.close("}");
  if (T.IsBigEndian)
    S.line("writeBytesBigEndian(Offset, NumBytes, Value);");
  else
    S.line("writeBytesLittleEndian(Offset, NumBytes, Value);");
  S.close("}");
  return S.str();
}

std::string renderEncodeInstruction(const TargetTraits &T) {
  SourceBuilder S;
  S.open("void " + T.Name + "MCCodeEmitter::encodeInstruction(MCInst &MI) {");
  S.line("unsigned Bits = getBinaryCodeForInstr(MI);");
  if (T.HasCompressed) {
    S.open("if (getInstSizeInBytes(MI) == 2) {");
    S.line("emitUInt16(Bits);");
    S.line("return;");
    S.close("}");
  }
  if (T.IsBigEndian)
    S.line("emitBigEndian32(Bits);");
  else
    S.line("emitLittleEndian32(Bits);");
  S.close("}");
  return S.str();
}

std::string renderGetNumFixupKinds(const TargetTraits &T) {
  SourceBuilder S;
  S.open("unsigned " + T.Name + "AsmBackend::getNumFixupKinds() const {");
  S.line("return " + sc(T, "NumTargetFixupKinds") + ";");
  S.close("}");
  return S.str();
}

std::string renderGetFixupKindInfo(const TargetTraits &T) {
  SourceBuilder S;
  S.open("MCFixupKindInfo " + T.Name +
         "AsmBackend::getFixupKindInfo(MCFixupKind Kind) const {");
  S.open("if (Kind < FirstTargetFixupKind) {");
  S.line("return getGenericFixupKindInfo(Kind);");
  S.close("}");
  S.open("switch (Kind) {");
  for (const FixupInfo &F : T.Fixups) {
    S.line("case " + sc(T, F.Name) + ":");
    if (F.IsPCRel)
      S.line("  return makeFixupKindInfo(FKF_IsPCRel);");
    else
      S.line("  return makeFixupKindInfo(0);");
  }
  S.line("default:");
  S.line("  report_fatal_error(\"unknown fixup kind\");");
  S.close("}");
  S.close("}");
  return S.str();
}

std::string renderNeedsRelocateWithSymbol(const TargetTraits &T) {
  SourceBuilder S;
  S.open("bool " + T.Name +
         "ELFObjectWriter::needsRelocateWithSymbol(unsigned Type) const {");
  if (hasGot(T)) {
    S.open("switch (Type) {");
    S.line("case " + elf(fixupOf(T, FixupClass::Got, true)->Reloc) + ":");
    S.line("  return true;");
    S.line("default:");
    S.line("  return false;");
    S.close("}");
  } else {
    S.line("return false;");
  }
  S.close("}");
  return S.str();
}

// ---------------------------------------------------------------- ASS ----

std::string renderParseRegister(const TargetTraits &T) {
  SourceBuilder S;
  S.open("bool " + T.Name + "AsmParser::parseRegister(unsigned &RegNo) {");
  S.line("int Name = getLexer().getIdentifier();");
  S.line("RegNo = matchRegisterName(Name);");
  if (T.hasQuirk("resource_regs")) {
    S.open("if (RegNo == 0) {");
    S.line("RegNo = matchResourceRegister(Name);");
    S.close("}");
  }
  S.open("if (RegNo == 0) {");
  S.line("return true;");
  S.close("}");
  S.line("getLexer().consume();");
  S.line("return false;");
  S.close("}");
  return S.str();
}

std::string renderParseImmediate(const TargetTraits &T) {
  SourceBuilder S;
  S.open("bool " + T.Name + "AsmParser::parseImmediate(int &Result) {");
  S.open("if (!getLexer().isInteger()) {");
  S.line("return true;");
  S.close("}");
  S.line("Result = getLexer().getIntegerValue();");
  S.open("if (!isIntN(" + std::to_string(T.ImmWidth) + ", Result)) {");
  S.line("return emitError(\"immediate out of range\");");
  S.close("}");
  S.line("getLexer().consume();");
  S.line("return false;");
  S.close("}");
  return S.str();
}

std::string renderParseOperand(const TargetTraits &T) {
  SourceBuilder S;
  S.open("bool " + T.Name +
         "AsmParser::parseOperand(OperandVector &Operands) {");
  S.open("if (!parseRegister(Operands)) {");
  S.line("return false;");
  S.close("}");
  if (T.HasVariantKind) {
    S.open("if (!parseModifier(Operands)) {");
    S.line("return false;");
    S.close("}");
  }
  S.open("if (!parseImmediate(Operands)) {");
  S.line("return false;");
  S.close("}");
  S.line("return true;");
  S.close("}");
  return S.str();
}

std::string renderMatchAndEmitInstruction(const TargetTraits &T) {
  SourceBuilder S;
  S.open("bool " + T.Name +
         "AsmParser::matchAndEmitInstruction(unsigned Opcode) {");
  S.line("unsigned MatchResult = matchInstruction(Opcode);");
  S.open("if (MatchResult == Match_Success) {");
  S.line("emitInstruction(Opcode);");
  S.line("return false;");
  S.close("}");
  S.open("if (MatchResult == Match_MissingFeature) {");
  S.line("return emitError(\"instruction requires a feature\");");
  S.close("}");
  S.line("return emitError(\"unknown instruction\");");
  S.close("}");
  return S.str();
}

std::string renderParseDirective(const TargetTraits &T) {
  std::string DataDirective =
      T.Category == TargetCategory::IoT ? ".word" : ".long";
  SourceBuilder S;
  S.open("bool " + T.Name + "AsmParser::parseDirective(int IDVal) {");
  S.open("if (isDirective(IDVal, \"" + DataDirective + "\")) {");
  S.line("parseDataDirective(4);");
  S.line("return false;");
  S.close("}");
  if (T.hasQuirk("event_enable")) {
    S.open("if (isDirective(IDVal, \".cc_top\")) {");
    S.line("parseSymbolAttribute();");
    S.line("return false;");
    S.close("}");
  }
  S.line("return true;");
  S.close("}");
  return S.str();
}

// ---------------------------------------------------------------- DIS ----

std::string renderGetInstruction(const TargetTraits &T) {
  SourceBuilder S;
  S.open("int " + T.Name +
         "Disassembler::getInstruction(MCInst &MI, int Bytes) {");
  if (T.HasCompressed) {
    S.open("if (isCompressedInstruction(Bytes)) {");
    S.line("unsigned Insn16 = readInstruction16(Bytes);");
    S.line("return decodeInstruction16(MI, Insn16);");
    S.close("}");
  }
  S.line("unsigned Insn = readInstruction32(Bytes);");
  S.line("int Result = decodeInstruction32(MI, Insn);");
  S.open("if (Result == MCDisassembler::Fail) {");
  S.line("return MCDisassembler::Fail;");
  S.close("}");
  S.line("return MCDisassembler::Success;");
  S.close("}");
  return S.str();
}

std::string renderDecodeGPRRegisterClass(const TargetTraits &T) {
  SourceBuilder S;
  S.open("int " + T.Name +
         "Disassembler::decodeGPRRegisterClass(MCInst &MI, unsigned RegNo) "
         "{");
  S.open("if (RegNo >= " + std::to_string(T.RegisterCount) + ") {");
  S.line("return MCDisassembler::Fail;");
  S.close("}");
  S.line("unsigned Reg = getRegisterFromClass(" + regClass0(T) +
         ", RegNo);");
  S.line("MI.addOperand(Reg);");
  S.line("return MCDisassembler::Success;");
  S.close("}");
  return S.str();
}

std::string renderReadInstruction32(const TargetTraits &T) {
  SourceBuilder S;
  S.open("unsigned " + T.Name + "Disassembler::readInstruction32(int Bytes) "
                               "{");
  S.line("unsigned Insn = 0;");
  if (T.IsBigEndian)
    S.line("Insn = composeBigEndian32(Bytes);");
  else
    S.line("Insn = composeLittleEndian32(Bytes);");
  S.line("return Insn;");
  S.close("}");
  return S.str();
}

std::vector<InterfaceFunctionSpec> buildRegistry() {
  auto Always = [](const TargetTraits &) { return true; };
  auto HasHwLoop = [](const TargetTraits &T) { return T.HasHardwareLoop; };
  auto HasSimdFn = [](const TargetTraits &T) { return T.HasSimd; };
  auto HasDelay = [](const TargetTraits &T) { return T.HasDelaySlots; };
  auto HasDis = [](const TargetTraits &T) { return T.HasDisassembler; };

  std::vector<InterfaceFunctionSpec> Registry;
  auto Add = [&](const char *Name, BackendModule Module,
                 const char *ClassSuffix,
                 std::function<std::string(const TargetTraits &)> Render,
                 std::function<bool(const TargetTraits &)> Applies) {
    Registry.push_back(
        {Name, Module, ClassSuffix, std::move(Render), std::move(Applies)});
  };

  // SEL
  Add("getTargetNodeName", BackendModule::SEL, "TargetLowering",
      renderGetTargetNodeName, Always);
  Add("lowerCall", BackendModule::SEL, "TargetLowering", renderLowerCall,
      Always);
  Add("lowerReturn", BackendModule::SEL, "TargetLowering", renderLowerReturn,
      Always);
  Add("lowerGlobalAddress", BackendModule::SEL, "TargetLowering",
      renderLowerGlobalAddress, Always);
  Add("lowerSelectCC", BackendModule::SEL, "TargetLowering",
      renderLowerSelectCC, Always);
  Add("selectAddrFI", BackendModule::SEL, "DAGToDAGISel", renderSelectAddrFI,
      Always);
  Add("isLegalICmpImmediate", BackendModule::SEL, "TargetLowering",
      renderIsLegalICmpImmediate, Always);
  Add("getRegisterByName", BackendModule::SEL, "TargetLowering",
      renderGetRegisterByName, Always);

  // REG
  Add("getReservedRegs", BackendModule::REG, "RegisterInfo",
      renderGetReservedRegs, Always);
  Add("getCalleeSavedRegs", BackendModule::REG, "RegisterInfo",
      renderGetCalleeSavedRegs, Always);
  Add("getFrameRegister", BackendModule::REG, "RegisterInfo",
      renderGetFrameRegister, Always);
  Add("eliminateFrameIndex", BackendModule::REG, "RegisterInfo",
      renderEliminateFrameIndex, Always);
  Add("requiresRegisterScavenging", BackendModule::REG, "RegisterInfo",
      renderRequiresRegisterScavenging, Always);
  Add("canRealignStack", BackendModule::REG, "RegisterInfo",
      renderCanRealignStack, Always);
  Add("emitPrologue", BackendModule::REG, "FrameLowering", renderEmitPrologue,
      Always);
  Add("emitEpilogue", BackendModule::REG, "FrameLowering", renderEmitEpilogue,
      Always);

  // OPT
  Add("isHardwareLoopProfitable", BackendModule::OPT, "TTIImpl",
      renderIsHardwareLoopProfitable, HasHwLoop);
  Add("convertToHardwareLoop", BackendModule::OPT, "HardwareLoops",
      renderConvertToHardwareLoop, HasHwLoop);
  Add("getVectorRegisterWidth", BackendModule::OPT, "TTIImpl",
      renderGetVectorRegisterWidth, HasSimdFn);
  Add("shouldCombineMemAccess", BackendModule::OPT, "TTIImpl",
      renderShouldCombineMemAccess, HasSimdFn);
  Add("isProfitableToHoist", BackendModule::OPT, "TargetLowering",
      renderIsProfitableToHoist, Always);
  Add("combineRedundantMove", BackendModule::OPT, "Peephole",
      renderCombineRedundantMove, Always);
  Add("getLoopAlignment", BackendModule::OPT, "TTIImpl",
      renderGetLoopAlignment, Always);

  // SCH
  Add("getInstrLatency", BackendModule::SCH, "InstrInfo",
      renderGetInstrLatency, Always);
  Add("enablePostRAScheduler", BackendModule::SCH, "Subtarget",
      renderEnablePostRAScheduler, Always);
  Add("shouldScheduleLoadsNear", BackendModule::SCH, "InstrInfo",
      renderShouldScheduleLoadsNear, Always);
  Add("fillDelaySlots", BackendModule::SCH, "DelaySlotFiller",
      renderFillDelaySlots, HasDelay);
  Add("getHazardType", BackendModule::SCH, "HazardRecognizer",
      renderGetHazardType, Always);
  Add("isSchedulingBoundary", BackendModule::SCH, "InstrInfo",
      renderIsSchedulingBoundary, Always);

  // EMI
  Add("getRelocType", BackendModule::EMI, "ELFObjectWriter",
      renderGetRelocType, Always);
  Add("applyFixup", BackendModule::EMI, "AsmBackend", renderApplyFixup,
      Always);
  Add("encodeInstruction", BackendModule::EMI, "MCCodeEmitter",
      renderEncodeInstruction, Always);
  Add("getNumFixupKinds", BackendModule::EMI, "AsmBackend",
      renderGetNumFixupKinds, Always);
  Add("getFixupKindInfo", BackendModule::EMI, "AsmBackend",
      renderGetFixupKindInfo, Always);
  Add("needsRelocateWithSymbol", BackendModule::EMI, "ELFObjectWriter",
      renderNeedsRelocateWithSymbol, Always);

  // ASS
  Add("parseRegister", BackendModule::ASS, "AsmParser", renderParseRegister,
      Always);
  Add("parseImmediate", BackendModule::ASS, "AsmParser", renderParseImmediate,
      Always);
  Add("parseOperand", BackendModule::ASS, "AsmParser", renderParseOperand,
      Always);
  Add("matchAndEmitInstruction", BackendModule::ASS, "AsmParser",
      renderMatchAndEmitInstruction, Always);
  Add("parseDirective", BackendModule::ASS, "AsmParser", renderParseDirective,
      Always);

  // DIS
  Add("getInstruction", BackendModule::DIS, "Disassembler",
      renderGetInstruction, HasDis);
  Add("decodeGPRRegisterClass", BackendModule::DIS, "Disassembler",
      renderDecodeGPRRegisterClass, HasDis);
  Add("readInstruction32", BackendModule::DIS, "Disassembler",
      renderReadInstruction32, HasDis);

  return Registry;
}

} // namespace

const std::vector<InterfaceFunctionSpec> &vega::interfaceFunctions() {
  static const std::vector<InterfaceFunctionSpec> Registry = buildRegistry();
  return Registry;
}

const InterfaceFunctionSpec *
vega::findInterfaceFunction(const std::string &Name) {
  for (const InterfaceFunctionSpec &Spec : interfaceFunctions())
    if (Spec.Name == Name)
      return &Spec;
  return nullptr;
}

std::vector<const InterfaceFunctionSpec *>
vega::interfaceFunctionsOf(BackendModule Module) {
  std::vector<const InterfaceFunctionSpec *> Result;
  for (const InterfaceFunctionSpec &Spec : interfaceFunctions())
    if (Spec.Module == Module)
      Result.push_back(&Spec);
  return Result;
}
