//===- tests/OracleTest.cpp - pluggable oracle API tests ------------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//

#include "eval/Oracle.h"

#include "ast/Parser.h"
#include "eval/Harness.h"

#include <gtest/gtest.h>

using namespace vega;
using namespace vega::eval;

namespace {

const BackendCorpus &sharedCorpus() {
  static BackendCorpus Corpus =
      BackendCorpus::build(TargetDatabase::standard());
  return Corpus;
}

FunctionAST parse(const char *Src) {
  auto Fn = parseFunction(Src);
  EXPECT_TRUE(static_cast<bool>(Fn)) << Fn.getError();
  return std::move(*Fn);
}

/// An interface name no curated spec covers: buildTestEnvironments falls
/// back to one empty environment, so every differential case runs the
/// bare function and divergence classes are fully predictable.
constexpr const char *UnknownIface = "oracleTestFixture";

} // namespace

TEST(OracleVerdict, FullAndFractionSemantics) {
  OracleVerdict V;
  EXPECT_TRUE(V.full()); // vacuous: zero cases, no error
  EXPECT_DOUBLE_EQ(V.fraction(), 1.0);

  V.Cases = 4;
  V.Passed = 4;
  EXPECT_TRUE(V.full());
  EXPECT_DOUBLE_EQ(V.fraction(), 1.0);

  V.Passed = 3;
  EXPECT_FALSE(V.full());
  EXPECT_DOUBLE_EQ(V.fraction(), 0.75);

  V.CandidateError = true;
  EXPECT_FALSE(V.full());
  EXPECT_DOUBLE_EQ(V.fraction(), 0.0);
}

TEST(OracleKindParsing, RoundTripsAndRejectsUnknown) {
  EXPECT_EQ(parseOracleKind("text"), OracleKind::Text);
  EXPECT_EQ(parseOracleKind("differential"), OracleKind::Differential);
  EXPECT_EQ(parseOracleKind("both"), OracleKind::Both);
  EXPECT_FALSE(parseOracleKind("Text").has_value());
  EXPECT_FALSE(parseOracleKind("").has_value());
  EXPECT_FALSE(parseOracleKind("random").has_value());
  for (OracleKind K :
       {OracleKind::Text, OracleKind::Differential, OracleKind::Both})
    EXPECT_EQ(parseOracleKind(oracleKindName(K)), K);
}

TEST(TextOracle, MatchesFunctionPassesRegressionOnGolden) {
  const TargetTraits &Traits = *sharedCorpus().targets().find("RISCV");
  const Backend *B = sharedCorpus().backend("RISCV");
  ASSERT_NE(B, nullptr);
  for (const auto &Fn : B->Functions) {
    OracleVerdict V =
        textOracle().score(Fn->AST, Fn->AST, Fn->InterfaceName, Traits);
    EXPECT_TRUE(V.full()) << Fn->InterfaceName;
    EXPECT_EQ(textOracle().passes(Fn->AST, Fn->AST, Fn->InterfaceName, Traits),
              functionPassesRegression(Fn->AST, Fn->AST, Fn->InterfaceName,
                                       Traits))
        << Fn->InterfaceName;
  }
}

TEST(TextOracle, WrongReturnFailsAndInterpreterRejectionIsCandidateError) {
  const TargetTraits &Traits = *sharedCorpus().targets().find("RISCV");
  FunctionAST Golden = parse("int f() {\n return 1;\n}");
  FunctionAST Wrong = parse("int f() {\n return 2;\n}");
  // An unbound symbol in arithmetic makes the interpreter reject the run.
  FunctionAST Broken = parse("int f() {\n return mystery + 1;\n}");

  OracleVerdict Same = textOracle().score(Golden, Golden, UnknownIface, Traits);
  EXPECT_TRUE(Same.full());
  EXPECT_EQ(Same.Cases, 1u);

  OracleVerdict Bad = textOracle().score(Wrong, Golden, UnknownIface, Traits);
  EXPECT_FALSE(Bad.full());
  EXPECT_EQ(Bad.Passed, 0u);
  EXPECT_FALSE(Bad.CandidateError);

  OracleVerdict Rejected =
      textOracle().score(Broken, Golden, UnknownIface, Traits);
  EXPECT_FALSE(Rejected.full());
  EXPECT_TRUE(Rejected.CandidateError);
  EXPECT_DOUBLE_EQ(Rejected.fraction(), 0.0);
}

TEST(DifferentialOracle, CasesAreSeedDeterministic) {
  const TargetTraits &Traits = *sharedCorpus().targets().find("RISCV");
  const Backend *B = sharedCorpus().backend("RISCV");
  const DifferentialOracle &Oracle = differentialOracle();
  for (const auto &Fn : B->Functions) {
    std::vector<Environment> A = Oracle.buildCases(Fn->InterfaceName, Traits);
    std::vector<Environment> C = Oracle.buildCases(Fn->InterfaceName, Traits);
    ASSERT_EQ(A.size(),
              static_cast<size_t>(Oracle.options().CaseBudget));
    ASSERT_EQ(A.size(), C.size());
    for (size_t I = 0; I < A.size(); ++I) {
      EXPECT_EQ(A[I].vars(), C[I].vars())
          << Fn->InterfaceName << " case " << I;
      EXPECT_EQ(A[I].calls(), C[I].calls())
          << Fn->InterfaceName << " case " << I;
    }
  }
}

TEST(DifferentialOracle, SeedChangesTheCaseSet) {
  const TargetTraits &Traits = *sharedCorpus().targets().find("RISCV");
  const Backend *B = sharedCorpus().backend("RISCV");
  DifferentialOracle::Options Other;
  Other.Seed = 0x1234567;
  DifferentialOracle Reseeded(Other);
  bool AnyDiffer = false;
  for (const auto &Fn : B->Functions) {
    std::vector<Environment> A =
        differentialOracle().buildCases(Fn->InterfaceName, Traits);
    std::vector<Environment> C =
        Reseeded.buildCases(Fn->InterfaceName, Traits);
    for (size_t I = 0; I < A.size() && !AnyDiffer; ++I)
      AnyDiffer = A[I].vars() != C[I].vars() || A[I].calls() != C[I].calls();
    if (AnyDiffer)
      break;
  }
  EXPECT_TRUE(AnyDiffer);
}

TEST(DifferentialOracle, GoldenIsSelfEquivalentOnEveryTarget) {
  for (const char *Target : {"RISCV", "RI5CY", "XCORE"}) {
    const TargetTraits &Traits = *sharedCorpus().targets().find(Target);
    const Backend *B = sharedCorpus().backend(Target);
    ASSERT_NE(B, nullptr) << Target;
    for (const auto &Fn : B->Functions) {
      OracleVerdict V = differentialOracle().score(Fn->AST, Fn->AST,
                                                   Fn->InterfaceName, Traits);
      EXPECT_TRUE(V.full()) << Target << "::" << Fn->InterfaceName;
      EXPECT_EQ(V.ValDivergences, 0u) << Fn->InterfaceName;
      EXPECT_EQ(V.TrapDivergences, 0u) << Fn->InterfaceName;
      EXPECT_EQ(V.EffDivergences, 0u) << Fn->InterfaceName;
    }
  }
}

TEST(DifferentialOracle, VerdictsAreRepeatable) {
  const TargetTraits &Traits = *sharedCorpus().targets().find("RISCV");
  const Backend *B = sharedCorpus().backend("RISCV");
  const BackendFunction *Fn = B->find("getRelocType");
  ASSERT_NE(Fn, nullptr);
  OracleVerdict A = differentialOracle().score(Fn->AST, Fn->AST,
                                               Fn->InterfaceName, Traits);
  OracleVerdict C = differentialOracle().score(Fn->AST, Fn->AST,
                                               Fn->InterfaceName, Traits);
  EXPECT_EQ(A.Passed, C.Passed);
  EXPECT_EQ(A.Cases, C.Cases);
  EXPECT_EQ(A.CandidateError, C.CandidateError);
  EXPECT_EQ(A.ValDivergences, C.ValDivergences);
  EXPECT_EQ(A.TrapDivergences, C.TrapDivergences);
  EXPECT_EQ(A.EffDivergences, C.EffDivergences);
}

TEST(DifferentialOracle, WrongValueClassifiesAsDivVal) {
  const TargetTraits &Traits = *sharedCorpus().targets().find("RISCV");
  FunctionAST Golden = parse("int f() {\n return 1;\n}");
  FunctionAST Wrong = parse("int f() {\n return 2;\n}");
  OracleVerdict V =
      differentialOracle().score(Wrong, Golden, UnknownIface, Traits);
  EXPECT_FALSE(V.full());
  EXPECT_EQ(V.Passed, 0u);
  EXPECT_EQ(V.ValDivergences, V.Cases);
  EXPECT_EQ(V.TrapDivergences, 0u);
  EXPECT_EQ(V.EffDivergences, 0u);
}

TEST(DifferentialOracle, TrapOnOneSideClassifiesAsDivTrap) {
  const TargetTraits &Traits = *sharedCorpus().targets().find("RISCV");
  FunctionAST Golden = parse("int f() {\n return 1;\n}");
  FunctionAST Trapping =
      parse("int f() {\n report_fatal_error(\"boom\");\n}");
  OracleVerdict V =
      differentialOracle().score(Trapping, Golden, UnknownIface, Traits);
  EXPECT_FALSE(V.full());
  EXPECT_EQ(V.TrapDivergences, V.Cases);
  EXPECT_EQ(V.ValDivergences, 0u);
  EXPECT_EQ(V.EffDivergences, 0u);
}

TEST(DifferentialOracle, EffectTraceMismatchClassifiesAsDivEff) {
  const TargetTraits &Traits = *sharedCorpus().targets().find("RISCV");
  // Same return value, different side effects: unbound statement-level
  // calls are recorded in the effect trace.
  FunctionAST Golden = parse("int f() {\n doThing(1);\n return 3;\n}");
  FunctionAST Other = parse("int f() {\n doThing(2);\n return 3;\n}");
  OracleVerdict V =
      differentialOracle().score(Other, Golden, UnknownIface, Traits);
  EXPECT_FALSE(V.full());
  EXPECT_EQ(V.EffDivergences, V.Cases);
  EXPECT_EQ(V.ValDivergences, 0u);
  EXPECT_EQ(V.TrapDivergences, 0u);
}

TEST(DifferentialOracle, InterpreterRejectionIsCandidateErrorAndDivTrap) {
  const TargetTraits &Traits = *sharedCorpus().targets().find("RISCV");
  FunctionAST Golden = parse("int f() {\n return 1;\n}");
  FunctionAST Broken = parse("int f() {\n return mystery + 1;\n}");
  OracleVerdict V =
      differentialOracle().score(Broken, Golden, UnknownIface, Traits);
  EXPECT_TRUE(V.CandidateError);
  EXPECT_FALSE(V.full());
  EXPECT_EQ(V.TrapDivergences, V.Cases);
}
