//===- tools/vega-serve.cpp - The VEGA generation daemon ----------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// Long-running batched generation daemon: loads one .vega session artifact
/// and answers newline-delimited JSON-RPC 2.0 requests — over stdio by
/// default, or an AF_UNIX socket with --socket. See README "Serving" for the
/// wire protocol and request examples:
///
///   printf '%s\n' '{"id":1,"method":"generate","params":{"target":"RISCV"}}' \
///     | vega-serve --session=warm.vega
///
//===----------------------------------------------------------------------===//

#include "obs/Log.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "serve/Server.h"
#include "support/ArgParse.h"

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <optional>

using namespace vega;

int main(int argc, char **argv) {
  ArgParse Args("vega-serve",
                "batched JSON-RPC generation daemon over a .vega session");
  Args.addOption("session", "file.vega", "session artifact to serve (required)");
  Args.addOption("socket", "path",
                 "listen on an AF_UNIX socket instead of stdio");
  Args.addOption("jobs", "N", "Stage-3 generation lanes (default: auto)");
  Args.addOption("precision", "fp32|int8",
                 "inference precision of the decode logit GEMM", "fp32");
  Args.addOption("prefix-sharing", "on|off",
                 "decode fast paths reusing shared KV prefixes (byte-"
                 "identical either way)", "on");
  Args.addOption("max-batch", "N",
                 "most pending requests merged per generation fan-out", "8");
  Args.addOption("trace-out", "file", "write a Chrome/Perfetto trace on exit");
  Args.addOption("metrics-out", "file", "write metrics on exit");
  Args.addOption("metrics-format", "json|prometheus",
                 "metrics-out format (default: by extension, .prom = "
                 "prometheus, else json)");
  Args.addOption("log-level", "level",
                 "NDJSON log level on stderr: debug|info|warn|error|off "
                 "(default: $VEGA_LOG or off)");
  Args.addOption("slow-ms", "ms",
                 "warn-log the span flight recorder of requests slower than "
                 "this many milliseconds (0 = off)", "0");
  Args.addFlag("stats", "print a text metrics summary on exit");
  Args.addFlag("verbose", "log per-batch notes to stderr");

  if (Status St = Args.parse(argc, argv); !St.isOk()) {
    std::fprintf(stderr, "vega-serve: %s\n%s", St.toString().c_str(),
                 Args.usage().c_str());
    return St.toExitCode();
  }
  if (!Args.has("session")) {
    Status St = Status::invalidArgument("--session=<file.vega> is required");
    std::fprintf(stderr, "vega-serve: %s\n%s", St.toString().c_str(),
                 Args.usage().c_str());
    return St.toExitCode();
  }

  if (Args.has("trace-out"))
    obs::TraceRecorder::instance().setEnabled(true);
  if (Args.has("metrics-out") || Args.has("stats"))
    obs::MetricsRegistry::instance().setEnabled(true);
  if (Args.has("log-level")) {
    std::optional<obs::LogLevel> Level =
        obs::Logger::parseLevel(Args.get("log-level"));
    if (!Level) {
      std::fprintf(stderr, "vega-serve: unknown log level '%s'\n",
                   Args.get("log-level").c_str());
      return 2;
    }
    obs::Logger::instance().setLevel(*Level);
  }

  StatusOr<std::unique_ptr<VegaSession>> Session =
      VegaSession::load(Args.get("session"));
  if (!Session.isOk()) {
    std::fprintf(stderr, "vega-serve: %s\n",
                 Session.status().toString().c_str());
    return Session.status().toExitCode();
  }
  if (Args.has("jobs"))
    (*Session)->setJobs(Args.getInt("jobs", 0));
  if (Args.has("precision")) {
    std::optional<Precision> P = parsePrecision(Args.get("precision"));
    if (!P) {
      Status St = Status::invalidArgument("unknown --precision '" +
                                          Args.get("precision") +
                                          "' (expected fp32 or int8)");
      std::fprintf(stderr, "vega-serve: %s\n", St.toString().c_str());
      return St.toExitCode();
    }
    (*Session)->setPrecision(*P);
  }
  if (Args.has("prefix-sharing")) {
    const std::string &V = Args.get("prefix-sharing");
    if (V != "on" && V != "off") {
      Status St = Status::invalidArgument("unknown --prefix-sharing '" + V +
                                          "' (expected on or off)");
      std::fprintf(stderr, "vega-serve: %s\n", St.toString().c_str());
      return St.toExitCode();
    }
    (*Session)->setPrefixSharing(V == "on");
  }

  serve::ServerOptions Options;
  Options.MaxBatch = Args.getInt("max-batch", 8);
  Options.SlowMs = std::atof(Args.get("slow-ms").c_str());
  Options.Verbose = Args.has("verbose");
  if (Options.Verbose)
    std::fprintf(stderr, "vega-serve: session '%s' loaded, serving on %s\n",
                 Args.get("session").c_str(),
                 Args.has("socket") ? Args.get("socket").c_str() : "stdio");

  serve::VegaServer Server(**Session, Options);
  Status ServeStatus = Args.has("socket")
                           ? Server.serveSocket(Args.get("socket"))
                           : Server.serveStream(std::cin, std::cout);
  if (!ServeStatus.isOk())
    std::fprintf(stderr, "vega-serve: %s\n", ServeStatus.toString().c_str());

  int Rc = ServeStatus.toExitCode();
  if (Args.has("trace-out") &&
      !obs::TraceRecorder::instance().writeChromeTrace(Args.get("trace-out"))) {
    std::fprintf(stderr, "vega-serve: error: cannot write trace to '%s'\n",
                 Args.get("trace-out").c_str());
    Rc = Rc ? Rc : 1;
  }
  if (Args.has("metrics-out")) {
    const std::string &Path = Args.get("metrics-out");
    std::string Format = Args.get("metrics-format");
    if (Format.empty())
      Format = Path.size() >= 5 && Path.rfind(".prom") == Path.size() - 5
                   ? "prometheus"
                   : "json";
    auto &Metrics = obs::MetricsRegistry::instance();
    bool Written = Format == "prometheus" ? Metrics.writePrometheus(Path)
                                          : Metrics.writeJson(Path);
    if (!Written) {
      std::fprintf(stderr, "vega-serve: error: cannot write metrics to '%s'\n",
                   Path.c_str());
      Rc = Rc ? Rc : 1;
    }
  }
  if (Args.has("stats"))
    std::printf("%s", obs::MetricsRegistry::instance().textSummary().c_str());
  return Rc;
}
