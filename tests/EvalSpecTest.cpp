//===- tests/EvalSpecTest.cpp - regression-spec tests ---------------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// Property sweep: every golden implementation must run cleanly under its
/// own regression environments (no interpreter Errors) and be behaviourally
/// equivalent to itself — the sanity precondition for pass@1.
///
//===----------------------------------------------------------------------===//

#include "eval/EvalSpecs.h"
#include "eval/Harness.h"

#include <gtest/gtest.h>

using namespace vega;

namespace {

const BackendCorpus &sharedCorpus() {
  static BackendCorpus Corpus =
      BackendCorpus::build(TargetDatabase::standard());
  return Corpus;
}

struct SpecCase {
  std::string Target;
  std::string Interface;
};

std::vector<SpecCase> allCases() {
  std::vector<SpecCase> Cases;
  for (const auto &B : sharedCorpus().backends())
    for (const auto &F : B->Functions)
      Cases.push_back({B->TargetName, F->InterfaceName});
  return Cases;
}

} // namespace

class GoldenSpecTest : public ::testing::TestWithParam<SpecCase> {};

TEST_P(GoldenSpecTest, GoldenRunsCleanUnderItsSpec) {
  const SpecCase &Case = GetParam();
  const Backend *B = sharedCorpus().backend(Case.Target);
  const TargetTraits *Traits = sharedCorpus().targets().find(Case.Target);
  ASSERT_NE(B, nullptr);
  ASSERT_NE(Traits, nullptr);
  const BackendFunction *Fn = B->find(Case.Interface);
  ASSERT_NE(Fn, nullptr);

  Interpreter Interp;
  std::vector<Environment> Envs =
      buildTestEnvironments(Case.Interface, *Traits);
  ASSERT_FALSE(Envs.empty());
  for (size_t I = 0; I < Envs.size(); ++I) {
    ExecResult R = Interp.run(Fn->AST, Envs[I]);
    EXPECT_NE(R.St, ExecResult::Status::Error)
        << Case.Target << "::" << Case.Interface << " env " << I << ": "
        << R.Message;
  }
  // Reflexivity of pass@1.
  EXPECT_TRUE(functionPassesRegression(Fn->AST, Fn->AST, Case.Interface,
                                       *Traits));
}

INSTANTIATE_TEST_SUITE_P(
    AllGoldenFunctions, GoldenSpecTest, ::testing::ValuesIn(allCases()),
    [](const ::testing::TestParamInfo<SpecCase> &Info) {
      return Info.param.Target + "_" + Info.param.Interface;
    });

TEST(EvalSpecs, RegressionCountsArePositive) {
  for (const TargetTraits &T : sharedCorpus().targets().targets()) {
    size_t Count = regressionCaseCount(T);
    EXPECT_GT(Count, 100u) << T.Name;
  }
}

TEST(EvalSpecs, RelocSpecCoversEveryFixup) {
  const TargetTraits *T = sharedCorpus().targets().find("RISCV");
  ASSERT_NE(T, nullptr);
  auto Envs = buildTestEnvironments("getRelocType", *T);
  // kinds (fixups + FK_Data_4) × pcrel × variants(1).
  EXPECT_EQ(Envs.size(), (T->Fixups.size() + 1) * 2);
}

TEST(EvalSpecs, CrossTargetGoldenFunctionsDiffer) {
  // A golden function from one target must NOT pass another target's
  // regression when values matter (sanity for pass@1 discrimination).
  const Backend *Arm = sharedCorpus().backend("ARM");
  const Backend *Mips = sharedCorpus().backend("Mips");
  const TargetTraits *MipsTraits = sharedCorpus().targets().find("Mips");
  ASSERT_NE(Arm, nullptr);
  ASSERT_NE(Mips, nullptr);
  EXPECT_FALSE(functionPassesRegression(Arm->find("getRelocType")->AST,
                                        Mips->find("getRelocType")->AST,
                                        "getRelocType", *MipsTraits));
  EXPECT_FALSE(functionPassesRegression(Arm->find("getInstrLatency")->AST,
                                        Mips->find("getInstrLatency")->AST,
                                        "getInstrLatency", *MipsTraits));
}
