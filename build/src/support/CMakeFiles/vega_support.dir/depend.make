# Empty dependencies file for vega_support.
# This may be replaced when dependencies are built.
