file(REMOVE_RECURSE
  "CMakeFiles/vega_interp.dir/Interpreter.cpp.o"
  "CMakeFiles/vega_interp.dir/Interpreter.cpp.o.d"
  "libvega_interp.a"
  "libvega_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vega_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
