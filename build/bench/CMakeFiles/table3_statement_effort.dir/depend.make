# Empty dependencies file for table3_statement_effort.
# This may be replaced when dependencies are built.
