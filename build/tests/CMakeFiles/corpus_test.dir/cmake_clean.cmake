file(REMOVE_RECURSE
  "CMakeFiles/corpus_test.dir/CorpusTest.cpp.o"
  "CMakeFiles/corpus_test.dir/CorpusTest.cpp.o.d"
  "corpus_test"
  "corpus_test.pdb"
  "corpus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corpus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
