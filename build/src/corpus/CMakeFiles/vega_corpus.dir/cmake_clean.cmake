file(REMOVE_RECURSE
  "CMakeFiles/vega_corpus.dir/Corpus.cpp.o"
  "CMakeFiles/vega_corpus.dir/Corpus.cpp.o.d"
  "CMakeFiles/vega_corpus.dir/GoldenBackend.cpp.o"
  "CMakeFiles/vega_corpus.dir/GoldenBackend.cpp.o.d"
  "CMakeFiles/vega_corpus.dir/SynthFramework.cpp.o"
  "CMakeFiles/vega_corpus.dir/SynthFramework.cpp.o.d"
  "CMakeFiles/vega_corpus.dir/SynthTargetDesc.cpp.o"
  "CMakeFiles/vega_corpus.dir/SynthTargetDesc.cpp.o.d"
  "CMakeFiles/vega_corpus.dir/TargetTraits.cpp.o"
  "CMakeFiles/vega_corpus.dir/TargetTraits.cpp.o.d"
  "libvega_corpus.a"
  "libvega_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vega_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
