//===- corpus/GoldenBackend.h - Golden backend functions ---------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The registry of interface functions (the paper's "standard compiler
/// interface functions", e.g. getRelocType) and the golden renderer that
/// produces each target's manually-written implementation from its traits.
/// Golden implementations are the training data for existing targets and
/// the pass@1 ground truth for the held-out targets.
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_CORPUS_GOLDENBACKEND_H
#define VEGA_CORPUS_GOLDENBACKEND_H

#include "corpus/Modules.h"
#include "corpus/TargetTraits.h"

#include <functional>
#include <string>
#include <vector>

namespace vega {

/// One standard compiler interface function every backend may implement.
struct InterfaceFunctionSpec {
  std::string Name;          ///< e.g. "getRelocType"
  BackendModule Module;      ///< which of the seven modules it belongs to
  std::string ClassSuffix;   ///< e.g. "ELFObjectWriter"
  /// Renders the golden (manually-written) source for \p Traits.
  std::function<std::string(const TargetTraits &)> Render;
  /// True when \p Traits implements this interface at all (e.g. hardware
  /// loop hooks exist only on hardware-loop targets).
  std::function<bool(const TargetTraits &)> AppliesTo;
};

/// The full registry, in module order.
const std::vector<InterfaceFunctionSpec> &interfaceFunctions();

/// Finds a spec by name; nullptr when unknown.
const InterfaceFunctionSpec *findInterfaceFunction(const std::string &Name);

/// All interface functions of one module.
std::vector<const InterfaceFunctionSpec *>
interfaceFunctionsOf(BackendModule Module);

} // namespace vega

#endif // VEGA_CORPUS_GOLDENBACKEND_H
