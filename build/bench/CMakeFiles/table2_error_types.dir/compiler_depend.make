# Empty compiler generated dependencies file for table2_error_types.
# This may be replaced when dependencies are built.
