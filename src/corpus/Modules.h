//===- corpus/Modules.h - Backend function modules ---------------*- C++ -*-===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The seven backend function modules of Fig. 1: instruction selection,
/// register allocation, code optimization, scheduling, code emission,
/// assembly parsing, and disassembly.
///
//===----------------------------------------------------------------------===//

#ifndef VEGA_CORPUS_MODULES_H
#define VEGA_CORPUS_MODULES_H

#include <array>
#include <cstdint>
#include <string>

namespace vega {

/// One of the seven function modules of an LLVM-style backend (Fig. 1).
enum class BackendModule : uint8_t {
  SEL, ///< Instruction Selection
  REG, ///< Register Allocation
  OPT, ///< Code Optimization
  SCH, ///< Instruction Scheduling
  EMI, ///< Code Emission
  ASS, ///< Assembly Parsing
  DIS, ///< Disassembler
};

/// Number of modules.
inline constexpr size_t NumBackendModules = 7;

/// All modules in presentation order (matching the paper's figures).
inline constexpr std::array<BackendModule, NumBackendModules> AllModules = {
    BackendModule::SEL, BackendModule::REG, BackendModule::OPT,
    BackendModule::SCH, BackendModule::EMI, BackendModule::ASS,
    BackendModule::DIS};

/// Three-letter module name as used in the paper ("SEL", "REG", ...).
inline const char *moduleName(BackendModule Module) {
  switch (Module) {
  case BackendModule::SEL:
    return "SEL";
  case BackendModule::REG:
    return "REG";
  case BackendModule::OPT:
    return "OPT";
  case BackendModule::SCH:
    return "SCH";
  case BackendModule::EMI:
    return "EMI";
  case BackendModule::ASS:
    return "ASS";
  case BackendModule::DIS:
    return "DIS";
  }
  return "???";
}

} // namespace vega

#endif // VEGA_CORPUS_MODULES_H
