file(REMOVE_RECURSE
  "libvega_gumtree.a"
)
