
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/Corpus.cpp" "src/corpus/CMakeFiles/vega_corpus.dir/Corpus.cpp.o" "gcc" "src/corpus/CMakeFiles/vega_corpus.dir/Corpus.cpp.o.d"
  "/root/repo/src/corpus/GoldenBackend.cpp" "src/corpus/CMakeFiles/vega_corpus.dir/GoldenBackend.cpp.o" "gcc" "src/corpus/CMakeFiles/vega_corpus.dir/GoldenBackend.cpp.o.d"
  "/root/repo/src/corpus/SynthFramework.cpp" "src/corpus/CMakeFiles/vega_corpus.dir/SynthFramework.cpp.o" "gcc" "src/corpus/CMakeFiles/vega_corpus.dir/SynthFramework.cpp.o.d"
  "/root/repo/src/corpus/SynthTargetDesc.cpp" "src/corpus/CMakeFiles/vega_corpus.dir/SynthTargetDesc.cpp.o" "gcc" "src/corpus/CMakeFiles/vega_corpus.dir/SynthTargetDesc.cpp.o.d"
  "/root/repo/src/corpus/TargetTraits.cpp" "src/corpus/CMakeFiles/vega_corpus.dir/TargetTraits.cpp.o" "gcc" "src/corpus/CMakeFiles/vega_corpus.dir/TargetTraits.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ast/CMakeFiles/vega_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/tablegen/CMakeFiles/vega_tablegen.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/vega_support.dir/DependInfo.cmake"
  "/root/repo/build/src/lexer/CMakeFiles/vega_lexer.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
