//===- tests/ObsTest.cpp - tracing & metrics layer tests -----------------------===//
//
// Part of the VEGA reproduction project.
// SPDX-License-Identifier: Apache-2.0 WITH LLVM-exception
//
//===----------------------------------------------------------------------===//
///
/// src/obs: span nesting and depth, histogram bucketing, the disabled
/// fast path, thread-safety smoke tests, and a Chrome-trace JSON round-trip
/// through a minimal JSON validity checker.
///
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

using namespace vega;
using namespace vega::obs;

namespace {

/// Minimal recursive-descent JSON validity checker (objects, arrays,
/// strings, numbers, literals). Returns true iff \p Text is one valid JSON
/// value with nothing trailing.
class JsonChecker {
public:
  explicit JsonChecker(const std::string &Text) : S(Text) {}

  bool valid() {
    skipWs();
    if (!value())
      return false;
    skipWs();
    return I == S.size();
  }

private:
  const std::string &S;
  size_t I = 0;

  void skipWs() {
    while (I < S.size() && std::isspace(static_cast<unsigned char>(S[I])))
      ++I;
  }
  bool consume(char C) {
    if (I < S.size() && S[I] == C) {
      ++I;
      return true;
    }
    return false;
  }
  bool literal(const char *Lit) {
    size_t N = std::strlen(Lit);
    if (S.compare(I, N, Lit) != 0)
      return false;
    I += N;
    return true;
  }
  bool string() {
    if (!consume('"'))
      return false;
    while (I < S.size() && S[I] != '"') {
      if (S[I] == '\\') {
        ++I;
        if (I >= S.size())
          return false;
        if (S[I] == 'u') {
          for (int K = 0; K < 4; ++K)
            if (++I >= S.size() ||
                !std::isxdigit(static_cast<unsigned char>(S[I])))
              return false;
        }
      }
      ++I;
    }
    return consume('"');
  }
  bool number() {
    size_t Begin = I;
    if (I < S.size() && S[I] == '-')
      ++I;
    while (I < S.size() && std::isdigit(static_cast<unsigned char>(S[I])))
      ++I;
    if (I == Begin || (Begin + 1 == I && S[Begin] == '-'))
      return false;
    if (consume('.')) {
      if (I >= S.size() || !std::isdigit(static_cast<unsigned char>(S[I])))
        return false;
      while (I < S.size() && std::isdigit(static_cast<unsigned char>(S[I])))
        ++I;
    }
    if (I < S.size() && (S[I] == 'e' || S[I] == 'E')) {
      ++I;
      if (I < S.size() && (S[I] == '+' || S[I] == '-'))
        ++I;
      if (I >= S.size() || !std::isdigit(static_cast<unsigned char>(S[I])))
        return false;
      while (I < S.size() && std::isdigit(static_cast<unsigned char>(S[I])))
        ++I;
    }
    return true;
  }
  bool value() {
    skipWs();
    if (I >= S.size())
      return false;
    switch (S[I]) {
    case '{': {
      ++I;
      skipWs();
      if (consume('}'))
        return true;
      do {
        skipWs();
        if (!string())
          return false;
        skipWs();
        if (!consume(':') || !value())
          return false;
        skipWs();
      } while (consume(','));
      return consume('}');
    }
    case '[': {
      ++I;
      skipWs();
      if (consume(']'))
        return true;
      do {
        if (!value())
          return false;
        skipWs();
      } while (consume(','));
      return consume(']');
    }
    case '"':
      return string();
    case 't':
      return literal("true");
    case 'f':
      return literal("false");
    case 'n':
      return literal("null");
    default:
      return number();
    }
  }
};

class ObsTest : public ::testing::Test {
protected:
  void SetUp() override {
    TraceRecorder::instance().clear();
    TraceRecorder::instance().setEnabled(true);
    MetricsRegistry::instance().clear();
    MetricsRegistry::instance().setEnabled(true);
  }
  void TearDown() override {
    TraceRecorder::instance().setEnabled(false);
    TraceRecorder::instance().clear();
    MetricsRegistry::instance().setEnabled(false);
    MetricsRegistry::instance().clear();
  }
};

const TraceEvent *findEvent(const std::vector<TraceEvent> &Events,
                            const std::string &Name) {
  for (const TraceEvent &E : Events)
    if (E.Name == Name)
      return &E;
  return nullptr;
}

} // namespace

TEST_F(ObsTest, SpansNestAndRecordDepth) {
  {
    Span Outer("outer");
    {
      Span Mid("mid");
      { Span Inner("inner"); }
    }
    { Span Sibling("sibling"); }
  }
  std::vector<TraceEvent> Events = TraceRecorder::instance().snapshot();
  ASSERT_EQ(Events.size(), 4u);
  const TraceEvent *Outer = findEvent(Events, "outer");
  const TraceEvent *Mid = findEvent(Events, "mid");
  const TraceEvent *Inner = findEvent(Events, "inner");
  const TraceEvent *Sibling = findEvent(Events, "sibling");
  ASSERT_TRUE(Outer && Mid && Inner && Sibling);
  EXPECT_EQ(Outer->Depth, 0);
  EXPECT_EQ(Mid->Depth, 1);
  EXPECT_EQ(Inner->Depth, 2);
  EXPECT_EQ(Sibling->Depth, 1);
  // Containment: each child's window lies inside its parent's.
  EXPECT_GE(Mid->StartUs, Outer->StartUs);
  EXPECT_LE(Mid->StartUs + Mid->DurUs, Outer->StartUs + Outer->DurUs + 1.0);
  EXPECT_GE(Inner->StartUs, Mid->StartUs);
  EXPECT_LE(Inner->StartUs + Inner->DurUs, Mid->StartUs + Mid->DurUs + 1.0);
}

TEST_F(ObsTest, CloseReturnsTheRecordedDuration) {
  Span S("timed");
  double Sec = S.close();
  EXPECT_GE(Sec, 0.0);
  // close() is idempotent and stable.
  EXPECT_EQ(S.close(), Sec);
  std::vector<TraceEvent> Events = TraceRecorder::instance().snapshot();
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_NEAR(Events[0].DurUs, Sec * 1e6, 1e-6);
}

TEST_F(ObsTest, DisabledSpansRecordNothing) {
  TraceRecorder::instance().setEnabled(false);
  {
    Span S("invisible");
    S.arg("key", "value");
    EXPECT_GE(S.close(), 0.0); // timing still works for derived bookkeeping
  }
  EXPECT_EQ(TraceRecorder::instance().eventCount(), 0u);

  MetricsRegistry::instance().setEnabled(false);
  MetricsRegistry::instance().addCounter("nope");
  MetricsRegistry::instance().setGauge("nope", 1.0);
  MetricsRegistry::instance().observe("nope", 0.5);
  EXPECT_EQ(MetricsRegistry::instance().counterValue("nope"), 0u);
  EXPECT_FALSE(MetricsRegistry::instance().gaugeValue("nope").has_value());
  EXPECT_FALSE(MetricsRegistry::instance().histogram("nope").has_value());
}

TEST_F(ObsTest, SpanArgsAppearInExport) {
  {
    Span S("generate", "stage3");
    S.arg("target", "RISCV");
  }
  std::string Json = TraceRecorder::instance().exportChromeTrace();
  EXPECT_NE(Json.find("\"generate\""), std::string::npos);
  EXPECT_NE(Json.find("\"stage3\""), std::string::npos);
  EXPECT_NE(Json.find("\"target\":\"RISCV\""), std::string::npos);
}

TEST_F(ObsTest, ChromeTraceJsonRoundTrip) {
  {
    Span A("outer \"quoted\" name");
    A.arg("path", "a\\b\nnewline");
    Span B("inner");
  }
  std::string Json = TraceRecorder::instance().exportChromeTrace();
  EXPECT_TRUE(JsonChecker(Json).valid()) << Json;
  // The Chrome trace envelope chrome://tracing and Perfetto expect.
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(Json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(Json.find("\"dur\":"), std::string::npos);
}

TEST_F(ObsTest, CountersAndGauges) {
  auto &M = MetricsRegistry::instance();
  M.addCounter("hits");
  M.addCounter("hits", 4);
  EXPECT_EQ(M.counterValue("hits"), 5u);
  EXPECT_EQ(M.counterValue("missing"), 0u);
  M.setGauge("loss", 0.75);
  M.setGauge("loss", 0.25);
  ASSERT_TRUE(M.gaugeValue("loss").has_value());
  EXPECT_DOUBLE_EQ(*M.gaugeValue("loss"), 0.25);
  EXPECT_EQ(M.metricCount(), 2u);
}

TEST_F(ObsTest, HistogramBucketing) {
  auto &M = MetricsRegistry::instance();
  M.defineHistogram("conf", 0.0, 1.0, 10);
  M.observe("conf", 0.0);   // bucket 0
  M.observe("conf", 0.05);  // bucket 0
  M.observe("conf", 0.55);  // bucket 5
  M.observe("conf", 0.999); // bucket 9
  M.observe("conf", 1.0);   // >= hi clamps into the last bucket
  M.observe("conf", -3.0);  // < lo clamps into the first bucket
  std::optional<Histogram> H = M.histogram("conf");
  ASSERT_TRUE(H.has_value());
  ASSERT_EQ(H->Buckets.size(), 10u);
  EXPECT_EQ(H->Buckets[0], 3u);
  EXPECT_EQ(H->Buckets[5], 1u);
  EXPECT_EQ(H->Buckets[9], 2u);
  EXPECT_EQ(H->Count, 6u);
  EXPECT_DOUBLE_EQ(H->MinSeen, -3.0);
  EXPECT_DOUBLE_EQ(H->MaxSeen, 1.0);
  uint64_t Total = 0;
  for (uint64_t B : H->Buckets)
    Total += B;
  EXPECT_EQ(Total, H->Count);
}

TEST_F(ObsTest, ObserveAutoDefinesWithGivenShape) {
  auto &M = MetricsRegistry::instance();
  M.observe("tokens", 30.0, 0.0, 60.0, 6);
  M.observe("tokens", 59.0, 0.0, 60.0, 6); // shape from the first call wins
  std::optional<Histogram> H = M.histogram("tokens");
  ASSERT_TRUE(H.has_value());
  ASSERT_EQ(H->Buckets.size(), 6u);
  EXPECT_EQ(H->Buckets[3], 1u);
  EXPECT_EQ(H->Buckets[5], 1u);
  // The bare overload defaults to 10 buckets over [0, 1).
  M.observe("unit", 0.31);
  std::optional<Histogram> U = M.histogram("unit");
  ASSERT_TRUE(U.has_value());
  ASSERT_EQ(U->Buckets.size(), 10u);
  EXPECT_EQ(U->Buckets[3], 1u);
}

TEST_F(ObsTest, MetricsJsonExportIsValid) {
  auto &M = MetricsRegistry::instance();
  M.addCounter("gen.statements", 12);
  M.setGauge("train.examples_per_sec", 0.125);
  M.observe("gen.confidence", 0.7);
  std::string Json = M.exportJson();
  EXPECT_TRUE(JsonChecker(Json).valid()) << Json;
  EXPECT_NE(Json.find("\"gen.statements\": 12"), std::string::npos);
  EXPECT_NE(Json.find("\"train.examples_per_sec\""), std::string::npos);
  EXPECT_NE(Json.find("\"gen.confidence\""), std::string::npos);
  // Empty registries still export valid JSON.
  M.clear();
  EXPECT_TRUE(JsonChecker(M.exportJson()).valid());
}

TEST_F(ObsTest, TextSummaryListsEveryMetric) {
  auto &M = MetricsRegistry::instance();
  M.addCounter("gen.functions", 3);
  M.setGauge("stage1.vocab_size", 512);
  M.observe("gen.confidence", 0.9);
  std::string Text = M.textSummary();
  EXPECT_NE(Text.find("gen.functions"), std::string::npos);
  EXPECT_NE(Text.find("stage1.vocab_size"), std::string::npos);
  EXPECT_NE(Text.find("gen.confidence"), std::string::npos);
  EXPECT_NE(Text.find("histogram"), std::string::npos);
}

TEST_F(ObsTest, ThreadSafetySmoke) {
  auto &M = MetricsRegistry::instance();
  constexpr int Threads = 8;
  constexpr int PerThread = 200;
  std::vector<std::thread> Pool;
  for (int T = 0; T < Threads; ++T)
    Pool.emplace_back([&M, T] {
      for (int I = 0; I < PerThread; ++I) {
        Span S("worker");
        S.arg("thread", std::to_string(T));
        M.addCounter("work.items");
        M.observe("work.values",
                  static_cast<double>(I % 100) / 100.0);
      }
    });
  for (std::thread &T : Pool)
    T.join();
  EXPECT_EQ(TraceRecorder::instance().eventCount(),
            static_cast<size_t>(Threads * PerThread));
  EXPECT_EQ(M.counterValue("work.items"),
            static_cast<uint64_t>(Threads * PerThread));
  std::optional<Histogram> H = M.histogram("work.values");
  ASSERT_TRUE(H.has_value());
  EXPECT_EQ(H->Count, static_cast<uint64_t>(Threads * PerThread));
  // The concurrent trace still exports valid JSON.
  EXPECT_TRUE(JsonChecker(TraceRecorder::instance().exportChromeTrace())
                  .valid());
}

TEST_F(ObsTest, WriteFilesRoundTrip) {
  {
    Span S("file-span");
  }
  MetricsRegistry::instance().addCounter("file.counter");
  std::string TracePath = ::testing::TempDir() + "obs_trace.json";
  std::string MetricsPath = ::testing::TempDir() + "obs_metrics.json";
  ASSERT_TRUE(TraceRecorder::instance().writeChromeTrace(TracePath));
  ASSERT_TRUE(MetricsRegistry::instance().writeJson(MetricsPath));
  auto Slurp = [](const std::string &Path) {
    std::ifstream In(Path);
    std::stringstream Buf;
    Buf << In.rdbuf();
    return Buf.str();
  };
  std::string Trace = Slurp(TracePath);
  std::string Metrics = Slurp(MetricsPath);
  EXPECT_TRUE(JsonChecker(Trace).valid());
  EXPECT_TRUE(JsonChecker(Metrics).valid());
  EXPECT_NE(Trace.find("file-span"), std::string::npos);
  EXPECT_NE(Metrics.find("file.counter"), std::string::npos);
}
