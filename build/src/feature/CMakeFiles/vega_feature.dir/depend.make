# Empty dependencies file for vega_feature.
# This may be replaced when dependencies are built.
